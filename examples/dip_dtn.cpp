// dip_dtn — disruption tolerance through the FN abstraction (docs/DTN.md).
//
//   $ ./dip_dtn                          # quick run, both harnesses
//   $ ./dip_dtn --bundles 16 --blackout-ms 4000 --out BENCH_dtn.json
//
// Two seeded harnesses drive the dip32+custody composition through
// multi-second outages and print the recovery ledger:
//
//   1. netsim chaos: host A -- R1 -- R2 -- host B with the middle link dark
//      for the blackout window (and lossy afterwards). The sender hands
//      custody to R1 on the clean first hop; R1's bounded CustodyStore
//      carries the outage and retransmits until R2 ACKs.
//   2. mesh torus: a rows x cols (>= 27 node) mock-UDP mesh, every link dark
//      for the same window, MeshCustodyFleet relaying bundles hop by hop
//      over SPF routes.
//
// Exit status is the acceptance gate: every committed bundle must assemble
// byte-identically (100% recovery) and the mesh conservation ledger must
// balance exactly. With --out the run writes a BENCH_dtn.json report with
// recovery rate, recovery latency, and store high-water marks.
//
// Flags: --bundles N --payload N --blackout-ms N --rows N --cols N
//        --seed N --drop P --dup P --out FILE
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "dip/dtn/bundle.hpp"
#include "dip/dtn/mesh_dtn.hpp"
#include "dip/dtn/node.hpp"
#include "dip/mesh/mesh_net.hpp"
#include "dip/netsim/topology.hpp"

namespace {

using namespace dip;

struct Options {
  std::size_t bundles = 6;
  std::size_t payload = 256;
  std::uint64_t blackout_ms = 2500;
  std::size_t rows = 9;
  std::size_t cols = 3;  // 9 x 3 = 27 custody-capable mesh routers
  std::uint64_t seed = 42;
  double drop = 0.05;
  double dup = 0.05;
  std::string out;
};

bool parse_args(int argc, char** argv, Options& opt) {
  const auto next_value = [&](int& i) -> const char* {
    return i + 1 < argc ? argv[++i] : nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const char* v = nullptr;
    if (arg == "--bundles" && (v = next_value(i))) {
      opt.bundles = std::strtoull(v, nullptr, 10);
    } else if (arg == "--payload" && (v = next_value(i))) {
      opt.payload = std::strtoull(v, nullptr, 10);
    } else if (arg == "--blackout-ms" && (v = next_value(i))) {
      opt.blackout_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--rows" && (v = next_value(i))) {
      opt.rows = std::strtoull(v, nullptr, 10);
    } else if (arg == "--cols" && (v = next_value(i))) {
      opt.cols = std::strtoull(v, nullptr, 10);
    } else if (arg == "--seed" && (v = next_value(i))) {
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--drop" && (v = next_value(i))) {
      opt.drop = std::strtod(v, nullptr);
    } else if (arg == "--dup" && (v = next_value(i))) {
      opt.dup = std::strtod(v, nullptr);
    } else if (arg == "--out" && (v = next_value(i))) {
      opt.out = v;
    } else {
      std::fprintf(stderr, "unknown or valueless flag: %s\n", argv[i]);
      return false;
    }
  }
  return opt.bundles > 0 && opt.payload > 0 && opt.rows * opt.cols >= 4;
}

crypto::Block overlay_key(std::uint64_t seed) {
  return crypto::Xoshiro256(seed ^ 0xD7A).block();
}

struct Latencies {
  std::uint64_t mean_ns = 0;
  std::uint64_t max_ns = 0;
};

Latencies summarize(const std::vector<std::uint64_t>& samples) {
  Latencies l;
  if (samples.empty()) return l;
  std::uint64_t sum = 0;
  for (const std::uint64_t s : samples) {
    sum += s;
    l.max_ns = std::max(l.max_ns, s);
  }
  l.mean_ns = sum / samples.size();
  return l;
}

struct NetsimReport {
  std::size_t sent = 0;
  std::size_t recovered = 0;
  Latencies latency;
  std::uint64_t retransmissions = 0;
  std::size_t store_high_water = 0;
  std::uint64_t blackholed = 0;
  bool stores_drained = false;
};

/// Harness 1: the four-node store-and-forward chain through a dark middle
/// link. Returns the recovery ledger; payload mismatches count as lost.
NetsimReport run_netsim_chaos(const Options& opt) {
  const crypto::Block key = overlay_key(opt.seed);
  netsim::Network net(opt.seed);
  netsim::HostNode a, b;
  auto registry = netsim::make_default_registry();
  dtn::add_custody_modules(*registry);
  auto custody_env = [&key](std::uint32_t node) {
    core::RouterEnv env = netsim::make_basic_env(node);
    env.custody_key = key;
    env.accept_custody = true;
    return env;
  };
  dtn::CustodyRouterNode r1(custody_env(1), registry, {});
  dtn::CustodyRouterNode r2(custody_env(2), registry, {});
  net.add_node(a);
  net.add_node(r1);
  net.add_node(r2);
  net.add_node(b);

  netsim::LinkParams middle;
  middle.faults.blackout_period = 3600 * kSecond;  // one dark window at t=0
  middle.faults.blackout_duration = opt.blackout_ms * kMillisecond;
  middle.faults.drop_rate = opt.drop;
  middle.faults.duplicate_rate = opt.dup;
  const auto fa = net.connect(a, r1).first;
  const auto f12 = net.connect(r1, r2, middle).first;
  const auto [f2b, fb] = net.connect(r2, b);
  r1.env().fib32->insert(dtn::custody_prefix(100), f12);
  r2.env().fib32->insert(dtn::custody_prefix(100), f2b);

  dtn::BundleSender::Config sc;
  sc.self = dtn::custody_addr(99);
  sc.dst = dtn::custody_addr(100);
  sc.node_id = 99;
  sc.custody_key = key;
  sc.frag_payload = 64;
  sc.retry.max_retries = 8;  // outlive the blackout even if R1 refuses
  dtn::BundleSender sender(a, fa, sc);
  a.set_receiver([&](netsim::FaceId, netsim::PacketBytes p, SimTime) {
    sender.on_packet(p);
  });

  std::map<std::uint32_t, std::vector<std::uint8_t>> delivered;
  std::map<std::uint32_t, SimTime> completed_at;
  SimTime rx_now = 0;
  dtn::BundleReceiver::Config bc;
  bc.self = dtn::custody_addr(100);
  bc.custody_key = key;
  dtn::BundleReceiver receiver(b, fb, bc,
                               [&](std::uint32_t id, std::vector<std::uint8_t> p) {
                                 delivered[id] = std::move(p);
                                 completed_at[id] = rx_now;
                               });
  b.set_receiver([&](netsim::FaceId, netsim::PacketBytes p, SimTime now) {
    rx_now = now;
    receiver.on_packet(p);
  });

  // All bundles enter at t=0, while the middle link is dark.
  std::vector<std::uint32_t> ids;
  std::vector<std::vector<std::uint8_t>> payloads;
  for (std::size_t n = 0; n < opt.bundles; ++n) {
    std::vector<std::uint8_t> payload(opt.payload);
    for (std::size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<std::uint8_t>(i * 7 + n * 31 + 1);
    }
    ids.push_back(sender.send(payload));
    payloads.push_back(std::move(payload));
  }
  net.run();

  NetsimReport r;
  r.sent = ids.size();
  std::vector<std::uint64_t> latencies;
  for (std::size_t n = 0; n < ids.size(); ++n) {
    const auto it = delivered.find(ids[n]);
    if (it == delivered.end() || it->second != payloads[n]) continue;
    ++r.recovered;
    latencies.push_back(completed_at[ids[n]]);
  }
  r.latency = summarize(latencies);
  r.retransmissions =
      r1.store().stats().retransmissions + r2.store().stats().retransmissions;
  r.store_high_water = std::max(r1.store().stats().bytes_high_water,
                                r2.store().stats().bytes_high_water);
  r.blackholed = net.stats().blackholed;
  r.stores_drained = r1.store().bundles() == 0 && r2.store().bundles() == 0;
  return r;
}

struct MeshReport {
  std::size_t nodes = 0;
  std::size_t sent = 0;
  std::size_t recovered = 0;
  Latencies latency;
  std::uint64_t retransmissions = 0;
  std::size_t store_high_water = 0;
  std::uint64_t blackholed = 0;
  bool stores_drained = false;
  bool ledger_balanced = false;
};

/// Harness 2: every mesh link dark for the blackout window; bundles injected
/// into the darkness relay across the torus once it lifts.
MeshReport run_mesh_torus(const Options& opt) {
  mesh::ManualClock clock;
  mesh::MeshConfig cfg;
  cfg.use_mock = true;
  cfg.clock = &clock;
  cfg.fault_seed = opt.seed;
  cfg.registry = dtn::MeshCustodyFleet::make_registry();
  mesh::MeshNet net(cfg);

  netsim::FaultPlan plan;
  plan.drop_rate = opt.drop;
  plan.duplicate_rate = opt.dup;
  plan.reorder_rate = 0.10;
  plan.reorder_window = 2 * kMillisecond;
  plan.blackout_period = 3600 * kSecond;
  plan.blackout_duration = opt.blackout_ms * kMillisecond;
  net.build_torus(opt.rows, opt.cols, plan);

  MeshReport r;
  r.nodes = opt.rows * opt.cols;
  if (!net.discover(kSecond) || net.recompute_routes() == 0) {
    std::fprintf(stderr, "mesh discovery did not converge\n");
    return r;
  }

  dtn::MeshCustodyFleet::Config fleet_cfg;
  fleet_cfg.custody_key = overlay_key(opt.seed);
  fleet_cfg.frag_payload = 64;
  dtn::MeshCustodyFleet fleet(net, fleet_cfg);

  crypto::Xoshiro256 rng(opt.seed);
  std::vector<std::uint32_t> bundles;
  std::vector<std::uint8_t> payload(opt.payload);
  for (std::size_t n = 0; n < opt.bundles; ++n) {
    const std::size_t src = rng.below(r.nodes);
    std::size_t dst = rng.below(r.nodes);
    if (dst == src) dst = (dst + r.nodes / 2) % r.nodes;
    for (std::size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<std::uint8_t>(i + src * 31 + dst + n);
    }
    bundles.push_back(fleet.send(src, dst, payload));
  }
  net.loop().run_until_idle();
  if (!net.drain(clock, 120 * kSecond)) {
    std::fprintf(stderr, "mesh did not drain\n");
  }

  r.sent = bundles.size();
  std::vector<std::uint64_t> latencies;
  for (const std::uint32_t b : bundles) {
    if (!fleet.bundle_complete(b)) continue;
    ++r.recovered;
    const auto [sent_ns, done_ns] = fleet.bundle_times(b);
    latencies.push_back(done_ns - sent_ns);
  }
  r.latency = summarize(latencies);
  r.retransmissions = fleet.aggregate_store_stats().retransmissions;
  r.store_high_water = fleet.store_bytes_high_water();
  r.blackholed = net.aggregate_ledger().blackholed;
  r.stores_drained = fleet.stores_empty();
  r.ledger_balanced = net.ledger_balanced() && net.pending_holdbacks() == 0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;

  std::printf("== dip_dtn: custody recovery through a %llu ms blackout ==\n",
              static_cast<unsigned long long>(opt.blackout_ms));

  const NetsimReport chaos = run_netsim_chaos(opt);
  std::printf("netsim chaos: %zu/%zu bundles recovered, mean latency %.1f ms "
              "(max %.1f ms), %llu custody retransmissions, store high-water "
              "%zu B, %llu blackholed\n",
              chaos.recovered, chaos.sent,
              static_cast<double>(chaos.latency.mean_ns) / 1e6,
              static_cast<double>(chaos.latency.max_ns) / 1e6,
              static_cast<unsigned long long>(chaos.retransmissions),
              chaos.store_high_water,
              static_cast<unsigned long long>(chaos.blackholed));

  const MeshReport mesh = run_mesh_torus(opt);
  std::printf("mesh torus (%zu nodes): %zu/%zu bundles recovered, mean latency "
              "%.1f ms (max %.1f ms), %llu custody retransmissions, store "
              "high-water %zu B, %llu blackholed, ledger %s\n",
              mesh.nodes, mesh.recovered, mesh.sent,
              static_cast<double>(mesh.latency.mean_ns) / 1e6,
              static_cast<double>(mesh.latency.max_ns) / 1e6,
              static_cast<unsigned long long>(mesh.retransmissions),
              mesh.store_high_water,
              static_cast<unsigned long long>(mesh.blackholed),
              mesh.ledger_balanced ? "balanced" : "IMBALANCED");

  const bool recovered_all =
      chaos.recovered == chaos.sent && mesh.recovered == mesh.sent;
  const bool drained = chaos.stores_drained && mesh.stores_drained;
  if (!recovered_all || !drained || !mesh.ledger_balanced) {
    std::fprintf(stderr, "RECOVERY GATE FAILED: recovered=%d drained=%d "
                 "ledger=%d\n", recovered_all, drained, mesh.ledger_balanced);
    return 1;
  }
  std::printf("100%% recovery on both harnesses; all custody stores drained.\n");

  if (!opt.out.empty()) {
    std::ofstream out(opt.out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", opt.out.c_str());
      return 1;
    }
    const auto pct = [](std::size_t got, std::size_t want) {
      return want == 0 ? 0.0 : 100.0 * static_cast<double>(got) /
                                   static_cast<double>(want);
    };
    out << "{\n"
        << "  \"name\": \"dip_dtn\",\n"
        << "  \"seed\": " << opt.seed << ",\n"
        << "  \"blackout_ms\": " << opt.blackout_ms << ",\n"
        << "  \"bundles\": " << opt.bundles
        << ", \"payload_bytes\": " << opt.payload << ",\n"
        << "  \"netsim_chaos\": {\"sent\": " << chaos.sent
        << ", \"recovered\": " << chaos.recovered
        << ", \"recovery_pct\": " << pct(chaos.recovered, chaos.sent)
        << ", \"recovery_latency_ns\": {\"mean\": " << chaos.latency.mean_ns
        << ", \"max\": " << chaos.latency.max_ns
        << "}, \"retransmissions\": " << chaos.retransmissions
        << ", \"store_bytes_high_water\": " << chaos.store_high_water
        << ", \"blackholed\": " << chaos.blackholed << "},\n"
        << "  \"mesh_torus\": {\"nodes\": " << mesh.nodes
        << ", \"sent\": " << mesh.sent << ", \"recovered\": " << mesh.recovered
        << ", \"recovery_pct\": " << pct(mesh.recovered, mesh.sent)
        << ", \"recovery_latency_ns\": {\"mean\": " << mesh.latency.mean_ns
        << ", \"max\": " << mesh.latency.max_ns
        << "}, \"retransmissions\": " << mesh.retransmissions
        << ", \"store_bytes_high_water\": " << mesh.store_high_water
        << ", \"blackholed\": " << mesh.blackholed
        << ", \"ledger_balanced\": " << (mesh.ledger_balanced ? "true" : "false")
        << "}\n"
        << "}\n";
    std::printf("report written to %s\n", opt.out.c_str());
  }
  return 0;
}
