// dip_simulate — scenario-driven simulation runner.
//
//   $ ./dip_simulate scenario.conf
//   $ ./dip_simulate            # runs the built-in demo scenarios
//
// Scenario format (one `key value` per line, '#' comments):
//
//   topology  linear          # linear is the only topology (hops below)
//   hops      4               # routers on the path
//   protocol  dip32           # dip32 | dip128 | ndn | opt | xia
//   packets   1000            # how many packets (NDN: interests)
//   size      256             # padded packet size, bytes
//   loss      0.01            # per-link loss probability
//   latency_us 10             # per-link propagation delay
//   bandwidth_mbps 1000       # per-link bandwidth
//   seed      7               # PRNG seed (loss, workloads)
//
// Prints delivery/drop statistics and mean end-to-end latency.
#include <charconv>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "dip/core/ip.hpp"
#include "dip/ndn/ndn.hpp"
#include "dip/netsim/topology.hpp"
#include "dip/opt/opt.hpp"
#include "dip/xia/xia.hpp"

namespace {

using namespace dip;

struct Scenario {
  std::string protocol = "dip32";
  std::size_t hops = 3;
  std::size_t packets = 1000;
  std::size_t size = 256;
  double loss = 0.0;
  std::uint64_t latency_us = 10;
  std::uint64_t bandwidth_mbps = 1000;
  std::uint64_t seed = 7;
};

bool parse_scenario(std::istream& in, Scenario& out, std::string& error) {
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    std::string key;
    if (!(tokens >> key)) continue;  // blank

    std::string value;
    if (!(tokens >> value)) {
      error = "line " + std::to_string(line_no) + ": missing value for " + key;
      return false;
    }
    auto as_u64 = [&](std::uint64_t& dst) {
      const auto [ptr, ec] =
          std::from_chars(value.data(), value.data() + value.size(), dst);
      return ec == std::errc{} && ptr == value.data() + value.size();
    };
    bool ok = true;
    if (key == "topology") {
      ok = value == "linear";
    } else if (key == "protocol") {
      ok = value == "dip32" || value == "dip128" || value == "ndn" ||
           value == "opt" || value == "xia";
      out.protocol = value;
    } else if (key == "hops") {
      std::uint64_t v = 0;
      ok = as_u64(v) && v >= 1 && v <= 64;
      out.hops = v;
    } else if (key == "packets") {
      std::uint64_t v = 0;
      ok = as_u64(v) && v >= 1;
      out.packets = v;
    } else if (key == "size") {
      std::uint64_t v = 0;
      ok = as_u64(v) && v <= 9000;
      out.size = v;
    } else if (key == "loss") {
      try {
        out.loss = std::stod(value);
      } catch (...) {
        ok = false;
      }
      ok = ok && out.loss >= 0.0 && out.loss < 1.0;
    } else if (key == "latency_us") {
      ok = as_u64(out.latency_us);
    } else if (key == "bandwidth_mbps") {
      ok = as_u64(out.bandwidth_mbps) && out.bandwidth_mbps > 0;
    } else if (key == "seed") {
      ok = as_u64(out.seed);
    } else {
      error = "line " + std::to_string(line_no) + ": unknown key " + key;
      return false;
    }
    if (!ok) {
      error = "line " + std::to_string(line_no) + ": bad value for " + key;
      return false;
    }
  }
  return true;
}

struct RunResult {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  double mean_latency_us = 0;
  std::map<std::string, std::uint64_t> drops;
};

RunResult run_scenario(const Scenario& s) {
  netsim::Network net(s.seed);
  auto registry = netsim::make_default_registry();
  netsim::LinkParams link;
  link.latency = s.latency_us * kMicrosecond;
  link.bandwidth_bps = s.bandwidth_mbps * 1'000'000;
  link.loss_rate = s.loss;

  auto path = netsim::make_linear_path(net, s.hops, registry, [](std::size_t i) {
    return netsim::make_basic_env(static_cast<std::uint32_t>(i));
  }, link);

  std::vector<crypto::Block> secrets;
  const auto ad = xia::xid_from_label("sim-ad");
  const auto hid = xia::xid_from_label("sim-hid");
  for (std::size_t i = 0; i < s.hops; ++i) {
    auto& env = path->routers[i]->env();
    secrets.push_back(env.node_secret);
    env.fib32->insert({fib::parse_ipv4("10.0.0.0").value(), 8},
                      path->downstream_face[i]);
    env.fib128->insert({fib::parse_ipv6("2001:db8::").value(), 32},
                       path->downstream_face[i]);
    ndn::install_name_route(*env.fib32, fib::Name::parse("/sim"),
                            path->downstream_face[i]);
    if (i + 1 < s.hops) {
      env.xid_table->insert(fib::XidType::kAd, ad, path->downstream_face[i]);
    } else {
      env.xid_table->set_local(fib::XidType::kAd, ad);
      env.xid_table->insert(fib::XidType::kHid, hid, path->downstream_face[i]);
    }
    if (s.protocol == "opt") env.default_egress = path->downstream_face[i];
    else env.default_egress.reset();
  }

  // Build the per-packet template.
  crypto::Xoshiro256 rng(s.seed);
  const auto session =
      opt::negotiate_session(rng.block(), secrets, rng.block());
  auto pad = [&](std::vector<std::uint8_t> wire) {
    if (wire.size() < s.size) wire.resize(s.size, 0xA5);
    return wire;
  };

  std::vector<std::uint8_t> packet;
  if (s.protocol == "dip32") {
    packet = pad(core::make_dip32_header(fib::parse_ipv4("10.9.9.9").value(),
                                         fib::parse_ipv4("172.16.0.1").value())
                     ->serialize());
  } else if (s.protocol == "dip128") {
    packet = pad(core::make_dip128_header(fib::parse_ipv6("2001:db8::9").value(),
                                          fib::parse_ipv6("2001:db8::1").value())
                     ->serialize());
  } else if (s.protocol == "opt") {
    const std::vector<std::uint8_t> payload = {'s'};
    auto wire = opt::make_opt_header(session, payload, 1)->serialize();
    wire.insert(wire.end(), payload.begin(), payload.end());
    packet = pad(std::move(wire));
  } else if (s.protocol == "xia") {
    const auto dag =
        xia::make_service_dag(ad, hid, fib::XidType::kSid,
                              xia::xid_from_label("sim-sid"), false);
    packet = pad(xia::make_xia_header(dag)->serialize());
  }

  RunResult result;
  std::uint64_t latency_sum = 0;
  // One packet is in flight at a time (net.run() per send), so a single
  // timestamp suffices — and stays correct when packets are lost.
  SimTime last_send = 0;

  if (s.protocol == "ndn") {
    // NDN: distinct names so the PIT doesn't collapse the workload; the
    // destination answers every interest.
    path->destination.set_receiver(
        [&](netsim::FaceId face, netsim::PacketBytes bytes, SimTime) {
          const auto h = core::DipHeader::parse(bytes);
          if (!h) return;
          const auto code = ndn::extract_name_code(*h);
          if (!code) return;
          path->destination.send(face, ndn::make_data_header32(*code)->serialize());
        });
    path->source.set_receiver([&](netsim::FaceId, netsim::PacketBytes, SimTime at) {
      latency_sum += at - last_send;
      ++result.delivered;
    });
    for (std::uint64_t i = 0; i < s.packets; ++i) {
      const auto name = fib::Name::parse("/sim/obj" + std::to_string(i));
      last_send = net.now();
      path->source.send(path->source_face,
                        pad(ndn::make_interest_header(name)->serialize()));
      ++result.sent;
      net.run();
    }
  } else {
    path->destination.set_receiver(
        [&](netsim::FaceId, netsim::PacketBytes, SimTime at) {
          latency_sum += at - last_send;
          ++result.delivered;
        });
    for (std::uint64_t i = 0; i < s.packets; ++i) {
      last_send = net.now();
      path->source.send(path->source_face, packet);
      ++result.sent;
      net.run();
    }
  }

  if (result.delivered > 0) {
    result.mean_latency_us = static_cast<double>(latency_sum) /
                             static_cast<double>(result.delivered) / 1000.0;
  }
  for (const auto& router : path->routers) {
    for (int reason = 0; reason < 16; ++reason) {
      const auto count = router->drops(static_cast<core::DropReason>(reason));
      if (count > 0) {
        result.drops[std::string(
            core::to_string(static_cast<core::DropReason>(reason)))] += count;
      }
    }
  }
  return result;
}

void print_result(const Scenario& s, const RunResult& r) {
  std::printf("protocol=%-7s hops=%zu packets=%zu size=%zuB loss=%.2f\n",
              s.protocol.c_str(), s.hops, s.packets, s.size, s.loss);
  std::printf("  sent=%llu delivered=%llu (%.1f%%) mean_latency=%.1f us\n",
              static_cast<unsigned long long>(r.sent),
              static_cast<unsigned long long>(r.delivered),
              r.sent ? 100.0 * static_cast<double>(r.delivered) /
                           static_cast<double>(r.sent)
                     : 0.0,
              r.mean_latency_us);
  for (const auto& [reason, count] : r.drops) {
    std::printf("  router drops: %s = %llu\n", reason.c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    Scenario scenario;
    std::string error;
    if (!parse_scenario(file, scenario, error)) {
      std::fprintf(stderr, "%s: %s\n", argv[1], error.c_str());
      return 1;
    }
    print_result(scenario, run_scenario(scenario));
    return 0;
  }

  std::printf("== dip_simulate demo scenarios ==\n\n");
  for (const char* protocol : {"dip32", "dip128", "ndn", "opt", "xia"}) {
    Scenario s;
    s.protocol = protocol;
    s.packets = 200;
    s.loss = 0.02;
    print_result(s, run_scenario(s));
  }
  std::printf("write your own scenario file (see the header comment) and run\n"
              "  dip_simulate scenario.conf\n");
  return 0;
}
