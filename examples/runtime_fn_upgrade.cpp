// Runtime FN upgrade (§5 "Opportunities with DIP"):
//
// "the network providers can now support new services by only upgrading
// FNs, instead of replacing the underlying hardware."
//
// A provider runs plain IP forwarding. Users start sending packets that
// request in-band telemetry (F_int). Initially the routers don't implement
// it — packets still flow (optional FNs are ignored, §2.4). The operator
// then deploys the telemetry module into the running registry; the next
// packets get per-hop records, no restart, no redeploy.
//
// Both live-upgrade surfaces appear here: operation modules hot-swap
// through the OpRegistry, and routes flow through the control plane's
// RouteJournal onto RCU snapshot tables (docs/CONTROL_PLANE.md) — the
// data path never blocks on either kind of change.
#include <cstdio>
#include <memory>
#include <vector>

#include "dip/bootstrap/capability.hpp"
#include "dip/core/ip.hpp"
#include "dip/ctrl/journal.hpp"
#include "dip/host/host_engine.hpp"
#include "dip/netsim/topology.hpp"
#include "dip/telemetry/telemetry.hpp"

int main() {
  using namespace dip;

  std::printf("== Runtime FN upgrade: deploying F_int on a live network ==\n\n");

  // Per-AS registry the operator can mutate at runtime. Start with IP only.
  auto registry = std::make_shared<core::OpRegistry>();
  registry->add(std::make_unique<core::Match32Op>());
  registry->add(std::make_unique<core::SourceOp>());

  netsim::Network net;
  auto path = netsim::make_linear_path(net, 3, registry, [](std::size_t i) {
    return netsim::make_basic_env(static_cast<std::uint32_t>(i));
  });
  // Routes go in the operator way: each router's tables live behind a
  // control-plane RouteJournal, so installs are published as RCU snapshots
  // the data path picks up at its next burst — same mechanism a live
  // route change would use (docs/CONTROL_PLANE.md).
  std::vector<std::unique_ptr<ctrl::RouteJournal>> journals;
  for (std::size_t i = 0; i < 3; ++i) {
    auto& env = path->routers[i]->env();
    env.default_egress.reset();
    auto tables = std::make_shared<ctrl::ControlTables>();
    journals.push_back(std::make_unique<ctrl::RouteJournal>(tables));
    journals[i]->seed(env.fib32.get());
    env.control = std::move(tables);
    env.ctrl_reader = env.control->register_reader();
    env.control->domain.resume(env.ctrl_reader);
    journals[i]->add_route32({fib::parse_ipv4("10.0.0.0").value(), 8},
                             path->downstream_face[i]);
    journals[i]->flush();
  }

  host::HostEngine engine;
  std::optional<telemetry::TelemetryReport> last_report;
  path->destination.set_receiver([&](netsim::FaceId, netsim::PacketBytes packet,
                                     SimTime) {
    const auto d = engine.receive(packet);
    last_report = d.telemetry;
  });

  auto send_probe = [&] {
    core::HeaderBuilder b;
    b.add_router_fn(core::OpKey::kMatch32, fib::parse_ipv4("10.0.0.9").value().bytes);
    b.add_router_fn(core::OpKey::kSource, fib::parse_ipv4("172.16.0.1").value().bytes);
    telemetry::add_telemetry_fn(b, 4);
    path->source.send(path->source_face, b.build()->serialize());
    net.run();
  };

  // --- phase 1: FN not deployed --------------------------------------------
  std::printf("registry epoch %llu, F_int deployed: %s\n",
              static_cast<unsigned long long>(registry->epoch()),
              registry->contains(core::OpKey::kTelemetry) ? "yes" : "no");
  send_probe();
  std::printf("[probe 1] delivered with %zu telemetry records "
              "(FN unknown -> ignored, packet still flows)\n\n",
              last_report ? last_report->hops.size() : 0);

  // --- phase 2: live deployment --------------------------------------------
  std::printf(">>> operator: registry->add(TelemetryOp) — no restart <<<\n\n");
  registry->add(std::make_unique<telemetry::TelemetryOp>());
  std::printf("registry epoch %llu, F_int deployed: %s\n",
              static_cast<unsigned long long>(registry->epoch()),
              registry->contains(core::OpKey::kTelemetry) ? "yes" : "no");

  send_probe();
  std::printf("[probe 2] delivered with %zu telemetry records:\n",
              last_report ? last_report->hops.size() : 0);
  if (last_report) {
    for (const auto& hop : last_report->hops) {
      std::printf("           node %u, ingress face %u, t=%u ns\n", hop.node_id,
                  hop.ingress_face, hop.timestamp_lo);
    }
  }

  // --- phase 3: rollback -----------------------------------------------------
  std::printf("\n>>> operator: registry->remove(F_int) — rollback <<<\n\n");
  (void)registry->remove(core::OpKey::kTelemetry);
  send_probe();
  std::printf("[probe 3] delivered with %zu telemetry records\n",
              last_report ? last_report->hops.size() : 0);

  // Every router forwarded off RCU snapshots the whole time; the tables
  // replaced by the route install are reclaimed once the data path passed a
  // burst boundary (a grace period, docs/CONTROL_PLANE.md).
  std::size_t published = 0;
  std::size_t reclaimed = 0;
  for (auto& journal : journals) {
    published += journal->stats().snapshots_published;
    reclaimed += journal->tables().domain.try_reclaim();
  }
  std::printf("\n[control plane] %zu route snapshots published, %zu retired "
              "tables reclaimed, backlog %zu\n",
              published, reclaimed, journals[0]->tables().domain.backlog());

  std::printf("\nSame hardware, same packets in flight — the service appeared and\n"
              "disappeared by swapping one operation module (5).\n");
  return 0;
}
