// Incremental deployment (§2.4): two DIP islands joined across a
// DIP-agnostic IPv6 core by a tunnel, plus border-router down/up-conversion
// for talking to pure-legacy hosts.
#include <cstdio>

#include "dip/core/ip.hpp"
#include "dip/legacy/border.hpp"
#include "dip/legacy/tunnel.hpp"
#include "dip/netsim/topology.hpp"

int main() {
  using namespace dip;

  std::printf("== Incremental deployment: DIP islands over a legacy IPv6 core ==\n\n");

  // Island A (DIP) ... border L ====(IPv6 core, 2 legacy routers)==== border R ... Island B (DIP)
  const auto left_addr = fib::parse_ipv6("2001:db8:a::1").value();
  const auto right_addr = fib::parse_ipv6("2001:db8:b::1").value();
  legacy::Ipv6Tunnel tunnel_left(left_addr, right_addr);
  legacy::Ipv6Tunnel tunnel_right(right_addr, left_addr);

  legacy::Ipv6Forwarder core1(fib::make_lpm<128>(fib::LpmEngine::kPatricia));
  legacy::Ipv6Forwarder core2(fib::make_lpm<128>(fib::LpmEngine::kPatricia));
  core1.table().insert({fib::parse_ipv6("2001:db8:b::").value(), 48}, 1);
  core2.table().insert({fib::parse_ipv6("2001:db8:b::").value(), 48}, 2);

  // The DIP packet from island A to island B.
  const auto header = core::make_dip32_header(fib::parse_ipv4("10.2.0.9").value(),
                                              fib::parse_ipv4("10.1.0.1").value());
  auto dip_packet = header->serialize();
  const char msg[] = "crossing the legacy core";
  dip_packet.insert(dip_packet.end(), msg, msg + sizeof(msg));
  std::printf("[island A] DIP packet: %zu bytes\n", dip_packet.size());

  // Border L encapsulates.
  auto in_flight = tunnel_left.encapsulate(dip_packet);
  std::printf("[border L] encapsulated in IPv6: %zu bytes (outer dst %s)\n",
              in_flight.size(), fib::format_ipv6(right_addr).c_str());

  // Legacy core forwards on the outer header only — it never parses DIP.
  for (auto* router : {&core1, &core2}) {
    const auto decision = router->forward(in_flight);
    if (decision.status != legacy::ForwardStatus::kForwarded) {
      std::printf("legacy core failed to forward!\n");
      return 1;
    }
    std::printf("[legacy ] forwarded on outer IPv6 header (next hop %u), "
                "hop limit now %u\n",
                decision.next_hop, in_flight[7]);
  }

  // Border R decapsulates.
  const auto delivered = tunnel_right.decapsulate(in_flight);
  if (!delivered || *delivered != dip_packet) {
    std::printf("tunnel corrupted the DIP packet!\n");
    return 1;
  }
  std::printf("[border R] decapsulated: %zu bytes, DIP packet intact\n\n",
              delivered->size());

  // ---- Part 2: talking to a pure-legacy host via border conversion --------
  std::printf("== Backward compatibility: DIP <-> native IPv6 (no tunnel) ==\n\n");

  // A DIP host builds a packet whose FN locations ARE a native IPv6 header
  // (the paper: "the existing network protocol header can be viewed as an
  // FN location in the DIP").
  legacy::Ipv6Header native;
  native.src = fib::parse_ipv6("2001:db8:a::42").value();
  native.dst = fib::parse_ipv6("2001:db8:ffff::7").value();
  native.next_header = 17;
  native.payload_length = 4;
  std::vector<std::uint8_t> native_packet(40 + 4, 0xEE);
  (void)native.serialize(native_packet);

  const auto wrapped = legacy::wrap_ipv6(native_packet);
  std::printf("[DIP host] composed carrier header: %zu bytes "
              "(40 B IPv6 as FN locations + %zu B DIP framing)\n",
              wrapped->wire_size(), wrapped->wire_size() - 40);

  // Outbound border strips the DIP framing; what exits is plain IPv6.
  auto dip_carrier = wrapped->serialize();
  dip_carrier.insert(dip_carrier.end(), native_packet.begin() + 40, native_packet.end());
  const auto stripped = legacy::strip_to_legacy(dip_carrier);
  std::printf("[border  ] stripped to %zu bytes; version nibble = %d\n",
              stripped->size(), (*stripped)[0] >> 4);

  // A legacy IPv6 router happily forwards it.
  legacy::Ipv6Forwarder legacy_router(fib::make_lpm<128>(fib::LpmEngine::kPatricia));
  legacy_router.table().insert({fib::parse_ipv6("2001:db8:ffff::").value(), 48}, 9);
  auto legacy_copy = *stripped;
  const auto decision = legacy_router.forward(legacy_copy);
  std::printf("[legacy  ] forwarded natively: %s (next hop %u)\n",
              decision.status == legacy::ForwardStatus::kForwarded ? "yes" : "NO",
              decision.next_hop);

  // Inbound border adds the framing back.
  const auto restored = legacy::add_from_legacy(*stripped);
  std::printf("[border  ] re-wrapped into DIP: %zu bytes; parses as DIP: %s\n",
              restored->size(),
              core::DipHeader::parse(*restored).has_value() ? "yes" : "NO");

  std::printf("\nBoth §2.4 deployment stories demonstrated: tunneling across\n"
              "DIP-agnostic cores, and lossless border conversion to legacy IP.\n");
  return 0;
}
