// Quickstart: compose a DIP header, run it through a 3-router simulated
// path, and watch Algorithm 1 forward it.
//
//   $ ./quickstart
//
// Walks through the §2 pipeline: bootstrap (which FNs does the AS offer?),
// host construction (build the FN program), and router processing.
#include <cstdio>

#include "dip/bootstrap/dhcp.hpp"
#include "dip/bytes/hex.hpp"
#include "dip/core/ip.hpp"
#include "dip/netsim/topology.hpp"

int main() {
  using namespace dip;

  std::printf("== DIP quickstart: IPv4-over-DIP across three routers ==\n\n");

  // --- 1. Bootstrap (§2.3): ask the access AS which FNs it supports. -----
  bootstrap::BootstrapServer access_as(bootstrap::full_capability_set());
  bootstrap::BootstrapClient host;
  host.learn(access_as.respond(bootstrap::DiscoverRequest{}));
  std::printf("[bootstrap] AS offers %zu field operations\n", host.offered().size());

  // --- 2. Host construction (§2.3): build the DIP-32 header. -------------
  const auto dst = fib::parse_ipv4("10.1.1.9").value();
  const auto src = fib::parse_ipv4("172.16.0.1").value();
  const auto header = core::make_dip32_header(dst, src);
  if (!header) return 1;
  if (const auto missing = host.first_missing(header->fns)) {
    std::printf("AS does not support %s — cannot send\n",
                std::string(core::op_key_name(*missing)).c_str());
    return 1;
  }

  auto packet = header->serialize();
  const char payload[] = "hello, narrow waist";
  packet.insert(packet.end(), payload, payload + sizeof(payload));

  std::printf("[host] composed DIP-32 header: %zu bytes (paper Table 2: 26)\n",
              header->wire_size());
  std::printf("[host] FN program: ");
  for (const auto& fn : header->fns) {
    std::printf("(loc %u, len %u, %s) ", fn.field_loc, fn.field_len,
                std::string(core::op_key_name(fn.key())).c_str());
  }
  std::printf("\n[host] wire bytes:\n%s\n",
              bytes::hex_dump({packet.data(), header->wire_size()}).c_str());

  // --- 3. Topology: source -- r0 -- r1 -- r2 -- destination. -------------
  netsim::Network net;
  auto registry = netsim::make_default_registry();
  auto path = netsim::make_linear_path(net, 3, registry, [](std::size_t i) {
    return netsim::make_basic_env(static_cast<std::uint32_t>(i));
  });
  for (std::size_t i = 0; i < 3; ++i) {
    auto& env = path->routers[i]->env();
    env.default_egress.reset();  // the FIB must decide
    env.fib32->insert({fib::parse_ipv4("10.0.0.0").value(), 8},
                      path->downstream_face[i]);
  }

  // Trace every hop.
  net.set_tap([](netsim::NodeId from, netsim::NodeId to, netsim::FaceId,
                 std::span<const std::uint8_t>, SimTime at) {
    std::printf("[t=%6llu ns] node %u -> node %u\n",
                static_cast<unsigned long long>(at), from, to);
  });

  path->destination.set_receiver([&](netsim::FaceId, netsim::PacketBytes bytes,
                                     SimTime at) {
    const auto h = core::DipHeader::parse(bytes);
    std::printf("\n[destination] got %zu bytes at t=%llu ns, hop limit now %u\n",
                bytes.size(), static_cast<unsigned long long>(at),
                h ? h->basic.hop_limit : 0);
    std::printf("[destination] payload: \"%s\"\n",
                reinterpret_cast<const char*>(bytes.data() + h->wire_size()));
  });

  // --- 4. Send and run. ---------------------------------------------------
  path->source.send(path->source_face, packet);
  net.run();

  const auto& counters = path->routers[0]->env().counters;
  std::printf("\n[router 0] processed=%llu forwarded=%llu fn_executed=%llu\n",
              static_cast<unsigned long long>(counters.processed),
              static_cast<unsigned long long>(counters.forwarded),
              static_cast<unsigned long long>(counters.fn_executed));
  std::printf("\nDone: one FN program, three routers, zero protocol-specific code\n"
              "in the forwarding engine — that is the DIP pitch.\n");
  return 0;
}
