// Secure content delivery with NDN+OPT — the paper's §2.3 walkthrough.
//
// "a host requests content with content name, and meanwhile it verifies the
// content's source and the network path used to deliver the content are
// secure."
//
// The consumer requests "/hotnets/org" with an NDN interest; the producer
// answers with an NDN+OPT data packet whose authentication tags every
// on-path router updates (F_parm -> F_MAC -> F_mark); the consumer runs
// F_ver. We then let an attacker tamper with the payload mid-path and show
// verification catching it.
#include <cstdio>

#include "dip/ndn/ndn.hpp"
#include "dip/netsim/topology.hpp"
#include "dip/opt/opt.hpp"

int main() {
  using namespace dip;

  std::printf("== NDN+OPT: secure content delivery (paper 2.3 example) ==\n\n");

  constexpr std::size_t kHops = 3;
  netsim::Network net;
  auto registry = netsim::make_default_registry();
  auto path = netsim::make_linear_path(net, kHops, registry, [](std::size_t i) {
    return netsim::make_basic_env(static_cast<std::uint32_t>(i));
  });

  const fib::Name name = fib::Name::parse("/hotnets/org");
  const std::uint32_t code = ndn::encode_name32(name);
  std::vector<crypto::Block> router_secrets;
  for (std::size_t i = 0; i < kHops; ++i) {
    auto& env = path->routers[i]->env();
    env.default_egress.reset();
    ndn::install_name_route(*env.fib32, fib::Name::parse("/hotnets"),
                            path->downstream_face[i]);
    router_secrets.push_back(env.node_secret);
  }

  // OPT key negotiation (footnote 3): data flows producer -> consumer, so
  // the data path traverses the routers in reverse order.
  std::vector<crypto::Block> data_path(router_secrets.rbegin(), router_secrets.rend());
  crypto::Xoshiro256 rng(2022);
  const crypto::Block consumer_secret = rng.block();
  const opt::Session session =
      opt::negotiate_session(rng.block(), data_path, consumer_secret);
  std::printf("[setup] session established; %zu router keys derived\n\n",
              session.router_keys.size());

  const std::vector<std::uint8_t> content = {'D', 'I', 'P', ' ', 'p', 'a',
                                             'p', 'e', 'r', '.', 'p', 'd', 'f'};

  // Producer: answer interests with authenticated data.
  path->destination.set_receiver([&](netsim::FaceId face, netsim::PacketBytes packet,
                                     SimTime) {
    const auto h = core::DipHeader::parse(packet);
    if (!h || !ndn::extract_name_code(*h)) return;
    std::printf("[producer] interest for %s arrived; sending NDN+OPT data "
                "(header %zu B, paper: 108)\n",
                name.to_string().c_str(),
                opt::make_ndn_opt_header(code, false, session, content, 1)->wire_size());
    const auto reply = opt::make_ndn_opt_header(code, /*interest=*/false, session,
                                                content, /*timestamp=*/1000);
    auto wire = reply->serialize();
    wire.insert(wire.end(), content.begin(), content.end());
    path->destination.send(face, std::move(wire));
  });

  // Consumer: verify the OPT chain on arrival.
  auto verify_and_report = [&](const netsim::PacketBytes& packet) {
    const auto h = core::DipHeader::parse(packet);
    if (!h) return;
    const auto payload =
        std::span<const std::uint8_t>(packet).subspan(h->wire_size());
    const auto verdict = opt::verify_packet(session, h->locations, payload);
    std::printf("[consumer] data received, %zu B payload, F_ver verdict: %s\n",
                payload.size(), std::string(opt::to_string(verdict)).c_str());
  };
  path->source.set_receiver([&](netsim::FaceId, netsim::PacketBytes packet, SimTime) {
    verify_and_report(packet);
  });

  // --- Round 1: honest network. -------------------------------------------
  std::printf("-- round 1: honest delivery --\n");
  path->source.send(path->source_face, ndn::make_interest_header(name)->serialize());
  net.run();

  // --- Round 2: attacker swaps the content at the producer. ----------------
  std::printf("\n-- round 2: forged content (attacker lacks the session keys) --\n");
  path->destination.set_receiver([&](netsim::FaceId face, netsim::PacketBytes, SimTime) {
    // A forged producer: right name, wrong keys (it cannot know K_D).
    opt::Session forged = session;
    forged.destination_key[0] ^= 0x55;
    const std::vector<std::uint8_t> fake = {'m', 'a', 'l', 'w', 'a', 'r', 'e'};
    const auto reply = opt::make_ndn_opt_header(code, false, forged, fake, 1000);
    auto wire = reply->serialize();
    wire.insert(wire.end(), fake.begin(), fake.end());
    path->destination.send(face, std::move(wire));
  });
  path->source.send(path->source_face, ndn::make_interest_header(name)->serialize());
  net.run();

  std::printf("\nThe PVF chain anchored in the destination key rejects content\n"
              "whose source never held the session keys — source validation and\n"
              "path authentication riding on NDN delivery, composed from FNs.\n");
  return 0;
}
