// dip_fit — print the Table-1 hardware fit matrix.
//
// For each of the six §3 compositions, run the PISA stage-budget compiler
// against the default TNA-like model and print the verdict plus the headline
// resources. Two extra rows illustrate the degrade/unfit edges the paper
// discusses: OPT with an AES MAC (needs a resubmission and recirculation —
// §4.1's reason for choosing 2EM), and a sub-byte field slice (breaks the
// preset-slice compromise outright).
//
//   ./build/examples/dip_fit          # the matrix
//   ./build/examples/dip_fit -v      # matrix + full per-stage reports
#include <cstdio>
#include <cstring>
#include <string>

#include "dip/core/fn.hpp"
#include "dip/pisa/compiler.hpp"
#include "dip/pisa/table1.hpp"

namespace {

struct Row {
  std::string name;
  std::vector<dip::core::FnTriple> fns;
  std::size_t locations_bytes = 0;
  dip::pisa::CompileOptions opts;
};

void print_row(const Row& row, const dip::pisa::PlacementReport& report) {
  std::printf("  %-12s %-8s passes=%zu stages=%-2zu parser=%-2zu phv=%-2zu cycles=%-4llu %s\n",
              row.name.c_str(), std::string(dip::pisa::to_string(report.verdict)).c_str(),
              report.passes.size(), report.stages_used, report.parser_states,
              report.phv_containers,
              static_cast<unsigned long long>(report.cycles),
              report.reason.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bool verbose = argc > 1 && std::strcmp(argv[1], "-v") == 0;
  const dip::pisa::StageCompiler compiler;
  const auto& model = compiler.model();

  std::vector<Row> rows;
  for (const auto& comp : dip::pisa::table1_compositions()) {
    rows.push_back({comp.name, comp.fns, comp.locations_bytes, {}});
  }
  // Illustrative edges beyond Table 1.
  {
    const auto& opt = dip::pisa::table1_compositions()[3];
    Row aes{opt.name + "+aes", opt.fns, opt.locations_bytes, {}};
    aes.opts.aes_mac = true;
    rows.push_back(std::move(aes));
  }
  rows.push_back({"sub-byte", {dip::core::FnTriple::router(0, 3, dip::core::OpKey::kMark)}, 4, {}});

  std::printf("pisa fit matrix (stages=%zu, passes<=%zu, phv=%zu, parser<=%zu)\n",
              model.stages, model.max_passes, model.phv_containers,
              model.max_parser_states);
  for (const Row& row : rows) {
    const auto report = compiler.compile(row.fns, row.locations_bytes, row.opts);
    print_row(row, report);
    if (verbose) {
      const std::string text = dip::pisa::format_report(row.name, row.fns,
                                                        row.locations_bytes, report, model);
      std::printf("%s\n", text.c_str());
    }
  }
  return 0;
}
