// Protocol zoo: all five §3 protocols over ONE topology and ONE registry.
//
// The point of DIP is that a single shared L3 core (the FN modules) carries
// radically different protocols simultaneously. This example sends an
// IPv4-over-DIP packet, an IPv6-over-DIP packet, an NDN interest/data
// exchange, an OPT-authenticated packet, and an XIA DAG packet through the
// same three routers — no per-protocol forwarding code anywhere.
#include <algorithm>
#include <cstdio>

#include "dip/core/ip.hpp"
#include "dip/ndn/ndn.hpp"
#include "dip/netsim/topology.hpp"
#include "dip/opt/opt.hpp"
#include "dip/xia/xia.hpp"

namespace {

struct Scoreboard {
  int delivered = 0;
  int verified = 0;
};

}  // namespace

int main() {
  using namespace dip;

  std::printf("== Protocol zoo: IP / NDN / OPT / XIA on one DIP data plane ==\n\n");

  constexpr std::size_t kHops = 3;
  netsim::Network net;
  auto registry = netsim::make_default_registry();
  auto path = netsim::make_linear_path(net, kHops, registry, [](std::size_t i) {
    return netsim::make_basic_env(static_cast<std::uint32_t>(i));
  });

  // --- populate every table once ------------------------------------------
  const fib::Name content = fib::Name::parse("/zoo/elephant");
  const auto ad = xia::xid_from_label("zoo-as");
  const auto hid = xia::xid_from_label("zoo-host");
  const auto sid = xia::xid_from_label("zoo-service");

  std::vector<crypto::Block> secrets;
  for (std::size_t i = 0; i < kHops; ++i) {
    auto& env = path->routers[i]->env();
    env.default_egress.reset();
    const auto down = path->downstream_face[i];
    env.fib32->insert({fib::parse_ipv4("10.0.0.0").value(), 8}, down);
    env.fib128->insert({fib::parse_ipv6("2001:db8::").value(), 32}, down);
    ndn::install_name_route(*env.fib32, fib::Name::parse("/zoo"), down);
    if (i + 1 < kHops) {
      env.xid_table->insert(fib::XidType::kAd, ad, down);
    } else {
      env.xid_table->set_local(fib::XidType::kAd, ad);
      env.xid_table->insert(fib::XidType::kHid, hid, down);
    }
    secrets.push_back(env.node_secret);
  }

  // OPT needs a default forwarding port (the paper's wired one-hop setup,
  // generalized): re-enable it only for the OPT run later via match-free
  // forwarding. We instead ride OPT on top of DIP-32 forwarding — compose!
  crypto::Xoshiro256 rng(7);
  const auto session = opt::negotiate_session(rng.block(), secrets, rng.block());

  Scoreboard score;
  path->destination.set_receiver([&](netsim::FaceId face, netsim::PacketBytes packet,
                                     SimTime) {
    const auto h = core::DipHeader::parse(packet);
    if (!h) return;
    ++score.delivered;

    // Which protocol was that? Read the FN program.
    std::string program;
    for (const auto& fn : h->fns) {
      program += std::string(core::op_key_name(fn.key())) + " ";
    }
    std::printf("[dst] packet %d delivered; FN program: %s\n", score.delivered,
                program.c_str());

    // NDN interests get answered.
    if (!h->fns.empty() && h->fns[0].key() == core::OpKey::kFib) {
      const auto code = ndn::extract_name_code(*h);
      if (code) {
        auto reply = ndn::make_data_header32(*code)->serialize();
        reply.push_back('z');
        path->destination.send(face, std::move(reply));
      }
    }
    // OPT packets get verified: the F_ver triple tells us where the 544-bit
    // block sits, wherever the host placed it.
    const auto ver = std::find_if(h->fns.begin(), h->fns.end(), [](const auto& fn) {
      return fn.key() == core::OpKey::kVer;
    });
    if (ver != h->fns.end()) {
      const auto payload =
          std::span<const std::uint8_t>(packet).subspan(h->wire_size());
      if (opt::verify_packet(session, h->locations, payload, 0, 0,
                             ver->field_loc / 8) == opt::VerifyResult::kOk) {
        ++score.verified;
        std::printf("[dst]   ... and the OPT chain verified (source+path OK)\n");
      }
    }
  });
  path->source.set_receiver([&](netsim::FaceId, netsim::PacketBytes packet, SimTime) {
    const auto h = core::DipHeader::parse(packet);
    if (h && !h->fns.empty() && h->fns[0].key() == core::OpKey::kPit) {
      std::printf("[src] NDN data came back (%zu bytes)\n", packet.size());
    }
  });

  // --- 1: IPv4-over-DIP -----------------------------------------------------
  std::printf("-- DIP-32 --\n");
  path->source.send(path->source_face,
                    core::make_dip32_header(fib::parse_ipv4("10.1.1.9").value(),
                                            fib::parse_ipv4("172.16.0.1").value())
                        ->serialize());
  net.run();

  // --- 2: IPv6-over-DIP -----------------------------------------------------
  std::printf("-- DIP-128 --\n");
  path->source.send(path->source_face,
                    core::make_dip128_header(fib::parse_ipv6("2001:db8::9").value(),
                                             fib::parse_ipv6("2001:db8::1").value())
                        ->serialize());
  net.run();

  // --- 3: NDN interest/data --------------------------------------------------
  std::printf("-- NDN --\n");
  path->source.send(path->source_face, ndn::make_interest_header(content)->serialize());
  net.run();

  // --- 4: OPT (composed with DIP-32 forwarding — a derived protocol!) --------
  std::printf("-- OPT (riding DIP-32 forwarding) --\n");
  {
    const std::vector<std::uint8_t> payload = {'s', '3', 'c', 'r', '3', 't'};
    const auto block = opt::make_source_block(session, payload, 1000);
    core::HeaderBuilder b;
    // Forwarding FNs first, then the OPT chain over a trailing block.
    b.add_router_fn(core::OpKey::kMatch32, fib::parse_ipv4("10.1.1.9").value().bytes);
    b.add_router_fn(core::OpKey::kSource, fib::parse_ipv4("172.16.0.1").value().bytes);
    const std::uint16_t loc = b.add_location(block);
    b.add_fn(core::FnTriple::router(loc + 128, 128, core::OpKey::kParm));
    b.add_fn(core::FnTriple::router(loc, 416, core::OpKey::kMac));
    b.add_fn(core::FnTriple::router(loc + 288, 128, core::OpKey::kMark));
    b.add_fn(core::FnTriple::host(loc, 544, core::OpKey::kVer));
    auto wire = b.build()->serialize();
    wire.insert(wire.end(), payload.begin(), payload.end());
    path->source.send(path->source_face, std::move(wire));
    net.run();
  }

  // --- 5: XIA -----------------------------------------------------------------
  std::printf("-- XIA --\n");
  const auto dag = xia::make_service_dag(ad, hid, fib::XidType::kSid, sid, false);
  path->source.send(path->source_face, xia::make_xia_header(dag)->serialize());
  net.run();

  std::printf("\n%d packets delivered, %d OPT-verified — five protocols, one data "
              "plane.\n",
              score.delivered, score.verified);
  return score.delivered >= 5 ? 0 : 1;
}
