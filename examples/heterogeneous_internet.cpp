// Heterogeneous deployment, end to end (§2.3 + §2.4).
//
// Four ASes; AS3 never deployed the OPT chain. A host in AS1 wants to send
// authenticated traffic to AS4. Two worlds:
//
//  * without capability propagation, the host composes OPT anyway, the
//    packet dies at AS3, and an FN-unsupported notification comes back
//    (the §2.4 ICMP-like mechanism);
//  * with BGP-community-style propagation (§2.3), the host asks the AS
//    graph what works end to end, sees the OPT chain is unusable, and
//    composes plain DIP-32 instead — no wasted round trip.
#include <cstdio>

#include "dip/bootstrap/propagation.hpp"
#include "dip/core/ip.hpp"
#include "dip/netsim/topology.hpp"
#include "dip/opt/opt.hpp"
#include "dip/security/error_message.hpp"

int main() {
  using namespace dip;
  using core::OpKey;

  std::printf("== Heterogeneous internet: AS3 lacks the OPT chain ==\n\n");

  // --- the AS-level capability map (BGP-community propagation, §2.3) ------
  bootstrap::AsGraph graph;
  bootstrap::CapabilitySet no_opt = bootstrap::full_capability_set();
  no_opt.remove(OpKey::kParm);
  no_opt.remove(OpKey::kMac);
  no_opt.remove(OpKey::kMark);
  graph.add_as(1, bootstrap::full_capability_set());
  graph.add_as(2, bootstrap::full_capability_set());
  graph.add_as(3, no_opt);
  graph.add_as(4, bootstrap::full_capability_set());
  graph.add_link(1, 2);
  graph.add_link(2, 3);
  graph.add_link(3, 4);

  // --- the wire-level topology: one border router per AS ------------------
  netsim::Network net;
  auto registry = netsim::make_default_registry();
  auto path = netsim::make_linear_path(net, 4, registry, [](std::size_t i) {
    return netsim::make_basic_env(static_cast<std::uint32_t>(i + 1));
  });
  std::vector<crypto::Block> secrets;
  for (std::size_t i = 0; i < 4; ++i) {
    auto& env = path->routers[i]->env();
    env.fib32->insert({fib::parse_ipv4("10.4.0.0").value(), 16},
                      path->downstream_face[i]);
    env.fib32->insert({fib::parse_ipv4("10.1.0.0").value(), 16},
                      path->upstream_face[i]);
    env.default_egress.reset();
    secrets.push_back(env.node_secret);
  }
  path->routers[2]->env().disabled_keys.insert(OpKey::kParm);  // AS3
  path->routers[2]->env().disabled_keys.insert(OpKey::kMac);
  path->routers[2]->env().disabled_keys.insert(OpKey::kMark);

  crypto::Xoshiro256 rng(11);
  const auto session = opt::negotiate_session(rng.block(), secrets, rng.block());

  int delivered = 0;
  std::optional<security::FnUnsupportedError> notification;
  path->destination.set_receiver(
      [&](netsim::FaceId, netsim::PacketBytes, SimTime) { ++delivered; });
  path->source.set_receiver([&](netsim::FaceId, netsim::PacketBytes packet, SimTime) {
    const auto h = core::DipHeader::parse(packet);
    if (h && security::is_fn_unsupported(*h)) {
      const auto body = security::FnUnsupportedError::parse(
          std::span<const std::uint8_t>(packet).subspan(h->wire_size()));
      if (body) notification = *body;
    }
  });

  auto opt_over_ip_packet = [&] {
    // OPT chain riding DIP-32 forwarding (so the error can route back).
    const std::vector<std::uint8_t> payload = {'h', 'i'};
    const auto block = opt::make_source_block(session, payload, 1);
    core::HeaderBuilder b;
    b.add_router_fn(OpKey::kMatch32, fib::parse_ipv4("10.4.0.9").value().bytes);
    b.add_router_fn(OpKey::kSource, fib::parse_ipv4("10.1.0.1").value().bytes);
    const std::uint16_t loc = b.add_location(block);
    b.add_fn(core::FnTriple::router(loc + 128, 128, OpKey::kParm));
    b.add_fn(core::FnTriple::router(loc, 416, OpKey::kMac));
    b.add_fn(core::FnTriple::router(loc + 288, 128, OpKey::kMark));
    auto wire = b.build()->serialize();
    wire.insert(wire.end(), payload.begin(), payload.end());
    return wire;
  };

  // --- world 1: the naive host ---------------------------------------------
  std::printf("-- naive host: composes OPT without checking the path --\n");
  path->source.send(path->source_face, opt_over_ip_packet());
  net.run();
  if (notification) {
    std::printf("packet died mid-path; FN-unsupported notification received:\n");
    std::printf("  offending FN = %s, reported by node %u (AS3's router)\n",
                std::string(core::op_key_name(notification->offending_key)).c_str(),
                notification->reporter_node);
  }
  std::printf("delivered so far: %d\n\n", delivered);

  // --- world 2: the informed host ------------------------------------------
  std::printf("-- informed host: consults the AS capability graph first --\n");
  const auto caps = graph.end_to_end(1, 4);
  const bool opt_usable = caps && caps->supports(OpKey::kParm) &&
                          caps->supports(OpKey::kMac) && caps->supports(OpKey::kMark);
  std::printf("end-to-end capability intersection says OPT chain usable: %s\n",
              opt_usable ? "yes" : "NO");

  if (!opt_usable) {
    std::printf("composing plain DIP-32 instead (graceful degradation)\n");
    const auto h = core::make_dip32_header(fib::parse_ipv4("10.4.0.9").value(),
                                           fib::parse_ipv4("10.1.0.1").value());
    path->source.send(path->source_face, h->serialize());
    net.run();
  }
  std::printf("delivered so far: %d\n\n", delivered);

  std::printf("Same routers, same FN registry — the capability plane (2.3) turns\n"
              "a mid-path failure into a host-side decision (2.4).\n");
  return (notification && delivered == 1) ? 0 : 1;
}
