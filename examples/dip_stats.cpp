// dip_stats: run a traffic scenario and expose the router stats layer.
//
//   $ ./dip_stats [exposition.prom]
//
// Drives a 2-worker RouterPool over a Zipf(0.99) DIP-32 + NDN mix (plus a
// sprinkle of malformed packets), with RouterEnv::stats installed on every
// worker, then shows the three observability surfaces in order:
//
//   1. an operator digest — throughput counters, flow-cache hit rate, and
//      per-FN / per-phase latency quantiles out of the histograms;
//   2. a drained trace-ring sample — the exact FN programs and verdicts of
//      sampled packets;
//   3. the chaos-layer drop reasons — corrupt-quarantine on a lenient
//      router behind a corrupting link, and overload shedding on a tiny
//      pool (docs/FAULTS.md has the taxonomy);
//   4. the control plane under a link flap — route churn, convergence
//      time, and QSBR snapshot reclamation, the dip_ctrl_* series
//      (docs/CONTROL_PLANE.md);
//   5. the FIB engine catalogue over one synthesized route table — per-
//      engine footprint and lookup-depth quantiles, the dip_fib_* series
//      (docs/FIB.md);
//   6. the PISA stage-budget fit matrix over the six Table-1 compositions
//      — hardware deployability verdicts, the dip_pisa_* series
//      (docs/PISA.md);
//   7. the full Prometheus-style text exposition (written to the optional
//      file argument, else printed), composed through a StatsRegistry that
//      carries pool, node, network, control-plane, FIB, and PISA sections.
//
// The metric catalogue is documented in docs/OBSERVABILITY.md.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "dip/core/ip.hpp"
#include "dip/core/router_pool.hpp"
#include "dip/ctrl/control_plane.hpp"
#include "dip/fib/lpm.hpp"
#include "dip/fib/synth.hpp"
#include "dip/ndn/ndn.hpp"
#include "dip/netsim/dip_node.hpp"
#include "dip/netsim/topology.hpp"
#include "dip/netsim/traffic.hpp"
#include "dip/pisa/compiler.hpp"
#include "dip/pisa/table1.hpp"
#include "dip/telemetry/exposition.hpp"

namespace {

constexpr std::size_t kPrefixes = 256;   // /24s under 10.0.0.0/9
constexpr std::size_t kFlows = 2048;     // distinct destinations
constexpr std::size_t kPackets = 50000;  // submitted to the pool

std::uint32_t flow_addr(std::size_t flow) {
  return 0x0A000000u | (static_cast<std::uint32_t>(flow % kPrefixes) << 8) |
         static_cast<std::uint32_t>(flow / kPrefixes + 1);
}

void print_histogram_digest(const char* name,
                            const dip::telemetry::HistogramSnapshot& h) {
  if (h.count == 0) return;
  std::printf("  %-22s n=%-8llu p50=%-8.0f p90=%-8.0f p99=%-8.0f mean=%.0f ns\n",
              name, static_cast<unsigned long long>(h.count), h.quantile(0.5),
              h.quantile(0.9), h.quantile(0.99), h.mean());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dip;

  std::printf("== dip_stats: router observability over a Zipf DIP-32 + NDN mix ==\n\n");

  // --- Pool: 2 workers sharing one route table, stats on every worker. ---
  auto registry = netsim::make_default_registry();
  std::shared_ptr<fib::Ipv4Lpm> fib32 = fib::make_lpm<32>(fib::LpmEngine::kPatricia);
  for (std::size_t i = 0; i < kPrefixes; ++i) {
    fib32->insert(
        {fib::ipv4_from_u32(0x0A000000u | (static_cast<std::uint32_t>(i) << 8)), 24},
        static_cast<core::FaceId>(1 + i % 8));
  }

  core::RouterPoolConfig config;
  config.workers = 2;
  config.ring_capacity = 4096;
  config.max_batch = 32;
  core::RouterPool pool(
      registry.get(),
      [&fib32](std::size_t i) {
        core::RouterEnv env = netsim::make_basic_env(static_cast<std::uint32_t>(i));
        env.fib32 = fib32;
        telemetry::RouterStatsConfig stats;
        stats.sample_period = 16;  // dense sampling: this is a demo, not a NIC
        stats.burst_period = 1;
        stats.trace_capacity = 512;
        env.stats = telemetry::make_router_stats(stats);
        return env;
      },
      config);

  // --- Traffic: heavy-tailed destinations, one NDN interest in eight, ----
  // --- and one torn header in 500 for a nonzero malformed series. --------
  netsim::ZipfSampler zipf(kFlows, 0.99, 0x5EED);
  std::size_t sent = 0;
  for (std::size_t i = 0; i < kPackets; ++i) {
    const std::size_t flow = zipf.sample();
    std::vector<std::uint8_t> packet;
    if (i % 8 == 7) {
      packet = ndn::make_interest_header32(flow_addr(flow))->serialize();
    } else {
      packet = core::make_dip32_header(fib::ipv4_from_u32(flow_addr(flow)),
                                       fib::parse_ipv4("172.16.0.1").value())
                   ->serialize();
    }
    if (i % 500 == 499) packet.resize(packet.size() / 2);  // malformed
    // Timestamps are block-aligned (one tick per 32-packet burst): workers
    // split bursts into runs sharing (ingress, now), so per-packet stamps
    // would degenerate every run to a singleton and keep the wave path —
    // and its dip_burst_wave_total series below — permanently cold.
    pool.submit(std::move(packet), /*ingress=*/0, /*now=*/(i / 32) * 3200);
    ++sent;
  }
  pool.drain();

  // --- 1. Operator digest straight off the live stats blocks. ------------
  const auto fleet = pool.counters();
  std::printf("[digest] %llu packets: %llu forwarded, %llu dropped, "
              "flow-cache hit rate %.3f\n",
              static_cast<unsigned long long>(fleet.processed),
              static_cast<unsigned long long>(fleet.forwarded),
              static_cast<unsigned long long>(fleet.dropped),
              fleet.flow_cache_hit_rate());
  for (std::size_t w = 0; w < pool.workers(); ++w) {
    const auto& env = pool.router(w).env();
    std::printf("[digest] worker %zu: %llu processed, queue depth %zu\n", w,
                static_cast<unsigned long long>(env.counters.processed.load()),
                pool.queue_depth(w));
  }
  std::printf("\n[latency] per-phase and per-FN histograms (merged workers):\n");
  {
    telemetry::HistogramSnapshot bind, validate, dispatch;
    std::array<telemetry::HistogramSnapshot, telemetry::RouterStats::kOpKeySlots>
        fn{};
    for (std::size_t w = 0; w < pool.workers(); ++w) {
      const auto* stats = pool.router(w).env().stats.get();
      if (stats == nullptr) continue;
      bind += stats->phase_bind.snapshot();
      validate += stats->phase_validate.snapshot();
      dispatch += stats->phase_dispatch.snapshot();
      for (std::size_t k = 0; k < fn.size(); ++k) fn[k] += stats->fn_ns[k].snapshot();
    }
    print_histogram_digest("phase bind/burst", bind);
    print_histogram_digest("phase validate/burst", validate);
    print_histogram_digest("phase dispatch/burst", dispatch);
    for (std::size_t k = 0; k < fn.size(); ++k) {
      if (fn[k].count == 0) continue;
      const std::string name(core::op_key_name(static_cast<core::OpKey>(k)));
      print_histogram_digest(name.c_str(), fn[k]);
    }
  }

  // --- 2. Drain the trace rings from this (control) thread. --------------
  std::printf("\n[trace] sampled packet records (1-in-%u sampler):\n", 16u);
  std::vector<telemetry::TraceRecord> records;
  for (std::size_t w = 0; w < pool.workers(); ++w) {
    if (auto* stats = pool.router(w).env().stats.get()) {
      stats->trace.drain(records);
    }
  }
  std::printf("  drained %zu records; first 5:\n", records.size());
  for (std::size_t i = 0; i < records.size() && i < 5; ++i) {
    const auto& r = records[i];
    std::printf("  seq=%-4llu sim=%-8llu dur=%-5uns fns=[",
                static_cast<unsigned long long>(r.seq),
                static_cast<unsigned long long>(r.sim_now), r.duration_ns);
    for (std::size_t f = 0; f < r.fn_count; ++f) {
      const core::FnTriple fn{r.fns[f].field_loc, r.fns[f].field_len, r.fns[f].op};
      std::printf("%s%s", f == 0 ? "" : " ",
                  std::string(core::op_key_name(fn.key())).c_str());
    }
    std::printf("] action=%u egress=%u\n", r.action, r.egress_count);
  }

  // --- 3. Graceful degradation: a corrupting link into a lenient node, ---
  // --- plus overload shedding — the chaos-layer drop reasons (see --------
  // --- docs/FAULTS.md) land in the same exposition page. -----------------
  netsim::Network net(0xC5A0);
  netsim::HostNode chaos_sender;
  core::RouterEnv node_env = netsim::make_basic_env(99);
  node_env.fib32 = fib32;
  node_env.stats = telemetry::make_router_stats(
      {.sample_period = 1, .burst_period = 1, .trace_capacity = 64});
  netsim::DipRouterNode node(std::move(node_env), registry);
  node.router().set_validation(core::ValidationMode::kLenient);
  net.add_node(chaos_sender);
  net.add_node(node);
  netsim::LinkParams chaos_link;
  chaos_link.faults.drop_rate = 0.05;
  chaos_link.faults.corrupt_rate = 0.3;
  chaos_link.faults.corrupt_max_bytes = 2;
  const auto chaos_face = net.connect(chaos_sender, node, chaos_link).first;
  for (std::size_t i = 0; i < 2000; ++i) {
    net.loop().schedule_at(static_cast<SimTime>(i) * kMicrosecond, [&, i] {
      chaos_sender.send(chaos_face,
                        core::make_dip32_header(fib::ipv4_from_u32(flow_addr(i % kFlows)),
                                                fib::parse_ipv4("172.16.0.1").value())
                            ->serialize());
    });
  }
  net.run();
  std::printf("\n[chaos] faulty link (drop 5%%, corrupt 30%%) into a lenient router:\n");
  std::printf("  delivered=%llu lost=%llu corrupted=%llu quarantined=%llu\n",
              static_cast<unsigned long long>(net.stats().delivered),
              static_cast<unsigned long long>(net.stats().lost),
              static_cast<unsigned long long>(net.stats().corrupted),
              static_cast<unsigned long long>(node.env().counters.quarantined.load()));

  // Overload shedding: a deliberately tiny 1-worker pool under a burst —
  // try_submit refuses work with a tagged verdict instead of stalling.
  core::RouterPoolConfig tiny;
  tiny.workers = 1;
  tiny.ring_capacity = 64;
  tiny.overload = core::OverloadPolicy::kShed;
  std::uint64_t shed_refusals = 0;
  {
    core::RouterPool tiny_pool(
        registry.get(),
        [&fib32](std::size_t) {
          core::RouterEnv env = netsim::make_basic_env(7);
          env.fib32 = fib32;
          return env;
        },
        tiny);
    for (std::size_t i = 0; i < 20000; ++i) {
      auto packet = core::make_dip32_header(fib::ipv4_from_u32(flow_addr(i % kFlows)),
                                            fib::parse_ipv4("172.16.0.1").value())
                        ->serialize();
      if (!tiny_pool.try_submit(std::move(packet), 0, i).has_value()) ++shed_refusals;
    }
    tiny_pool.drain();
    shed_refusals = tiny_pool.shed_total();
    tiny_pool.stop();
  }
  std::printf("[chaos] 20000-packet burst into a 64-slot 1-worker pool: %llu shed "
              "(dip_shed_total)\n",
              static_cast<unsigned long long>(shed_refusals));

  // --- 4. Control plane under a link flap: churn + convergence + QSBR ----
  // --- reclamation on a diamond topology (docs/CONTROL_PLANE.md). The ----
  // --- primary path A-B-D goes dark for 300 us at t=1 ms; the control ----
  // --- plane detects it within one poll, reroutes via C, and routes ------
  // --- back when the link recovers. --------------------------------------
  constexpr SimDuration kCtrlPoll = 70 * kMicrosecond;
  netsim::Network ctrl_net;
  std::vector<std::unique_ptr<netsim::DipRouterNode>> ctrl_routers;
  for (std::uint32_t i = 0; i < 4; ++i) {
    core::RouterEnv env = netsim::make_basic_env(200 + i);
    env.default_egress.reset();  // no route = blackhole, not fallback
    ctrl_routers.push_back(
        std::make_unique<netsim::DipRouterNode>(std::move(env), registry));
    ctrl_net.add_node(*ctrl_routers[i]);
  }
  netsim::LinkParams flaky;
  flaky.faults.blackout_period = 1 * kMillisecond;
  flaky.faults.blackout_duration = 300 * kMicrosecond;
  ctrl_net.connect(*ctrl_routers[0], *ctrl_routers[1], flaky);  // A-B primary
  ctrl_net.connect(*ctrl_routers[1], *ctrl_routers[3]);         // B-D
  ctrl_net.connect(*ctrl_routers[0], *ctrl_routers[2]);         // A-C backup
  ctrl_net.connect(*ctrl_routers[2], *ctrl_routers[3]);         // C-D

  netsim::HostNode ctrl_source;
  std::size_t ctrl_delivered = 0;
  netsim::HostNode ctrl_dest(
      [&ctrl_delivered](netsim::FaceId, netsim::PacketBytes, SimTime) {
        ++ctrl_delivered;
      });
  ctrl_net.add_node(ctrl_source);
  ctrl_net.add_node(ctrl_dest);
  const auto [ctrl_source_face, a_ingress] = ctrl_net.connect(ctrl_source, *ctrl_routers[0]);
  (void)a_ingress;
  const auto [d_delivery, dest_ingress] = ctrl_net.connect(*ctrl_routers[3], ctrl_dest);
  (void)dest_ingress;

  ctrl::ControlPlane cp(ctrl_net, ctrl::ControlPlaneConfig{.poll_interval = kCtrlPoll});
  for (auto& r : ctrl_routers) cp.manage(*r);
  cp.add_destination({fib::ipv4_from_u32(0x0A000000), 8},
                     ctrl_routers[3]->id(), d_delivery);
  for (SimTime t = 5 * kMicrosecond; t < 1900 * kMicrosecond; t += 20 * kMicrosecond) {
    ctrl_net.loop().schedule_at(t, [&ctrl_source, f = ctrl_source_face] {
      ctrl_source.send(f, core::make_dip32_header(fib::ipv4_from_u32(0x0A000001),
                                                  fib::parse_ipv4("172.16.0.1").value())
                              ->serialize());
    });
  }
  cp.start(/*horizon=*/1950 * kMicrosecond);
  ctrl_net.run();

  const ctrl::ControlPlaneStats& cs = cp.stats();
  std::printf("\n[ctrl] diamond topology, primary link dark for 300 us at t=1 ms "
              "(poll %llu us):\n",
              static_cast<unsigned long long>(kCtrlPoll / kMicrosecond));
  std::printf("  link events: %llu down, %llu up; %llu SPF recomputes, "
              "%llu publishes\n",
              static_cast<unsigned long long>(cs.link_down_events),
              static_cast<unsigned long long>(cs.link_up_events),
              static_cast<unsigned long long>(cs.recomputes),
              static_cast<unsigned long long>(cs.publishes));
  std::printf("  convergences=%llu, last event->publish %llu us "
              "(includes detection latency)\n",
              static_cast<unsigned long long>(cs.convergences),
              static_cast<unsigned long long>(cs.last_convergence_ns / kMicrosecond));
  std::printf("  delivered %zu packets; %llu blackholed inside the detection "
              "window, none after\n",
              ctrl_delivered,
              static_cast<unsigned long long>(ctrl_net.stats().blackholed));
  {
    ctrl::RouteJournal* a_journal = cp.journal(ctrl_routers[0]->id());
    a_journal->flush();  // one more reclaim round after the last burst
    std::printf("  node A: %llu route snapshots published, %llu reclaimed, "
                "backlog %zu\n",
                static_cast<unsigned long long>(a_journal->stats().snapshots_published),
                static_cast<unsigned long long>(
                    a_journal->tables().domain.reclaimed_total()),
                a_journal->tables().domain.backlog());
  }

  // --- 5. The FIB engine catalogue over one synthesized table ------------
  // --- (docs/FIB.md): every LpmEngine loaded with the same realistic -----
  // --- 20k-route distribution, reporting footprint and lookup-depth ------
  // --- quantiles — the dip_fib_* series an operator would watch. ---------
  constexpr std::size_t kFibRoutes = 20000;
  constexpr std::size_t kFibProbes = 512;
  struct FibEngineRow {
    const char* name;
    fib::LpmEngine engine;
    std::unique_ptr<fib::Ipv4Lpm> table;
    double depth_p50 = 0.0;
    double depth_p99 = 0.0;
  };
  std::vector<FibEngineRow> fib_engines;
  fib_engines.push_back({"binary_trie", fib::LpmEngine::kBinaryTrie, nullptr});
  fib_engines.push_back({"patricia", fib::LpmEngine::kPatricia, nullptr});
  fib_engines.push_back({"dir24", fib::LpmEngine::kDir24, nullptr});
  fib_engines.push_back({"tree_bitmap", fib::LpmEngine::kTreeBitmap, nullptr});
  {
    const auto fib_routes = fib::synth::ipv4_table(kFibRoutes, 0xD1B);
    const auto fib_probes = fib::synth::probes(fib_routes, kFibProbes, 7);
    std::printf("\n[fib] %zu synthesized routes, %zu probes — the engine "
                "catalogue (docs/FIB.md):\n",
                fib_routes.size(), fib_probes.size());
    for (auto& row : fib_engines) {
      row.table = fib::make_lpm<32>(row.engine);
      for (const auto& r : fib_routes) row.table->insert(r.prefix, r.nh);
      std::vector<std::size_t> depths;
      depths.reserve(fib_probes.size());
      for (const auto& a : fib_probes) depths.push_back(row.table->lookup_depth(a));
      std::sort(depths.begin(), depths.end());
      row.depth_p50 = static_cast<double>(depths[depths.size() / 2]);
      row.depth_p99 = static_cast<double>(depths[depths.size() * 99 / 100]);
      std::printf("  %-12s %zu routes in %8zu bytes (%6.1f B/prefix), "
                  "lookup depth p50=%.0f p99=%.0f\n",
                  row.name, row.table->size(), row.table->memory_bytes(),
                  static_cast<double>(row.table->memory_bytes()) /
                      static_cast<double>(row.table->size()),
                  row.depth_p50, row.depth_p99);
    }
  }

  // --- 6. Hardware fit verdicts: the PISA stage-budget compiler over the --
  // --- Table-1 compositions (docs/PISA.md, examples/dip_fit). -------------
  struct PisaRow {
    std::string name;
    pisa::PlacementReport report;
  };
  std::vector<PisaRow> pisa_rows;
  {
    const pisa::StageCompiler compiler;
    std::printf("\n[pisa] Table-1 fit matrix (stages=%zu, passes<=%zu):\n",
                compiler.model().stages, compiler.model().max_passes);
    for (const auto& comp : pisa::table1_compositions()) {
      PisaRow row{comp.name, compiler.compile(comp.fns, comp.locations_bytes)};
      std::printf("  %-8s %-8s passes=%zu stages=%zu cycles=%llu\n", row.name.c_str(),
                  std::string(pisa::to_string(row.report.verdict)).c_str(),
                  row.report.passes.size(), row.report.stages_used,
                  static_cast<unsigned long long>(row.report.cycles));
      pisa_rows.push_back(std::move(row));
    }
  }

  // --- 7. Full exposition page via a StatsRegistry: pool + node + --------
  // --- network + control plane + FIB + PISA fit. --------------------------
  telemetry::StatsRegistry page;
  pool.register_stats(page);
  node.register_stats(page);
  net.register_stats(page);
  cp.register_stats(page);
  page.add("fib", [&fib_engines](telemetry::StatsWriter& w) {
    for (const auto& row : fib_engines) {
      const telemetry::Label engine{"engine", row.name};
      const telemetry::Label plain[]{engine};
      w.counter("dip_fib_entries", plain, row.table->size());
      w.counter("dip_fib_memory_bytes", plain, row.table->memory_bytes());
      const telemetry::Label p50[]{engine, {"quantile", "0.5"}};
      w.gauge("dip_fib_lookup_depth", p50, row.depth_p50);
      const telemetry::Label p99[]{engine, {"quantile", "0.99"}};
      w.gauge("dip_fib_lookup_depth", p99, row.depth_p99);
    }
  });
  page.add("pisa", [&pisa_rows](telemetry::StatsWriter& w) {
    for (const auto& row : pisa_rows) {
      const telemetry::Label comp{"composition", row.name};
      const telemetry::Label verdict[]{
          comp, {"verdict", std::string(pisa::to_string(row.report.verdict))}};
      w.gauge("dip_pisa_verdict", verdict, 1.0);
      const telemetry::Label plain[]{comp};
      w.gauge("dip_pisa_passes", plain, static_cast<double>(row.report.passes.size()));
      w.gauge("dip_pisa_stages_used", plain, static_cast<double>(row.report.stages_used));
      w.gauge("dip_pisa_parser_states", plain,
              static_cast<double>(row.report.parser_states));
      w.gauge("dip_pisa_phv_containers", plain,
              static_cast<double>(row.report.phv_containers));
      w.gauge("dip_pisa_cycles", plain, static_cast<double>(row.report.cycles));
    }
  });
  const std::string exposition = page.render();

  if (argc > 1) {
    std::ofstream out(argv[1]);
    out << exposition;
    std::printf("\n[exposition] %zu bytes written to %s\n", exposition.size(),
                argv[1]);
  } else {
    std::printf("\n[exposition] full stats page (%zu bytes):\n\n%s", exposition.size(),
                exposition.c_str());
  }

  pool.stop();
  std::printf("\n(sent %zu packets; see docs/OBSERVABILITY.md for the metric catalogue)\n",
              sent);
  return 0;
}
