// Content-poisoning defense (§2.4 "Security"): an attacker combines F_FIB
// and F_PIT in one packet to pollute a router's content store; the operator
// detects the attack and enables F_pass *on the fly*.
//
// Demonstrates the paper's dynamic-security-policy claim: the same FN, the
// same packets, but a policy bit flips the router from cheap mode to
// verifying mode without any redeployment.
#include <cstdio>

#include "dip/ndn/ndn.hpp"
#include "dip/netsim/topology.hpp"
#include "dip/security/pass.hpp"
#include "dip/security/poisoning_detector.hpp"

int main() {
  using namespace dip;

  std::printf("== Content poisoning vs F_pass (paper 2.4 security story) ==\n\n");

  auto registry = netsim::make_default_registry();
  auto env = netsim::make_basic_env(1);
  env.content_store.emplace(256);
  env.pass_key = crypto::Xoshiro256(42).block();
  env.enforce_pass = false;
  env.fib32->insert({{}, 0}, 1);  // default route upstream
  core::Router router(std::move(env), registry.get());
  security::PoisoningDetector detector;

  const fib::Name name = fib::Name::parse("/bank/login");
  const std::uint32_t code = ndn::encode_name32(name);
  const std::vector<std::uint8_t> real_page = {'r', 'e', 'a', 'l'};

  auto self_answering_attack = [&](std::vector<std::uint8_t> fake_content) {
    // The §2.4 combo: one packet carrying BOTH F_FIB and F_PIT plus a bogus
    // label. F_FIB plants the PIT entry that F_PIT immediately satisfies,
    // pushing attacker content into the cache.
    core::HeaderBuilder b;
    crypto::Block bogus{};
    b.add_router_fn(core::OpKey::kPass, bogus);
    b.add_router_fn(core::OpKey::kFib, fib::ipv4_from_u32(code).bytes);
    b.add_router_fn(core::OpKey::kPit, fib::ipv4_from_u32(code).bytes);
    auto wire = b.build()->serialize();
    wire.insert(wire.end(), fake_content.begin(), fake_content.end());
    return wire;
  };

  // --- Phase 1: cheap mode; the attack lands. ------------------------------
  std::printf("-- phase 1: F_pass present but not enforced (cheap mode) --\n");
  int round = 0;
  for (const char* fake : {"fak1", "fak2", "fak3"}) {
    auto packet = self_answering_attack({fake, fake + 4});
    const auto result = router.process(packet, /*ingress=*/3, round);
    const auto h = core::DipHeader::parse(packet);
    const auto payload = std::span<const std::uint8_t>(packet).subspan(h->wire_size());
    const bool alarm = detector.observe(code, payload);
    std::printf("[attack %d] verdict=%s, cache polluted=%s, detector alarm=%s\n",
                ++round,
                result.action == core::Action::kForward ? "forwarded" : "dropped",
                router.env().content_store->contains(code) ? "yes" : "no",
                alarm ? "YES" : "no");
  }

  if (!detector.alarmed()) {
    std::printf("detector failed!\n");
    return 1;
  }

  // --- Phase 2: operator reacts. -------------------------------------------
  std::printf("\n-- phase 2: alarm raised -> purge cache, enforce F_pass --\n");
  router.env().content_store->erase(code);
  router.env().enforce_pass = true;

  auto packet = self_answering_attack({'f', 'a', 'k', '9'});
  const auto blocked = router.process(packet, 3, 100);
  std::printf("[attack 4] verdict=%s (%s), cache polluted=%s\n",
              blocked.action == core::Action::kDrop ? "dropped" : "forwarded",
              std::string(core::to_string(blocked.reason)).c_str(),
              router.env().content_store->contains(code) ? "yes" : "no");

  // The legitimate producer holds a valid AS-issued label.
  core::HeaderBuilder b;
  const auto label = security::issue_label(router.env().pass_key, real_page);
  b.add_router_fn(core::OpKey::kPass, label);
  b.add_router_fn(core::OpKey::kFib, fib::ipv4_from_u32(code).bytes);
  auto good = b.build()->serialize();
  good.insert(good.end(), real_page.begin(), real_page.end());
  const auto ok = router.process(good, 4, 101);
  std::printf("[genuine ] verdict=%s — authorized content still flows\n",
              ok.action == core::Action::kForward ? "forwarded" : "dropped");

  std::printf("\nCost of the knob (see bench_security_pass): enforcement adds one\n"
              "payload MAC per packet — expensive, which is why DIP leaves it to\n"
              "operators to enable per network conditions (2.4).\n");
  return blocked.action == core::Action::kDrop && ok.action == core::Action::kForward
             ? 0
             : 1;
}
