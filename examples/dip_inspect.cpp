// dip_inspect — decode and explain a DIP packet.
//
//   $ ./dip_inspect <hex-bytes>        # inspect your own packet
//   $ ./dip_inspect                    # demo: inspects one of each protocol
//
// Prints the basic header, the FN program (with Table-1 notation, tag bits,
// budget costs, path-criticality), the locations block, the Tofino
// constraint check, and the modeled switch cost — a one-stop debugging tool
// for anyone composing their own FN programs.
#include <cstdio>
#include <string>

#include "dip/bytes/hex.hpp"
#include "dip/crypto/random.hpp"
#include "dip/core/ip.hpp"
#include "dip/ndn/ndn.hpp"
#include "dip/opt/opt.hpp"
#include "dip/pisa/dip_program.hpp"
#include "dip/xia/xia.hpp"

namespace {

void inspect(std::span<const std::uint8_t> packet) {
  using namespace dip;

  std::printf("packet: %zu bytes\n", packet.size());
  const auto header = core::DipHeader::parse(packet);
  if (!header) {
    std::printf("  not a valid DIP packet: %s error\n",
                bytes::to_string(header.error()));
    return;
  }

  const auto& b = header->basic;
  std::printf("  basic header : next_header=%u fn_num=%u hop_limit=%u "
              "parallel=%s loc_len=%u\n",
              b.next_header, b.fn_num, b.hop_limit, b.parallel ? "yes" : "no",
              b.loc_len);
  std::printf("  header size  : %zu bytes (6 + %zux6 + %u)\n", header->wire_size(),
              header->fns.size(), b.loc_len);

  std::printf("  FN program   :\n");
  std::printf("    %-4s %-12s %-6s %-6s %-6s %-5s %s\n", "#", "operation", "loc",
              "len", "tag", "cost", "path-critical");
  for (std::size_t i = 0; i < header->fns.size(); ++i) {
    const auto& fn = header->fns[i];
    const auto info = core::fn_info(fn.key());
    std::printf("    %-4zu %-12s %-6u %-6u %-6s %-5u %s\n", i,
                std::string(core::op_key_name(fn.key())).c_str(), fn.field_loc,
                fn.field_len, fn.host_tagged() ? "host" : "router",
                info ? info->base_cost : 0,
                info && info->requires_full_path ? "yes" : "no");
  }

  std::printf("  locations    :\n%s", bytes::hex_dump(header->locations).c_str());

  const auto constraint =
      pisa::validate_program(header->fns, header->locations.size());
  std::printf("  tofino check : %s\n",
              constraint ? "fits the prototype constraints (4.1)"
                         : "VIOLATES prototype constraints");

  const auto cycles =
      pisa::estimate_protocol_cycles(header->fns, header->locations.size());
  std::printf("  switch cost  : %llu cycles (parse %llu, match %llu, crypto %llu)\n",
              static_cast<unsigned long long>(cycles.total()),
              static_cast<unsigned long long>(cycles.parse),
              static_cast<unsigned long long>(cycles.match),
              static_cast<unsigned long long>(cycles.crypto));

  const std::size_t payload = packet.size() - header->wire_size();
  if (payload > 0) std::printf("  payload      : %zu bytes\n", payload);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dip;

  if (argc > 1) {
    const auto bytes = bytes::from_hex(argv[1]);
    if (!bytes) {
      std::fprintf(stderr, "not a hex string: %s\n", argv[1]);
      return 1;
    }
    inspect(*bytes);
    return 0;
  }

  std::printf("== dip_inspect demo: one packet per protocol ==\n\n");

  std::printf("--- DIP-32 ---\n");
  inspect(core::make_dip32_header(fib::parse_ipv4("10.1.1.9").value(),
                                  fib::parse_ipv4("172.16.0.1").value())
              ->serialize());

  std::printf("--- NDN interest ---\n");
  inspect(ndn::make_interest_header(fib::Name::parse("/hotnets/org"))->serialize());

  std::printf("--- NDN+OPT data ---\n");
  crypto::Xoshiro256 rng(1);
  const std::vector<crypto::Block> secrets{rng.block(), rng.block()};
  const auto session = opt::negotiate_session(rng.block(), secrets, rng.block());
  const std::vector<std::uint8_t> payload = {'x'};
  inspect(opt::make_ndn_opt_header(ndn::encode_name32(fib::Name::parse("/x")), false,
                                   session, payload, 1000)
              ->serialize());

  std::printf("--- XIA ---\n");
  const auto dag = xia::make_service_dag(xia::xid_from_label("ad"),
                                         xia::xid_from_label("host"),
                                         fib::XidType::kSid, xia::xid_from_label("svc"));
  inspect(xia::make_xia_header(dag)->serialize());

  std::printf("tip: pass any hex string to inspect your own packet, e.g.\n"
              "  dip_inspect $(your-tool --dump-hex)\n");
  return 0;
}
