// NetFence-style DDoS mitigation with F_cc — the §1 motivating protocol
// ("NetFence inserts a slim customized header ... to emulate congestion
// control (AIMD) inside the network to mitigate DDoS attacks"), realized as
// one Field Operation.
//
// Scenario: a well-behaved AIMD sender and a flooding attacker share a
// bottleneck. Both carry the MAC-protected F_cc tag. The bottleneck stamps
// kDown when congested; the honest sender obeys and converges, the attacker
// ignores feedback — and the receiver can *prove* (via the MAC'd tags) that
// the attacker's traffic kept arriving above the advised rate, the NetFence
// policing trigger.
#include <cstdio>

#include "dip/netfence/netfence.hpp"
#include "dip/netsim/topology.hpp"

int main() {
  using namespace dip;
  using namespace dip::netfence;

  std::printf("== NetFence-as-an-FN: AIMD vs a flooding attacker ==\n\n");

  const crypto::Block as_key = crypto::Xoshiro256(0xFE7CE).block();

  // Bottleneck router: 100 kB/s capacity, per-node registry with F_cc.
  auto registry = std::make_shared<core::OpRegistry>();
  CongestionMonitor::Config monitor;
  monitor.capacity_bytes_per_sec = 100'000;
  monitor.window = 1 * kMillisecond;
  registry->add(std::make_unique<CcOp>(as_key, monitor));

  auto env = netsim::make_basic_env(1);
  env.default_egress = 1;
  core::Router bottleneck(std::move(env), registry.get());

  AimdSender honest;  // starts at 100 kB/s, AI +10 kB/s, MD x0.5
  const std::uint32_t attacker_rate = 800'000;  // flat 800 kB/s, ignores feedback

  constexpr std::size_t kPacket = 500;
  SimTime now = 0;

  std::printf("%5s %12s %12s %14s\n", "round", "honest B/s", "attacker B/s",
              "bottleneck");
  for (int round = 0; round < 20; ++round) {
    std::optional<CcTag> honest_feedback;
    std::uint64_t over_advice = 0;

    // 10 ms round: interleave both senders at their current rates.
    const std::uint64_t honest_packets =
        std::max<std::uint64_t>(1, honest.rate() / 100 / kPacket);
    const std::uint64_t attacker_packets =
        std::max<std::uint64_t>(1, attacker_rate / 100 / kPacket);
    const std::uint64_t total = honest_packets + attacker_packets;
    for (std::uint64_t p = 0; p < total; ++p) {
      const bool honest_turn = (p * honest_packets) % total < honest_packets;
      core::HeaderBuilder b;
      add_cc_fn(b, as_key);
      auto wire = b.build()->serialize();
      wire.insert(wire.end(), kPacket - wire.size(), 0);
      (void)bottleneck.process(wire, honest_turn ? 0 : 1, now);
      now += (10 * kMillisecond) / total;

      const auto h = core::DipHeader::parse(wire);
      const auto tag = verify_cc_tag(h->locations, as_key);
      if (!tag) continue;  // would indicate tag forgery
      if (honest_turn) {
        honest_feedback = *tag;
      } else if (tag->action == CcAction::kDown) {
        ++over_advice;  // receiver-side evidence against the attacker
      }
    }
    if (honest_feedback) honest.on_feedback(*honest_feedback);

    if (round % 4 == 0 || round == 19) {
      std::printf("%5d %12u %12u %11s (%llu attacker pkts marked)\n", round,
                  honest.rate(), attacker_rate,
                  honest_feedback && honest_feedback->action == CcAction::kDown
                      ? "congested"
                      : "ok",
                  static_cast<unsigned long long>(over_advice));
    }
  }

  std::printf("\nhonest sender: %u B/s after %llu decreases — AIMD obeyed the\n"
              "MAC-protected feedback; the attacker's marked packets are the\n"
              "receiver's cryptographic evidence for NetFence-style policing.\n",
              honest.rate(), static_cast<unsigned long long>(honest.decreases()));

  return honest.rate() <= 120'000 ? 0 : 1;
}
