// dip_mesh — a scale-out DIP mesh on real loopback UDP (docs/MESH.md).
//
//   $ ./dip_mesh                         # 108-node torus, quick soak
//   $ ./dip_mesh --rows 9 --cols 12 --waves 20 --out BENCH_mesh.json
//
// One process, one event loop, 100+ MeshRouters each on its own UDP socket:
// in-band LSA discovery, SPF routes through the PR-5 control plane, Zipf
// flow-churn traffic under seeded netem-style impairments, a link-failure
// convergence measurement, and the conservation-ledger check
//   transmitted + duplicated == delivered + lost + blackholed + dropped
// asserted exactly (a violation is the process exit status). With --out the
// run writes a BENCH_mesh.json-style report: per-router packet rate,
// end-to-end latency, and convergence-under-link-failure.
//
// Flags: --rows N --cols N --waves N --wave-packets N --flows N --seed N
//        --drop P --dup P --reorder P --out FILE
#include <charconv>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>

#include "dip/core/ip.hpp"
#include "dip/mesh/control.hpp"
#include "dip/mesh/mesh_net.hpp"
#include "dip/mesh/traffic.hpp"
#include "dip/telemetry/exposition.hpp"

namespace {

using namespace dip;

struct Options {
  std::size_t rows = 9;
  std::size_t cols = 12;  // 9 x 12 = 108 nodes, 4-regular torus
  std::size_t waves = 10;
  std::size_t wave_packets = 200;
  std::size_t flows = 128;
  std::uint64_t seed = 1;
  double drop = 0.02;
  double dup = 0.02;
  double reorder = 0.05;
  std::string out;
};

bool parse_args(int argc, char** argv, Options& opt) {
  const auto next_value = [&](int& i) -> const char* {
    return i + 1 < argc ? argv[++i] : nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const char* v = nullptr;
    if (arg == "--rows" && (v = next_value(i))) {
      opt.rows = std::strtoull(v, nullptr, 10);
    } else if (arg == "--cols" && (v = next_value(i))) {
      opt.cols = std::strtoull(v, nullptr, 10);
    } else if (arg == "--waves" && (v = next_value(i))) {
      opt.waves = std::strtoull(v, nullptr, 10);
    } else if (arg == "--wave-packets" && (v = next_value(i))) {
      opt.wave_packets = std::strtoull(v, nullptr, 10);
    } else if (arg == "--flows" && (v = next_value(i))) {
      opt.flows = std::strtoull(v, nullptr, 10);
    } else if (arg == "--seed" && (v = next_value(i))) {
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--drop" && (v = next_value(i))) {
      opt.drop = std::strtod(v, nullptr);
    } else if (arg == "--dup" && (v = next_value(i))) {
      opt.dup = std::strtod(v, nullptr);
    } else if (arg == "--reorder" && (v = next_value(i))) {
      opt.reorder = std::strtod(v, nullptr);
    } else if (arg == "--out" && (v = next_value(i))) {
      opt.out = v;
    } else {
      std::fprintf(stderr, "unknown or valueless flag: %s\n", argv[i]);
      return false;
    }
  }
  return opt.rows >= 2 && opt.cols >= 2;
}

std::uint64_t wall_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;
  const std::size_t nodes = opt.rows * opt.cols;

  mesh::MeshConfig cfg;  // real UDP sockets, steady clock
  cfg.fault_seed = opt.seed;
  mesh::MeshNet net(cfg);

  netsim::FaultPlan plan;
  plan.drop_rate = opt.drop;
  plan.duplicate_rate = opt.dup;
  plan.reorder_rate = opt.reorder;
  plan.reorder_window = kMillisecond;
  net.build_torus(opt.rows, opt.cols, plan);
  std::printf("== dip_mesh: %zu routers (%zux%zu torus) on loopback UDP ==\n",
              nodes, opt.rows, opt.cols);

  // In-band discovery: TTL-1 probes, then a mesh-wide LSA flood.
  const std::uint64_t t_discover = wall_ns();
  if (!net.discover(10 * kSecond)) {
    std::fprintf(stderr, "discovery did not converge\n");
    return 1;
  }
  const std::size_t routed = net.recompute_routes();
  std::printf("discovery + SPF: %zu LSDB entries/node, %zu routes published "
              "in %.1f ms\n",
              net.router(0).lsdb().size(), routed,
              static_cast<double>(wall_ns() - t_discover) / 1e6);

  // Zipf flow-churn soak under the seeded impairments.
  mesh::TrafficConfig tcfg;
  tcfg.flows = opt.flows;
  tcfg.seed = opt.seed;
  tcfg.churn_flows = opt.flows / 16 + 1;
  mesh::MeshTrafficGen gen(net, tcfg);

  const std::uint64_t t_traffic = wall_ns();
  for (std::size_t wave = 0; wave < opt.waves; ++wave) {
    gen.tick(opt.wave_packets);
    net.loop().run_until_idle();
    gen.churn();
    if (!net.quiesce(2 * kSecond)) {
      std::fprintf(stderr, "wave %zu did not quiesce\n", wave);
      return 1;
    }
  }
  const double traffic_secs =
      static_cast<double>(wall_ns() - t_traffic) / 1e9;

  const mesh::TrafficStats& ts = gen.stats();
  const double pkt_per_s = static_cast<double>(ts.sent) / traffic_secs;
  std::printf("soak: %llu sent, %llu received (%.1f%%), %.0f pkt/s "
              "(%.1f pkt/s/router), mean e2e %.0f us, max %.0f us\n",
              static_cast<unsigned long long>(ts.sent),
              static_cast<unsigned long long>(ts.received),
              100.0 * static_cast<double>(ts.received) /
                  static_cast<double>(ts.sent ? ts.sent : 1),
              pkt_per_s, pkt_per_s / static_cast<double>(nodes),
              ts.mean_latency_ns() / 1e3,
              static_cast<double>(ts.latency_max_ns) / 1e3);

  // Convergence under link failure: dark both half-links, flood the new
  // LSAs, recompute, and time until a probe crosses the detour.
  const std::uint64_t t_fail = wall_ns();
  net.fail_link(0, 1);
  (void)net.quiesce(2 * kSecond);  // let the failure gossip settle
  (void)net.recompute_routes();
  bool rerouted = false;
  net.set_delivery([&](std::size_t node, std::span<const std::uint8_t>,
                       std::uint64_t) { rerouted |= node == 1; });
  std::vector<std::uint8_t> probe =
      core::make_dip32_header(mesh::addr_of(net.router(1).node_id()),
                              mesh::addr_of(net.router(0).node_id()))
          ->serialize();
  net.router(0).inject(probe, net.local_face_of(0));
  const std::uint64_t probe_deadline = net.loop().now_ns() + 2 * kSecond;
  while (!rerouted && net.loop().now_ns() < probe_deadline) {
    (void)net.loop().run(net.loop().now_ns() + kMillisecond);
  }
  const std::uint64_t convergence_ns = wall_ns() - t_fail;
  if (!rerouted) {
    std::fprintf(stderr, "link-failure probe was never rerouted\n");
    return 1;
  }
  std::printf("link failure 1<->2: rerouted via detour in %.1f ms\n",
              static_cast<double>(convergence_ns) / 1e6);

  // The acceptance gate: a quiescent mesh must balance the ledger exactly.
  if (!net.quiesce(5 * kSecond)) {
    std::fprintf(stderr, "mesh did not quiesce for the ledger check\n");
    return 1;
  }
  const mesh::WireLedger ledger = net.aggregate_ledger();
  std::printf("ledger: transmitted=%llu duplicated=%llu delivered=%llu "
              "lost=%llu blackholed=%llu dropped=%llu (corrupted=%llu, "
              "seq_gaps=%llu) imbalance=%lld\n",
              static_cast<unsigned long long>(ledger.transmitted),
              static_cast<unsigned long long>(ledger.duplicated),
              static_cast<unsigned long long>(ledger.delivered),
              static_cast<unsigned long long>(ledger.lost),
              static_cast<unsigned long long>(ledger.blackholed),
              static_cast<unsigned long long>(ledger.dropped),
              static_cast<unsigned long long>(ledger.corrupted),
              static_cast<unsigned long long>(ledger.seq_gaps),
              static_cast<long long>(ledger.imbalance()));
  if (ledger.imbalance() != 0) {
    std::fprintf(stderr, "CONSERVATION VIOLATION: imbalance %lld\n",
                 static_cast<long long>(ledger.imbalance()));
    return 1;
  }
  std::printf("conservation ledger balanced.\n");

  if (!opt.out.empty()) {
    std::ofstream out(opt.out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", opt.out.c_str());
      return 1;
    }
    out << "{\n"
        << "  \"name\": \"dip_mesh\",\n"
        << "  \"topology\": {\"rows\": " << opt.rows << ", \"cols\": " << opt.cols
        << ", \"nodes\": " << nodes << "},\n"
        << "  \"seed\": " << opt.seed << ",\n"
        << "  \"faults\": {\"drop_rate\": " << opt.drop
        << ", \"duplicate_rate\": " << opt.dup
        << ", \"reorder_rate\": " << opt.reorder << "},\n"
        << "  \"traffic\": {\"sent\": " << ts.sent
        << ", \"received\": " << ts.received
        << ", \"flows_churned\": " << ts.flows_churned << "},\n"
        << "  \"pkt_per_s\": " << pkt_per_s << ",\n"
        << "  \"pkt_per_s_per_router\": " << pkt_per_s / static_cast<double>(nodes)
        << ",\n"
        << "  \"e2e_latency_ns\": {\"mean\": " << ts.mean_latency_ns()
        << ", \"max\": " << ts.latency_max_ns << "},\n"
        << "  \"convergence_under_link_failure_ns\": " << convergence_ns << ",\n"
        << "  \"ledger\": {\"transmitted\": " << ledger.transmitted
        << ", \"duplicated\": " << ledger.duplicated
        << ", \"delivered\": " << ledger.delivered << ", \"lost\": " << ledger.lost
        << ", \"blackholed\": " << ledger.blackholed
        << ", \"dropped\": " << ledger.dropped
        << ", \"corrupted\": " << ledger.corrupted
        << ", \"seq_gaps\": " << ledger.seq_gaps
        << ", \"imbalance\": " << ledger.imbalance() << "}\n"
        << "}\n";
    std::printf("report written to %s\n", opt.out.c_str());
  }
  return 0;
}
