// Host-side engine: session store, F_ver execution on received packets,
// telemetry readout, and the NDN consumer/producer application endpoints.
#include <gtest/gtest.h>

#include "dip/core/ip.hpp"
#include "dip/host/host_engine.hpp"
#include "dip/host/ndn_app.hpp"
#include "dip/host/retry.hpp"
#include "dip/netsim/topology.hpp"
#include "dip/telemetry/telemetry.hpp"

namespace dip::host {
namespace {

using core::OpKey;

std::shared_ptr<core::OpRegistry> registry() {
  static auto r = netsim::make_default_registry();
  return r;
}

// ---------- session store ----------

TEST(SessionStore, AddFindRemove) {
  SessionStore store;
  crypto::Xoshiro256 rng(1);
  opt::Session s;
  s.id = rng.block();
  store.add(s);

  ASSERT_NE(store.find(s.id), nullptr);
  EXPECT_EQ(store.find(s.id)->id, s.id);
  EXPECT_EQ(store.find(rng.block()), nullptr);
  EXPECT_TRUE(store.remove(s.id));
  EXPECT_FALSE(store.remove(s.id));
  EXPECT_EQ(store.size(), 0u);
}

// ---------- host engine ----------

struct HostEngineFixture : ::testing::Test {
  HostEngineFixture() {
    crypto::Xoshiro256 rng(9);
    for (int i = 0; i < 2; ++i) {
      auto env = netsim::make_basic_env(i);
      env.default_egress = 1;
      secrets.push_back(env.node_secret);
      routers.emplace_back(std::move(env), registry().get());
    }
    session = opt::negotiate_session(rng.block(), secrets, rng.block());
    sessions.add(session);
  }

  std::vector<std::uint8_t> traversed_opt_packet(
      std::span<const std::uint8_t> payload) {
    const auto h = opt::make_opt_header(session, payload, 1000);
    auto packet = h->serialize();
    packet.insert(packet.end(), payload.begin(), payload.end());
    for (auto& r : routers) (void)r.process(packet, 0, 0);
    return packet;
  }

  std::vector<crypto::Block> secrets;
  std::vector<core::Router> routers;
  opt::Session session;
  SessionStore sessions;
};

TEST_F(HostEngineFixture, DeliversVerifiedOptPacket) {
  const std::vector<std::uint8_t> payload = {'o', 'k'};
  const auto packet = traversed_opt_packet(payload);

  HostEngine engine(&sessions);
  const Delivery d = engine.receive(packet);
  EXPECT_EQ(d.status, DeliveryStatus::kDelivered);
  ASSERT_TRUE(d.verify_result.has_value());
  EXPECT_EQ(*d.verify_result, opt::VerifyResult::kOk);
  EXPECT_TRUE(std::ranges::equal(d.payload, payload));
}

TEST_F(HostEngineFixture, RejectsTamperedPayload) {
  const std::vector<std::uint8_t> payload = {'o', 'k'};
  auto packet = traversed_opt_packet(payload);
  packet.back() ^= 1;

  HostEngine engine(&sessions);
  const Delivery d = engine.receive(packet);
  EXPECT_EQ(d.status, DeliveryStatus::kVerifyFailed);
  EXPECT_EQ(*d.verify_result, opt::VerifyResult::kBadDataHash);
}

TEST_F(HostEngineFixture, UnknownSessionReported) {
  const std::vector<std::uint8_t> payload = {'o', 'k'};
  const auto packet = traversed_opt_packet(payload);

  SessionStore empty;
  HostEngine engine(&empty);
  EXPECT_EQ(engine.receive(packet).status, DeliveryStatus::kUnknownSession);

  HostEngine no_store(nullptr);
  EXPECT_EQ(no_store.receive(packet).status, DeliveryStatus::kUnknownSession);
}

TEST_F(HostEngineFixture, FreshnessWindowEnforced) {
  const std::vector<std::uint8_t> payload = {'o', 'k'};
  const auto packet = traversed_opt_packet(payload);  // timestamp 1000

  HostEngine engine(&sessions);
  engine.set_freshness(/*now=*/1200, /*window=*/100);
  EXPECT_EQ(engine.receive(packet).status, DeliveryStatus::kVerifyFailed);
  engine.set_freshness(1050, 100);
  EXPECT_EQ(engine.receive(packet).status, DeliveryStatus::kDelivered);
}

TEST(ReliableSender, DuplicateAckFromEarlierEpochCannotCancelNewerSend) {
  // Regression: chaos links duplicate ACKs, and a late copy of an old ACK
  // used to cancel whatever newer request was in flight (acknowledge()
  // cleared pending_ unconditionally). Acknowledgement is now deduped by
  // the epoch token send() returns.
  netsim::Network net(7);
  netsim::HostNode client, server;
  net.add_node(client);
  net.add_node(server);
  const auto [client_face, server_face] = net.connect(client, server);
  (void)server_face;

  RetryPolicy policy;
  policy.max_retries = 2;
  policy.initial_timeout = 10 * kMillisecond;
  ReliableSender sender(client, client_face, policy);

  const auto first =
      sender.send([](std::uint32_t) { return netsim::PacketBytes{'A'}; });
  EXPECT_TRUE(sender.pending());
  EXPECT_TRUE(sender.acknowledge(first));   // the genuine ACK retires it
  EXPECT_FALSE(sender.pending());
  EXPECT_FALSE(sender.acknowledge(first));  // a duplicate of it is a no-op

  bool second_failed = false;
  const auto second =
      sender.send([](std::uint32_t) { return netsim::PacketBytes{'B'}; },
                  [&] { second_failed = true; });
  EXPECT_NE(first, second);
  // A link-duplicated copy of the first ACK lands after the sender moved
  // on; it must not cancel the in-flight second request.
  EXPECT_FALSE(sender.acknowledge(first));
  EXPECT_TRUE(sender.pending());

  // The second request's retransmission schedule survived the stale ACK:
  // unacknowledged, it retries to budget exhaustion and reports failure.
  net.run();
  EXPECT_EQ(sender.retransmissions(), 2u);
  EXPECT_TRUE(second_failed);
  EXPECT_FALSE(sender.pending());

  // A fresh epoch still acknowledges normally.
  const auto third =
      sender.send([](std::uint32_t) { return netsim::PacketBytes{'C'}; });
  EXPECT_TRUE(sender.acknowledge(third));
  EXPECT_FALSE(sender.pending());
}

TEST(HostEngine, PlainPacketDeliversWithoutVerification) {
  const auto h = core::make_dip32_header(fib::ipv4_from_u32(1), fib::ipv4_from_u32(2));
  auto packet = h->serialize();
  packet.push_back(0x42);

  HostEngine engine;
  const Delivery d = engine.receive(packet);
  EXPECT_EQ(d.status, DeliveryStatus::kDelivered);
  EXPECT_FALSE(d.verify_result.has_value());
  EXPECT_EQ(d.payload.size(), 1u);
}

TEST(HostEngine, GarbageIsMalformed) {
  HostEngine engine;
  const std::vector<std::uint8_t> junk = {1, 2, 3};
  EXPECT_EQ(engine.receive(junk).status, DeliveryStatus::kMalformed);
}

TEST(HostEngine, ReadsTelemetryOnArrival) {
  core::HeaderBuilder b;
  telemetry::add_telemetry_fn(b, 4);
  auto packet = b.build()->serialize();

  // Run through two routers so records accumulate.
  for (std::uint32_t i = 0; i < 2; ++i) {
    auto env = netsim::make_basic_env(i + 5);
    env.default_egress = 1;
    core::Router router(std::move(env), registry().get());
    (void)router.process(packet, 0, 1000 * (i + 1));
  }

  HostEngine engine;
  const Delivery d = engine.receive(packet);
  EXPECT_EQ(d.status, DeliveryStatus::kDelivered);
  ASSERT_TRUE(d.telemetry.has_value());
  ASSERT_EQ(d.telemetry->hops.size(), 2u);
  EXPECT_EQ(d.telemetry->hops[0].node_id, 5);
  EXPECT_EQ(d.telemetry->hops[1].node_id, 6);
}

// ---------- NDN consumer/producer over the simulator ----------

struct NdnAppFixture : ::testing::Test {
  NdnAppFixture() {
    path = netsim::make_linear_path(net, 2, registry(), [](std::size_t i) {
      return netsim::make_basic_env(static_cast<std::uint32_t>(i));
    });
    for (std::size_t i = 0; i < 2; ++i) {
      auto& env = path->routers[i]->env();
      env.default_egress.reset();
      ndn::install_name_route(*env.fib32, fib::Name::parse("/app"),
                              path->downstream_face[i]);
    }
  }

  netsim::Network net;
  std::unique_ptr<netsim::LinearPath> path;
};

TEST_F(NdnAppFixture, ConsumerGetsPublishedContent) {
  NdnProducer producer(path->destination, path->destination_face);
  producer.publish(fib::Name::parse("/app/movie"), {'m', 'p', '4'});

  NdnConsumer consumer(path->source, path->source_face);
  std::vector<std::uint8_t> got;
  consumer.express_interest(
      fib::Name::parse("/app/movie"),
      [&](const fib::Name&, std::span<const std::uint8_t> payload) {
        got.assign(payload.begin(), payload.end());
      });
  net.run();

  EXPECT_EQ(got, (std::vector<std::uint8_t>{'m', 'p', '4'}));
  EXPECT_EQ(producer.interests_served(), 1u);
  EXPECT_EQ(consumer.pending(), 0u);
  EXPECT_EQ(consumer.retransmissions(), 0u);
}

TEST_F(NdnAppFixture, ConsumerRetransmitsThroughLoss) {
  // Rebuild the path with a lossy first link.
  netsim::Network lossy_net(/*seed=*/3);
  netsim::LinkParams lossy;
  lossy.loss_rate = 0.5;
  auto lossy_path =
      netsim::make_linear_path(lossy_net, 1, registry(), [](std::size_t i) {
        return netsim::make_basic_env(static_cast<std::uint32_t>(i));
      }, lossy);
  lossy_path->routers[0]->env().default_egress.reset();
  ndn::install_name_route(*lossy_path->routers[0]->env().fib32,
                          fib::Name::parse("/app"),
                          lossy_path->downstream_face[0]);
  // Retransmissions must not be PIT-suppressed as duplicates: keep the PIT
  // entry lifetime below the consumer's retransmit timer (real NDN uses
  // nonces for this; our 32-bit prototype names have no nonce field).
  pit::Pit::Config pit_config;
  pit_config.entry_lifetime = 50 * kMillisecond;
  lossy_path->routers[0]->env().pit = pit::Pit(pit_config);

  NdnProducer producer(lossy_path->destination, lossy_path->destination_face);
  producer.publish(fib::Name::parse("/app/x"), {'x'});

  NdnConsumer::Config config;
  config.max_retries = 60;
  NdnConsumer consumer(lossy_path->source, lossy_path->source_face, config);
  bool got = false;
  bool failed = false;
  consumer.express_interest(
      fib::Name::parse("/app/x"),
      [&](const fib::Name&, std::span<const std::uint8_t>) { got = true; },
      [&](const fib::Name&) { failed = true; });
  lossy_net.run();

  EXPECT_TRUE(got || failed) << "must terminate either way";
  EXPECT_TRUE(got) << "60 retries through 50% loss: delivery overwhelmingly likely";
}

TEST_F(NdnAppFixture, ConsumerFailureAfterRetriesExhausted) {
  // No producer: interests die upstream (no route at last router).
  NdnConsumer::Config config;
  config.max_retries = 2;
  config.retransmit_timeout = 10 * kMillisecond;
  NdnConsumer consumer(path->source, path->source_face, config);

  bool failed = false;
  consumer.express_interest(
      fib::Name::parse("/nowhere/y"),
      [](const fib::Name&, std::span<const std::uint8_t>) { FAIL(); },
      [&](const fib::Name&) { failed = true; });
  net.run();

  EXPECT_TRUE(failed);
  EXPECT_EQ(consumer.retransmissions(), 2u);
  EXPECT_EQ(consumer.pending(), 0u);
}

TEST_F(NdnAppFixture, ProducerSignsWithOptAndConsumerHostVerifies) {
  // Producer signs NDN+OPT; consumer verifies via HostEngine.
  std::vector<crypto::Block> data_path_secrets{
      path->routers[1]->env().node_secret, path->routers[0]->env().node_secret};
  crypto::Xoshiro256 rng(4);
  const auto session =
      opt::negotiate_session(rng.block(), data_path_secrets, rng.block());

  NdnProducer::Options options;
  options.opt_session = session;
  options.opt_timestamp = 777;
  NdnProducer producer(path->destination, path->destination_face, options);
  producer.publish(fib::Name::parse("/app/secure"), {'s'});

  SessionStore sessions;
  sessions.add(session);
  HostEngine engine(&sessions);

  std::optional<DeliveryStatus> status;
  path->source.set_receiver([&](netsim::FaceId, netsim::PacketBytes packet, SimTime) {
    status = engine.receive(packet).status;
  });
  path->source.send(path->source_face,
                    ndn::make_interest_header(fib::Name::parse("/app/secure"))
                        ->serialize());
  net.run();

  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(*status, DeliveryStatus::kDelivered);
}

TEST_F(NdnAppFixture, UnknownContentCountsAsUnknown) {
  NdnProducer producer(path->destination, path->destination_face);
  path->source.send(path->source_face,
                    ndn::make_interest_header(fib::Name::parse("/app/ghost"))
                        ->serialize());
  net.run();
  EXPECT_EQ(producer.interests_unknown(), 1u);
  EXPECT_EQ(producer.interests_served(), 0u);
}

}  // namespace
}  // namespace dip::host
