// Chaos tests: the deterministic fault-injection layer (netsim FaultPlan)
// and the graceful-degradation hooks it exposes — corrupt-quarantine on the
// router, overload shedding at RouterPool ingress, retry/backoff on hosts.
//
// Everything here replays from fixed seeds: a failure reproduces bit for
// bit, including the exact fault schedule (FaultTraceIsDeterministic pins
// that contract; docs/FAULTS.md documents it).
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "dip/core/ip.hpp"
#include "dip/core/router_pool.hpp"
#include "dip/crypto/random.hpp"
#include "dip/dtn/bundle.hpp"
#include "dip/dtn/node.hpp"
#include "dip/host/host_engine.hpp"
#include "dip/host/ndn_app.hpp"
#include "dip/host/retry.hpp"
#include "dip/ndn/ndn.hpp"
#include "dip/netsim/topology.hpp"
#include "dip/opt/opt.hpp"

namespace dip {
namespace {

using netsim::FaultKind;
using netsim::FaultPlan;
using netsim::LinkParams;

std::vector<std::uint8_t> dip32_packet(std::uint32_t dst) {
  return core::make_dip32_header(fib::ipv4_from_u32(dst),
                                 fib::ipv4_from_u32(0x7F000001))
      ->serialize();
}

/// Two hosts, one faulty link; `count` packets sent one per microsecond.
struct FaultyPair {
  netsim::Network net;
  netsim::HostNode sender;
  netsim::HostNode receiver;
  netsim::FaceId face = 0;

  FaultyPair(std::uint64_t seed, LinkParams link) : net(seed) {
    net.add_node(sender);
    net.add_node(receiver);
    face = net.connect(sender, receiver, link).first;
  }

  void send_burst(std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      net.loop().schedule_at(static_cast<SimTime>(i) * kMicrosecond, [this, i] {
        sender.send(face, dip32_packet(0x0A000000 + static_cast<std::uint32_t>(i)));
      });
    }
    net.run();
  }
};

LinkParams all_faults_link() {
  LinkParams link;
  link.faults.drop_rate = 0.1;
  link.faults.duplicate_rate = 0.1;
  link.faults.corrupt_rate = 0.1;
  link.faults.reorder_rate = 0.1;
  link.faults.blackout_period = 100 * kMicrosecond;
  link.faults.blackout_duration = 10 * kMicrosecond;
  return link;
}

// ---------- determinism ----------

TEST(Chaos, FaultTraceIsDeterministic) {
  auto run = [](std::uint64_t seed) {
    FaultyPair pair(seed, all_faults_link());
    pair.send_burst(500);
    return std::make_tuple(pair.net.fault_trace(), pair.net.fault_events(),
                           pair.net.stats().delivered, pair.net.stats().lost,
                           pair.net.stats().corrupted, pair.net.stats().duplicated,
                           pair.net.stats().blackholed);
  };
  for (const std::uint64_t seed : {3ull, 17ull, 99ull}) {
    const auto a = run(seed);
    const auto b = run(seed);
    EXPECT_EQ(a, b) << "seed " << seed << " must replay an identical fault trace";
    EXPECT_FALSE(std::get<0>(a).empty());
  }
  // And the seed must actually steer the schedule.
  EXPECT_NE(std::get<0>(run(3)), std::get<0>(run(17)));
}

TEST(Chaos, FaultStreamsArePerLink) {
  // Two links under one network: changing traffic on link A must not change
  // link B's fault schedule (each half-link owns a PRNG stream).
  auto run = [](std::size_t extra_on_a) {
    netsim::Network net(7);
    netsim::HostNode sender, other, receiver;
    net.add_node(sender);
    net.add_node(other);
    net.add_node(receiver);
    LinkParams faulty;
    faulty.faults.drop_rate = 0.3;
    const auto face_a = net.connect(sender, receiver, faulty).first;
    const auto face_b = net.connect(other, receiver, faulty).first;
    for (std::size_t i = 0; i < 200 + extra_on_a; ++i) {
      net.loop().schedule_at(static_cast<SimTime>(i) * kMicrosecond, [&, i] {
        sender.send(face_a, dip32_packet(static_cast<std::uint32_t>(i)));
      });
    }
    for (std::size_t i = 0; i < 200; ++i) {
      net.loop().schedule_at(static_cast<SimTime>(i) * kMicrosecond, [&, i] {
        other.send(face_b, dip32_packet(static_cast<std::uint32_t>(i)));
      });
    }
    net.run();
    std::vector<netsim::FaultEvent> on_b;
    for (const auto& e : net.fault_trace()) {
      if (e.node == other.id()) on_b.push_back(e);
    }
    return on_b;
  };
  EXPECT_EQ(run(0), run(64))
      << "link B's schedule must be independent of link A's traffic volume";
}

// ---------- the transport ledger ----------

TEST(Chaos, StatsLedgerBalancesUnderAllFaultKinds) {
  FaultyPair pair(21, all_faults_link());
  pair.send_burst(1000);
  const auto& s = pair.net.stats();
  EXPECT_EQ(s.transmitted, 1000u);
  // Every packet (and every injected duplicate) lands in exactly one
  // terminal bucket.
  EXPECT_EQ(s.transmitted + s.duplicated,
            s.delivered + s.lost + s.blackholed + s.queue_dropped);
  EXPECT_GT(s.delivered, 0u);
  EXPECT_GT(s.lost, 0u);
  EXPECT_GT(s.duplicated, 0u);
  EXPECT_GT(s.blackholed, 0u);
  EXPECT_LE(s.corrupted, s.delivered);
  EXPECT_EQ(pair.net.fault_events(), pair.net.fault_trace().size());
}

TEST(Chaos, CorruptedThenDroppedCountsOnce) {
  // Regression (PR 3 satellite): a packet that is corrupted and *then* tail
  // dropped at the queue must count once — in queue_dropped, not corrupted.
  LinkParams link;
  link.faults.corrupt_rate = 1.0;
  link.bandwidth_bps = 1'000'000;          // 1 Mb/s: ~160us per packet
  link.max_queue_delay = 200 * kMicrosecond;  // room for ~2 in the queue
  FaultyPair pair(5, link);
  // The whole burst arrives at t=0, so most of it tail-drops.
  for (std::size_t i = 0; i < 50; ++i) {
    pair.net.loop().schedule_at(0, [&pair, i] {
      pair.sender.send(pair.face, dip32_packet(static_cast<std::uint32_t>(i)));
    });
  }
  pair.net.run();
  const auto& s = pair.net.stats();
  EXPECT_GT(s.queue_dropped, 0u);
  EXPECT_GT(s.delivered, 0u);
  // corrupt_rate=1: every *delivered* packet is corrupted; queue-dropped
  // ones are not double counted anywhere.
  EXPECT_EQ(s.corrupted, s.delivered);
  EXPECT_EQ(s.transmitted, s.delivered + s.queue_dropped);
}

TEST(Chaos, BlackoutWindowsAreTimeScheduled) {
  // Blackouts are pure functions of simulated time — no PRNG draw — so the
  // blackholed count is exactly predictable from the send times.
  LinkParams link;
  link.faults.blackout_period = 100 * kMicrosecond;
  link.faults.blackout_duration = 25 * kMicrosecond;
  FaultyPair pair(1, link);
  pair.send_burst(400);  // sends at t = 0,1,2,...399 us
  // In every 100us period, sends at offsets 0..24 blackhole: 25 of each 100.
  EXPECT_EQ(pair.net.stats().blackholed, 100u);
  EXPECT_EQ(pair.net.stats().delivered, 300u);
  for (const auto& e : pair.net.fault_trace()) {
    EXPECT_EQ(e.kind, FaultKind::kBlackout);
    EXPECT_LT(e.at % (100 * kMicrosecond), 25 * kMicrosecond);
  }
}

TEST(Chaos, ReorderedAndDuplicatedPacketsAllDeliver) {
  LinkParams link;
  link.faults.reorder_rate = 0.5;
  link.faults.duplicate_rate = 0.25;
  link.faults.reorder_window = 30 * kMicrosecond;
  FaultyPair pair(13, link);
  pair.send_burst(400);
  const auto& s = pair.net.stats();
  EXPECT_GT(s.duplicated, 0u);
  EXPECT_EQ(s.delivered, s.transmitted + s.duplicated);
  EXPECT_EQ(pair.receiver.received(), s.delivered);
  EXPECT_EQ(s.lost + s.blackholed + s.queue_dropped, 0u);
}

TEST(Chaos, NetworkStatsExpositionCarriesFaultKinds) {
  FaultyPair pair(21, all_faults_link());
  pair.send_burst(500);
  telemetry::StatsRegistry page;
  pair.net.register_stats(page);
  const std::string text = page.render();
  EXPECT_NE(text.find("dip_net_transmitted_total 500"), std::string::npos) << text;
  EXPECT_NE(text.find("dip_net_faults_total{kind=\"drop\"}"), std::string::npos);
  EXPECT_NE(text.find("dip_net_faults_total{kind=\"corrupt\"}"), std::string::npos);
  EXPECT_NE(text.find("dip_net_faults_total{kind=\"blackout\"}"), std::string::npos);
  EXPECT_NE(text.find("dip_net_faults_total{kind=\"duplicate\"}"), std::string::npos);
  EXPECT_NE(text.find("dip_net_faults_total{kind=\"reorder\"}"), std::string::npos);
}

// ---------- router-side graceful degradation ----------

TEST(Chaos, LenientRouterQuarantinesCorruptedPackets) {
  // host -- (corrupting link) -- lenient router. Byte damage must end up in
  // the quarantine ledger (counter + drop reason + forced trace records),
  // never as a crash or a silent stall.
  netsim::Network net(31);
  netsim::HostNode sender;
  auto registry = netsim::make_default_registry();
  core::RouterEnv env = netsim::make_basic_env(1);
  env.fib32->insert({fib::ipv4_from_u32(0x0A000000), 8}, 0);
  env.stats = telemetry::make_router_stats();
  netsim::DipRouterNode router(std::move(env), registry);
  router.router().set_validation(core::ValidationMode::kLenient);
  net.add_node(sender);
  net.add_node(router);
  LinkParams link;
  link.faults.corrupt_rate = 0.5;
  link.faults.corrupt_max_bytes = 3;
  const auto face = net.connect(sender, router, link).first;

  for (std::size_t i = 0; i < 400; ++i) {
    net.loop().schedule_at(static_cast<SimTime>(i) * kMicrosecond, [&, i] {
      sender.send(face, dip32_packet(0x0A000000 + static_cast<std::uint32_t>(i)));
    });
  }
  net.run();

  const std::uint64_t quarantined = router.env().counters.quarantined.load();
  EXPECT_GT(quarantined, 0u);
  EXPECT_EQ(router.drops(core::DropReason::kCorruptQuarantine), quarantined);
  // Quarantines bypass the sampler: the trace ring saw at least one record
  // per quarantined packet.
  EXPECT_GE(router.env().stats->trace.pushed(), quarantined);
  // The quarantine reason renders in the drop ledger exposition.
  EXPECT_NE(router.dump_stats().find("reason=\"corrupt-quarantine\""),
            std::string::npos);
  // Strict-mode ledger untouched: quarantined packets still count as drops.
  EXPECT_EQ(router.env().counters.processed.load(), 400u);
}

TEST(Chaos, StrictRouterTreatsSameDamageAsMalformed) {
  // Same traffic and faults as above, strict validation: no quarantines,
  // bind failures come back as kMalformed (the historical behaviour).
  netsim::Network net(31);
  netsim::HostNode sender;
  auto registry = netsim::make_default_registry();
  core::RouterEnv env = netsim::make_basic_env(1);
  env.fib32->insert({fib::ipv4_from_u32(0x0A000000), 8}, 0);
  netsim::DipRouterNode router(std::move(env), registry);
  net.add_node(sender);
  net.add_node(router);
  LinkParams link;
  link.faults.corrupt_rate = 0.5;
  const auto face = net.connect(sender, router, link).first;
  for (std::size_t i = 0; i < 400; ++i) {
    net.loop().schedule_at(static_cast<SimTime>(i) * kMicrosecond, [&, i] {
      sender.send(face, dip32_packet(0x0A000000 + static_cast<std::uint32_t>(i)));
    });
  }
  net.run();
  EXPECT_EQ(router.env().counters.quarantined.load(), 0u);
  EXPECT_GT(router.drops(core::DropReason::kMalformed), 0u);
  EXPECT_EQ(router.drops(core::DropReason::kCorruptQuarantine), 0u);
}

// ---------- pool overload shedding ----------

TEST(Chaos, PoolShedsDeterministicallyWhenRingIsFull) {
  // One worker, a 2-slot ring, and a completion callback that blocks the
  // worker on the first processed packet: once the worker is parked inside
  // the callback and the ring is full, every further try_submit must shed —
  // deterministically, with a tagged verdict on the dispatcher thread.
  auto registry = netsim::make_default_registry();
  std::mutex m;
  std::condition_variable cv;
  bool worker_blocked = false;
  bool release = false;
  std::atomic<std::uint64_t> processed{0};
  std::atomic<std::uint64_t> shed_seen{0};
  const std::thread::id dispatcher = std::this_thread::get_id();
  std::atomic<bool> shed_on_dispatcher{true};

  core::RouterPoolConfig config;
  config.workers = 1;
  config.ring_capacity = 2;  // rounds to exactly 2 slots
  config.max_batch = 1;
  core::RouterPool pool(
      registry.get(),
      [](std::size_t) {
        auto env = netsim::make_basic_env(0);
        env.default_egress = 1;
        return env;
      },
      config,
      [&](std::size_t, core::RouterPool::Item&, core::ProcessResult& result) {
        if (result.reason == core::DropReason::kOverloadShed) {
          ++shed_seen;
          if (std::this_thread::get_id() != dispatcher) shed_on_dispatcher = false;
          return;
        }
        const std::uint64_t n = ++processed;
        if (n == 1) {
          std::unique_lock<std::mutex> lk(m);
          worker_blocked = true;
          cv.notify_all();
          cv.wait(lk, [&] { return release; });
        }
      });

  auto packet = [](std::uint32_t i) { return dip32_packet(i); };
  ASSERT_TRUE(pool.try_submit(packet(0), 0, 0).has_value());
  {
    // Wait until the worker holds packet 0 inside the completion callback;
    // from here on it cannot pop the ring.
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return worker_blocked; });
  }
  ASSERT_TRUE(pool.try_submit(packet(1), 0, 0).has_value());
  ASSERT_TRUE(pool.try_submit(packet(2), 0, 0).has_value());
  // Ring now full (2 slots) and the worker is blocked: these must shed.
  constexpr std::uint64_t kShed = 5;
  for (std::uint32_t i = 0; i < kShed; ++i) {
    EXPECT_FALSE(pool.try_submit(packet(3 + i), 0, 0).has_value());
  }
  EXPECT_EQ(pool.shed_total(), kShed);
  EXPECT_EQ(shed_seen.load(), kShed);
  EXPECT_TRUE(shed_on_dispatcher.load())
      << "shed completions run on the dispatcher thread";
  {
    std::lock_guard<std::mutex> lk(m);
    release = true;
  }
  cv.notify_all();
  pool.drain();
  pool.stop();
  // Nothing lost, nothing double-processed: the 3 accepted packets all ran.
  EXPECT_EQ(processed.load(), 3u);
  EXPECT_EQ(pool.counters().processed, 3u);
  // The shed ledger renders in the stats page.
  const std::string page = pool.dump_stats();
  EXPECT_NE(page.find("dip_shed_total 5"), std::string::npos) << page;
  EXPECT_NE(page.find("dip_worker_shed_total{worker=\"0\"} 5"), std::string::npos);
}

TEST(Chaos, SubmitShedsUnderShedPolicyInsteadOfBlocking) {
  // Under OverloadPolicy::kShed the blocking submit() path sheds too — a
  // dispatcher that never learned about try_submit still cannot stall.
  auto registry = netsim::make_default_registry();
  std::mutex m;
  std::condition_variable cv;
  bool worker_blocked = false;
  bool release = false;
  std::atomic<std::uint64_t> first{0};

  core::RouterPoolConfig config;
  config.workers = 1;
  config.ring_capacity = 2;
  config.max_batch = 1;
  config.overload = core::OverloadPolicy::kShed;
  core::RouterPool pool(
      registry.get(),
      [](std::size_t) {
        auto env = netsim::make_basic_env(0);
        env.default_egress = 1;
        return env;
      },
      config,
      [&](std::size_t, core::RouterPool::Item&, core::ProcessResult& result) {
        if (result.reason == core::DropReason::kOverloadShed) return;
        if (++first == 1) {
          std::unique_lock<std::mutex> lk(m);
          worker_blocked = true;
          cv.notify_all();
          cv.wait(lk, [&] { return release; });
        }
      });
  pool.submit(dip32_packet(0), 0, 0);
  {
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return worker_blocked; });
  }
  pool.submit(dip32_packet(1), 0, 0);
  pool.submit(dip32_packet(2), 0, 0);
  pool.submit(dip32_packet(3), 0, 0);  // would deadlock under kBlock
  EXPECT_EQ(pool.shed_total(), 1u);
  {
    std::lock_guard<std::mutex> lk(m);
    release = true;
  }
  cv.notify_all();
  pool.drain();
  pool.stop();
}

// ---------- host-side recovery ----------

TEST(Chaos, NdnConsumerSurvivesInjectedLossWithBackoff) {
  netsim::Network net(11);
  auto registry = netsim::make_default_registry();
  LinkParams lossy;
  lossy.faults.drop_rate = 0.2;
  auto path = netsim::make_linear_path(net, 1, registry, [](std::size_t i) {
    return netsim::make_basic_env(static_cast<std::uint32_t>(i));
  }, lossy);
  path->routers[0]->env().default_egress.reset();
  ndn::install_name_route(*path->routers[0]->env().fib32,
                          fib::Name::parse("/chaos"), path->downstream_face[0]);
  // Keep PIT entries shorter than the first retransmit timeout so retries
  // are not suppressed as duplicates.
  pit::Pit::Config pit_config;
  pit_config.entry_lifetime = 5 * kMillisecond;
  path->routers[0]->env().pit = pit::Pit(pit_config);

  host::NdnProducer producer(path->destination, path->destination_face);
  producer.publish(fib::Name::parse("/chaos/x"), {'x'});

  host::NdnConsumer::Config config;
  config.retransmit_timeout = 10 * kMillisecond;
  config.max_retries = 15;
  config.backoff = 2.0;
  config.max_timeout = 200 * kMillisecond;
  host::NdnConsumer consumer(path->source, path->source_face, config);
  bool got = false;
  bool failed = false;
  consumer.express_interest(
      fib::Name::parse("/chaos/x"),
      [&](const fib::Name&, std::span<const std::uint8_t>) { got = true; },
      [&](const fib::Name&) { failed = true; });
  net.run();

  EXPECT_TRUE(got) << "backoff retries must recover from 20% loss "
                   << "(failed=" << failed << ", retx=" << consumer.retransmissions()
                   << ")";
  EXPECT_GT(consumer.retransmissions(), 0u)
      << "seed 11 must actually drop at least one interest or data packet";
  EXPECT_GT(net.fault_events(), 0u);
}

TEST(Chaos, BackoffStretchesRetryTimeouts) {
  const host::RetryPolicy policy{8, 10 * kMillisecond, 2.0, 300 * kMillisecond};
  EXPECT_EQ(policy.timeout_for(0), 10 * kMillisecond);
  EXPECT_EQ(policy.timeout_for(1), 20 * kMillisecond);
  EXPECT_EQ(policy.timeout_for(3), 80 * kMillisecond);
  EXPECT_EQ(policy.timeout_for(7), 300 * kMillisecond);  // capped
  const host::RetryPolicy fixed{3, 10 * kMillisecond, 1.0, 300 * kMillisecond};
  EXPECT_EQ(fixed.timeout_for(5), 10 * kMillisecond);  // 1.0 = historical fixed
}

TEST(Chaos, OptTrafficSurvivesInjectedLossWithReliableSender) {
  // client -- (lossy link) -- router -- (lossy link) -- server. The client
  // retransmits an OPT-tagged request until the server's HostEngine
  // verifies it and an application reply makes it back.
  netsim::Network net(29);
  auto registry = netsim::make_default_registry();
  netsim::HostNode client, server;
  core::RouterEnv env = netsim::make_basic_env(1);
  const crypto::Block router_secret = env.node_secret;
  // Route the reply (client prefix) upstream; requests ride default_egress.
  netsim::DipRouterNode router(std::move(env), registry);
  net.add_node(client);
  net.add_node(router);
  net.add_node(server);
  LinkParams lossy;
  lossy.faults.drop_rate = 0.25;
  const auto [client_face, router_up] = net.connect(client, router, lossy);
  const auto [router_down, server_face] = net.connect(router, server, lossy);
  router.env().default_egress = router_down;
  router.env().fib32->insert({fib::ipv4_from_u32(0x7F000000), 8}, router_up);

  crypto::Xoshiro256 rng(41);
  const std::vector<crypto::Block> path_secrets{router_secret};
  const auto session = opt::negotiate_session(rng.block(), path_secrets, rng.block());
  const std::vector<std::uint8_t> payload = {'r', 'e', 'q'};

  host::SessionStore sessions;
  sessions.add(session);
  host::HostEngine engine(&sessions);
  std::uint64_t verified = 0;
  server.set_receiver([&](netsim::FaceId, netsim::PacketBytes packet, SimTime) {
    if (engine.receive(packet).status != host::DeliveryStatus::kDelivered) return;
    ++verified;
    // Application-level ack back to the client (dst in 127/8 routes upstream).
    server.send(server_face, dip32_packet(0x7F000001));
  });

  host::RetryPolicy policy;
  policy.max_retries = 20;
  policy.initial_timeout = 10 * kMillisecond;
  policy.backoff = 2.0;
  policy.max_timeout = 100 * kMillisecond;
  host::ReliableSender sender_driver(client, client_face, policy);
  host::ReliableSender::Epoch request_epoch = 0;
  bool acked = false;
  bool gave_up = false;
  client.set_receiver([&](netsim::FaceId, netsim::PacketBytes, SimTime) {
    acked = true;
    sender_driver.acknowledge(request_epoch);
  });
  request_epoch = sender_driver.send(
      [&](std::uint32_t) {
        // Fresh tags per attempt: each traversal rewrites the OPT chain.
        auto wire = opt::make_opt_header(session, payload, 1234)->serialize();
        wire.insert(wire.end(), payload.begin(), payload.end());
        return wire;
      },
      [&] { gave_up = true; });
  net.run();

  EXPECT_TRUE(acked) << "retries must push the OPT request through 25% loss "
                     << "(gave_up=" << gave_up
                     << ", retx=" << sender_driver.retransmissions() << ")";
  EXPECT_GE(verified, 1u) << "the server must OPT-verify at least one attempt";
  EXPECT_GT(sender_driver.retransmissions(), 0u);
  EXPECT_FALSE(sender_driver.pending());
}

// ---------- custody recovery vs the conservation ledger ----------

TEST(Chaos, CustodyRecoveryKeepsConservationLedgerBalanced) {
  // Backfill (docs/DTN.md): a packet blackholed during an outage is not
  // resurrected — the custodian re-*sends* it, and each retransmission is a
  // fresh transmit. The conservation identity must therefore hold exactly
  // through a blackout-plus-recovery cycle: recovered bundles appear as new
  // delivered transmits, never as a double count against the blackholed (or
  // any other terminal) bucket.
  netsim::Network net(42);
  netsim::HostNode a, b;
  auto registry = netsim::make_default_registry();
  dtn::add_custody_modules(*registry);
  const crypto::Block key = crypto::Xoshiro256(0xD7A).block();
  auto custody_env = [&key](std::uint32_t node) {
    core::RouterEnv env = netsim::make_basic_env(node);
    env.custody_key = key;
    env.accept_custody = true;
    return env;
  };
  dtn::CustodyRouterNode r1(custody_env(1), registry, {});
  dtn::CustodyRouterNode r2(custody_env(2), registry, {});
  net.add_node(a);
  net.add_node(r1);
  net.add_node(r2);
  net.add_node(b);

  netsim::LinkParams middle;  // dark for the first 2s, lossy afterwards
  middle.faults.blackout_period = 600 * kSecond;
  middle.faults.blackout_duration = 2 * kSecond;
  middle.faults.drop_rate = 0.1;
  const auto fa = net.connect(a, r1).first;
  const auto f12 = net.connect(r1, r2, middle).first;
  const auto [f2b, fb] = net.connect(r2, b);
  r1.env().fib32->insert(dtn::custody_prefix(100), f12);
  r2.env().fib32->insert(dtn::custody_prefix(100), f2b);

  dtn::BundleSender::Config sc;
  sc.self = dtn::custody_addr(99);
  sc.dst = dtn::custody_addr(100);
  sc.node_id = 99;
  sc.custody_key = key;
  sc.frag_payload = 48;
  dtn::BundleSender sender(a, fa, sc);
  a.set_receiver([&](netsim::FaceId, netsim::PacketBytes p, SimTime) {
    sender.on_packet(p);
  });

  dtn::BundleReceiver::Config bc;
  bc.self = dtn::custody_addr(100);
  bc.custody_key = key;
  std::map<std::uint32_t, std::vector<std::uint8_t>> delivered;
  dtn::BundleReceiver receiver(b, fb, bc,
                               [&](std::uint32_t id, std::vector<std::uint8_t> p) {
                                 delivered[id] = std::move(p);
                               });
  b.set_receiver([&](netsim::FaceId, netsim::PacketBytes p, SimTime) {
    receiver.on_packet(p);
  });

  std::vector<std::uint8_t> payload(192);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 13 + 5);
  }
  const std::uint32_t bundle = sender.send(payload);  // t=0: middle link dark
  net.run();

  // Full recovery through the outage...
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[bundle], payload);
  EXPECT_GT(r1.store().stats().retransmissions, 0u);
  EXPECT_EQ(r1.store().bundles(), 0u);
  EXPECT_EQ(r1.store().stats().evicted, 0u);

  // ...with the transport ledger balanced to the packet: every transmit
  // (original, retransmission, injected duplicate) lands in exactly one
  // terminal bucket, and the blackholed copies stay blackholed.
  const auto& s = net.stats();
  EXPECT_GT(s.blackholed, 0u) << "the blackout must actually eat packets";
  EXPECT_GT(s.lost, 0u) << "the drop_rate must actually eat packets";
  EXPECT_EQ(s.transmitted + s.duplicated,
            s.delivered + s.lost + s.blackholed + s.queue_dropped);
  EXPECT_GT(s.transmitted, s.delivered)
      << "recovery happens by fresh transmits, not resurrected ones";
}

}  // namespace
}  // namespace dip
