#include <array>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "dip/core/builder.hpp"
#include "dip/core/fn.hpp"
#include "dip/core/header.hpp"
#include "dip/core/ip.hpp"
#include "dip/crypto/random.hpp"

namespace dip::core {
namespace {

// ---------- FN triples ----------

TEST(FnTriple, TagBitSemantics) {
  const FnTriple r = FnTriple::router(0, 32, OpKey::kMatch32);
  EXPECT_FALSE(r.host_tagged());
  EXPECT_EQ(r.key(), OpKey::kMatch32);

  const FnTriple h = FnTriple::host(0, 544, OpKey::kVer);
  EXPECT_TRUE(h.host_tagged());
  EXPECT_EQ(h.key(), OpKey::kVer);
  EXPECT_EQ(h.op & 0x7fff, 9);  // Table 1: F_ver = key 9
}

TEST(FnTriple, Table1KeyNumbers) {
  // The numeric keys are part of the wire protocol (Table 1).
  EXPECT_EQ(static_cast<int>(OpKey::kMatch32), 1);
  EXPECT_EQ(static_cast<int>(OpKey::kMatch128), 2);
  EXPECT_EQ(static_cast<int>(OpKey::kSource), 3);
  EXPECT_EQ(static_cast<int>(OpKey::kFib), 4);
  EXPECT_EQ(static_cast<int>(OpKey::kPit), 5);
  EXPECT_EQ(static_cast<int>(OpKey::kParm), 6);
  EXPECT_EQ(static_cast<int>(OpKey::kMac), 7);
  EXPECT_EQ(static_cast<int>(OpKey::kMark), 8);
  EXPECT_EQ(static_cast<int>(OpKey::kVer), 9);
  EXPECT_EQ(static_cast<int>(OpKey::kDag), 10);
  EXPECT_EQ(static_cast<int>(OpKey::kIntent), 11);
}

TEST(FnInfo, NotationAndPathCriticality) {
  EXPECT_EQ(op_key_name(OpKey::kFib), "F_FIB");
  EXPECT_EQ(op_key_name(OpKey::kMac), "F_MAC");
  EXPECT_EQ(op_key_name(static_cast<OpKey>(999)), "F_?");

  EXPECT_TRUE(fn_info(OpKey::kMac)->requires_full_path);
  EXPECT_TRUE(fn_info(OpKey::kParm)->requires_full_path);
  EXPECT_FALSE(fn_info(OpKey::kTelemetry)->requires_full_path);
  EXPECT_FALSE(fn_info(static_cast<OpKey>(999)));
}

// ---------- header codec ----------

DipHeader sample_header() {
  DipHeader h;
  h.basic.next_header = 17;
  h.basic.hop_limit = 33;
  h.basic.parallel = true;
  h.fns.push_back(FnTriple::router(0, 32, OpKey::kMatch32));
  h.fns.push_back(FnTriple::host(32, 32, OpKey::kVer));
  h.locations = {1, 2, 3, 4, 5, 6, 7, 8};
  return h;
}

TEST(Header, SerializeParseRoundTrip) {
  const DipHeader h = sample_header();
  const auto wire = h.serialize();
  EXPECT_EQ(wire.size(), 6u + 2 * 6 + 8);

  const auto back = DipHeader::parse(wire);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->basic.next_header, 17);
  EXPECT_EQ(back->basic.hop_limit, 33);
  EXPECT_TRUE(back->basic.parallel);
  EXPECT_EQ(back->basic.fn_num, 2);
  EXPECT_EQ(back->basic.loc_len, 8);
  EXPECT_EQ(back->fns, h.fns);
  EXPECT_EQ(back->locations, h.locations);
}

TEST(Header, DerivedLengthNeverCarried) {
  // §2.2: header length is derived from FN_Num and FN_LocLen.
  DipHeader h = sample_header();
  EXPECT_EQ(h.wire_size(), 6u + h.fns.size() * 6 + h.locations.size());
}

TEST(Header, ChecksumDetectsCorruption) {
  auto wire = sample_header().serialize();
  wire[2] ^= 0x01;  // flip a hop-limit bit without fixing the checksum
  const auto back = DipHeader::parse(wire);
  ASSERT_FALSE(back);
  EXPECT_EQ(back.error(), bytes::Error::kChecksum);
}

TEST(Header, TruncationDetected) {
  const auto wire = sample_header().serialize();
  for (const std::size_t cut : {0u, 3u, 6u, 10u, 17u, 19u}) {
    const auto back =
        DipHeader::parse(std::span<const std::uint8_t>(wire.data(), cut));
    EXPECT_FALSE(back) << "parse must fail at " << cut << " bytes";
  }
}

TEST(Header, FnAddressingOutsideLocationsRejected) {
  DipHeader h = sample_header();
  h.fns.push_back(FnTriple::router(32, 64, OpKey::kMac));  // 96 bits > 64
  const auto wire = h.serialize();
  const auto back = DipHeader::parse(wire);
  ASSERT_FALSE(back);
  EXPECT_EQ(back.error(), bytes::Error::kMalformed);
}

TEST(Header, ZeroFnHeaderIsSixBytes) {
  DipHeader h;
  const auto wire = h.serialize();
  EXPECT_EQ(wire.size(), 6u);
  EXPECT_TRUE(DipHeader::parse(wire));
}

TEST(Header, ParallelFlagIsLowestParamBit) {
  // §2.2: "The lowest bit indicates whether the operation modules can be
  // executed in parallel."
  DipHeader h;
  h.basic.parallel = true;
  const auto wire = h.serialize();
  EXPECT_EQ(wire[4] & 0x01, 0x01);  // param low byte, lowest bit
  DipHeader h2;
  EXPECT_EQ(h2.serialize()[4] & 0x01, 0x00);
}

// ---------- Table 2 header sizes (the paper's exact numbers) ----------

TEST(Table2, Dip32HeaderIs26Bytes) {
  const auto h = make_dip32_header(fib::ipv4_from_u32(0x0A000001),
                                   fib::ipv4_from_u32(0x0A000002));
  ASSERT_TRUE(h);
  EXPECT_EQ(h->wire_size(), 26u);
  EXPECT_EQ(h->serialize().size(), 26u);
}

TEST(Table2, Dip128HeaderIs50Bytes) {
  const auto h = make_dip128_header(fib::parse_ipv6("2001:db8::1").value(),
                                    fib::parse_ipv6("2001:db8::2").value());
  ASSERT_TRUE(h);
  EXPECT_EQ(h->wire_size(), 50u);
}

TEST(Dip32, TriplesMatchPaperSection3) {
  // (loc 0, len 32, match) + (loc 32, len 32, source)
  const auto h = make_dip32_header(fib::ipv4_from_u32(1), fib::ipv4_from_u32(2));
  ASSERT_TRUE(h);
  ASSERT_EQ(h->fns.size(), 2u);
  EXPECT_EQ(h->fns[0], FnTriple::router(0, 32, OpKey::kMatch32));
  EXPECT_EQ(h->fns[1], FnTriple::router(32, 32, OpKey::kSource));
  // Destination in the lower bits, source in the upper (§3).
  EXPECT_EQ(h->locations[3], 1);
  EXPECT_EQ(h->locations[7], 2);
}

TEST(Dip128, TriplesMatchPaperSection3) {
  const auto h = make_dip128_header(fib::parse_ipv6("::1").value(),
                                    fib::parse_ipv6("::2").value());
  ASSERT_TRUE(h);
  ASSERT_EQ(h->fns.size(), 2u);
  EXPECT_EQ(h->fns[0], FnTriple::router(0, 128, OpKey::kMatch128));
  EXPECT_EQ(h->fns[1], FnTriple::router(128, 128, OpKey::kSource));
}

TEST(Dip32, FindSourceField) {
  const auto h = make_dip32_header(fib::ipv4_from_u32(1), fib::ipv4_from_u32(2));
  const auto range = find_source_field(h->fns);
  ASSERT_TRUE(range);
  EXPECT_EQ(range->bit_offset, 32u);
  EXPECT_EQ(range->bit_length, 32u);
  EXPECT_FALSE(find_source_field({}));
}

// ---------- HeaderView ----------

TEST(HeaderView, BindsAndAliasesPacket) {
  auto wire = sample_header().serialize();
  wire.push_back(0xEE);  // one payload byte
  auto view = HeaderView::bind(wire);
  ASSERT_TRUE(view);
  EXPECT_EQ(view->fns().size(), 2u);
  EXPECT_EQ(view->locations().size(), 8u);
  EXPECT_EQ(view->payload().size(), 1u);
  EXPECT_EQ(view->payload()[0], 0xEE);

  // Mutating through the view mutates the packet (zero copy).
  view->locations()[0] = 0x99;
  EXPECT_EQ(wire[6 + 12], 0x99);
}

TEST(HeaderView, HopLimitDecrementRewritesChecksum) {
  auto wire = sample_header().serialize();
  auto view = HeaderView::bind(wire);
  ASSERT_TRUE(view);
  EXPECT_TRUE(view->decrement_hop_limit());
  EXPECT_EQ(wire[2], 32);
  // The rewritten packet must still parse (checksum fixed up).
  EXPECT_TRUE(DipHeader::parse(wire));
}

TEST(HeaderView, HopLimitExhaustion) {
  DipHeader h;
  h.basic.hop_limit = 1;
  auto wire = h.serialize();
  auto view = HeaderView::bind(wire);
  ASSERT_TRUE(view);
  EXPECT_FALSE(view->decrement_hop_limit()) << "1 -> 0 means drop";

  DipHeader h0;
  h0.basic.hop_limit = 0;
  auto wire0 = h0.serialize();
  auto view0 = HeaderView::bind(wire0);
  ASSERT_TRUE(view0);
  EXPECT_FALSE(view0->decrement_hop_limit());
}

TEST(HeaderView, RejectsTooManyFns) {
  DipHeader h;
  for (int i = 0; i < 17; ++i) h.fns.push_back(FnTriple::router(0, 8, OpKey::kSource));
  h.locations = {0};
  const auto wire = h.serialize();
  std::vector<std::uint8_t> mutable_wire = wire;
  EXPECT_FALSE(HeaderView::bind(mutable_wire));
}

// ---------- builder ----------

TEST(Builder, ComposesLocationsSequentially) {
  HeaderBuilder b;
  const std::array<std::uint8_t, 2> f1 = {0xAA, 0xBB};
  const std::array<std::uint8_t, 3> f2 = {1, 2, 3};
  EXPECT_EQ(b.add_location(f1), 0);
  EXPECT_EQ(b.add_location(f2), 16);
  EXPECT_EQ(b.add_zero_location(4), 40);
  const auto h = b.build();
  ASSERT_TRUE(h);
  EXPECT_EQ(h->locations.size(), 9u);
  EXPECT_EQ(h->locations[0], 0xAA);
  EXPECT_EQ(h->locations[8], 0);
}

TEST(Builder, RejectsFnOutsideLocations) {
  HeaderBuilder b;
  b.add_fn(FnTriple::router(0, 32, OpKey::kMatch32));  // no locations yet
  EXPECT_FALSE(b.build());
}

TEST(Builder, RejectsTooManyFns) {
  HeaderBuilder b;
  b.add_zero_location(4);
  for (int i = 0; i < 17; ++i) b.add_fn(FnTriple::router(0, 32, OpKey::kSource));
  const auto h = b.build();
  ASSERT_FALSE(h);
  EXPECT_EQ(h.error(), bytes::Error::kOverflow);
}

TEST(Builder, RoundTripsThroughWire) {
  crypto::Xoshiro256 rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    HeaderBuilder b;
    const std::size_t fields = 1 + rng.below(4);
    for (std::size_t i = 0; i < fields; ++i) {
      std::vector<std::uint8_t> field(1 + rng.below(40));
      for (auto& byte : field) byte = static_cast<std::uint8_t>(rng.next());
      b.add_router_fn(OpKey::kSource, field);
    }
    const auto h = b.build();
    ASSERT_TRUE(h);
    const auto wire = h->serialize();
    const auto back = DipHeader::parse(wire);
    ASSERT_TRUE(back);
    EXPECT_EQ(back->fns, h->fns);
    EXPECT_EQ(back->locations, h->locations);
  }
}

// ---------- DipHeader::serialize error paths ----------

TEST(Serialize, ShortSpanReportsOverflow) {
  HeaderBuilder b;
  const std::array<std::uint8_t, 4> field = {1, 2, 3, 4};
  b.add_router_fn(OpKey::kMatch32, field);
  const auto h = b.build();
  ASSERT_TRUE(h);

  // Every prefix of the wire image is too small, including the empty span.
  for (std::size_t n = 0; n < h->wire_size(); ++n) {
    std::vector<std::uint8_t> out(n);
    const auto st = h->serialize(std::span<std::uint8_t>(out));
    ASSERT_FALSE(st) << "span of " << n << " bytes must not fit "
                     << h->wire_size();
    EXPECT_EQ(st.error(), bytes::Error::kOverflow);
  }
  std::vector<std::uint8_t> exact(h->wire_size());
  EXPECT_TRUE(h->serialize(std::span<std::uint8_t>(exact)));
}

TEST(Serialize, RejectsMoreFnsThanFnNumCanCount) {
  DipHeader h;
  h.locations.assign(4, 0);
  for (int i = 0; i < 256; ++i) h.fns.push_back(FnTriple::router(0, 8, OpKey::kSource));
  std::vector<std::uint8_t> out(h.wire_size());
  const auto st = h.serialize(std::span<std::uint8_t>(out));
  ASSERT_FALSE(st);
  EXPECT_EQ(st.error(), bytes::Error::kOverflow);
}

TEST(Serialize, RejectsLocationsBeyondParamField) {
  DipHeader h;
  h.locations.assign(BasicHeader::kMaxLocLen + 1, 0);  // loc_len is 10 bits
  std::vector<std::uint8_t> out(h.wire_size());
  const auto st = h.serialize(std::span<std::uint8_t>(out));
  ASSERT_FALSE(st);
  EXPECT_EQ(st.error(), bytes::Error::kOverflow);
}

TEST(Serialize, FixesUpFnNumAndLocLenFromVectors) {
  // serialize() must derive the wire counts from the vectors, not trust
  // whatever stale values basic carries.
  DipHeader h;
  h.basic.fn_num = 99;
  h.basic.loc_len = 999;
  h.basic.hop_limit = 7;
  h.locations = {0xAA, 0xBB, 0xCC, 0xDD};
  h.fns.push_back(FnTriple::router(0, 32, OpKey::kMatch32));
  const auto wire = h.serialize();
  EXPECT_EQ(wire[1], 1);  // fn_num
  const auto back = DipHeader::parse(wire);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->basic.fn_num, 1);
  EXPECT_EQ(back->basic.loc_len, 4);
  EXPECT_EQ(back->locations, h.locations);
}

TEST(Serialize, ZeroFnHeaderRoundTrips) {
  DipHeader h;
  h.basic.hop_limit = 3;
  const auto wire = h.serialize();
  EXPECT_EQ(wire.size(), BasicHeader::kWireSize);
  const auto back = DipHeader::parse(wire);
  ASSERT_TRUE(back);
  EXPECT_TRUE(back->fns.empty());
  EXPECT_TRUE(back->locations.empty());
  EXPECT_EQ(back->basic.hop_limit, 3);
}

TEST(Serialize, ParseSerializeRoundTripsRandomHeaders) {
  crypto::Xoshiro256 rng(23);
  for (int trial = 0; trial < 50; ++trial) {
    HeaderBuilder b;
    b.hop_limit(static_cast<std::uint8_t>(rng.below(256)));
    b.parallel(rng.below(2) == 0);
    const std::size_t fns = rng.below(5);
    for (std::size_t i = 0; i < fns; ++i) {
      std::vector<std::uint8_t> field(1 + rng.below(24));
      for (auto& byte : field) byte = static_cast<std::uint8_t>(rng.next());
      b.add_router_fn(rng.below(2) == 0 ? OpKey::kSource : OpKey::kMatch32, field);
    }
    const auto h = b.build();
    ASSERT_TRUE(h);
    const auto wire = h->serialize();
    const auto back = DipHeader::parse(wire);
    ASSERT_TRUE(back);
    // parse(serialize(h)) == h, and serializing again is byte-identical.
    EXPECT_EQ(back->basic.hop_limit, h->basic.hop_limit);
    EXPECT_EQ(back->basic.parallel, h->basic.parallel);
    EXPECT_EQ(back->fns, h->fns);
    EXPECT_EQ(back->locations, h->locations);
    EXPECT_EQ(back->serialize(), wire);
  }
}

}  // namespace
}  // namespace dip::core
