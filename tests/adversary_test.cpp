// Adversarial soundness properties.
//
// The security protocols' value is what they *reject*. These tests throw
// randomized adversaries at OPT and EPIC and assert the cryptographic
// soundness property: no mutation of the authenticated regions survives
// verification. They also pin simulator conservation invariants (packets
// are never duplicated or silently swallowed by the substrate).
#include <gtest/gtest.h>

#include "dip/core/ip.hpp"
#include "dip/core/router.hpp"
#include "dip/epic/epic.hpp"
#include "dip/netsim/topology.hpp"
#include "dip/netsim/traffic.hpp"
#include "dip/ndn/ndn.hpp"
#include "dip/opt/opt.hpp"

namespace dip {
namespace {

std::shared_ptr<core::OpRegistry> registry() {
  static auto r = netsim::make_default_registry();
  return r;
}

struct SecurityPath {
  std::vector<crypto::Block> secrets;
  std::vector<core::Router> routers;
  opt::Session session;
};

SecurityPath make_path(std::size_t hops, std::uint64_t seed) {
  SecurityPath path;
  crypto::Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < hops; ++i) {
    auto env = netsim::make_basic_env(static_cast<std::uint32_t>(i));
    env.node_secret = rng.block();
    path.secrets.push_back(env.node_secret);
    env.default_egress = 1;
    path.routers.emplace_back(std::move(env), registry().get());
  }
  path.session = opt::negotiate_session(rng.block(), path.secrets, rng.block());
  return path;
}

constexpr std::array<std::uint8_t, 6> kPayload = {'s', 'o', 'u', 'n', 'd', '!'};

// Property: any in-flight mutation of the OPT locations block or payload
// that actually changes bytes must fail destination verification.
TEST(AdversarialOpt, NoLocationMutationSurvivesVerification) {
  crypto::Xoshiro256 rng(0xAD01);
  int survived = 0;
  for (int trial = 0; trial < 300; ++trial) {
    SecurityPath path = make_path(1 + rng.below(4), 1000 + trial);
    auto packet = opt::make_opt_header(path.session, kPayload, 7)->serialize();
    packet.insert(packet.end(), kPayload.begin(), kPayload.end());

    // Mutate at a random hop boundary: before, between, or after routers.
    const std::size_t mutate_at = rng.below(path.routers.size() + 1);
    const auto header_probe = core::DipHeader::parse(packet);
    ASSERT_TRUE(header_probe.has_value());
    const std::size_t loc_start = packet.size() - kPayload.size() - 68;

    bool mutated_something = false;
    for (std::size_t hop = 0; hop <= path.routers.size(); ++hop) {
      if (hop == mutate_at) {
        // Flip 1..3 bytes anywhere in locations block or payload. Two flips
        // can cancel, so "mutated" is judged by comparing bytes, not flips.
        const auto before = packet;
        const std::size_t flips = 1 + rng.below(3);
        for (std::size_t f = 0; f < flips; ++f) {
          const std::size_t at = loc_start + rng.below(packet.size() - loc_start);
          packet[at] ^= static_cast<std::uint8_t>(1 + rng.below(255));
        }
        mutated_something = packet != before;
      }
      if (hop < path.routers.size()) {
        // Routers may legitimately drop packets they cannot process.
        const auto result = path.routers[hop].process(packet, 0, 0);
        if (result.action != core::Action::kForward) goto next_trial;
      }
    }
    {
      const auto header = core::DipHeader::parse(packet);
      if (!header) goto next_trial;
      const auto verdict = opt::verify_packet(
          path.session, header->locations,
          std::span<const std::uint8_t>(packet).subspan(header->wire_size()));
      if (mutated_something && verdict == opt::VerifyResult::kOk) ++survived;
    }
  next_trial:;
  }
  EXPECT_EQ(survived, 0) << "a mutated OPT packet verified OK";
}

// Property: EPIC forgeries never verify, and honest packets always do —
// across random path lengths.
TEST(AdversarialEpic, ForgeryNeverVerifiesHonestyAlwaysDoes) {
  crypto::Xoshiro256 rng(0xAD02);
  for (int trial = 0; trial < 200; ++trial) {
    SecurityPath path = make_path(1 + rng.below(8), 2000 + trial);

    // Honest leg.
    auto honest = epic::make_epic_header(path.session, kPayload, 7)->serialize();
    honest.insert(honest.end(), kPayload.begin(), kPayload.end());
    for (auto& router : path.routers) {
      ASSERT_EQ(router.process(honest, 0, 0).action, core::Action::kForward);
    }
    const auto h = core::DipHeader::parse(honest);
    ASSERT_TRUE(h.has_value());
    EXPECT_EQ(epic::verify_packet(
                  path.session, h->locations,
                  std::span<const std::uint8_t>(honest).subspan(h->wire_size())),
              epic::VerifyResult::kOk);

    // Forged leg: random subset of hop keys wrong.
    opt::Session forged = path.session;
    bool any_wrong = false;
    for (auto& key : forged.router_keys) {
      if (rng.below(2) == 0) {
        key = rng.block();
        any_wrong = true;
      }
    }
    if (!any_wrong) forged.router_keys[0] = rng.block();

    auto spoof = epic::make_epic_header(forged, kPayload, 7)->serialize();
    spoof.insert(spoof.end(), kPayload.begin(), kPayload.end());
    bool dropped_in_network = false;
    for (auto& router : path.routers) {
      if (router.process(spoof, 0, 0).action != core::Action::kForward) {
        dropped_in_network = true;
        break;
      }
    }
    EXPECT_TRUE(dropped_in_network)
        << "a forged hop key must be caught by that hop's router";
  }
}

// Property: the simulator neither duplicates nor invents packets.
// transmitted == delivered + lost, and sinks see exactly `delivered`.
TEST(SimulatorConservation, TransmitsEqualDeliveriesPlusLosses) {
  crypto::Xoshiro256 rng(0xAD03);
  for (int trial = 0; trial < 20; ++trial) {
    netsim::Network net(trial);
    netsim::HostNode a;
    netsim::HostNode b;
    net.add_node(a);
    net.add_node(b);
    netsim::LinkParams params;
    params.loss_rate = rng.uniform() * 0.5;
    params.latency = rng.below(1000);
    const auto [fa, fb] = net.connect(a, b, params);
    (void)fb;

    std::uint64_t sunk = 0;
    b.set_receiver([&](netsim::FaceId, netsim::PacketBytes, SimTime) { ++sunk; });

    const std::uint64_t to_send = 50 + rng.below(200);
    for (std::uint64_t i = 0; i < to_send; ++i) {
      net.send(a, fa, netsim::PacketBytes(1 + rng.below(100)));
    }
    net.run();

    const auto& stats = net.stats();
    EXPECT_EQ(stats.transmitted, to_send);
    EXPECT_EQ(stats.delivered + stats.lost, stats.transmitted);
    EXPECT_EQ(sunk, stats.delivered);
  }
}

// Stress: one router, all protocols interleaved randomly, with occasional
// garbage — counters must balance and nothing crashes.
TEST(RouterStress, InterleavedProtocolsCountersBalance) {
  crypto::Xoshiro256 rng(0xAD04);
  auto env = netsim::make_basic_env(1);
  env.fib32->insert({fib::ipv4_from_u32(0x0A000000), 8}, 1);
  env.fib128->insert({fib::parse_ipv6("2001:db8::").value(), 32}, 1);
  env.content_store.emplace(128);
  core::Router router(std::move(env), registry().get());

  SecurityPath opt_path = make_path(1, 0x5EED);
  auto& opt_router = opt_path.routers[0];
  (void)opt_router;

  std::uint64_t attempts = 0;
  for (int i = 0; i < 5000; ++i) {
    std::vector<std::uint8_t> packet;
    switch (rng.below(5)) {
      case 0:
        packet = core::make_dip32_header(fib::ipv4_from_u32(rng.u32()),
                                         fib::ipv4_from_u32(rng.u32()))
                     ->serialize();
        break;
      case 1:
        packet = ndn::make_interest_header32(rng.u32())->serialize();
        break;
      case 2:
        packet = ndn::make_data_header32(rng.u32())->serialize();
        break;
      case 3: {
        packet = opt::make_opt_header(opt_path.session, kPayload, 7)->serialize();
        packet.insert(packet.end(), kPayload.begin(), kPayload.end());
        break;
      }
      default:
        packet.resize(rng.below(64));
        for (auto& byte : packet) byte = static_cast<std::uint8_t>(rng.next());
        break;
    }
    (void)router.process(packet, static_cast<core::FaceId>(rng.below(4)), i);
    ++attempts;
  }

  const auto& counters = router.env().counters;
  EXPECT_EQ(counters.processed, attempts);
  EXPECT_EQ(counters.forwarded + counters.dropped + counters.errors, attempts)
      << "every packet must be accounted for exactly once";
}

}  // namespace
}  // namespace dip
