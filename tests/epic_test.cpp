// EPIC-style F_hvf: per-hop verify-and-update, in-network filtering of
// forged traffic (the property OPT lacks), and destination path proof.
#include <gtest/gtest.h>

#include "dip/epic/epic.hpp"
#include "dip/opt/opt.hpp"
#include "dip/core/router.hpp"
#include "dip/netsim/topology.hpp"

namespace dip::epic {
namespace {

using core::Action;
using core::DipHeader;
using core::DropReason;
using core::Router;

std::shared_ptr<core::OpRegistry> registry() {
  // The default netsim registry predates F_hvf; extend a copy.
  static auto r = [] {
    auto reg = netsim::make_default_registry();
    reg->add(std::make_unique<HvfOp>());
    return reg;
  }();
  return r;
}

struct EpicPath {
  std::vector<crypto::Block> secrets;
  std::vector<Router> routers;
  opt::Session session;
};

EpicPath make_path(std::size_t hops) {
  EpicPath path;
  crypto::Xoshiro256 rng(0xE51C);
  for (std::size_t i = 0; i < hops; ++i) {
    path.secrets.push_back(rng.block());
    auto env = netsim::make_basic_env(static_cast<std::uint32_t>(i));
    env.node_secret = path.secrets.back();
    env.default_egress = 1;
    path.routers.emplace_back(std::move(env), registry().get());
  }
  path.session = opt::negotiate_session(rng.block(), path.secrets, rng.block());
  return path;
}

constexpr std::array<std::uint8_t, 4> kPayload = {'e', 'p', 'i', 'c'};

std::vector<std::uint8_t> epic_packet(const opt::Session& session) {
  auto wire = make_epic_header(session, kPayload, 99)->serialize();
  wire.insert(wire.end(), kPayload.begin(), kPayload.end());
  return wire;
}

VerifyResult verify_received(const opt::Session& session,
                             std::span<const std::uint8_t> packet) {
  const auto h = DipHeader::parse(packet);
  EXPECT_TRUE(h.has_value());
  // Qualified: ADL also finds opt::verify_packet via opt::Session.
  return epic::verify_packet(session, h->locations, packet.subspan(h->wire_size()));
}

class EpicChain : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EpicChain, HonestPathVerifiesEndToEnd) {
  EpicPath path = make_path(GetParam());
  auto packet = epic_packet(path.session);
  for (auto& router : path.routers) {
    ASSERT_EQ(router.process(packet, 0, 0).action, Action::kForward);
  }
  EXPECT_EQ(verify_received(path.session, packet), VerifyResult::kOk);
}

INSTANTIATE_TEST_SUITE_P(HopCounts, EpicChain, ::testing::Values(1, 2, 3, 5, 8));

TEST(Epic, ForgedPacketDiesAtTheFirstHop) {
  // An attacker without the hop keys fabricates HVFs. OPT would carry this
  // to the destination; EPIC's F_hvf kills it at router 0.
  EpicPath path = make_path(3);
  opt::Session forged = path.session;
  forged.router_keys[0][3] ^= 1;  // wrong key for hop 0

  auto packet = epic_packet(forged);
  const auto result = path.routers[0].process(packet, 0, 0);
  EXPECT_EQ(result.action, Action::kDrop);
  EXPECT_EQ(result.reason, DropReason::kAuthFailed);
}

TEST(Epic, ForgeryDeeperInThePathDiesExactlyThere) {
  EpicPath path = make_path(4);
  opt::Session forged = path.session;
  forged.router_keys[2][0] ^= 1;  // hops 0,1 valid; hop 2 forged

  auto packet = epic_packet(forged);
  EXPECT_EQ(path.routers[0].process(packet, 0, 0).action, Action::kForward);
  EXPECT_EQ(path.routers[1].process(packet, 0, 0).action, Action::kForward);
  const auto result = path.routers[2].process(packet, 0, 0);
  EXPECT_EQ(result.action, Action::kDrop);
  EXPECT_EQ(result.reason, DropReason::kAuthFailed);
}

TEST(Epic, ReplayedHopFailsVerification) {
  // A router processing the packet twice consumes someone else's HVF slot.
  EpicPath path = make_path(2);
  auto packet = epic_packet(path.session);
  EXPECT_EQ(path.routers[0].process(packet, 0, 0).action, Action::kForward);
  // Router 0 again: hop_index now 1, but HVF[1] was keyed for router 1.
  EXPECT_EQ(path.routers[0].process(packet, 0, 0).reason, DropReason::kAuthFailed);
}

TEST(Epic, PathLongerThanDeclaredDropped) {
  EpicPath path = make_path(2);
  auto packet = epic_packet(path.session);
  EXPECT_EQ(path.routers[0].process(packet, 0, 0).action, Action::kForward);
  EXPECT_EQ(path.routers[1].process(packet, 0, 0).action, Action::kForward);
  // A third DIP router beyond the declared path: hop_index == hop_count.
  EpicPath extra = make_path(1);
  EXPECT_EQ(extra.routers[0].process(packet, 0, 0).reason, DropReason::kAuthFailed);
}

TEST(Epic, SkippedHopCaughtByDestination) {
  EpicPath path = make_path(3);
  auto packet = epic_packet(path.session);
  (void)path.routers[0].process(packet, 0, 0);
  // Router 1 bypassed entirely (e.g., tunnel around it).
  // Router 2 will check HVF[1] with ITS key and fail -> dropped in-network.
  const auto result = path.routers[2].process(packet, 0, 0);
  EXPECT_EQ(result.reason, DropReason::kAuthFailed);
}

TEST(Epic, TamperedPayloadCaughtByDestination) {
  EpicPath path = make_path(2);
  auto packet = epic_packet(path.session);
  for (auto& router : path.routers) (void)router.process(packet, 0, 0);
  packet.back() ^= 0xFF;
  EXPECT_EQ(verify_received(path.session, packet), VerifyResult::kBadDataHash);
}

TEST(Epic, UnstampedPacketFailsProofCheck) {
  // Packet that never traversed the path: destination sees hop_index 0.
  EpicPath path = make_path(2);
  const auto packet = epic_packet(path.session);
  EXPECT_EQ(verify_received(path.session, packet), VerifyResult::kIncompletePath);
}

TEST(Epic, WrongSessionRejected) {
  EpicPath path = make_path(2);
  auto packet = epic_packet(path.session);
  for (auto& router : path.routers) (void)router.process(packet, 0, 0);
  opt::Session other = path.session;
  other.id[0] ^= 1;
  const auto h = DipHeader::parse(packet);
  EXPECT_EQ(epic::verify_packet(other, h->locations,
                          std::span<const std::uint8_t>(packet).subspan(h->wire_size())),
            VerifyResult::kBadSession);
}

TEST(Epic, BlockSizing) {
  EXPECT_EQ(block_bytes(0), 40u);
  EXPECT_EQ(block_bytes(8), 72u);
  EpicPath path = make_path(3);
  const auto h = make_epic_header(path.session, kPayload, 1);
  ASSERT_TRUE(h.has_value());
  // 6 basic + 1 triple + 40 + 3*4 = 64 bytes.
  EXPECT_EQ(h->wire_size(), 6u + 6u + block_bytes(3));
}

TEST(Epic, MalformedBlocksRejected) {
  EpicPath path = make_path(1);
  core::HeaderBuilder b;
  std::array<std::uint8_t, 10> tiny{};
  b.add_router_fn(core::OpKey::kHvf, tiny);
  auto packet = b.build()->serialize();
  EXPECT_EQ(path.routers[0].process(packet, 0, 0).reason, DropReason::kMalformed);

  // hop_count lies beyond the block.
  std::vector<std::uint8_t> block(kFixedBytes, 0);
  block[37] = 5;  // hop_count 5 but no HVF array
  core::HeaderBuilder b2;
  b2.add_router_fn(core::OpKey::kHvf, block);
  auto packet2 = b2.build()->serialize();
  EXPECT_EQ(path.routers[0].process(packet2, 0, 0).reason, DropReason::kMalformed);
}

// The headline comparison: how far does spoofed traffic travel before
// being dropped? OPT: the whole path (destination drops). EPIC: one hop.
TEST(Epic, SpoofedTrafficFilteredInNetworkUnlikeOpt) {
  constexpr std::size_t kHops = 5;
  crypto::Xoshiro256 rng(0xBAD);

  // --- OPT leg: spoofed packet sails through all routers. ---
  {
    std::vector<crypto::Block> secrets;
    std::vector<Router> routers;
    for (std::size_t i = 0; i < kHops; ++i) {
      auto env = netsim::make_basic_env(static_cast<std::uint32_t>(i));
      secrets.push_back(env.node_secret);
      env.default_egress = 1;
      routers.emplace_back(std::move(env), registry().get());
    }
    const auto session = opt::negotiate_session(rng.block(), secrets, rng.block());
    opt::Session spoofed = session;
    spoofed.destination_key[0] ^= 1;  // forged source

    const std::array<std::uint8_t, 2> payload = {'x', 'x'};
    auto packet = opt::make_opt_header(spoofed, payload, 1)->serialize();
    packet.insert(packet.end(), payload.begin(), payload.end());

    std::size_t hops_travelled = 0;
    for (auto& router : routers) {
      if (router.process(packet, 0, 0).action != Action::kForward) break;
      ++hops_travelled;
    }
    EXPECT_EQ(hops_travelled, kHops)
        << "OPT routers cannot tell: the spoof consumes the full path";
  }

  // --- EPIC leg: same forgery dies at hop 0. ---
  {
    EpicPath path = make_path(kHops);
    opt::Session spoofed = path.session;
    for (auto& k : spoofed.router_keys) k = rng.block();  // attacker guesses

    auto packet = epic_packet(spoofed);
    std::size_t hops_travelled = 0;
    for (auto& router : path.routers) {
      if (router.process(packet, 0, 0).action != Action::kForward) break;
      ++hops_travelled;
    }
    EXPECT_EQ(hops_travelled, 0u) << "EPIC filters at the first hop";
  }
}

}  // namespace
}  // namespace dip::epic
