// The footnote-2 caching extension, end to end: PIT aggregation fan-out on
// a star topology, content-store absorption of repeat requests, and a
// Zipf-popularity workload quantifying producer offload.
#include <gtest/gtest.h>

#include "dip/host/ndn_app.hpp"
#include "dip/netsim/topology.hpp"

namespace dip::netsim {
namespace {

using fib::Name;

std::shared_ptr<core::OpRegistry> registry() {
  static auto r = make_default_registry();
  return r;
}

core::RouterEnv hub_env(bool with_cache) {
  core::RouterEnv env = make_basic_env(0);
  env.default_egress.reset();
  if (with_cache) env.content_store.emplace(1024);
  return env;
}

struct StarFixture {
  explicit StarFixture(std::size_t consumers, bool with_cache)
      : star(make_star(net, consumers, registry(), hub_env(with_cache))) {
    // Route the content prefix toward the producer.
    ndn::install_name_route(*star->hub->env().fib32, Name::parse("/cdn"),
                            star->hub_producer_face);
    producer.emplace(star->producer, star->producer_face);
  }

  Network net;
  std::unique_ptr<Star> star;
  std::optional<host::NdnProducer> producer;
};

TEST(Caching, PitAggregationFansOutToAllRequesters) {
  constexpr std::size_t kConsumers = 5;
  StarFixture fx(kConsumers, /*with_cache=*/false);
  const Name name = Name::parse("/cdn/launch-day-video");
  fx.producer->publish(name, {'v', 'i', 'd'});

  std::size_t satisfied = 0;
  std::vector<std::unique_ptr<host::NdnConsumer>> consumers;
  for (std::size_t i = 0; i < kConsumers; ++i) {
    consumers.push_back(std::make_unique<host::NdnConsumer>(
        *fx.star->consumers[i], fx.star->consumer_face[i]));
    // All five express the same interest at t=0 — the thundering herd.
    consumers.back()->express_interest(
        name, [&](const Name&, std::span<const std::uint8_t> payload) {
          EXPECT_EQ(payload.size(), 3u);
          ++satisfied;
        });
  }
  fx.net.run();

  EXPECT_EQ(satisfied, kConsumers) << "data must fan out to every requester";
  EXPECT_EQ(fx.producer->interests_served(), 1u)
      << "PIT aggregation: the producer sees ONE interest, not five";
}

TEST(Caching, ContentStoreAbsorbsRepeatRequests) {
  StarFixture fx(2, /*with_cache=*/true);
  const Name name = Name::parse("/cdn/logo.png");
  fx.producer->publish(name, {'p', 'n', 'g'});

  // Consumer 0 fetches; the data passing through the hub populates the CS.
  host::NdnConsumer first(*fx.star->consumers[0], fx.star->consumer_face[0]);
  std::vector<std::uint8_t> got0;
  first.express_interest(name, [&](const Name&, std::span<const std::uint8_t> p) {
    got0.assign(p.begin(), p.end());
  });
  fx.net.run();
  ASSERT_EQ(got0, (std::vector<std::uint8_t>{'p', 'n', 'g'}));
  EXPECT_EQ(fx.producer->interests_served(), 1u);

  // Consumer 1 asks later: served by the hub's cache, producer untouched.
  host::NdnConsumer second(*fx.star->consumers[1], fx.star->consumer_face[1]);
  std::vector<std::uint8_t> got1;
  second.express_interest(name, [&](const Name&, std::span<const std::uint8_t> p) {
    got1.assign(p.begin(), p.end());
  });
  fx.net.run();

  EXPECT_EQ(got1, got0) << "cache must serve identical content";
  EXPECT_EQ(fx.producer->interests_served(), 1u)
      << "repeat request never reached the producer (footnote 2)";
  EXPECT_GE(fx.star->hub->env().content_store->hits(), 1u);
}

TEST(Caching, ZipfWorkloadOffloadsProducer) {
  constexpr std::size_t kCatalog = 200;
  constexpr std::size_t kRequests = 400;

  auto run_workload = [&](bool with_cache) -> std::uint64_t {
    StarFixture fx(1, with_cache);
    std::vector<Name> names;
    for (std::size_t i = 0; i < kCatalog; ++i) {
      Name n = Name::parse("/cdn/object" + std::to_string(i));
      names.push_back(n);
      fx.producer->publish(n, std::vector<std::uint8_t>(32, static_cast<std::uint8_t>(i)));
    }

    host::NdnConsumer consumer(*fx.star->consumers[0], fx.star->consumer_face[0]);
    ZipfSampler zipf(kCatalog, /*exponent=*/1.0, /*seed=*/99);
    std::size_t answered = 0;
    for (std::size_t r = 0; r < kRequests; ++r) {
      consumer.express_interest(
          names[zipf.sample()],
          [&](const Name&, std::span<const std::uint8_t>) { ++answered; });
      fx.net.run();  // complete each exchange before the next (no dup names in PIT)
    }
    EXPECT_EQ(answered, kRequests);
    return fx.producer->interests_served();
  };

  const std::uint64_t without_cache = run_workload(false);
  const std::uint64_t with_cache = run_workload(true);

  EXPECT_EQ(without_cache, kRequests) << "no cache: every request hits the producer";
  EXPECT_LT(with_cache, kRequests / 2)
      << "Zipf(1.0) + LRU cache must absorb the popular head";
  EXPECT_LE(with_cache, static_cast<std::uint64_t>(kCatalog));
}

TEST(Zipf, HeadIsHeavy) {
  ZipfSampler zipf(1000, 1.0, 7);
  std::size_t head = 0;
  constexpr int kSamples = 10000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.sample() < 10) ++head;
  }
  // Zipf(1.0, n=1000): top-10 mass ~ H(10)/H(1000) ~ 2.93/7.49 ~ 39%.
  EXPECT_NEAR(static_cast<double>(head) / kSamples, 0.39, 0.05);
}

TEST(Zipf, DeterministicPerSeed) {
  ZipfSampler a(100, 0.8, 5);
  ZipfSampler b(100, 0.8, 5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.sample(), b.sample());
}

}  // namespace
}  // namespace dip::netsim
