// Shared fixture for the conformance harness: builds the production RouterEnv
// and the refmodel oracle from the SAME world constants
// (tests/proptest/generators.hpp), and maps both sides' verdicts into one
// comparable image *by name* so an enum renumbering on either side cannot
// mask a divergence.
#pragma once

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dip/core/engine.hpp"
#include "dip/core/flow_cache.hpp"
#include "dip/core/registry.hpp"
#include "dip/ctrl/journal.hpp"
#include "dip/dtn/custody.hpp"
#include "dip/netsim/dip_node.hpp"
#include "dip/qos/dps.hpp"
#include "dip/refmodel/refmodel.hpp"
#include "dip/xia/dag.hpp"

#include "../proptest/generators.hpp"

namespace dip::conformance {

namespace w = proptest::world;

// ---------------------------------------------------------------------------
// World construction — both sides from the same constants.
// ---------------------------------------------------------------------------

/// The default registry plus (optionally) the stateful F_dps module and the
/// DTN custody pair (F_custody/F_frag).
inline std::shared_ptr<core::OpRegistry> make_registry(bool with_dps,
                                                       bool with_custody = false) {
  std::shared_ptr<core::OpRegistry> registry = netsim::make_default_registry();
  if (with_dps) {
    registry->add(std::make_unique<qos::DpsOp>(
        qos::FairShareEstimator::Config{w::kDpsCapacity, w::kDpsWindow}, w::kDpsSeed));
  }
  if (with_custody) dtn::add_custody_modules(*registry);
  return registry;
}

/// Route tables shared by every engine worker (read-mostly, per env.hpp).
/// When `control` is set (attach_control), the env factory wires every
/// worker env to the RCU snapshots instead and the static pointers serve
/// only as the seed.
struct SharedTables {
  std::shared_ptr<fib::Ipv4Lpm> fib32;
  std::shared_ptr<fib::Ipv6Lpm> fib128;
  std::shared_ptr<fib::XidTable> xid_table;
  std::shared_ptr<ctrl::ControlTables> control;
};

/// Wrap the static tables in control-plane snapshots (seeded from them) and
/// return the single-writer journal for driving churn.
inline std::shared_ptr<ctrl::RouteJournal> attach_control(SharedTables& t) {
  auto tables = std::make_shared<ctrl::ControlTables>();
  auto journal = std::make_shared<ctrl::RouteJournal>(tables);
  journal->seed(t.fib32.get(), t.fib128.get(), t.xid_table.get());
  t.control = tables;
  return journal;
}

/// `engine` selects the LPM engine behind both address-family FIBs; churn
/// clones inherit it (JournalConfig docs), so passing kTreeBitmap here runs
/// the whole conformance schedule on the compressed engine.
inline SharedTables make_shared_tables(
    fib::LpmEngine engine = fib::LpmEngine::kPatricia) {
  SharedTables t;
  t.fib32 = std::shared_ptr<fib::Ipv4Lpm>(fib::make_lpm<32>(engine));
  t.fib32->insert({fib::ipv4_from_u32(w::kNet10), 8}, w::kNh10);
  t.fib32->insert({fib::ipv4_from_u32(w::kNet10_64), 10}, w::kNh10_64);
  t.fib128 = std::shared_ptr<fib::Ipv6Lpm>(
      engine == fib::LpmEngine::kDir24
          ? fib::make_lpm<128>(fib::LpmEngine::kPatricia)  // Dir24 is v4-only
          : fib::make_lpm<128>(engine));
  t.fib128->insert({fib::Ipv6Addr{w::kNet128}, 32}, w::kNh128);
  t.xid_table = std::make_shared<fib::XidTable>();
  t.xid_table->insert(fib::XidType::kAd, w::ad_routed(), w::kNhAd);
  t.xid_table->set_local(fib::XidType::kAd, w::ad_local());
  t.xid_table->set_local(fib::XidType::kHid, w::hid_local());
  t.xid_table->set_local(fib::XidType::kSid, w::sid_local());
  t.xid_table->insert(fib::XidType::kSid, w::sid_local(), w::kNhSid);
  t.xid_table->set_local(fib::XidType::kCid, w::cid_hit());
  t.xid_table->set_local(fib::XidType::kCid, w::cid_miss());
  return t;
}

/// An EnvFactory over one set of shared tables: per-worker PIT/CS/flow-cache,
/// shared FIBs — exactly the RouterPool sharding contract.
inline core::EnvFactory make_env_factory(const SharedTables& tables,
                                         bool with_flow_cache = true) {
  return [tables, with_flow_cache](std::size_t) {
    core::RouterEnv env;
    env.node_id = w::kNodeId;
    env.fib32 = tables.fib32;
    env.fib128 = tables.fib128;
    env.xid_table = tables.xid_table;
    if (tables.control) {
      env.control = tables.control;
      env.ctrl_reader = tables.control->register_reader();
    }
    env.pit = pit::Pit(pit::Pit::Config{w::kPitLifetime, w::kPitMaxEntries});
    env.content_store.emplace(w::kContentStoreCapacity);
    env.content_store->insert(w::kCachedName, w::cached_payload());
    env.content_store->insert(xia::xid_code(w::cid_hit()), w::cached_payload());
    if (with_flow_cache) env.flow_cache = std::make_unique<core::FlowCache>();
    env.default_egress = w::kDefaultEgress;
    env.node_secret = w::node_secret();
    env.pass_key = w::pass_key();
    env.enforce_pass = true;
    // Inert without the custody modules in the registry (the default): the
    // custody streams opt in via make_registry(with_custody).
    env.custody_key = w::custody_key();
    env.accept_custody = true;
    env.limits.per_packet_budget = w::kBudget;
    env.limits.max_fn_per_packet = w::kMaxFnPerPacket;
    return env;
  };
}

/// The refmodel twin of make_env_factory's environment.
inline refmodel::RefNode make_ref_node(
    bool lenient, bool dps_enabled = false,
    refmodel::Mutation mutation = refmodel::Mutation::kNone,
    bool custody_enabled = false) {
  refmodel::RefConfig cfg;
  cfg.node_id = w::kNodeId;
  cfg.node_secret = w::node_secret();
  cfg.pass_key = w::pass_key();
  cfg.enforce_pass = true;
  cfg.lenient = lenient;
  cfg.default_egress = w::kDefaultEgress;
  cfg.per_packet_budget = w::kBudget;
  cfg.max_fn_per_packet = w::kMaxFnPerPacket;
  cfg.pit_lifetime = w::kPitLifetime;
  cfg.pit_max_entries = w::kPitMaxEntries;
  cfg.content_store_capacity = w::kContentStoreCapacity;
  cfg.dps_enabled = dps_enabled;
  cfg.dps_seed = w::kDpsSeed;
  cfg.dps_capacity_bytes_per_sec = w::kDpsCapacity;
  cfg.dps_window = w::kDpsWindow;
  cfg.custody_enabled = custody_enabled;
  cfg.custody_accept = true;
  cfg.custody_key = w::custody_key();
  cfg.mutation = mutation;
  refmodel::RefNode node(cfg);
  node.add_route32(w::kNet10, 8, w::kNh10);
  node.add_route32(w::kNet10_64, 10, w::kNh10_64);
  node.add_route128(w::kNet128, 32, w::kNh128);
  node.add_xid_route(static_cast<std::uint8_t>(fib::XidType::kAd),
                     w::ad_routed().bytes, w::kNhAd);
  node.set_xid_local(static_cast<std::uint8_t>(fib::XidType::kAd), w::ad_local().bytes);
  node.set_xid_local(static_cast<std::uint8_t>(fib::XidType::kHid),
                     w::hid_local().bytes);
  node.set_xid_local(static_cast<std::uint8_t>(fib::XidType::kSid),
                     w::sid_local().bytes);
  node.add_xid_route(static_cast<std::uint8_t>(fib::XidType::kSid),
                     w::sid_local().bytes, w::kNhSid);
  node.set_xid_local(static_cast<std::uint8_t>(fib::XidType::kCid), w::cid_hit().bytes);
  node.set_xid_local(static_cast<std::uint8_t>(fib::XidType::kCid),
                     w::cid_miss().bytes);
  node.store_content(w::kCachedName, w::cached_payload());
  node.store_content(xia::xid_code(w::cid_hit()), w::cached_payload());
  return node;
}

// ---------------------------------------------------------------------------
// Verdict comparison — both enums mapped BY NAME into one image.
// ---------------------------------------------------------------------------

struct VerdictImage {
  int action = 0;  // 0 forward, 1 drop, 2 error
  int reason = 0;  // common DropReason ordinal
  std::vector<std::uint32_t> egress;
  std::uint16_t offending_key = 0;
  bool respond_from_cache = false;

  friend bool operator==(const VerdictImage&, const VerdictImage&) = default;
};

inline int image_of(core::Action a) {
  switch (a) {
    case core::Action::kForward: return 0;
    case core::Action::kDrop: return 1;
    case core::Action::kError: return 2;
  }
  return -1;
}

inline int image_of(refmodel::RefAction a) {
  switch (a) {
    case refmodel::RefAction::kForward: return 0;
    case refmodel::RefAction::kDrop: return 1;
    case refmodel::RefAction::kError: return 2;
  }
  return -1;
}

inline int image_of(core::DropReason r) {
  switch (r) {
    case core::DropReason::kNone: return 0;
    case core::DropReason::kNoRoute: return 1;
    case core::DropReason::kPitMiss: return 2;
    case core::DropReason::kHopLimitExceeded: return 3;
    case core::DropReason::kAuthFailed: return 4;
    case core::DropReason::kBudgetExhausted: return 5;
    case core::DropReason::kUnsupportedFn: return 6;
    case core::DropReason::kMalformed: return 7;
    case core::DropReason::kDuplicate: return 8;
    case core::DropReason::kPolicyDenied: return 9;
    case core::DropReason::kAggregated: return 10;
    case core::DropReason::kRateExceeded: return 11;
    case core::DropReason::kOverloadShed: return 12;
    case core::DropReason::kCorruptQuarantine: return 13;
  }
  return -1;
}

inline int image_of(refmodel::RefDrop r) {
  switch (r) {
    case refmodel::RefDrop::kNone: return 0;
    case refmodel::RefDrop::kNoRoute: return 1;
    case refmodel::RefDrop::kPitMiss: return 2;
    case refmodel::RefDrop::kHopLimitExceeded: return 3;
    case refmodel::RefDrop::kAuthFailed: return 4;
    case refmodel::RefDrop::kBudgetExhausted: return 5;
    case refmodel::RefDrop::kUnsupportedFn: return 6;
    case refmodel::RefDrop::kMalformed: return 7;
    case refmodel::RefDrop::kDuplicate: return 8;
    case refmodel::RefDrop::kPolicyDenied: return 9;
    case refmodel::RefDrop::kAggregated: return 10;
    case refmodel::RefDrop::kRateExceeded: return 11;
    case refmodel::RefDrop::kOverloadShed: return 12;
    case refmodel::RefDrop::kCorruptQuarantine: return 13;
  }
  return -1;
}

inline VerdictImage image_of(const core::ProcessResult& r) {
  VerdictImage v;
  v.action = image_of(r.action);
  v.reason = image_of(r.reason);
  v.egress.assign(r.egress.begin(), r.egress.end());
  v.offending_key = static_cast<std::uint16_t>(r.offending_key);
  v.respond_from_cache = r.respond_from_cache;
  return v;
}

inline VerdictImage image_of(const refmodel::RefVerdict& r) {
  VerdictImage v;
  v.action = image_of(r.action);
  v.reason = image_of(r.reason);
  v.egress = r.egress;
  v.offending_key = r.offending_key;
  v.respond_from_cache = r.respond_from_cache;
  return v;
}

inline std::string to_string(const VerdictImage& v) {
  std::ostringstream os;
  os << "{action=" << v.action << " reason=" << v.reason << " egress=[";
  for (std::size_t i = 0; i < v.egress.size(); ++i) {
    os << (i ? "," : "") << v.egress[i];
  }
  os << "] offending=" << v.offending_key
     << " cache=" << (v.respond_from_cache ? 1 : 0) << "}";
  return os.str();
}

inline std::string dump_packet(const std::vector<std::uint8_t>& p) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(p.size() * 2);
  for (const std::uint8_t b : p) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0f]);
  }
  return out;
}

}  // namespace dip::conformance
