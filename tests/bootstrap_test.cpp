// §2.3 bootstrapping: capability sets, DHCP-like discovery, and BGP-style
// AS-level propagation with end-to-end intersection.
#include <gtest/gtest.h>

#include "dip/bootstrap/capability.hpp"
#include "dip/bootstrap/dhcp.hpp"
#include "dip/bootstrap/propagation.hpp"
#include "dip/opt/opt.hpp"

namespace dip::bootstrap {
namespace {

using core::OpKey;

// ---------- capability set ----------

TEST(CapabilitySet, BasicOperations) {
  CapabilitySet set{OpKey::kFib, OpKey::kPit};
  EXPECT_TRUE(set.supports(OpKey::kFib));
  EXPECT_FALSE(set.supports(OpKey::kMac));
  set.add(OpKey::kMac);
  EXPECT_TRUE(set.supports(OpKey::kMac));
  set.remove(OpKey::kMac);
  EXPECT_FALSE(set.supports(OpKey::kMac));
  EXPECT_EQ(set.size(), 2u);
}

TEST(CapabilitySet, CoversAndIntersect) {
  const CapabilitySet big = full_capability_set();
  const CapabilitySet small{OpKey::kFib, OpKey::kPit};
  EXPECT_TRUE(big.covers(small));
  EXPECT_FALSE(small.covers(big));
  EXPECT_TRUE(small.covers(CapabilitySet{}));

  const CapabilitySet a{OpKey::kFib, OpKey::kMac, OpKey::kParm};
  const CapabilitySet b{OpKey::kMac, OpKey::kParm, OpKey::kVer};
  const CapabilitySet both = a.intersect(b);
  EXPECT_EQ(both, (CapabilitySet{OpKey::kMac, OpKey::kParm}));
}

TEST(CapabilitySet, SerializeParseRoundTrip) {
  const CapabilitySet set = table1_capability_set();
  const auto wire = set.serialize();
  EXPECT_EQ(wire.size(), 1u + set.size() * 2);
  const auto back = CapabilitySet::parse(wire);
  ASSERT_TRUE(back);
  EXPECT_EQ(*back, set);
}

TEST(CapabilitySet, ParseRejectsTruncation) {
  const auto wire = table1_capability_set().serialize();
  EXPECT_FALSE(CapabilitySet::parse(std::span<const std::uint8_t>(wire.data(), 4)));
  EXPECT_FALSE(CapabilitySet::parse({}));
}

TEST(CapabilitySet, Table1HasElevenFns) {
  EXPECT_EQ(table1_capability_set().size(), 11u);
  EXPECT_EQ(full_capability_set().size(), 13u);
}

// ---------- DHCP-like exchange ----------

TEST(Dhcp, FullDiscoveryFlow) {
  BootstrapServer as_server(table1_capability_set());

  // Host asks for everything, over the wire.
  const DiscoverRequest request{};
  const auto request_wire = request.serialize();
  const auto request_back = DiscoverRequest::parse(request_wire);
  ASSERT_TRUE(request_back);

  const DiscoverOffer offer = as_server.respond(*request_back);
  const auto offer_wire = offer.serialize();
  const auto offer_back = DiscoverOffer::parse(offer_wire);
  ASSERT_TRUE(offer_back);

  BootstrapClient host;
  host.learn(*offer_back);
  EXPECT_EQ(host.offered(), table1_capability_set());
}

TEST(Dhcp, ConstrainedRequestIntersects) {
  BootstrapServer as_server(CapabilitySet{OpKey::kFib, OpKey::kPit, OpKey::kMatch32});
  DiscoverRequest request;
  request.interested = CapabilitySet{OpKey::kFib, OpKey::kMac};
  const auto offer = as_server.respond(request);
  EXPECT_EQ(offer.available, CapabilitySet{OpKey::kFib});
}

TEST(Dhcp, RequestAndOfferFramesDistinct) {
  const auto req = DiscoverRequest{}.serialize();
  EXPECT_FALSE(DiscoverOffer::parse(req)) << "frame tags must not be confusable";
}

TEST(Dhcp, HostGatesCompositionOnOffer) {
  // §2.3: the host formulates FNs "considering both the required network
  // services and the supported FNs".
  BootstrapClient host;
  host.learn(DiscoverOffer{CapabilitySet{OpKey::kFib, OpKey::kPit}});

  const auto ndn_ok = host.first_missing(
      std::vector<core::FnTriple>{core::FnTriple::router(0, 32, OpKey::kFib)});
  EXPECT_FALSE(ndn_ok);

  const auto opt_fns = opt::opt_fn_triples();
  const auto missing = host.first_missing(opt_fns);
  ASSERT_TRUE(missing);
  EXPECT_EQ(*missing, OpKey::kParm) << "first OPT FN the AS lacks";
}

// ---------- AS graph propagation ----------

AsGraph hotnets_graph() {
  // AS1 (full) -- AS2 (full) -- AS3 (no OPT chain) -- AS4 (full)
  AsGraph graph;
  graph.add_as(1, full_capability_set());
  graph.add_as(2, full_capability_set());
  CapabilitySet no_opt = full_capability_set();
  no_opt.remove(OpKey::kParm);
  no_opt.remove(OpKey::kMac);
  no_opt.remove(OpKey::kMark);
  graph.add_as(3, no_opt);
  graph.add_as(4, full_capability_set());
  graph.add_link(1, 2);
  graph.add_link(2, 3);
  graph.add_link(3, 4);
  return graph;
}

TEST(AsGraph, ShortestPath) {
  const AsGraph graph = hotnets_graph();
  EXPECT_EQ(graph.shortest_path(1, 4), (std::vector<AsNumber>{1, 2, 3, 4}));
  EXPECT_EQ(graph.shortest_path(2, 2), std::vector<AsNumber>{2});
  EXPECT_TRUE(graph.shortest_path(1, 99).empty());
}

TEST(AsGraph, EndToEndIntersection) {
  const AsGraph graph = hotnets_graph();

  // Within the full-capability core, OPT works.
  const auto near = graph.end_to_end(1, 2);
  ASSERT_TRUE(near);
  EXPECT_TRUE(near->supports(OpKey::kMac));

  // Across AS3, the OPT chain is unusable but NDN still works — this is
  // what the host consults before composing headers (§2.4).
  const auto far = graph.end_to_end(1, 4);
  ASSERT_TRUE(far);
  EXPECT_FALSE(far->supports(OpKey::kMac));
  EXPECT_FALSE(far->supports(OpKey::kParm));
  EXPECT_TRUE(far->supports(OpKey::kFib));
  EXPECT_TRUE(far->supports(OpKey::kPit));
}

TEST(AsGraph, PathCapabilitiesExplicitRoute) {
  const AsGraph graph = hotnets_graph();
  const std::vector<AsNumber> path = {1, 2};
  const auto caps = graph.path_capabilities(path);
  ASSERT_TRUE(caps);
  EXPECT_EQ(*caps, full_capability_set());

  EXPECT_FALSE(graph.path_capabilities({}));
  const std::vector<AsNumber> ghost = {1, 77};
  EXPECT_FALSE(graph.path_capabilities(ghost));
}

TEST(AsGraph, LinkValidation) {
  AsGraph graph;
  graph.add_as(1, full_capability_set());
  EXPECT_FALSE(graph.add_link(1, 2)) << "unknown AS";
  EXPECT_FALSE(graph.add_link(1, 1)) << "self loop";
  graph.add_as(2, full_capability_set());
  EXPECT_TRUE(graph.add_link(1, 2));
  EXPECT_TRUE(graph.add_link(1, 2)) << "idempotent re-add";
}

}  // namespace
}  // namespace dip::bootstrap
