#include <gtest/gtest.h>

#include "dip/bytes/bitfield.hpp"
#include "dip/bytes/cursor.hpp"
#include "dip/bytes/hex.hpp"
#include "dip/bytes/packet.hpp"
#include "dip/crypto/random.hpp"

namespace dip::bytes {
namespace {

// ---------- cursor ----------

TEST(Cursor, ReadWriteRoundTripAllWidths) {
  std::array<std::uint8_t, 15> buf{};
  Writer w(buf);
  ASSERT_TRUE(w.u8(0xAB));
  ASSERT_TRUE(w.u16(0xCDEF));
  ASSERT_TRUE(w.u32(0x01234567));
  ASSERT_TRUE(w.u64(0x89ABCDEF01234567ULL));
  EXPECT_EQ(w.remaining(), 0u);

  Reader r(buf);
  EXPECT_EQ(r.u8().value(), 0xAB);
  EXPECT_EQ(r.u16().value(), 0xCDEF);
  EXPECT_EQ(r.u32().value(), 0x01234567u);
  EXPECT_EQ(r.u64().value(), 0x89ABCDEF01234567ULL);
  EXPECT_TRUE(r.exhausted());
}

TEST(Cursor, BigEndianLayout) {
  std::array<std::uint8_t, 4> buf{};
  Writer w(buf);
  ASSERT_TRUE(w.u32(0x11223344));
  EXPECT_EQ(buf[0], 0x11);
  EXPECT_EQ(buf[3], 0x44);
}

TEST(Cursor, ReaderTruncation) {
  std::array<std::uint8_t, 3> buf{};
  Reader r(buf);
  EXPECT_TRUE(r.u16());
  const auto v = r.u16();
  ASSERT_FALSE(v);
  EXPECT_EQ(v.error(), Error::kTruncated);
  // The failed read must not consume anything.
  EXPECT_EQ(r.remaining(), 1u);
  EXPECT_TRUE(r.u8());
}

TEST(Cursor, WriterOverflow) {
  std::array<std::uint8_t, 2> buf{};
  Writer w(buf);
  const auto st = w.u32(1);
  ASSERT_FALSE(st);
  EXPECT_EQ(st.error(), Error::kOverflow);
  EXPECT_EQ(w.position(), 0u);
}

TEST(Cursor, BorrowedBytesAlias) {
  std::array<std::uint8_t, 5> buf = {1, 2, 3, 4, 5};
  Reader r(buf);
  const auto s = r.bytes(3);
  ASSERT_TRUE(s);
  EXPECT_EQ(s->data(), buf.data());
  EXPECT_EQ(r.remaining(), 2u);
}

TEST(Cursor, SkipAndReadInto) {
  std::array<std::uint8_t, 6> buf = {9, 9, 1, 2, 3, 4};
  Reader r(buf);
  ASSERT_TRUE(r.skip(2));
  std::array<std::uint8_t, 4> dst{};
  ASSERT_TRUE(r.read_into(dst));
  EXPECT_EQ(dst[0], 1);
  EXPECT_EQ(dst[3], 4);
}

// ---------- bitfield ----------

TEST(BitField, ByteAlignedExtractInject) {
  std::array<std::uint8_t, 8> block = {0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88};
  std::array<std::uint8_t, 2> out{};
  ASSERT_TRUE(extract_bits(block, {16, 16}, out));
  EXPECT_EQ(out[0], 0x33);
  EXPECT_EQ(out[1], 0x44);

  const std::array<std::uint8_t, 2> field = {0xAA, 0xBB};
  ASSERT_TRUE(inject_bits(block, {16, 16}, field));
  EXPECT_EQ(block[2], 0xAA);
  EXPECT_EQ(block[3], 0xBB);
  EXPECT_EQ(block[1], 0x22);  // neighbors untouched
  EXPECT_EQ(block[4], 0x55);
}

TEST(BitField, UnalignedExtract) {
  // block = 0b10110110 0b01000000 ; bits [3,7) = 1011 0110 -> take offset 3 len 4 = 1011?
  // bits: b0=1 b1=0 b2=1 b3=1 b4=0 b5=1 b6=1 b7=0; [3,7) = 1,0,1,1 -> 0xB0 left-justified.
  const std::array<std::uint8_t, 2> block = {0xB6, 0x40};
  std::array<std::uint8_t, 1> out{};
  ASSERT_TRUE(extract_bits(block, {3, 4}, out));
  EXPECT_EQ(out[0], 0xB0);
}

TEST(BitField, UintRoundTrip) {
  std::array<std::uint8_t, 4> block{};
  ASSERT_TRUE(inject_uint(block, {5, 11}, 0x5A5));
  const auto v = extract_uint(block, {5, 11});
  ASSERT_TRUE(v);
  EXPECT_EQ(*v, 0x5A5u);
  // Outside the range stays zero.
  EXPECT_EQ(extract_uint(block, {0, 5}).value(), 0u);
  EXPECT_EQ(extract_uint(block, {16, 16}).value(), 0u);
}

TEST(BitField, OutOfRangeRejected) {
  std::array<std::uint8_t, 4> block{};
  std::array<std::uint8_t, 8> out{};
  EXPECT_FALSE(extract_bits(block, {24, 16}, out));
  EXPECT_FALSE(extract_bits(block, {0, 0}, out));  // zero-length invalid
  EXPECT_FALSE(inject_uint(block, {30, 4}, 1));
  EXPECT_FALSE(extract_uint(block, {0, 65}));
}

struct BitRangeCase {
  std::uint32_t offset;
  std::uint32_t length;
};

class BitFieldProperty : public ::testing::TestWithParam<BitRangeCase> {};

// Property: inject(extract(x)) is the identity, and extract(inject(v)) == v,
// for aligned and unaligned ranges alike.
TEST_P(BitFieldProperty, ExtractInjectInverse) {
  const auto [offset, length] = GetParam();
  crypto::Xoshiro256 rng(offset * 131 + length);
  std::vector<std::uint8_t> block(32);
  for (auto& b : block) b = static_cast<std::uint8_t>(rng.next());

  const BitRange range{offset, length};
  ASSERT_TRUE(fits(range, block.size()));

  const auto original = block;
  auto field = extract_bits_vec(block, range);
  ASSERT_TRUE(field);
  ASSERT_TRUE(inject_bits(block, range, *field));
  EXPECT_EQ(block, original) << "inject(extract) must be identity";

  // Now inject fresh random data and read it back.
  std::vector<std::uint8_t> fresh(range.byte_length());
  for (auto& b : fresh) b = static_cast<std::uint8_t>(rng.next());
  // Mask trailing bits beyond length in the last byte (they are not stored).
  if (length % 8 != 0) {
    fresh.back() &= static_cast<std::uint8_t>(0xff << (8 - (length % 8)));
  }
  ASSERT_TRUE(inject_bits(block, range, fresh));
  const auto back = extract_bits_vec(block, range);
  ASSERT_TRUE(back);
  EXPECT_EQ(*back, fresh);

  // Bits outside the range must be untouched.
  for (std::uint32_t bit = 0; bit < block.size() * 8; ++bit) {
    if (bit >= offset && bit < offset + length) continue;
    const bool was = (original[bit / 8] >> (7 - bit % 8)) & 1;
    const bool is = (block[bit / 8] >> (7 - bit % 8)) & 1;
    EXPECT_EQ(was, is) << "bit " << bit << " changed outside range";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, BitFieldProperty,
    ::testing::Values(BitRangeCase{0, 32}, BitRangeCase{0, 128}, BitRangeCase{8, 8},
                      BitRangeCase{3, 4}, BitRangeCase{1, 1}, BitRangeCase{7, 9},
                      BitRangeCase{13, 113}, BitRangeCase{120, 136},
                      BitRangeCase{255, 1}, BitRangeCase{100, 156}));

// ---------- packet ----------

TEST(Packet, PushPopFront) {
  const std::array<std::uint8_t, 4> content = {1, 2, 3, 4};
  Packet p{std::span<const std::uint8_t>(content)};
  EXPECT_EQ(p.size(), 4u);

  auto front = p.push_front(2);
  front[0] = 0xAA;
  front[1] = 0xBB;
  EXPECT_EQ(p.size(), 6u);
  EXPECT_EQ(p.data()[0], 0xAA);
  EXPECT_EQ(p.data()[2], 1);

  ASSERT_TRUE(p.pop_front(2));
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(p.data()[0], 1);
}

TEST(Packet, HeadroomGrowsWhenExceeded) {
  Packet p(4, /*headroom=*/2);
  p.data()[0] = 7;
  (void)p.push_front(100);  // exceeds the 2-byte headroom
  EXPECT_EQ(p.size(), 104u);
  EXPECT_EQ(p.data()[100], 7);
}

TEST(Packet, PushPopBack) {
  Packet p(2);
  auto tail = p.push_back(3);
  tail[2] = 9;
  EXPECT_EQ(p.size(), 5u);
  EXPECT_EQ(p.data()[4], 9);
  ASSERT_TRUE(p.pop_back(4));
  EXPECT_EQ(p.size(), 1u);
  EXPECT_FALSE(p.pop_back(2));
}

TEST(Packet, EqualityIsContentBased) {
  const std::array<std::uint8_t, 3> content = {1, 2, 3};
  Packet a{std::span<const std::uint8_t>(content)};
  Packet b{std::span<const std::uint8_t>(content), /*headroom=*/7};
  EXPECT_EQ(a, b);
  b.data()[0] = 9;
  EXPECT_FALSE(a == b);
}

// ---------- hex ----------

TEST(Hex, RoundTrip) {
  const std::array<std::uint8_t, 4> data = {0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_EQ(to_hex(data), "deadbeef");
  const auto back = from_hex("deadbeef");
  ASSERT_TRUE(back);
  EXPECT_TRUE(std::equal(back->begin(), back->end(), data.begin()));
}

TEST(Hex, RejectsBadInput) {
  EXPECT_FALSE(from_hex("abc"));    // odd length
  EXPECT_FALSE(from_hex("zz"));     // bad digit
  EXPECT_TRUE(from_hex(""));        // empty ok
}

TEST(Hex, DumpShape) {
  std::vector<std::uint8_t> data(20, 0x41);  // 'A'
  const std::string dump = hex_dump(data);
  EXPECT_NE(dump.find("000000"), std::string::npos);
  EXPECT_NE(dump.find("|AAAAAAAAAAAAAAAA|"), std::string::npos);
  EXPECT_NE(dump.find("000010"), std::string::npos);
}

// ---------- expected ----------

TEST(Expected, ValueAndError) {
  Result<int> ok = 42;
  EXPECT_TRUE(ok);
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.value_or(0), 42);

  Result<int> bad = Err(Error::kMalformed);
  EXPECT_FALSE(bad);
  EXPECT_EQ(bad.error(), Error::kMalformed);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(Expected, VoidSpecialization) {
  Status ok;
  EXPECT_TRUE(ok);
  Status bad = Unexpected{Error::kChecksum};
  EXPECT_FALSE(bad);
  EXPECT_EQ(bad.error(), Error::kChecksum);
}

TEST(Expected, ErrorNames) {
  EXPECT_STREQ(to_string(Error::kTruncated), "truncated");
  EXPECT_STREQ(to_string(Error::kChecksum), "checksum");
}

}  // namespace
}  // namespace dip::bytes
