// Legacy interop: native IPv4/IPv6 codecs (the paper's baselines), §2.4
// border-router strip/add, and the incremental-deployment tunnel.
#include <gtest/gtest.h>

#include "dip/core/builder.hpp"
#include "dip/legacy/border.hpp"
#include "dip/legacy/ipv4.hpp"
#include "dip/legacy/ipv6.hpp"
#include "dip/legacy/tunnel.hpp"

namespace dip::legacy {
namespace {

// ---------- IPv4 ----------

Ipv4Header sample_v4() {
  Ipv4Header h;
  h.ttl = 17;
  h.protocol = 17;
  h.total_length = 48;
  h.src = fib::parse_ipv4("10.0.0.1").value();
  h.dst = fib::parse_ipv4("192.0.2.9").value();
  return h;
}

TEST(Ipv4, Table2HeaderIs20Bytes) {
  EXPECT_EQ(Ipv4Header::kWireSize, 20u);
}

TEST(Ipv4, SerializeParseRoundTrip) {
  const Ipv4Header h = sample_v4();
  std::array<std::uint8_t, 20> wire{};
  ASSERT_TRUE(h.serialize(wire));

  const auto back = Ipv4Header::parse(wire);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->ttl, 17);
  EXPECT_EQ(back->protocol, 17);
  EXPECT_EQ(back->total_length, 48);
  EXPECT_EQ(back->src, h.src);
  EXPECT_EQ(back->dst, h.dst);
}

TEST(Ipv4, ChecksumValidatedOnParse) {
  std::array<std::uint8_t, 20> wire{};
  ASSERT_TRUE(sample_v4().serialize(wire));
  wire[15] ^= 1;  // corrupt a source byte
  const auto back = Ipv4Header::parse(wire);
  ASSERT_FALSE(back);
  EXPECT_EQ(back.error(), bytes::Error::kChecksum);
}

TEST(Ipv4, InternetChecksumKnownAnswer) {
  // Classic RFC 1071 example bytes.
  const std::array<std::uint8_t, 8> data = {0x00, 0x01, 0xf2, 0x03,
                                            0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0xddf2 & 0xffff));
}

TEST(Ipv4Forwarder, ForwardsAndPatchesTtlIncrementally) {
  Ipv4Forwarder fwd(fib::make_lpm<32>(fib::LpmEngine::kPatricia));
  fwd.table().insert({fib::parse_ipv4("192.0.2.0").value(), 24}, 6);

  std::vector<std::uint8_t> packet(20 + 8);
  ASSERT_TRUE(sample_v4().serialize(packet));

  const auto decision = fwd.forward(packet);
  EXPECT_EQ(decision.status, ForwardStatus::kForwarded);
  EXPECT_EQ(decision.next_hop, 6u);
  EXPECT_EQ(packet[8], 16) << "TTL decremented";
  // Incremental checksum update must leave a valid header.
  EXPECT_TRUE(Ipv4Header::parse(std::span<const std::uint8_t>(packet).subspan(0, 20)));
}

TEST(Ipv4Forwarder, TtlExpiryAndNoRoute) {
  Ipv4Forwarder fwd(fib::make_lpm<32>(fib::LpmEngine::kPatricia));

  Ipv4Header h = sample_v4();
  h.ttl = 1;
  std::vector<std::uint8_t> packet(20);
  ASSERT_TRUE(h.serialize(packet));
  EXPECT_EQ(fwd.forward(packet).status, ForwardStatus::kTtlExpired);

  std::vector<std::uint8_t> packet2(20);
  ASSERT_TRUE(sample_v4().serialize(packet2));
  EXPECT_EQ(fwd.forward(packet2).status, ForwardStatus::kNoRoute);

  std::vector<std::uint8_t> garbage = {1, 2, 3};
  EXPECT_EQ(fwd.forward(garbage).status, ForwardStatus::kBadPacket);
}

// ---------- IPv6 ----------

Ipv6Header sample_v6() {
  Ipv6Header h;
  h.hop_limit = 9;
  h.next_header = 6;
  h.payload_length = 100;
  h.flow_label = 0xABCDE;
  h.src = fib::parse_ipv6("2001:db8::1").value();
  h.dst = fib::parse_ipv6("2001:db8:ffff::2").value();
  return h;
}

TEST(Ipv6, Table2HeaderIs40Bytes) {
  EXPECT_EQ(Ipv6Header::kWireSize, 40u);
}

TEST(Ipv6, SerializeParseRoundTrip) {
  std::array<std::uint8_t, 40> wire{};
  ASSERT_TRUE(sample_v6().serialize(wire));
  EXPECT_EQ(wire[0] >> 4, 6);

  const auto back = Ipv6Header::parse(wire);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->hop_limit, 9);
  EXPECT_EQ(back->next_header, 6);
  EXPECT_EQ(back->payload_length, 100);
  EXPECT_EQ(back->flow_label, 0xABCDEu);
  EXPECT_EQ(back->src, sample_v6().src);
  EXPECT_EQ(back->dst, sample_v6().dst);
}

TEST(Ipv6Forwarder, ForwardsByLpm) {
  Ipv6Forwarder fwd(fib::make_lpm<128>(fib::LpmEngine::kPatricia));
  fwd.table().insert({fib::parse_ipv6("2001:db8:ffff::").value(), 48}, 3);

  std::vector<std::uint8_t> packet(40);
  ASSERT_TRUE(sample_v6().serialize(packet));
  const auto decision = fwd.forward(packet);
  EXPECT_EQ(decision.status, ForwardStatus::kForwarded);
  EXPECT_EQ(decision.next_hop, 3u);
  EXPECT_EQ(packet[7], 8) << "hop limit decremented";
}

// ---------- border router (§2.4) ----------

TEST(Border, WrapIpv6MatchesNativeOffsets) {
  std::array<std::uint8_t, 40> v6{};
  ASSERT_TRUE(sample_v6().serialize(v6));
  const auto wrapped = wrap_ipv6(v6);
  ASSERT_TRUE(wrapped);
  ASSERT_EQ(wrapped->fns.size(), 2u);
  EXPECT_EQ(wrapped->fns[0].field_loc, 24 * 8);
  EXPECT_EQ(wrapped->fns[0].key(), core::OpKey::kMatch128);
  EXPECT_EQ(wrapped->fns[1].field_loc, 8 * 8);
  EXPECT_EQ(wrapped->locations.size(), 40u);
  // The destination extracted through the FN equals the native field.
  const auto dst = bytes::extract_bits_vec(wrapped->locations,
                                           wrapped->fns[0].range());
  ASSERT_TRUE(dst.has_value());
  EXPECT_TRUE(std::equal(dst->begin(), dst->end(), sample_v6().dst.bytes.begin()));
}

TEST(Border, StripAddRoundTripIpv6) {
  // legacy -> DIP (inbound border) -> legacy (outbound border) must be the
  // identity on the legacy bytes.
  std::vector<std::uint8_t> legacy_packet(40 + 16, 0x5A);
  ASSERT_TRUE(sample_v6().serialize(legacy_packet));

  const auto dip = add_from_legacy(legacy_packet);
  ASSERT_TRUE(dip);
  EXPECT_GT(dip->size(), legacy_packet.size()) << "DIP adds basic header + triples";

  const auto back = strip_to_legacy(*dip);
  ASSERT_TRUE(back);
  EXPECT_EQ(*back, legacy_packet);
}

TEST(Border, StripAddRoundTripIpv4) {
  std::vector<std::uint8_t> legacy_packet(20 + 5, 0x77);
  ASSERT_TRUE(sample_v4().serialize(legacy_packet));
  const auto dip = add_from_legacy(legacy_packet);
  ASSERT_TRUE(dip);
  const auto back = strip_to_legacy(*dip);
  ASSERT_TRUE(back);
  EXPECT_EQ(*back, legacy_packet);
}

TEST(Border, RejectsNonLegacyLocations) {
  // A DIP packet whose locations are not a legacy header must not be
  // stripped into the legacy domain.
  core::HeaderBuilder b;
  const std::array<std::uint8_t, 4> junk = {0x00, 1, 2, 3};  // version nibble 0
  b.add_router_fn(core::OpKey::kSource, junk);
  const auto wire = b.build()->serialize();
  const auto out = strip_to_legacy(wire);
  ASSERT_FALSE(out);
  EXPECT_EQ(out.error(), bytes::Error::kUnsupported);
}

TEST(Border, RejectsUnknownLegacyVersion) {
  const std::vector<std::uint8_t> bogus = {0x50, 0, 0, 0};
  EXPECT_FALSE(add_from_legacy(bogus));
  EXPECT_FALSE(add_from_legacy({}));
}

// ---------- tunnel (§2.4 incremental deployment) ----------

TEST(Tunnel, EncapDecapRoundTrip) {
  const auto a = fib::parse_ipv6("2001:db8::a").value();
  const auto b = fib::parse_ipv6("2001:db8::b").value();
  Ipv6Tunnel left(a, b);
  Ipv6Tunnel right(b, a);

  const std::vector<std::uint8_t> inner = {9, 8, 7, 6, 5};
  const auto encapsulated = left.encapsulate(inner);
  EXPECT_EQ(encapsulated.size(), 40u + inner.size());
  EXPECT_EQ(encapsulated[6], Ipv6Header::kNextHeaderDip);

  const auto decapsulated = right.decapsulate(encapsulated);
  ASSERT_TRUE(decapsulated);
  EXPECT_EQ(*decapsulated, inner);
}

TEST(Tunnel, RejectsWrongDestinationOrProtocol) {
  const auto a = fib::parse_ipv6("::a").value();
  const auto b = fib::parse_ipv6("::b").value();
  const auto c = fib::parse_ipv6("::c").value();
  Ipv6Tunnel left(a, b);
  Ipv6Tunnel wrong(c, a);

  const std::vector<std::uint8_t> inner3 = {1, 2, 3};
  const auto encapsulated = left.encapsulate(inner3);
  EXPECT_FALSE(wrong.decapsulate(encapsulated)) << "not addressed to c";

  // A plain (non-DIP) IPv6 packet must be refused.
  std::array<std::uint8_t, 40> plain{};
  Ipv6Header h;
  h.dst = b;
  ASSERT_TRUE(h.serialize(plain));
  Ipv6Tunnel right(b, a);
  const auto out = right.decapsulate(plain);
  ASSERT_FALSE(out);
  EXPECT_EQ(out.error(), bytes::Error::kUnsupported);
}

TEST(Tunnel, LegacyRoutersForwardTheOuterHeader) {
  // The encapsulated packet is routable by a plain IPv6 forwarder — that is
  // the whole point of the tunnel.
  const auto a = fib::parse_ipv6("2001:db8::a").value();
  const auto b = fib::parse_ipv6("2001:db8:b::b").value();
  Ipv6Tunnel left(a, b);
  const std::vector<std::uint8_t> inner4 = {1, 2, 3, 4};
  auto packet = left.encapsulate(inner4);

  Ipv6Forwarder fwd(fib::make_lpm<128>(fib::LpmEngine::kPatricia));
  fwd.table().insert({fib::parse_ipv6("2001:db8:b::").value(), 48}, 12);
  const auto decision = fwd.forward(packet);
  EXPECT_EQ(decision.status, ForwardStatus::kForwarded);
  EXPECT_EQ(decision.next_hop, 12u);
}

}  // namespace
}  // namespace dip::legacy
