// PISA model: parser state machine on real DIP bytes, match-action tables,
// pipeline cost accounting, Tofino constraint validation, the
// Figure-2-shaped analytical cost ordering, and the stage-budget compiler
// (golden cost reports for the Table-1 fit matrix + a property suite over
// generated compositions; see docs/PISA.md).
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "dip/core/ip.hpp"
#include "dip/dtn/custody.hpp"
#include "dip/ndn/ndn.hpp"
#include "dip/opt/opt.hpp"
#include "dip/pisa/compiler.hpp"
#include "dip/pisa/dip_program.hpp"
#include "dip/pisa/pipeline.hpp"
#include "dip/pisa/table1.hpp"
#include "proptest/proptest.hpp"

namespace dip::pisa {
namespace {

using core::FnTriple;
using core::OpKey;

// ---------- parser ----------

TEST(Parser, ExtractsDipBasicHeaderAndTriples) {
  const auto header = core::make_dip32_header(fib::ipv4_from_u32(0xC0000201),
                                              fib::ipv4_from_u32(0x0A000001));
  ASSERT_TRUE(header.has_value());
  const auto wire = header->serialize();

  const Parser parser = build_dip_parser(/*fn_count=*/2, /*locations_bytes=*/8);
  const auto outcome = parser.parse(wire);
  ASSERT_TRUE(outcome);

  const Phv& phv = outcome->phv;
  EXPECT_EQ(phv.get(phv_layout::kFnNum), 2u);
  EXPECT_EQ(phv.get(phv_layout::kHopLimit), 64u);
  // First triple: loc 0, len 32 -> container holds 0x00000020.
  EXPECT_EQ(phv.get(phv_layout::kFnBase), 0x00000020u);
  EXPECT_EQ(phv.get(phv_layout::kFnBase + 1), 1u);  // key 1 = F_32_match
  // Locations: destination address in the first loc container.
  EXPECT_EQ(phv.get(phv_layout::kLocBase), 0xC0000201u);
  EXPECT_EQ(phv.get(phv_layout::kLocBase + 1), 0x0A000001u);
  EXPECT_EQ(outcome->consumed, wire.size());
}

TEST(Parser, RejectsFnNumBeyondLadder) {
  // A 3-FN packet against a 2-deep ladder: the static if-else cannot handle
  // it — exactly the §4.1 compromise made observable.
  core::HeaderBuilder b;
  std::array<std::uint8_t, 4> field{};
  const auto loc = b.add_location(field);
  for (int i = 0; i < 3; ++i) b.add_fn(FnTriple::router(loc, 32, OpKey::kSource));
  const auto wire = b.build()->serialize();

  const Parser parser = build_dip_parser(2, 4);
  EXPECT_FALSE(parser.parse(wire));
}

TEST(Parser, TruncatedPacketRejected) {
  const Parser parser = build_dip_parser(2, 8);
  const std::array<std::uint8_t, 4> stub = {0, 2, 64, 0};
  EXPECT_FALSE(parser.parse(stub));
}

TEST(Parser, LoopGuardStopsRunawayMachines) {
  Parser parser;
  ParserState s;
  s.advance = 0;
  s.default_next = 0;  // self-loop
  parser.add_state(std::move(s));
  const std::array<std::uint8_t, 8> data{};
  const auto outcome = parser.parse(data);
  ASSERT_FALSE(outcome);
  EXPECT_EQ(outcome.error(), bytes::Error::kOverflow);
}

// ---------- tables ----------

TEST(MatchTable, ExactMatch) {
  MatchTable table(MatchKind::kExact, 0);
  table.add_entry({42, 0, 0, {ActionKind::kSetContainer, 1, 0, 99}});
  table.set_default_action({ActionKind::kDrop, 0, 0, 0});

  Phv phv;
  phv.set(0, 42);
  const Action hit = table.lookup(phv);
  EXPECT_EQ(hit.kind, ActionKind::kSetContainer);

  phv.set(0, 43);
  EXPECT_EQ(table.lookup(phv).kind, ActionKind::kDrop);
}

TEST(MatchTable, LpmPrefersLongerPrefix) {
  MatchTable table(MatchKind::kLpm, 0);
  table.add_entry({0x0A000000, 8, 0, {ActionKind::kSetContainer, 1, 0, 1}});
  table.add_entry({0x0A010000, 16, 0, {ActionKind::kSetContainer, 1, 0, 2}});

  Phv phv;
  phv.set(0, 0x0A010105);
  EXPECT_EQ(table.lookup(phv).imm, 2u);
  phv.set(0, 0x0A020105);
  EXPECT_EQ(table.lookup(phv).imm, 1u);
  phv.set(0, 0x0B000000);
  EXPECT_EQ(table.lookup(phv).kind, ActionKind::kNoop);  // default default
}

TEST(MatchTable, TernaryPriority) {
  MatchTable table(MatchKind::kTernary, 0);
  table.add_entry({0x1000, 0xF000, 1, {ActionKind::kSetContainer, 1, 0, 1}});
  table.add_entry({0x1200, 0xFF00, 5, {ActionKind::kSetContainer, 1, 0, 2}});

  Phv phv;
  phv.set(0, 0x1234);
  EXPECT_EQ(table.lookup(phv).imm, 2u) << "higher priority wins";
  phv.set(0, 0x1934);
  EXPECT_EQ(table.lookup(phv).imm, 1u);
}

TEST(Actions, AluSemantics) {
  Phv phv;
  const CostModel m;
  apply_action({ActionKind::kSetContainer, 3, 0, 7}, phv, m);
  EXPECT_EQ(phv.get(3), 7u);
  apply_action({ActionKind::kAdd, 3, 0, 5}, phv, m);
  EXPECT_EQ(phv.get(3), 12u);
  apply_action({ActionKind::kXor, 3, 0, 0xF}, phv, m);
  EXPECT_EQ(phv.get(3), 3u);
  phv.set(4, 0xFF);
  apply_action({ActionKind::kXorReg, 3, 4, 0}, phv, m);
  EXPECT_EQ(phv.get(3), 0xFCu);
  apply_action({ActionKind::kCopy, 5, 3, 0}, phv, m);
  EXPECT_EQ(phv.get(5), 0xFCu);
  apply_action({ActionKind::kDrop, 0, 0, 0}, phv, m);
  EXPECT_EQ(phv.get(phv_layout::kDropFlag), 1u);
}

// ---------- pipeline ----------

TEST(Pipeline, StageCostIsMaxOfTables) {
  CostModel model;
  Pipeline pipe(model);
  Stage stage;
  stage.tables.emplace_back(MatchKind::kExact, 0);   // cost 1
  stage.tables.emplace_back(MatchKind::kLpm, 1);     // cost 2
  ASSERT_TRUE(pipe.add_stage(std::move(stage)));

  Phv phv;
  const auto run = pipe.run(phv);
  EXPECT_EQ(run.cycles, model.pipeline_transit + model.table_lpm);
}

TEST(Pipeline, DropShortCircuitsRemainingStages) {
  Pipeline pipe;
  Stage s1;
  MatchTable t(MatchKind::kExact, 0);
  t.set_default_action({ActionKind::kDrop, 0, 0, 0});
  s1.tables.push_back(std::move(t));
  ASSERT_TRUE(pipe.add_stage(std::move(s1)));

  Stage s2;
  MatchTable t2(MatchKind::kExact, 0);
  t2.set_default_action({ActionKind::kSetContainer, 9, 0, 1});
  s2.tables.push_back(std::move(t2));
  ASSERT_TRUE(pipe.add_stage(std::move(s2)));

  Phv phv;
  const auto run = pipe.run(phv);
  EXPECT_TRUE(run.dropped);
  EXPECT_EQ(phv.get(9), 0u) << "stage 2 must not run after drop";
}

TEST(Pipeline, ResubmitsCostFullTransits) {
  CostModel model;
  Pipeline pipe(model);
  Phv phv;
  const auto once = pipe.run(phv);
  const auto twice = pipe.run_with_resubmits(phv, 1);
  ASSERT_TRUE(twice);
  EXPECT_EQ(twice->cycles, 2 * once.cycles + model.resubmit_penalty);
  EXPECT_EQ(twice->resubmissions, 1u);
  EXPECT_FALSE(pipe.run_with_resubmits(phv, Pipeline::kMaxResubmits + 1));
}

TEST(Pipeline, StageBudgetEnforced) {
  Pipeline pipe;
  for (std::size_t i = 0; i < Pipeline::kMaxStages; ++i) {
    ASSERT_TRUE(pipe.add_stage(Stage{}));
  }
  EXPECT_FALSE(pipe.add_stage(Stage{}));
}

// ---------- Tofino constraints ----------

TEST(Constraints, ByteAlignedSlicesRequired) {
  const FnTriple odd = FnTriple::router(3, 13, OpKey::kSource);
  const auto st = validate_program({&odd, 1}, 16);
  ASSERT_FALSE(st);
  EXPECT_EQ(st.error(), bytes::Error::kMalformed);
}

TEST(Constraints, LadderDepthEnforced) {
  std::vector<FnTriple> fns(9, FnTriple::router(0, 32, OpKey::kSource));
  const auto st = validate_program(fns, 16);
  ASSERT_FALSE(st);
  EXPECT_EQ(st.error(), bytes::Error::kUnsupported);
}

TEST(Constraints, PaperCompositionsAllFit) {
  // Every §3 composition must satisfy the prototype's constraints.
  const auto dip32 = core::make_dip32_header(fib::ipv4_from_u32(1), fib::ipv4_from_u32(2));
  EXPECT_TRUE(validate_program(dip32->fns, dip32->locations.size()));

  const auto ndn = ndn::make_interest_header32(7);
  EXPECT_TRUE(validate_program(ndn->fns, ndn->locations.size()));

  const auto fns = opt::opt_fn_triples();
  EXPECT_TRUE(validate_program(fns, opt::kBlockBytes));
}

// ---------- Figure-2-shaped cost ordering ----------

struct ProtocolCost {
  const char* name;
  Cycles cycles;
};

SwitchCostBreakdown cost_of(std::span<const FnTriple> fns, std::size_t loc_bytes,
                            bool parallel = false, bool aes = false) {
  return estimate_protocol_cycles(fns, loc_bytes, default_cost_model(), parallel, aes);
}

TEST(Figure2Shape, OrderingMatchesPaper) {
  const auto dip32 = core::make_dip32_header(fib::ipv4_from_u32(1), fib::ipv4_from_u32(2));
  const auto dip128 = core::make_dip128_header(fib::parse_ipv6("::1").value(),
                                               fib::parse_ipv6("::2").value());
  const auto ndn = ndn::make_interest_header32(7);
  const auto opt_fns = opt::opt_fn_triples();

  const Cycles c32 = cost_of(dip32->fns, dip32->locations.size()).total();
  const Cycles c128 = cost_of(dip128->fns, dip128->locations.size()).total();
  const Cycles cndn = cost_of(ndn->fns, ndn->locations.size()).total();
  const Cycles copt = cost_of(opt_fns, opt::kBlockBytes).total();

  // The Figure 2 shape: IP-style and NDN forwarding are close; OPT is
  // clearly more expensive (MAC-dominated).
  EXPECT_LT(c32, copt);
  EXPECT_LT(c128, copt);
  EXPECT_LT(cndn, copt);
  EXPECT_GT(copt, 2 * cndn) << "MAC dominates: a clear gap, not noise";

  // NDN+OPT ~ OPT + a name lookup.
  std::vector<FnTriple> ndn_opt{FnTriple::router(544, 32, OpKey::kFib)};
  ndn_opt.insert(ndn_opt.end(), opt_fns.begin(), opt_fns.end());
  const Cycles cndnopt = cost_of(ndn_opt, opt::kBlockBytes + 4).total();
  EXPECT_GT(cndnopt, copt);
  EXPECT_LT(cndnopt - copt, copt / 2);
}

TEST(Figure2Shape, AesMacNeedsResubmitAndCostsMore) {
  const auto fns = opt::opt_fn_triples();
  const auto em2 = cost_of(fns, opt::kBlockBytes, false, /*aes=*/false);
  const auto aes = cost_of(fns, opt::kBlockBytes, false, /*aes=*/true);
  EXPECT_EQ(em2.resubmissions, 0u) << "2EM completes in one pass (4.1)";
  EXPECT_EQ(aes.resubmissions, 1u) << "AES resubmits the packet (4.1)";
  EXPECT_GT(aes.total(), em2.total());
}

TEST(Figure2Shape, ParallelFlagReducesCost) {
  const auto fns = opt::opt_fn_triples();
  const auto seq = cost_of(fns, opt::kBlockBytes, /*parallel=*/false);
  const auto par = cost_of(fns, opt::kBlockBytes, /*parallel=*/true);
  EXPECT_LE(par.total(), seq.total());
  EXPECT_LT(par.match, seq.match);
}

TEST(Figure2Shape, HostTaggedFnsCostNothingOnSwitch) {
  const std::vector<FnTriple> with_ver = opt::opt_fn_triples();
  std::vector<FnTriple> without_ver(with_ver.begin(), with_ver.end() - 1);
  const auto a = cost_of(with_ver, opt::kBlockBytes);
  const auto b = cost_of(without_ver, opt::kBlockBytes);
  EXPECT_EQ(a.match, b.match);
  EXPECT_EQ(a.crypto, b.crypto);
}

TEST(FnProfiles, MacScalesWithCoverage) {
  const auto small = fn_switch_profile(FnTriple::router(0, 128, OpKey::kMac));
  const auto large = fn_switch_profile(FnTriple::router(0, 416, OpKey::kMac));
  EXPECT_LT(small.crypto_rounds, large.crypto_rounds);
}

}  // namespace
}  // namespace dip::pisa

// ---------- switch-mode DIP-32 forwarder (differential vs core::Router) ----

#include "dip/netsim/topology.hpp"
#include "dip/pisa/switch_forwarder.hpp"

namespace dip::pisa {
namespace {

TEST(SwitchForwarder, ForwardsByLpm) {
  SwitchForwarder sw;
  sw.add_route({fib::parse_ipv4("10.0.0.0").value(), 8}, 1);
  sw.add_route({fib::parse_ipv4("10.1.0.0").value(), 16}, 2);

  const auto h = core::make_dip32_header(fib::parse_ipv4("10.1.2.3").value(),
                                         fib::parse_ipv4("172.16.0.1").value());
  const auto outcome = sw.forward(h->serialize());
  ASSERT_TRUE(outcome.has_value());
  ASSERT_TRUE(outcome->egress.has_value());
  EXPECT_EQ(*outcome->egress, 2u) << "longest prefix must win on the switch too";
  EXPECT_GT(outcome->cycles, 0u);
}

TEST(SwitchForwarder, DropsWithoutRoute) {
  SwitchForwarder sw;
  sw.add_route({fib::parse_ipv4("10.0.0.0").value(), 8}, 1);
  const auto h = core::make_dip32_header(fib::parse_ipv4("11.0.0.1").value(),
                                         fib::parse_ipv4("172.16.0.1").value());
  const auto outcome = sw.forward(h->serialize());
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->egress.has_value());
}

TEST(SwitchForwarder, RejectsTruncatedPackets) {
  SwitchForwarder sw;
  const std::array<std::uint8_t, 5> stub = {0, 2, 64, 0, 0};
  EXPECT_FALSE(sw.forward(stub));
}

// Differential: software Algorithm-1 router and the PISA program must agree
// on every packet for the DIP-32 composition.
TEST(SwitchForwarder, AgreesWithSoftwareRouter) {
  crypto::Xoshiro256 rng(2024);
  SwitchForwarder sw;
  core::RouterEnv env = netsim::make_basic_env(1);
  const auto registry = netsim::make_default_registry();

  // 50 clustered random routes into both planes.
  for (int i = 0; i < 50; ++i) {
    fib::Ipv4Prefix p{fib::ipv4_from_u32(0x0A000000 | (rng.u32() & 0x00FFFFFF)),
                      static_cast<std::uint8_t>(8 + rng.below(25))};
    p.normalize();
    const auto nh = static_cast<fib::NextHop>(rng.below(64));
    sw.add_route(p, nh);
    env.fib32->insert(p, nh);
  }
  core::Router router(std::move(env), registry.get());

  for (int i = 0; i < 500; ++i) {
    const auto dst = fib::ipv4_from_u32(0x0A000000 | (rng.u32() & 0x00FFFFFF));
    const auto h = core::make_dip32_header(dst, fib::ipv4_from_u32(0xC0A80001));
    auto wire = h->serialize();

    const auto sw_out = sw.forward(wire);
    ASSERT_TRUE(sw_out.has_value());
    const auto rt_out = router.process(wire, 0, 0);

    if (rt_out.action == core::Action::kForward) {
      ASSERT_TRUE(sw_out->egress.has_value()) << "switch dropped, router forwarded";
      EXPECT_EQ(*sw_out->egress, rt_out.egress[0]);
    } else {
      EXPECT_FALSE(sw_out->egress.has_value()) << "switch forwarded, router dropped";
    }
  }
}

TEST(SwitchForwarder, RuntimeRouteInstallationWorks) {
  // FIB updates land in the match table without rebuilding the pipeline —
  // the runtime-programmability story at the table-entry level.
  SwitchForwarder sw;
  const auto h = core::make_dip32_header(fib::parse_ipv4("10.9.9.9").value(),
                                         fib::parse_ipv4("172.16.0.1").value());
  const auto wire = h->serialize();
  EXPECT_FALSE(sw.forward(wire)->egress.has_value());
  sw.add_route({fib::parse_ipv4("10.9.0.0").value(), 16}, 5);
  EXPECT_EQ(sw.forward(wire)->egress.value(), 5u);
  EXPECT_EQ(sw.route_count(), 1u);
}

// ---------- parser: malformed-program and malformed-packet outcomes ----------

TEST(Parser, EmptyParserIsAStateError) {
  const Parser parser;
  const auto outcome = parser.parse(std::vector<std::uint8_t>(8, 0));
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error(), bytes::Error::kState);
}

TEST(Parser, ZeroOrOversizedExtractWidthIsTruncated) {
  // Width 0 and width > 4 both violate the container extract contract, even
  // when the packet has plenty of bytes.
  for (const std::uint8_t width : {std::uint8_t{0}, std::uint8_t{5}}) {
    Parser parser;
    ParserState s;
    s.extracts = {{0, width, phv_layout::kNextHeader}};
    parser.add_state(std::move(s));
    const auto outcome = parser.parse(std::vector<std::uint8_t>(16, 0xAB));
    ASSERT_FALSE(outcome.has_value()) << unsigned{width};
    EXPECT_EQ(outcome.error(), bytes::Error::kTruncated) << unsigned{width};
  }
}

TEST(Parser, AdvancePastPacketEndIsTruncated) {
  Parser parser;
  ParserState s;
  s.advance = 9;
  parser.add_state(std::move(s));
  const auto outcome = parser.parse(std::vector<std::uint8_t>(8, 0));
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error(), bytes::Error::kTruncated);
}

TEST(Parser, TransitionToOutOfRangeStateIsMalformed) {
  // A select whose transition names a state the program never defined: the
  // machine must fail closed, not walk off the state table.
  Parser parser;
  ParserState s;
  s.extracts = {{0, 1, phv_layout::kFnNum}};
  s.advance = 1;
  s.has_select = true;
  s.select = phv_layout::kFnNum;
  s.transitions = {{0x42u, 7}};  // state 7 does not exist
  s.default_next = ParserState::kAccept;
  parser.add_state(std::move(s));

  const auto bad = parser.parse(std::vector<std::uint8_t>{0x42, 0, 0, 0});
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error(), bytes::Error::kMalformed);

  // The same program accepts when the select misses the bad transition.
  const auto good = parser.parse(std::vector<std::uint8_t>{0x01, 0, 0, 0});
  ASSERT_TRUE(good.has_value());
  EXPECT_EQ(good->consumed, 1u);
}

TEST(Parser, DipParserSkipsLadderWhenFnNumIsZero) {
  // FN_Num = 0 takes the ladder-skip transition straight to the locations
  // block (Algorithm 1 line 3: nothing to execute).
  core::DipHeader h;
  h.basic.hop_limit = 64;
  h.locations.assign(8, 0x5A);
  const auto wire = h.serialize();

  const Parser parser = build_dip_parser(/*fn_count=*/2, /*locations_bytes=*/8);
  const auto outcome = parser.parse(wire);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->phv.get(phv_layout::kFnNum), 0u);
  EXPECT_EQ(outcome->phv.get(phv_layout::kLocBase), 0x5A5A5A5Au);
  EXPECT_EQ(outcome->consumed, wire.size());
}

// ---------- constraints: the untested validate_program outcomes ----------

TEST(Constraints, LocationsBeyondPhvBudgetIsOverflow) {
  const std::vector<FnTriple> fns = {FnTriple::router(0, 32, OpKey::kMatch32)};
  const auto status = validate_program(fns, /*locations_bytes=*/129);
  ASSERT_FALSE(status.has_value());
  EXPECT_EQ(status.error(), bytes::Error::kOverflow);
  EXPECT_TRUE(validate_program(fns, 128).has_value());
}

TEST(Constraints, FieldOutsideLocationsBlockIsOutOfRange) {
  // Byte-aligned (passes the slice rule) but addressing bits the locations
  // block does not have.
  const std::vector<FnTriple> fns = {FnTriple::router(32, 32, OpKey::kMatch32)};
  const auto status = validate_program(fns, /*locations_bytes=*/4);
  ASSERT_FALSE(status.has_value());
  EXPECT_EQ(status.error(), bytes::Error::kOutOfRange);
  EXPECT_TRUE(validate_program(fns, 8).has_value());
}

// ---------- tables: replace semantics, default routes, stage overflow ----------

TEST(MatchTable, LpmZeroQualifierIsADefaultRouteEntry) {
  // qualifier 0 => mask 0 => matches every key, beaten by any longer prefix.
  MatchTable table(MatchKind::kLpm, phv_layout::kLocBase);
  table.add_entry({0, 0, 0, {ActionKind::kSetContainer, phv_layout::kEgressPort, 0, 99}});
  table.add_entry({0x0A000000u, 8, 0,
                   {ActionKind::kSetContainer, phv_layout::kEgressPort, 0, 7}});

  Phv phv;
  phv.set(phv_layout::kLocBase, 0xC0A80101u);  // only the default matches
  Cycles cost = apply_action(table.lookup(phv), phv, default_cost_model());
  EXPECT_EQ(phv.get(phv_layout::kEgressPort), 99u);
  EXPECT_GT(cost, 0u);

  phv.set(phv_layout::kLocBase, 0x0A010203u);  // /8 beats the default
  cost = apply_action(table.lookup(phv), phv, default_cost_model());
  EXPECT_EQ(phv.get(phv_layout::kEgressPort), 7u);
}

TEST(MatchTable, ReAddedPrefixReplacesOlderEntry) {
  // Same prefix added twice: the later entry must win (control-plane
  // replace semantics, the documented ">=" in MatchTable::lookup).
  MatchTable table(MatchKind::kLpm, phv_layout::kLocBase);
  table.add_entry({0x0A000000u, 8, 0,
                   {ActionKind::kSetContainer, phv_layout::kEgressPort, 0, 1}});
  table.add_entry({0x0A000000u, 8, 0,
                   {ActionKind::kSetContainer, phv_layout::kEgressPort, 0, 2}});

  Phv phv;
  phv.set(phv_layout::kLocBase, 0x0A0B0C0Du);
  (void)apply_action(table.lookup(phv), phv, default_cost_model());
  EXPECT_EQ(phv.get(phv_layout::kEgressPort), 2u);

  // Ternary tables document the same override for equal priorities.
  MatchTable ternary(MatchKind::kTernary, phv_layout::kLocBase);
  ternary.add_entry({0x0A000000u, 0xFF000000u, 5,
                     {ActionKind::kSetContainer, phv_layout::kEgressPort, 0, 3}});
  ternary.add_entry({0x0A000000u, 0xFF000000u, 5,
                     {ActionKind::kSetContainer, phv_layout::kEgressPort, 0, 4}});
  (void)apply_action(ternary.lookup(phv), phv, default_cost_model());
  EXPECT_EQ(phv.get(phv_layout::kEgressPort), 4u);
}

TEST(Pipeline, StageOverflowRefusedAndMutableStageBounded) {
  Pipeline pipe;
  for (std::size_t i = 0; i < Pipeline::kMaxStages; ++i) {
    EXPECT_TRUE(pipe.add_stage({})) << i;
  }
  EXPECT_FALSE(pipe.add_stage({})) << "stage past the hardware budget accepted";
  EXPECT_EQ(pipe.stage_count(), Pipeline::kMaxStages);
  EXPECT_NE(pipe.mutable_stage(Pipeline::kMaxStages - 1), nullptr);
  EXPECT_EQ(pipe.mutable_stage(Pipeline::kMaxStages), nullptr);
}

TEST(Pipeline, DropShortCircuitsResubmissions) {
  // A packet dropped on the first pass must not be re-injected: the
  // resubmission loop stops and reports zero resubmissions.
  Pipeline pipe;
  Stage stage;
  MatchTable table(MatchKind::kExact, phv_layout::kFnNum);
  table.set_default_action({ActionKind::kDrop});
  stage.tables.push_back(table);
  ASSERT_TRUE(pipe.add_stage(std::move(stage)));

  Phv phv;
  const auto run = pipe.run_with_resubmits(phv, 2);
  ASSERT_TRUE(run.has_value());
  EXPECT_TRUE(run->dropped);
  EXPECT_EQ(run->resubmissions, 0u);

  // And the runaway guard still rejects over-budget resubmit requests.
  Phv phv2;
  const auto over = pipe.run_with_resubmits(phv2, Pipeline::kMaxResubmits + 1);
  ASSERT_FALSE(over.has_value());
  EXPECT_EQ(over.error(), bytes::Error::kOverflow);
}

// ---------- stage-budget compiler: Table-1 goldens ----------

std::filesystem::path pisa_vector_path(const std::string& name) {
  return std::filesystem::path(DIP_VECTORS_DIR) / ("pisa_" + name + ".txt");
}

TEST(StageBudget, GoldenCostReportsForTable1) {
  // The paper's claim in executable form: every §3 composition deploys on
  // the Tofino-like model in a single pass with the 2EM MAC. Each report is
  // pinned byte-identical as a golden vector.
  const bool regen = std::getenv("DIP_REGEN_VECTORS") != nullptr;
  const StageCompiler compiler;
  const auto& compositions = table1_compositions();
  ASSERT_EQ(compositions.size(), 6u);

  for (const auto& comp : compositions) {
    ASSERT_FALSE(comp.fns.empty()) << comp.name << ": composer failed";
    const PlacementReport report = compiler.compile(comp.fns, comp.locations_bytes);
    EXPECT_EQ(report.verdict, FitVerdict::kFit) << comp.name << ": " << report.reason;
    EXPECT_EQ(report.passes.size(), 1u) << comp.name;
    EXPECT_LE(report.stages_used, compiler.model().stages) << comp.name;

    const std::string text = format_report(comp.name, comp.fns, comp.locations_bytes,
                                           report, compiler.model());
    const auto path = pisa_vector_path(comp.name);
    if (regen) {
      std::filesystem::create_directories(path.parent_path());
      std::ofstream out(path, std::ios::trunc);
      out << text;
      continue;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing golden cost report " << path;
    std::stringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(golden.str(), text)
        << path << " drifted from the compiler output; regenerate deliberately "
        << "with DIP_REGEN_VECTORS=1 ./pisa_test";
  }
}

TEST(StageBudget, CustodyCompositionGoldenFitReport) {
  // dip32+custody (docs/DTN.md) postdates Table 1, but the §2.1 claim extends
  // to it: the DTN overlay must deploy on the same Tofino-like model in a
  // single pass, with its cost report pinned like the six §3 goldens.
  const bool regen = std::getenv("DIP_REGEN_VECTORS") != nullptr;

  dtn::CustodyTag tag;
  tag.flags = dtn::kCustodyRequest;
  tag.bundle_id = 0xD7B00001;
  tag.custodian = 42;
  tag.chain_digest = dtn::chain_mix(0, 42);
  dtn::FragInfo frag;
  frag.index = 1;
  frag.total = 3;
  frag.bundle_id = tag.bundle_id;
  const auto header = dtn::make_dip32_custody_header(
      fib::ipv4_from_u32(0x0A400202), fib::ipv4_from_u32(0x0A006301), tag, frag,
      crypto::Block{});
  ASSERT_TRUE(header.has_value());

  const StageCompiler compiler;
  const PlacementReport report =
      compiler.compile(header->fns, header->locations.size());
  EXPECT_EQ(report.verdict, FitVerdict::kFit) << report.reason;
  EXPECT_EQ(report.passes.size(), 1u) << "custody must not recirculate";
  EXPECT_LE(report.stages_used, compiler.model().stages);

  const std::string text = format_report("dip32_custody", header->fns,
                                         header->locations.size(), report,
                                         compiler.model());
  const auto path = pisa_vector_path("dip32_custody");
  if (regen) {
    std::filesystem::create_directories(path.parent_path());
    std::ofstream out(path, std::ios::trunc);
    out << text;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden cost report " << path;
  std::stringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(golden.str(), text)
      << path << " drifted from the compiler output; regenerate deliberately "
      << "with DIP_REGEN_VECTORS=1 ./pisa_test";
}

TEST(StageBudget, EveryModuleTableRowPlaces) {
  // Drift guard on the introspection seam: every FN the router can bind
  // (core::fn_table()) must have a placement story — a single instance over
  // a modest field always fits, router- or host-tagged.
  const StageCompiler compiler;
  for (const core::FnInfo& row : core::fn_table()) {
    const std::vector<FnTriple> router_fn = {FnTriple::router(0, 32, row.key)};
    const auto r = compiler.compile(router_fn, 64);
    EXPECT_EQ(r.verdict, FitVerdict::kFit) << row.notation << ": " << r.reason;

    const std::vector<FnTriple> host_fn = {FnTriple::host(0, 32, row.key)};
    const auto h = compiler.compile(host_fn, 64);
    EXPECT_EQ(h.verdict, FitVerdict::kFit) << row.notation << "*: " << h.reason;
    EXPECT_EQ(h.stages_used, 0u) << row.notation << "*: host FNs use no stages";
  }
}

TEST(StageBudget, AesMacDegradesWhere2EmFits) {
  // §4.1's MAC choice as verdicts: the same OPT composition fits with 2EM
  // but degrades with AES (resubmission + recirculation), at strictly
  // higher cycle cost.
  const StageCompiler compiler;
  const auto& opt = table1_compositions()[3];
  ASSERT_EQ(opt.name, "opt");

  const auto em2 = compiler.compile(opt.fns, opt.locations_bytes);
  ASSERT_EQ(em2.verdict, FitVerdict::kFit);

  CompileOptions aes;
  aes.aes_mac = true;
  const auto degraded = compiler.compile(opt.fns, opt.locations_bytes, aes);
  ASSERT_EQ(degraded.verdict, FitVerdict::kDegrade) << degraded.reason;
  EXPECT_EQ(degraded.resubmissions, 1u);
  EXPECT_GT(degraded.passes.size(), 1u);
  EXPECT_GT(degraded.cycles, em2.cycles);

  // Recirculation splits must themselves deploy: each pass, compiled alone
  // under the same options, stays on the hardware.
  for (const PassPlan& pass : degraded.passes) {
    const auto sub = compiler.compile(pass.fns, opt.locations_bytes, aes);
    EXPECT_TRUE(sub.fits()) << sub.reason;
    EXPECT_EQ(sub.passes.size(), 1u);
  }
}

TEST(StageBudget, UnfitReasonsAreStructural) {
  const StageCompiler compiler;

  // Sub-byte slice: the preset-slice compromise.
  const std::vector<FnTriple> subbyte = {FnTriple::router(0, 3, OpKey::kMark)};
  auto r = compiler.compile(subbyte, 4);
  EXPECT_EQ(r.verdict, FitVerdict::kUnfit);
  EXPECT_NE(r.reason.find("byte-aligned"), std::string::npos) << r.reason;

  // Field outside the locations block.
  const std::vector<FnTriple> outside = {FnTriple::router(32, 32, OpKey::kMatch32)};
  r = compiler.compile(outside, 4);
  EXPECT_EQ(r.verdict, FitVerdict::kUnfit);
  EXPECT_NE(r.reason.find("outside"), std::string::npos) << r.reason;

  // Locations block past the preset budget.
  const std::vector<FnTriple> plain = {FnTriple::router(0, 32, OpKey::kMatch32)};
  r = compiler.compile(plain, compiler.model().max_locations_bytes + 1);
  EXPECT_EQ(r.verdict, FitVerdict::kUnfit);

  // Unknown operation key (not in the module table).
  const std::vector<FnTriple> unknown = {{0, 32, 500}};
  r = compiler.compile(unknown, 4);
  EXPECT_EQ(r.verdict, FitVerdict::kUnfit);
  EXPECT_NE(r.reason.find("unknown"), std::string::npos) << r.reason;

  // Parser state budget: a locations block needing more states than the
  // parser has, regardless of recirculation.
  r = compiler.compile(plain, 124);
  EXPECT_EQ(r.verdict, FitVerdict::kUnfit);
  EXPECT_NE(r.reason.find("parser"), std::string::npos) << r.reason;

  // Recirculation budget: each F_dps costs 2 stages (gateway + bucket RMW),
  // so a 12-stage pass holds 6 — 28 of them need 5 passes, one past the
  // budget, while staying inside the PHV pool (no crypto scratch).
  std::vector<FnTriple> dps;
  for (int i = 0; i < 28; ++i) dps.push_back(FnTriple::router(0, 32, OpKey::kDps));
  r = compiler.compile(dps, 4);
  EXPECT_EQ(r.verdict, FitVerdict::kUnfit);
  EXPECT_NE(r.reason.find("recirculation"), std::string::npos) << r.reason;

  // PHV pool: crypto-heavy compositions exhaust the container budget before
  // placement is even attempted (two scratch containers per crypto FN).
  std::vector<FnTriple> macs;
  for (int i = 0; i < 16; ++i) macs.push_back(FnTriple::router(0, 416, OpKey::kMac));
  r = compiler.compile(macs, 52);
  EXPECT_EQ(r.verdict, FitVerdict::kUnfit);
  EXPECT_NE(r.reason.find("PHV"), std::string::npos) << r.reason;
}

TEST(StageBudget, EmptyCompositionFitsTrivially) {
  const StageCompiler compiler;
  const auto r = compiler.compile({}, 0);
  EXPECT_EQ(r.verdict, FitVerdict::kFit);
  EXPECT_EQ(r.stages_used, 0u);
  EXPECT_EQ(r.passes.size(), 1u);
}

// ---------- stage-budget compiler: property suite ----------

struct GenComposition {
  std::vector<FnTriple> fns;
  std::size_t locations_bytes = 0;
};

std::uint64_t splitmix(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Seeded random composition: mostly structurally valid (byte-aligned,
/// in-range fields over every module-table key), with occasional sub-byte
/// slices so structural unfits flow through the properties too.
GenComposition gen_composition(std::uint64_t seed) {
  std::uint64_t s = seed;
  const auto below = [&s](std::uint64_t n) { return splitmix(s) % n; };

  GenComposition g;
  g.locations_bytes = 4 * (1 + below(30));  // 4..120, container-aligned
  const auto table = core::fn_table();
  const std::size_t n = 1 + below(10);
  for (std::size_t i = 0; i < n; ++i) {
    const core::FnInfo& row = table[below(table.size())];
    const std::size_t loc_byte = below(g.locations_bytes);
    const std::size_t max_bytes = std::min<std::size_t>(g.locations_bytes - loc_byte, 52);
    std::uint16_t len = static_cast<std::uint16_t>(8 * (1 + below(max_bytes)));
    if (below(8) == 0) len = static_cast<std::uint16_t>(len - 3);  // sub-byte slice
    const auto loc = static_cast<std::uint16_t>(8 * loc_byte);
    g.fns.push_back(below(6) == 0 ? FnTriple::host(loc, len, row.key)
                                  : FnTriple::router(loc, len, row.key));
  }
  return g;
}

proptest::Packet composition_packet(std::span<const FnTriple> fns,
                                    std::size_t locations_bytes) {
  core::DipHeader h;
  h.fns.assign(fns.begin(), fns.end());
  h.locations.assign(locations_bytes, 0);
  return h.serialize();
}

bool determinism_violated(std::span<const FnTriple> fns, std::size_t loc) {
  const StageCompiler a, b;
  return format_report("p", fns, loc, a.compile(fns, loc), a.model()) !=
         format_report("p", fns, loc, b.compile(fns, loc), b.model());
}

bool monotonicity_violated(std::span<const FnTriple> fns, std::size_t loc) {
  const StageCompiler compiler;
  bool seen_unfit = false;
  for (std::size_t k = 1; k <= fns.size(); ++k) {
    const bool fits = compiler.compile(fns.subspan(0, k), loc).fits();
    if (!fits) seen_unfit = true;
    else if (seen_unfit) return true;  // adding an FN flipped unfit -> fit
  }
  return false;
}

bool split_revalidation_violated(std::span<const FnTriple> fns, std::size_t loc) {
  const StageCompiler compiler;
  const auto report = compiler.compile(fns, loc);
  if (!report.fits() || report.passes.size() < 2) return false;
  for (const PassPlan& pass : report.passes) {
    const auto sub = compiler.compile(pass.fns, loc);
    if (sub.verdict != FitVerdict::kFit || sub.passes.size() != 1) return true;
  }
  return false;
}

/// On failure, shrink the offending composition with the shared proptest
/// shrinker (serialized as a DIP packet) and print a minimal reproducer.
void fail_with_shrunk(const char* property, std::uint64_t seed,
                      const GenComposition& g,
                      bool (*violated)(std::span<const FnTriple>, std::size_t)) {
  const auto fails = [violated](const proptest::Packet& packet) {
    const auto h = core::DipHeader::parse(packet);
    return h.has_value() && violated(h->fns, h->locations.size());
  };
  const proptest::Packet minimal =
      proptest::shrink_packet(composition_packet(g.fns, g.locations_bytes), fails);
  std::ostringstream what;
  what << property << " violated (seed " << seed << "); minimal reproducer: "
       << proptest::hex_encode(minimal);
  if (const auto h = core::DipHeader::parse(minimal)) {
    what << " = loc " << h->locations.size() << "B,";
    for (const FnTriple& fn : h->fns) {
      what << " " << core::op_key_name(fn.key()) << (fn.host_tagged() ? "*" : "")
           << "@" << fn.field_loc << "+" << fn.field_len;
    }
  }
  ADD_FAILURE() << what.str();
}

TEST(StageBudgetProperty, DeterministicMonotonicSplitValid) {
  std::size_t fit = 0;
  std::size_t multipass = 0;
  std::size_t unfit = 0;
  const StageCompiler compiler;

  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    const GenComposition g = gen_composition(seed);
    if (determinism_violated(g.fns, g.locations_bytes)) {
      fail_with_shrunk("determinism", seed, g, determinism_violated);
    }
    if (monotonicity_violated(g.fns, g.locations_bytes)) {
      fail_with_shrunk("monotonicity", seed, g, monotonicity_violated);
    }
    if (split_revalidation_violated(g.fns, g.locations_bytes)) {
      fail_with_shrunk("split-revalidation", seed, g, split_revalidation_violated);
    }
    const auto report = compiler.compile(g.fns, g.locations_bytes);
    if (!report.fits()) ++unfit;
    else if (report.passes.size() > 1) ++multipass;
    else ++fit;
  }

  // The generator must exercise all three placement regimes, or the
  // properties above are vacuous.
  EXPECT_GT(fit, 0u);
  EXPECT_GT(multipass, 0u);
  EXPECT_GT(unfit, 0u);
}

}  // namespace
}  // namespace dip::pisa
