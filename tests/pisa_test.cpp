// PISA model: parser state machine on real DIP bytes, match-action tables,
// pipeline cost accounting, Tofino constraint validation, and the
// Figure-2-shaped analytical cost ordering.
#include <gtest/gtest.h>

#include "dip/core/ip.hpp"
#include "dip/ndn/ndn.hpp"
#include "dip/opt/opt.hpp"
#include "dip/pisa/dip_program.hpp"
#include "dip/pisa/pipeline.hpp"

namespace dip::pisa {
namespace {

using core::FnTriple;
using core::OpKey;

// ---------- parser ----------

TEST(Parser, ExtractsDipBasicHeaderAndTriples) {
  const auto header = core::make_dip32_header(fib::ipv4_from_u32(0xC0000201),
                                              fib::ipv4_from_u32(0x0A000001));
  ASSERT_TRUE(header.has_value());
  const auto wire = header->serialize();

  const Parser parser = build_dip_parser(/*fn_count=*/2, /*locations_bytes=*/8);
  const auto outcome = parser.parse(wire);
  ASSERT_TRUE(outcome);

  const Phv& phv = outcome->phv;
  EXPECT_EQ(phv.get(phv_layout::kFnNum), 2u);
  EXPECT_EQ(phv.get(phv_layout::kHopLimit), 64u);
  // First triple: loc 0, len 32 -> container holds 0x00000020.
  EXPECT_EQ(phv.get(phv_layout::kFnBase), 0x00000020u);
  EXPECT_EQ(phv.get(phv_layout::kFnBase + 1), 1u);  // key 1 = F_32_match
  // Locations: destination address in the first loc container.
  EXPECT_EQ(phv.get(phv_layout::kLocBase), 0xC0000201u);
  EXPECT_EQ(phv.get(phv_layout::kLocBase + 1), 0x0A000001u);
  EXPECT_EQ(outcome->consumed, wire.size());
}

TEST(Parser, RejectsFnNumBeyondLadder) {
  // A 3-FN packet against a 2-deep ladder: the static if-else cannot handle
  // it — exactly the §4.1 compromise made observable.
  core::HeaderBuilder b;
  std::array<std::uint8_t, 4> field{};
  const auto loc = b.add_location(field);
  for (int i = 0; i < 3; ++i) b.add_fn(FnTriple::router(loc, 32, OpKey::kSource));
  const auto wire = b.build()->serialize();

  const Parser parser = build_dip_parser(2, 4);
  EXPECT_FALSE(parser.parse(wire));
}

TEST(Parser, TruncatedPacketRejected) {
  const Parser parser = build_dip_parser(2, 8);
  const std::array<std::uint8_t, 4> stub = {0, 2, 64, 0};
  EXPECT_FALSE(parser.parse(stub));
}

TEST(Parser, LoopGuardStopsRunawayMachines) {
  Parser parser;
  ParserState s;
  s.advance = 0;
  s.default_next = 0;  // self-loop
  parser.add_state(std::move(s));
  const std::array<std::uint8_t, 8> data{};
  const auto outcome = parser.parse(data);
  ASSERT_FALSE(outcome);
  EXPECT_EQ(outcome.error(), bytes::Error::kOverflow);
}

// ---------- tables ----------

TEST(MatchTable, ExactMatch) {
  MatchTable table(MatchKind::kExact, 0);
  table.add_entry({42, 0, 0, {ActionKind::kSetContainer, 1, 0, 99}});
  table.set_default_action({ActionKind::kDrop, 0, 0, 0});

  Phv phv;
  phv.set(0, 42);
  const Action hit = table.lookup(phv);
  EXPECT_EQ(hit.kind, ActionKind::kSetContainer);

  phv.set(0, 43);
  EXPECT_EQ(table.lookup(phv).kind, ActionKind::kDrop);
}

TEST(MatchTable, LpmPrefersLongerPrefix) {
  MatchTable table(MatchKind::kLpm, 0);
  table.add_entry({0x0A000000, 8, 0, {ActionKind::kSetContainer, 1, 0, 1}});
  table.add_entry({0x0A010000, 16, 0, {ActionKind::kSetContainer, 1, 0, 2}});

  Phv phv;
  phv.set(0, 0x0A010105);
  EXPECT_EQ(table.lookup(phv).imm, 2u);
  phv.set(0, 0x0A020105);
  EXPECT_EQ(table.lookup(phv).imm, 1u);
  phv.set(0, 0x0B000000);
  EXPECT_EQ(table.lookup(phv).kind, ActionKind::kNoop);  // default default
}

TEST(MatchTable, TernaryPriority) {
  MatchTable table(MatchKind::kTernary, 0);
  table.add_entry({0x1000, 0xF000, 1, {ActionKind::kSetContainer, 1, 0, 1}});
  table.add_entry({0x1200, 0xFF00, 5, {ActionKind::kSetContainer, 1, 0, 2}});

  Phv phv;
  phv.set(0, 0x1234);
  EXPECT_EQ(table.lookup(phv).imm, 2u) << "higher priority wins";
  phv.set(0, 0x1934);
  EXPECT_EQ(table.lookup(phv).imm, 1u);
}

TEST(Actions, AluSemantics) {
  Phv phv;
  const CostModel m;
  apply_action({ActionKind::kSetContainer, 3, 0, 7}, phv, m);
  EXPECT_EQ(phv.get(3), 7u);
  apply_action({ActionKind::kAdd, 3, 0, 5}, phv, m);
  EXPECT_EQ(phv.get(3), 12u);
  apply_action({ActionKind::kXor, 3, 0, 0xF}, phv, m);
  EXPECT_EQ(phv.get(3), 3u);
  phv.set(4, 0xFF);
  apply_action({ActionKind::kXorReg, 3, 4, 0}, phv, m);
  EXPECT_EQ(phv.get(3), 0xFCu);
  apply_action({ActionKind::kCopy, 5, 3, 0}, phv, m);
  EXPECT_EQ(phv.get(5), 0xFCu);
  apply_action({ActionKind::kDrop, 0, 0, 0}, phv, m);
  EXPECT_EQ(phv.get(phv_layout::kDropFlag), 1u);
}

// ---------- pipeline ----------

TEST(Pipeline, StageCostIsMaxOfTables) {
  CostModel model;
  Pipeline pipe(model);
  Stage stage;
  stage.tables.emplace_back(MatchKind::kExact, 0);   // cost 1
  stage.tables.emplace_back(MatchKind::kLpm, 1);     // cost 2
  ASSERT_TRUE(pipe.add_stage(std::move(stage)));

  Phv phv;
  const auto run = pipe.run(phv);
  EXPECT_EQ(run.cycles, model.pipeline_transit + model.table_lpm);
}

TEST(Pipeline, DropShortCircuitsRemainingStages) {
  Pipeline pipe;
  Stage s1;
  MatchTable t(MatchKind::kExact, 0);
  t.set_default_action({ActionKind::kDrop, 0, 0, 0});
  s1.tables.push_back(std::move(t));
  ASSERT_TRUE(pipe.add_stage(std::move(s1)));

  Stage s2;
  MatchTable t2(MatchKind::kExact, 0);
  t2.set_default_action({ActionKind::kSetContainer, 9, 0, 1});
  s2.tables.push_back(std::move(t2));
  ASSERT_TRUE(pipe.add_stage(std::move(s2)));

  Phv phv;
  const auto run = pipe.run(phv);
  EXPECT_TRUE(run.dropped);
  EXPECT_EQ(phv.get(9), 0u) << "stage 2 must not run after drop";
}

TEST(Pipeline, ResubmitsCostFullTransits) {
  CostModel model;
  Pipeline pipe(model);
  Phv phv;
  const auto once = pipe.run(phv);
  const auto twice = pipe.run_with_resubmits(phv, 1);
  ASSERT_TRUE(twice);
  EXPECT_EQ(twice->cycles, 2 * once.cycles + model.resubmit_penalty);
  EXPECT_EQ(twice->resubmissions, 1u);
  EXPECT_FALSE(pipe.run_with_resubmits(phv, Pipeline::kMaxResubmits + 1));
}

TEST(Pipeline, StageBudgetEnforced) {
  Pipeline pipe;
  for (std::size_t i = 0; i < Pipeline::kMaxStages; ++i) {
    ASSERT_TRUE(pipe.add_stage(Stage{}));
  }
  EXPECT_FALSE(pipe.add_stage(Stage{}));
}

// ---------- Tofino constraints ----------

TEST(Constraints, ByteAlignedSlicesRequired) {
  const FnTriple odd = FnTriple::router(3, 13, OpKey::kSource);
  const auto st = validate_program({&odd, 1}, 16);
  ASSERT_FALSE(st);
  EXPECT_EQ(st.error(), bytes::Error::kMalformed);
}

TEST(Constraints, LadderDepthEnforced) {
  std::vector<FnTriple> fns(9, FnTriple::router(0, 32, OpKey::kSource));
  const auto st = validate_program(fns, 16);
  ASSERT_FALSE(st);
  EXPECT_EQ(st.error(), bytes::Error::kUnsupported);
}

TEST(Constraints, PaperCompositionsAllFit) {
  // Every §3 composition must satisfy the prototype's constraints.
  const auto dip32 = core::make_dip32_header(fib::ipv4_from_u32(1), fib::ipv4_from_u32(2));
  EXPECT_TRUE(validate_program(dip32->fns, dip32->locations.size()));

  const auto ndn = ndn::make_interest_header32(7);
  EXPECT_TRUE(validate_program(ndn->fns, ndn->locations.size()));

  const auto fns = opt::opt_fn_triples();
  EXPECT_TRUE(validate_program(fns, opt::kBlockBytes));
}

// ---------- Figure-2-shaped cost ordering ----------

struct ProtocolCost {
  const char* name;
  Cycles cycles;
};

SwitchCostBreakdown cost_of(std::span<const FnTriple> fns, std::size_t loc_bytes,
                            bool parallel = false, bool aes = false) {
  return estimate_protocol_cycles(fns, loc_bytes, default_cost_model(), parallel, aes);
}

TEST(Figure2Shape, OrderingMatchesPaper) {
  const auto dip32 = core::make_dip32_header(fib::ipv4_from_u32(1), fib::ipv4_from_u32(2));
  const auto dip128 = core::make_dip128_header(fib::parse_ipv6("::1").value(),
                                               fib::parse_ipv6("::2").value());
  const auto ndn = ndn::make_interest_header32(7);
  const auto opt_fns = opt::opt_fn_triples();

  const Cycles c32 = cost_of(dip32->fns, dip32->locations.size()).total();
  const Cycles c128 = cost_of(dip128->fns, dip128->locations.size()).total();
  const Cycles cndn = cost_of(ndn->fns, ndn->locations.size()).total();
  const Cycles copt = cost_of(opt_fns, opt::kBlockBytes).total();

  // The Figure 2 shape: IP-style and NDN forwarding are close; OPT is
  // clearly more expensive (MAC-dominated).
  EXPECT_LT(c32, copt);
  EXPECT_LT(c128, copt);
  EXPECT_LT(cndn, copt);
  EXPECT_GT(copt, 2 * cndn) << "MAC dominates: a clear gap, not noise";

  // NDN+OPT ~ OPT + a name lookup.
  std::vector<FnTriple> ndn_opt{FnTriple::router(544, 32, OpKey::kFib)};
  ndn_opt.insert(ndn_opt.end(), opt_fns.begin(), opt_fns.end());
  const Cycles cndnopt = cost_of(ndn_opt, opt::kBlockBytes + 4).total();
  EXPECT_GT(cndnopt, copt);
  EXPECT_LT(cndnopt - copt, copt / 2);
}

TEST(Figure2Shape, AesMacNeedsResubmitAndCostsMore) {
  const auto fns = opt::opt_fn_triples();
  const auto em2 = cost_of(fns, opt::kBlockBytes, false, /*aes=*/false);
  const auto aes = cost_of(fns, opt::kBlockBytes, false, /*aes=*/true);
  EXPECT_EQ(em2.resubmissions, 0u) << "2EM completes in one pass (4.1)";
  EXPECT_EQ(aes.resubmissions, 1u) << "AES resubmits the packet (4.1)";
  EXPECT_GT(aes.total(), em2.total());
}

TEST(Figure2Shape, ParallelFlagReducesCost) {
  const auto fns = opt::opt_fn_triples();
  const auto seq = cost_of(fns, opt::kBlockBytes, /*parallel=*/false);
  const auto par = cost_of(fns, opt::kBlockBytes, /*parallel=*/true);
  EXPECT_LE(par.total(), seq.total());
  EXPECT_LT(par.match, seq.match);
}

TEST(Figure2Shape, HostTaggedFnsCostNothingOnSwitch) {
  const std::vector<FnTriple> with_ver = opt::opt_fn_triples();
  std::vector<FnTriple> without_ver(with_ver.begin(), with_ver.end() - 1);
  const auto a = cost_of(with_ver, opt::kBlockBytes);
  const auto b = cost_of(without_ver, opt::kBlockBytes);
  EXPECT_EQ(a.match, b.match);
  EXPECT_EQ(a.crypto, b.crypto);
}

TEST(FnProfiles, MacScalesWithCoverage) {
  const auto small = fn_switch_profile(FnTriple::router(0, 128, OpKey::kMac));
  const auto large = fn_switch_profile(FnTriple::router(0, 416, OpKey::kMac));
  EXPECT_LT(small.crypto_rounds, large.crypto_rounds);
}

}  // namespace
}  // namespace dip::pisa

// ---------- switch-mode DIP-32 forwarder (differential vs core::Router) ----

#include "dip/netsim/topology.hpp"
#include "dip/pisa/switch_forwarder.hpp"

namespace dip::pisa {
namespace {

TEST(SwitchForwarder, ForwardsByLpm) {
  SwitchForwarder sw;
  sw.add_route({fib::parse_ipv4("10.0.0.0").value(), 8}, 1);
  sw.add_route({fib::parse_ipv4("10.1.0.0").value(), 16}, 2);

  const auto h = core::make_dip32_header(fib::parse_ipv4("10.1.2.3").value(),
                                         fib::parse_ipv4("172.16.0.1").value());
  const auto outcome = sw.forward(h->serialize());
  ASSERT_TRUE(outcome.has_value());
  ASSERT_TRUE(outcome->egress.has_value());
  EXPECT_EQ(*outcome->egress, 2u) << "longest prefix must win on the switch too";
  EXPECT_GT(outcome->cycles, 0u);
}

TEST(SwitchForwarder, DropsWithoutRoute) {
  SwitchForwarder sw;
  sw.add_route({fib::parse_ipv4("10.0.0.0").value(), 8}, 1);
  const auto h = core::make_dip32_header(fib::parse_ipv4("11.0.0.1").value(),
                                         fib::parse_ipv4("172.16.0.1").value());
  const auto outcome = sw.forward(h->serialize());
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->egress.has_value());
}

TEST(SwitchForwarder, RejectsTruncatedPackets) {
  SwitchForwarder sw;
  const std::array<std::uint8_t, 5> stub = {0, 2, 64, 0, 0};
  EXPECT_FALSE(sw.forward(stub));
}

// Differential: software Algorithm-1 router and the PISA program must agree
// on every packet for the DIP-32 composition.
TEST(SwitchForwarder, AgreesWithSoftwareRouter) {
  crypto::Xoshiro256 rng(2024);
  SwitchForwarder sw;
  core::RouterEnv env = netsim::make_basic_env(1);
  const auto registry = netsim::make_default_registry();

  // 50 clustered random routes into both planes.
  for (int i = 0; i < 50; ++i) {
    fib::Ipv4Prefix p{fib::ipv4_from_u32(0x0A000000 | (rng.u32() & 0x00FFFFFF)),
                      static_cast<std::uint8_t>(8 + rng.below(25))};
    p.normalize();
    const auto nh = static_cast<fib::NextHop>(rng.below(64));
    sw.add_route(p, nh);
    env.fib32->insert(p, nh);
  }
  core::Router router(std::move(env), registry.get());

  for (int i = 0; i < 500; ++i) {
    const auto dst = fib::ipv4_from_u32(0x0A000000 | (rng.u32() & 0x00FFFFFF));
    const auto h = core::make_dip32_header(dst, fib::ipv4_from_u32(0xC0A80001));
    auto wire = h->serialize();

    const auto sw_out = sw.forward(wire);
    ASSERT_TRUE(sw_out.has_value());
    const auto rt_out = router.process(wire, 0, 0);

    if (rt_out.action == core::Action::kForward) {
      ASSERT_TRUE(sw_out->egress.has_value()) << "switch dropped, router forwarded";
      EXPECT_EQ(*sw_out->egress, rt_out.egress[0]);
    } else {
      EXPECT_FALSE(sw_out->egress.has_value()) << "switch forwarded, router dropped";
    }
  }
}

TEST(SwitchForwarder, RuntimeRouteInstallationWorks) {
  // FIB updates land in the match table without rebuilding the pipeline —
  // the runtime-programmability story at the table-entry level.
  SwitchForwarder sw;
  const auto h = core::make_dip32_header(fib::parse_ipv4("10.9.9.9").value(),
                                         fib::parse_ipv4("172.16.0.1").value());
  const auto wire = h->serialize();
  EXPECT_FALSE(sw.forward(wire)->egress.has_value());
  sw.add_route({fib::parse_ipv4("10.9.0.0").value(), 16}, 5);
  EXPECT_EQ(sw.forward(wire)->egress.value(), 5u);
  EXPECT_EQ(sw.route_count(), 1u);
}

}  // namespace
}  // namespace dip::pisa
