// Stats-layer tests: histogram bucket scheme and merge algebra, sampler
// determinism, trace-ring overwrite-when-full semantics, the text
// exposition format (golden), router-level recording with sample_period=1,
// and the RouterPool invariant that per-worker series sum to the fleet
// series. The golden test pins the exposition grammar documented in
// docs/OBSERVABILITY.md — change that doc if you change the format here.
#include <gtest/gtest.h>

#include <charconv>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "dip/core/ip.hpp"
#include "dip/core/router.hpp"
#include "dip/core/router_pool.hpp"
#include "dip/netsim/dip_node.hpp"
#include "dip/netsim/topology.hpp"
#include "dip/telemetry/exposition.hpp"

namespace dip::telemetry {
namespace {

// ------------------------------------------------------------- histogram

TEST(Histogram, BucketBoundariesFollowBitWidth) {
  EXPECT_EQ(histogram_bucket(0), 0u);
  EXPECT_EQ(histogram_bucket(1), 1u);
  EXPECT_EQ(histogram_bucket(2), 2u);
  EXPECT_EQ(histogram_bucket(3), 2u);
  EXPECT_EQ(histogram_bucket(4), 3u);
  for (std::size_t i = 1; i < kHistogramBuckets - 1; ++i) {
    // Bucket i spans exactly [2^(i-1), 2^i - 1].
    const std::uint64_t lower = std::uint64_t{1} << (i - 1);
    EXPECT_EQ(histogram_bucket(lower), i);
    EXPECT_EQ(histogram_bucket(histogram_bucket_upper(i)), i);
    EXPECT_EQ(histogram_bucket(histogram_bucket_upper(i) + 1), i + 1);
  }
  // Values past the last boundary clamp into the final bucket.
  EXPECT_EQ(histogram_bucket(~std::uint64_t{0}), kHistogramBuckets - 1);
  EXPECT_EQ(histogram_bucket_upper(0), 0u);
  EXPECT_EQ(histogram_bucket_upper(1), 1u);
  EXPECT_EQ(histogram_bucket_upper(2), 3u);
  EXPECT_EQ(histogram_bucket_upper(10), 1023u);
}

TEST(Histogram, RecordAndSnapshot) {
  LatencyHistogram h;
  h.record(0);
  h.record(3);
  h.record(3);
  h.record(100);  // bucket 7: [64, 127]
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 106u);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[2], 2u);
  EXPECT_EQ(s.buckets[7], 1u);
}

TEST(Histogram, QuantileInterpolatesWithinBucket) {
  HistogramSnapshot empty;
  EXPECT_EQ(empty.quantile(0.5), 0.0);
  EXPECT_EQ(empty.mean(), 0.0);

  LatencyHistogram h;
  for (int i = 0; i < 4; ++i) h.record(3);  // bucket 2: [2, 3]
  for (int i = 0; i < 4; ++i) h.record(8);  // bucket 4: [8, 15]
  const HistogramSnapshot s = h.snapshot();
  // target = 4 lands exactly at the end of bucket 2 -> its upper bound.
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
  // target = 7.2 -> 0.8 through bucket 4: 8 + (15 - 8) * 0.8.
  EXPECT_DOUBLE_EQ(s.quantile(0.9), 13.6);
  EXPECT_DOUBLE_EQ(s.quantile(0.99), 14.86);
  // Quantiles are monotone and bounded by the populated range.
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = s.quantile(q);
    EXPECT_GE(v, prev);
    EXPECT_LE(v, 15.0);
    prev = v;
  }
  EXPECT_DOUBLE_EQ(s.mean(), (4.0 * 3 + 4.0 * 8) / 8.0);
}

TEST(Histogram, MergeIsAssociativeAndCommutative) {
  LatencyHistogram ha, hb, hc;
  for (std::uint64_t v : {1u, 5u, 9u, 200u}) ha.record(v);
  for (std::uint64_t v : {0u, 5u, 1000u}) hb.record(v);
  for (std::uint64_t v : {7u, 7u, 7u, 7u, 123456u}) hc.record(v);
  const HistogramSnapshot a = ha.snapshot(), b = hb.snapshot(), c = hc.snapshot();

  const HistogramSnapshot left = (a + b) + c;
  const HistogramSnapshot right = a + (b + c);
  const HistogramSnapshot swapped = c + (b + a);
  EXPECT_EQ(left.buckets, right.buckets);
  EXPECT_EQ(left.buckets, swapped.buckets);
  EXPECT_EQ(left.count, a.count + b.count + c.count);
  EXPECT_EQ(left.sum, a.sum + b.sum + c.sum);
  // A merged snapshot is exactly what one histogram fed all streams sees.
  LatencyHistogram all;
  for (std::uint64_t v : {1u, 5u, 9u, 200u, 0u, 5u, 1000u, 7u, 7u, 7u, 7u, 123456u}) {
    all.record(v);
  }
  EXPECT_EQ(left.buckets, all.snapshot().buckets);
  EXPECT_DOUBLE_EQ(left.quantile(0.5), all.snapshot().quantile(0.5));
}

// --------------------------------------------------------------- sampler

TEST(Sampler, DeterministicOneInN) {
  Sampler s(4);
  std::vector<std::size_t> picked;
  for (std::size_t i = 0; i < 12; ++i) {
    if (s.tick()) picked.push_back(i);
  }
  EXPECT_EQ(picked, (std::vector<std::size_t>{0, 4, 8}));

  // Identical period + identical stream position => identical picks.
  Sampler a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.tick(), b.tick());
}

TEST(Sampler, ZeroDisablesOneSamplesEverything) {
  Sampler off(0);
  for (int i = 0; i < 16; ++i) EXPECT_FALSE(off.tick());
  Sampler always(1);
  for (int i = 0; i < 16; ++i) EXPECT_TRUE(always.tick());
}

// ------------------------------------------------------------ trace ring

TraceRecord record_with(std::uint64_t sim_now) {
  TraceRecord r;
  r.sim_now = sim_now;
  r.fn_count = 1;
  r.fns[0] = {0, 32, 1};
  return r;
}

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(1).capacity(), 2u);
  EXPECT_EQ(TraceRing(3).capacity(), 4u);
  EXPECT_EQ(TraceRing(4).capacity(), 4u);
  EXPECT_EQ(TraceRing(1000).capacity(), 1024u);
}

TEST(TraceRing, DrainReturnsOldestFirstAndStampsSeq) {
  TraceRing ring(4);
  for (std::uint64_t i = 0; i < 3; ++i) ring.push(record_with(i * 10));
  std::vector<TraceRecord> out;
  EXPECT_EQ(ring.drain(out), 3u);
  ASSERT_EQ(out.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out[i].seq, i);
    EXPECT_EQ(out[i].sim_now, i * 10);
  }
  // Drained records are consumed.
  EXPECT_EQ(ring.drain(out), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.pushed(), 3u);
}

TEST(TraceRing, OverwritesOldestWhenFull) {
  TraceRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) ring.push(record_with(i));
  EXPECT_EQ(ring.pushed(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);

  std::vector<TraceRecord> out;
  EXPECT_EQ(ring.drain(out), 4u);
  ASSERT_EQ(out.size(), 4u);
  // The survivors are the newest four, oldest of them first.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(out[i].sim_now, 6u + i);
    EXPECT_EQ(out[i].seq, 6u + i);
  }
}

// ------------------------------------------------------- exposition text

TEST(Exposition, WriterGolden) {
  StatsWriter w;
  const Label labels[] = {{"worker", "3"}, {"fn", "F_FIB"}};
  w.counter("dip_fn_executions_total", labels, 42);
  w.gauge("dip_flow_cache_hit_rate", {}, 0.954233);
  w.comment("== section ==");
  EXPECT_EQ(w.text(),
            "dip_fn_executions_total{worker=\"3\",fn=\"F_FIB\"} 42\n"
            "dip_flow_cache_hit_rate 0.954233\n"
            "# == section ==\n");
}

TEST(Exposition, HistogramGolden) {
  LatencyHistogram h;
  for (int i = 0; i < 4; ++i) h.record(3);
  for (int i = 0; i < 4; ++i) h.record(8);
  StatsWriter w;
  write_histogram(w, "lat_ns", {}, h.snapshot());
  EXPECT_EQ(w.text(),
            "lat_ns{quantile=\"0.5\"} 3\n"
            "lat_ns{quantile=\"0.9\"} 13.6\n"
            "lat_ns{quantile=\"0.99\"} 14.86\n"
            "lat_ns_bucket{le=\"3\"} 4\n"
            "lat_ns_bucket{le=\"15\"} 8\n"
            "lat_ns_bucket{le=\"+Inf\"} 8\n"
            "lat_ns_count 8\n"
            "lat_ns_sum 44\n");

  // Empty histograms emit nothing (absent series beat all-zero series).
  StatsWriter empty;
  write_histogram(empty, "lat_ns", {}, HistogramSnapshot{});
  EXPECT_EQ(empty.text(), "");
}

TEST(Exposition, CounterSnapshotGolden) {
  CounterSnapshot s;
  s.processed = 10;
  s.forwarded = 8;
  s.dropped = 2;
  s.batches = 3;
  s.fn_executed = 20;
  s.flow_cache_hits = 6;
  s.flow_cache_misses = 2;
  s.fn_by_key[1] = 16;  // kMatch32
  s.fn_by_key[4] = 4;   // kFib
  s.quarantined = 1;
  StatsWriter w;
  write_counter_snapshot(w, s, {}, nullptr);
  EXPECT_EQ(w.text(),
            "dip_packets_processed_total 10\n"
            "dip_packets_forwarded_total 8\n"
            "dip_packets_dropped_total 2\n"
            "dip_packet_errors_total 0\n"
            "dip_packets_quarantined_total 1\n"
            "dip_batches_total 3\n"
            "dip_fn_executed_total 20\n"
            "dip_fn_skipped_host_total 0\n"
            "dip_fn_skipped_optional_total 0\n"
            "dip_parallel_relaxed_total 0\n"
            "dip_parallel_fallback_total 0\n"
            "dip_flow_cache_hits_total 6\n"
            "dip_flow_cache_misses_total 2\n"
            "dip_flow_cache_hit_rate 0.75\n"
            "dip_fn_executions_total{fn=\"key1\"} 16\n"
            "dip_fn_executions_total{fn=\"key4\"} 4\n");

  // A KeyNamer swaps the fallback slot names for Table-1 notation.
  StatsWriter named;
  write_counter_snapshot(named, s, {}, +[](std::size_t slot) {
    return core::op_key_name(static_cast<core::OpKey>(slot));
  });
  EXPECT_NE(named.text().find("dip_fn_executions_total{fn=\"F_32_match\"} 16"),
            std::string::npos);
  EXPECT_NE(named.text().find("dip_fn_executions_total{fn=\"F_FIB\"} 4"),
            std::string::npos);
}

TEST(Exposition, RegistryComposesNamedSectionsAndSkipsEmpty) {
  StatsRegistry registry;
  registry.add("first", [](StatsWriter& w) { w.counter("a_total", {}, 1); });
  registry.add("empty", [](StatsWriter&) {});
  registry.add("second", [](StatsWriter& w) { w.counter("b_total", {}, 2); });
  EXPECT_EQ(registry.render(),
            "# == first ==\n"
            "a_total 1\n"
            "# == second ==\n"
            "b_total 2\n");
}

// --------------------------------------------------- router-level wiring

core::RouterEnv stats_env(std::uint32_t sample_period, std::uint32_t burst_period) {
  core::RouterEnv env = netsim::make_basic_env(1);
  env.fib32->insert({fib::ipv4_from_u32(0x0A000000), 8}, 7);
  RouterStatsConfig cfg;
  cfg.sample_period = sample_period;
  cfg.burst_period = burst_period;
  cfg.trace_capacity = 64;
  env.stats = make_router_stats(cfg);
  return env;
}

std::vector<std::uint8_t> dip32_packet(std::uint32_t dst) {
  return core::make_dip32_header(fib::ipv4_from_u32(dst),
                                 fib::ipv4_from_u32(0xC0A80001))
      ->serialize();
}

TEST(RouterStatsWiring, SamplePeriodOneRecordsEveryPacket) {
  static const auto registry = netsim::make_default_registry();
  core::Router router(stats_env(/*sample_period=*/1, /*burst_period=*/1),
                      registry.get());

  constexpr std::size_t kBurst = 8;
  std::vector<std::vector<std::uint8_t>> packets;
  std::vector<core::PacketRef> refs;
  for (std::size_t i = 0; i < kBurst; ++i) {
    packets.push_back(dip32_packet(0x0A000000 + static_cast<std::uint32_t>(i)));
  }
  for (auto& p : packets) refs.emplace_back(p);
  std::vector<core::ProcessResult> results(kBurst);
  router.process_batch(refs, /*ingress=*/5, /*now=*/777, results);

  RouterStats& stats = *router.env().stats;
  // One burst => one sample in each phase histogram.
  EXPECT_EQ(stats.phase_bind.snapshot().count, 1u);
  EXPECT_EQ(stats.phase_validate.snapshot().count, 1u);
  EXPECT_EQ(stats.phase_dispatch.snapshot().count, 1u);
  // Every packet ran F_32_match + F_source; both were timed.
  const auto match = static_cast<std::size_t>(core::OpKey::kMatch32);
  const auto source = static_cast<std::size_t>(core::OpKey::kSource);
  EXPECT_EQ(stats.fn_ns[match].snapshot().count, kBurst);
  EXPECT_EQ(stats.fn_ns[source].snapshot().count, kBurst);
  EXPECT_GT(stats.fn_ns[match].snapshot().sum, 0u);

  // Every packet left one trace record carrying its FN program and verdict.
  std::vector<TraceRecord> records;
  EXPECT_EQ(stats.trace.drain(records), kBurst);
  const auto header = core::DipHeader::parse(packets[0]);
  ASSERT_TRUE(header.has_value());
  for (const auto& r : records) {
    EXPECT_EQ(r.sim_now, 777u);
    EXPECT_EQ(r.ingress, 5u);
    EXPECT_EQ(r.action, static_cast<std::uint8_t>(core::Action::kForward));
    EXPECT_EQ(r.egress_count, 1u);
    ASSERT_EQ(r.fn_count, header->fns.size());
    for (std::size_t f = 0; f < r.fn_count; ++f) {
      EXPECT_EQ(r.fns[f].field_loc, header->fns[f].field_loc);
      EXPECT_EQ(r.fns[f].field_len, header->fns[f].field_len);
      EXPECT_EQ(r.fns[f].op, header->fns[f].op);
    }
  }
}

TEST(RouterStatsWiring, NullStatsRecordsNothingAndStillRoutes) {
  static const auto registry = netsim::make_default_registry();
  core::RouterEnv env = netsim::make_basic_env(1);
  env.fib32->insert({fib::ipv4_from_u32(0x0A000000), 8}, 7);
  ASSERT_EQ(env.stats, nullptr);
  core::Router router(std::move(env), registry.get());
  auto packet = dip32_packet(0x0A000001);
  const core::PacketRef ref(packet);
  std::vector<core::ProcessResult> results(1);
  router.process_batch({&ref, 1}, 0, 0, results);
  EXPECT_EQ(results[0].action, core::Action::kForward);
}

TEST(RouterStatsWiring, SamplerPicksAreDeterministicAcrossReplays) {
  static const auto registry = netsim::make_default_registry();
  auto run = [&](std::uint32_t period) {
    core::Router router(stats_env(period, /*burst_period=*/1), registry.get());
    for (std::uint32_t i = 0; i < 50; ++i) {
      auto packet = dip32_packet(0x0A000000 + i);
      const core::PacketRef ref(packet);
      std::vector<core::ProcessResult> results(1);
      router.process_batch({&ref, 1}, 0, i, results);
    }
    std::vector<TraceRecord> records;
    router.env().stats->trace.drain(records);
    std::vector<std::uint64_t> sampled_times;
    for (const auto& r : records) sampled_times.push_back(r.sim_now);
    return sampled_times;
  };
  const auto first = run(8);
  const auto second = run(8);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, (std::vector<std::uint64_t>{0, 8, 16, 24, 32, 40, 48}));
}

// ------------------------------------------------------------ pool rollup

/// Parse every `name{...} value` (or `name value`) line of an exposition
/// page into (series-with-labels -> value), skipping comments.
void parse_exposition(const std::string& text, std::map<std::string, double>& series) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    series[line.substr(0, space)] = std::stod(line.substr(space + 1));
  }
}

TEST(RouterPoolStats, PerWorkerSeriesSumToFleetSeries) {
  auto registry = netsim::make_default_registry();
  core::RouterPoolConfig config;
  config.workers = 2;
  config.ring_capacity = 1024;
  core::RouterPool pool(
      registry.get(),
      [](std::size_t i) {
        core::RouterEnv env = netsim::make_basic_env(static_cast<std::uint32_t>(i));
        env.fib32->insert({fib::ipv4_from_u32(0x0A000000), 8}, 7);
        RouterStatsConfig cfg;
        cfg.sample_period = 4;
        cfg.burst_period = 1;
        env.stats = make_router_stats(cfg);
        return env;
      },
      config);
  for (std::uint32_t i = 0; i < 400; ++i) {
    pool.submit(dip32_packet(0x0A000000 + i % 64), 0, i);
  }
  pool.drain();

  const std::string page = pool.dump_stats();
  std::map<std::string, double> series;
  ASSERT_NO_FATAL_FAILURE(parse_exposition(page, series));

  for (const char* name :
       {"dip_packets_processed_total", "dip_packets_forwarded_total",
        "dip_packets_dropped_total", "dip_fn_executed_total",
        "dip_flow_cache_hits_total"}) {
    ASSERT_TRUE(series.contains(name)) << name << "\n" << page;
    double worker_sum = 0;
    for (std::size_t w = 0; w < pool.workers(); ++w) {
      const std::string labelled =
          std::string(name) + "{worker=\"" + std::to_string(w) + "\"}";
      ASSERT_TRUE(series.contains(labelled)) << labelled << "\n" << page;
      worker_sum += series[labelled];
    }
    EXPECT_DOUBLE_EQ(series[name], worker_sum) << name;
  }
  EXPECT_EQ(series["dip_packets_processed_total"], 400.0);

  // The merged trace meter equals the sum over the workers' rings, and the
  // fleet phase/fn histogram counts roll up the same way.
  double pushed = 0;
  for (std::size_t w = 0; w < pool.workers(); ++w) {
    pushed += static_cast<double>(pool.router(w).env().stats->trace.pushed());
  }
  EXPECT_EQ(series["dip_trace_sampled_total"], pushed);
  ASSERT_TRUE(series.contains("dip_phase_latency_ns_count{phase=\"dispatch\"}"));
  double dispatch_bursts = 0;
  for (std::size_t w = 0; w < pool.workers(); ++w) {
    dispatch_bursts += static_cast<double>(
        pool.router(w).env().stats->phase_dispatch.snapshot().count);
  }
  EXPECT_EQ(series["dip_phase_latency_ns_count{phase=\"dispatch\"}"],
            dispatch_bursts);

  // Queue depths are exposed per worker (drained pool => zero).
  for (std::size_t w = 0; w < pool.workers(); ++w) {
    const std::string depth =
        "dip_worker_queue_depth{worker=\"" + std::to_string(w) + "\"}";
    ASSERT_TRUE(series.contains(depth)) << depth << "\n" << page;
    EXPECT_EQ(series[depth], 0.0);
  }
  pool.stop();
}

TEST(NodeStats, DumpCarriesNodeLabelAndDropLedger) {
  auto registry = netsim::make_default_registry();
  core::RouterEnv env = netsim::make_basic_env(42);
  env.fib32->insert({fib::ipv4_from_u32(0x0A000000), 8}, 7);
  RouterStatsConfig cfg;
  cfg.sample_period = 1;
  cfg.burst_period = 1;
  env.stats = make_router_stats(cfg);
  netsim::DipRouterNode node(std::move(env), registry);
  netsim::Network net;
  net.add_node(node);

  node.on_packet(0, dip32_packet(0x0A000001), 0);
  node.on_packet(0, std::vector<std::uint8_t>{0x00, 0x01}, 0);  // malformed

  const std::string page = node.dump_stats();
  EXPECT_NE(page.find("dip_packets_processed_total{node=\"42\"} 2"),
            std::string::npos)
      << page;
  EXPECT_NE(page.find("dip_node_drops_total{node=\"42\",reason="),
            std::string::npos)
      << page;
  EXPECT_NE(page.find("dip_fn_latency_ns{node=\"42\",fn=\"F_32_match\""),
            std::string::npos)
      << page;
}

}  // namespace
}  // namespace dip::telemetry
