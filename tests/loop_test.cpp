// Forwarding-loop containment: a misconfigured ring must not melt down.
// Hop limits bound IP-style loops; the PIT's duplicate detection kills NDN
// interest loops after a single revolution.
#include <gtest/gtest.h>

#include "dip/core/ip.hpp"
#include "dip/netsim/topology.hpp"
#include "dip/ndn/ndn.hpp"

namespace dip::netsim {
namespace {

struct Ring {
  static constexpr std::size_t kSize = 3;

  explicit Ring(Network& net) {
    auto registry = make_default_registry();
    for (std::size_t i = 0; i < kSize; ++i) {
      auto env = make_basic_env(static_cast<std::uint32_t>(i));
      env.default_egress.reset();
      routers.push_back(std::make_unique<DipRouterNode>(std::move(env), registry));
      net.add_node(*routers.back());
    }
    // r0 -> r1 -> r2 -> r0 (store each router's "next" face).
    for (std::size_t i = 0; i < kSize; ++i) {
      const auto [down, up] =
          net.connect(*routers[i], *routers[(i + 1) % kSize]);
      (void)up;
      next_face.push_back(down);
    }
    net.add_node(source);
    const auto [sf, rf] = net.connect(source, *routers[0]);
    source_face = sf;
    (void)rf;

    // Misconfiguration: every router routes 10/8 and the /cdn name prefix
    // around the ring.
    for (std::size_t i = 0; i < kSize; ++i) {
      routers[i]->env().fib32->insert({fib::parse_ipv4("10.0.0.0").value(), 8},
                                      next_face[i]);
      ndn::install_name_route(*routers[i]->env().fib32, fib::Name::parse("/cdn"),
                              next_face[i]);
    }
  }

  std::uint64_t total_processed() const {
    std::uint64_t n = 0;
    for (const auto& r : routers) n += r->env().counters.processed;
    return n;
  }

  std::vector<std::unique_ptr<DipRouterNode>> routers;
  std::vector<FaceId> next_face;
  HostNode source;
  FaceId source_face = 0;
};

TEST(ForwardingLoop, HopLimitBoundsIpLoop) {
  Network net;
  Ring ring(net);

  constexpr std::uint8_t kHops = 12;
  const auto header = core::make_dip32_header(fib::parse_ipv4("10.9.9.9").value(),
                                              fib::parse_ipv4("172.16.0.1").value(),
                                              core::NextHeader::kNone, kHops);
  ring.source.send(ring.source_face, header->serialize());
  net.run();

  // The packet circles until its hop limit burns down, then dies.
  EXPECT_EQ(ring.total_processed(), kHops);
  std::uint64_t hop_limit_drops = 0;
  for (const auto& r : ring.routers) {
    hop_limit_drops += r->drops(core::DropReason::kHopLimitExceeded);
  }
  EXPECT_EQ(hop_limit_drops, 1u);
  EXPECT_TRUE(net.loop().empty()) << "simulation quiesces: the loop terminated";
}

TEST(ForwardingLoop, PitKillsInterestLoopInOneRevolution) {
  Network net;
  Ring ring(net);

  const auto interest =
      ndn::make_interest_header(fib::Name::parse("/cdn/thing"),
                                core::NextHeader::kNone, /*hop_limit=*/200);
  ring.source.send(ring.source_face, interest->serialize());
  net.run();

  // NDN's loop defense is state, not hop limits: when the interest comes
  // back around to r0 on the ring face, the PIT entry from the first pass
  // (different ingress face) aggregates it; a further lap would be a
  // duplicate. Either way the loop dies long before 200 hops.
  EXPECT_LE(ring.total_processed(), 2 * Ring::kSize + 1)
      << "interest must not keep circling on hop-limit credit";
  std::uint64_t suppressions = 0;
  for (const auto& r : ring.routers) {
    suppressions += r->drops(core::DropReason::kAggregated) +
                    r->drops(core::DropReason::kDuplicate);
  }
  EXPECT_GE(suppressions, 1u);
}

TEST(ForwardingLoop, HopLimitAccountingExact) {
  // Same ring, several hop limits: processed == hop_limit every time
  // (each traversal costs exactly one).
  for (const std::uint8_t hops : {3, 6, 9}) {
    Network net;
    Ring ring(net);
    const auto header = core::make_dip32_header(
        fib::parse_ipv4("10.1.1.1").value(), fib::parse_ipv4("172.16.0.1").value(),
        core::NextHeader::kNone, hops);
    ring.source.send(ring.source_face, header->serialize());
    net.run();
    EXPECT_EQ(ring.total_processed(), hops) << "hop limit " << unsigned(hops);
  }
}

}  // namespace
}  // namespace dip::netsim
