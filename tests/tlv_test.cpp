// NDN TLV codec and the NDN↔DIP gateway.
#include <gtest/gtest.h>

#include "dip/crypto/random.hpp"
#include "dip/ndn/gateway.hpp"
#include "dip/ndn/tlv.hpp"

namespace dip::ndn::tlv {
namespace {

using fib::Name;

// ---------- varnum ----------

TEST(VarNum, EncodingBoundaries) {
  struct Case {
    std::uint64_t value;
    std::size_t encoded_size;
  };
  for (const auto [value, size] : {Case{0, 1}, Case{252, 1}, Case{253, 3},
                                   Case{0xffff, 3}, Case{0x10000, 5},
                                   Case{0xffffffff, 5}, Case{0x100000000, 9}}) {
    std::vector<std::uint8_t> out;
    write_varnum(out, value);
    EXPECT_EQ(out.size(), size) << value;
    std::size_t pos = 0;
    EXPECT_EQ(read_varnum(out, pos).value(), value);
    EXPECT_EQ(pos, out.size());
  }
}

TEST(VarNum, TruncationRejected) {
  std::vector<std::uint8_t> out;
  write_varnum(out, 0x12345);
  for (std::size_t cut = 0; cut < out.size(); ++cut) {
    std::size_t pos = 0;
    EXPECT_FALSE(read_varnum(std::span<const std::uint8_t>(out.data(), cut), pos));
  }
}

// ---------- TLV elements ----------

TEST(Tlv, RoundTripAndKnownBytes) {
  std::vector<std::uint8_t> out;
  const std::array<std::uint8_t, 3> value = {'a', 'b', 'c'};
  write_tlv(out, kGenericComponent, value);
  // 0x08 (type) 0x03 (len) 'a' 'b' 'c'
  EXPECT_EQ(out, (std::vector<std::uint8_t>{0x08, 0x03, 'a', 'b', 'c'}));

  std::size_t pos = 0;
  const auto element = read_tlv(out, pos);
  ASSERT_TRUE(element.has_value());
  EXPECT_EQ(element->type, kGenericComponent);
  EXPECT_TRUE(std::ranges::equal(element->value, value));
}

TEST(Tlv, LengthBeyondBufferRejected) {
  const std::vector<std::uint8_t> lying = {0x08, 0x7f, 'a'};
  std::size_t pos = 0;
  EXPECT_FALSE(read_tlv(lying, pos));
}

// ---------- names ----------

TEST(TlvName, RoundTrip) {
  const Name name = Name::parse("/hotnets/org/dip");
  std::vector<std::uint8_t> out;
  write_name(out, name);

  std::size_t pos = 0;
  const auto element = read_tlv(out, pos);
  ASSERT_TRUE(element.has_value());
  EXPECT_EQ(element->type, kName);
  const auto back = parse_name(element->value);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, name);
}

TEST(TlvName, KnownEncoding) {
  // /a -> Name(0x07) len 3: Component(0x08) len 1 'a'
  std::vector<std::uint8_t> out;
  write_name(out, Name::parse("/a"));
  EXPECT_EQ(out, (std::vector<std::uint8_t>{0x07, 0x03, 0x08, 0x01, 'a'}));
}

// ---------- interest ----------

TEST(TlvInterest, RoundTrip) {
  Interest interest;
  interest.name = Name::parse("/cdn/movie/seg1");
  interest.can_be_prefix = true;
  interest.must_be_fresh = true;
  interest.nonce = 0xDEADBEEF;
  interest.lifetime_ms = 4000;

  const auto wire = interest.encode();
  EXPECT_EQ(wire[0], kInterest);

  const auto back = Interest::decode(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->name, interest.name);
  EXPECT_TRUE(back->can_be_prefix);
  EXPECT_TRUE(back->must_be_fresh);
  EXPECT_EQ(back->nonce, 0xDEADBEEFu);
  EXPECT_EQ(back->lifetime_ms.value(), 4000u);
}

TEST(TlvInterest, MinimalAndUnknownFieldsTolerated) {
  Interest interest;
  interest.name = Name::parse("/x");
  auto wire = interest.encode();
  // Splice an unknown non-critical TLV (type 0x60) into the body.
  // Outer: type(1) len(1); insert at end of body and fix the outer length.
  wire.insert(wire.end(), {0x60, 0x01, 0x77});
  wire[1] = static_cast<std::uint8_t>(wire[1] + 3);
  const auto back = Interest::decode(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->name, interest.name);
}

TEST(TlvInterest, RejectsMissingNameAndGarbage) {
  const std::vector<std::uint8_t> no_name = {0x05, 0x02, 0x21, 0x00};
  EXPECT_FALSE(Interest::decode(no_name));
  EXPECT_FALSE(Interest::decode(std::vector<std::uint8_t>{0x06, 0x00}));
  EXPECT_FALSE(Interest::decode({}));
}

// ---------- data ----------

TEST(TlvData, RoundTripWithDigest) {
  Data data;
  data.name = Name::parse("/cdn/movie/seg1");
  data.freshness_ms = 10'000;
  data.content = {'m', 'p', '4'};
  const auto wire = data.encode();

  const auto back = Data::decode(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->name, data.name);
  EXPECT_EQ(back->freshness_ms.value(), 10'000u);
  EXPECT_EQ(back->content, data.content);
  EXPECT_EQ(back->digest, back->compute_digest()) << "digest validates";

  // Tampered content breaks the digest.
  Data tampered = *back;
  tampered.content[0] ^= 1;
  EXPECT_NE(tampered.digest, tampered.compute_digest());
}

TEST(TlvData, FuzzNeverCrashes) {
  crypto::Xoshiro256 rng(0x71f);
  for (int i = 0; i < 20000; ++i) {
    std::vector<std::uint8_t> blob(rng.below(120));
    for (auto& b : blob) b = static_cast<std::uint8_t>(rng.next());
    (void)Data::decode(blob);
    (void)Interest::decode(blob);
    std::size_t pos = 0;
    (void)read_tlv(blob, pos);
  }
  SUCCEED();
}

// ---------- gateway ----------

TEST(Gateway, InterestDataRoundTripAcrossDip) {
  Gateway gw;
  Interest interest;
  interest.name = Name::parse("/cdn/movie");
  interest.nonce = 7;

  // Native -> DIP: a 16-byte DIP interest (§4.1 / Table 2).
  const auto dip_interest = gw.interest_to_dip(interest);
  ASSERT_TRUE(dip_interest.has_value());
  EXPECT_EQ(dip_interest->size(), 16u);
  EXPECT_EQ(gw.pending(), 1u);

  // DIP domain answers with a data packet for the same code.
  const auto code = encode_name32(interest.name);
  auto dip_data = make_data_header32(code)->serialize();
  dip_data.insert(dip_data.end(), {'o', 'k'});

  // DIP -> native: the gateway re-expands the full name.
  const auto data = gw.dip_to_data(dip_data);
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->name, interest.name);
  EXPECT_EQ(data->content, (std::vector<std::uint8_t>{'o', 'k'}));
  EXPECT_EQ(data->digest, data->compute_digest());
  EXPECT_EQ(gw.pending(), 0u) << "mapping consumed with the data";
}

TEST(Gateway, UnsolicitedDataRejected) {
  Gateway gw;
  auto dip_data = make_data_header32(0x12345678)->serialize();
  const auto out = gw.dip_to_data(dip_data);
  ASSERT_FALSE(out.has_value());
  EXPECT_EQ(out.error(), bytes::Error::kState);
}

TEST(Gateway, CodeCollisionRefusedNotMisdelivered) {
  // Craft two names with the same 32-bit code is hard on demand; instead
  // simulate by asking for the same code twice with different names via a
  // forced alias: same first component, then brute-force a second name
  // whose code matches.
  Gateway gw;
  const Name a = Name::parse("/x/a");
  const std::uint32_t code_a = encode_name32(a);

  Interest ia;
  ia.name = a;
  ASSERT_TRUE(gw.interest_to_dip(ia).has_value());

  // Find a colliding sibling (8-bit per-component hashes: ~1/256 per try).
  std::optional<Name> collider;
  for (int i = 0; i < 100000; ++i) {
    const Name candidate = Name::parse("/x/c" + std::to_string(i));
    if (candidate == a) continue;
    if (encode_name32(candidate) == code_a) {
      collider = candidate;
      break;
    }
  }
  ASSERT_TRUE(collider.has_value()) << "no collision in 100k tries (unexpected)";

  Interest ib;
  ib.name = *collider;
  const auto out = gw.interest_to_dip(ib);
  ASSERT_FALSE(out.has_value()) << "colliding live names must be refused";
  EXPECT_EQ(gw.collisions(), 1u);

  // Same name again is fine (idempotent retransmission).
  EXPECT_TRUE(gw.interest_to_dip(ia).has_value());
}

TEST(Gateway, ProducerSideTranslations) {
  Gateway gw;
  Interest interest;
  interest.name = Name::parse("/pub/obj");
  const auto dip_interest = gw.interest_to_dip(interest);
  ASSERT_TRUE(dip_interest.has_value());

  // DIP -> native interest (the gateway remembers the name).
  const auto back = gw.dip_to_interest(*dip_interest);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->name, interest.name);

  // Native data -> DIP data packet.
  Data data;
  data.name = interest.name;
  data.content = {'d'};
  const auto dip_data = gw.data_to_dip(data);
  const auto header = core::DipHeader::parse(dip_data);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->fns[0].key(), core::OpKey::kPit);
  EXPECT_EQ(extract_name_code(*header).value(), encode_name32(interest.name));
}

}  // namespace
}  // namespace dip::ndn::tlv
