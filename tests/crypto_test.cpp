#include <gtest/gtest.h>

#include "dip/bytes/hex.hpp"
#include "dip/crypto/aes.hpp"
#include "dip/crypto/drkey.hpp"
#include "dip/crypto/even_mansour.hpp"
#include "dip/crypto/mac.hpp"
#include "dip/crypto/random.hpp"
#include "dip/crypto/siphash.hpp"

namespace dip::crypto {
namespace {

Block block_of_hex(std::string_view hex) {
  const auto v = bytes::from_hex(hex);
  EXPECT_TRUE(v.has_value());
  Block b{};
  std::copy(v->begin(), v->end(), b.begin());
  return b;
}

// ---------- AES-128 (FIPS-197 / SP 800-38A known answers) ----------

TEST(Aes128, Fips197AppendixBVector) {
  const Block key = block_of_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Block plain = block_of_hex("3243f6a8885a308d313198a2e0370734");
  const Block expected = block_of_hex("3925841d02dc09fbdc118597196a0b32");

  Aes128 aes(key);
  Block state = plain;
  aes.encrypt(state);
  EXPECT_EQ(state, expected);

  aes.decrypt(state);
  EXPECT_EQ(state, plain);
}

TEST(Aes128, Sp80038aEcbVector) {
  const Block key = block_of_hex("2b7e151628aed2a6abf7158809cf4f3c");
  Aes128 aes(key);
  Block b = block_of_hex("6bc1bee22e409f96e93d7e117393172a");
  aes.encrypt(b);
  EXPECT_EQ(b, block_of_hex("3ad77bb40d7a3660a89ecaf32466ef97"));
}

TEST(Aes128, EncryptDecryptInverseRandom) {
  Xoshiro256 rng(1234);
  for (int trial = 0; trial < 50; ++trial) {
    const Block key = rng.block();
    const Block plain = rng.block();
    Aes128 aes(key);
    Block state = plain;
    aes.encrypt(state);
    EXPECT_NE(state, plain);
    aes.decrypt(state);
    EXPECT_EQ(state, plain);
  }
}

TEST(Aes128, KeySensitivity) {
  Block key = block_of_hex("000102030405060708090a0b0c0d0e0f");
  const Block plain{};
  Aes128 a(key);
  key[15] ^= 1;
  Aes128 b(key);
  EXPECT_NE(a.encrypt_copy(plain), b.encrypt_copy(plain));
}

// ---------- 2EM ----------

TEST(EvenMansour2, EncryptDecryptInverse) {
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const Block key = rng.block();
    EvenMansour2 em(key);
    const Block plain = rng.block();
    Block state = plain;
    em.encrypt(state);
    EXPECT_NE(state, plain);
    em.decrypt(state);
    EXPECT_EQ(state, plain);
  }
}

TEST(EvenMansour2, DistinctKeysDistinctCiphertexts) {
  const Block plain{};
  EvenMansour2 a(block_of_hex("00000000000000000000000000000001"));
  EvenMansour2 b(block_of_hex("00000000000000000000000000000002"));
  EXPECT_NE(a.encrypt_copy(plain), b.encrypt_copy(plain));
}

TEST(EvenMansour2, Deterministic) {
  const Block key = block_of_hex("0123456789abcdef0123456789abcdef");
  EvenMansour2 a(key);
  EvenMansour2 b(key);
  const Block plain = block_of_hex("00112233445566778899aabbccddeeff");
  EXPECT_EQ(a.encrypt_copy(plain), b.encrypt_copy(plain));
}

// ---------- CMAC (RFC 4493 known answers) ----------

TEST(AesCmac, Rfc4493Vectors) {
  const Block key = block_of_hex("2b7e151628aed2a6abf7158809cf4f3c");
  AesCmac cmac(key);

  // Example 1: empty message.
  EXPECT_EQ(cmac.compute({}), block_of_hex("bb1d6929e95937287fa37d129b756746"));

  // Example 2: 16 bytes.
  const auto m16 = bytes::from_hex("6bc1bee22e409f96e93d7e117393172a").value();
  EXPECT_EQ(cmac.compute(m16), block_of_hex("070a16b46b4d4144f79bdd9dd04a287c"));

  // Example 3: 40 bytes.
  const auto m40 = bytes::from_hex(
                       "6bc1bee22e409f96e93d7e117393172a"
                       "ae2d8a571e03ac9c9eb76fac45af8e51"
                       "30c81c46a35ce411")
                       .value();
  EXPECT_EQ(cmac.compute(m40), block_of_hex("dfa66747de9ae63030ca32611497c827"));

  // Example 4: 64 bytes.
  const auto m64 = bytes::from_hex(
                       "6bc1bee22e409f96e93d7e117393172a"
                       "ae2d8a571e03ac9c9eb76fac45af8e51"
                       "30c81c46a35ce411e5fbc1191a0a52ef"
                       "f69f2445df4f9b17ad2b417be66c3710")
                       .value();
  EXPECT_EQ(cmac.compute(m64), block_of_hex("51f0bebf7e3b9d92fc49741779363cfe"));
}

TEST(AesCmac, VerifyAcceptsAndRejects) {
  const Block key = block_of_hex("2b7e151628aed2a6abf7158809cf4f3c");
  AesCmac cmac(key);
  const std::vector<std::uint8_t> msg = {1, 2, 3};
  Block tag = cmac.compute(msg);
  EXPECT_TRUE(cmac.verify(msg, tag));
  tag[0] ^= 1;
  EXPECT_FALSE(cmac.verify(msg, tag));
}

class MacKindTest : public ::testing::TestWithParam<MacKind> {};

// Properties that must hold for both MAC primitives.
TEST_P(MacKindTest, BasicMacProperties) {
  Xoshiro256 rng(7);
  const Block key = rng.block();
  const auto mac = make_mac(GetParam(), key);
  ASSERT_NE(mac, nullptr);

  // Length-extension-style boundaries: every size near block boundaries.
  for (const std::size_t n : {0u, 1u, 15u, 16u, 17u, 31u, 32u, 33u, 52u, 68u}) {
    std::vector<std::uint8_t> msg(n);
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next());

    const Block tag = mac->compute(msg);
    EXPECT_EQ(tag, mac->compute(msg)) << "deterministic at n=" << n;
    EXPECT_TRUE(mac->verify(msg, tag));

    if (n > 0) {
      auto tampered = msg;
      tampered[n / 2] ^= 0x80;
      EXPECT_NE(mac->compute(tampered), tag) << "bit flip must change tag, n=" << n;
    }
  }

  // Distinct keys -> distinct tags.
  const auto other = make_mac(GetParam(), rng.block());
  const std::vector<std::uint8_t> msg = {42};
  EXPECT_NE(mac->compute(msg), other->compute(msg));
}

INSTANTIATE_TEST_SUITE_P(BothPrimitives, MacKindTest,
                         ::testing::Values(MacKind::kEm2, MacKind::kAesCmac));

TEST(Mac, PaddingDomainSeparation) {
  // CMAC property: "0x01" and "0x01 0x80" style confusions must not collide.
  const Block key{};
  Em2Mac mac(key);
  const std::vector<std::uint8_t> a = {0x01};
  const std::vector<std::uint8_t> b = {0x01, 0x80};
  EXPECT_NE(mac.compute(a), mac.compute(b));
}

// ---------- DRKey ----------

TEST(DrKey, DeterministicPerSessionAndSecret) {
  Xoshiro256 rng(5);
  const Block secret = rng.block();
  const SessionId session = rng.block();

  DrKey drkey(secret);
  EXPECT_EQ(drkey.derive(session), drkey.derive(session));

  const SessionId other_session = rng.block();
  EXPECT_NE(drkey.derive(session), drkey.derive(other_session));

  DrKey other_node(rng.block());
  EXPECT_NE(drkey.derive(session), other_node.derive(session));
}

TEST(DrKey, PathKeysMatchPerNodeDerivation) {
  Xoshiro256 rng(6);
  std::vector<Block> secrets{rng.block(), rng.block(), rng.block()};
  const SessionId session = rng.block();

  const auto keys = derive_path_keys(secrets, session);
  ASSERT_EQ(keys.size(), 3u);
  for (std::size_t i = 0; i < secrets.size(); ++i) {
    EXPECT_EQ(keys[i], DrKey(secrets[i]).derive(session));
  }
}

// ---------- SipHash ----------

TEST(SipHash, ReferenceVector) {
  // From the SipHash reference implementation test vectors:
  // key = 000102...0f, input = 00 01 02 ... (len 15 shown here).
  SipKey key{};
  for (int i = 0; i < 16; ++i) key[i] = static_cast<std::uint8_t>(i);
  std::vector<std::uint8_t> input;
  for (int i = 0; i < 15; ++i) input.push_back(static_cast<std::uint8_t>(i));
  EXPECT_EQ(siphash24(key, input), 0xa129ca6149be45e5ULL);
}

TEST(SipHash, EmptyInputVector) {
  SipKey key{};
  for (int i = 0; i < 16; ++i) key[i] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(siphash24(key, {}), 0x726fdb47dd0e0e31ULL);
}

TEST(SipHash, KeyednessAndSpread) {
  SipKey a{};
  SipKey b{};
  b[0] = 1;
  const std::vector<std::uint8_t> msg = {'d', 'i', 'p'};
  EXPECT_NE(siphash24(a, msg), siphash24(b, msg));
}

// ---------- PRNG ----------

TEST(Xoshiro, DeterministicAndSeedSensitive) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  Xoshiro256 c(43);
  for (int i = 0; i < 10; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    EXPECT_NE(va, c.next());
  }
}

TEST(Xoshiro, BelowRespectsBound) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256 rng(9);
  double sum = 0;
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 1000.0, 0.5, 0.05);
}

// ---------- helpers ----------

TEST(BlockHelpers, ConstantTimeEqual) {
  Block a{};
  Block b{};
  EXPECT_TRUE(block_equal_ct(a, b));
  b[15] = 1;
  EXPECT_FALSE(block_equal_ct(a, b));
}

TEST(BlockHelpers, FromToSpanShorterThanBlock) {
  const std::array<std::uint8_t, 3> shorty = {1, 2, 3};
  const Block b = block_from(shorty);
  EXPECT_EQ(b[0], 1);
  EXPECT_EQ(b[2], 3);
  EXPECT_EQ(b[3], 0);

  std::array<std::uint8_t, 5> out{};
  block_to(b, out);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[4], 0);
}

// ---- multi-block batch APIs: the scalar calls are the oracle. Sizes span
// the Aes128::kMaxLanes strip width (below, exact, remainder, multi-strip)
// so every lockstep tail path is exercised.

TEST(BatchCrypto, Aes128EncryptBlocksMatchesScalar) {
  Xoshiro256 rng(0xBA7C);
  const Aes128 cipher(rng.block());
  const std::size_t sizes[] = {0, 1, 2, 7, 8, 9, 15, 16, 17, 33};
  for (const std::size_t n : sizes) {
    std::vector<Block> batch(n);
    for (auto& b : batch) b = rng.block();
    std::vector<Block> scalar = batch;
    cipher.encrypt_blocks(batch.data(), n);
    for (auto& b : scalar) cipher.encrypt(b);
    EXPECT_EQ(batch, scalar) << "n=" << n;
  }
  // Free-function spelling used by the burst pipeline.
  Block one = rng.block();
  Block expect = one;
  cipher.encrypt(expect);
  aes128_encrypt_blocks(cipher, &one, 1);
  EXPECT_EQ(one, expect);
}

TEST(BatchCrypto, EvenMansour2EncryptBlocksMatchesScalar) {
  Xoshiro256 rng(0x2E11);
  const EvenMansour2 cipher(rng.block());
  const std::size_t sizes[] = {0, 1, 3, 8, 9, 16, 31};
  for (const std::size_t n : sizes) {
    std::vector<Block> batch(n);
    for (auto& b : batch) b = rng.block();
    std::vector<Block> scalar = batch;
    cipher.encrypt_blocks(batch.data(), n);
    for (auto& b : scalar) cipher.encrypt(b);
    EXPECT_EQ(batch, scalar) << "n=" << n;
  }
}

TEST(BatchCrypto, EvenMansour2MultiKeyLanesMatchPerKeyScalar) {
  Xoshiro256 rng(0x2E12);
  // Distinct whitening keys per lane — the shared-P1/P2 property the burst
  // MAC wave depends on.
  const std::size_t n = 11;
  std::vector<EvenMansour2> ciphers;
  ciphers.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ciphers.emplace_back(rng.block());
  std::vector<const EvenMansour2*> lanes(n);
  for (std::size_t i = 0; i < n; ++i) lanes[i] = &ciphers[i];

  std::vector<Block> batch(n);
  for (auto& b : batch) b = rng.block();
  std::vector<Block> scalar = batch;
  EvenMansour2::encrypt_blocks_multi(batch.data(), lanes.data(), n);
  for (std::size_t i = 0; i < n; ++i) ciphers[i].encrypt(scalar[i]);
  EXPECT_EQ(batch, scalar);
}

TEST(BatchCrypto, TwoEmMacBlocksMatchesEm2MacOracle) {
  Xoshiro256 rng(0x3AC5);
  // Varied lengths (empty, partial, exact, multi-block) and a mix of
  // repeated and distinct keys: repeats hit the shared-key-schedule path,
  // length changes cut the lockstep strips.
  const std::size_t lengths[] = {0, 1, 15, 16, 17, 32, 33, 100, 16, 16};
  const Block shared_key = rng.block();
  std::vector<std::vector<std::uint8_t>> messages;
  std::vector<Block> keys;
  for (std::size_t i = 0; i < std::size(lengths); ++i) {
    std::vector<std::uint8_t> m(lengths[i]);
    for (auto& byte : m) byte = static_cast<std::uint8_t>(rng.next());
    messages.push_back(std::move(m));
    keys.push_back(i % 3 == 0 ? shared_key : rng.block());
  }

  std::vector<Block> tags(messages.size());
  std::vector<MacBatchItem> items(messages.size());
  for (std::size_t i = 0; i < messages.size(); ++i) {
    items[i] = {keys[i], messages[i], &tags[i]};
  }
  two_em_mac_blocks(items);

  for (std::size_t i = 0; i < messages.size(); ++i) {
    const Block want = Em2Mac(keys[i]).compute(messages[i]);
    EXPECT_EQ(tags[i], want) << "message " << i << " len " << messages[i].size();
  }
}

TEST(BatchCrypto, DrKeyDeriveBlocksMatchesScalarDerive) {
  Xoshiro256 rng(0xD12E);
  const DrKey drkey(rng.block());
  const std::size_t n = 13;
  std::vector<SessionId> sessions(n);
  for (auto& s : sessions) s = rng.block();
  std::vector<Block> batch(n);
  drkey.derive_blocks(sessions.data(), batch.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(batch[i], drkey.derive(sessions[i])) << "session " << i;
  }
}

}  // namespace
}  // namespace dip::crypto
