// Simulator substrate: event ordering, link timing, loss, and topology.
#include <gtest/gtest.h>

#include "dip/netsim/dip_node.hpp"
#include "dip/netsim/event_loop.hpp"
#include "dip/netsim/topology.hpp"

namespace dip::netsim {
namespace {

// ---------- event loop ----------

TEST(EventLoop, ExecutesInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(30, [&] { order.push_back(3); });
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(loop.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30u);
}

TEST(EventLoop, TiesBreakByScheduleOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(5, [&] { order.push_back(1); });
  loop.schedule_at(5, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventLoop, EventsCanScheduleEvents) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(1, [&] {
    ++fired;
    loop.schedule_in(10, [&] { ++fired; });
  });
  loop.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(loop.now(), 11u);
}

TEST(EventLoop, DeadlineStopsExecution) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(10, [&] { ++fired; });
  loop.schedule_at(100, [&] { ++fired; });
  EXPECT_EQ(loop.run(50), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.pending(), 1u);
  loop.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventLoop, PastSchedulingClampsToNow) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(50, [&] {
    order.push_back(1);
    loop.schedule_at(10, [&] { order.push_back(2); });  // "in the past"
  });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(loop.now(), 50u);
}

// ---------- network ----------

struct Sink final : Node {
  void on_packet(FaceId face, PacketBytes packet, SimTime now) override {
    arrivals.push_back({face, std::move(packet), now});
  }
  struct Arrival {
    FaceId face;
    PacketBytes packet;
    SimTime at;
  };
  std::vector<Arrival> arrivals;
};

struct Sender final : Node {
  void on_packet(FaceId, PacketBytes, SimTime) override {}
};

TEST(Network, DeliversWithLatencyAndSerialization) {
  Network net;
  Sender a;
  Sink b;
  net.add_node(a);
  net.add_node(b);
  LinkParams params;
  params.latency = 1000;                // 1 us
  params.bandwidth_bps = 8'000'000'000; // 1 byte/ns
  const auto [fa, fb] = net.connect(a, b, params);

  net.send(a, fa, PacketBytes(100, 0xAA));  // 100 ns serialization
  net.run();

  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals[0].face, fb);
  EXPECT_EQ(b.arrivals[0].at, 1100u);
  EXPECT_EQ(b.arrivals[0].packet.size(), 100u);
}

TEST(Network, BackToBackPacketsSerializeInOrder) {
  Network net;
  Sender a;
  Sink b;
  net.add_node(a);
  net.add_node(b);
  LinkParams params;
  params.latency = 0;
  params.bandwidth_bps = 8'000'000'000;
  const auto [fa, fb] = net.connect(a, b, params);

  net.send(a, fa, PacketBytes(100, 1));  // occupies [0,100)
  net.send(a, fa, PacketBytes(100, 2));  // occupies [100,200)
  net.run();

  ASSERT_EQ(b.arrivals.size(), 2u);
  EXPECT_EQ(b.arrivals[0].at, 100u);
  EXPECT_EQ(b.arrivals[1].at, 200u);
  EXPECT_EQ(b.arrivals[0].packet[0], 1);
  EXPECT_EQ(b.arrivals[1].packet[0], 2);
}

TEST(Network, LossDropsDeterministically) {
  Network net(/*seed=*/7);
  Sender a;
  Sink b;
  net.add_node(a);
  net.add_node(b);
  LinkParams params;
  params.loss_rate = 0.5;
  const auto [fa, fb] = net.connect(a, b, params);
  (void)fb;

  for (int i = 0; i < 200; ++i) net.send(a, fa, PacketBytes(10));
  net.run();

  const auto& stats = net.stats();
  EXPECT_EQ(stats.transmitted, 200u);
  EXPECT_EQ(stats.delivered + stats.lost, 200u);
  EXPECT_NEAR(static_cast<double>(stats.lost), 100.0, 30.0);
  EXPECT_EQ(b.arrivals.size(), stats.delivered);
}

TEST(Network, UnconnectedFaceCountsDeadSend) {
  Network net;
  Sender a;
  net.add_node(a);
  net.send(a, 0, PacketBytes(10));
  net.run();
  EXPECT_EQ(net.stats().dead_faced, 1u);
  EXPECT_EQ(net.stats().transmitted, 0u);
}

TEST(Network, PeerLookup) {
  Network net;
  Sender a;
  Sink b;
  net.add_node(a);
  net.add_node(b);
  const auto [fa, fb] = net.connect(a, b);
  const auto peer = net.peer_of(a, fa);
  ASSERT_TRUE(peer);
  EXPECT_EQ(peer->first, b.id());
  EXPECT_EQ(peer->second, fb);
  EXPECT_FALSE(net.peer_of(a, 99));
}

TEST(Network, TapSeesEveryDelivery) {
  Network net;
  Sender a;
  Sink b;
  net.add_node(a);
  net.add_node(b);
  const auto [fa, fb] = net.connect(a, b);
  (void)fb;

  int taps = 0;
  net.set_tap([&](NodeId from, NodeId to, FaceId, std::span<const std::uint8_t> data,
                  SimTime) {
    ++taps;
    EXPECT_EQ(from, a.id());
    EXPECT_EQ(to, b.id());
    EXPECT_EQ(data.size(), 3u);
  });
  net.send(a, fa, PacketBytes{1, 2, 3});
  net.run();
  EXPECT_EQ(taps, 1);
}

// ---------- topology builder ----------

TEST(Topology, LinearPathWiring) {
  Network net;
  auto path = make_linear_path(net, 3, make_default_registry(),
                               [](std::size_t i) { return make_basic_env(i); });
  ASSERT_EQ(path->routers.size(), 3u);
  // source <-> r0
  const auto p0 = net.peer_of(path->source, path->source_face);
  ASSERT_TRUE(p0);
  EXPECT_EQ(p0->first, path->routers[0]->id());
  // r_i downstream <-> r_{i+1} upstream
  const auto p1 = net.peer_of(*path->routers[0], path->downstream_face[0]);
  ASSERT_TRUE(p1);
  EXPECT_EQ(p1->first, path->routers[1]->id());
  // r2 downstream <-> destination
  const auto p2 = net.peer_of(*path->routers[2], path->downstream_face[2]);
  ASSERT_TRUE(p2);
  EXPECT_EQ(p2->first, path->destination.id());
  // default egress points downstream
  EXPECT_EQ(path->routers[0]->env().default_egress, path->downstream_face[0]);
}

TEST(Topology, ZeroHopPathConnectsHostsDirectly) {
  Network net;
  auto path = make_linear_path(net, 0, make_default_registry(),
                               [](std::size_t i) { return make_basic_env(i); });
  bool got = false;
  path->destination.set_receiver(
      [&](FaceId, PacketBytes, SimTime) { got = true; });
  path->source.send(path->source_face, PacketBytes{1});
  net.run();
  EXPECT_TRUE(got);
}

TEST(Topology, DefaultRegistryCoversTable1) {
  const auto registry = make_default_registry();
  using core::OpKey;
  for (const auto key :
       {OpKey::kMatch32, OpKey::kMatch128, OpKey::kSource, OpKey::kFib, OpKey::kPit,
        OpKey::kParm, OpKey::kMac, OpKey::kMark, OpKey::kDag, OpKey::kIntent,
        OpKey::kPass, OpKey::kTelemetry, OpKey::kHvf}) {
    EXPECT_TRUE(registry->contains(key)) << core::op_key_name(key);
  }
  EXPECT_FALSE(registry->contains(OpKey::kVer)) << "F_ver is host-side only";
}

}  // namespace
}  // namespace dip::netsim
