// Robustness ("fuzz") tests: every wire-format parser and the router engine
// must survive arbitrary and adversarially mutated bytes — no crashes, no
// UB (run under sanitizers to get full value), errors reported as values.
//
// Deterministic seeds: failures reproduce exactly.
#include <gtest/gtest.h>

#include "dip/bootstrap/capability.hpp"
#include "dip/core/ip.hpp"
#include "dip/core/router.hpp"
#include "dip/crypto/random.hpp"
#include "dip/dtn/custody.hpp"
#include "dip/legacy/border.hpp"
#include "dip/legacy/tunnel.hpp"
#include "dip/legacy/ipv4.hpp"
#include "dip/legacy/ipv6.hpp"
#include "dip/netfence/netfence.hpp"
#include "dip/netsim/topology.hpp"
#include "dip/ndn/ndn.hpp"
#include "dip/opt/opt.hpp"
#include "dip/security/error_message.hpp"
#include "dip/telemetry/telemetry.hpp"
#include "dip/xia/xia.hpp"
#include "proptest/proptest.hpp"

namespace dip {
namespace {

std::vector<std::uint8_t> random_bytes(crypto::Xoshiro256& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(rng.below(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

/// Overlay key shared by the fuzz routers and the custody corpus packets so
/// unmutated custody tags MAC-verify and mutated ones exercise the reject
/// paths.
const crypto::Block& custody_fuzz_key() {
  static const crypto::Block key = crypto::Xoshiro256(0xD7A).block();
  return key;
}

struct FuzzRouter {
  FuzzRouter() {
    registry = netsim::make_default_registry();
    dtn::add_custody_modules(*registry);
    auto env = netsim::make_basic_env(1);
    env.fib32->insert({fib::ipv4_from_u32(0x0A000000), 8}, 1);
    env.fib128->insert({fib::parse_ipv6("2001:db8::").value(), 32}, 1);
    env.content_store.emplace(64);
    env.custody_key = custody_fuzz_key();
    env.accept_custody = true;
    router.emplace(std::move(env), registry.get());
  }
  std::shared_ptr<core::OpRegistry> registry;
  std::optional<core::Router> router;
};

// ---------- persisted corpus replays before any fresh generation ----------

TEST(Fuzz, CorpusReplaysFirst) {
  // Every shrunk reproducer from past failures (tests/corpus/*.hex) goes
  // through the parsers and both router validation modes before this file
  // generates anything new — regressions reproduce deterministically and
  // first.
  const auto corpus = proptest::load_corpus(DIP_CORPUS_DIR);
  ASSERT_FALSE(corpus.empty()) << "tests/corpus/ must ship seed entries";
  FuzzRouter strict;
  FuzzRouter lenient;
  lenient.router->set_validation(core::ValidationMode::kLenient);
  for (const auto& [name, packet] : corpus) {
    (void)core::DipHeader::parse(packet);
    auto bind_probe = packet;
    (void)core::HeaderView::bind(bind_probe);
    auto for_strict = packet;
    const auto s = strict.router->process(for_strict, 0, 0);
    auto for_lenient = packet;
    const auto l = lenient.router->process(for_lenient, 0, 0);
    // The fuzz invariant (see SeededGrammarStrictAndLenientVerdictsStayCoherent):
    // bind failures split by mode, everything else must agree.
    if (core::HeaderView::bind(bind_probe).has_value()) {
      EXPECT_EQ(s.action, l.action) << name;
      EXPECT_EQ(s.reason, l.reason) << name;
    } else {
      EXPECT_EQ(s.reason, core::DropReason::kMalformed) << name;
      EXPECT_EQ(l.reason, core::DropReason::kCorruptQuarantine) << name;
    }
  }
}

// ---------- pure parsers on random input ----------

TEST(Fuzz, DipHeaderParseNeverCrashes) {
  crypto::Xoshiro256 rng(1);
  int parsed = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto data = random_bytes(rng, 256);
    const auto result = core::DipHeader::parse(data);
    if (result) {
      ++parsed;
      // Anything that parses must re-serialize to the same bytes prefix.
      const auto wire = result->serialize();
      ASSERT_LE(wire.size(), data.size());
      EXPECT_TRUE(std::equal(wire.begin(), wire.end(), data.begin()))
          << "parse/serialize must round-trip";
    }
  }
  // The checksum makes random parses rare but not impossible over 20k tries.
  SUCCEED() << parsed << " random blobs parsed as DIP";
}

TEST(Fuzz, HeaderViewBindNeverCrashes) {
  crypto::Xoshiro256 rng(2);
  for (int i = 0; i < 20000; ++i) {
    auto data = random_bytes(rng, 256);
    const auto view = core::HeaderView::bind(data);
    if (view) {
      // The views must stay in bounds.
      EXPECT_LE(view->header_size(), data.size());
      EXPECT_EQ(view->locations().size() + view->payload().size() +
                    core::BasicHeader::kWireSize +
                    view->fns().size() * core::FnTriple::kWireSize,
                data.size());
    }
  }
}

TEST(Fuzz, DagParseNeverCrashes) {
  crypto::Xoshiro256 rng(3);
  for (int i = 0; i < 20000; ++i) {
    const auto data = random_bytes(rng, 300);
    const auto result = xia::parse_dag(data);
    if (result) {
      EXPECT_TRUE(result->dag.validate());
    }
  }
}

TEST(Fuzz, LegacyParsersNeverCrash) {
  crypto::Xoshiro256 rng(4);
  for (int i = 0; i < 20000; ++i) {
    const auto data = random_bytes(rng, 80);
    (void)legacy::Ipv4Header::parse(data);
    (void)legacy::Ipv6Header::parse(data);
    (void)legacy::add_from_legacy(data);
    (void)legacy::strip_to_legacy(data);
  }
}

TEST(Fuzz, SmallCodecsNeverCrash) {
  crypto::Xoshiro256 rng(5);
  for (int i = 0; i < 20000; ++i) {
    const auto data = random_bytes(rng, 64);
    (void)bootstrap::CapabilitySet::parse(data);
    (void)security::FnUnsupportedError::parse(data);
    (void)telemetry::read_telemetry(data);
    (void)netfence::CcTag::read(data);
    (void)fib::parse_ipv4(std::string(data.begin(), data.end()));
    (void)fib::parse_ipv6(std::string(data.begin(), data.end()));
  }
}

// ---------- router on random and mutated packets ----------

TEST(Fuzz, RouterSurvivesRandomBytes) {
  FuzzRouter f;
  crypto::Xoshiro256 rng(6);
  for (int i = 0; i < 20000; ++i) {
    auto data = random_bytes(rng, 512);
    const auto result = f.router->process(data, static_cast<core::FaceId>(rng.below(8)),
                                          rng.next());
    (void)result;
  }
  SUCCEED();
}

std::vector<std::vector<std::uint8_t>> valid_packet_corpus() {
  std::vector<std::vector<std::uint8_t>> corpus;
  corpus.push_back(core::make_dip32_header(fib::ipv4_from_u32(0x0A000001),
                                           fib::ipv4_from_u32(0x0B000001))
                       ->serialize());
  corpus.push_back(core::make_dip128_header(fib::parse_ipv6("2001:db8::1").value(),
                                            fib::parse_ipv6("2001:db8::2").value())
                       ->serialize());
  corpus.push_back(ndn::make_interest_header32(0xAABBCCDD)->serialize());
  corpus.push_back(ndn::make_data_header32(0xAABBCCDD)->serialize());

  crypto::Xoshiro256 rng(7);
  const std::vector<crypto::Block> secrets{rng.block()};
  const auto session = opt::negotiate_session(rng.block(), secrets, rng.block());
  const std::vector<std::uint8_t> payload = {'f'};
  auto opt_wire = opt::make_opt_header(session, payload, 1)->serialize();
  opt_wire.push_back('f');
  corpus.push_back(std::move(opt_wire));

  const auto dag = xia::make_service_dag(xia::xid_from_label("a"),
                                         xia::xid_from_label("h"), fib::XidType::kSid,
                                         xia::xid_from_label("s"));
  corpus.push_back(xia::make_xia_header(dag)->serialize());

  // dip32+custody: a MAC-valid requested fragment and its custody ACK. The
  // unmutated copies traverse the full accept/consume paths; bit-flipped
  // copies land on the MAC-reject and geometry-check branches.
  dtn::CustodyTag tag;
  tag.flags = dtn::kCustodyRequest;
  tag.bundle_id = 0xFB2D0001;
  tag.custodian = 9;
  tag.chain_digest = dtn::chain_mix(0, 9);
  dtn::FragInfo frag;
  frag.index = 0;
  frag.total = 2;
  frag.bundle_id = tag.bundle_id;
  auto custody_wire = dtn::make_dip32_custody_header(fib::ipv4_from_u32(0x0A000001),
                                                     fib::ipv4_from_u32(0x0B000001),
                                                     tag, frag, custody_fuzz_key())
                          ->serialize();
  custody_wire.push_back('f');
  corpus.push_back(std::move(custody_wire));
  corpus.push_back(dtn::make_custody_ack_header(fib::ipv4_from_u32(0x0A000009),
                                                fib::ipv4_from_u32(0x0A000001), tag,
                                                frag, custody_fuzz_key())
                       ->serialize());
  return corpus;
}

TEST(Fuzz, RouterSurvivesBitFlippedValidPackets) {
  FuzzRouter f;
  crypto::Xoshiro256 rng(8);
  const auto corpus = valid_packet_corpus();

  for (int i = 0; i < 30000; ++i) {
    auto packet = corpus[rng.below(corpus.size())];
    // 1..4 random byte mutations; occasionally fix the checksum back up so
    // the packet reaches the FN dispatch path instead of dying at parse.
    const std::size_t flips = 1 + rng.below(4);
    for (std::size_t k = 0; k < flips; ++k) {
      packet[rng.below(packet.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    }
    if (rng.below(2) == 0 && packet.size() >= 6) {
      packet[5] = core::basic_header_checksum(
          std::span<const std::uint8_t>(packet).subspan(0, 5));
    }
    (void)f.router->process(packet, 0, rng.next());
  }
  SUCCEED();
}

TEST(Fuzz, RouterSurvivesTruncations) {
  FuzzRouter f;
  const auto corpus = valid_packet_corpus();
  for (const auto& packet : corpus) {
    for (std::size_t cut = 0; cut <= packet.size(); ++cut) {
      auto truncated = packet;
      truncated.resize(cut);
      (void)f.router->process(truncated, 0, 0);
    }
  }
  SUCCEED();
}

TEST(Fuzz, TunnelAndBorderSurviveMutations) {
  crypto::Xoshiro256 rng(9);
  const auto left = fib::parse_ipv6("::1").value();
  const auto right = fib::parse_ipv6("::2").value();
  const legacy::Ipv6Tunnel tunnel(left, right);
  const auto corpus = valid_packet_corpus();

  for (int i = 0; i < 5000; ++i) {
    auto encapsulated = tunnel.encapsulate(corpus[rng.below(corpus.size())]);
    const std::size_t flips = 1 + rng.below(3);
    for (std::size_t k = 0; k < flips; ++k) {
      encapsulated[rng.below(encapsulated.size())] ^=
          static_cast<std::uint8_t>(1 + rng.below(255));
    }
    (void)legacy::Ipv6Tunnel(right, left).decapsulate(encapsulated);
    (void)legacy::strip_to_legacy(encapsulated);
  }
  SUCCEED();
}

// ---------- structured FN-grammar fuzzing ----------
//
// Instead of flipping bits in valid packets, build wire images straight
// from the FN-triple grammar with adversarial coordinates: out-of-range
// field_loc/field_len, zero lengths, host tags on broken ranges, unknown
// keys, and locations blocks shorter than declared. The checksum is always
// valid so every packet reaches structural validation, not the parse wall.

/// Raw wire image: valid basic header (correct checksum), then `fns`, then
/// `actual_loc_bytes` of locations — which may disagree with the declared
/// `loc_len` to model truncation in flight.
std::vector<std::uint8_t> craft_wire(std::span<const core::FnTriple> fns,
                                     std::uint16_t declared_loc_len,
                                     std::size_t actual_loc_bytes) {
  std::vector<std::uint8_t> p;
  p.push_back(0);                                        // next_header
  p.push_back(static_cast<std::uint8_t>(fns.size()));    // fn_num
  p.push_back(64);                                       // hop_limit
  const auto param = static_cast<std::uint16_t>((declared_loc_len & 0x03FF) << 1);
  p.push_back(static_cast<std::uint8_t>(param >> 8));
  p.push_back(static_cast<std::uint8_t>(param & 0xFF));
  p.push_back(core::basic_header_checksum(p));
  for (const core::FnTriple& fn : fns) {
    for (const std::uint16_t v : {fn.field_loc, fn.field_len, fn.op}) {
      p.push_back(static_cast<std::uint8_t>(v >> 8));
      p.push_back(static_cast<std::uint8_t>(v & 0xFF));
    }
  }
  for (std::size_t i = 0; i < actual_loc_bytes; ++i) {
    p.push_back(static_cast<std::uint8_t>(0xA5 ^ i));
  }
  return p;
}

TEST(Fuzz, OutOfRangeTriplesDropStrictAndQuarantineLenient) {
  // Every triple here addresses bits outside an 8-byte locations block (or
  // is zero-length, which the wire grammar forbids). Strict mode must drop
  // each as malformed; lenient mode must quarantine each, once.
  const core::FnTriple adversarial[] = {
      core::FnTriple::router(0, 65, core::OpKey::kFib),       // 1 bit past end
      core::FnTriple::router(64, 1, core::OpKey::kFib),       // starts past end
      core::FnTriple::router(0xFFFF, 0xFFFF, core::OpKey::kFib),
      core::FnTriple::router(0xFFF8, 8, core::OpKey::kPit),
      core::FnTriple::router(0, 0, core::OpKey::kFib),        // zero length
      core::FnTriple::host(0xFFFF, 0xFFFF, core::OpKey::kMac),  // host tag too
      {32, 64, 0x7FFF},                                       // unknown key
  };

  FuzzRouter strict;
  FuzzRouter lenient;
  lenient.router->set_validation(core::ValidationMode::kLenient);

  std::uint64_t expected_quarantined = 0;
  for (const core::FnTriple& fn : adversarial) {
    const auto packet = craft_wire({&fn, 1}, 8, 8);
    ASSERT_FALSE(core::DipHeader::parse(packet).has_value());

    auto for_strict = packet;
    const auto s = strict.router->process(for_strict, 0, 0);
    EXPECT_EQ(s.action, core::Action::kDrop);
    EXPECT_EQ(s.reason, core::DropReason::kMalformed);

    auto for_lenient = packet;
    const auto l = lenient.router->process(for_lenient, 0, 0);
    EXPECT_EQ(l.action, core::Action::kDrop);
    EXPECT_EQ(l.reason, core::DropReason::kCorruptQuarantine);
    ++expected_quarantined;
    EXPECT_EQ(lenient.router->env().counters.quarantined.load(), expected_quarantined);
  }
  EXPECT_EQ(strict.router->env().counters.quarantined.load(), 0u);
}

TEST(Fuzz, TruncatedLocationsBlocksNeverCrashEitherMode) {
  // Declared loc_len of 8 bytes, delivered 0..7: the packet ends before the
  // locations block does (truncation in flight).
  const core::FnTriple fn = core::FnTriple::router(0, 32, core::OpKey::kFib);
  FuzzRouter strict;
  FuzzRouter lenient;
  lenient.router->set_validation(core::ValidationMode::kLenient);

  for (std::size_t actual = 0; actual < 8; ++actual) {
    auto packet = craft_wire({&fn, 1}, 8, actual);
    ASSERT_FALSE(core::HeaderView::bind(packet).has_value());
    auto for_strict = packet;
    EXPECT_EQ(strict.router->process(for_strict, 0, 0).reason,
              core::DropReason::kMalformed);
    auto for_lenient = packet;
    EXPECT_EQ(lenient.router->process(for_lenient, 0, 0).reason,
              core::DropReason::kCorruptQuarantine);
  }
}

TEST(Fuzz, SeededGrammarStrictAndLenientVerdictsStayCoherent) {
  // Seeded grammar fuzzer: random triples (boundary-biased coordinates,
  // host tags, unknown keys), random declared/actual locations sizes, and
  // a random payload tail. Invariant: when the header does not bind, strict
  // says kMalformed and lenient says kCorruptQuarantine; when it binds,
  // both modes return the exact same verdict.
  FuzzRouter strict;
  FuzzRouter lenient;
  lenient.router->set_validation(core::ValidationMode::kLenient);
  crypto::Xoshiro256 rng(11);

  auto coordinate = [&rng]() -> std::uint16_t {
    switch (rng.below(4)) {
      case 0: return static_cast<std::uint16_t>(rng.below(64));       // small
      case 1: return static_cast<std::uint16_t>(rng.below(1024) * 8); // aligned
      case 2: return static_cast<std::uint16_t>(0xFFF0 + rng.below(16));
      default: return static_cast<std::uint16_t>(rng.next());
    }
  };

  std::uint64_t bind_failures = 0;
  for (int i = 0; i < 20000; ++i) {
    std::vector<core::FnTriple> fns(rng.below(7));
    for (core::FnTriple& fn : fns) {
      fn.field_loc = coordinate();
      fn.field_len = coordinate();
      fn.op = static_cast<std::uint16_t>(rng.next());  // any key, any tag
    }
    const auto declared = static_cast<std::uint16_t>(rng.below(1024));
    const std::size_t actual = rng.below(declared + 17);  // short, exact, or long
    auto packet = craft_wire(fns, declared, actual);
    for (std::size_t k = rng.below(32); k > 0; --k) {  // payload tail
      packet.push_back(static_cast<std::uint8_t>(rng.next()));
    }

    auto bind_probe = packet;
    const bool binds = core::HeaderView::bind(bind_probe).has_value();
    auto for_strict = packet;
    const auto s = strict.router->process(for_strict, 0, i);
    auto for_lenient = packet;
    const auto l = lenient.router->process(for_lenient, 0, i);

    if (!binds) {
      ++bind_failures;
      ASSERT_EQ(s.reason, core::DropReason::kMalformed) << "iteration " << i;
      ASSERT_EQ(l.reason, core::DropReason::kCorruptQuarantine) << "iteration " << i;
    } else {
      ASSERT_EQ(s.action, l.action) << "iteration " << i;
      ASSERT_EQ(s.reason, l.reason) << "iteration " << i;
      ASSERT_EQ(s.egress, l.egress) << "iteration " << i;
    }
  }
  EXPECT_GT(bind_failures, 0u);
  EXPECT_EQ(lenient.router->env().counters.quarantined.load(), bind_failures);
}

TEST(Fuzz, CustodyGrammarStrictAndLenientVerdictsAgree) {
  // Adversarial F_custody / F_frag triples: short fields, garbage MACs and
  // geometry, host tags, stray anchors. Custody rejections are protocol
  // verdicts (kMalformed / kAuthFailed), not byte damage — whenever the
  // header binds, strict and lenient must return the same verdict, and the
  // custody-accepting rewrite must leave both routers' packets identical.
  FuzzRouter strict;
  FuzzRouter lenient;
  lenient.router->set_validation(core::ValidationMode::kLenient);
  crypto::Xoshiro256 rng(12);

  for (int i = 0; i < 5000; ++i) {
    std::vector<core::FnTriple> fns;
    if (rng.below(2) == 0) {
      fns.push_back(core::FnTriple::router(0, 32, core::OpKey::kMatch32));
    }
    const auto key = rng.below(2) == 0 ? core::OpKey::kCustody
                                       : core::OpKey::kBundleFrag;
    const auto loc = static_cast<std::uint16_t>(8 * rng.below(16));
    const auto len = static_cast<std::uint16_t>(8 * (1 + rng.below(40)));
    fns.push_back(rng.below(8) == 0 ? core::FnTriple::host(loc, len, key)
                                    : core::FnTriple::router(loc, len, key));
    const std::size_t loc_bytes = 4 + rng.below(61);
    auto packet = craft_wire(fns, static_cast<std::uint16_t>(loc_bytes), loc_bytes);

    auto bind_probe = packet;
    const bool binds = core::HeaderView::bind(bind_probe).has_value();
    auto for_strict = packet;
    const auto s = strict.router->process(for_strict, 0, i);
    auto for_lenient = packet;
    const auto l = lenient.router->process(for_lenient, 0, i);

    if (!binds) {
      ASSERT_EQ(s.reason, core::DropReason::kMalformed) << "iteration " << i;
      ASSERT_EQ(l.reason, core::DropReason::kCorruptQuarantine) << "iteration " << i;
    } else {
      ASSERT_EQ(s.action, l.action) << "iteration " << i;
      ASSERT_EQ(s.reason, l.reason) << "iteration " << i;
      ASSERT_EQ(s.egress, l.egress) << "iteration " << i;
      ASSERT_EQ(for_strict, for_lenient) << "iteration " << i
          << ": custody rewrite diverged between modes";
    }
  }
}

// ---------- structured random headers round-trip ----------

TEST(Fuzz, RandomBuiltHeadersRoundTrip) {
  crypto::Xoshiro256 rng(10);
  for (int i = 0; i < 3000; ++i) {
    core::HeaderBuilder b;
    b.hop_limit(static_cast<std::uint8_t>(rng.below(256)));
    b.parallel(rng.below(2) == 0);
    const std::size_t fields = rng.below(5);
    for (std::size_t k = 0; k < fields; ++k) {
      std::vector<std::uint8_t> field(1 + rng.below(60));
      for (auto& byte : field) byte = static_cast<std::uint8_t>(rng.next());
      const auto key = static_cast<core::OpKey>(1 + rng.below(18));  // incl. custody/frag
      if (rng.below(4) == 0) {
        const auto loc = b.add_location(field);
        b.add_fn(core::FnTriple::host(loc, static_cast<std::uint16_t>(field.size() * 8),
                                      key));
      } else {
        b.add_router_fn(key, field);
      }
    }
    const auto header = b.build();
    ASSERT_TRUE(header.has_value());
    const auto wire = header->serialize();
    const auto back = core::DipHeader::parse(wire);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->fns, header->fns);
    EXPECT_EQ(back->locations, header->locations);
    EXPECT_EQ(back->basic.hop_limit, header->basic.hop_limit);
    EXPECT_EQ(back->basic.parallel, header->basic.parallel);
  }
}

}  // namespace
}  // namespace dip
