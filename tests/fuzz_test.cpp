// Robustness ("fuzz") tests: every wire-format parser and the router engine
// must survive arbitrary and adversarially mutated bytes — no crashes, no
// UB (run under sanitizers to get full value), errors reported as values.
//
// Deterministic seeds: failures reproduce exactly.
#include <gtest/gtest.h>

#include "dip/bootstrap/capability.hpp"
#include "dip/core/ip.hpp"
#include "dip/core/router.hpp"
#include "dip/crypto/random.hpp"
#include "dip/legacy/border.hpp"
#include "dip/legacy/tunnel.hpp"
#include "dip/legacy/ipv4.hpp"
#include "dip/legacy/ipv6.hpp"
#include "dip/netfence/netfence.hpp"
#include "dip/netsim/topology.hpp"
#include "dip/ndn/ndn.hpp"
#include "dip/opt/opt.hpp"
#include "dip/security/error_message.hpp"
#include "dip/telemetry/telemetry.hpp"
#include "dip/xia/xia.hpp"

namespace dip {
namespace {

std::vector<std::uint8_t> random_bytes(crypto::Xoshiro256& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(rng.below(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

// ---------- pure parsers on random input ----------

TEST(Fuzz, DipHeaderParseNeverCrashes) {
  crypto::Xoshiro256 rng(1);
  int parsed = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto data = random_bytes(rng, 256);
    const auto result = core::DipHeader::parse(data);
    if (result) {
      ++parsed;
      // Anything that parses must re-serialize to the same bytes prefix.
      const auto wire = result->serialize();
      ASSERT_LE(wire.size(), data.size());
      EXPECT_TRUE(std::equal(wire.begin(), wire.end(), data.begin()))
          << "parse/serialize must round-trip";
    }
  }
  // The checksum makes random parses rare but not impossible over 20k tries.
  SUCCEED() << parsed << " random blobs parsed as DIP";
}

TEST(Fuzz, HeaderViewBindNeverCrashes) {
  crypto::Xoshiro256 rng(2);
  for (int i = 0; i < 20000; ++i) {
    auto data = random_bytes(rng, 256);
    const auto view = core::HeaderView::bind(data);
    if (view) {
      // The views must stay in bounds.
      EXPECT_LE(view->header_size(), data.size());
      EXPECT_EQ(view->locations().size() + view->payload().size() +
                    core::BasicHeader::kWireSize +
                    view->fns().size() * core::FnTriple::kWireSize,
                data.size());
    }
  }
}

TEST(Fuzz, DagParseNeverCrashes) {
  crypto::Xoshiro256 rng(3);
  for (int i = 0; i < 20000; ++i) {
    const auto data = random_bytes(rng, 300);
    const auto result = xia::parse_dag(data);
    if (result) {
      EXPECT_TRUE(result->dag.validate());
    }
  }
}

TEST(Fuzz, LegacyParsersNeverCrash) {
  crypto::Xoshiro256 rng(4);
  for (int i = 0; i < 20000; ++i) {
    const auto data = random_bytes(rng, 80);
    (void)legacy::Ipv4Header::parse(data);
    (void)legacy::Ipv6Header::parse(data);
    (void)legacy::add_from_legacy(data);
    (void)legacy::strip_to_legacy(data);
  }
}

TEST(Fuzz, SmallCodecsNeverCrash) {
  crypto::Xoshiro256 rng(5);
  for (int i = 0; i < 20000; ++i) {
    const auto data = random_bytes(rng, 64);
    (void)bootstrap::CapabilitySet::parse(data);
    (void)security::FnUnsupportedError::parse(data);
    (void)telemetry::read_telemetry(data);
    (void)netfence::CcTag::read(data);
    (void)fib::parse_ipv4(std::string(data.begin(), data.end()));
    (void)fib::parse_ipv6(std::string(data.begin(), data.end()));
  }
}

// ---------- router on random and mutated packets ----------

struct FuzzRouter {
  FuzzRouter() {
    registry = netsim::make_default_registry();
    auto env = netsim::make_basic_env(1);
    env.fib32->insert({fib::ipv4_from_u32(0x0A000000), 8}, 1);
    env.fib128->insert({fib::parse_ipv6("2001:db8::").value(), 32}, 1);
    env.content_store.emplace(64);
    router.emplace(std::move(env), registry.get());
  }
  std::shared_ptr<core::OpRegistry> registry;
  std::optional<core::Router> router;
};

TEST(Fuzz, RouterSurvivesRandomBytes) {
  FuzzRouter f;
  crypto::Xoshiro256 rng(6);
  for (int i = 0; i < 20000; ++i) {
    auto data = random_bytes(rng, 512);
    const auto result = f.router->process(data, static_cast<core::FaceId>(rng.below(8)),
                                          rng.next());
    (void)result;
  }
  SUCCEED();
}

std::vector<std::vector<std::uint8_t>> valid_packet_corpus() {
  std::vector<std::vector<std::uint8_t>> corpus;
  corpus.push_back(core::make_dip32_header(fib::ipv4_from_u32(0x0A000001),
                                           fib::ipv4_from_u32(0x0B000001))
                       ->serialize());
  corpus.push_back(core::make_dip128_header(fib::parse_ipv6("2001:db8::1").value(),
                                            fib::parse_ipv6("2001:db8::2").value())
                       ->serialize());
  corpus.push_back(ndn::make_interest_header32(0xAABBCCDD)->serialize());
  corpus.push_back(ndn::make_data_header32(0xAABBCCDD)->serialize());

  crypto::Xoshiro256 rng(7);
  const std::vector<crypto::Block> secrets{rng.block()};
  const auto session = opt::negotiate_session(rng.block(), secrets, rng.block());
  const std::vector<std::uint8_t> payload = {'f'};
  auto opt_wire = opt::make_opt_header(session, payload, 1)->serialize();
  opt_wire.push_back('f');
  corpus.push_back(std::move(opt_wire));

  const auto dag = xia::make_service_dag(xia::xid_from_label("a"),
                                         xia::xid_from_label("h"), fib::XidType::kSid,
                                         xia::xid_from_label("s"));
  corpus.push_back(xia::make_xia_header(dag)->serialize());
  return corpus;
}

TEST(Fuzz, RouterSurvivesBitFlippedValidPackets) {
  FuzzRouter f;
  crypto::Xoshiro256 rng(8);
  const auto corpus = valid_packet_corpus();

  for (int i = 0; i < 30000; ++i) {
    auto packet = corpus[rng.below(corpus.size())];
    // 1..4 random byte mutations; occasionally fix the checksum back up so
    // the packet reaches the FN dispatch path instead of dying at parse.
    const std::size_t flips = 1 + rng.below(4);
    for (std::size_t k = 0; k < flips; ++k) {
      packet[rng.below(packet.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    }
    if (rng.below(2) == 0 && packet.size() >= 6) {
      packet[5] = core::basic_header_checksum(
          std::span<const std::uint8_t>(packet).subspan(0, 5));
    }
    (void)f.router->process(packet, 0, rng.next());
  }
  SUCCEED();
}

TEST(Fuzz, RouterSurvivesTruncations) {
  FuzzRouter f;
  const auto corpus = valid_packet_corpus();
  for (const auto& packet : corpus) {
    for (std::size_t cut = 0; cut <= packet.size(); ++cut) {
      auto truncated = packet;
      truncated.resize(cut);
      (void)f.router->process(truncated, 0, 0);
    }
  }
  SUCCEED();
}

TEST(Fuzz, TunnelAndBorderSurviveMutations) {
  crypto::Xoshiro256 rng(9);
  const auto left = fib::parse_ipv6("::1").value();
  const auto right = fib::parse_ipv6("::2").value();
  const legacy::Ipv6Tunnel tunnel(left, right);
  const auto corpus = valid_packet_corpus();

  for (int i = 0; i < 5000; ++i) {
    auto encapsulated = tunnel.encapsulate(corpus[rng.below(corpus.size())]);
    const std::size_t flips = 1 + rng.below(3);
    for (std::size_t k = 0; k < flips; ++k) {
      encapsulated[rng.below(encapsulated.size())] ^=
          static_cast<std::uint8_t>(1 + rng.below(255));
    }
    (void)legacy::Ipv6Tunnel(right, left).decapsulate(encapsulated);
    (void)legacy::strip_to_legacy(encapsulated);
  }
  SUCCEED();
}

// ---------- structured random headers round-trip ----------

TEST(Fuzz, RandomBuiltHeadersRoundTrip) {
  crypto::Xoshiro256 rng(10);
  for (int i = 0; i < 3000; ++i) {
    core::HeaderBuilder b;
    b.hop_limit(static_cast<std::uint8_t>(rng.below(256)));
    b.parallel(rng.below(2) == 0);
    const std::size_t fields = rng.below(5);
    for (std::size_t k = 0; k < fields; ++k) {
      std::vector<std::uint8_t> field(1 + rng.below(60));
      for (auto& byte : field) byte = static_cast<std::uint8_t>(rng.next());
      const auto key = static_cast<core::OpKey>(1 + rng.below(15));
      if (rng.below(4) == 0) {
        const auto loc = b.add_location(field);
        b.add_fn(core::FnTriple::host(loc, static_cast<std::uint16_t>(field.size() * 8),
                                      key));
      } else {
        b.add_router_fn(key, field);
      }
    }
    const auto header = b.build();
    ASSERT_TRUE(header.has_value());
    const auto wire = header->serialize();
    const auto back = core::DipHeader::parse(wire);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->fns, header->fns);
    EXPECT_EQ(back->locations, header->locations);
    EXPECT_EQ(back->basic.hop_limit, header->basic.hop_limit);
    EXPECT_EQ(back->basic.parallel, header->basic.parallel);
  }
}

}  // namespace
}  // namespace dip
