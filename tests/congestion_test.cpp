// Finite link queues: tail drop under bursts, conservation with the new
// drop class, and the NetFence control loop driven by *real* queue
// pressure rather than a synthetic monitor.
#include <gtest/gtest.h>

#include "dip/netfence/netfence.hpp"
#include "dip/netsim/topology.hpp"
#include "dip/netsim/traffic.hpp"

namespace dip::netsim {
namespace {

struct Sink final : Node {
  void on_packet(FaceId, PacketBytes, SimTime) override { ++received; }
  std::uint64_t received = 0;
};

struct Pipe {
  explicit Pipe(LinkParams params, std::uint64_t seed = 1) : net(seed) {
    net.add_node(sender);
    net.add_node(sink);
    std::tie(sender_face, sink_face) = net.connect(sender, sink, params);
  }
  Network net;
  HostNode sender;
  Sink sink;
  FaceId sender_face = 0;
  FaceId sink_face = 0;
};

TEST(FiniteQueue, BurstBeyondBufferTailDrops) {
  LinkParams slow;
  slow.bandwidth_bps = 8'000'000;        // 1 byte/us
  slow.latency = 0;
  slow.max_queue_delay = 1 * kMillisecond;  // buffer holds ~1000 B
  Pipe pipe(slow);

  // 100 x 100 B back to back = 10 ms of serialization against a 1 ms buffer.
  for (int i = 0; i < 100; ++i) {
    pipe.net.send(pipe.sender, pipe.sender_face, PacketBytes(100));
  }
  pipe.net.run();

  const auto& stats = pipe.net.stats();
  EXPECT_GT(stats.queue_dropped, 0u) << "burst must overflow the buffer";
  EXPECT_LT(stats.queue_dropped, 100u) << "but the head of the burst fits";
  EXPECT_EQ(stats.delivered + stats.lost + stats.queue_dropped, stats.transmitted)
      << "conservation with the tail-drop class";
  EXPECT_EQ(pipe.sink.received, stats.delivered);
}

TEST(FiniteQueue, PacedTrafficNeverDrops) {
  LinkParams slow;
  slow.bandwidth_bps = 8'000'000;
  slow.max_queue_delay = 1 * kMillisecond;
  Pipe pipe(slow);

  // CBR at half the link rate: the queue never builds.
  CbrSource::Config config;
  config.rate_bytes_per_sec = 500'000;
  config.packet_size_hint = 100;
  CbrSource source(pipe.sender, pipe.sender_face,
                   [] { return PacketBytes(100); }, config);
  source.start(100 * kMillisecond);
  pipe.net.run();

  EXPECT_EQ(pipe.net.stats().queue_dropped, 0u);
  EXPECT_EQ(pipe.sink.received, source.packets_sent());
}

TEST(FiniteQueue, ZeroMeansInfinite) {
  LinkParams slow;
  slow.bandwidth_bps = 8'000'000;
  slow.max_queue_delay = 0;  // default: infinite buffer
  Pipe pipe(slow);
  for (int i = 0; i < 1000; ++i) {
    pipe.net.send(pipe.sender, pipe.sender_face, PacketBytes(100));
  }
  pipe.net.run();
  EXPECT_EQ(pipe.net.stats().queue_dropped, 0u);
  EXPECT_EQ(pipe.sink.received, 1000u);
}

// End-to-end NetFence over a genuinely congested link: the AIMD sender's
// goodput converges near the bottleneck rate while an open-loop sender at
// the same offered load loses a large fraction to tail drops.
TEST(FiniteQueue, AimdBeatsOpenLoopGoodputUnderRealQueue) {
  const crypto::Block as_key = crypto::Xoshiro256(0xC0FE).block();
  constexpr std::uint64_t kBottleneck = 100'000;  // bytes/sec
  constexpr std::size_t kPacket = 500;

  struct Outcome {
    double goodput = 0;
    double drop_ratio = 0;
  };
  auto run_sender = [&](bool aimd) -> Outcome {
    // Topology: sender -- (fat link) -- router -- (thin link w/ queue) -- sink.
    auto registry = std::make_shared<core::OpRegistry>();
    netfence::CongestionMonitor::Config monitor;
    monitor.capacity_bytes_per_sec = kBottleneck;
    monitor.window = 5 * kMillisecond;
    registry->add(std::make_unique<netfence::CcOp>(as_key, monitor));

    Network net(9);
    HostNode sender;
    Sink sink;
    auto env = make_basic_env(1);
    DipRouterNode router(std::move(env), registry);
    net.add_node(sender);
    net.add_node(router);
    net.add_node(sink);
    const auto [sf, rf_in] = net.connect(sender, router);
    (void)rf_in;
    LinkParams thin;
    thin.bandwidth_bps = kBottleneck * 8;
    thin.max_queue_delay = 10 * kMillisecond;
    const auto [rf_out, kf] = net.connect(router, sink, thin);
    (void)kf;
    router.env().default_egress = rf_out;

    netfence::AimdSender::Config cfg;
    cfg.initial_rate = 400'000;
    cfg.additive_step = 5'000;
    netfence::AimdSender rate(cfg);
    std::uint32_t open_loop_rate = 400'000;

    // 40 rounds of 10 ms each.
    SimTime deadline = 0;
    for (int round = 0; round < 40; ++round) {
      const std::uint32_t current = aimd ? rate.rate() : open_loop_rate;
      const std::uint64_t packets =
          std::max<std::uint64_t>(1, current / 100 / kPacket);
      std::optional<netfence::CcTag> last_tag;
      for (std::uint64_t p = 0; p < packets; ++p) {
        core::HeaderBuilder b;
        netfence::add_cc_fn(b, as_key);
        auto wire = b.build()->serialize();
        wire.resize(kPacket, 0);
        sender.send(0, std::move(wire));
        deadline += (10 * kMillisecond) / packets;
        net.run(deadline);  // paced: the queue is NOT drained between rounds
      }
      // Feedback: read the tag state off the last packet the router emitted
      // is not observable here; instead the receiver-side echo is modeled by
      // asking the router's CcOp state via a fresh probe packet.
      core::HeaderBuilder probe;
      netfence::add_cc_fn(probe, as_key);
      auto probe_wire = probe.build()->serialize();
      const auto verdict = router.router().process(probe_wire, 0, deadline);
      (void)verdict;
      const auto h = core::DipHeader::parse(probe_wire);
      if (h) last_tag = netfence::verify_cc_tag(h->locations, as_key);
      if (aimd && last_tag) rate.on_feedback(*last_tag);
    }

    net.run();  // drain what is still queued
    const double seconds =
        static_cast<double>(std::max(net.now(), deadline)) / kSecond;
    Outcome out;
    out.goodput = static_cast<double>(sink.received) * kPacket / seconds;
    const auto& stats = net.stats();
    out.drop_ratio = stats.transmitted
                         ? static_cast<double>(stats.queue_dropped) /
                               static_cast<double>(stats.transmitted)
                         : 0.0;
    return out;
  };

  const Outcome aimd_out = run_sender(true);
  const Outcome open_out = run_sender(false);

  // Both goodputs are capped by the bottleneck. The difference is waste:
  // the open-loop sender keeps blasting 4x capacity into tail drops, while
  // the AIMD sender backs off and stops overflowing the buffer.
  EXPECT_LE(aimd_out.goodput, kBottleneck * 1.1);
  EXPECT_LE(open_out.goodput, kBottleneck * 1.1);
  // transmitted counts both links (fat ingress + thin egress), so a 75%
  // thin-link drop rate reads as ~0.375 overall.
  EXPECT_GT(open_out.drop_ratio, 0.3) << "open loop: most packets tail-drop";
  EXPECT_LT(aimd_out.drop_ratio, open_out.drop_ratio / 2)
      << "AIMD at least halves the waste";
  EXPECT_GT(aimd_out.goodput, kBottleneck * 0.2)
      << "AIMD must keep meaningful goodput";
}

}  // namespace
}  // namespace dip::netsim
