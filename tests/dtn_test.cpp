// DTN subsystem tests (docs/DTN.md): custody transfer expressed through the
// FN abstraction.
//
//   * wire plumbing — CustodyTag/FragInfo round-trips, MAC verification,
//     dip32+custody composition and field discovery;
//   * op modules — CustodyOp accept/carry/auth-fail through a core::Router,
//     BundleFragOp geometry bounds;
//   * CustodyStore — caps, refusal of live custody, eviction of exhausted
//     entries (deterministic oldest-first), duplicate commits and ACKs;
//   * RetxScheduler — DPS-priced pacing (src/qos earning its keep on the
//     recovery band);
//   * netsim — a seeded multi-second blackout between two custody routers:
//     100% of committed bundles recover; store-full refusals under chaos
//     never lose committed custody;
//   * host reassembly — reordered, duplicated, corrupted, and
//     geometry-conflicting fragments, strict vs lenient;
//   * mesh — a 3x3 torus soak through a blackout window with the
//     conservation ledger balanced at quiescence.
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "dip/core/ip.hpp"
#include "dip/core/router.hpp"
#include "dip/crypto/random.hpp"
#include "dip/dtn/bundle.hpp"
#include "dip/dtn/custody.hpp"
#include "dip/dtn/mesh_dtn.hpp"
#include "dip/dtn/node.hpp"
#include "dip/dtn/retx_sched.hpp"
#include "dip/dtn/store.hpp"
#include "dip/host/retry.hpp"
#include "dip/mesh/event_loop.hpp"
#include "dip/mesh/mesh_net.hpp"
#include "dip/netsim/dip_node.hpp"
#include "dip/netsim/network.hpp"
#include "dip/netsim/topology.hpp"
#include "dip/telemetry/exposition.hpp"

namespace dip {
namespace {

crypto::Block test_key() { return crypto::Xoshiro256(0xD7A).block(); }

std::shared_ptr<core::OpRegistry> custody_registry() {
  auto registry = netsim::make_default_registry();
  dtn::add_custody_modules(*registry);
  return registry;
}

core::RouterEnv custody_env(std::uint32_t node, const crypto::Block& key,
                            bool accept = true) {
  auto env = netsim::make_basic_env(node);
  env.custody_key = key;
  env.accept_custody = accept;
  return env;
}

/// A requested custody tag as the initial custodian `node` would mint it.
dtn::CustodyTag fresh_tag(std::uint32_t bundle, std::uint32_t node) {
  dtn::CustodyTag tag;
  tag.flags = dtn::kCustodyRequest;
  tag.chain_len = 0;
  tag.bundle_id = bundle;
  tag.custodian = node;
  tag.chain_digest = dtn::chain_mix(0, node);
  return tag;
}

/// One dip32+custody fragment packet (header + payload bytes).
std::vector<std::uint8_t> frag_packet(const fib::Ipv4Addr& dst, std::uint32_t bundle,
                                      std::uint16_t index, std::uint16_t total,
                                      std::span<const std::uint8_t> payload,
                                      const crypto::Block& key,
                                      std::uint32_t custodian) {
  dtn::FragInfo frag;
  frag.index = index;
  frag.total = total;
  frag.bundle_id = bundle;
  const auto header = dtn::make_dip32_custody_header(
      dst, dtn::custody_addr(custodian), fresh_tag(bundle, custodian), frag, key);
  EXPECT_TRUE(header.has_value());
  std::vector<std::uint8_t> wire = header->serialize();
  wire.insert(wire.end(), payload.begin(), payload.end());
  return wire;
}

/// Byte offset of the custody tag field within a serialized packet.
std::size_t tag_offset(std::span<const std::uint8_t> packet) {
  const auto header = core::DipHeader::parse(packet);
  EXPECT_TRUE(header.has_value());
  const auto cf = dtn::find_custody_field(header->fns);
  EXPECT_TRUE(cf.has_value());
  return core::BasicHeader::kWireSize + header->fns.size() * core::FnTriple::kWireSize +
         cf->bit_offset / 8;
}

/// Re-read the (possibly rewritten) custody tag out of a packet.
dtn::CustodyTag read_tag(std::span<const std::uint8_t> packet) {
  return dtn::CustodyTag::read(packet.subspan(tag_offset(packet),
                                              dtn::kCustodyTagBytes));
}

// ---- wire plumbing --------------------------------------------------------

TEST(DtnWire, CustodyTagRoundTripsAndMacVerifies) {
  dtn::CustodyTag tag = fresh_tag(0xCAFE1234, 42);
  tag.chain_len = 3;
  tag.prev_custodian = 41;

  std::vector<std::uint8_t> field(dtn::kCustodyTagBytes);
  tag.write(field);
  tag.mac = dtn::CustodyTag::compute_mac(field, test_key(), crypto::MacKind::kEm2);
  tag.write(field);

  const dtn::CustodyTag back = dtn::CustodyTag::read(field);
  EXPECT_EQ(back.flags, tag.flags);
  EXPECT_EQ(back.chain_len, 3);
  EXPECT_EQ(back.prev_custodian, 41);
  EXPECT_EQ(back.bundle_id, 0xCAFE1234u);
  EXPECT_EQ(back.custodian, 42u);
  EXPECT_EQ(back.chain_digest, dtn::chain_mix(0, 42));
  EXPECT_TRUE(back.requested());
  EXPECT_FALSE(back.is_ack());

  ASSERT_TRUE(dtn::verify_custody_tag(field, test_key()).has_value());
  // Any flip — tag bytes or MAC bytes — must fail verification.
  for (const std::size_t at : {std::size_t{0}, std::size_t{9}, std::size_t{20}}) {
    auto forged = field;
    forged[at] ^= 0x01;
    EXPECT_FALSE(dtn::verify_custody_tag(forged, test_key()).has_value()) << at;
  }
  // And so must the wrong key.
  EXPECT_FALSE(
      dtn::verify_custody_tag(field, crypto::Xoshiro256(0xBAD).block()).has_value());
}

TEST(DtnWire, FragInfoRoundTripsAndKeysAreUnique) {
  dtn::FragInfo frag;
  frag.index = 7;
  frag.total = 12;
  frag.bundle_id = 0xAABBCCDD;
  std::vector<std::uint8_t> field(dtn::kFragBytes);
  frag.write(field);
  const dtn::FragInfo back = dtn::FragInfo::read(field);
  EXPECT_EQ(back.index, 7);
  EXPECT_EQ(back.total, 12);
  EXPECT_EQ(back.bundle_id, 0xAABBCCDDu);

  EXPECT_NE(dtn::frag_key(1, 0), dtn::frag_key(0, 1));
  EXPECT_NE(dtn::frag_key(5, 2), dtn::frag_key(5, 3));
  EXPECT_EQ(dtn::frag_key(5, 2), (std::uint64_t{5} << 32) | 2);
}

TEST(DtnWire, Dip32CustodyCompositionCarriesBothFields) {
  const auto dst = dtn::custody_addr(100);
  dtn::FragInfo frag;
  frag.index = 2;
  frag.total = 5;
  frag.bundle_id = 9;
  const auto header = dtn::make_dip32_custody_header(
      dst, dtn::custody_addr(42), fresh_tag(9, 42), frag, test_key());
  ASSERT_TRUE(header.has_value());

  ASSERT_TRUE(dtn::find_custody_field(header->fns).has_value());
  ASSERT_TRUE(dtn::find_frag_field(header->fns).has_value());
  const auto parsed_dst = dtn::dip32_destination(*header);
  ASSERT_TRUE(parsed_dst.has_value());
  EXPECT_TRUE(*parsed_dst == dst);

  // Round-trip through the wire.
  const auto wire = header->serialize();
  const auto back = core::DipHeader::parse(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->fns, header->fns);
  const dtn::CustodyTag tag = read_tag(wire);
  EXPECT_EQ(tag.bundle_id, 9u);
  EXPECT_EQ(tag.custodian, 42u);
}

// ---- op modules through a core::Router ------------------------------------

struct CustodyRig {
  explicit CustodyRig(std::uint32_t node, bool accept = true) {
    registry = custody_registry();
    auto env = custody_env(node, test_key(), accept);
    env.fib32->insert({fib::ipv4_from_u32(0x0A000000), 8}, 1);  // 10/8 -> face 1
    router.emplace(std::move(env), registry.get());
  }
  std::shared_ptr<core::OpRegistry> registry;
  std::optional<core::Router> router;
};

TEST(DtnOps, CustodyOpAcceptsRewritesChainAndReMacs) {
  CustodyRig rig(/*node=*/7);
  std::vector<std::uint8_t> payload{'d', 't', 'n'};
  auto packet =
      frag_packet(dtn::custody_addr(100), /*bundle=*/5, 0, 1, payload, test_key(), 42);

  const auto result = rig.router->process(packet, 0, 0);
  EXPECT_EQ(result.action, core::Action::kForward);
  ASSERT_FALSE(result.egress.empty());
  EXPECT_EQ(result.egress[0], 1u);

  // The tag was rewritten in place: this node took custody.
  const std::size_t at = tag_offset(packet);
  const auto field = std::span<const std::uint8_t>(packet).subspan(
      at, dtn::kCustodyTagBytes);
  const auto tag = dtn::verify_custody_tag(field, test_key());
  ASSERT_TRUE(tag.has_value()) << "accepted tag must be re-MACed";
  EXPECT_EQ(tag->custodian, 7u);
  EXPECT_EQ(tag->prev_custodian, 42u);
  EXPECT_EQ(tag->chain_len, 1);
  EXPECT_EQ(tag->chain_digest, dtn::chain_mix(dtn::chain_mix(0, 42), 7));
  EXPECT_TRUE(tag->requested());

  // A second custody-capable hop extends the same chain.
  CustodyRig next(/*node=*/8);
  const auto r2 = next.router->process(packet, 0, 0);
  EXPECT_EQ(r2.action, core::Action::kForward);
  const auto tag2 = dtn::verify_custody_tag(
      std::span<const std::uint8_t>(packet).subspan(at, dtn::kCustodyTagBytes),
      test_key());
  ASSERT_TRUE(tag2.has_value());
  EXPECT_EQ(tag2->custodian, 8u);
  EXPECT_EQ(tag2->prev_custodian, 7u);
  EXPECT_EQ(tag2->chain_len, 2);
  EXPECT_EQ(tag2->chain_digest,
            dtn::chain_mix(dtn::chain_mix(dtn::chain_mix(0, 42), 7), 8));
}

TEST(DtnOps, CustodyOpCarriesUntouchedOnNonAcceptingNode) {
  CustodyRig rig(/*node=*/7, /*accept=*/false);
  auto packet = frag_packet(dtn::custody_addr(100), 5, 0, 1, {}, test_key(), 42);
  const std::size_t at = tag_offset(packet);
  const std::vector<std::uint8_t> before(packet.begin() + static_cast<std::ptrdiff_t>(at),
                                         packet.begin() +
                                             static_cast<std::ptrdiff_t>(
                                                 at + dtn::kCustodyTagBytes));

  const auto result = rig.router->process(packet, 0, 0);
  EXPECT_EQ(result.action, core::Action::kForward);
  const std::vector<std::uint8_t> after(packet.begin() + static_cast<std::ptrdiff_t>(at),
                                        packet.begin() +
                                            static_cast<std::ptrdiff_t>(
                                                at + dtn::kCustodyTagBytes));
  EXPECT_EQ(before, after) << "non-accepting nodes forward the tag untouched";
}

TEST(DtnOps, CustodyOpCarriesAcksWithoutRewriting) {
  CustodyRig rig(/*node=*/7);
  dtn::FragInfo frag;
  frag.bundle_id = 5;
  const auto ack = dtn::make_custody_ack_header(
      dtn::custody_addr(42), dtn::custody_addr(8), fresh_tag(5, 8), frag, test_key());
  ASSERT_TRUE(ack.has_value());
  auto packet = ack->serialize();
  const std::size_t at = tag_offset(packet);
  const dtn::CustodyTag before = read_tag(packet);
  EXPECT_TRUE(before.is_ack());

  const auto result = rig.router->process(packet, 0, 0);
  EXPECT_EQ(result.action, core::Action::kForward);
  const dtn::CustodyTag after = dtn::CustodyTag::read(
      std::span<const std::uint8_t>(packet).subspan(at, dtn::kCustodyTagBytes));
  EXPECT_EQ(after.custodian, before.custodian) << "ACK tags are never accepted";
  EXPECT_EQ(after.chain_len, before.chain_len);
}

TEST(DtnOps, CustodyOpDropsForgedMacAsAuthFailed) {
  CustodyRig rig(/*node=*/7);
  auto packet = frag_packet(dtn::custody_addr(100), 5, 0, 1, {}, test_key(), 42);
  packet[tag_offset(packet) + 16] ^= 0x40;  // first MAC byte

  const auto result = rig.router->process(packet, 0, 0);
  EXPECT_EQ(result.action, core::Action::kDrop);
  EXPECT_EQ(result.reason, core::DropReason::kAuthFailed);
}

TEST(DtnOps, CustodyOpRejectsShortFieldAsMalformed) {
  CustodyRig rig(/*node=*/7);
  core::HeaderBuilder b;
  b.add_router_fn(core::OpKey::kMatch32, dtn::custody_addr(100).bytes);
  const auto short_field = crypto::Xoshiro256(1).block();  // 16 < 32 bytes
  b.add_router_fn(core::OpKey::kCustody, short_field);
  const auto header = b.build();
  ASSERT_TRUE(header.has_value());
  auto packet = header->serialize();

  const auto result = rig.router->process(packet, 0, 0);
  EXPECT_EQ(result.action, core::Action::kDrop);
  EXPECT_EQ(result.reason, core::DropReason::kMalformed);
}

TEST(DtnOps, BundleFragOpBoundsChecksGeometry) {
  // Good geometry forwards.
  {
    CustodyRig rig(7);
    auto packet = frag_packet(dtn::custody_addr(100), 5, 3, 8, {}, test_key(), 42);
    EXPECT_EQ(rig.router->process(packet, 0, 0).action, core::Action::kForward);
  }
  // total == 0 and index >= total are malformed.
  for (const auto [index, total] :
       {std::pair<std::uint16_t, std::uint16_t>{0, 0},
        std::pair<std::uint16_t, std::uint16_t>{8, 8},
        std::pair<std::uint16_t, std::uint16_t>{9, 4}}) {
    CustodyRig rig(7);
    auto packet =
        frag_packet(dtn::custody_addr(100), 5, index, total, {}, test_key(), 42);
    const auto result = rig.router->process(packet, 0, 0);
    EXPECT_EQ(result.action, core::Action::kDrop) << index << "/" << total;
    EXPECT_EQ(result.reason, core::DropReason::kMalformed) << index << "/" << total;
  }
}

// ---- CustodyStore ---------------------------------------------------------

std::vector<std::uint8_t> bytes_of(std::size_t n, std::uint8_t fill) {
  return std::vector<std::uint8_t>(n, fill);
}

TEST(DtnStore, CommitReleaseAndDuplicateAccounting) {
  dtn::CustodyStore store;
  bool duplicate = true;
  auto* entry = store.commit(dtn::frag_key(1, 0), bytes_of(100, 0xA1), 3, 10, &duplicate);
  ASSERT_NE(entry, nullptr);
  EXPECT_FALSE(duplicate);
  EXPECT_EQ(entry->egress, 3u);
  EXPECT_EQ(store.bundles(), 1u);
  EXPECT_EQ(store.bytes(), 100u);

  // Re-offered fragment: counted, same entry returned.
  auto* again = store.commit(dtn::frag_key(1, 0), bytes_of(100, 0xA1), 3, 20, &duplicate);
  EXPECT_EQ(again, entry);
  EXPECT_TRUE(duplicate);
  EXPECT_EQ(store.stats().duplicate_commits, 1u);
  EXPECT_EQ(store.stats().commits, 1u);

  EXPECT_TRUE(store.release(dtn::frag_key(1, 0)));
  EXPECT_EQ(store.bundles(), 0u);
  EXPECT_EQ(store.bytes(), 0u);
  // The duplicate ACK (chaos links duplicate packets) finds the entry gone.
  EXPECT_FALSE(store.release(dtn::frag_key(1, 0)));
  EXPECT_EQ(store.stats().duplicate_acks, 1u);
  EXPECT_EQ(store.stats().released, 1u);
  EXPECT_EQ(store.stats().bytes_high_water, 100u);
  EXPECT_EQ(store.stats().bundles_high_water, 1u);
}

TEST(DtnStore, RefusesAdmissionWhenFullOfLiveCustody) {
  dtn::CustodyStore::Limits limits;
  limits.max_bundles = 2;
  dtn::CustodyStore store(limits);
  ASSERT_NE(store.commit(1, bytes_of(10, 1), 0, 0), nullptr);
  ASSERT_NE(store.commit(2, bytes_of(10, 2), 0, 1), nullptr);

  // Both entries still have retry budget: live custody is never evicted.
  EXPECT_EQ(store.commit(3, bytes_of(10, 3), 0, 2), nullptr);
  EXPECT_EQ(store.stats().refused_full, 1u);
  EXPECT_EQ(store.bundles(), 2u);

  // The byte cap refuses too, independently of the bundle cap.
  dtn::CustodyStore::Limits tight;
  tight.max_bytes = 64;
  dtn::CustodyStore small(tight);
  ASSERT_NE(small.commit(1, bytes_of(60, 1), 0, 0), nullptr);
  EXPECT_EQ(small.commit(2, bytes_of(10, 2), 0, 1), nullptr);
  EXPECT_EQ(small.stats().refused_full, 1u);
}

TEST(DtnStore, EvictsExhaustedEntriesOldestFirstUnderPressure) {
  dtn::CustodyStore::Limits limits;
  limits.max_bundles = 3;
  limits.max_retries = 1;
  dtn::CustodyStore store(limits);
  ASSERT_NE(store.commit(1, bytes_of(10, 1), 0, /*now=*/100), nullptr);
  ASSERT_NE(store.commit(2, bytes_of(10, 2), 0, /*now=*/50), nullptr);
  ASSERT_NE(store.commit(3, bytes_of(10, 3), 0, /*now=*/200), nullptr);

  // Exhaust 1 and 2 (one retransmission each spends the budget); 3 stays live.
  EXPECT_TRUE(store.charge_retransmission(1));
  EXPECT_FALSE(store.charge_retransmission(1));
  EXPECT_TRUE(store.charge_retransmission(2));

  // Pressure evicts the *oldest-committed* exhausted entry first: key 2
  // (committed_at 50) before key 1 (committed_at 100).
  ASSERT_NE(store.commit(4, bytes_of(10, 4), 0, 300), nullptr);
  EXPECT_EQ(store.stats().evicted, 1u);
  EXPECT_EQ(store.find(2), nullptr);
  EXPECT_NE(store.find(1), nullptr);

  ASSERT_NE(store.commit(5, bytes_of(10, 5), 0, 400), nullptr);
  EXPECT_EQ(store.stats().evicted, 2u);
  EXPECT_EQ(store.find(1), nullptr);
  EXPECT_NE(store.find(3), nullptr) << "live custody survives every eviction sweep";

  // Only live custody left (3, 4, 5 all hold retry budget): the next commit
  // is refused — live custody is never evicted into.
  EXPECT_EQ(store.commit(6, bytes_of(10, 6), 0, 500), nullptr);
  EXPECT_EQ(store.stats().refused_full, 1u);
  EXPECT_EQ(store.bundles(), 3u);
}

TEST(DtnStore, AbandonCountsAsEviction) {
  dtn::CustodyStore store;
  ASSERT_NE(store.commit(9, bytes_of(10, 9), 0, 0), nullptr);
  EXPECT_TRUE(store.abandon(9));
  EXPECT_FALSE(store.abandon(9));
  EXPECT_EQ(store.stats().evicted, 1u);
  EXPECT_EQ(store.bundles(), 0u);
  EXPECT_EQ(store.bytes(), 0u);
}

TEST(DtnStore, StatsExposeDtnSeries) {
  dtn::CustodyStore store;
  ASSERT_NE(store.commit(1, bytes_of(10, 1), 0, 0), nullptr);
  telemetry::StatsWriter w;
  store.write_stats(w, /*node=*/5);
  const std::string& text = w.text();
  EXPECT_NE(text.find("dip_dtn_store_bundles"), std::string::npos);
  EXPECT_NE(text.find("dip_dtn_commits_total"), std::string::npos);
  EXPECT_NE(text.find("dip_dtn_store_bytes_high_water"), std::string::npos);
  EXPECT_NE(text.find("node=\"5\""), std::string::npos);
}

// ---- RetxScheduler (the qos/DPS pacing seam) ------------------------------

TEST(DtnRetx, IdleLinkFallsBackToMaxGapAndTrafficShrinksIt) {
  dtn::RetxScheduler::Config cfg;
  dtn::RetxScheduler sched(cfg);

  // No observed first-transmission traffic: pace at the floor interval so
  // recovery still progresses.
  EXPECT_EQ(sched.gap_for(1500), cfg.max_gap);
  EXPECT_EQ(sched.primary_rate(), 0u);

  // Sustained foreground traffic: the recovery band gets `share` of it and
  // the gap lands inside the clamp.
  SimTime now = 0;
  for (int i = 0; i < 256; ++i) {
    sched.on_primary(10'000, now);
    now += kMillisecond;
  }
  EXPECT_GT(sched.primary_rate(), 0u);
  const SimDuration gap = sched.gap_for(1500);
  EXPECT_GE(gap, cfg.min_gap);
  EXPECT_LE(gap, cfg.max_gap);
  // Smaller retransmissions never wait longer than bigger ones.
  EXPECT_LE(sched.gap_for(64), gap);
}

// ---- netsim: blackout recovery --------------------------------------------

/// host A -- R1 ==(faulty link)== R2 -- host B. Returns everything the
/// assertions need.
struct BlackoutRig {
  explicit BlackoutRig(netsim::LinkParams middle,
                       dtn::CustodyRouterNode::Config r1_config = {},
                       host::RetryPolicy sender_retry = {})
      : registry(custody_registry()),
        r1(make_env(1), registry, r1_config),
        r2(make_env(2), registry, {}) {
    net.add_node(a);
    net.add_node(r1);
    net.add_node(r2);
    net.add_node(b);
    const auto [fa_, f1a] = net.connect(a, r1);
    const auto [f12, f21] = net.connect(r1, r2, middle);
    const auto [f2b, fb_] = net.connect(r2, b);
    fa = fa_;
    fb = fb_;
    // Route the receiver prefix forward; custody ACKs travel back out the
    // ingress face (the §2.4 reverse-path seam) and need no FIB entries.
    r1.env().fib32->insert(dtn::custody_prefix(100), f12);
    r2.env().fib32->insert(dtn::custody_prefix(100), f2b);

    dtn::BundleSender::Config sc;
    sc.self = dtn::custody_addr(99);
    sc.dst = dtn::custody_addr(100);
    sc.node_id = 99;
    sc.custody_key = test_key();
    sc.frag_payload = 48;
    sc.retry = sender_retry;
    sender.emplace(a, fa, sc);
    a.set_receiver([this](netsim::FaceId, netsim::PacketBytes p, SimTime) {
      sender->on_packet(p);
    });

    dtn::BundleReceiver::Config bc;
    bc.self = dtn::custody_addr(100);
    bc.custody_key = test_key();
    receiver.emplace(b, fb, bc, [this](std::uint32_t id, std::vector<std::uint8_t> p) {
      delivered[id] = std::move(p);
    });
    b.set_receiver([this](netsim::FaceId, netsim::PacketBytes p, SimTime) {
      receiver->on_packet(p);
    });
  }

  static core::RouterEnv make_env(std::uint32_t node) {
    return custody_env(node, test_key());
  }

  netsim::Network net{42};
  netsim::HostNode a, b;
  std::shared_ptr<core::OpRegistry> registry;
  dtn::CustodyRouterNode r1, r2;
  netsim::FaceId fa = 0, fb = 0;
  std::optional<dtn::BundleSender> sender;
  std::optional<dtn::BundleReceiver> receiver;
  std::map<std::uint32_t, std::vector<std::uint8_t>> delivered;
};

TEST(DtnNetsim, CommittedBundlesRecoverThroughMultiSecondBlackout) {
  // The R1--R2 link is dark for the first 2.5 simulated seconds (one
  // blackout window; the period puts the next window far beyond the test).
  netsim::LinkParams middle;
  middle.faults.blackout_period = 600 * kSecond;
  middle.faults.blackout_duration = 2500 * kMillisecond;
  BlackoutRig rig(middle);

  std::vector<std::uint8_t> payload(200);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 7 + 1);
  }
  const std::uint32_t bundle = rig.sender->send(payload);  // t=0: link is dark
  rig.net.run();

  // 100% recovery: the bundle assembled byte-identically after the outage.
  ASSERT_EQ(rig.delivered.size(), 1u);
  EXPECT_EQ(rig.delivered[bundle], payload);
  EXPECT_EQ(rig.receiver->bundles_completed(), 1u);

  // The sender handed custody to R1 (clean first hop) for every fragment...
  EXPECT_EQ(rig.sender->failures(), 0u);
  EXPECT_EQ(rig.sender->in_flight(), 0u);
  EXPECT_EQ(rig.sender->committed(), 5u);  // ceil(200 / 48)

  // ...and R1 carried it across the blackout by retransmitting from its
  // store until R2 ACKed; both stores fully drained.
  EXPECT_GT(rig.r1.store().stats().retransmissions, 0u);
  EXPECT_GT(rig.net.stats().blackholed, 0u);
  EXPECT_EQ(rig.r1.store().bundles(), 0u);
  EXPECT_EQ(rig.r2.store().bundles(), 0u);
  EXPECT_EQ(rig.r1.store().stats().commits, 5u);
  EXPECT_GT(rig.r1.store().stats().bytes_high_water, 0u);
  EXPECT_EQ(rig.r1.store().stats().evicted, 0u) << "committed custody is never lost";
  EXPECT_EQ(rig.r2.store().stats().evicted, 0u);
}

TEST(DtnNetsim, StoreFullRefusalsUnderChaosNeverLoseCommittedBundles) {
  // A chaotic middle link (drops + duplicates) plus a tiny R1 store: most
  // fragments are refused admission on first contact and only commit once
  // earlier custody drains. Refused fragments were never ACKed, so the
  // sender keeps retrying — the recovery contract survives store pressure.
  netsim::LinkParams middle;
  middle.faults.drop_rate = 0.2;
  middle.faults.duplicate_rate = 0.15;
  dtn::CustodyRouterNode::Config r1_config;
  r1_config.limits.max_bundles = 2;
  r1_config.limits.max_bytes = 4096;
  host::RetryPolicy sender_retry;
  sender_retry.max_retries = 10;
  sender_retry.initial_timeout = 50 * kMillisecond;
  BlackoutRig rig(middle, r1_config, sender_retry);

  std::vector<std::uint8_t> payload(8 * 48);  // 8 fragments through 2 slots
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i ^ 0x5A);
  }
  const std::uint32_t bundle = rig.sender->send(payload);
  rig.net.run();

  ASSERT_EQ(rig.delivered.size(), 1u);
  EXPECT_EQ(rig.delivered[bundle], payload);
  EXPECT_EQ(rig.sender->failures(), 0u);
  EXPECT_EQ(rig.sender->committed(), 8u);

  // Store pressure actually fired and was survived.
  EXPECT_GT(rig.r1.store().stats().refused_full, 0u);
  EXPECT_GT(rig.r1.custody_drops(), 0u);
  EXPECT_LE(rig.r1.store().stats().bundles_high_water, 2u);
  EXPECT_EQ(rig.r1.store().bundles(), 0u);
  EXPECT_EQ(rig.r2.store().bundles(), 0u);
  EXPECT_EQ(rig.r1.store().stats().evicted, 0u) << "refusal, never eviction of live custody";
  // The chaos link forced recovery work somewhere: either R1 retransmitted
  // through drops, or duplicate ACK/commit traffic was absorbed.
  EXPECT_GT(rig.r1.store().stats().retransmissions +
                rig.r2.store().stats().duplicate_commits +
                rig.r1.store().stats().duplicate_acks,
            0u);
}

// ---- host reassembly ------------------------------------------------------

struct ReceiverRig {
  explicit ReceiverRig(bool strict = true) {
    net.add_node(rx);
    net.add_node(sink);
    const auto [frx_, fs] = net.connect(rx, sink);
    dtn::BundleReceiver::Config cfg;
    cfg.self = dtn::custody_addr(100);
    cfg.custody_key = test_key();
    cfg.strict = strict;
    receiver.emplace(rx, frx_, cfg, [this](std::uint32_t id, std::vector<std::uint8_t> p) {
      delivered[id] = std::move(p);
    });
  }

  std::vector<std::uint8_t> frag(std::uint32_t bundle, std::uint16_t index,
                                 std::uint16_t total,
                                 std::span<const std::uint8_t> payload) {
    return frag_packet(dtn::custody_addr(100), bundle, index, total, payload,
                       test_key(), /*custodian=*/7);
  }

  netsim::Network net{7};
  netsim::HostNode rx, sink;
  std::optional<dtn::BundleReceiver> receiver;
  std::map<std::uint32_t, std::vector<std::uint8_t>> delivered;
};

TEST(DtnReassembly, ReorderedFragmentsAssembleInIndexOrder) {
  ReceiverRig rig;
  const std::vector<std::uint8_t> p0{'a', 'a'}, p1{'b', 'b'}, p2{'c', 'c'};
  EXPECT_TRUE(rig.receiver->on_packet(rig.frag(1, 2, 3, p2)));
  EXPECT_TRUE(rig.receiver->on_packet(rig.frag(1, 0, 3, p0)));
  EXPECT_EQ(rig.receiver->bundles_completed(), 0u);
  EXPECT_TRUE(rig.receiver->on_packet(rig.frag(1, 1, 3, p1)));

  ASSERT_EQ(rig.receiver->bundles_completed(), 1u);
  EXPECT_EQ(rig.delivered[1], (std::vector<std::uint8_t>{'a', 'a', 'b', 'b', 'c', 'c'}));

  // A duplicate after completion is re-ACKed (the custodian missed our ACK)
  // but never reassembled twice.
  EXPECT_TRUE(rig.receiver->on_packet(rig.frag(1, 1, 3, p1)));
  EXPECT_EQ(rig.receiver->duplicate_fragments(), 1u);
  EXPECT_EQ(rig.receiver->bundles_completed(), 1u);
  EXPECT_EQ(rig.receiver->fragments_received(), 4u);
}

TEST(DtnReassembly, CorruptedFragmentIsRejectedAndCleanCopyCompletes) {
  ReceiverRig rig;
  const std::vector<std::uint8_t> payload{'x', 'y'};
  auto corrupt = rig.frag(2, 0, 1, payload);
  corrupt[tag_offset(corrupt) + 20] ^= 0x80;  // MAC byte

  EXPECT_TRUE(rig.receiver->on_packet(corrupt));
  EXPECT_EQ(rig.receiver->rejected_fragments(), 1u);
  EXPECT_EQ(rig.receiver->bundles_completed(), 0u);
  // No ACK went out for the rejected fragment: the custodian retries and a
  // clean copy lands.
  EXPECT_EQ(rig.sink.received(), 0u);
  EXPECT_TRUE(rig.receiver->on_packet(rig.frag(2, 0, 1, payload)));
  rig.net.run();
  EXPECT_EQ(rig.receiver->bundles_completed(), 1u);
  EXPECT_EQ(rig.delivered[2], payload);
  EXPECT_EQ(rig.sink.received(), 1u) << "exactly the one ACK for the clean copy";
}

TEST(DtnReassembly, GeometryConflictPoisonsStrictBundles) {
  ReceiverRig rig(/*strict=*/true);
  const std::vector<std::uint8_t> piece{'p'};
  EXPECT_TRUE(rig.receiver->on_packet(rig.frag(9, 0, 3, piece)));
  // A fragment claiming a different total can never assemble coherently.
  EXPECT_TRUE(rig.receiver->on_packet(rig.frag(9, 1, 5, piece)));
  EXPECT_EQ(rig.receiver->rejected_fragments(), 1u);
  EXPECT_EQ(rig.receiver->poisoned_bundles(), 1u);

  // Even well-formed remainders of the poisoned bundle are refused.
  EXPECT_TRUE(rig.receiver->on_packet(rig.frag(9, 1, 3, piece)));
  EXPECT_TRUE(rig.receiver->on_packet(rig.frag(9, 2, 3, piece)));
  EXPECT_EQ(rig.receiver->rejected_fragments(), 3u);
  EXPECT_EQ(rig.receiver->bundles_completed(), 0u);
}

TEST(DtnReassembly, GeometryConflictQuarantinesOnlyTheFragmentWhenLenient) {
  ReceiverRig rig(/*strict=*/false);
  const std::vector<std::uint8_t> piece{'p'};
  EXPECT_TRUE(rig.receiver->on_packet(rig.frag(9, 0, 3, piece)));
  EXPECT_TRUE(rig.receiver->on_packet(rig.frag(9, 1, 5, piece)));  // quarantined
  EXPECT_EQ(rig.receiver->rejected_fragments(), 1u);
  EXPECT_EQ(rig.receiver->poisoned_bundles(), 0u);

  // First-seen geometry wins; the clean copies complete the bundle.
  EXPECT_TRUE(rig.receiver->on_packet(rig.frag(9, 1, 3, piece)));
  EXPECT_TRUE(rig.receiver->on_packet(rig.frag(9, 2, 3, piece)));
  EXPECT_EQ(rig.receiver->bundles_completed(), 1u);
  EXPECT_EQ(rig.delivered[9], (std::vector<std::uint8_t>{'p', 'p', 'p'}));
}

TEST(DtnReassembly, DegenerateGeometryIsRejectedNotAcked) {
  ReceiverRig rig;
  EXPECT_TRUE(rig.receiver->on_packet(rig.frag(4, 0, 0, {})));  // total == 0
  EXPECT_TRUE(rig.receiver->on_packet(rig.frag(4, 6, 4, {})));  // index >= total
  EXPECT_EQ(rig.receiver->rejected_fragments(), 2u);
  EXPECT_EQ(rig.receiver->bundles_completed(), 0u);
}

// ---- mesh: torus custody soak through a blackout --------------------------

TEST(DtnMesh, TorusCustodySoakRecoversEveryBundleThroughBlackout) {
  mesh::ManualClock clock;
  mesh::MeshConfig cfg;
  cfg.use_mock = true;
  cfg.clock = &clock;
  cfg.fault_seed = 4242;
  cfg.registry = dtn::MeshCustodyFleet::make_registry();
  mesh::MeshNet net(cfg);

  // Every link is dark for the first 2.5 s (discovery gossip is control
  // traffic, exempt from impairment) and lightly chaotic afterwards.
  netsim::FaultPlan plan;
  plan.drop_rate = 0.05;
  plan.duplicate_rate = 0.05;
  plan.reorder_rate = 0.10;
  plan.reorder_window = 2 * kMillisecond;
  plan.blackout_period = 120 * kSecond;
  plan.blackout_duration = 2500 * kMillisecond;
  net.build_torus(3, 3, plan);
  ASSERT_TRUE(net.discover(kSecond));
  ASSERT_GT(net.recompute_routes(), 0u);

  dtn::MeshCustodyFleet::Config fleet_cfg;
  fleet_cfg.custody_key = test_key();
  fleet_cfg.frag_payload = 64;
  dtn::MeshCustodyFleet fleet(net, fleet_cfg);

  // Bundles injected while the mesh is still dark: every transmission
  // blackholes until 2.5 s, then the custody chain drains them hop by hop.
  const std::pair<std::size_t, std::size_t> pairs[] = {{0, 8}, {2, 6}, {4, 0}, {7, 1}};
  std::vector<std::uint32_t> bundles;
  std::vector<std::uint8_t> payload(256);
  for (const auto& [src, dst] : pairs) {
    for (std::size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<std::uint8_t>(i + src * 31 + dst);
    }
    bundles.push_back(fleet.send(src, dst, payload));
  }
  net.loop().run_until_idle();
  EXPECT_TRUE(net.drain(clock, 60 * kSecond));

  // 100% of committed bundles recovered, and every custody store drained —
  // each committed fragment was ACKed by the next custodian or the
  // destination.
  EXPECT_EQ(fleet.bundles_completed(), bundles.size());
  for (const std::uint32_t b : bundles) {
    EXPECT_TRUE(fleet.bundle_complete(b)) << "bundle " << b;
    const auto [sent, done] = fleet.bundle_times(b);
    EXPECT_GT(done, sent) << "recovery latency must be measurable";
  }
  EXPECT_TRUE(fleet.stores_empty());
  EXPECT_GT(fleet.store_bytes_high_water(), 0u);

  const dtn::CustodyStoreStats stats = fleet.aggregate_store_stats();
  EXPECT_GT(stats.commits, 0u);
  EXPECT_GT(stats.retransmissions, 0u) << "the blackout forced retransmissions";

  // The wire saw the outage, and the conservation ledger still balances at
  // quiescence: transmitted + duplicated == delivered + lost + blackholed +
  // dropped.
  const mesh::WireLedger ledger = net.aggregate_ledger();
  EXPECT_GT(ledger.blackholed, 0u);
  EXPECT_EQ(net.pending_holdbacks(), 0u);
  EXPECT_TRUE(net.ledger_balanced());

  // Fleet telemetry exposes the dip_dtn_* series.
  telemetry::StatsWriter w;
  fleet.write_stats(w);
  EXPECT_NE(w.text().find("dip_dtn_fragments_delivered_total"), std::string::npos);
  EXPECT_NE(w.text().find("dip_dtn_bundles_completed"), std::string::npos);
}

}  // namespace
}  // namespace dip
