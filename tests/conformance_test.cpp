// Property-based conformance harness (ISSUE 4): drives generated packet
// streams through every production engine (scalar / batch / pool) in both
// validation modes and checks each verdict AND each rewritten packet byte
// against the executable-spec reference model (src/refmodel/).
//
// Test order inside this suite is load-bearing:
//   1. the persisted corpus replays first (regression packets from earlier
//      shrinks reproduce before any fresh generation),
//   2. the fresh 10k-packet streams run per engine x mode,
//   3. the F_dps stream runs on the order-preserving engines,
//   4. a deliberately mutated refmodel proves the harness actually catches
//      spec divergences and shrinks them to a minimal reproducer,
//   5. the coverage ledger proves the streams exercised every op key, every
//      action, and every drop reason.
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <mutex>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "dip/core/router_pool.hpp"
#include "dip/mesh/frame.hpp"
#include "dip/mesh/socket.hpp"
#include "proptest/proptest.hpp"
#include "support/conformance.hpp"

namespace {

using namespace dip;           // NOLINT
using namespace dip::conformance;  // NOLINT
using proptest::Packet;

constexpr std::uint64_t kSeed = 0x5EED'2026'04'01ull;
constexpr std::size_t kStreamLen = 10'000;
constexpr std::size_t kPoolWorkers = 4;

enum class EngineKind { kScalar, kBatch, kPool };

const char* name_of(EngineKind k) {
  switch (k) {
    case EngineKind::kScalar: return "scalar";
    case EngineKind::kBatch: return "batch";
    case EngineKind::kPool: return "pool";
  }
  return "?";
}

std::unique_ptr<core::RouterEngine> make_engine(EngineKind kind,
                                                const core::OpRegistry* registry,
                                                const core::EnvFactory& envf,
                                                core::ValidationMode mode,
                                                std::size_t batch_size = w::kBatch) {
  core::EngineConfig cfg;
  cfg.validation = mode;
  cfg.batch_size = batch_size;
  cfg.pool_workers = kPoolWorkers;
  switch (kind) {
    case EngineKind::kScalar: return core::make_scalar_engine(registry, envf, cfg);
    case EngineKind::kBatch: return core::make_batch_engine(registry, envf, cfg);
    case EngineKind::kPool: return core::make_pool_engine(registry, envf, cfg);
  }
  return nullptr;
}

/// Global coverage accumulator (asserted by the final test in this suite).
struct Coverage {
  refmodel::RefLedger ledger;
  std::set<int> reasons;  // common-image ordinals, both sides merged
  std::set<int> actions;
};

Coverage& coverage() {
  static Coverage c;
  return c;
}

void note_production(const core::ProcessResult& r) {
  coverage().actions.insert(image_of(r.action));
  coverage().reasons.insert(image_of(r.reason));
}

void merge_ledger(const refmodel::RefLedger& l) {
  auto& c = coverage();
  c.ledger.op_keys_executed.insert(l.op_keys_executed.begin(), l.op_keys_executed.end());
  c.ledger.op_keys_seen.insert(l.op_keys_seen.begin(), l.op_keys_seen.end());
  for (const auto a : l.actions) c.actions.insert(static_cast<int>(a));
  for (const auto r : l.reasons) c.reasons.insert(static_cast<int>(r));
}

/// Drive `stream` through one production engine and the refmodel oracle;
/// assert byte- and verdict-identical behaviour packet by packet. For the
/// pool engine the oracle is one RefNode per worker, mirrored through the
/// same flow-affine shard function the pool uses.
/// `burst` overrides the batch engine's burst size (default: the
/// generator's kBatch alignment). Per the EngineConfig contract, nows and
/// ingresses are held constant within each burst-aligned block — the block
/// head's values — so the refmodel mirror sees exactly what the burst saw.
void run_stream_conformance(EngineKind kind, core::ValidationMode mode,
                            std::vector<Packet> stream, bool with_dps = false,
                            std::size_t burst = w::kBatch,
                            bool with_custody = false) {
  const SharedTables tables = make_shared_tables();
  const std::shared_ptr<core::OpRegistry> registry =
      make_registry(with_dps, with_custody);
  const auto engine =
      make_engine(kind, registry.get(), make_env_factory(tables), mode, burst);

  const std::size_t n = stream.size();
  std::vector<SimTime> nows(n);
  std::vector<core::FaceId> ingresses(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t head = (i / burst) * burst;
    nows[i] = w::now_of(head);
    ingresses[i] = w::ingress_of(head);
  }

  // Refmodel mirrors: shard exactly as the pool does (pre-submit bytes).
  const bool lenient = mode == core::ValidationMode::kLenient;
  const std::size_t mirrors = kind == EngineKind::kPool ? kPoolWorkers : 1;
  std::vector<refmodel::RefNode> ref_nodes;
  ref_nodes.reserve(mirrors);
  for (std::size_t i = 0; i < mirrors; ++i) {
    ref_nodes.push_back(make_ref_node(lenient, with_dps, refmodel::Mutation::kNone,
                                      with_custody));
  }
  std::vector<std::size_t> owner(n, 0);
  if (kind == EngineKind::kPool) {
    for (std::size_t i = 0; i < n; ++i) {
      owner[i] = core::RouterPool::shard_of(stream[i], kPoolWorkers);
    }
  }

  std::vector<Packet> prod = stream;  // the engine mutates these in place
  const std::vector<core::ProcessResult> results =
      engine->run(prod, nows, ingresses);
  ASSERT_EQ(results.size(), n);

  for (std::size_t i = 0; i < n; ++i) {
    const VerdictImage got = image_of(results[i]);
    Packet ref_packet = stream[i];
    const refmodel::RefVerdict rv =
        ref_nodes[owner[i]].process(ref_packet, ingresses[i], nows[i]);
    const VerdictImage want = image_of(rv);
    ASSERT_EQ(got, want) << name_of(kind) << (lenient ? "/lenient" : "/strict")
                         << " verdict diverged at packet " << i << "\n  production "
                         << to_string(got) << "\n  refmodel   " << to_string(want)
                         << "\n  packet " << dump_packet(stream[i]);
    ASSERT_EQ(prod[i], ref_packet)
        << name_of(kind) << (lenient ? "/lenient" : "/strict")
        << " rewritten bytes diverged at packet " << i << "\n  production "
        << dump_packet(prod[i]) << "\n  refmodel   " << dump_packet(ref_packet)
        << "\n  input " << dump_packet(stream[i]);
    note_production(results[i]);
  }
  for (const auto& node : ref_nodes) merge_ledger(node.ledger());
}

/// True when `packet` makes production and a (possibly mutated) refmodel
/// disagree, with ALL state rebuilt per call — the pure predicate the
/// shrinker requires.
bool diverges_single(const Packet& packet, refmodel::Mutation mutation) {
  const SharedTables tables = make_shared_tables();
  const std::shared_ptr<core::OpRegistry> registry = make_registry(false);
  const auto engine =
      make_engine(EngineKind::kScalar, registry.get(), make_env_factory(tables),
                  core::ValidationMode::kStrict);
  std::vector<Packet> prod{packet};
  const SimTime now = w::now_of(0);
  const core::FaceId ingress = w::ingress_of(0);
  const auto results = engine->run(prod, {&now, 1}, {&ingress, 1});

  refmodel::RefNode node = make_ref_node(/*lenient=*/false, /*dps=*/false, mutation);
  Packet ref_packet = packet;
  const refmodel::RefVerdict rv = node.process(ref_packet, ingress, now);
  return !(image_of(results[0]) == image_of(rv) && prod[0] == ref_packet);
}

// ---------------------------------------------------------------------------
// 1. Corpus replay — committed reproducers run before fresh generation.
// ---------------------------------------------------------------------------

TEST(Conformance, CorpusReplaysCleanly) {
  const auto corpus = proptest::load_corpus(DIP_CORPUS_DIR);
  ASSERT_FALSE(corpus.empty()) << "tests/corpus/ must ship seed entries";
  for (const auto& [name, packet] : corpus) {
    EXPECT_FALSE(diverges_single(packet, refmodel::Mutation::kNone))
        << "corpus entry " << name << " diverges: " << dump_packet(packet);
  }
}

// ---------------------------------------------------------------------------
// 2. Fresh streams, every engine x validation mode.
// ---------------------------------------------------------------------------

TEST(Conformance, ScalarStrict) {
  run_stream_conformance(EngineKind::kScalar, core::ValidationMode::kStrict,
                         proptest::gen::make_conformance_stream(kSeed, kStreamLen));
}

TEST(Conformance, ScalarLenient) {
  run_stream_conformance(EngineKind::kScalar, core::ValidationMode::kLenient,
                         proptest::gen::make_conformance_stream(kSeed + 1, kStreamLen));
}

TEST(Conformance, BatchStrict) {
  run_stream_conformance(EngineKind::kBatch, core::ValidationMode::kStrict,
                         proptest::gen::make_conformance_stream(kSeed + 2, kStreamLen));
}

TEST(Conformance, BatchLenient) {
  run_stream_conformance(EngineKind::kBatch, core::ValidationMode::kLenient,
                         proptest::gen::make_conformance_stream(kSeed + 3, kStreamLen));
}

// Odd burst shapes against the refmodel oracle: a singleton (stays on the
// per-packet path), sizes off the crypto strip width and the counting-sort
// edges (3, 7), and one past the bench's 32-wide shape (33). Strict and
// lenient both.
TEST(Conformance, BatchOddBurstShapesStrict) {
  std::uint64_t salt = 20;
  for (const std::size_t burst : {1, 3, 7, 33}) {
    run_stream_conformance(
        EngineKind::kBatch, core::ValidationMode::kStrict,
        proptest::gen::make_conformance_stream(kSeed + salt++, kStreamLen / 4),
        /*with_dps=*/false, burst);
  }
}

TEST(Conformance, BatchOddBurstShapesLenient) {
  std::uint64_t salt = 30;
  for (const std::size_t burst : {1, 3, 7, 33}) {
    run_stream_conformance(
        EngineKind::kBatch, core::ValidationMode::kLenient,
        proptest::gen::make_conformance_stream(kSeed + salt++, kStreamLen / 4),
        /*with_dps=*/false, burst);
  }
}

TEST(Conformance, PoolStrict) {
  run_stream_conformance(EngineKind::kPool, core::ValidationMode::kStrict,
                         proptest::gen::make_conformance_stream(kSeed + 4, kStreamLen));
}

TEST(Conformance, PoolLenient) {
  run_stream_conformance(EngineKind::kPool, core::ValidationMode::kLenient,
                         proptest::gen::make_conformance_stream(kSeed + 5, kStreamLen));
}

// ---------------------------------------------------------------------------
// 2c. Scale-out: the same byte-identity obligation across a 2-PROCESS UDP
// pair. The parent is the driver + refmodel oracle; a fork()ed child runs a
// production scalar engine behind mesh framing (kData request / kVerdict
// reply, per-frame seq). Transport is stop-and-wait with retransmission and
// seq-based dedupe — exactly-once engine execution even if loopback sheds a
// datagram — so the child's stateful modules (PIT, flow cache) see the
// stream in exactly the order the oracle does. now/ingress are derived from
// the frame seq on BOTH sides (w::now_of / w::ingress_of), keeping the two
// processes' worlds identical without a side channel.
// ---------------------------------------------------------------------------

namespace udp_pair {

constexpr std::uint32_t kParentNode = 1;
constexpr std::uint32_t kChildNode = 2;

/// kVerdict payload: action:8 reason:8 offending:16 cache:8 negress:8
/// egress:32 each, then the rewritten packet bytes.
std::vector<std::uint8_t> encode_verdict_payload(const VerdictImage& v,
                                                 const Packet& rewritten) {
  std::vector<std::uint8_t> out;
  out.reserve(7 + v.egress.size() * 4 + rewritten.size());
  out.push_back(static_cast<std::uint8_t>(v.action));
  out.push_back(static_cast<std::uint8_t>(v.reason));
  out.push_back(static_cast<std::uint8_t>(v.offending_key >> 8));
  out.push_back(static_cast<std::uint8_t>(v.offending_key));
  out.push_back(v.respond_from_cache ? 1 : 0);
  out.push_back(static_cast<std::uint8_t>(v.egress.size()));
  for (const std::uint32_t e : v.egress) {
    for (int b = 3; b >= 0; --b) out.push_back(static_cast<std::uint8_t>(e >> (8 * b)));
  }
  out.insert(out.end(), rewritten.begin(), rewritten.end());
  return out;
}

std::optional<std::pair<VerdictImage, Packet>> decode_verdict_payload(
    std::span<const std::uint8_t> p) {
  if (p.size() < 6) return std::nullopt;
  VerdictImage v;
  v.action = p[0];
  v.reason = p[1];
  v.offending_key = static_cast<std::uint16_t>((p[2] << 8) | p[3]);
  v.respond_from_cache = p[4] != 0;
  const std::size_t negress = p[5];
  if (p.size() < 6 + negress * 4) return std::nullopt;
  for (std::size_t i = 0; i < negress; ++i) {
    const std::uint8_t* q = p.data() + 6 + i * 4;
    v.egress.push_back((static_cast<std::uint32_t>(q[0]) << 24) |
                       (static_cast<std::uint32_t>(q[1]) << 16) |
                       (static_cast<std::uint32_t>(q[2]) << 8) | q[3]);
  }
  return std::make_pair(std::move(v),
                        Packet(p.begin() + 6 + static_cast<std::ptrdiff_t>(negress * 4),
                               p.end()));
}

/// The child: a production scalar engine served over UDP. Exits 0 on kBye,
/// nonzero on protocol breakage or 30 s of silence (orphan safety). Plain
/// exit codes, not gtest — assertions in a fork()ed child don't reach the
/// parent's test result.
[[noreturn]] void serve_child(mesh::UdpSocket& sock, core::ValidationMode mode) {
  const SharedTables tables = make_shared_tables();
  const std::shared_ptr<core::OpRegistry> registry = make_registry(false);
  const auto engine = make_engine(EngineKind::kScalar, registry.get(),
                                  make_env_factory(tables), mode);
  std::vector<std::uint8_t> buf(64 * 1024);
  std::uint64_t next_seq = 0;
  std::uint64_t last_seq = ~std::uint64_t{0};
  std::vector<std::uint8_t> last_reply;
  for (;;) {
    pollfd pfd{sock.fd(), POLLIN, 0};
    if (::poll(&pfd, 1, 30'000) <= 0) ::_exit(2);
    for (;;) {
      const mesh::RecvOutcome out = sock.recv_from(buf);
      if (out.status != mesh::IoStatus::kOk) break;
      const auto frame =
          mesh::decode_frame(std::span(buf.data(), std::min(out.size, buf.size())));
      if (!frame) continue;
      if (frame->header.type == mesh::FrameType::kBye) ::_exit(0);
      if (frame->header.type != mesh::FrameType::kData) continue;
      const std::uint64_t seq = frame->header.seq;
      if (seq == last_seq && !last_reply.empty()) {
        // Our reply was lost and the request retransmitted: resend the
        // cached verdict, do NOT rerun the engine (exactly-once).
        (void)sock.send_to(out.from, last_reply);
        continue;
      }
      if (seq != next_seq) continue;  // outside the stop-and-wait window
      std::vector<Packet> prod{Packet(frame->payload.begin(), frame->payload.end())};
      const SimTime now = w::now_of(seq);
      const core::FaceId ingress = w::ingress_of(seq);
      const auto results = engine->run(prod, {&now, 1}, {&ingress, 1});
      if (results.size() != 1) ::_exit(3);
      last_reply = mesh::encode_frame(mesh::FrameType::kVerdict, kChildNode, seq,
                                      encode_verdict_payload(image_of(results[0]), prod[0]));
      last_seq = seq;
      ++next_seq;
      (void)sock.send_to(out.from, last_reply);
    }
  }
}

void run_udp_pair_conformance(core::ValidationMode mode,
                              const std::vector<Packet>& stream) {
  auto parent_sock = std::make_unique<mesh::UdpSocket>();
  auto child_sock = std::make_unique<mesh::UdpSocket>();
  const mesh::Endpoint child_ep = child_sock->local_endpoint();

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) serve_child(*child_sock, mode);  // never returns

  const bool lenient = mode == core::ValidationMode::kLenient;
  refmodel::RefNode ref = make_ref_node(lenient);
  std::vector<std::uint8_t> buf(64 * 1024);

  for (std::size_t i = 0; i < stream.size(); ++i) {
    const auto request =
        mesh::encode_frame(mesh::FrameType::kData, kParentNode, i, stream[i]);
    std::optional<std::pair<VerdictImage, Packet>> reply;
    for (int attempt = 0; attempt < 50 && !reply; ++attempt) {
      ASSERT_EQ(parent_sock->send_to(child_ep, request), mesh::IoStatus::kOk);
      pollfd pfd{parent_sock->fd(), POLLIN, 0};
      if (::poll(&pfd, 1, 200) <= 0) continue;  // timed out: retransmit
      for (;;) {
        const mesh::RecvOutcome out = parent_sock->recv_from(buf);
        if (out.status != mesh::IoStatus::kOk) break;
        const auto frame = mesh::decode_frame(
            std::span(buf.data(), std::min(out.size, buf.size())));
        if (!frame || frame->header.type != mesh::FrameType::kVerdict) continue;
        if (frame->header.seq != i) continue;  // stale duplicate from seq i-1
        reply = decode_verdict_payload(frame->payload);
        break;
      }
    }
    ASSERT_TRUE(reply.has_value())
        << "udp-pair: no verdict for packet " << i << " after retransmissions";

    Packet ref_packet = stream[i];
    const refmodel::RefVerdict rv = ref.process(ref_packet, w::ingress_of(i), w::now_of(i));
    const VerdictImage want = image_of(rv);
    ASSERT_EQ(reply->first, want)
        << "udp-pair" << (lenient ? "/lenient" : "/strict")
        << " verdict diverged at packet " << i << "\n  remote engine "
        << to_string(reply->first) << "\n  refmodel     " << to_string(want)
        << "\n  packet " << dump_packet(stream[i]);
    ASSERT_EQ(reply->second, ref_packet)
        << "udp-pair" << (lenient ? "/lenient" : "/strict")
        << " rewritten bytes diverged at packet " << i << "\n  remote engine "
        << dump_packet(reply->second) << "\n  refmodel     "
        << dump_packet(ref_packet) << "\n  input " << dump_packet(stream[i]);
    coverage().actions.insert(reply->first.action);
    coverage().reasons.insert(reply->first.reason);
  }
  merge_ledger(ref.ledger());

  // Orderly shutdown: BYE until the child exits (it may be mid-poll).
  const auto bye =
      mesh::encode_frame(mesh::FrameType::kBye, kParentNode, stream.size(), {});
  int status = 0;
  for (int i = 0; i < 500; ++i) {
    (void)parent_sock->send_to(child_ep, bye);
    if (::waitpid(pid, &status, WNOHANG) == pid) {
      EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
          << "child exited abnormally (status " << status << ")";
      return;
    }
    ::usleep(10'000);
  }
  ::kill(pid, SIGKILL);
  (void)::waitpid(pid, &status, 0);
  FAIL() << "udp-pair child did not exit on BYE";
}

}  // namespace udp_pair

TEST(Conformance, UdpPairStrict) {
  udp_pair::run_udp_pair_conformance(
      core::ValidationMode::kStrict,
      proptest::gen::make_conformance_stream(kSeed + 40, kStreamLen));
}

TEST(Conformance, UdpPairLenient) {
  udp_pair::run_udp_pair_conformance(
      core::ValidationMode::kLenient,
      proptest::gen::make_conformance_stream(kSeed + 41, kStreamLen));
}

// ---------------------------------------------------------------------------
// 3. F_dps (stateful fair-share policing). Scalar and batch only: DpsOp's
// RNG is consumed in arrival order, which pool interleaving does not
// preserve (and the module instance would be shared across workers).
// ---------------------------------------------------------------------------

TEST(Conformance, DpsScalarStrict) {
  run_stream_conformance(EngineKind::kScalar, core::ValidationMode::kStrict,
                         proptest::gen::make_dps_stream(kSeed + 6, kStreamLen),
                         /*with_dps=*/true);
}

TEST(Conformance, DpsBatchStrict) {
  run_stream_conformance(EngineKind::kBatch, core::ValidationMode::kStrict,
                         proptest::gen::make_dps_stream(kSeed + 7, kStreamLen),
                         /*with_dps=*/true);
}

// ---------------------------------------------------------------------------
// 3a2. dip32+custody (F_custody accept/carry/auth-fail + F_frag bounds).
// The op is per-packet deterministic — custody *state* lives in the node
// wrappers, not the module — so the pool engine is in scope too.
// ---------------------------------------------------------------------------

TEST(Conformance, CustodyScalarStrict) {
  run_stream_conformance(EngineKind::kScalar, core::ValidationMode::kStrict,
                         proptest::gen::make_custody_stream(kSeed + 50, kStreamLen),
                         /*with_dps=*/false, w::kBatch, /*with_custody=*/true);
}

TEST(Conformance, CustodyScalarLenient) {
  run_stream_conformance(EngineKind::kScalar, core::ValidationMode::kLenient,
                         proptest::gen::make_custody_stream(kSeed + 51, kStreamLen),
                         /*with_dps=*/false, w::kBatch, /*with_custody=*/true);
}

TEST(Conformance, CustodyBatchStrict) {
  run_stream_conformance(EngineKind::kBatch, core::ValidationMode::kStrict,
                         proptest::gen::make_custody_stream(kSeed + 52, kStreamLen),
                         /*with_dps=*/false, w::kBatch, /*with_custody=*/true);
}

TEST(Conformance, CustodyPoolStrict) {
  run_stream_conformance(EngineKind::kPool, core::ValidationMode::kStrict,
                         proptest::gen::make_custody_stream(kSeed + 53, kStreamLen),
                         /*with_dps=*/false, w::kBatch, /*with_custody=*/true);
}

// ---------------------------------------------------------------------------
// 3b. Route churn (ISSUE 5): the same RouteJournal deltas are applied to the
// production engines (RCU snapshot publishes) and the refmodel mirrors at
// identical packet indices; verdicts and rewrites must stay byte-identical
// across scalar/batch/pool, against the oracle AND against each other.
//
// The churn stream is match-only (DIP-32/DIP-128): those paths are
// stateless per packet, so the pool engine's fresh-pool-per-run() worker
// state is semantically invisible and chunked execution is exact.
// ---------------------------------------------------------------------------

constexpr std::uint32_t kChurnNet = 0x0A800000;  // 10.128.0.0/9
constexpr std::uint8_t kChurnLen = 9;
constexpr std::uint32_t kNhChurn = 42;

std::vector<Packet> make_match_stream(std::uint64_t seed, std::size_t count) {
  crypto::Xoshiro256 rng(seed);
  std::vector<Packet> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    core::HeaderBuilder b;
    b.hop_limit(proptest::gen::live_hops(rng));
    switch (rng.below(4)) {
      case 0:
      case 1:
        b.add_router_fn(core::OpKey::kMatch32,
                        proptest::gen::be32(proptest::gen::routable32(rng)));
        break;
      case 2:  // unroutable v4 -> kNoRoute both before and after churn
        b.add_router_fn(core::OpKey::kMatch32,
                        proptest::gen::be32(0xC0A80000 | (rng.u32() & 0xffff)));
        break;
      default: {
        std::array<std::uint8_t, 16> addr = w::kNet128;
        for (std::size_t j = 4; j < 16; ++j) {
          addr[j] = static_cast<std::uint8_t>(rng.u32());
        }
        b.add_router_fn(core::OpKey::kMatch128, addr);
        break;
      }
    }
    out.push_back(proptest::gen::finish(b.build(), {}));
  }
  return out;
}

/// One churn step, applied identically to the journal (production) and to
/// every refmodel mirror. Even steps withdraw the /10 (uncovering the /8)
/// and install a fresh /9; odd steps revert.
void apply_churn(std::size_t step, ctrl::RouteJournal& journal,
                 std::vector<refmodel::RefNode>& mirrors) {
  if (step % 2 == 0) {
    journal.remove_route32({fib::ipv4_from_u32(w::kNet10_64), 10});
    journal.add_route32({fib::ipv4_from_u32(kChurnNet), kChurnLen}, kNhChurn);
    for (auto& m : mirrors) {
      m.remove_route32(w::kNet10_64, 10);
      m.add_route32(kChurnNet, kChurnLen, kNhChurn);
    }
  } else {
    journal.add_route32({fib::ipv4_from_u32(w::kNet10_64), 10}, w::kNh10_64);
    journal.remove_route32({fib::ipv4_from_u32(kChurnNet), kChurnLen});
    for (auto& m : mirrors) {
      m.add_route32(w::kNet10_64, 10, w::kNh10_64);
      m.remove_route32(kChurnNet, kChurnLen);
    }
  }
  ASSERT_EQ(journal.flush(), 1u) << "churn step " << step
                                 << " must publish exactly the fib32 snapshot";
}

/// The full churn schedule against one LPM engine choice: the seed tables
/// (and therefore every journal-built clone) use `lpm_engine`, so the same
/// byte-identity obligations certify each engine behind the RCU path.
void run_churn_conformance(fib::LpmEngine lpm_engine) {
  constexpr std::size_t kChunks = 8;
  constexpr std::size_t kChunkLen = 512;  // kBatch-aligned
  static_assert(kChunkLen % w::kBatch == 0);
  const auto stream = make_match_stream(kSeed + 8, kChunks * kChunkLen);

  const EngineKind kinds[] = {EngineKind::kScalar, EngineKind::kBatch,
                              EngineKind::kPool};
  std::vector<std::vector<VerdictImage>> images(std::size(kinds));
  std::vector<std::vector<Packet>> rewritten(std::size(kinds));

  for (std::size_t e = 0; e < std::size(kinds); ++e) {
    const EngineKind kind = kinds[e];
    SharedTables tables = make_shared_tables(lpm_engine);
    const auto journal = attach_control(tables);
    const std::shared_ptr<core::OpRegistry> registry = make_registry(false);
    const auto engine = make_engine(kind, registry.get(),
                                    make_env_factory(tables),
                                    core::ValidationMode::kStrict);

    const std::size_t mirror_count = kind == EngineKind::kPool ? kPoolWorkers : 1;
    std::vector<refmodel::RefNode> mirrors;
    mirrors.reserve(mirror_count);
    for (std::size_t i = 0; i < mirror_count; ++i) {
      mirrors.push_back(make_ref_node(/*lenient=*/false));
    }

    for (std::size_t c = 0; c < kChunks; ++c) {
      const std::size_t base = c * kChunkLen;
      std::vector<Packet> prod(stream.begin() + base,
                               stream.begin() + base + kChunkLen);
      std::vector<SimTime> nows(kChunkLen);
      std::vector<core::FaceId> ingresses(kChunkLen);
      std::vector<std::size_t> owner(kChunkLen, 0);
      for (std::size_t i = 0; i < kChunkLen; ++i) {
        nows[i] = w::now_of(base + i);
        ingresses[i] = w::ingress_of(base + i);
        if (kind == EngineKind::kPool) {
          owner[i] = core::RouterPool::shard_of(stream[base + i], kPoolWorkers);
        }
      }

      const auto results = engine->run(prod, nows, ingresses);
      ASSERT_EQ(results.size(), kChunkLen);
      for (std::size_t i = 0; i < kChunkLen; ++i) {
        const VerdictImage got = image_of(results[i]);
        Packet ref_packet = stream[base + i];
        const refmodel::RefVerdict rv =
            mirrors[owner[i]].process(ref_packet, ingresses[i], nows[i]);
        const VerdictImage want = image_of(rv);
        ASSERT_EQ(got, want)
            << name_of(kind) << " diverged from refmodel at packet "
            << base + i << " (churn chunk " << c << ")\n  production "
            << to_string(got) << "\n  refmodel   " << to_string(want)
            << "\n  packet " << dump_packet(stream[base + i]);
        ASSERT_EQ(prod[i], ref_packet)
            << name_of(kind) << " rewrite diverged at packet " << base + i;
        images[e].push_back(got);
        rewritten[e].push_back(prod[i]);
        note_production(results[i]);
      }
      if (c + 1 < kChunks) apply_churn(c, *journal, mirrors);
    }
    for (const auto& m : mirrors) merge_ledger(m.ledger());

    // Every retired snapshot must eventually be reclaimed: with all engine
    // readers at a burst boundary (run() returned), one more flush() round
    // drains the backlog.
    journal->flush();
    EXPECT_EQ(journal->tables().domain.backlog(), 0u)
        << name_of(kind) << " left unreclaimed snapshots";
  }

  // Cross-engine byte identity, verdicts and rewrites alike.
  for (std::size_t e = 1; e < std::size(kinds); ++e) {
    ASSERT_EQ(images[0].size(), images[e].size());
    for (std::size_t i = 0; i < images[0].size(); ++i) {
      ASSERT_EQ(images[0][i], images[e][i])
          << "verdicts diverge between scalar and " << name_of(kinds[e])
          << " at packet " << i << " under identical churn";
      ASSERT_EQ(rewritten[0][i], rewritten[e][i])
          << "rewrites diverge between scalar and " << name_of(kinds[e])
          << " at packet " << i << " under identical churn";
    }
  }
}

TEST(Conformance, ChurnScheduleStaysConformantAcrossEngines) {
  run_churn_conformance(fib::LpmEngine::kPatricia);
}

// Same schedule with the compressed tree-bitmap FIB swapped in via the
// RouterEnv seed tables (ISSUE 7): certifies the scale engine's lookup and
// copy-on-write clone semantics end to end under live churn.
TEST(Conformance, ChurnScheduleStaysConformantOnTreeBitmap) {
  run_churn_conformance(fib::LpmEngine::kTreeBitmap);
}

// ---------------------------------------------------------------------------
// 4. kOverloadShed — a RouterPool ingress artifact, not a spec path: the
// refmodel never produces it, so it is covered by a dedicated deterministic
// test (worker blocked in its completion -> ring fills -> try_submit sheds).
// ---------------------------------------------------------------------------

TEST(Conformance, PoolShedsVisiblyUnderOverload) {
  const SharedTables tables = make_shared_tables();
  const std::shared_ptr<core::OpRegistry> registry = make_registry(false);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> shed_count{0};

  core::RouterPoolConfig cfg;
  cfg.workers = 1;
  cfg.ring_capacity = 2;
  cfg.overload = core::OverloadPolicy::kShed;
  core::RouterPool pool(
      registry.get(), make_env_factory(tables), cfg,
      [&](std::size_t, core::RouterPool::Item&, core::ProcessResult& result) {
        if (result.reason == core::DropReason::kOverloadShed) {
          // Shed completions fire on the dispatcher thread; must not block.
          note_production(result);
          shed_count.fetch_add(1);
          return;
        }
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return release; });
      });

  const auto make_packet = [] {
    core::HeaderBuilder b;
    b.hop_limit(8);
    b.add_router_fn(core::OpKey::kMatch32,
                    proptest::gen::be32(w::kNet10 | 0x0101));
    return b.build().value().serialize();
  };

  // First packet occupies the worker (blocked in its completion); keep
  // submitting until the ring overflows and try_submit reports a shed.
  (void)pool.submit(make_packet(), 1, w::now_of(0));
  for (int i = 0; i < 16 && shed_count.load() == 0; ++i) {
    (void)pool.try_submit(make_packet(), 1, w::now_of(0));
  }
  EXPECT_GT(shed_count.load(), 0);
  EXPECT_EQ(pool.shed_total(), static_cast<std::uint64_t>(shed_count.load()));
  {
    const std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.stop();
}

// ---------------------------------------------------------------------------
// 5. Self-test: a deliberately mutated spec MUST be caught and shrunk.
// ---------------------------------------------------------------------------

TEST(Conformance, SeededMutationIsCaughtAndShrunk) {
  const auto stream = proptest::gen::make_conformance_stream(kSeed, 2'000);
  const proptest::FailPredicate fails = [](const Packet& p) {
    return diverges_single(p, refmodel::Mutation::kWrongNoRouteReason);
  };

  const Packet* found = nullptr;
  for (const auto& packet : stream) {
    if (fails(packet)) {
      found = &packet;
      break;
    }
  }
  ASSERT_NE(found, nullptr)
      << "the mutated refmodel (wrong no-route reason) was never caught";

  const Packet shrunk = proptest::shrink_packet(*found, fails);
  EXPECT_TRUE(fails(shrunk));
  EXPECT_LE(proptest::fn_count(shrunk), 3u)
      << "reproducer not minimal: " << dump_packet(shrunk);
  EXPECT_LE(shrunk.size(), found->size());

  // Persist the reproducer exactly as a real divergence would be: it lands
  // in tests/corpus/ and replays (against the unmutated spec, cleanly) at
  // the top of every future run.
  const auto path = proptest::save_corpus_entry(
      DIP_CORPUS_DIR, "mutation-wrong-noroute-repro", shrunk,
      "shrunk reproducer for refmodel::Mutation::kWrongNoRouteReason");
  EXPECT_FALSE(diverges_single(shrunk, refmodel::Mutation::kNone))
      << "reproducer must agree under the unmutated spec (" << path << ")";

  // The second seeded mutation (hop-limit off by one) is caught too.
  core::HeaderBuilder b;
  b.hop_limit(2);
  b.add_router_fn(core::OpKey::kMatch32, proptest::gen::be32(w::kNet10 | 1));
  const Packet hop_edge = proptest::gen::finish(b.build(), {});
  EXPECT_TRUE(diverges_single(hop_edge, refmodel::Mutation::kHopOffByOne));
}

// ---------------------------------------------------------------------------
// 6. Coverage ledger — the streams above must have exercised everything.
// ---------------------------------------------------------------------------

TEST(Conformance, CoverageLedgerIsComplete) {
  const auto& c = coverage();

  // Every Table-1 op key was at least seen on the wire...
  for (std::uint16_t key = 1; key <= 16; ++key) {
    EXPECT_TRUE(c.ledger.op_keys_seen.contains(key)) << "op key never seen: " << key;
  }
  // ...and every key with a registered module actually executed. Key 9
  // (F_ver) has no router module — router-tagged F_ver must fail as
  // unsupported, never execute. Key 14 (F_cc) is not in the default
  // registry and is optional, so it is skipped.
  for (const std::uint16_t key : {1, 2, 3, 4, 5, 6, 7, 8, 10, 11, 12, 13, 15, 16}) {
    EXPECT_TRUE(c.ledger.op_keys_executed.contains(key))
        << "op key never executed: " << key;
  }
  EXPECT_FALSE(c.ledger.op_keys_executed.contains(9));
  EXPECT_FALSE(c.ledger.op_keys_executed.contains(14));
  // The DTN extension keys (17 F_custody, 18 F_frag) execute in the
  // dedicated custody streams.
  for (const std::uint16_t key : {17, 18}) {
    EXPECT_TRUE(c.ledger.op_keys_seen.contains(key)) << "op key never seen: " << key;
    EXPECT_TRUE(c.ledger.op_keys_executed.contains(key))
        << "op key never executed: " << key;
  }

  for (int action = 0; action <= 2; ++action) {
    EXPECT_TRUE(c.actions.contains(action)) << "action never produced: " << action;
  }
  // All 14 drop reasons (common-image ordinals, kNone..kCorruptQuarantine).
  for (int reason = 0; reason <= 13; ++reason) {
    EXPECT_TRUE(c.reasons.contains(reason)) << "drop reason never produced: " << reason;
  }
}

}  // namespace
