// XIA-over-DIP: DAG codec, acyclicity validation, fallback traversal,
// intent handling (SID delivery, CID content store).
#include <gtest/gtest.h>

#include "dip/core/router.hpp"
#include "dip/netsim/dip_node.hpp"
#include "dip/netsim/topology.hpp"
#include "dip/xia/xia.hpp"

namespace dip::xia {
namespace {

using core::Action;
using core::DipHeader;
using core::DropReason;
using core::Router;
using fib::Xid;
using fib::XidType;

std::shared_ptr<core::OpRegistry> registry() {
  static auto r = netsim::make_default_registry();
  return r;
}

// ---------- codec ----------

TEST(DagCodec, SerializeParseRoundTrip) {
  const Dag dag = make_service_dag(xid_from_label("ad0"), xid_from_label("host0"),
                                   XidType::kSid, xid_from_label("svc0"));
  const auto wire = dag.serialize(Dag::kSourceCursor);
  EXPECT_EQ(wire.size(), kHeaderBytes + 3 * kNodeBytes);

  const auto parsed = parse_dag(wire);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->cursor, Dag::kSourceCursor);
  EXPECT_EQ(parsed->dag.node_count(), 3u);
  EXPECT_EQ(parsed->dag.intent(), 2u);
  EXPECT_EQ(parsed->dag.node(0).type, XidType::kAd);
  EXPECT_EQ(parsed->dag.node(0).xid, xid_from_label("ad0"));
  EXPECT_EQ(parsed->dag.node(2).type, XidType::kSid);
  // Source edges: intent first (priority), then AD.
  ASSERT_EQ(parsed->dag.source_edges().size(), 2u);
  EXPECT_EQ(parsed->dag.source_edges()[0], 2);
  EXPECT_EQ(parsed->dag.source_edges()[1], 0);
}

TEST(DagCodec, RejectsTruncatedAndGarbage) {
  const Dag dag = make_service_dag(xid_from_label("a"), xid_from_label("h"),
                                   XidType::kSid, xid_from_label("s"));
  auto wire = dag.serialize(Dag::kSourceCursor);
  EXPECT_FALSE(parse_dag(std::span<const std::uint8_t>(wire.data(), 3)));
  EXPECT_FALSE(
      parse_dag(std::span<const std::uint8_t>(wire.data(), wire.size() - 5)));

  auto bad_type = wire;
  bad_type[kHeaderBytes] = 0x77;  // not a valid XID type
  EXPECT_FALSE(parse_dag(bad_type));

  auto bad_cursor = wire;
  bad_cursor[1] = 9;  // >= node_count and not kSourceCursor
  EXPECT_FALSE(parse_dag(bad_cursor));
}

TEST(DagCodec, RejectsCycles) {
  Dag dag;
  const auto a = dag.add_node({XidType::kAd, xid_from_label("a"), {}});
  const auto b = dag.add_node({XidType::kHid, xid_from_label("b"), {}});
  ASSERT_TRUE(dag.add_edge(*a, *b));
  ASSERT_TRUE(dag.add_edge(*b, *a));  // cycle
  dag.set_intent(*b);
  EXPECT_FALSE(dag.validate());
  EXPECT_FALSE(parse_dag(dag.serialize(Dag::kSourceCursor)));
}

TEST(DagCodec, NodeAndEdgeLimits) {
  Dag dag;
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(dag.add_node({XidType::kHid, xid_from_label(std::to_string(i)), {}}));
  }
  EXPECT_FALSE(dag.add_node({XidType::kHid, xid_from_label("9"), {}}));

  for (int i = 1; i <= 4; ++i) EXPECT_TRUE(dag.add_edge(0, static_cast<std::uint8_t>(i)));
  EXPECT_FALSE(dag.add_edge(0, 5)) << "edge fanout capped at 4";
  EXPECT_FALSE(dag.add_edge(0, 200)) << "edge to nonexistent node";
}

// ---------- traversal ----------

struct XiaFixture : ::testing::Test {
  XiaFixture()
      : ad(xid_from_label("ad1")),
        hid(xid_from_label("hid1")),
        sid(xid_from_label("sid1")),
        router(netsim::make_basic_env(1), registry().get()) {}

  std::vector<std::uint8_t> packet_for(const Dag& dag) {
    return make_xia_header(dag)->serialize();
  }

  Xid ad, hid, sid;
  Router router;
};

TEST_F(XiaFixture, DirectIntentRouteWins) {
  // The router knows the service XID directly: highest-priority edge taken.
  router.env().xid_table->insert(XidType::kSid, sid, 42);
  router.env().xid_table->insert(XidType::kAd, ad, 7);

  auto packet = packet_for(make_service_dag(ad, hid, XidType::kSid, sid));
  const auto result = router.process(packet, 0, 0);
  EXPECT_EQ(result.action, Action::kForward);
  EXPECT_EQ(result.egress, std::vector<core::FaceId>{42});

  // Forwarding toward the intent does not advance the cursor — only the
  // owner of the target node does that (XIA arrival semantics).
  const auto header = DipHeader::parse(packet);
  const auto parsed = extract_dag(*header);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->cursor, Dag::kSourceCursor);
}

TEST_F(XiaFixture, FallbackToAdWhenIntentUnknown) {
  // No SID route: fall back to the AD edge — XIA's defining behavior.
  router.env().xid_table->insert(XidType::kAd, ad, 7);
  auto packet = packet_for(make_service_dag(ad, hid, XidType::kSid, sid));
  const auto result = router.process(packet, 0, 0);
  EXPECT_EQ(result.egress, std::vector<core::FaceId>{7});

  const auto parsed = extract_dag(*DipHeader::parse(packet));
  EXPECT_EQ(parsed->cursor, Dag::kSourceCursor)
      << "cursor untouched while in transit toward the AD";
}

TEST_F(XiaFixture, NoRouteAnywhereDrops) {
  auto packet = packet_for(make_service_dag(ad, hid, XidType::kSid, sid));
  const auto result = router.process(packet, 0, 0);
  EXPECT_EQ(result.action, Action::kDrop);
  EXPECT_EQ(result.reason, DropReason::kNoRoute);
}

TEST_F(XiaFixture, LocalAdTraversedWithoutForwarding) {
  // This router *is* the AD: it enters the AD node locally and continues
  // to the HID edge in the same processing step.
  router.env().xid_table->set_local(XidType::kAd, ad);
  router.env().xid_table->insert(XidType::kHid, hid, 11);

  auto packet = packet_for(make_service_dag(ad, hid, XidType::kSid, sid,
                                            /*direct_intent=*/false));
  const auto result = router.process(packet, 0, 0);
  EXPECT_EQ(result.egress, std::vector<core::FaceId>{11});
  const auto parsed = extract_dag(*DipHeader::parse(packet));
  EXPECT_EQ(parsed->cursor, 0) << "cursor on the AD we entered; HID is in transit";
}

TEST_F(XiaFixture, SidIntentDeliversToLocalService) {
  // Final hop: the HID is local and the SID intent is bound to face 3.
  router.env().xid_table->set_local(XidType::kHid, hid);
  router.env().xid_table->set_local(XidType::kSid, sid);
  router.env().xid_table->insert(XidType::kSid, sid, 3);

  auto packet = packet_for(make_service_dag(ad, hid, XidType::kSid, sid,
                                            /*direct_intent=*/false));
  // Enter at the HID node as the previous hop would have left it: patch the
  // DAG's cursor byte. Locations begin after the basic header + 2 triples,
  // and the checksum covers only the basic header, so the patch is legal.
  packet[6 + 12 + 1] = 1;

  const auto result = router.process(packet, /*ingress=*/5, 0);
  EXPECT_EQ(result.action, Action::kForward);
  EXPECT_EQ(result.egress, std::vector<core::FaceId>{3}) << "delivered to service";
}

TEST_F(XiaFixture, CidIntentServedFromContentStore) {
  const Xid cid = xid_from_label("content1");
  router.env().content_store.emplace(8);
  router.env().content_store->insert(xid_code(cid), std::array<std::uint8_t, 2>{7, 7});
  router.env().xid_table->set_local(XidType::kHid, hid);
  router.env().xid_table->set_local(XidType::kCid, cid);

  Dag dag = make_service_dag(ad, hid, XidType::kCid, cid, false);
  auto packet = packet_for(dag);
  packet[6 + 12 + 1] = 1;  // cursor = HID node (we are that host)

  const auto result = router.process(packet, 4, 0);
  EXPECT_EQ(result.action, Action::kForward);
  EXPECT_TRUE(result.respond_from_cache);
  EXPECT_EQ(result.egress, std::vector<core::FaceId>{4}) << "back to requester";
}

TEST_F(XiaFixture, CidIntentWithoutContentDrops) {
  const Xid cid = xid_from_label("content2");
  router.env().xid_table->set_local(XidType::kHid, hid);
  router.env().xid_table->set_local(XidType::kCid, cid);

  auto packet = packet_for(make_service_dag(ad, hid, XidType::kCid, cid, false));
  packet[6 + 12 + 1] = 1;
  const auto result = router.process(packet, 4, 0);
  EXPECT_EQ(result.action, Action::kDrop);
}

// ---------- multi-hop over the simulator ----------

TEST(XiaEndToEnd, TwoHopFallbackPath) {
  netsim::Network net;
  auto path = netsim::make_linear_path(
      net, 2, registry(), [](std::size_t i) { return netsim::make_basic_env(i); });

  const Xid ad = xid_from_label("ad-x");
  const Xid hid = xid_from_label("hid-x");
  const Xid sid = xid_from_label("sid-x");

  // Router 0 only knows the AD (downstream); router 1 is the AD and routes
  // the HID to the destination host's face.
  auto& r0 = *path->routers[0];
  auto& r1 = *path->routers[1];
  r0.env().default_egress.reset();
  r1.env().default_egress.reset();
  r0.env().xid_table->insert(XidType::kAd, ad, path->downstream_face[0]);
  r1.env().xid_table->set_local(XidType::kAd, ad);
  r1.env().xid_table->insert(XidType::kHid, hid, path->downstream_face[1]);

  bool delivered = false;
  path->destination.set_receiver(
      [&](netsim::FaceId, netsim::PacketBytes packet, SimTime) {
        delivered = true;
        const auto parsed = extract_dag(*DipHeader::parse(packet));
        ASSERT_TRUE(parsed.has_value());
        // Last node *entered* was the AD (router 1 owns it); the packet was
        // then routed toward the HID, i.e., to us.
        EXPECT_EQ(parsed->dag.node(parsed->cursor).xid, ad);
      });

  const Dag dag = make_service_dag(ad, hid, XidType::kSid, sid, false);
  path->source.send(path->source_face, make_xia_header(dag)->serialize());
  net.run();
  EXPECT_TRUE(delivered);
}

TEST(XidFromLabel, DeterministicAndDistinct) {
  EXPECT_EQ(xid_from_label("x"), xid_from_label("x"));
  EXPECT_NE(xid_from_label("x"), xid_from_label("y"));
  EXPECT_NE(xid_code(xid_from_label("x")), xid_code(xid_from_label("y")));
}

}  // namespace
}  // namespace dip::xia
