// Traffic generators: rate accuracy, Poisson statistics, on/off duty cycle,
// and composition with the DIP path.
#include <gtest/gtest.h>

#include "dip/core/ip.hpp"
#include "dip/netsim/topology.hpp"
#include "dip/netsim/traffic.hpp"

namespace dip::netsim {
namespace {

struct TrafficFixture : ::testing::Test {
  TrafficFixture() {
    net.add_node(sender);
    net.add_node(sink);
    std::tie(sender_face, sink_face) = net.connect(sender, sink);
    sink.set_receiver([&](FaceId, PacketBytes packet, SimTime at) {
      ++received;
      received_bytes += packet.size();
      last_at = at;
    });
  }

  PacketFactory factory(std::size_t size) {
    return [size] { return PacketBytes(size, 0xAA); };
  }

  Network net;
  HostNode sender;
  HostNode sink;
  FaceId sender_face = 0;
  FaceId sink_face = 0;
  std::uint64_t received = 0;
  std::uint64_t received_bytes = 0;
  SimTime last_at = 0;
};

TEST_F(TrafficFixture, CbrHitsTargetRate) {
  CbrSource::Config config;
  config.rate_bytes_per_sec = 1'000'000;  // 1 MB/s
  config.packet_size_hint = 1000;
  CbrSource source(sender, sender_face, factory(1000), config);

  source.start(1 * kSecond);
  net.run();

  // 1 MB over 1 second at 1000 B packets = ~1000 packets.
  EXPECT_NEAR(static_cast<double>(source.packets_sent()), 1000.0, 10.0);
  EXPECT_EQ(received, source.packets_sent());
  EXPECT_EQ(received_bytes, source.bytes_sent());
}

TEST_F(TrafficFixture, CbrStopsAtDeadline) {
  CbrSource::Config config;
  config.rate_bytes_per_sec = 1'000'000;
  config.packet_size_hint = 1000;
  CbrSource source(sender, sender_face, factory(1000), config);
  source.start(100 * kMillisecond);
  net.run();
  EXPECT_LE(last_at, 101 * kMillisecond);
  EXPECT_NEAR(static_cast<double>(source.packets_sent()), 100.0, 5.0);
}

TEST_F(TrafficFixture, PoissonMeanRateConverges) {
  PoissonSource::Config config;
  config.mean_packets_per_sec = 5000.0;
  config.seed = 42;
  PoissonSource source(sender, sender_face, factory(100), config);
  source.start(1 * kSecond);
  net.run();

  // Poisson(5000): stddev ~71, allow 5 sigma.
  EXPECT_NEAR(static_cast<double>(source.packets_sent()), 5000.0, 360.0);
}

TEST_F(TrafficFixture, PoissonIsDeterministicPerSeed) {
  auto run_once = [&](std::uint64_t seed) {
    Network local_net;
    HostNode a;
    HostNode b;
    local_net.add_node(a);
    local_net.add_node(b);
    const auto [fa, fb] = local_net.connect(a, b);
    (void)fb;
    PoissonSource::Config config;
    config.mean_packets_per_sec = 1000;
    config.seed = seed;
    PoissonSource source(a, fa, [] { return PacketBytes(10); }, config);
    source.start(200 * kMillisecond);
    local_net.run();
    return source.packets_sent();
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

TEST_F(TrafficFixture, OnOffDutyCycleShapesThroughput) {
  OnOffSource::Config config;
  config.peak_rate_bytes_per_sec = 1'000'000;
  config.packet_size_hint = 1000;
  config.on_period = 10 * kMillisecond;
  config.off_period = 40 * kMillisecond;  // 20% duty cycle
  OnOffSource source(sender, sender_face, factory(1000), config);
  source.start(1 * kSecond);
  net.run();

  // 20% of the 1 MB/s CBR volume, within slack for period boundaries.
  EXPECT_NEAR(static_cast<double>(source.packets_sent()), 200.0, 30.0);
}

TEST(TrafficIntegration, CbrThroughDipPathDeliversEverything) {
  Network net;
  auto path = make_linear_path(net, 2, make_default_registry(), [](std::size_t i) {
    return make_basic_env(static_cast<std::uint32_t>(i));
  });
  for (std::size_t i = 0; i < 2; ++i) {
    path->routers[i]->env().default_egress.reset();
    path->routers[i]->env().fib32->insert({fib::parse_ipv4("10.0.0.0").value(), 8},
                                          path->downstream_face[i]);
  }

  const auto header = core::make_dip32_header(fib::parse_ipv4("10.0.0.9").value(),
                                              fib::parse_ipv4("172.16.0.1").value());
  const auto wire = header->serialize();

  CbrSource::Config config;
  config.rate_bytes_per_sec = 260'000;
  config.packet_size_hint = 26;
  CbrSource source(path->source, path->source_face, [&] { return wire; }, config);
  source.start(100 * kMillisecond);
  net.run();

  EXPECT_GT(source.packets_sent(), 900u);
  EXPECT_EQ(path->destination.received(), source.packets_sent())
      << "every generated packet must cross the DIP path";
}

}  // namespace
}  // namespace dip::netsim
