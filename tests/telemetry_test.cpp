// F_int telemetry: per-hop record collection, overflow handling, and
// integration with other FN compositions (§5 "efficient network telemetry").
#include <gtest/gtest.h>

#include "dip/core/ip.hpp"
#include "dip/core/router.hpp"
#include "dip/netsim/dip_node.hpp"
#include "dip/netsim/topology.hpp"
#include "dip/telemetry/telemetry.hpp"

namespace dip::telemetry {
namespace {

using core::Action;
using core::DipHeader;
using core::OpKey;
using core::Router;

std::shared_ptr<core::OpRegistry> registry() {
  static auto r = netsim::make_default_registry();
  return r;
}

std::vector<std::uint8_t> telemetry_packet(std::size_t max_hops) {
  core::HeaderBuilder b;
  add_telemetry_fn(b, max_hops);
  return b.build()->serialize();
}

std::span<const std::uint8_t> telemetry_field(const DipHeader& h) {
  return std::span<const std::uint8_t>(h.locations)
      .subspan(h.fns[0].field_loc / 8, h.fns[0].range().byte_length());
}

TEST(Telemetry, EachHopAppendsOneRecord) {
  std::vector<Router> routers;
  for (std::uint32_t i = 0; i < 3; ++i) {
    auto env = netsim::make_basic_env(i + 10);
    env.default_egress = 1;
    routers.emplace_back(std::move(env), registry().get());
  }

  auto packet = telemetry_packet(4);
  SimTime now = 1000;
  for (auto& router : routers) {
    EXPECT_EQ(router.process(packet, /*ingress=*/5, now).action, Action::kForward);
    now += 500;
  }

  const auto header = DipHeader::parse(packet);
  ASSERT_TRUE(header.has_value());
  const auto report = read_telemetry(telemetry_field(*header));
  ASSERT_TRUE(report);
  EXPECT_FALSE(report->overflowed);
  ASSERT_EQ(report->hops.size(), 3u);
  EXPECT_EQ(report->hops[0].node_id, 10);
  EXPECT_EQ(report->hops[1].node_id, 11);
  EXPECT_EQ(report->hops[2].node_id, 12);
  EXPECT_EQ(report->hops[0].timestamp_lo, 1000u);
  EXPECT_EQ(report->hops[2].timestamp_lo, 2000u);
  EXPECT_EQ(report->hops[0].ingress_face, 5);
}

TEST(Telemetry, OverflowSetsFlagAndKeepsForwarding) {
  auto env = netsim::make_basic_env(1);
  env.default_egress = 1;
  Router router(std::move(env), registry().get());

  auto packet = telemetry_packet(2);  // room for two records only
  for (int hop = 0; hop < 4; ++hop) {
    EXPECT_EQ(router.process(packet, 0, 0).action, Action::kForward)
        << "telemetry must never break delivery";
  }

  const auto header = DipHeader::parse(packet);
  const auto report = read_telemetry(telemetry_field(*header));
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->overflowed);
  EXPECT_EQ(report->hops.size(), 2u);
}

TEST(Telemetry, ComposesWithIpForwarding) {
  // DIP's whole point: bolt telemetry onto IP forwarding by appending one FN.
  auto env = netsim::make_basic_env(3);
  env.fib32->insert({fib::ipv4_from_u32(0x0A000000), 8}, 9);
  Router router(std::move(env), registry().get());

  core::HeaderBuilder b;
  b.add_router_fn(OpKey::kMatch32, fib::ipv4_from_u32(0x0A000001).bytes);
  b.add_router_fn(OpKey::kSource, fib::ipv4_from_u32(0x0B000001).bytes);
  add_telemetry_fn(b, 4);
  auto packet = b.build()->serialize();

  const auto result = router.process(packet, 2, 77);
  EXPECT_EQ(result.egress, std::vector<core::FaceId>{9});

  const auto header = DipHeader::parse(packet);
  const auto field = std::span<const std::uint8_t>(header->locations)
                         .subspan(header->fns[2].field_loc / 8,
                                  header->fns[2].range().byte_length());
  const auto report = read_telemetry(field);
  ASSERT_TRUE(report.has_value());
  ASSERT_EQ(report->hops.size(), 1u);
  EXPECT_EQ(report->hops[0].node_id, 3);
  EXPECT_EQ(report->hops[0].timestamp_lo, 77u);
}

TEST(Telemetry, ReadRejectsGarbage) {
  EXPECT_FALSE(read_telemetry(std::vector<std::uint8_t>{}));
  // Count claims more records than the field holds.
  const std::vector<std::uint8_t> lying = {9, 0, 1, 2, 3};
  EXPECT_FALSE(read_telemetry(lying));
}

TEST(Telemetry, FieldSizing) {
  EXPECT_EQ(telemetry_field_bytes(0), 2u);
  EXPECT_EQ(telemetry_field_bytes(4), 2u + 32u);
}

}  // namespace
}  // namespace dip::telemetry
