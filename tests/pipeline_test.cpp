// Fast-path pipeline tests: SpscRing, FlowCache, process_batch vs process
// equivalence (property-style), parallel-bit relaxation, and RouterPool
// sharding. The equivalence suite is the safety net for every fast-path
// shortcut: cache on vs off and any burst grouping must be observationally
// identical to the seed single-packet path.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <random>
#include <set>
#include <vector>

#include "dip/core/builder.hpp"
#include "dip/core/flow_cache.hpp"
#include "dip/core/ip.hpp"
#include "dip/core/ring.hpp"
#include "dip/core/router.hpp"
#include "dip/core/router_pool.hpp"
#include "dip/ndn/ndn.hpp"
#include "dip/netsim/dip_node.hpp"
#include "dip/netsim/topology.hpp"
#include "dip/qos/dps.hpp"
#include "dip/telemetry/counters.hpp"

namespace dip::core {
namespace {

std::shared_ptr<OpRegistry> registry() {
  static std::shared_ptr<OpRegistry> r = netsim::make_default_registry();
  return r;
}

RouterEnv routed_env(bool with_cache = true) {
  RouterEnv env = netsim::make_basic_env(1);
  if (!with_cache) env.flow_cache.reset();
  env.fib32->insert({fib::ipv4_from_u32(0x0A000000), 8}, 7);
  env.fib32->insert({fib::ipv4_from_u32(0x0A010000), 16}, 2);
  env.fib128->insert({fib::parse_ipv6("2001:db8::").value(), 32}, 9);
  return env;
}

std::vector<std::uint8_t> dip32_packet(std::uint32_t dst, std::uint8_t hops = 64,
                                       bool parallel = false) {
  auto h = make_dip32_header(fib::ipv4_from_u32(dst), fib::ipv4_from_u32(0xC0A80001),
                             NextHeader::kNone, hops);
  h->basic.parallel = parallel;
  return h->serialize();
}

std::vector<std::uint8_t> dip128_packet(const char* dst) {
  const auto h = make_dip128_header(fib::parse_ipv6(dst).value(),
                                    fib::parse_ipv6("2001:db8::1").value());
  return h->serialize();
}

// ---------------------------------------------------------------- SpscRing

TEST(SpscRing, FifoOrderAcrossWrap) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  int out = 0;
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(ring.try_push(round * 2));
    ASSERT_TRUE(ring.try_push(round * 2 + 1));
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, round * 2);
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, round * 2 + 1);
  }
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, RejectsWhenFull) {
  SpscRing<int> ring(2);
  ASSERT_TRUE(ring.try_push(1));
  ASSERT_TRUE(ring.try_push(2));
  EXPECT_FALSE(ring.try_push(3));
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_TRUE(ring.try_push(3));  // slot freed
  EXPECT_EQ(ring.size(), 2u);
}

TEST(SpscRing, PopBulkDrainsUpToRequest) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(ring.try_push(int{i}));
  std::vector<int> out(4);
  EXPECT_EQ(ring.pop_bulk(out), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(ring.pop_bulk(out), 2u);
  EXPECT_EQ(out[0], 4);
  EXPECT_EQ(out[1], 5);
  EXPECT_EQ(ring.pop_bulk(out), 0u);
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
}

// --------------------------------------------------------------- FlowCache

TEST(FlowCache, FindsInsertedVerdictUnderSameGeneration) {
  FlowCache cache(64);
  const std::array<std::uint8_t, 4> key{10, 0, 0, 1};
  EXPECT_EQ(cache.find(key, 1), nullptr);
  cache.insert(key, 1, {42, false});
  const auto* v = cache.find(key, 1);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->egress, 42u);
  EXPECT_FALSE(v->no_route);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(FlowCache, StaleGenerationIsAMissAndErases) {
  FlowCache cache(64);
  const std::array<std::uint8_t, 4> key{10, 0, 0, 1};
  cache.insert(key, 1, {42, false});
  EXPECT_EQ(cache.find(key, 2), nullptr);  // FIB changed: stale
  EXPECT_EQ(cache.entries(), 0u);          // erased on probe
  cache.insert(key, 2, {43, false});
  ASSERT_NE(cache.find(key, 2), nullptr);
  EXPECT_EQ(cache.find(key, 2)->egress, 43u);
}

TEST(FlowCache, CachesNegativeVerdicts) {
  FlowCache cache(64);
  const std::array<std::uint8_t, 4> key{11, 0, 0, 1};
  cache.insert(key, 1, {0, true});
  const auto* v = cache.find(key, 1);
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(v->no_route);
}

TEST(FlowCache, DifferentWidthKeysNeverAlias) {
  FlowCache cache(64);
  std::array<std::uint8_t, 16> wide{};
  wide[0] = 10;
  wide[3] = 1;  // first 4 bytes == the narrow key
  const std::array<std::uint8_t, 4> narrow{10, 0, 0, 1};
  cache.insert(narrow, 1, {4, false});
  cache.insert(wide, 1, {16, false});
  ASSERT_NE(cache.find(narrow, 1), nullptr);
  ASSERT_NE(cache.find(wide, 1), nullptr);
  EXPECT_EQ(cache.find(narrow, 1)->egress, 4u);
  EXPECT_EQ(cache.find(wide, 1)->egress, 16u);
}

TEST(FlowCache, SurvivesOverfillByEvicting) {
  FlowCache cache(16);
  for (std::uint32_t i = 0; i < 1000; ++i) {
    const std::array<std::uint8_t, 4> key{
        static_cast<std::uint8_t>(i >> 24), static_cast<std::uint8_t>(i >> 16),
        static_cast<std::uint8_t>(i >> 8), static_cast<std::uint8_t>(i)};
    cache.insert(key, 1, {i, false});
    const auto* v = cache.find(key, 1);  // just-inserted key is always findable
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->egress, i);
  }
  EXPECT_LE(cache.entries(), cache.capacity());
  EXPECT_GT(cache.evictions(), 0u);
}

// ------------------------------------------------- Router + flow cache

TEST(RouterFlowCache, SecondPacketOfAFlowHitsTheCache) {
  Router router(routed_env(), registry().get());
  auto p1 = dip32_packet(0x0A000001);
  auto p2 = dip32_packet(0x0A000001);
  EXPECT_EQ(router.process(p1, 0, 0).egress, std::vector<FaceId>{7});
  EXPECT_EQ(router.process(p2, 0, 1).egress, std::vector<FaceId>{7});
  EXPECT_EQ(router.env().counters.flow_cache_misses, 1u);
  EXPECT_EQ(router.env().counters.flow_cache_hits, 1u);
  // Counter semantics: a hit still counts as an executed match FN.
  EXPECT_EQ(router.env().executions_of(OpKey::kMatch32), 2u);
}

TEST(RouterFlowCache, RouteChangeInvalidatesWithoutFlush) {
  Router router(routed_env(), registry().get());
  auto p1 = dip32_packet(0x0A020203);
  EXPECT_EQ(router.process(p1, 0, 0).egress, std::vector<FaceId>{7});  // via 10/8

  // A more specific route appears; the memoized 10/8 verdict must die.
  router.env().fib32->insert({fib::ipv4_from_u32(0x0A020200), 24}, 11);
  auto p2 = dip32_packet(0x0A020203);
  EXPECT_EQ(router.process(p2, 0, 1).egress, std::vector<FaceId>{11});

  // And the refreshed verdict is served from cache afterwards.
  auto p3 = dip32_packet(0x0A020203);
  EXPECT_EQ(router.process(p3, 0, 2).egress, std::vector<FaceId>{11});
  EXPECT_EQ(router.env().counters.flow_cache_hits, 1u);
  EXPECT_EQ(router.env().counters.flow_cache_misses, 2u);
}

TEST(RouterFlowCache, NegativeVerdictInvalidatedByNewRoute) {
  Router router(routed_env(), registry().get());
  auto p1 = dip32_packet(0x0B000001);  // outside every prefix
  auto p2 = dip32_packet(0x0B000001);
  EXPECT_EQ(router.process(p1, 0, 0).reason, DropReason::kNoRoute);
  EXPECT_EQ(router.process(p2, 0, 1).reason, DropReason::kNoRoute);
  EXPECT_EQ(router.env().counters.flow_cache_hits, 1u);  // negative hit

  router.env().fib32->insert({fib::ipv4_from_u32(0x0B000000), 8}, 5);
  auto p3 = dip32_packet(0x0B000001);
  EXPECT_EQ(router.process(p3, 0, 2).egress, std::vector<FaceId>{5});
}

TEST(RouterFlowCache, CachesMatch128Flows) {
  Router router(routed_env(), registry().get());
  auto p1 = dip128_packet("2001:db8::42");
  auto p2 = dip128_packet("2001:db8::42");
  EXPECT_EQ(router.process(p1, 0, 0).egress, std::vector<FaceId>{9});
  EXPECT_EQ(router.process(p2, 0, 1).egress, std::vector<FaceId>{9});
  EXPECT_EQ(router.env().counters.flow_cache_hits, 1u);
}

// ------------------------------------------------- parallel-bit relaxation

TEST(ParallelBit, IndependentFnsRunRelaxed) {
  Router router(routed_env(), registry().get());
  auto packet = dip32_packet(0x0A000001, 64, /*parallel=*/true);
  const auto result = router.process(packet, 0, 0);
  EXPECT_EQ(result.action, Action::kForward);
  EXPECT_EQ(result.egress, std::vector<FaceId>{7});
  EXPECT_EQ(router.env().counters.parallel_relaxed, 1u);
  EXPECT_EQ(router.env().counters.parallel_fallback, 0u);
}

TEST(ParallelBit, OrderDependentFnFallsBackToSequential) {
  Router router(routed_env(), registry().get());
  // F_FIB mutates the PIT — not order-independent, so the parallel bit must
  // be ignored (counted as a fallback).
  auto h = ndn::make_interest_header32(0x0A000001);
  ASSERT_TRUE(h.has_value());
  h->basic.parallel = true;
  auto packet = h->serialize();
  (void)router.process(packet, 3, 0);
  EXPECT_EQ(router.env().counters.parallel_relaxed, 0u);
  EXPECT_EQ(router.env().counters.parallel_fallback, 1u);
}

TEST(ParallelBit, OverlappingFieldsFallBackToSequential) {
  Router router(routed_env(), registry().get());
  // Two order-independent FNs sliced over overlapping bits: ineligible.
  const std::array<std::uint8_t, 4> dst{10, 0, 0, 1};
  HeaderBuilder b;
  const std::uint16_t loc = b.add_location(dst);
  b.add_fn(FnTriple::router(loc, 32, OpKey::kMatch32));
  b.add_fn(FnTriple::router(loc, 16, OpKey::kTelemetry));  // overlaps the dst
  b.parallel(true);
  auto h = b.build();
  ASSERT_TRUE(h.has_value());
  auto packet = h->serialize();
  (void)router.process(packet, 0, 0);
  EXPECT_EQ(router.env().counters.parallel_relaxed, 0u);
  EXPECT_EQ(router.env().counters.parallel_fallback, 1u);
}

// ------------------------------------------------------- batch equivalence

// Random packet soup: valid DIP-32/DIP-128/NDN flows plus every structural
// failure mode the single-packet path handles.
class PacketSoup {
 public:
  explicit PacketSoup(std::uint64_t seed) : rng_(seed) {}

  std::vector<std::uint8_t> next() {
    switch (rng_() % 10) {
      case 0:
      case 1:
      case 2: {  // routable / unroutable DIP-32 flows (small flow universe)
        const std::uint32_t dst = 0x0A000000 + rng_() % 64 + ((rng_() % 2) << 24);
        return dip32_packet(dst);
      }
      case 3:
        return dip128_packet(rng_() % 2 ? "2001:db8::7" : "2002::7");
      case 4: {  // NDN interest; remember the name for a later data packet
        const auto code = static_cast<std::uint32_t>(0x0A000000 + rng_() % 16);
        names_.push_back(code);
        return ndn::make_interest_header32(code)->serialize();
      }
      case 5: {  // NDN data for a pending (or random) name
        const std::uint32_t code = names_.empty()
                                       ? 0x0A000001
                                       : names_[rng_() % names_.size()];
        return ndn::make_data_header32(code)->serialize();
      }
      case 6: {  // truncated
        auto p = dip32_packet(0x0A000001);
        p.resize(rng_() % p.size());
        return p;
      }
      case 7: {  // corrupted checksum byte
        auto p = dip32_packet(0x0A000002);
        p[5] ^= 0x5A;
        return p;
      }
      case 8:  // expiring hop limit
        return dip32_packet(0x0A000003, 1);
      default: {  // parallel-bit or unsupported-FN packet
        if (rng_() % 2) return dip32_packet(0x0A000004, 64, /*parallel=*/true);
        HeaderBuilder b;
        const std::array<std::uint8_t, 16> tag{};
        b.add_router_fn(OpKey::kMac, tag);  // kMac is disabled in the envs
        return b.build()->serialize();
      }
    }
  }

 private:
  std::mt19937_64 rng_;
  std::vector<std::uint32_t> names_;
};

void expect_same_result(const ProcessResult& a, const ProcessResult& b,
                        std::size_t packet_idx) {
  EXPECT_EQ(a.action, b.action) << "packet " << packet_idx;
  EXPECT_EQ(a.reason, b.reason) << "packet " << packet_idx;
  EXPECT_EQ(a.egress, b.egress) << "packet " << packet_idx;
  EXPECT_EQ(a.offending_key, b.offending_key) << "packet " << packet_idx;
  EXPECT_EQ(a.respond_from_cache, b.respond_from_cache) << "packet " << packet_idx;
}

// The tentpole property: for any burst grouping, process_batch with the flow
// cache on is observationally identical (verdicts AND packet bytes) to the
// seed per-packet path with the cache off.
TEST(BatchEquivalence, RandomSoupMatchesSequentialPath) {
  RouterEnv env_batch = routed_env(/*with_cache=*/true);
  RouterEnv env_seq = routed_env(/*with_cache=*/false);
  env_batch.disabled_keys.insert(OpKey::kMac);
  env_seq.disabled_keys.insert(OpKey::kMac);
  Router batch_router(std::move(env_batch), registry().get());
  Router seq_router(std::move(env_seq), registry().get());

  std::mt19937_64 rng(0xD1Bu);
  PacketSoup soup(0xD1Bu);

  SimTime now = 0;
  std::size_t packet_idx = 0;
  for (int burst = 0; burst < 200; ++burst, ++now) {
    const std::size_t n = 1 + rng() % 48;
    const FaceId ingress = static_cast<FaceId>(rng() % 4);

    std::vector<std::vector<std::uint8_t>> a(n);  // batch copies
    std::vector<std::vector<std::uint8_t>> b(n);  // sequential copies
    std::vector<PacketRef> refs(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = soup.next();
      b[i] = a[i];
      refs[i] = PacketRef(a[i]);
    }

    std::vector<ProcessResult> batch_results(n);
    batch_router.process_batch(refs, ingress, now, batch_results);

    for (std::size_t i = 0; i < n; ++i, ++packet_idx) {
      const ProcessResult seq_result = seq_router.process(b[i], ingress, now);
      expect_same_result(batch_results[i], seq_result, packet_idx);
      EXPECT_EQ(a[i], b[i]) << "packet bytes diverged at " << packet_idx;
    }
  }

  // The property only means something if the cache actually engaged.
  EXPECT_GT(batch_router.env().counters.flow_cache_hits, 0u);
  EXPECT_EQ(seq_router.env().counters.flow_cache_hits, 0u);
  // Both engines saw identical traffic.
  EXPECT_EQ(batch_router.env().counters.processed,
            seq_router.env().counters.processed);
  EXPECT_EQ(batch_router.env().counters.forwarded,
            seq_router.env().counters.forwarded);
  EXPECT_EQ(batch_router.env().counters.dropped, seq_router.env().counters.dropped);
  EXPECT_EQ(batch_router.env().counters.errors, seq_router.env().counters.errors);
}

TEST(BatchEquivalence, ResultSlotsAreFullyReset) {
  Router router(routed_env(), registry().get());
  std::vector<ProcessResult> results(1);
  results[0].fail_unsupported(OpKey::kMac);  // stale junk in the slot
  results[0].egress = {99, 98};

  auto packet = dip32_packet(0x0A000001);
  const PacketRef ref(packet);
  router.process_batch({&ref, 1}, 0, 0, results);
  EXPECT_EQ(results[0].action, Action::kForward);
  EXPECT_EQ(results[0].reason, DropReason::kNone);
  EXPECT_EQ(results[0].egress, std::vector<FaceId>{7});
  EXPECT_FALSE(results[0].respond_from_cache);
}

// Burst shapes around the wave-eligibility edges: 1 (singleton stays on the
// per-packet path), 3/7 (odd partial bursts), 33 (past the bench's 32-wide
// shape). Strict and lenient both run — quarantine vs drop must not depend
// on the grouping either.
TEST(BatchEquivalence, FixedBurstShapesMatchSequential) {
  for (const ValidationMode mode : {ValidationMode::kStrict, ValidationMode::kLenient}) {
    RouterEnv env_batch = routed_env(/*with_cache=*/true);
    RouterEnv env_seq = routed_env(/*with_cache=*/false);
    env_batch.disabled_keys.insert(OpKey::kMac);
    env_seq.disabled_keys.insert(OpKey::kMac);
    Router batch_router(std::move(env_batch), registry().get());
    Router seq_router(std::move(env_seq), registry().get());
    batch_router.set_validation(mode);
    seq_router.set_validation(mode);

    PacketSoup soup(0xB1257u + static_cast<unsigned>(mode));
    SimTime now = 0;
    std::size_t packet_idx = 0;
    for (const std::size_t n : {1, 3, 7, 33}) {
      for (int repeat = 0; repeat < 20; ++repeat, ++now) {
        std::vector<std::vector<std::uint8_t>> a(n);
        std::vector<std::vector<std::uint8_t>> b(n);
        std::vector<PacketRef> refs(n);
        for (std::size_t i = 0; i < n; ++i) {
          a[i] = soup.next();
          b[i] = a[i];
          refs[i] = PacketRef(a[i]);
        }
        std::vector<ProcessResult> results(n);
        batch_router.process_batch(refs, 0, now, results);
        for (std::size_t i = 0; i < n; ++i, ++packet_idx) {
          const ProcessResult seq = seq_router.process(b[i], 0, now);
          expect_same_result(results[i], seq, packet_idx);
          EXPECT_EQ(a[i], b[i]) << "packet bytes diverged at " << packet_idx;
        }
      }
    }
    EXPECT_EQ(batch_router.env().counters.quarantined,
              seq_router.env().counters.quarantined);
  }
}

// A burst where phase 1 kills every packet must short-circuit phase 2
// cleanly: strict mode drops as malformed, lenient mode quarantines, and
// in both cases the per-slot verdicts and counters account for all n.
TEST(BatchEquivalence, AllMalformedBurstDropsOrQuarantinesEveryPacket) {
  const std::size_t n = 9;
  for (const ValidationMode mode : {ValidationMode::kStrict, ValidationMode::kLenient}) {
    Router router(routed_env(), registry().get());
    router.set_validation(mode);

    std::vector<std::vector<std::uint8_t>> packets(n);
    std::vector<PacketRef> refs(n);
    for (std::size_t i = 0; i < n; ++i) {
      packets[i] = dip32_packet(0x0A000001 + static_cast<std::uint32_t>(i));
      if (i % 2 == 0) {
        packets[i][5] ^= 0x5A;  // checksum corruption
      } else {
        packets[i].resize(3);  // truncation
      }
      refs[i] = PacketRef(packets[i]);
    }
    std::vector<ProcessResult> results(n);
    router.process_batch(refs, 0, 0, results);

    const DropReason want = mode == ValidationMode::kLenient
                                ? DropReason::kCorruptQuarantine
                                : DropReason::kMalformed;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(results[i].action, Action::kDrop) << i;
      EXPECT_EQ(results[i].reason, want) << i;
      EXPECT_TRUE(results[i].egress.empty()) << i;
    }
    EXPECT_EQ(router.env().counters.processed, n);
    EXPECT_EQ(router.env().counters.dropped, n);
    EXPECT_EQ(router.env().counters.quarantined,
              mode == ValidationMode::kLenient ? n : 0u);
  }
}

// Mixed op-key bursts with a stateful FN: F_dps packets interleaved with
// plain match packets. The DPS fair-share estimator and its seeded drop
// coin evolve per *arrival*, so batch dispatch must feed it in exactly
// arrival order — two independently-seeded engines (burst vs per-packet)
// agree verdict-for-verdict only if the order is preserved.
TEST(BatchEquivalence, MixedOpKeyBurstPreservesDpsArrivalOrder) {
  auto make_engine = [] {
    auto reg = netsim::make_default_registry();
    qos::FairShareEstimator::Config fair;
    fair.capacity_bytes_per_sec = 100'000;
    fair.window = 10 * kMillisecond;
    reg->add(std::make_unique<qos::DpsOp>(fair, /*seed=*/7));
    return reg;
  };
  auto reg_batch = make_engine();
  auto reg_seq = make_engine();
  RouterEnv env_batch = routed_env(/*with_cache=*/true);
  RouterEnv env_seq = routed_env(/*with_cache=*/false);
  env_batch.default_egress = 1;
  env_seq.default_egress = 1;
  Router batch_router(std::move(env_batch), reg_batch.get());
  Router seq_router(std::move(env_seq), reg_seq.get());

  // Overload the heavy flow (10 MB/s label against 100 kB/s capacity) so
  // the policer actually drops — order bugs would show as disagreeing
  // drop positions, not just counter totals.
  auto dps_packet = [](std::uint32_t flow, std::uint32_t label) {
    HeaderBuilder b;
    qos::add_dps_fn(b, flow, label);
    auto wire = b.build()->serialize();
    wire.resize(1000, 0);
    return wire;
  };

  SimTime now = 0;
  std::size_t packet_idx = 0;
  std::uint64_t batch_rate_drops = 0;
  for (int burst = 0; burst < 120; ++burst, now += 100 * kMicrosecond) {
    const std::size_t n = 32;
    std::vector<std::vector<std::uint8_t>> a(n);
    std::vector<std::vector<std::uint8_t>> b(n);
    std::vector<PacketRef> refs(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = (i % 2 == 0) ? dps_packet(1, 10'000'000)
                          : dip32_packet(0x0A010000 + static_cast<std::uint32_t>(i % 4));
      b[i] = a[i];
      refs[i] = PacketRef(a[i]);
    }
    std::vector<ProcessResult> results(n);
    batch_router.process_batch(refs, 0, now, results);
    for (std::size_t i = 0; i < n; ++i, ++packet_idx) {
      const ProcessResult seq = seq_router.process(b[i], 0, now);
      expect_same_result(results[i], seq, packet_idx);
      EXPECT_EQ(a[i], b[i]) << "packet bytes diverged at " << packet_idx;
      if (results[i].reason == DropReason::kRateExceeded) ++batch_rate_drops;
    }
  }
  // The property only bites if the policer engaged.
  EXPECT_GT(batch_rate_drops, 0u) << "DPS never dropped; overload too light";
}

// ---------------------------------------------------------------- RouterPool

TEST(RouterPool, ShardingIsDeterministicAndFlowAffine) {
  auto p1 = dip32_packet(0x0A000001);
  auto p2 = dip32_packet(0x0A000001, 17);  // same flow, different hop limit
  auto p3 = dip32_packet(0x0A010101);
  EXPECT_EQ(RouterPool::shard_of(p1, 4), RouterPool::shard_of(p1, 4));
  // Flow identity is the sliced dst field: hop limit must not affect it.
  EXPECT_EQ(RouterPool::shard_of(p1, 4), RouterPool::shard_of(p2, 4));
  EXPECT_LT(RouterPool::shard_of(p3, 4), 4u);
  EXPECT_EQ(RouterPool::shard_of(p1, 1), 0u);

  // NDN flow affinity: interest and data for one name shard identically.
  const auto interest = ndn::make_interest_header32(0x0A000042)->serialize();
  const auto data = ndn::make_data_header32(0x0A000042)->serialize();
  EXPECT_EQ(RouterPool::shard_of(interest, 4), RouterPool::shard_of(data, 4));
}

TEST(RouterPool, ProcessesEverythingAcrossWorkersWithSharedFib) {
  RouterEnv base = routed_env();
  const auto fib32 = base.fib32;  // one route table shared by all workers

  RouterPoolConfig config;
  config.workers = 4;
  config.max_batch = 32;

  std::mutex mu;
  std::map<std::uint32_t, std::set<std::size_t>> dst_workers;
  std::uint64_t forwarded = 0;

  RouterPool pool(
      registry().get(),
      [&](std::size_t i) {
        RouterEnv env = netsim::make_basic_env(100 + static_cast<std::uint32_t>(i));
        env.fib32 = fib32;
        return env;
      },
      config,
      [&](std::size_t worker, RouterPool::Item& item, ProcessResult& result) {
        // dst = first 4 bytes of the locations block (6 B basic + 2 FNs).
        const std::size_t locs = 6 + 2 * 6;
        std::uint32_t dst = 0;
        for (int b = 0; b < 4; ++b) dst = dst << 8 | item.packet[locs + b];
        std::lock_guard<std::mutex> lk(mu);
        dst_workers[dst].insert(worker);
        if (result.action == Action::kForward) ++forwarded;
      });

  constexpr std::size_t kPackets = 2000;
  std::mt19937_64 rng(7);
  for (std::size_t i = 0; i < kPackets; ++i) {
    const std::uint32_t dst = 0x0A000000 + static_cast<std::uint32_t>(rng() % 64);
    pool.submit(dip32_packet(dst), 0, static_cast<SimTime>(i));
  }
  pool.drain();

  const auto totals = pool.counters();
  EXPECT_EQ(totals.processed, kPackets);
  EXPECT_EQ(totals.forwarded, kPackets);  // every dst is inside 10/8
  {
    std::lock_guard<std::mutex> lk(mu);
    EXPECT_EQ(forwarded, kPackets);
    std::set<std::size_t> used;
    for (const auto& [dst, workers] : dst_workers) {
      EXPECT_EQ(workers.size(), 1u) << "flow " << dst << " migrated workers";
      used.insert(*workers.begin());
    }
    EXPECT_GT(used.size(), 1u);  // 64 flows actually spread across workers
  }
  // With 64 flows and 2000 packets the per-worker caches must be hot.
  EXPECT_GT(totals.flow_cache_hits, kPackets / 2);
  pool.stop();
}

TEST(RouterPool, DrainIsReusableAndStopIsIdempotent) {
  RouterPoolConfig config;
  config.workers = 2;
  RouterPool pool(
      registry().get(),
      [](std::size_t i) {
        RouterEnv env = netsim::make_basic_env(200 + static_cast<std::uint32_t>(i));
        env.fib32->insert({fib::ipv4_from_u32(0x0A000000), 8}, 7);
        return env;
      },
      config);

  for (int round = 0; round < 3; ++round) {
    for (std::uint32_t i = 0; i < 100; ++i) {
      pool.submit(dip32_packet(0x0A000000 + i), 0, round);
    }
    pool.drain();
    EXPECT_EQ(pool.counters().processed, 100u * (round + 1));
  }
  pool.stop();
  pool.stop();  // idempotent
  EXPECT_EQ(pool.counters().processed, 300u);
}

TEST(RouterPool, StopWithQueuedPacketsLosesAndDuplicatesNothing) {
  // stop() while the rings are still full: every accepted packet must be
  // processed exactly once before the workers join — no lost packets, no
  // double-processing. Each packet carries a sequence number in its payload
  // so the completion callback can account for every submission. (This test
  // runs under TSan in scripts/check.sh.)
  constexpr std::uint32_t kPackets = 5000;
  RouterPoolConfig config;
  config.workers = 4;
  config.max_batch = 8;

  std::mutex mu;
  std::vector<std::uint32_t> seen_count(kPackets, 0);
  RouterPool pool(
      registry().get(),
      [](std::size_t i) {
        RouterEnv env = netsim::make_basic_env(300 + static_cast<std::uint32_t>(i));
        env.fib32->insert({fib::ipv4_from_u32(0x0A000000), 8}, 7);
        return env;
      },
      config,
      [&](std::size_t, RouterPool::Item& item, ProcessResult&) {
        std::uint32_t seq = 0;
        const std::size_t n = item.packet.size();
        for (std::size_t b = 0; b < 4; ++b) seq = seq << 8 | item.packet[n - 4 + b];
        std::lock_guard<std::mutex> lk(mu);
        ASSERT_LT(seq, kPackets);
        ++seen_count[seq];
      });

  for (std::uint32_t i = 0; i < kPackets; ++i) {
    auto packet = dip32_packet(0x0A000000 + (i % 64));
    packet.push_back(static_cast<std::uint8_t>(i >> 24));
    packet.push_back(static_cast<std::uint8_t>(i >> 16));
    packet.push_back(static_cast<std::uint8_t>(i >> 8));
    packet.push_back(static_cast<std::uint8_t>(i));
    pool.submit(std::move(packet), 0, static_cast<SimTime>(i));
  }
  pool.stop();  // no drain(): queues are likely non-empty right here

  EXPECT_EQ(pool.counters().processed, kPackets);
  std::lock_guard<std::mutex> lk(mu);
  for (std::uint32_t i = 0; i < kPackets; ++i) {
    EXPECT_EQ(seen_count[i], 1u) << "sequence " << i;
  }
}

// ------------------------------------------------------------- aggregation

TEST(TelemetryCounters, AggregateSumsAcrossWorkers) {
  telemetry::RouterCounters a;
  telemetry::RouterCounters b;
  a.processed += 10;
  a.flow_cache_hits += 3;
  a.fn_by_key[1] += 2;
  b.processed += 5;
  b.flow_cache_hits += 1;
  b.fn_by_key[1] += 4;

  const telemetry::RouterCounters* all[] = {&a, &b};
  const telemetry::CounterSnapshot sum = telemetry::aggregate(all);
  EXPECT_EQ(sum.processed, 15u);
  EXPECT_EQ(sum.flow_cache_hits, 4u);
  EXPECT_EQ(sum.fn_by_key[1], 6u);
  EXPECT_DOUBLE_EQ(sum.flow_cache_hit_rate(), 1.0);
}

}  // namespace
}  // namespace dip::core
