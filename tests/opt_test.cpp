// OPT-over-DIP: session keys, the PVF/OPV chain across routers, destination
// verification, tamper/path-deviation detection, and Table-2 sizes.
#include <gtest/gtest.h>

#include "dip/core/router.hpp"
#include "dip/netsim/dip_node.hpp"
#include "dip/netsim/topology.hpp"
#include "dip/opt/opt.hpp"

namespace dip::opt {
namespace {

using core::Action;
using core::DipHeader;
using core::DropReason;
using core::OpKey;
using core::Router;

std::shared_ptr<core::OpRegistry> registry() {
  static auto r = netsim::make_default_registry();
  return r;
}

struct OptPath {
  std::vector<crypto::Block> secrets;
  std::vector<Router> routers;
  crypto::Block destination_secret;
  Session session;
};

OptPath make_path(std::size_t hops, crypto::MacKind kind = crypto::MacKind::kEm2) {
  OptPath path;
  crypto::Xoshiro256 rng(2022);
  for (std::size_t i = 0; i < hops; ++i) {
    path.secrets.push_back(rng.block());
    core::RouterEnv env = netsim::make_basic_env(static_cast<std::uint32_t>(i));
    env.node_secret = path.secrets.back();
    env.mac_kind = kind;
    env.default_egress = 1;  // the paper's port-wired eval
    path.routers.emplace_back(std::move(env), registry().get());
  }
  path.destination_secret = rng.block();
  path.session =
      negotiate_session(rng.block(), path.secrets, path.destination_secret, kind);
  return path;
}

std::vector<std::uint8_t> packet_with_payload(const DipHeader& h,
                                              std::span<const std::uint8_t> payload) {
  auto wire = h.serialize();
  wire.insert(wire.end(), payload.begin(), payload.end());
  return wire;
}

constexpr std::array<std::uint8_t, 5> kPayload = {'h', 'e', 'l', 'l', 'o'};

TEST(Table2, OptHeaderIs98Bytes) {
  OptPath path = make_path(1);
  const auto h = make_opt_header(path.session, kPayload, 1000);
  ASSERT_TRUE(h);
  EXPECT_EQ(h->wire_size(), 98u);
}

TEST(Table2, NdnOptHeaderIs108Bytes) {
  OptPath path = make_path(1);
  const auto h = make_ndn_opt_header(0x11223344, true, path.session, kPayload, 1000);
  ASSERT_TRUE(h);
  EXPECT_EQ(h->wire_size(), 108u);
}

TEST(OptHeader, TriplesMatchPaperSection3) {
  const auto fns = opt_fn_triples();
  ASSERT_EQ(fns.size(), 4u);
  EXPECT_EQ(fns[0], core::FnTriple::router(128, 128, OpKey::kParm));
  EXPECT_EQ(fns[1], core::FnTriple::router(0, 416, OpKey::kMac));
  EXPECT_EQ(fns[2], core::FnTriple::router(288, 128, OpKey::kMark));
  EXPECT_EQ(fns[3], core::FnTriple::host(0, 544, OpKey::kVer));
  EXPECT_TRUE(fns[3].host_tagged()) << "F_ver runs on the host, not routers";
}

// Run the packet through every router in path order; returns the final bytes.
std::vector<std::uint8_t> traverse(OptPath& path, std::vector<std::uint8_t> packet) {
  for (auto& router : path.routers) {
    const auto result = router.process(packet, 0, 0);
    EXPECT_EQ(result.action, Action::kForward) << "router must forward OPT packets";
  }
  return packet;
}

VerifyResult verify_received(const OptPath& path,
                             std::span<const std::uint8_t> packet) {
  const auto header = DipHeader::parse(packet);
  EXPECT_TRUE(header.has_value());
  const auto payload =
      std::span<const std::uint8_t>(packet).subspan(header->wire_size());
  return verify_packet(path.session, header->locations, payload);
}

class OptChain : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OptChain, VerifiesAcrossNHops) {
  OptPath path = make_path(GetParam());
  const auto h = make_opt_header(path.session, kPayload, 1000);
  const auto received = traverse(path, packet_with_payload(*h, kPayload));
  EXPECT_EQ(verify_received(path, received), VerifyResult::kOk);
}

INSTANTIATE_TEST_SUITE_P(HopCounts, OptChain, ::testing::Values(1, 2, 3, 5, 8));

TEST(Opt, BothMacPrimitivesVerify) {
  for (const auto kind : {crypto::MacKind::kEm2, crypto::MacKind::kAesCmac}) {
    OptPath path = make_path(3, kind);
    const auto h = make_opt_header(path.session, kPayload, 1000);
    const auto received = traverse(path, packet_with_payload(*h, kPayload));
    EXPECT_EQ(verify_received(path, received), VerifyResult::kOk);
  }
}

TEST(Opt, TamperedPayloadDetected) {
  OptPath path = make_path(3);
  const auto h = make_opt_header(path.session, kPayload, 1000);
  auto received = traverse(path, packet_with_payload(*h, kPayload));
  received.back() ^= 0xFF;  // payload tampering in flight (after last hop)
  EXPECT_EQ(verify_received(path, received), VerifyResult::kBadDataHash);
}

TEST(Opt, ForgedSourceDetected) {
  // An attacker without the destination key seeds PVF_0 with garbage.
  OptPath path = make_path(2);
  Session forged = path.session;
  forged.destination_key[0] ^= 1;  // attacker guesses wrong K_D
  const auto h = make_opt_header(forged, kPayload, 1000);
  const auto received = traverse(path, packet_with_payload(*h, kPayload));
  EXPECT_EQ(verify_received(path, received), VerifyResult::kBadPvf);
}

TEST(Opt, SkippedHopDetected) {
  OptPath path = make_path(3);
  const auto h = make_opt_header(path.session, kPayload, 1000);
  auto packet = packet_with_payload(*h, kPayload);
  // Only routers 0 and 2 process the packet (router 1 bypassed).
  (void)path.routers[0].process(packet, 0, 0);
  (void)path.routers[2].process(packet, 0, 0);
  EXPECT_EQ(verify_received(path, packet), VerifyResult::kBadPvf);
}

TEST(Opt, ReorderedPathDetected) {
  OptPath path = make_path(3);
  const auto h = make_opt_header(path.session, kPayload, 1000);
  auto packet = packet_with_payload(*h, kPayload);
  (void)path.routers[1].process(packet, 0, 0);
  (void)path.routers[0].process(packet, 0, 0);
  (void)path.routers[2].process(packet, 0, 0);
  EXPECT_EQ(verify_received(path, packet), VerifyResult::kBadPvf);
}

TEST(Opt, ExtraHopDetected) {
  OptPath path = make_path(2);
  const auto h = make_opt_header(path.session, kPayload, 1000);
  auto packet = packet_with_payload(*h, kPayload);
  (void)path.routers[0].process(packet, 0, 0);
  (void)path.routers[1].process(packet, 0, 0);
  (void)path.routers[1].process(packet, 0, 0);  // replayed hop
  EXPECT_NE(verify_received(path, packet), VerifyResult::kOk);
}

TEST(Opt, WrongSessionDetected) {
  OptPath path = make_path(2);
  const auto h = make_opt_header(path.session, kPayload, 1000);
  auto received = traverse(path, packet_with_payload(*h, kPayload));

  Session other = path.session;
  other.id[5] ^= 0x10;
  const auto header = DipHeader::parse(received);
  const auto payload =
      std::span<const std::uint8_t>(received).subspan(header->wire_size());
  EXPECT_EQ(verify_packet(other, header->locations, payload),
            VerifyResult::kBadSession);
}

TEST(Opt, StaleTimestampDetected) {
  OptPath path = make_path(1);
  const auto h = make_opt_header(path.session, kPayload, /*timestamp=*/1000);
  const auto received = traverse(path, packet_with_payload(*h, kPayload));

  const auto header = DipHeader::parse(received);
  const auto payload =
      std::span<const std::uint8_t>(received).subspan(header->wire_size());
  EXPECT_EQ(verify_packet(path.session, header->locations, payload,
                          /*now=*/1100, /*window=*/50),
            VerifyResult::kStale);
  EXPECT_EQ(verify_packet(path.session, header->locations, payload,
                          /*now=*/1040, /*window=*/50),
            VerifyResult::kOk);
}

TEST(Opt, MacWithoutParmIsCompositionError) {
  // A header whose F_MAC comes before any F_parm: the router flags it
  // malformed (scratch has no dynamic key).
  OptPath path = make_path(1);
  core::HeaderBuilder b;
  const auto block = make_source_block(path.session, kPayload, 0);
  b.add_location(block);
  b.add_fn(core::FnTriple::router(0, 416, OpKey::kMac));
  auto packet = b.build()->serialize();

  const auto result = path.routers[0].process(packet, 0, 0);
  EXPECT_EQ(result.action, Action::kDrop);
  EXPECT_EQ(result.reason, DropReason::kMalformed);
}

TEST(Opt, OpvAccumulatesEveryHop) {
  OptPath path = make_path(3);
  const auto h = make_opt_header(path.session, kPayload, 1000);
  auto packet = packet_with_payload(*h, kPayload);

  std::vector<crypto::Block> opv_states;
  for (auto& router : path.routers) {
    (void)router.process(packet, 0, 0);
    const auto header = DipHeader::parse(packet);
    opv_states.push_back(
        crypto::block_from(std::span<const std::uint8_t>(header->locations)
                               .subspan(kOpvOffset, 16)));
  }
  EXPECT_NE(opv_states[0], opv_states[1]);
  EXPECT_NE(opv_states[1], opv_states[2]);
}

// ---------- NDN+OPT ----------

TEST(NdnOpt, DataChainVerifiesAndFollowsPit) {
  // Producer-side data packet: F_PIT forwarding + the OPT chain.
  OptPath path = make_path(2);
  const std::uint32_t name_code = 0xAABBCCDD;

  // Pre-establish PIT state as if an interest had passed: router 0 and 1
  // each recorded face 9.
  for (auto& router : path.routers) {
    router.env().pit.record_interest(name_code, 9, 0);
    router.env().default_egress.reset();  // PIT must decide
  }

  const auto h = make_ndn_opt_header(name_code, /*interest=*/false, path.session,
                                     kPayload, 1000);
  ASSERT_TRUE(h);
  auto packet = packet_with_payload(*h, kPayload);

  for (auto& router : path.routers) {
    const auto result = router.process(packet, 0, 0);
    ASSERT_EQ(result.action, Action::kForward);
    EXPECT_EQ(result.egress, std::vector<core::FaceId>{9});
  }

  // Destination verifies the OPT chain (block sits at offset 0).
  EXPECT_EQ(verify_received(path, packet), VerifyResult::kOk);
}

TEST(NdnOpt, InterestCarriesFibFn) {
  OptPath path = make_path(1);
  const auto h = make_ndn_opt_header(1, true, path.session, kPayload, 0);
  ASSERT_TRUE(h);
  EXPECT_EQ(h->fns[0].key(), OpKey::kFib);
  const auto hd = make_ndn_opt_header(1, false, path.session, kPayload, 0);
  EXPECT_EQ(hd->fns[0].key(), OpKey::kPit);
}

// ---------- session negotiation ----------

TEST(Session, KeysMatchRouterDerivation) {
  crypto::Xoshiro256 rng(4);
  const std::vector<crypto::Block> secrets{rng.block(), rng.block()};
  const crypto::Block dest_secret = rng.block();
  const crypto::SessionId sid = rng.block();

  const Session s = negotiate_session(sid, secrets, dest_secret);
  ASSERT_EQ(s.router_keys.size(), 2u);
  // What each router derives per packet equals what negotiation handed out.
  EXPECT_EQ(s.router_keys[0], crypto::DrKey(secrets[0]).derive(sid));
  EXPECT_EQ(s.router_keys[1], crypto::DrKey(secrets[1]).derive(sid));
  EXPECT_EQ(s.destination_key, crypto::DrKey(dest_secret).derive(sid));
}

TEST(Session, SourceBlockLayout) {
  OptPath path = make_path(1);
  const auto block = make_source_block(path.session, kPayload, 0xAABBCCDD);
  // Session ID at bytes [16,32).
  EXPECT_TRUE(std::equal(path.session.id.begin(), path.session.id.end(),
                         block.begin() + kSessionIdOffset));
  // Timestamp big-endian at [32,36).
  EXPECT_EQ(block[kTimestampOffset], 0xAA);
  EXPECT_EQ(block[kTimestampOffset + 3], 0xDD);
  // OPV starts zeroed.
  for (std::size_t i = kOpvOffset; i < kBlockBytes; ++i) EXPECT_EQ(block[i], 0);
}

}  // namespace
}  // namespace dip::opt
