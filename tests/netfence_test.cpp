// NetFence-style F_cc: tag codec, MAC protection, bottleneck downgrades,
// AIMD sender reaction, and the closed control loop over the simulator.
#include <gtest/gtest.h>

#include "dip/netfence/netfence.hpp"
#include "dip/netsim/topology.hpp"

namespace dip::netfence {
namespace {

using core::Action;
using core::OpKey;

crypto::Block as_key() { return crypto::Xoshiro256(0xA5).block(); }

// ---------- tag codec ----------

TEST(CcTag, ReadWriteRoundTrip) {
  CcTag tag;
  tag.action = CcAction::kDown;
  tag.rate_bps = 123456;
  tag.mac = crypto::Xoshiro256(1).block();

  std::array<std::uint8_t, kTagBytes> field{};
  tag.write(field);
  const CcTag back = CcTag::read(field);
  EXPECT_EQ(back.action, CcAction::kDown);
  EXPECT_EQ(back.rate_bps, 123456u);
  EXPECT_EQ(back.mac, tag.mac);
}

TEST(CcTag, MacCoversActionAndRate) {
  std::array<std::uint8_t, kTagBytes> field{};
  CcTag tag;
  tag.write(field);
  tag.mac = CcTag::compute_mac(field, as_key(), crypto::MacKind::kEm2);
  tag.write(field);

  ASSERT_TRUE(verify_cc_tag(field, as_key()));

  // Forge the action without the key: verification fails.
  field[0] = 1;
  EXPECT_FALSE(verify_cc_tag(field, as_key()));

  // Wrong key fails too.
  field[0] = 0;
  EXPECT_FALSE(verify_cc_tag(field, crypto::Xoshiro256(0xB6).block()));
}

// ---------- congestion monitor ----------

TEST(CongestionMonitor, DetectsOverload) {
  CongestionMonitor::Config config;
  config.capacity_bytes_per_sec = 1000;
  config.window = 1 * kMillisecond;
  CongestionMonitor monitor(config);

  // 1000 B/s capacity = 1 B per ms window. Pour 100 B per window.
  SimTime now = 0;
  bool congested = false;
  for (int w = 0; w < 5; ++w) {
    for (int i = 0; i < 10; ++i) congested = monitor.on_arrival(10, now);
    now += config.window;
  }
  EXPECT_TRUE(congested);
}

TEST(CongestionMonitor, QuietLinkStaysUncongested) {
  CongestionMonitor::Config config;
  config.capacity_bytes_per_sec = 1'000'000;
  config.window = 1 * kMillisecond;
  CongestionMonitor monitor(config);

  SimTime now = 0;
  for (int w = 0; w < 5; ++w) {
    EXPECT_FALSE(monitor.on_arrival(10, now));
    now += config.window;
  }
}

// ---------- AIMD ----------

TEST(AimdSender, AdditiveIncreaseMultiplicativeDecrease) {
  AimdSender::Config config;
  config.initial_rate = 100'000;
  config.additive_step = 10'000;
  config.multiplicative_factor = 0.5;
  AimdSender sender(config);

  CcTag nop;
  sender.on_feedback(nop);
  sender.on_feedback(nop);
  EXPECT_EQ(sender.rate(), 120'000u);

  CcTag down;
  down.action = CcAction::kDown;
  down.rate_bps = 0;  // no advice: plain MD
  sender.on_feedback(down);
  EXPECT_EQ(sender.rate(), 60'000u);
  EXPECT_EQ(sender.decreases(), 1u);
}

TEST(AimdSender, HonorsTighterBottleneckAdvice) {
  AimdSender sender;
  CcTag down;
  down.action = CcAction::kDown;
  down.rate_bps = 5'000;  // much tighter than rate/2
  sender.on_feedback(down);
  EXPECT_EQ(sender.rate(), 5'000u);
}

TEST(AimdSender, ClampsToBounds) {
  AimdSender::Config config;
  config.initial_rate = 2'000;
  config.min_rate = 1'000;
  config.max_rate = 3'000;
  config.additive_step = 5'000;
  AimdSender sender(config);

  CcTag nop;
  sender.on_feedback(nop);
  EXPECT_EQ(sender.rate(), 3'000u);

  CcTag down;
  down.action = CcAction::kDown;
  down.rate_bps = 1;  // advice below the floor
  sender.on_feedback(down);
  EXPECT_EQ(sender.rate(), 1'000u);
}

// ---------- router-level F_cc ----------

struct CcFixture : ::testing::Test {
  CcFixture() {
    registry = std::make_shared<core::OpRegistry>();  // per-node: CcOp is stateful
    CongestionMonitor::Config monitor;
    monitor.capacity_bytes_per_sec = 1000;  // tiny: easy to congest
    monitor.window = 1 * kMillisecond;
    auto op = std::make_unique<CcOp>(as_key(), monitor);
    cc = op.get();
    registry->add(std::move(op));

    auto env = netsim::make_basic_env(1);
    env.default_egress = 1;
    router.emplace(std::move(env), registry.get());
  }

  std::vector<std::uint8_t> cc_packet() {
    core::HeaderBuilder b;
    add_cc_fn(b, as_key());
    auto wire = b.build()->serialize();
    wire.insert(wire.end(), 200, 0xAB);  // fat payload to congest quickly
    return wire;
  }

  std::shared_ptr<core::OpRegistry> registry;
  CcOp* cc = nullptr;
  std::optional<core::Router> router;
};

TEST_F(CcFixture, UncongestedTagStaysNopAndVerifies) {
  auto packet = cc_packet();
  const auto result = router->process(packet, 0, 0);
  EXPECT_EQ(result.action, Action::kForward);

  const auto h = core::DipHeader::parse(packet);
  const auto tag = verify_cc_tag(h->locations, as_key());
  ASSERT_TRUE(tag.has_value()) << "router re-MACed the tag";
  EXPECT_EQ(tag->action, CcAction::kNop);
  EXPECT_EQ(cc->downgrades(), 0u);
}

TEST_F(CcFixture, BottleneckDowngradesAndSignsTag) {
  // Overdrive the 1 kB/s monitor: many 200+ B packets within each window.
  std::optional<CcTag> last;
  SimTime now = 0;
  for (int i = 0; i < 500; ++i) {
    auto packet = cc_packet();
    (void)router->process(packet, 0, now);
    now += 10 * kMicrosecond;
    const auto h = core::DipHeader::parse(packet);
    last = verify_cc_tag(h->locations, as_key());
    ASSERT_TRUE(last.has_value());
  }
  EXPECT_EQ(last->action, CcAction::kDown);
  EXPECT_GT(last->rate_bps, 0u);
  EXPECT_GT(cc->downgrades(), 0u);
}

TEST_F(CcFixture, ShortTagFieldRejected) {
  core::HeaderBuilder b;
  std::array<std::uint8_t, 8> tiny{};
  b.add_router_fn(OpKey::kCc, tiny);
  auto packet = b.build()->serialize();
  const auto result = router->process(packet, 0, 0);
  EXPECT_EQ(result.action, Action::kDrop);
  EXPECT_EQ(result.reason, core::DropReason::kMalformed);
}

// ---------- closed loop: sender slows under congestion ----------

TEST(NetFenceLoop, AimdConvergesBelowBottleneckCapacity) {
  // Sender floods; the bottleneck stamps kDown; the receiver echoes the
  // verified tag; the sender halves. After a handful of rounds the send
  // rate sits at or below capacity.
  const crypto::Block key = as_key();
  auto registry = std::make_shared<core::OpRegistry>();
  CongestionMonitor::Config monitor;
  monitor.capacity_bytes_per_sec = 50'000;
  monitor.window = 1 * kMillisecond;
  registry->add(std::make_unique<CcOp>(key, monitor));

  auto env = netsim::make_basic_env(1);
  env.default_egress = 1;
  core::Router bottleneck(std::move(env), registry.get());

  AimdSender::Config sender_config;
  sender_config.initial_rate = 400'000;  // 8x capacity
  AimdSender sender(sender_config);

  constexpr std::size_t kPacketSize = 500;
  SimTime now = 0;
  for (int round = 0; round < 50; ++round) {
    // One round = 10 ms of traffic at the current rate.
    const std::uint64_t packets =
        std::max<std::uint64_t>(1, sender.rate() * 10 / 1000 / kPacketSize);
    std::optional<CcTag> echoed;
    for (std::uint64_t p = 0; p < packets; ++p) {
      core::HeaderBuilder b;
      add_cc_fn(b, key);
      auto wire = b.build()->serialize();
      wire.insert(wire.end(), kPacketSize - wire.size(), 0);
      (void)bottleneck.process(wire, 0, now);
      now += (10 * kMillisecond) / packets;
      const auto h = core::DipHeader::parse(wire);
      echoed = verify_cc_tag(h->locations, key);
    }
    if (echoed) sender.on_feedback(*echoed);
  }

  EXPECT_LE(sender.rate(), 60'000u)
      << "AIMD must settle near/below the 50 kB/s bottleneck";
  EXPECT_GT(sender.decreases(), 0u);
}

}  // namespace
}  // namespace dip::netfence
