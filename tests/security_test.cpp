// §2.4 security: F_pass labels, FN-unsupported notifications, the poisoning
// detector, and the dynamic enable-on-attack policy loop.
#include <gtest/gtest.h>

#include "dip/core/ip.hpp"
#include "dip/core/router.hpp"
#include "dip/ndn/ndn.hpp"
#include "dip/netsim/dip_node.hpp"
#include "dip/netsim/topology.hpp"
#include "dip/security/error_message.hpp"
#include "dip/security/pass.hpp"
#include "dip/security/poisoning_detector.hpp"

namespace dip::security {
namespace {

using core::Action;
using core::DipHeader;
using core::DropReason;
using core::OpKey;
using core::Router;

std::shared_ptr<core::OpRegistry> registry() {
  static auto r = netsim::make_default_registry();
  return r;
}

// ---------- F_pass ----------

std::vector<std::uint8_t> passworthy_packet(const crypto::Block& pass_key,
                                            std::span<const std::uint8_t> payload,
                                            bool valid_label) {
  core::HeaderBuilder b;
  crypto::Block label = issue_label(pass_key, payload);
  if (!valid_label) label[0] ^= 0xFF;
  b.add_router_fn(OpKey::kPass, label);
  auto wire = b.build()->serialize();
  wire.insert(wire.end(), payload.begin(), payload.end());
  return wire;
}

struct PassFixture : ::testing::Test {
  PassFixture() : router(make_env(), registry().get()) {}

  static core::RouterEnv make_env() {
    core::RouterEnv env = netsim::make_basic_env(1);
    env.pass_key = crypto::Xoshiro256(55).block();
    env.default_egress = 2;
    return env;
  }

  Router router;
  std::array<std::uint8_t, 6> payload{1, 2, 3, 4, 5, 6};
};

TEST_F(PassFixture, EnforcementOffAcceptsAnything) {
  router.env().enforce_pass = false;
  auto bad = passworthy_packet(router.env().pass_key, payload, false);
  EXPECT_EQ(router.process(bad, 0, 0).action, Action::kForward)
      << "policy off: even bogus labels pass (cheap mode, 2.4)";
}

TEST_F(PassFixture, EnforcementOnChecksLabels) {
  router.env().enforce_pass = true;

  auto good = passworthy_packet(router.env().pass_key, payload, true);
  EXPECT_EQ(router.process(good, 0, 0).action, Action::kForward);

  auto bad = passworthy_packet(router.env().pass_key, payload, false);
  const auto result = router.process(bad, 0, 0);
  EXPECT_EQ(result.action, Action::kDrop);
  EXPECT_EQ(result.reason, DropReason::kPolicyDenied);
}

TEST_F(PassFixture, LabelBindsThePayload) {
  router.env().enforce_pass = true;
  auto packet = passworthy_packet(router.env().pass_key, payload, true);
  packet.back() ^= 1;  // swap payload after the label was issued
  EXPECT_EQ(router.process(packet, 0, 0).reason, DropReason::kPolicyDenied);
}

TEST_F(PassFixture, LabelBoundToAsKey) {
  router.env().enforce_pass = true;
  const crypto::Block foreign_key = crypto::Xoshiro256(99).block();
  auto packet = passworthy_packet(foreign_key, payload, true);
  EXPECT_EQ(router.process(packet, 0, 0).reason, DropReason::kPolicyDenied)
      << "labels from another AS's key are invalid here";
}

// ---------- FN-unsupported notification ----------

TEST(ErrorMessage, SerializeParseRoundTrip) {
  const FnUnsupportedError e{OpKey::kMac, 42};
  const auto wire = e.serialize();
  const auto back = FnUnsupportedError::parse(wire);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->offending_key, OpKey::kMac);
  EXPECT_EQ(back->reporter_node, 42u);
  EXPECT_FALSE(FnUnsupportedError::parse(std::span<const std::uint8_t>(wire.data(), 2)));
}

TEST(ErrorMessage, BuildsNotificationAddressedToSource) {
  const auto original = core::make_dip32_header(fib::parse_ipv4("10.0.0.9").value(),
                                                fib::parse_ipv4("172.16.0.1").value());
  const auto packet = make_fn_unsupported_packet(*original, OpKey::kParm, 7);
  ASSERT_TRUE(packet);

  const auto header = DipHeader::parse(*packet);
  ASSERT_TRUE(header.has_value());
  EXPECT_TRUE(is_fn_unsupported(*header));

  // The notification's destination is the original source.
  const auto dst = bytes::extract_uint(header->locations, header->fns[0].range());
  EXPECT_EQ(*dst, fib::ipv4_to_u32(fib::parse_ipv4("172.16.0.1").value()));

  const auto body = FnUnsupportedError::parse(
      std::span<const std::uint8_t>(*packet).subspan(header->wire_size()));
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(body->offending_key, OpKey::kParm);
  EXPECT_EQ(body->reporter_node, 7u);
}

TEST(ErrorMessage, NoSourceFieldNoNotification) {
  const auto ndn_header = ndn::make_interest_header32(5);  // no F_source
  EXPECT_FALSE(make_fn_unsupported_packet(*ndn_header, OpKey::kMac, 1));
}

TEST(ErrorMessage, Ipv6SourceSupported) {
  const auto original = core::make_dip128_header(fib::parse_ipv6("::9").value(),
                                                 fib::parse_ipv6("2001:db8::1").value());
  const auto packet = make_fn_unsupported_packet(*original, OpKey::kMac, 3);
  ASSERT_TRUE(packet);
  const auto header = DipHeader::parse(*packet);
  EXPECT_EQ(header->fns[0].key(), OpKey::kMatch128);
}

// End-to-end: a heterogeneous path returns the notification to the sender.
TEST(ErrorMessage, HeterogeneousPathNotifiesSource) {
  netsim::Network net;
  auto path = netsim::make_linear_path(
      net, 2, registry(), [](std::size_t i) { return netsim::make_basic_env(i); });

  // Both routers route 10/8 downstream and 172.16/12 upstream (reverse path
  // for the notification).
  for (std::size_t i = 0; i < 2; ++i) {
    auto& env = path->routers[i]->env();
    env.fib32->insert({fib::parse_ipv4("10.0.0.0").value(), 8},
                      path->downstream_face[i]);
    env.fib32->insert({fib::parse_ipv4("172.16.0.0").value(), 12},
                      path->upstream_face[i]);
  }
  // Router 1 does not support F_MAC (path-critical).
  path->routers[1]->env().disabled_keys.insert(OpKey::kMac);

  // A DIP-32 packet that also asks for the OPT chain.
  core::HeaderBuilder b;
  b.add_router_fn(OpKey::kMatch32, fib::parse_ipv4("10.0.0.9").value().bytes);
  b.add_router_fn(OpKey::kSource, fib::parse_ipv4("172.16.0.1").value().bytes);
  std::array<std::uint8_t, 68> opt_block{};
  const std::uint16_t loc = b.add_location(opt_block);
  b.add_fn(core::FnTriple::router(loc + 128, 128, OpKey::kParm));
  b.add_fn(core::FnTriple::router(loc, 416, OpKey::kMac));
  b.add_fn(core::FnTriple::router(loc + 288, 128, OpKey::kMark));

  std::optional<FnUnsupportedError> notification;
  path->source.set_receiver([&](netsim::FaceId, netsim::PacketBytes packet, SimTime) {
    const auto header = DipHeader::parse(packet);
    ASSERT_TRUE(header.has_value());
    if (is_fn_unsupported(*header)) {
      const auto body = FnUnsupportedError::parse(
          std::span<const std::uint8_t>(packet).subspan(header->wire_size()));
      ASSERT_TRUE(body.has_value());
      notification = *body;
    }
  });

  path->source.send(path->source_face, b.build()->serialize());
  net.run();

  ASSERT_TRUE(notification.has_value()) << "source must learn about the gap";
  EXPECT_EQ(notification->offending_key, OpKey::kMac);
  EXPECT_EQ(notification->reporter_node, 1u);
  EXPECT_EQ(path->destination.received(), 0u) << "the packet itself was not delivered";
}

// ---------- poisoning detector ----------

TEST(PoisoningDetector, SameContentNeverAlarms) {
  PoisoningDetector detector;
  const std::vector<std::uint8_t> content = {1, 2, 3};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(detector.observe(7, content));
  }
  EXPECT_FALSE(detector.alarmed());
}

TEST(PoisoningDetector, DivergentContentAlarms) {
  PoisoningDetector::Config config;
  config.max_digests_per_name = 2;
  PoisoningDetector detector(config);

  EXPECT_FALSE(detector.observe(7, std::vector<std::uint8_t>{1}));
  EXPECT_FALSE(detector.observe(7, std::vector<std::uint8_t>{2}));
  EXPECT_TRUE(detector.observe(7, std::vector<std::uint8_t>{3}));
  EXPECT_TRUE(detector.alarmed());
  detector.reset();
  EXPECT_FALSE(detector.alarmed());
}

TEST(PoisoningDetector, PerNameTracking) {
  PoisoningDetector::Config config;
  config.max_digests_per_name = 1;
  PoisoningDetector detector(config);
  EXPECT_FALSE(detector.observe(1, std::vector<std::uint8_t>{1}));
  EXPECT_FALSE(detector.observe(2, std::vector<std::uint8_t>{2}));
  EXPECT_TRUE(detector.observe(1, std::vector<std::uint8_t>{9}));
  EXPECT_EQ(detector.tracked_names(), 2u);
}

TEST(PoisoningDetector, MemoryBoundHolds) {
  PoisoningDetector::Config config;
  config.max_tracked_names = 4;
  PoisoningDetector detector(config);
  for (std::uint64_t name = 0; name < 100; ++name) {
    detector.observe(name, std::vector<std::uint8_t>{1});
  }
  EXPECT_LE(detector.tracked_names(), 4u);
}

}  // namespace
}  // namespace dip::security
