// Zero-allocation guarantee for the batch fast path (DESIGN.md §10).
//
// This binary overrides the global allocation functions with counting
// wrappers. After a warmup (flow cache fill, burst arena growth, result-slot
// egress spill), a steady-state run of process_batch bursts must perform
// exactly zero heap allocations — the property the burst arena and the
// retained scratch vectors exist to provide. Any std::vector growth, trace
// push, or accidental by-value copy on the hot path trips the counter.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "dip/core/ip.hpp"
#include "dip/core/router.hpp"
#include "dip/netsim/topology.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

// Counting overrides: every user-facing form funnels into malloc so the
// counter sees all of them (scalar/array, aligned, nothrow).
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return ::operator new(size, std::nothrow);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace dip::core {
namespace {

TEST(BatchAllocation, SteadyStateBurstsAllocateNothing) {
  RouterEnv env = netsim::make_basic_env(1);
  env.default_egress = 1;
  env.fib32->insert({fib::ipv4_from_u32(0x0A000000), 8}, 7);
  env.fib32->insert({fib::ipv4_from_u32(0x0A010000), 16}, 2);
  auto registry = netsim::make_default_registry();
  Router router(std::move(env), registry.get());

  // The bench's burst shape: 32 packets over a handful of flows, the flow
  // cache hot after warmup. Buffers, refs, and result slots are allocated
  // once here and recycled burst over burst (hop limits decrement in place,
  // so each iteration refreshes the bytes from the templates).
  constexpr std::size_t kBurst = 32;
  std::vector<std::vector<std::uint8_t>> templates;
  for (std::size_t f = 0; f < 8; ++f) {
    const auto h = make_dip32_header(
        fib::ipv4_from_u32(0x0A010000 + static_cast<std::uint32_t>(f)),
        fib::ipv4_from_u32(0xC0A80001));
    templates.push_back(h->serialize());
  }
  std::vector<std::vector<std::uint8_t>> bufs(kBurst);
  std::vector<PacketRef> refs(kBurst);
  std::vector<ProcessResult> results(kBurst);
  for (std::size_t i = 0; i < kBurst; ++i) {
    bufs[i] = templates[i % templates.size()];
    refs[i] = PacketRef(bufs[i]);
  }

  auto run_burst = [&](SimTime now) {
    for (std::size_t i = 0; i < kBurst; ++i) {
      const auto& t = templates[i % templates.size()];
      bufs[i].assign(t.begin(), t.end());  // same size: no regrowth
    }
    router.process_batch(refs, /*ingress=*/0, now, results);
  };

  SimTime now = 0;
  for (int burst = 0; burst < 64; ++burst) run_burst(++now);  // warmup

  const std::uint64_t before = g_allocations.load();
  for (int burst = 0; burst < 256; ++burst) run_burst(++now);
  const std::uint64_t after = g_allocations.load();

  EXPECT_EQ(after - before, 0u)
      << (after - before) << " heap allocations on the steady-state batch path";

  // Sanity: the run actually exercised the fast path.
  EXPECT_EQ(router.env().counters.processed, (64u + 256u) * kBurst);
  EXPECT_EQ(router.env().counters.dropped, 0u);
  EXPECT_GT(router.env().counters.flow_cache_hits, 0u);
}

// Same property for a mixed-program burst (the general wave path with the
// counting-sort grouping, not just the uniform fast plan): alternate two
// different FN programs so classification runs every burst.
TEST(BatchAllocation, MixedProgramBurstsAllocateNothingSteadyState) {
  RouterEnv env = netsim::make_basic_env(1);
  env.default_egress = 1;
  env.fib32->insert({fib::ipv4_from_u32(0x0A000000), 8}, 7);
  env.fib128->insert({fib::parse_ipv6("2001:db8::").value(), 32}, 9);
  auto registry = netsim::make_default_registry();
  Router router(std::move(env), registry.get());

  constexpr std::size_t kBurst = 33;
  std::vector<std::vector<std::uint8_t>> templates;
  templates.push_back(make_dip32_header(fib::ipv4_from_u32(0x0A000005),
                                        fib::ipv4_from_u32(0xC0A80001))
                          ->serialize());
  templates.push_back(
      make_dip128_header(fib::parse_ipv6("2001:db8::9").value(),
                         fib::parse_ipv6("2001:db8::1").value())
          ->serialize());
  std::vector<std::vector<std::uint8_t>> bufs(kBurst);
  std::vector<PacketRef> refs(kBurst);
  std::vector<ProcessResult> results(kBurst);
  for (std::size_t i = 0; i < kBurst; ++i) {
    bufs[i] = templates[i % templates.size()];
    refs[i] = PacketRef(bufs[i]);
  }
  auto run_burst = [&](SimTime now) {
    for (std::size_t i = 0; i < kBurst; ++i) {
      const auto& t = templates[i % templates.size()];
      bufs[i].assign(t.begin(), t.end());
    }
    router.process_batch(refs, 0, now, results);
  };

  SimTime now = 0;
  for (int burst = 0; burst < 64; ++burst) run_burst(++now);

  const std::uint64_t before = g_allocations.load();
  for (int burst = 0; burst < 256; ++burst) run_burst(++now);
  EXPECT_EQ(g_allocations.load() - before, 0u);
  EXPECT_EQ(router.env().counters.dropped, 0u);
}

}  // namespace
}  // namespace dip::core
