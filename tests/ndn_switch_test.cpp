// NDN on the PISA switch model: register-array PIT semantics under the
// hardware compromises (single-face cells, hash indexing), plus the
// stateful register primitive itself.
#include <gtest/gtest.h>

#include <set>

#include "dip/core/ip.hpp"
#include "dip/crypto/random.hpp"
#include "dip/ndn/ndn.hpp"
#include "dip/pisa/ndn_switch.hpp"
#include "dip/pisa/registers.hpp"

namespace dip::pisa {
namespace {

using Status = NdnSwitchForwarder::Status;

// ---------- register arrays ----------

TEST(RegisterArray, RmwSemantics) {
  const CostModel model;
  Cycles cycles = 0;
  RegisterArray regs(8);

  EXPECT_EQ(regs.execute(RegisterOp::kRead, 3, 0, model, cycles), 0u);
  EXPECT_EQ(regs.execute(RegisterOp::kWrite, 3, 42, model, cycles), 0u);
  EXPECT_EQ(regs.execute(RegisterOp::kRead, 3, 0, model, cycles), 42u);
  EXPECT_EQ(regs.execute(RegisterOp::kAdd, 3, 8, model, cycles), 50u);
  EXPECT_EQ(regs.execute(RegisterOp::kReadAndSet, 3, 7, model, cycles), 50u);
  EXPECT_EQ(regs.peek(3), 7u);
  EXPECT_EQ(regs.execute(RegisterOp::kClearOnMatch, 3, 9, model, cycles), 0u);
  EXPECT_EQ(regs.peek(3), 7u) << "no clear on mismatch";
  EXPECT_EQ(regs.execute(RegisterOp::kClearOnMatch, 3, 7, model, cycles), 1u);
  EXPECT_EQ(regs.peek(3), 0u);

  // Every op charged one stateful-ALU cycle.
  EXPECT_EQ(cycles, 7 * model.alu_op);
}

TEST(RegisterArray, IndexWrapsLikeHardwareMasking) {
  const CostModel model;
  Cycles cycles = 0;
  RegisterArray regs(4);
  regs.execute(RegisterOp::kWrite, 6, 9, model, cycles);  // 6 % 4 == 2
  EXPECT_EQ(regs.peek(2), 9u);
  regs.clear();
  EXPECT_EQ(regs.peek(2), 0u);
}

// ---------- NDN switch forwarder ----------

struct NdnSwitchFixture : ::testing::Test {
  NdnSwitchFixture() : sw(256) {
    // Route everything under the test name's 8-bit prefix to port 9.
    const std::uint32_t code = ndn::encode_name32(fib::Name::parse("/org/file"));
    sw.add_name_route({fib::ipv4_from_u32(code), 8}, 9);
    interest = ndn::make_interest_header32(code)->serialize();
    data = ndn::make_data_header32(code)->serialize();
  }

  NdnSwitchForwarder sw;
  std::vector<std::uint8_t> interest;
  std::vector<std::uint8_t> data;
};

TEST_F(NdnSwitchFixture, InterestThenDataRoundTrip) {
  const auto up = sw.process(interest, /*ingress=*/3);
  ASSERT_TRUE(up.has_value());
  EXPECT_EQ(up->status, Status::kForwardInterest);
  EXPECT_EQ(up->egress.value(), 9u);
  EXPECT_GT(up->cycles, 0u);

  const auto down = sw.process(data, /*ingress=*/9);
  ASSERT_TRUE(down.has_value());
  EXPECT_EQ(down->status, Status::kForwardData);
  EXPECT_EQ(down->egress.value(), 3u) << "data returns to the recorded face";

  // Consumed: a second data packet is unsolicited.
  const auto again = sw.process(data, 9);
  EXPECT_EQ(again->status, Status::kDropPitMiss);
}

TEST_F(NdnSwitchFixture, ConcurrentInterestSuppressedSingleFaceCell) {
  EXPECT_EQ(sw.process(interest, 3)->status, Status::kForwardInterest);
  // The hardware PIT cell holds one face: the second interest is
  // suppressed and the original face survives.
  EXPECT_EQ(sw.process(interest, 4)->status, Status::kSuppressed);
  const auto down = sw.process(data, 9);
  EXPECT_EQ(down->egress.value(), 3u) << "first requester wins the cell";
}

TEST_F(NdnSwitchFixture, NoRouteRollsBackPitCell) {
  const std::uint32_t unknown = 0x00FFAA55;  // top byte 0x00: no route
  const auto wire = ndn::make_interest_header32(unknown)->serialize();
  EXPECT_EQ(sw.process(wire, 3)->status, Status::kDropNoRoute);

  // The cell must not be left occupied: a later data packet for that name
  // is a miss, and a retried interest is not suppressed.
  const auto data_wire = ndn::make_data_header32(unknown)->serialize();
  EXPECT_EQ(sw.process(data_wire, 9)->status, Status::kDropPitMiss);
  sw.add_name_route({fib::ipv4_from_u32(unknown), 8}, 2);
  EXPECT_EQ(sw.process(wire, 3)->status, Status::kForwardInterest);
}

TEST_F(NdnSwitchFixture, MalformedPacketsRejected) {
  const std::array<std::uint8_t, 3> junk = {1, 2, 3};
  EXPECT_FALSE(sw.process(junk, 0).has_value());

  // A DIP-32 packet (2 FNs) does not fit the 1-FN NDN parser program.
  const auto dip32 = core::make_dip32_header(fib::ipv4_from_u32(1),
                                             fib::ipv4_from_u32(2));
  EXPECT_FALSE(sw.process(dip32->serialize(), 0).has_value());
}

TEST(NdnSwitch, ManyFlowsInterleavedStaySeparate) {
  NdnSwitchForwarder sw(4096);
  crypto::Xoshiro256 rng(0x5117C4);

  // 64 names with distinct PIT cells (retry on collision to isolate the
  // aliasing compromise from this correctness check).
  std::vector<std::uint32_t> codes;
  std::set<std::size_t> used_cells;
  while (codes.size() < 64) {
    const std::uint32_t code = rng.u32();
    // Recreate the forwarder's cell index (same formula).
    const std::size_t cell =
        (static_cast<std::uint64_t>(code) * 0x9e3779b1u >> 16) % 4096;
    if (!used_cells.insert(cell).second) continue;
    codes.push_back(code);
    sw.add_name_route({fib::ipv4_from_u32(code), 32}, 100 + (code & 0x7));
  }

  // Interleave: all interests (distinct ingress faces), then all data.
  for (std::size_t i = 0; i < codes.size(); ++i) {
    const auto wire = ndn::make_interest_header32(codes[i])->serialize();
    const auto out = sw.process(wire, static_cast<std::uint32_t>(i));
    ASSERT_EQ(out->status, NdnSwitchForwarder::Status::kForwardInterest);
  }
  for (std::size_t i = 0; i < codes.size(); ++i) {
    const auto wire = ndn::make_data_header32(codes[i])->serialize();
    const auto out = sw.process(wire, 999);
    ASSERT_EQ(out->status, NdnSwitchForwarder::Status::kForwardData);
    EXPECT_EQ(out->egress.value(), i) << "each data finds its own interest's face";
  }
}

// A structurally valid 1-FN packet carrying `fn` over a 4-byte locations
// block holding `loc_word` — parses through the switch's 1-FN program.
std::vector<std::uint8_t> one_fn_packet(core::FnTriple fn, std::uint32_t loc_word) {
  core::DipHeader h;
  h.fns = {fn};
  h.locations = {static_cast<std::uint8_t>(loc_word >> 24),
                 static_cast<std::uint8_t>(loc_word >> 16),
                 static_cast<std::uint8_t>(loc_word >> 8),
                 static_cast<std::uint8_t>(loc_word)};
  return h.serialize();
}

TEST_F(NdnSwitchFixture, NonNdnKeyIsMalformedStatusNotParseError) {
  // The packet parses fine — it is just not an NDN packet. The pre-written
  // switch program has no module bound for the key, so the outcome is a
  // kMalformed *status*, distinct from a parser error.
  const auto wire =
      one_fn_packet(core::FnTriple::router(0, 32, core::OpKey::kMatch32), 0x0A010203);
  const auto out = sw.process(wire, 3);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status, Status::kMalformed);
  EXPECT_FALSE(out->egress.has_value());
}

TEST_F(NdnSwitchFixture, HostTagMaskedByThePrewrittenProgram) {
  // The hardware program keys its branch on (op & 0x7fff): a host-tagged
  // F_FIB still runs the interest path — the switch cannot skip host FNs
  // the way Algorithm 1 line 5 does. Documented compromise, pinned here.
  const std::uint32_t code = ndn::encode_name32(fib::Name::parse("/org/file"));
  const auto wire = one_fn_packet(core::FnTriple::host(0, 32, core::OpKey::kFib), code);
  const auto out = sw.process(wire, 6);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status, Status::kForwardInterest);
  EXPECT_EQ(out->egress.value(), 9u);
}

TEST(NdnSwitch, DataAliasConsumesCollidingPendingInterest) {
  // The single-cell PIT aliases on the data path too: data for a name that
  // was never requested consumes a colliding pending interest and forwards
  // to that interest's face — then the real data misses.
  NdnSwitchForwarder sw(1);
  sw.add_name_route({fib::ipv4_from_u32(0), 0}, 5);

  const auto interest_a = ndn::make_interest_header32(0x11111111)->serialize();
  const auto data_a = ndn::make_data_header32(0x11111111)->serialize();
  const auto data_b = ndn::make_data_header32(0x22222222)->serialize();

  EXPECT_EQ(sw.process(interest_a, 1)->status, Status::kForwardInterest);
  const auto alias = sw.process(data_b, 9);
  EXPECT_EQ(alias->status, Status::kForwardData);
  EXPECT_EQ(alias->egress.value(), 1u) << "alias stole the pending cell";
  EXPECT_EQ(sw.process(data_a, 9)->status, Status::kDropPitMiss);
}

TEST(NdnSwitch, HashCollisionAliasesTheCompromiseDocumented) {
  // Two names in the same cell: the second interest is suppressed even
  // though the names differ — the documented hardware approximation.
  NdnSwitchForwarder sw(1);  // every name shares the one cell
  sw.add_name_route({fib::ipv4_from_u32(0), 0}, 5);

  const auto a = ndn::make_interest_header32(0x11111111)->serialize();
  const auto b = ndn::make_interest_header32(0x22222222)->serialize();
  EXPECT_EQ(sw.process(a, 1)->status, Status::kForwardInterest);
  EXPECT_EQ(sw.process(b, 2)->status, Status::kSuppressed);
}

}  // namespace
}  // namespace dip::pisa
