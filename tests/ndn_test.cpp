// NDN-over-DIP: name codec, F_FIB/F_PIT semantics, Table-2 sizes, caching.
#include <gtest/gtest.h>

#include "dip/core/router.hpp"
#include "dip/ndn/name_codec.hpp"
#include "dip/ndn/ndn.hpp"
#include "dip/netsim/dip_node.hpp"
#include "dip/netsim/topology.hpp"

namespace dip::ndn {
namespace {

using core::Action;
using core::DipHeader;
using core::DropReason;
using core::OpKey;
using core::Router;
using fib::Name;

std::shared_ptr<core::OpRegistry> registry() {
  static auto r = netsim::make_default_registry();
  return r;
}

// ---------- name codec ----------

TEST(NameCodec, PrefixStructurePreserved) {
  const Name name = Name::parse("/org/hotnets/prog/22");
  const std::uint32_t code = encode_name32(name);

  // The k-component prefix code equals the top k bytes of the full code.
  for (std::size_t k = 1; k <= 4; ++k) {
    const auto prefix = encode_prefix32(name, k);
    EXPECT_EQ(prefix.length, k * 8);
    for (std::size_t bit = 0; bit < k * 8; ++bit) {
      EXPECT_EQ(prefix.addr.bit(bit), fib::ipv4_from_u32(code).bit(bit))
          << "bit " << bit << " at k=" << k;
    }
  }
}

TEST(NameCodec, DistinctNamesUsuallyDistinct) {
  EXPECT_NE(encode_name32(Name::parse("/org/hotnets")),
            encode_name32(Name::parse("/com/example")));
  EXPECT_NE(encode_name32(Name::parse("/a")), encode_name32(Name::parse("/b")));
}

TEST(NameCodec, LpmOverCodesMatchesComponentSemantics) {
  auto fib_table = fib::make_lpm<32>(fib::LpmEngine::kPatricia);
  install_name_route(*fib_table, Name::parse("/org"), 1);
  install_name_route(*fib_table, Name::parse("/org/hotnets"), 2);

  const auto deep = encode_name32(Name::parse("/org/hotnets/prog/22"));
  const auto shallow = encode_name32(Name::parse("/org/other/x/y"));
  EXPECT_EQ(fib_table->lookup(fib::ipv4_from_u32(deep)).value(), 2u);
  EXPECT_EQ(fib_table->lookup(fib::ipv4_from_u32(shallow)).value(), 1u);
}

// ---------- Table 2: 16-byte NDN headers ----------

TEST(Table2, NdnHeadersAre16Bytes) {
  const Name name = Name::parse("/hotnets/org");
  EXPECT_EQ(make_interest_header(name)->wire_size(), 16u);
  EXPECT_EQ(make_data_header(name)->wire_size(), 16u);
}

TEST(NdnHeaders, TriplesMatchPaperSection3) {
  const auto interest = make_interest_header(Name::parse("/x"));
  ASSERT_TRUE(interest);
  ASSERT_EQ(interest->fns.size(), 1u);
  EXPECT_EQ(interest->fns[0], core::FnTriple::router(0, 32, OpKey::kFib));

  const auto data = make_data_header(Name::parse("/x"));
  ASSERT_EQ(data->fns.size(), 1u);
  EXPECT_EQ(data->fns[0], core::FnTriple::router(0, 32, OpKey::kPit));
}

TEST(NdnHeaders, ExtractNameCode) {
  const std::uint32_t code = encode_name32(Name::parse("/a/b"));
  const auto h = make_interest_header32(code);
  EXPECT_EQ(extract_name_code(*h).value(), code);
  EXPECT_FALSE(extract_name_code(DipHeader{}));
}

// ---------- router-level semantics ----------

struct NdnFixture : ::testing::Test {
  NdnFixture() : router(make_env(), registry().get()) {}

  static core::RouterEnv make_env() {
    core::RouterEnv env = netsim::make_basic_env(1);
    install_name_route(*env.fib32, Name::parse("/org"), 5);
    return env;
  }

  static std::vector<std::uint8_t> interest(const Name& name) {
    return make_interest_header(name)->serialize();
  }
  static std::vector<std::uint8_t> data(const Name& name,
                                        std::vector<std::uint8_t> body = {1, 2, 3}) {
    auto wire = make_data_header(name)->serialize();
    wire.insert(wire.end(), body.begin(), body.end());
    return wire;
  }

  Router router;
};

TEST_F(NdnFixture, InterestRecordsPitAndForwardsViaFib) {
  auto packet = interest(Name::parse("/org/file"));
  const auto result = router.process(packet, /*ingress=*/3, 0);
  EXPECT_EQ(result.action, Action::kForward);
  EXPECT_EQ(result.egress, std::vector<core::FaceId>{5});
  EXPECT_EQ(router.env().pit.size(), 1u);
}

TEST_F(NdnFixture, InterestWithoutRouteDropped) {
  auto packet = interest(Name::parse("/net/unknown"));
  const auto result = router.process(packet, 3, 0);
  EXPECT_EQ(result.reason, DropReason::kNoRoute);
}

TEST_F(NdnFixture, DataFollowsPitBackAndFansOut) {
  const Name name = Name::parse("/org/file");
  auto i1 = interest(name);
  auto i2 = interest(name);
  (void)router.process(i1, 3, 0);
  const auto aggregated = router.process(i2, 4, 0);
  EXPECT_EQ(aggregated.reason, DropReason::kAggregated) << "2nd interest suppressed";

  auto d = data(name);
  const auto result = router.process(d, /*ingress=*/5, 1);
  EXPECT_EQ(result.action, Action::kForward);
  EXPECT_EQ(result.egress, (std::vector<core::FaceId>{3, 4})) << "fan out to both";
}

TEST_F(NdnFixture, UnsolicitedDataIsPitMiss) {
  auto d = data(Name::parse("/org/file"));
  const auto result = router.process(d, 5, 0);
  EXPECT_EQ(result.action, Action::kDrop);
  EXPECT_EQ(result.reason, DropReason::kPitMiss);
}

TEST_F(NdnFixture, LoopingInterestDropped) {
  const Name name = Name::parse("/org/file");
  auto i1 = interest(name);
  auto i2 = interest(name);
  (void)router.process(i1, 3, 0);
  const auto result = router.process(i2, 3, 0);  // same face again
  EXPECT_EQ(result.reason, DropReason::kDuplicate);
}

TEST_F(NdnFixture, ContentStoreServesRepeatInterest) {
  router.env().content_store.emplace(16);
  const Name name = Name::parse("/org/file");

  // First round-trip populates the cache.
  auto i1 = interest(name);
  (void)router.process(i1, 3, 0);
  auto d = data(name, {9, 9});
  (void)router.process(d, 5, 1);
  EXPECT_TRUE(router.env().content_store->contains(encode_name32(name)));

  // Second interest: answered from cache toward the requester.
  auto i2 = interest(name);
  const auto result = router.process(i2, 4, 2);
  EXPECT_EQ(result.action, Action::kForward);
  EXPECT_TRUE(result.respond_from_cache);
  EXPECT_EQ(result.egress, std::vector<core::FaceId>{4});
}

TEST_F(NdnFixture, PitFullRefusesNewInterests) {
  pit::Pit::Config config;
  config.max_entries = 1;
  router.env().pit = pit::Pit(config);

  auto i1 = interest(Name::parse("/org/a"));
  EXPECT_EQ(router.process(i1, 3, 0).action, Action::kForward);
  auto i2 = interest(Name::parse("/org/b"));
  EXPECT_EQ(router.process(i2, 3, 0).reason, DropReason::kBudgetExhausted);
}

// ---------- end-to-end over the simulator ----------

TEST(NdnEndToEnd, InterestUpDataDownAcrossThreeRouters) {
  netsim::Network net;
  auto path = netsim::make_linear_path(
      net, 3, registry(), [](std::size_t i) { return netsim::make_basic_env(i); });

  const Name name = Name::parse("/org/hotnets/talk");
  const std::uint32_t code = encode_name32(name);
  // Name routes point downstream on every router.
  for (std::size_t i = 0; i < 3; ++i) {
    install_name_route(*path->routers[i]->env().fib32, Name::parse("/org"),
                       path->downstream_face[i]);
    path->routers[i]->env().default_egress.reset();  // NDN: FIB must decide
  }

  // Producer behavior: the destination answers interests with data.
  std::vector<std::uint8_t> received_payload;
  path->destination.set_receiver(
      [&](netsim::FaceId face, netsim::PacketBytes packet, SimTime) {
        const auto header = DipHeader::parse(packet);
        ASSERT_TRUE(header.has_value());
        const auto got = extract_name_code(*header);
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, code);
        auto reply = make_data_header32(*got)->serialize();
        const std::vector<std::uint8_t> body = {'d', 'a', 't', 'a'};
        reply.insert(reply.end(), body.begin(), body.end());
        path->destination.send(face, std::move(reply));
      });
  path->source.set_receiver(
      [&](netsim::FaceId, netsim::PacketBytes packet, SimTime) {
        const auto header = DipHeader::parse(packet);
        ASSERT_TRUE(header.has_value());
        const std::size_t hsize = header->wire_size();
        received_payload.assign(packet.begin() + static_cast<std::ptrdiff_t>(hsize),
                                packet.end());
      });

  path->source.send(path->source_face, make_interest_header(name)->serialize());
  net.run();

  EXPECT_EQ(received_payload, (std::vector<std::uint8_t>{'d', 'a', 't', 'a'}));
  for (const auto& r : path->routers) {
    EXPECT_EQ(r->env().pit.size(), 0u) << "data consumed every PIT entry";
  }
}

}  // namespace
}  // namespace dip::ndn
