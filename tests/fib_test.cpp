#include <gtest/gtest.h>

#include "dip/core/ip.hpp"
#include "dip/core/router_pool.hpp"
#include "dip/crypto/random.hpp"
#include "dip/ctrl/journal.hpp"
#include "dip/fib/address.hpp"
#include "dip/fib/binary_trie.hpp"
#include "dip/fib/dir24.hpp"
#include "dip/fib/lpm.hpp"
#include "dip/fib/name_fib.hpp"
#include "dip/fib/patricia.hpp"
#include "dip/fib/synth.hpp"
#include "dip/fib/tree_bitmap.hpp"
#include "dip/fib/xid_table.hpp"
#include "dip/netsim/topology.hpp"

namespace dip::fib {
namespace {

// ---------- addresses ----------

TEST(Address, Ipv4ParseFormat) {
  const auto a = parse_ipv4("192.0.2.1");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->bytes[0], 192);
  EXPECT_EQ(a->bytes[3], 1);
  EXPECT_EQ(format_ipv4(*a), "192.0.2.1");
  EXPECT_EQ(ipv4_to_u32(*a), 0xC0000201u);
  EXPECT_EQ(ipv4_from_u32(0xC0000201u), *a);
}

TEST(Address, Ipv4ParseRejects) {
  EXPECT_FALSE(parse_ipv4("256.0.0.1"));
  EXPECT_FALSE(parse_ipv4("1.2.3"));
  EXPECT_FALSE(parse_ipv4("1.2.3.4.5"));
  EXPECT_FALSE(parse_ipv4("a.b.c.d"));
  EXPECT_FALSE(parse_ipv4(""));
  EXPECT_FALSE(parse_ipv4("1.2.3.4 "));
}

TEST(Address, Ipv6ParseFormat) {
  const auto a = parse_ipv6("2001:db8::1");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->bytes[0], 0x20);
  EXPECT_EQ(a->bytes[1], 0x01);
  EXPECT_EQ(a->bytes[2], 0x0d);
  EXPECT_EQ(a->bytes[3], 0xb8);
  EXPECT_EQ(a->bytes[15], 0x01);
  EXPECT_EQ(format_ipv6(*a), "2001:db8:0:0:0:0:0:1");

  const auto full = parse_ipv6("1:2:3:4:5:6:7:8");
  ASSERT_TRUE(full);
  EXPECT_EQ(full->bytes[14], 0);
  EXPECT_EQ(full->bytes[15], 8);

  const auto all = parse_ipv6("::");
  ASSERT_TRUE(all);
  EXPECT_EQ(*all, Ipv6Addr{});
}

TEST(Address, Ipv6ParseRejects) {
  EXPECT_FALSE(parse_ipv6("1:2:3"));           // too few groups, no gap
  EXPECT_FALSE(parse_ipv6("1::2::3"));         // two gaps
  EXPECT_FALSE(parse_ipv6("12345::"));         // group too wide
  EXPECT_FALSE(parse_ipv6("1:2:3:4:5:6:7:8:9"));
  EXPECT_FALSE(parse_ipv6("g::"));
}

TEST(Address, BitAccess) {
  Ipv4Addr a = ipv4_from_u32(0x80000001);
  EXPECT_TRUE(a.bit(0));
  EXPECT_FALSE(a.bit(1));
  EXPECT_TRUE(a.bit(31));
  a.set_bit(1, true);
  EXPECT_EQ(ipv4_to_u32(a), 0xC0000001u);
}

TEST(Prefix, NormalizeAndMatch) {
  Ipv4Prefix p{ipv4_from_u32(0xC0000201), 16};
  p.normalize();
  EXPECT_EQ(ipv4_to_u32(p.addr), 0xC0000000u);
  EXPECT_TRUE(p.matches(ipv4_from_u32(0xC000FFFF)));
  EXPECT_FALSE(p.matches(ipv4_from_u32(0xC1000000)));

  const Ipv4Prefix def{{}, 0};
  EXPECT_TRUE(def.matches(ipv4_from_u32(0xFFFFFFFF)));
}

// ---------- LPM engines, shared conformance suite ----------

class LpmEngineTest : public ::testing::TestWithParam<LpmEngine> {
 protected:
  std::unique_ptr<Ipv4Lpm> table_ = make_lpm<32>(GetParam());
};

TEST_P(LpmEngineTest, EmptyTableMissesEverything) {
  EXPECT_FALSE(table_->lookup(ipv4_from_u32(0)));
  EXPECT_FALSE(table_->lookup(ipv4_from_u32(0xFFFFFFFF)));
  EXPECT_EQ(table_->size(), 0u);
}

TEST_P(LpmEngineTest, LongestPrefixWins) {
  table_->insert({ipv4_from_u32(0x0A000000), 8}, 1);    // 10/8
  table_->insert({ipv4_from_u32(0x0A010000), 16}, 2);   // 10.1/16
  table_->insert({ipv4_from_u32(0x0A010100), 24}, 3);   // 10.1.1/24
  table_->insert({ipv4_from_u32(0x0A010101), 32}, 4);   // 10.1.1.1/32

  EXPECT_EQ(table_->lookup(ipv4_from_u32(0x0A010101)).value(), 4u);
  EXPECT_EQ(table_->lookup(ipv4_from_u32(0x0A010102)).value(), 3u);
  EXPECT_EQ(table_->lookup(ipv4_from_u32(0x0A010201)).value(), 2u);
  EXPECT_EQ(table_->lookup(ipv4_from_u32(0x0A020000)).value(), 1u);
  EXPECT_FALSE(table_->lookup(ipv4_from_u32(0x0B000000)));
}

TEST_P(LpmEngineTest, DefaultRoute) {
  table_->insert({{}, 0}, 99);
  EXPECT_EQ(table_->lookup(ipv4_from_u32(0x12345678)).value(), 99u);
  table_->insert({ipv4_from_u32(0x12000000), 8}, 7);
  EXPECT_EQ(table_->lookup(ipv4_from_u32(0x12345678)).value(), 7u);
  EXPECT_EQ(table_->lookup(ipv4_from_u32(0x99999999)).value(), 99u);
}

TEST_P(LpmEngineTest, InsertReplaceRemove) {
  const Prefix<32> p{ipv4_from_u32(0xC0A80000), 16};
  EXPECT_FALSE(table_->insert(p, 5));
  EXPECT_EQ(table_->size(), 1u);
  EXPECT_EQ(table_->insert(p, 6).value(), 5u);  // replace reports old
  EXPECT_EQ(table_->size(), 1u);
  EXPECT_EQ(table_->lookup(ipv4_from_u32(0xC0A80101)).value(), 6u);

  EXPECT_EQ(table_->remove(p).value(), 6u);
  EXPECT_EQ(table_->size(), 0u);
  EXPECT_FALSE(table_->lookup(ipv4_from_u32(0xC0A80101)));
  EXPECT_FALSE(table_->remove(p));  // double remove
}

TEST_P(LpmEngineTest, RemoveUncoversShorterPrefix) {
  table_->insert({ipv4_from_u32(0x0A000000), 8}, 1);
  table_->insert({ipv4_from_u32(0x0A010000), 16}, 2);
  EXPECT_EQ(table_->lookup(ipv4_from_u32(0x0A010101)).value(), 2u);
  table_->remove({ipv4_from_u32(0x0A010000), 16});
  EXPECT_EQ(table_->lookup(ipv4_from_u32(0x0A010101)).value(), 1u);
}

TEST_P(LpmEngineTest, UnnormalizedPrefixIsNormalized) {
  // Host bits set in the prefix must be ignored.
  table_->insert({ipv4_from_u32(0x0A0101FF), 16}, 3);
  EXPECT_EQ(table_->lookup(ipv4_from_u32(0x0A01FFFF)).value(), 3u);
  EXPECT_EQ(table_->remove({ipv4_from_u32(0x0A010000), 16}).value(), 3u);
}

TEST_P(LpmEngineTest, SlashThirtyOneAndThirtyTwo) {
  table_->insert({ipv4_from_u32(0x0A000000), 31}, 1);
  table_->insert({ipv4_from_u32(0x0A000002), 32}, 2);
  EXPECT_EQ(table_->lookup(ipv4_from_u32(0x0A000000)).value(), 1u);
  EXPECT_EQ(table_->lookup(ipv4_from_u32(0x0A000001)).value(), 1u);
  EXPECT_EQ(table_->lookup(ipv4_from_u32(0x0A000002)).value(), 2u);
  EXPECT_FALSE(table_->lookup(ipv4_from_u32(0x0A000003)));
}

// Property: every engine agrees with the BinaryTrie oracle under random
// inserts, removals, and lookups.
TEST_P(LpmEngineTest, AgreesWithOracleUnderRandomWorkload) {
  BinaryTrie<32> oracle;
  crypto::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 100);

  std::vector<Prefix<32>> inserted;
  for (int step = 0; step < 2000; ++step) {
    const auto action = rng.below(10);
    if (action < 6 || inserted.empty()) {
      Prefix<32> p{ipv4_from_u32(rng.u32()),
                   static_cast<std::uint8_t>(rng.below(33))};
      p.normalize();
      const NextHop nh = static_cast<NextHop>(rng.below(1 << 20));
      const auto a = oracle.insert(p, nh);
      const auto b = table_->insert(p, nh);
      EXPECT_EQ(a.has_value(), b.has_value());
      if (a && b) EXPECT_EQ(*a, *b);
      inserted.push_back(p);
    } else if (action < 8) {
      const auto& p = inserted[rng.below(inserted.size())];
      const auto a = oracle.remove(p);
      const auto b = table_->remove(p);
      EXPECT_EQ(a.has_value(), b.has_value());
      if (a && b) EXPECT_EQ(*a, *b);
    } else {
      // Probe both a random address and a recently inserted one.
      const Ipv4Addr probe = ipv4_from_u32(rng.u32());
      EXPECT_EQ(oracle.lookup(probe), table_->lookup(probe));
      const auto& p = inserted[rng.below(inserted.size())];
      EXPECT_EQ(oracle.lookup(p.addr), table_->lookup(p.addr));
    }
    EXPECT_EQ(oracle.size(), table_->size());
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, LpmEngineTest,
                         ::testing::Values(LpmEngine::kBinaryTrie, LpmEngine::kPatricia,
                                           LpmEngine::kDir24, LpmEngine::kTreeBitmap));

// ---------- IPv6 engines ----------

class Lpm6EngineTest : public ::testing::TestWithParam<LpmEngine> {
 protected:
  std::unique_ptr<Ipv6Lpm> table_ = make_lpm<128>(GetParam());
};

TEST_P(Lpm6EngineTest, BasicV6Lpm) {
  const auto p48 = parse_ipv6("2001:db8:1::").value();
  const auto p32 = parse_ipv6("2001:db8::").value();
  table_->insert({p32, 32}, 1);
  table_->insert({p48, 48}, 2);

  EXPECT_EQ(table_->lookup(parse_ipv6("2001:db8:1::5").value()).value(), 2u);
  EXPECT_EQ(table_->lookup(parse_ipv6("2001:db8:2::5").value()).value(), 1u);
  EXPECT_FALSE(table_->lookup(parse_ipv6("2001:db9::1").value()));
}

TEST_P(Lpm6EngineTest, FullLengthHostRoute) {
  const auto host = parse_ipv6("2001:db8::42").value();
  table_->insert({host, 128}, 7);
  EXPECT_EQ(table_->lookup(host).value(), 7u);
  EXPECT_FALSE(table_->lookup(parse_ipv6("2001:db8::43").value()));
}

TEST_P(Lpm6EngineTest, OracleAgreement) {
  BinaryTrie<128> oracle;
  crypto::Xoshiro256 rng(77);
  for (int step = 0; step < 500; ++step) {
    Ipv6Addr addr;
    // Cluster prefixes so lookups actually hit.
    addr.bytes[0] = 0x20;
    addr.bytes[1] = static_cast<std::uint8_t>(rng.below(4));
    for (std::size_t i = 2; i < 16; ++i) {
      addr.bytes[i] = static_cast<std::uint8_t>(rng.next());
    }
    Prefix<128> p{addr, static_cast<std::uint8_t>(rng.below(129))};
    p.normalize();
    const NextHop nh = static_cast<NextHop>(rng.below(1000));
    oracle.insert(p, nh);
    table_->insert(p, nh);

    Ipv6Addr probe = addr;
    probe.bytes[15] = static_cast<std::uint8_t>(rng.next());
    EXPECT_EQ(oracle.lookup(probe), table_->lookup(probe));
  }
}

INSTANTIATE_TEST_SUITE_P(TrieEngines, Lpm6EngineTest,
                         ::testing::Values(LpmEngine::kBinaryTrie, LpmEngine::kPatricia,
                                           LpmEngine::kTreeBitmap));

TEST(LpmFactory, Dir24IsIpv4Only) {
  EXPECT_EQ(make_lpm<128>(LpmEngine::kDir24), nullptr);
  EXPECT_NE(make_lpm<32>(LpmEngine::kDir24), nullptr);
}

TEST(Dir24, RejectsOversizedNextHop) {
  Dir24 table;
  EXPECT_FALSE(table.insert({ipv4_from_u32(0), 8}, Dir24::kMaxNextHop + 1));
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.lookup(ipv4_from_u32(0)));
}

TEST(Dir24, InsertOverwriteSpansBaseBlocks) {
  // A /14 covers 1024 base-table blocks; overwriting it must report the old
  // next hop and rewrite every block it expanded into.
  Dir24 table;
  const Prefix<32> p{ipv4_from_u32(0x0A000000), 14};
  EXPECT_FALSE(table.insert(p, 5));
  EXPECT_EQ(table.insert(p, 6).value(), 5u);
  EXPECT_EQ(table.size(), 1u);
  // First, middle, and last covered /24 block all see the new hop.
  EXPECT_EQ(table.lookup(ipv4_from_u32(0x0A000001)).value(), 6u);
  EXPECT_EQ(table.lookup(ipv4_from_u32(0x0A020001)).value(), 6u);
  EXPECT_EQ(table.lookup(ipv4_from_u32(0x0A03FFFF)).value(), 6u);
  EXPECT_FALSE(table.lookup(ipv4_from_u32(0x0A040000)));  // beyond the /14
}

TEST(Dir24, OverwriteInsideExtensionBlock) {
  // Prefixes longer than /24 spill the block into a 256-entry extension;
  // overwriting one must update only its sub-range.
  Dir24 table;
  const Prefix<32> p28{ipv4_from_u32(0x0A000010), 28};  // 10.0.0.16/28
  table.insert(p28, 1);
  EXPECT_EQ(table.insert(p28, 2).value(), 1u);
  EXPECT_EQ(table.lookup(ipv4_from_u32(0x0A000017)).value(), 2u);
  EXPECT_FALSE(table.lookup(ipv4_from_u32(0x0A000020)));  // outside the /28
}

TEST(Dir24, ShadowedPrefixSurvivesRemoval) {
  // A /28 shadows a /26 inside one extension block: removing the /28 must
  // uncover the /26, not leave a hole (the shadow trie is the source of
  // truth for refresh_block).
  Dir24 table;
  table.insert({ipv4_from_u32(0x0A000000), 26}, 1);  // 10.0.0.0/26: .0-.63
  table.insert({ipv4_from_u32(0x0A000010), 28}, 2);  // 10.0.0.16/28: .16-.31
  EXPECT_EQ(table.lookup(ipv4_from_u32(0x0A000012)).value(), 2u);
  EXPECT_EQ(table.remove({ipv4_from_u32(0x0A000010), 28}).value(), 2u);
  EXPECT_EQ(table.lookup(ipv4_from_u32(0x0A000012)).value(), 1u);
  EXPECT_EQ(table.lookup(ipv4_from_u32(0x0A000001)).value(), 1u);
}

TEST(Dir24, RemoveFallsBackToNextLongestMatch) {
  // Layered /8, /16, /28 over one address: removals peel down the stack,
  // exercising both the base-table and extension refresh paths.
  Dir24 table;
  const Ipv4Addr probe = ipv4_from_u32(0x0A0A0A05);
  table.insert({ipv4_from_u32(0x0A000000), 8}, 1);
  table.insert({ipv4_from_u32(0x0A0A0000), 16}, 2);
  table.insert({ipv4_from_u32(0x0A0A0A00), 28}, 3);
  EXPECT_EQ(table.lookup(probe).value(), 3u);
  EXPECT_EQ(table.remove({ipv4_from_u32(0x0A0A0A00), 28}).value(), 3u);
  EXPECT_EQ(table.lookup(probe).value(), 2u);
  EXPECT_EQ(table.remove({ipv4_from_u32(0x0A0A0000), 16}).value(), 2u);
  EXPECT_EQ(table.lookup(probe).value(), 1u);
  EXPECT_EQ(table.remove({ipv4_from_u32(0x0A000000), 8}).value(), 1u);
  EXPECT_FALSE(table.lookup(probe));
  EXPECT_EQ(table.size(), 0u);
}

// Property: removal parity across all three engines — install one random
// route set everywhere, then tear it down in a different random order,
// checking agreement at every step (the churn pattern src/ctrl/ drives).
TEST(LpmEngines, RemoveParityAcrossEngines) {
  BinaryTrie<32> trie;
  PatriciaTrie<32> patricia;
  Dir24 dir24;
  crypto::Xoshiro256 rng(0xD00DF1B);

  std::vector<Prefix<32>> installed;
  for (int i = 0; i < 300; ++i) {
    Prefix<32> p{ipv4_from_u32(rng.u32()), static_cast<std::uint8_t>(rng.below(33))};
    p.normalize();
    const NextHop nh = static_cast<NextHop>(1 + rng.below(1000));
    trie.insert(p, nh);
    patricia.insert(p, nh);
    dir24.insert(p, nh);
    installed.push_back(p);
  }
  const auto probe_all = [&](const char* stage) {
    for (int j = 0; j < 64; ++j) {
      const Ipv4Addr addr = ipv4_from_u32(rng.u32());
      const auto want = trie.lookup(addr);
      EXPECT_EQ(patricia.lookup(addr), want) << stage << " patricia diverged";
      EXPECT_EQ(dir24.lookup(addr), want) << stage << " dir24 diverged";
    }
  };
  probe_all("after install");

  // Tear down in a shuffled order (duplicate prefixes: later removes no-op
  // identically everywhere).
  for (std::size_t i = installed.size(); i > 1; --i) {
    std::swap(installed[i - 1], installed[rng.below(i)]);
  }
  for (std::size_t i = 0; i < installed.size(); ++i) {
    const auto want = trie.remove(installed[i]);
    EXPECT_EQ(patricia.remove(installed[i]), want);
    EXPECT_EQ(dir24.remove(installed[i]), want);
    if (i % 50 == 0) probe_all("mid-teardown");
  }
  probe_all("after teardown");
  EXPECT_EQ(trie.size(), 0u);
  EXPECT_EQ(patricia.size(), 0u);
  EXPECT_EQ(dir24.size(), 0u);
}

// ---------- clone (copy-on-write support for src/ctrl/ snapshots) ----------

TEST_P(LpmEngineTest, CloneIsDeepAndAdoptsGeneration) {
  table_->insert({ipv4_from_u32(0x0A000000), 8}, 1);
  table_->insert({ipv4_from_u32(0x0A400000), 10}, 2);
  const std::uint64_t gen = table_->generation();

  const std::unique_ptr<Ipv4Lpm> copy = table_->clone();
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->generation(), gen) << "clone adopts the source generation";
  EXPECT_EQ(copy->size(), 2u);
  EXPECT_EQ(copy->lookup(ipv4_from_u32(0x0A400001)).value(), 2u);

  // Divergence both ways: neither side sees the other's mutations.
  table_->remove({ipv4_from_u32(0x0A400000), 10});
  EXPECT_EQ(copy->lookup(ipv4_from_u32(0x0A400001)).value(), 2u);
  copy->insert({ipv4_from_u32(0x0B000000), 8}, 3);
  EXPECT_FALSE(table_->lookup(ipv4_from_u32(0x0B000001)));

  // Applied deltas bump the copy past the base — the flow-cache
  // invalidation contract the control plane's snapshot swap relies on.
  EXPECT_GT(copy->generation(), gen);
}

TEST_P(Lpm6EngineTest, CloneIsDeepV6) {
  const auto addr = parse_ipv6("2001:db8::1").value();
  table_->insert({addr, 32}, 1);
  const std::unique_ptr<Ipv6Lpm> copy = table_->clone();
  EXPECT_EQ(copy->lookup(addr).value(), 1u);
  table_->remove({addr, 32});
  EXPECT_FALSE(table_->lookup(addr));
  EXPECT_EQ(copy->lookup(addr).value(), 1u) << "clone must not share nodes";
}

// ---------- synthesized-scale parity (ISSUE 7) ----------
//
// The toy-scale suites above can't see density bugs: run/popcount
// bookkeeping in the tree bitmap, extension-table churn in Dir24, junction
// collapse in Patricia all only get exercised when prefixes nest and crowd
// the way a real DFZ table does. synth::ipv4_table is the shared generator
// bench_fib_scale sweeps with, so divergence here reproduces with the same
// seed there.

TEST(LpmEngines, SynthesizedParityAt10kPrefixes) {
  const auto routes = synth::ipv4_table(10'000, 0xD1B);
  BinaryTrie<32> oracle;
  const LpmEngine others[] = {LpmEngine::kPatricia, LpmEngine::kDir24,
                              LpmEngine::kTreeBitmap};
  std::vector<std::unique_ptr<Ipv4Lpm>> tables;
  for (const LpmEngine e : others) tables.push_back(make_lpm<32>(e));

  // Default route under everything: random probes fall back to it, so the
  // parity check also covers the fallback path end to end.
  oracle.insert({{}, 0}, 9999);
  for (auto& t : tables) t->insert({{}, 0}, 9999);

  for (const auto& r : routes) {
    const auto want = oracle.insert(r.prefix, r.nh);
    for (auto& t : tables) EXPECT_EQ(t->insert(r.prefix, r.nh), want);
  }
  for (auto& t : tables) ASSERT_EQ(t->size(), oracle.size());

  const auto probes = synth::probes(routes, 4096, 0xCAFE);
  const auto probe_all = [&](const char* stage) {
    for (const auto& a : probes) {
      const auto want = oracle.lookup(a);
      for (std::size_t i = 0; i < tables.size(); ++i) {
        ASSERT_EQ(tables[i]->lookup(a), want)
            << stage << ": engine " << static_cast<int>(others[i])
            << " diverged at " << format_ipv4(a);
      }
    }
  };
  probe_all("after install");

  // Remove a shuffled half — uncovering shadowed less-specifics as we go —
  // then the probes must still agree everywhere.
  crypto::Xoshiro256 rng(0x5EED);
  std::vector<std::size_t> order(routes.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  for (std::size_t i = 0; i < order.size() / 2; ++i) {
    const auto want = oracle.remove(routes[order[i]].prefix);
    for (auto& t : tables) EXPECT_EQ(t->remove(routes[order[i]].prefix), want);
  }
  probe_all("after half teardown");

  // Withdraw the default route: probes outside every remaining prefix flip
  // from 9999 to miss, identically across engines.
  const auto want_def = oracle.remove({{}, 0});
  for (auto& t : tables) EXPECT_EQ(t->remove({{}, 0}), want_def);
  probe_all("after default withdrawal");
}

TEST(Lpm6Engines, SynthesizedParityV6) {
  const auto routes = synth::ipv6_table(3'000, 0x6D1B);
  BinaryTrie<128> oracle;
  PatriciaTrie<128> patricia;
  TreeBitmap<128> tree;
  for (const auto& r : routes) {
    const auto want = oracle.insert(r.prefix, r.nh);
    EXPECT_EQ(patricia.insert(r.prefix, r.nh), want);
    EXPECT_EQ(tree.insert(r.prefix, r.nh), want);
  }
  for (const auto& a : synth::probes(routes, 4096, 0x6CAFE)) {
    const auto want = oracle.lookup(a);
    ASSERT_EQ(patricia.lookup(a), want);
    ASSERT_EQ(tree.lookup(a), want);
  }
}

// ---------- tree bitmap structural properties ----------

TEST(TreeBitmap, CloneIsIndependentAtEveryDepth) {
  // A nested chain touching every stride level of the v4 walk: COW bugs
  // that share arena runs between clone and original show up as one side
  // seeing the other's rewrite at *some* depth.
  TreeBitmap<32> table;
  std::vector<Prefix<32>> chain;
  for (std::uint8_t len = 0; len <= 32; len = static_cast<std::uint8_t>(len + 4)) {
    Prefix<32> p{ipv4_from_u32(0x0A0A0A0Au), len};
    p.normalize();
    chain.push_back(p);
    table.insert(p, len + 1u);
  }
  const auto copy = table.clone();

  // An address whose longest match is exactly `p`: follow the chain for
  // p.length bits, then diverge so no longer chain prefix covers it.
  const auto probe_for = [](const Prefix<32>& p) {
    Ipv4Addr a = ipv4_from_u32(0x0A0A0A0Au);
    if (p.length < 32) a.set_bit(p.length, !a.bit(p.length));
    return a;
  };

  // Rewrite every level in the original; the clone must keep the old hops.
  for (const auto& p : chain) table.insert(p, 500u + p.length);
  for (const auto& p : chain) {
    EXPECT_EQ(copy->lookup(probe_for(p)).value(), p.length + 1u);
    EXPECT_EQ(table.lookup(probe_for(p)).value(), 500u + p.length);
  }
  // Remove odd levels from the clone; the original keeps its rewrites.
  for (std::size_t i = 1; i < chain.size(); i += 2) copy->remove(chain[i]);
  for (const auto& p : chain) {
    EXPECT_EQ(table.lookup(probe_for(p)).value(), 500u + p.length);
  }
}

TEST(TreeBitmap, ArenaReachesSteadyStateUnderFlap) {
  // Run-recycling property: flapping the same route subset must not grow
  // the arenas without bound (the free lists hand runs back by size).
  TreeBitmap<32> table;
  const auto routes = synth::ipv4_table(5'000, 0xF1AB);
  for (const auto& r : routes) table.insert(r.prefix, r.nh);

  std::size_t after_cycle = 0;
  for (int cycle = 0; cycle < 8; ++cycle) {
    for (std::size_t i = 0; i < routes.size(); i += 3) {
      table.remove(routes[i].prefix);
    }
    for (std::size_t i = 0; i < routes.size(); i += 3) {
      table.insert(routes[i].prefix, routes[i].nh);
    }
    const std::size_t now = table.memory_bytes();
    if (cycle >= 2) {
      EXPECT_EQ(now, after_cycle)
          << "arena grew on flap cycle " << cycle << " — free-list leak";
    }
    after_cycle = now;
  }
  EXPECT_EQ(table.size(), routes.size());
}

TEST(TreeBitmap, MemoryAccountingIsCompressed) {
  // The headline property: bytes/prefix at synthesized density must come in
  // far below the pointer tries (exact numbers live in BENCH_fib_scale.json;
  // this guards the order of magnitude).
  TreeBitmap<32> tree;
  PatriciaTrie<32> patricia;
  const auto routes = synth::ipv4_table(10'000, 0xBEEF);
  for (const auto& r : routes) {
    tree.insert(r.prefix, r.nh);
    patricia.insert(r.prefix, r.nh);
  }
  const double tree_bpp = static_cast<double>(tree.memory_bytes()) /
                          static_cast<double>(tree.size());
  const double pat_bpp = static_cast<double>(patricia.memory_bytes()) /
                         static_cast<double>(patricia.size());
  EXPECT_LT(tree_bpp, 64.0) << "tree bitmap should spend tens of bytes/prefix";
  EXPECT_LT(tree_bpp, pat_bpp) << "compression must beat the pointer trie";
  EXPECT_GE(tree.lookup_depth(routes[0].prefix.addr), 1u);
}

// ---------- tree bitmap behind the RCU churn path (TSan leg) ----------

std::vector<std::uint8_t> churn_packet(std::uint32_t dst) {
  return core::make_dip32_header(fib::ipv4_from_u32(dst),
                                 fib::ipv4_from_u32(0x7F000001))
      ->serialize();
}

// Mirror of ctrl_test's CtrlRace churn regression with the compressed
// engine behind the snapshots and a synthesized 10k-route table, so each
// flush clones a realistically sized arena while RouterPool workers
// forward (scripts/check.sh runs fib_test in the TSan leg for this test).
TEST(TreeBitmapChurn, PoolForwardsDuringTreeBitmapJournalFlush) {
  auto tables = std::make_shared<ctrl::ControlTables>();
  ctrl::RouteJournal journal(tables);
  const auto seed_fib = make_lpm<32>(LpmEngine::kTreeBitmap);
  seed_fib->insert({ipv4_from_u32(0x0A000000), 8}, 1);
  for (const auto& r : synth::ipv4_table(10'000, 0x7B)) {
    seed_fib->insert(r.prefix, r.nh);
  }
  journal.seed(seed_fib.get());

  const auto registry = netsim::make_default_registry();
  const auto envf = [&tables](std::size_t worker) {
    core::RouterEnv env;
    env.node_id = static_cast<std::uint32_t>(worker);
    env.control = tables;
    env.ctrl_reader = tables->register_reader();
    env.flow_cache = std::make_unique<core::FlowCache>();
    env.default_egress.reset();
    return env;
  };
  core::RouterPoolConfig cfg;
  cfg.workers = 2;

  {
    core::RouterPool pool(registry.get(), envf, cfg);
    const Prefix<32> flap{ipv4_from_u32(0x0A400000), 10};
    std::uint32_t salt = 0;
    for (int round = 0; round < 60; ++round) {
      for (int i = 0; i < 16; ++i) {
        pool.submit(churn_packet(0x0A000000 + (salt++ & 0x7fffff)), 0,
                    static_cast<SimTime>(round) * kMicrosecond);
      }
      if (round % 2 == 0) {
        journal.add_route32(flap, 2);
      } else {
        journal.remove_route32(flap);
      }
      journal.flush();
    }
    pool.drain();
    EXPECT_GE(tables->domain.reclaimed_total(), 1u)
        << "grace periods must elapse while traffic flows";
    pool.stop();
  }

  journal.flush();
  EXPECT_EQ(tables->domain.backlog(), 0u);
  const Ipv4Lpm* fib = tables->fib32.read();
  ASSERT_NE(fib, nullptr);
  EXPECT_EQ(fib->lookup(ipv4_from_u32(0x0A000001)), std::uint32_t{1});
  EXPECT_GT(journal.stats().last_flush_ns, 0u)
      << "publishing flushes must record their latency";
}

// ---------- Name / NameFib ----------

TEST(Name, ParseToString) {
  const Name n = Name::parse("/org/hotnets/prog");
  ASSERT_EQ(n.component_count(), 3u);
  EXPECT_EQ(n.component(0), "org");
  EXPECT_EQ(n.component(2), "prog");
  EXPECT_EQ(n.to_string(), "/org/hotnets/prog");

  EXPECT_EQ(Name::parse("no/leading/slash").component_count(), 3u);
  EXPECT_TRUE(Name::parse("/").empty());
  EXPECT_TRUE(Name::parse("//bad").empty());  // empty component -> rejected
  EXPECT_EQ(Name{}.to_string(), "/");
}

TEST(Name, PrefixRelation) {
  const Name full = Name::parse("/a/b/c");
  EXPECT_TRUE(Name::parse("/a").is_prefix_of(full));
  EXPECT_TRUE(Name::parse("/a/b").is_prefix_of(full));
  EXPECT_TRUE(full.is_prefix_of(full));
  EXPECT_FALSE(Name::parse("/a/c").is_prefix_of(full));
  EXPECT_FALSE(Name::parse("/a/b/c/d").is_prefix_of(full));
  EXPECT_TRUE(Name{}.is_prefix_of(full));  // root prefixes everything

  EXPECT_EQ(full.prefix(2), Name::parse("/a/b"));
  EXPECT_EQ(full.prefix(9), full);
}

TEST(NameFib, LongestPrefixMatch) {
  NameFib fib;
  fib.insert(Name::parse("/org"), 1);
  fib.insert(Name::parse("/org/hotnets"), 2);
  fib.insert(Name::parse("/com/example"), 3);

  EXPECT_EQ(fib.lookup(Name::parse("/org/hotnets/prog/22")).value(), 2u);
  EXPECT_EQ(fib.lookup(Name::parse("/org/other")).value(), 1u);
  EXPECT_EQ(fib.lookup(Name::parse("/com/example")).value(), 3u);
  EXPECT_FALSE(fib.lookup(Name::parse("/net/x")));
  EXPECT_EQ(fib.size(), 3u);
}

TEST(NameFib, ExactVsLpm) {
  NameFib fib;
  fib.insert(Name::parse("/a"), 1);
  EXPECT_TRUE(fib.exact(Name::parse("/a")));
  EXPECT_FALSE(fib.exact(Name::parse("/a/b")));
  EXPECT_TRUE(fib.lookup(Name::parse("/a/b")));
}

TEST(NameFib, InsertReplaceRemove) {
  NameFib fib;
  const Name n = Name::parse("/x/y");
  EXPECT_FALSE(fib.insert(n, 1));
  EXPECT_EQ(fib.insert(n, 2).value(), 1u);
  EXPECT_EQ(fib.remove(n).value(), 2u);
  EXPECT_FALSE(fib.remove(n));
  EXPECT_EQ(fib.size(), 0u);
}

TEST(NameFib, ComponentBoundariesMatter) {
  // ("ab","c") must not collide with ("a","bc").
  NameFib fib;
  fib.insert(Name::parse("/ab/c"), 1);
  EXPECT_FALSE(fib.exact(Name::parse("/a/bc")));
  EXPECT_FALSE(fib.lookup(Name::parse("/a/bc")));
}

TEST(NameFib, RootEntryMatchesEverything) {
  NameFib fib;
  fib.insert(Name{}, 42);
  EXPECT_EQ(fib.lookup(Name::parse("/anything/at/all")).value(), 42u);
}

// ---------- XID table ----------

TEST(XidTable, PerTypeNamespaces) {
  XidTable table;
  Xid x;
  x.bytes[0] = 0xAB;
  table.insert(XidType::kAd, x, 1);
  table.insert(XidType::kHid, x, 2);  // same bits, different principal

  EXPECT_EQ(table.lookup(XidType::kAd, x).value(), 1u);
  EXPECT_EQ(table.lookup(XidType::kHid, x).value(), 2u);
  EXPECT_FALSE(table.lookup(XidType::kSid, x));
  EXPECT_EQ(table.size(), 2u);
}

TEST(XidTable, InsertReplaceRemove) {
  XidTable table;
  Xid x;
  x.bytes[19] = 7;
  EXPECT_FALSE(table.insert(XidType::kCid, x, 3));
  EXPECT_EQ(table.insert(XidType::kCid, x, 4).value(), 3u);
  EXPECT_EQ(table.remove(XidType::kCid, x).value(), 4u);
  EXPECT_FALSE(table.remove(XidType::kCid, x));
}

TEST(XidTable, LocalOwnership) {
  XidTable table;
  Xid x;
  x.bytes[5] = 9;
  EXPECT_FALSE(table.is_local(XidType::kSid, x));
  table.set_local(XidType::kSid, x);
  EXPECT_TRUE(table.is_local(XidType::kSid, x));
  EXPECT_FALSE(table.is_local(XidType::kCid, x));
}

}  // namespace
}  // namespace dip::fib
