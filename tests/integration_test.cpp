// Cross-module integration: the five §3 protocols end-to-end on one
// simulated topology, incremental deployment over a legacy tunnel, and the
// §2.4 content-poisoning defense loop.
#include <gtest/gtest.h>

#include "dip/bootstrap/dhcp.hpp"
#include "dip/core/ip.hpp"
#include "dip/legacy/tunnel.hpp"
#include "dip/ndn/ndn.hpp"
#include "dip/netsim/topology.hpp"
#include "dip/opt/opt.hpp"
#include "dip/security/pass.hpp"
#include "dip/security/poisoning_detector.hpp"
#include "dip/xia/xia.hpp"

namespace dip {
namespace {

using core::DipHeader;
using core::NextHeader;
using core::OpKey;
using fib::Name;

std::shared_ptr<core::OpRegistry> registry() {
  static auto r = netsim::make_default_registry();
  return r;
}

std::vector<std::uint8_t> with_payload(const DipHeader& h,
                                       std::span<const std::uint8_t> payload) {
  auto wire = h.serialize();
  wire.insert(wire.end(), payload.begin(), payload.end());
  return wire;
}

std::span<const std::uint8_t> payload_of(const DipHeader& h,
                                         std::span<const std::uint8_t> packet) {
  return packet.subspan(h.wire_size());
}

// One topology, five protocols, one registry: the DIP thesis in a test.
struct FiveProtocolFixture : ::testing::Test {
  static constexpr std::size_t kHops = 3;

  void SetUp() override {
    path = netsim::make_linear_path(net, kHops, registry(), [](std::size_t i) {
      return netsim::make_basic_env(static_cast<std::uint32_t>(i));
    });

    for (std::size_t i = 0; i < kHops; ++i) {
      auto& env = path->routers[i]->env();
      env.default_egress.reset();  // every protocol must route itself
      // IPv4/IPv6 routes toward the destination.
      env.fib32->insert({fib::parse_ipv4("10.0.0.0").value(), 8},
                        path->downstream_face[i]);
      env.fib128->insert({fib::parse_ipv6("2001:db8::").value(), 32},
                         path->downstream_face[i]);
      // NDN name route.
      ndn::install_name_route(*env.fib32, Name::parse("/hotnets"),
                              path->downstream_face[i]);
      secrets.push_back(env.node_secret);
    }

    delivered.clear();
    path->destination.set_receiver(
        [&](netsim::FaceId, netsim::PacketBytes packet, SimTime) {
          delivered.push_back(std::move(packet));
        });
  }

  netsim::Network net;
  std::unique_ptr<netsim::LinearPath> path;
  std::vector<crypto::Block> secrets;
  std::vector<netsim::PacketBytes> delivered;
};

TEST_F(FiveProtocolFixture, Dip32Delivery) {
  const auto h = core::make_dip32_header(fib::parse_ipv4("10.0.0.7").value(),
                                         fib::parse_ipv4("172.16.0.1").value());
  const std::vector<std::uint8_t> body = {'i', 'p', '4'};
  path->source.send(path->source_face, with_payload(*h, body));
  net.run();

  ASSERT_EQ(delivered.size(), 1u);
  const auto back = DipHeader::parse(delivered[0]);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->basic.hop_limit, 64 - kHops) << "each router decrements";
  EXPECT_TRUE(std::ranges::equal(payload_of(*back, delivered[0]), body));
}

TEST_F(FiveProtocolFixture, Dip128Delivery) {
  const auto h = core::make_dip128_header(fib::parse_ipv6("2001:db8::9").value(),
                                          fib::parse_ipv6("2001:db8::1").value());
  path->source.send(path->source_face, h->serialize());
  net.run();
  EXPECT_EQ(delivered.size(), 1u);
}

TEST_F(FiveProtocolFixture, NdnInterestDataExchange) {
  const Name name = Name::parse("/hotnets/22/dip");
  const std::uint32_t code = ndn::encode_name32(name);

  path->destination.set_receiver(
      [&](netsim::FaceId face, netsim::PacketBytes, SimTime) {
        // Producer: answer the interest.
        auto reply = ndn::make_data_header32(code)->serialize();
        reply.insert(reply.end(), {'o', 'k'});
        path->destination.send(face, std::move(reply));
      });

  std::vector<std::uint8_t> got;
  path->source.set_receiver([&](netsim::FaceId, netsim::PacketBytes packet, SimTime) {
    const auto h = DipHeader::parse(packet);
    ASSERT_TRUE(h.has_value());
    const auto body = payload_of(*h, packet);
    got.assign(body.begin(), body.end());
  });

  path->source.send(path->source_face, ndn::make_interest_header(name)->serialize());
  net.run();
  EXPECT_EQ(got, (std::vector<std::uint8_t>{'o', 'k'}));
}

TEST_F(FiveProtocolFixture, OptVerifiesAtDestination) {
  // For OPT the routers forward on the wired default (the paper's setup).
  for (std::size_t i = 0; i < kHops; ++i) {
    path->routers[i]->env().default_egress = path->downstream_face[i];
  }
  const auto session =
      opt::negotiate_session(crypto::Xoshiro256(1).block(), secrets,
                             crypto::Xoshiro256(2).block());

  const std::vector<std::uint8_t> body = {'s', 'e', 'c'};
  const auto h = opt::make_opt_header(session, body, 1234);
  path->source.send(path->source_face, with_payload(*h, body));
  net.run();

  ASSERT_EQ(delivered.size(), 1u);
  const auto back = DipHeader::parse(delivered[0]);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(opt::verify_packet(session, back->locations, payload_of(*back, delivered[0])),
            opt::VerifyResult::kOk);
}

TEST_F(FiveProtocolFixture, NdnOptSecureContentDelivery) {
  // The §2.3 walkthrough: request "hotnets.org"-style content, verify source
  // and path of the returned data.
  const Name name = Name::parse("/hotnets/org");
  const std::uint32_t code = ndn::encode_name32(name);
  const std::vector<std::uint8_t> content = {'p', 'd', 'f'};

  // Data flows destination -> source, so the *data* path order is reversed.
  std::vector<crypto::Block> data_path_secrets(secrets.rbegin(), secrets.rend());
  const auto session =
      opt::negotiate_session(crypto::Xoshiro256(3).block(), data_path_secrets,
                             crypto::Xoshiro256(4).block());

  path->destination.set_receiver(
      [&](netsim::FaceId face, netsim::PacketBytes packet, SimTime) {
        // Producer: NDN+OPT data packet with authentication tags.
        const auto reply =
            opt::make_ndn_opt_header(code, /*interest=*/false, session, content, 99);
        ASSERT_TRUE(reply.has_value());
        path->destination.send(face, with_payload(*reply, content));
      });

  std::optional<opt::VerifyResult> verdict;
  path->source.set_receiver([&](netsim::FaceId, netsim::PacketBytes packet, SimTime) {
    const auto h = DipHeader::parse(packet);
    ASSERT_TRUE(h.has_value());
    verdict = opt::verify_packet(session, h->locations, payload_of(*h, packet));
  });

  path->source.send(path->source_face, ndn::make_interest_header(name)->serialize());
  net.run();

  ASSERT_TRUE(verdict.has_value()) << "data must return to the requester";
  EXPECT_EQ(*verdict, opt::VerifyResult::kOk)
      << "source and path of the content verified (NDN+OPT)";
}

TEST_F(FiveProtocolFixture, XiaDelivery) {
  const auto ad = xia::xid_from_label("as-edge");
  const auto hid = xia::xid_from_label("server");
  const auto sid = xia::xid_from_label("webservice");

  for (std::size_t i = 0; i < kHops; ++i) {
    auto& table = *path->routers[i]->env().xid_table;
    if (i + 1 < kHops) {
      table.insert(fib::XidType::kAd, ad, path->downstream_face[i]);
    } else {
      table.set_local(fib::XidType::kAd, ad);
      table.insert(fib::XidType::kHid, hid, path->downstream_face[i]);
    }
  }

  const auto dag = xia::make_service_dag(ad, hid, fib::XidType::kSid, sid, false);
  path->source.send(path->source_face, xia::make_xia_header(dag)->serialize());
  net.run();
  EXPECT_EQ(delivered.size(), 1u);
}

// ---------- incremental deployment (§2.4) ----------

TEST(IncrementalDeployment, DipIslandsAcrossLegacyCore) {
  // DIP host A --(DIP)--> border L --(IPv6 legacy core)--> border R --(DIP)--> host B.
  // The legacy core is modeled by the Ipv6Forwarder; borders run tunnels.
  const auto left_addr = fib::parse_ipv6("2001:db8:aaaa::1").value();
  const auto right_addr = fib::parse_ipv6("2001:db8:bbbb::1").value();
  legacy::Ipv6Tunnel left(left_addr, right_addr);
  legacy::Ipv6Tunnel right(right_addr, left_addr);

  legacy::Ipv6Forwarder core_router(fib::make_lpm<128>(fib::LpmEngine::kPatricia));
  core_router.table().insert({fib::parse_ipv6("2001:db8:bbbb::").value(), 48}, 1);

  // The DIP packet to ship across.
  const auto h = core::make_dip32_header(fib::parse_ipv4("10.9.9.9").value(),
                                         fib::parse_ipv4("10.1.1.1").value());
  const std::vector<std::uint8_t> body = {'x'};
  const auto dip_packet = [&] {
    auto wire = h->serialize();
    wire.insert(wire.end(), body.begin(), body.end());
    return wire;
  }();

  // Left border encapsulates; the legacy core forwards on the outer header
  // without understanding DIP; the right border decapsulates.
  auto in_flight = left.encapsulate(dip_packet);
  const auto decision = core_router.forward(in_flight);
  ASSERT_EQ(decision.status, legacy::ForwardStatus::kForwarded);
  EXPECT_EQ(decision.next_hop, 1u);

  const auto out = right.decapsulate(in_flight);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, dip_packet) << "DIP packet survives the legacy crossing intact";
  EXPECT_TRUE(DipHeader::parse(*out).has_value());
}

// ---------- §2.4 poisoning defense: detect, then enable F_pass on the fly --

TEST(PoisoningDefense, DetectThenEnablePassOnTheFly) {
  auto env = netsim::make_basic_env(1);
  env.content_store.emplace(64);
  env.pass_key = crypto::Xoshiro256(5).block();
  env.enforce_pass = false;  // cheap mode initially
  core::Router router(std::move(env), registry().get());
  security::PoisoningDetector detector;

  const std::uint32_t code = 0x12345678;
  const std::vector<std::uint8_t> good = {'r', 'e', 'a', 'l'};
  const std::vector<std::uint8_t> bad1 = {'f', 'a', 'k', '1'};
  const std::vector<std::uint8_t> bad2 = {'f', 'a', 'k', '2'};

  auto attack_packet = [&](std::span<const std::uint8_t> content) {
    // §2.4: attacker combines F_FIB and F_PIT in one packet, carrying a
    // label FN too (forged, since it lacks the AS key).
    core::HeaderBuilder b;
    const auto code_bytes = fib::ipv4_from_u32(code).bytes;
    crypto::Block bogus_label{};
    b.add_router_fn(OpKey::kPass, bogus_label);
    b.add_router_fn(OpKey::kFib, code_bytes);
    b.add_router_fn(OpKey::kPit, code_bytes);
    auto wire = b.build()->serialize();
    wire.insert(wire.end(), content.begin(), content.end());
    return wire;
  };

  // Phase 1: enforcement off. The attacker primes a PIT entry then answers
  // it with divergent content, polluting the cache.
  auto env_route = [&] { router.env().fib32->insert({fib::ipv4_from_u32(code), 32}, 9); };
  env_route();
  bool alarmed = false;
  for (const auto* content : {&good, &bad1, &bad2}) {
    auto p = attack_packet(*content);
    (void)router.process(p, 3, 0);
    const auto h = DipHeader::parse(p);
    if (detector.observe(code, std::span<const std::uint8_t>(p).subspan(h->wire_size()))) {
      alarmed = true;
    }
  }
  EXPECT_TRUE(alarmed) << "divergent content for one name must trip the detector";
  EXPECT_TRUE(router.env().content_store->contains(code)) << "cache already polluted";

  // Phase 2: operator reaction — purge and enforce F_pass.
  router.env().content_store->erase(code);
  router.env().enforce_pass = true;

  auto p_attack = attack_packet(bad1);
  const auto blocked = router.process(p_attack, 3, 10);
  EXPECT_EQ(blocked.action, core::Action::kDrop);
  EXPECT_EQ(blocked.reason, core::DropReason::kPolicyDenied);
  EXPECT_FALSE(router.env().content_store->contains(code)) << "cache stays clean";

  // Legitimate producer with a valid AS label still passes.
  core::HeaderBuilder b;
  const auto label = security::issue_label(router.env().pass_key, good);
  b.add_router_fn(OpKey::kPass, label);
  b.add_router_fn(OpKey::kFib, fib::ipv4_from_u32(code).bytes);
  auto p_good = b.build()->serialize();
  p_good.insert(p_good.end(), good.begin(), good.end());
  EXPECT_EQ(router.process(p_good, 4, 11).action, core::Action::kForward);
}

// ---------- bootstrap-gated composition ----------

TEST(BootstrapIntegration, HostRefusesOptWhenAsLacksIt) {
  bootstrap::CapabilitySet as_caps = bootstrap::full_capability_set();
  as_caps.remove(OpKey::kMac);
  bootstrap::BootstrapServer as_server(as_caps);

  bootstrap::BootstrapClient host;
  host.learn(as_server.respond(bootstrap::DiscoverRequest{}));

  // NDN composes fine; OPT is refused before any packet is built.
  const auto interest = ndn::make_interest_header(Name::parse("/a"));
  EXPECT_FALSE(host.first_missing(interest->fns));
  EXPECT_EQ(host.first_missing(opt::opt_fn_triples()).value(), OpKey::kMac);
}

}  // namespace
}  // namespace dip
