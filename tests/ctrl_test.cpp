// Control-plane subsystem (ISSUE 5): RCU snapshot tables with QSBR
// grace-period reclamation, the coalescing RouteJournal, and the netsim
// ControlPlane driving convergence under link failure.
//
// The CtrlRace suite is the shared-FIB race regression: before src/ctrl/,
// mutating a shared fib32 while RouterPool workers forwarded was a data
// race TSan flagged; routed through SnapshotTable publishes it must be
// clean (scripts/check.sh runs this binary in the TSan leg).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "dip/core/ip.hpp"
#include "dip/core/router_pool.hpp"
#include "dip/ctrl/control_plane.hpp"
#include "dip/ctrl/journal.hpp"
#include "dip/ctrl/snapshot.hpp"
#include "dip/fib/address.hpp"
#include "dip/netsim/topology.hpp"

namespace dip {
namespace {

using ctrl::ControlTables;
using ctrl::QsbrDomain;
using ctrl::ReaderSlot;
using ctrl::RouteJournal;
using ctrl::SnapshotTable;

std::vector<std::uint8_t> dip32_packet(std::uint32_t dst) {
  return core::make_dip32_header(fib::ipv4_from_u32(dst),
                                 fib::ipv4_from_u32(0x7F000001))
      ->serialize();
}

// ---------------------------------------------------------------------------
// QSBR snapshot layer
// ---------------------------------------------------------------------------

TEST(Qsbr, SnapshotPublishAndRead) {
  QsbrDomain domain;
  SnapshotTable<int> table;
  EXPECT_EQ(table.read(), nullptr);

  table.publish(std::make_shared<const int>(1), domain);
  ASSERT_NE(table.read(), nullptr);
  EXPECT_EQ(*table.read(), 1);
  EXPECT_EQ(domain.backlog(), 0u) << "first publish retires nothing";

  table.publish(std::make_shared<const int>(2), domain);
  EXPECT_EQ(*table.read(), 2);
  EXPECT_EQ(domain.backlog(), 1u) << "old snapshot awaits its grace period";
}

TEST(Qsbr, GracePeriodBlocksReclaimUntilReaderQuiesces) {
  QsbrDomain domain;
  SnapshotTable<int> table;
  const ctrl::ReaderHandle reader = domain.register_reader();
  domain.resume(reader);  // join the protocol at the current version

  table.publish(std::make_shared<const int>(1), domain);
  table.publish(std::make_shared<const int>(2), domain);  // retires #1
  table.publish(std::make_shared<const int>(3), domain);  // retires #2

  // The reader announced a version older than both retirement tags: nothing
  // may be freed while it could still hold those pointers.
  EXPECT_EQ(domain.try_reclaim(), 0u);
  EXPECT_EQ(domain.backlog(), 2u);

  domain.quiesce(reader);  // burst boundary: all raw pointers dropped
  EXPECT_EQ(domain.try_reclaim(), 2u);
  EXPECT_EQ(domain.backlog(), 0u);
  EXPECT_EQ(domain.reclaimed_total(), 2u);
}

TEST(Qsbr, ParkedReaderNeverStallsReclamation) {
  QsbrDomain domain;
  SnapshotTable<int> table;
  const ctrl::ReaderHandle reader = domain.register_reader();
  domain.resume(reader);

  table.publish(std::make_shared<const int>(1), domain);
  QsbrDomain::park(reader);  // blocking with no packets in flight
  table.publish(std::make_shared<const int>(2), domain);
  EXPECT_EQ(domain.try_reclaim(), 1u)
      << "a parked reader holds nothing and must not block the grace period";

  // Waking re-joins at the current version: later retirees wait for it again.
  domain.resume(reader);
  table.publish(std::make_shared<const int>(3), domain);
  EXPECT_EQ(domain.try_reclaim(), 0u);
  domain.quiesce(reader);
  EXPECT_EQ(domain.try_reclaim(), 1u);
}

TEST(Qsbr, DeadReaderIsIgnored) {
  QsbrDomain domain;
  SnapshotTable<int> table;
  ctrl::ReaderHandle reader = domain.register_reader();
  domain.resume(reader);
  table.publish(std::make_shared<const int>(1), domain);
  table.publish(std::make_shared<const int>(2), domain);
  reader.reset();  // worker torn down without a final quiesce
  EXPECT_EQ(domain.try_reclaim(), 1u);
  EXPECT_EQ(domain.backlog(), 0u);
}

TEST(Qsbr, GracePeriodIsPerReaderMinimum) {
  QsbrDomain domain;
  SnapshotTable<int> table;
  const ctrl::ReaderHandle fast = domain.register_reader();
  const ctrl::ReaderHandle slow = domain.register_reader();
  domain.resume(fast);
  domain.resume(slow);

  table.publish(std::make_shared<const int>(1), domain);
  table.publish(std::make_shared<const int>(2), domain);
  domain.quiesce(fast);  // only one of two readers passed the boundary
  EXPECT_EQ(domain.try_reclaim(), 0u) << "slowest reader bounds the horizon";
  domain.quiesce(slow);
  EXPECT_EQ(domain.try_reclaim(), 1u);
}

// ---------------------------------------------------------------------------
// RouteJournal
// ---------------------------------------------------------------------------

TEST(Journal, CoalescesFlapsPerKey) {
  auto tables = std::make_shared<ControlTables>();
  RouteJournal journal(tables);
  const fib::Prefix<32> p{fib::ipv4_from_u32(0x0A000000), 8};

  // Ten flaps of one prefix between publishes collapse to the final state.
  for (int i = 0; i < 5; ++i) {
    journal.add_route32(p, 1);
    journal.remove_route32(p);
  }
  journal.add_route32(p, 7);
  EXPECT_EQ(journal.pending(), 1u);
  EXPECT_EQ(journal.stats().ops_enqueued, 11u);
  EXPECT_EQ(journal.stats().ops_coalesced, 10u);

  EXPECT_EQ(journal.flush(), 1u);
  EXPECT_EQ(journal.stats().updates_applied, 1u) << "only the coalesced delta applies";
  const fib::Ipv4Lpm* fib = tables->fib32.read();
  ASSERT_NE(fib, nullptr);
  EXPECT_EQ(fib->lookup(fib::ipv4_from_u32(0x0A123456)), std::uint32_t{7});
}

TEST(Journal, FlushPublishesOnlyDirtyTables) {
  auto tables = std::make_shared<ControlTables>();
  RouteJournal journal(tables);
  EXPECT_EQ(journal.flush(), 0u);

  journal.add_route32({fib::ipv4_from_u32(0x0A000000), 8}, 1);
  journal.add_xid_route(fib::XidType::kAd, fib::Xid{}, 2);
  EXPECT_EQ(journal.flush(), 2u) << "fib32 and xid dirty; fib128/names untouched";
  EXPECT_EQ(tables->fib128.read(), nullptr);
  EXPECT_EQ(journal.flush(), 0u) << "nothing pending after a flush";
}

TEST(Journal, SeedClonesStaticTablesDeeply) {
  const auto seed_fib = fib::make_lpm<32>(fib::LpmEngine::kPatricia);
  seed_fib->insert({fib::ipv4_from_u32(0x0A000000), 8}, 1);

  auto tables = std::make_shared<ControlTables>();
  RouteJournal journal(tables);
  journal.seed(seed_fib.get());

  // Mutating the static seed after the clone must not leak into the
  // published snapshot (that independence IS the shared-FIB race fix).
  seed_fib->insert({fib::ipv4_from_u32(0x0B000000), 8}, 9);
  const fib::Ipv4Lpm* snap = tables->fib32.read();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->lookup(fib::ipv4_from_u32(0x0A000001)), std::uint32_t{1});
  EXPECT_EQ(snap->lookup(fib::ipv4_from_u32(0x0B000001)), std::nullopt);
}

TEST(Journal, CopyOnWriteLeavesTheOldSnapshotIntact) {
  auto tables = std::make_shared<ControlTables>();
  RouteJournal journal(tables);
  journal.add_route32({fib::ipv4_from_u32(0x0A000000), 8}, 1);
  journal.flush();

  const ctrl::ReaderHandle reader = tables->register_reader();
  tables->domain.resume(reader);
  const fib::Ipv4Lpm* old_snap = tables->fib32.read();
  const std::uint64_t old_gen = old_snap->generation();

  journal.remove_route32({fib::ipv4_from_u32(0x0A000000), 8});
  journal.add_route32({fib::ipv4_from_u32(0x0C000000), 8}, 3);
  journal.flush();

  // The reader's raw pointer stays fully valid and unchanged until it
  // quiesces — that is the whole RCU contract.
  EXPECT_EQ(old_snap->lookup(fib::ipv4_from_u32(0x0A000001)), std::uint32_t{1});
  const fib::Ipv4Lpm* new_snap = tables->fib32.read();
  ASSERT_NE(new_snap, old_snap);
  EXPECT_EQ(new_snap->lookup(fib::ipv4_from_u32(0x0A000001)), std::nullopt);
  EXPECT_EQ(new_snap->lookup(fib::ipv4_from_u32(0x0C000001)), std::uint32_t{3});
  // Deltas bump the clone's generation past the base so generation-stamped
  // flow-cache verdicts from the old snapshot cannot be replayed.
  EXPECT_GT(new_snap->generation(), old_gen);

  EXPECT_EQ(tables->domain.backlog(), 1u);
  tables->domain.quiesce(reader);
  journal.flush();  // reclaim piggybacks on flush
  EXPECT_EQ(tables->domain.backlog(), 0u);
}

// ---------------------------------------------------------------------------
// ControlPlane: convergence under link failure (end to end in netsim).
//
// Diamond topology, all four routers managed:
//
//   source — A(0) — B(1) — D(3) — dest        primary (B has the lower id)
//              \— C(2) ——/                    backup
//
// The A—B link runs a blackout schedule (period 1 ms, dark for the first
// 300 us of each window), so the timeline is: dark at t=0 (routes install
// via C), up at 300 us (routes swap to B), dark again at 1 ms — packets in
// flight blackhole until the control plane detects the failure and
// republishes via C — then up at 1.3 ms. Polls every 70 us, deliberately
// coprime with the schedule so detection latency is nonzero.
// ---------------------------------------------------------------------------

TEST(ControlPlane, ConvergesAfterBlackoutAndResumesDelivery) {
  constexpr SimDuration kPoll = 70 * kMicrosecond;
  constexpr SimTime kDown2 = 1 * kMillisecond;  // second blackout window start

  netsim::Network net;
  const auto registry = netsim::make_default_registry();
  std::vector<std::unique_ptr<netsim::DipRouterNode>> routers;
  for (std::uint32_t i = 0; i < 4; ++i) {
    auto env = netsim::make_basic_env(i);
    env.default_egress.reset();  // no route means blackhole, not fallback
    routers.push_back(std::make_unique<netsim::DipRouterNode>(std::move(env), registry));
    net.add_node(*routers[i]);
  }
  auto& a = *routers[0];
  auto& b = *routers[1];
  auto& c = *routers[2];
  auto& d = *routers[3];

  netsim::LinkParams flaky;
  flaky.faults.blackout_period = 1 * kMillisecond;
  flaky.faults.blackout_duration = 300 * kMicrosecond;
  net.connect(a, b, flaky);
  const auto [b_to_d, d_from_b] = net.connect(b, d);
  (void)b_to_d;
  (void)d_from_b;
  net.connect(a, c);
  net.connect(c, d);

  netsim::HostNode source;
  std::vector<SimTime> arrivals;
  netsim::HostNode dest([&arrivals](netsim::FaceId, netsim::PacketBytes, SimTime at) {
    arrivals.push_back(at);
  });
  net.add_node(source);
  net.add_node(dest);
  const auto [source_face, a_host_face] = net.connect(source, a);
  (void)a_host_face;
  const auto [d_delivery_face, dest_face] = net.connect(d, dest);
  (void)dest_face;

  ctrl::ControlPlane cp(net, ctrl::ControlPlaneConfig{.poll_interval = kPoll});
  for (auto& r : routers) cp.manage(*r);
  cp.add_destination({fib::ipv4_from_u32(0x0A000000), 8}, d.id(), d_delivery_face);

  // One packet every 20 us until 1.9 ms (the horizon stays short of the
  // third blackout window at 2 ms).
  for (SimTime t = 5 * kMicrosecond; t < 1900 * kMicrosecond; t += 20 * kMicrosecond) {
    net.loop().schedule_at(t, [&source, source_face] {
      source.send(source_face, dip32_packet(0x0A000001));
    });
  }
  cp.start(/*horizon=*/1950 * kMicrosecond);
  net.run();

  const ctrl::ControlPlaneStats& st = cp.stats();
  EXPECT_EQ(st.link_down_events, 1u);  // t=0 darkness is initial state, not an event
  EXPECT_EQ(st.link_up_events, 2u);
  EXPECT_EQ(st.convergences, 3u);
  EXPECT_GT(st.last_convergence_ns, 0u);
  EXPECT_LE(st.last_convergence_ns, kPoll)
      << "detection + republish must complete within one poll";

  // The failure actually bit (packets in flight blackholed), and every
  // blackhole predates the republish: zero post-convergence blackholes.
  EXPECT_GE(net.stats().blackholed, 1u);
  for (const netsim::FaultEvent& e : net.fault_trace()) {
    if (e.kind != netsim::FaultKind::kBlackout) continue;
    EXPECT_GE(e.at, kDown2);
    EXPECT_LT(e.at, kDown2 + kPoll + 10 * kMicrosecond)
        << "traffic kept flowing into the dark link after convergence";
  }

  // Delivery resumed on the backup path after the failure.
  std::size_t before = 0;
  std::size_t after = 0;
  for (const SimTime at : arrivals) {
    if (at < kDown2) ++before;
    if (at >= kDown2 + kPoll) ++after;
  }
  EXPECT_GT(before, 0u);
  EXPECT_GT(after, 20u) << "backup path must carry the traffic after republish";

  // A's routes flapped C -> B -> C -> B: initial publish + three swaps.
  ASSERT_NE(cp.journal(a.id()), nullptr);
  EXPECT_EQ(cp.journal(a.id())->stats().snapshots_published, 4u);
  // B/C/D's routes never change after the initial install.
  EXPECT_EQ(cp.journal(d.id())->stats().snapshots_published, 1u);

  // All grace periods eventually drain: the simulator thread quiesced after
  // the last burst, so one more reclaim round frees every retired snapshot.
  cp.journal(a.id())->flush();
  EXPECT_EQ(a.env().control->domain.backlog(), 0u);
  EXPECT_GE(a.env().control->domain.reclaimed_total(), 3u);

  // dip_ctrl_* exposition (catalogue in docs/OBSERVABILITY.md).
  telemetry::StatsWriter w;
  cp.write_stats(w);
  const std::string& text = w.text();
  EXPECT_NE(text.find("dip_ctrl_convergences_total 3"), std::string::npos) << text;
  EXPECT_NE(text.find("dip_ctrl_link_events_total{dir=\"down\"} 1"), std::string::npos);
  EXPECT_NE(text.find("dip_ctrl_snapshot_generation{node=\"0\"}"), std::string::npos);
}

TEST(ControlPlane, PublishIntervalRateLimitsButConverges) {
  // Same diamond, but publishes are rate-limited well above the poll rate:
  // deltas decided inside the window coalesce and land in one publish.
  netsim::Network net;
  const auto registry = netsim::make_default_registry();
  std::vector<std::unique_ptr<netsim::DipRouterNode>> routers;
  for (std::uint32_t i = 0; i < 4; ++i) {
    auto env = netsim::make_basic_env(i);
    env.default_egress.reset();
    routers.push_back(std::make_unique<netsim::DipRouterNode>(std::move(env), registry));
    net.add_node(*routers[i]);
  }
  netsim::LinkParams flaky;
  flaky.faults.blackout_period = 200 * kMicrosecond;
  flaky.faults.blackout_duration = 100 * kMicrosecond;
  net.connect(*routers[0], *routers[1], flaky);
  net.connect(*routers[1], *routers[3]);
  net.connect(*routers[0], *routers[2]);
  net.connect(*routers[2], *routers[3]);

  ctrl::ControlPlane cp(net, ctrl::ControlPlaneConfig{
                                 .poll_interval = 30 * kMicrosecond,
                                 .publish_interval = 500 * kMicrosecond});
  for (auto& r : routers) cp.manage(*r);
  cp.add_destination({fib::ipv4_from_u32(0x0A000000), 8}, routers[3]->id(), 99);
  cp.start(/*horizon=*/2 * kMillisecond);
  net.run();

  const ctrl::ControlPlaneStats& st = cp.stats();
  // ~9 transitions in 2 ms, but publishes stay bounded by the interval.
  EXPECT_GE(st.link_down_events + st.link_up_events, 8u);
  EXPECT_LE(st.publishes, 5u) << "publish_interval must bound the publish rate";
  EXPECT_GE(st.publishes, 2u);
  const ctrl::JournalStats& js = cp.journal(routers[0]->id())->stats();
  EXPECT_GT(js.ops_coalesced, 0u)
      << "flaps inside the publish window must coalesce in the journal";
}

// ---------------------------------------------------------------------------
// Shared-FIB race regression (TSan leg): RouterPool workers forward off the
// snapshots while the control thread churns routes and publishes. Before
// src/ctrl/ this exact pattern — post-start mutation of a shared fib32 —
// was a data race; through SnapshotTable it must be TSan-clean AND every
// retired table must eventually be reclaimed.
// ---------------------------------------------------------------------------

TEST(CtrlRace, ConcurrentChurnAndForwardingIsCleanAndReclaims) {
  auto tables = std::make_shared<ControlTables>();
  RouteJournal journal(tables);
  const auto seed_fib = fib::make_lpm<32>(fib::LpmEngine::kPatricia);
  seed_fib->insert({fib::ipv4_from_u32(0x0A000000), 8}, 1);
  journal.seed(seed_fib.get());

  const auto registry = netsim::make_default_registry();
  const auto envf = [&tables](std::size_t worker) {
    core::RouterEnv env;
    env.node_id = static_cast<std::uint32_t>(worker);
    env.control = tables;
    env.ctrl_reader = tables->register_reader();
    // Flow cache on: churned snapshots bump the generation, so memoized
    // verdicts from a retired table must invalidate, concurrently.
    env.flow_cache = std::make_unique<core::FlowCache>();
    env.default_egress.reset();
    return env;
  };
  core::RouterPoolConfig cfg;
  cfg.workers = 2;

  {
    core::RouterPool pool(registry.get(), envf, cfg);
    const fib::Prefix<32> flap{fib::ipv4_from_u32(0x0A400000), 10};
    std::uint32_t salt = 0;
    for (int round = 0; round < 100; ++round) {
      for (int i = 0; i < 16; ++i) {
        pool.submit(dip32_packet(0x0A000000 + (salt++ & 0x7fffff)), 0,
                    static_cast<SimTime>(round) * kMicrosecond);
      }
      // Concurrent churn: flap a more-specific route while workers forward.
      if (round % 2 == 0) {
        journal.add_route32(flap, 2);
      } else {
        journal.remove_route32(flap);
      }
      journal.flush();
    }
    pool.drain();
    EXPECT_GE(tables->domain.reclaimed_total(), 1u)
        << "grace periods must elapse while traffic flows";
    pool.stop();
  }

  // Workers gone: a final round reclaims everything still retired.
  journal.flush();
  EXPECT_EQ(tables->domain.backlog(), 0u);
  const fib::Ipv4Lpm* fib = tables->fib32.read();
  ASSERT_NE(fib, nullptr);
  EXPECT_EQ(fib->lookup(fib::ipv4_from_u32(0x0A000001)), std::uint32_t{1});
}

}  // namespace
}  // namespace dip
