// Mesh suite (docs/MESH.md, docs/TESTING.md):
//   * frame codec — round trip, truncation vs. malformation vs. checksum;
//   * MeshEventLoop — timer ordering, cancellation, fd churn mid-dispatch,
//     EAGAIN / spurious wakeup / truncated-datagram handling, all against
//     ManualClock + MockFabric (no real sleeps, fixed seeds);
//   * MeshRouter/MeshNet — in-band discovery, SPF route publication,
//     end-to-end forwarding, failed-link convergence;
//   * soak/chaos — seeded FaultPlan impairments with the conservation
//     ledger checked exactly (transmitted + duplicated == delivered + lost
//     + blackholed + dropped) and bit-identical replay under the same seed;
//   * NDN recovery-through-loss over an impaired mesh link;
//   * a two-thread real-UDP exchange (the TSan lane's race probe: routers
//     are thread-confined, datagrams are the only channel).
#include <atomic>
#include <cstdint>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "dip/core/ip.hpp"
#include "dip/mesh/control.hpp"
#include "dip/mesh/event_loop.hpp"
#include "dip/mesh/frame.hpp"
#include "dip/mesh/impair.hpp"
#include "dip/mesh/mesh_net.hpp"
#include "dip/mesh/node.hpp"
#include "dip/mesh/socket.hpp"
#include "dip/mesh/traffic.hpp"
#include "dip/ndn/ndn.hpp"
#include "dip/netsim/dip_node.hpp"
#include "dip/telemetry/exposition.hpp"

namespace dip::mesh {
namespace {

[[nodiscard]] std::uint8_t frame_check(std::span<const std::uint8_t> first18) {
  std::uint8_t x = 0x5C;
  for (std::size_t i = 0; i < 18; ++i) x ^= first18[i];
  return x;
}

[[nodiscard]] PacketBytes probe_packet(std::uint32_t dst_node,
                                       std::uint32_t src_node) {
  const auto header = core::make_dip32_header(addr_of(dst_node), addr_of(src_node));
  EXPECT_TRUE(header.has_value());
  return header->serialize();
}

// ---- frame codec ----------------------------------------------------------

TEST(MeshFrame, RoundTripPreservesHeaderAndPayload) {
  const PacketBytes payload{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x7F};
  const PacketBytes wire = encode_frame(FrameType::kData, 0x01020304u,
                                        0x1122334455667788ull, payload);
  ASSERT_EQ(wire.size(), FrameHeader::kWireSize + payload.size());

  const auto frame = decode_frame(wire);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->header.type, FrameType::kData);
  EXPECT_EQ(frame->header.src_node, 0x01020304u);
  EXPECT_EQ(frame->header.seq, 0x1122334455667788ull);
  EXPECT_EQ(frame->header.payload_len, payload.size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), frame->payload.begin()));

  // Empty payload is legal (kBye carries none).
  const PacketBytes bye = encode_frame(FrameType::kBye, 7, 0, {});
  const auto bye_frame = decode_frame(bye);
  ASSERT_TRUE(bye_frame.has_value());
  EXPECT_EQ(bye_frame->header.type, FrameType::kBye);
  EXPECT_TRUE(bye_frame->payload.empty());
}

TEST(MeshFrame, DecodeDistinguishesTruncatedMalformedAndChecksum) {
  const PacketBytes payload{1, 2, 3, 4};
  const PacketBytes wire = encode_frame(FrameType::kData, 9, 42, payload);

  // Shorter than the header: truncated.
  const auto short_hdr = decode_frame(std::span(wire).subspan(0, 10));
  ASSERT_FALSE(short_hdr.has_value());
  EXPECT_EQ(short_hdr.error(), bytes::Error::kTruncated);

  // Header intact but the payload was clipped in flight: truncated.
  const auto clipped = decode_frame(std::span(wire).subspan(0, wire.size() - 2));
  ASSERT_FALSE(clipped.has_value());
  EXPECT_EQ(clipped.error(), bytes::Error::kTruncated);

  // Trailing bytes beyond header+len: malformed (cannot be reframed).
  PacketBytes oversized = wire;
  oversized.push_back(0xFF);
  const auto trailing = decode_frame(oversized);
  ASSERT_FALSE(trailing.has_value());
  EXPECT_EQ(trailing.error(), bytes::Error::kMalformed);

  // Bad magic: malformed.
  PacketBytes bad_magic = wire;
  bad_magic[0] ^= 0xFF;
  const auto magic = decode_frame(bad_magic);
  ASSERT_FALSE(magic.has_value());
  EXPECT_EQ(magic.error(), bytes::Error::kMalformed);

  // A flipped header byte the magic/version checks miss: checksum.
  PacketBytes flipped = wire;
  flipped[8] ^= 0x10;  // inside seq
  const auto check = decode_frame(flipped);
  ASSERT_FALSE(check.has_value());
  EXPECT_EQ(check.error(), bytes::Error::kChecksum);

  // A payload_len claim beyond kMaxPayload: malformed even if the checksum
  // is recomputed to match (hostile datagram, not line noise).
  PacketBytes huge = wire;
  const std::uint16_t claim = FrameHeader::kMaxPayload + 1;
  huge[16] = static_cast<std::uint8_t>(claim >> 8);
  huge[17] = static_cast<std::uint8_t>(claim);
  huge[18] = frame_check(huge);
  const auto hostile = decode_frame(huge);
  ASSERT_FALSE(hostile.has_value());
  EXPECT_EQ(hostile.error(), bytes::Error::kMalformed);
}

// ---- event loop: timers ---------------------------------------------------

TEST(MeshEventLoopTimers, FireInDeadlineThenScheduleOrder) {
  ManualClock clock;
  MeshEventLoop loop(&clock);
  std::vector<int> order;

  loop.schedule_at(100, [&] { order.push_back(1); });  // first at t=100
  loop.schedule_at(50, [&] { order.push_back(2); });
  loop.schedule_at(100, [&] { order.push_back(3); });  // second at t=100
  EXPECT_EQ(loop.pending_timers(), 3u);
  ASSERT_TRUE(loop.next_timer_delay().has_value());
  EXPECT_EQ(*loop.next_timer_delay(), 50u);

  // Nothing is due before the clock reaches the deadlines.
  EXPECT_EQ(loop.run_ready(), 0u);
  EXPECT_TRUE(order.empty());

  clock.set(50);
  EXPECT_EQ(loop.run_ready(), 1u);
  EXPECT_EQ(order, (std::vector<int>{2}));

  clock.set(100);
  EXPECT_EQ(loop.run_ready(), 2u);
  EXPECT_EQ(order, (std::vector<int>{2, 1, 3}));  // same deadline: id order
  EXPECT_EQ(loop.pending_timers(), 0u);
  EXPECT_FALSE(loop.next_timer_delay().has_value());
}

TEST(MeshEventLoopTimers, CancelledTimerNeverFires) {
  ManualClock clock;
  MeshEventLoop loop(&clock);
  bool fired = false;
  const auto id = loop.schedule_at(10, [&] { fired = true; });
  loop.schedule_at(10, [] {});

  EXPECT_TRUE(loop.cancel_timer(id));
  EXPECT_FALSE(loop.cancel_timer(id));  // already gone
  EXPECT_EQ(loop.pending_timers(), 1u);

  clock.set(10);
  EXPECT_EQ(loop.run_ready(), 1u);  // only the surviving timer
  EXPECT_FALSE(fired);
}

TEST(MeshEventLoopTimers, TimerScheduledFromCallbackWaitsForNextRound) {
  ManualClock clock;
  MeshEventLoop loop(&clock);
  int outer = 0, inner = 0;
  loop.schedule_at(0, [&] {
    ++outer;
    loop.schedule_at(0, [&] { ++inner; });  // due immediately
  });

  // The nested timer must not run in the same round (no starvation), but
  // needs no clock advance to run in the next one.
  EXPECT_EQ(loop.run_ready(), 1u);
  EXPECT_EQ(outer, 1);
  EXPECT_EQ(inner, 0);
  EXPECT_EQ(loop.run_ready(), 1u);
  EXPECT_EQ(inner, 1);
}

// ---- event loop: sockets --------------------------------------------------

TEST(MeshEventLoopSockets, ChurnMidDispatchIsSafe) {
  ManualClock clock;
  MeshEventLoop loop(&clock);
  MockFabric fabric;
  auto a = fabric.create(1);
  auto b = fabric.create(2);
  auto c = fabric.create(3);
  auto feeder = fabric.create(99);

  const PacketBytes ping{0x42};
  ASSERT_EQ(feeder->send_to({.port = 1}, ping), IoStatus::kOk);
  ASSERT_EQ(feeder->send_to({.port = 2}, ping), IoStatus::kOk);
  ASSERT_EQ(feeder->send_to({.port = 3}, ping), IoStatus::kOk);  // queued for c

  std::vector<char> order;
  std::vector<std::uint8_t> buf(64);
  MeshEventLoop::SocketId id_a = 0;
  // a's handler retires its own registration and adds c — both take effect
  // at the next dispatch round without invalidating this one.
  id_a = loop.add_socket(*a, [&] {
    order.push_back('a');
    while (a->recv_from(buf).status == IoStatus::kOk) {}
    loop.remove_socket(id_a);
    loop.add_socket(*c, [&] {
      order.push_back('c');
      while (c->recv_from(buf).status == IoStatus::kOk) {}
    });
  });
  loop.add_socket(*b, [&] {
    order.push_back('b');
    while (b->recv_from(buf).status == IoStatus::kOk) {}
  });
  EXPECT_EQ(loop.socket_count(), 2u);

  // Round 1: a then b (registration order); c joined too late for this round.
  EXPECT_EQ(loop.run_ready(), 2u);
  EXPECT_EQ(order, (std::vector<char>{'a', 'b'}));
  EXPECT_EQ(loop.socket_count(), 2u);  // a compacted away, c in

  // Round 2: only c is readable; a's handler must not run again.
  EXPECT_EQ(loop.run_ready(), 1u);
  EXPECT_EQ(order, (std::vector<char>{'a', 'b', 'c'}));
  EXPECT_EQ(loop.run_ready(), 0u);
}

TEST(MeshEventLoopSockets, MockContractCoversEagainSpuriousAndTruncation) {
  MockFabric fabric;
  auto a = fabric.create(1);
  auto b = fabric.create(2);

  // Scripted EAGAIN on send: the transmit queue is full.
  b->fail_next_sends(1);
  const PacketBytes payload{1, 2, 3};
  EXPECT_EQ(b->send_to({.port = 1}, payload), IoStatus::kAgain);
  EXPECT_EQ(b->send_to({.port = 1}, payload), IoStatus::kOk);

  // Spurious wakeup: one kAgain even though the inbox is nonempty.
  std::vector<std::uint8_t> buf(64);
  a->spurious_wakeup_once();
  EXPECT_TRUE(a->poll_readable());
  EXPECT_EQ(a->recv_from(buf).status, IoStatus::kAgain);
  const RecvOutcome ok = a->recv_from(buf);
  EXPECT_EQ(ok.status, IoStatus::kOk);
  EXPECT_EQ(ok.size, payload.size());
  EXPECT_FALSE(ok.truncated);
  EXPECT_EQ(ok.from.port, 2);

  // Truncation reports the true datagram size, writes only buffer-many.
  const PacketBytes big(100, 0xAB);
  ASSERT_EQ(b->send_to({.port = 1}, big), IoStatus::kOk);
  std::vector<std::uint8_t> small(10);
  const RecvOutcome trunc = a->recv_from(small);
  EXPECT_EQ(trunc.status, IoStatus::kOk);
  EXPECT_TRUE(trunc.truncated);
  EXPECT_EQ(trunc.size, big.size());

  // Datagrams to unbound endpoints vanish, like real UDP.
  EXPECT_EQ(b->send_to({.port = 7777}, payload), IoStatus::kOk);
  EXPECT_EQ(fabric.unrouted(), 1u);
}

// ---- router wire-path accounting ------------------------------------------

TEST(MeshRouterLedger, SendEagainCountsAsDropped) {
  ManualClock clock;
  MeshEventLoop loop(&clock);
  MockFabric fabric;
  auto sock = fabric.create(1);
  MockSocket* raw = sock.get();
  auto sink = fabric.create(2);

  MeshRouter::Config cfg;
  cfg.node_id = 1;
  std::shared_ptr<const core::OpRegistry> registry = netsim::make_default_registry();
  MeshRouter router(cfg, loop, std::move(sock), registry);
  const FaceId wire = router.add_wire_face(sink->local_endpoint(), 0);
  const FaceId local = router.add_local_face({});
  router.journal().add_route32(fib::Prefix<32>{}, wire);  // default route
  router.journal().flush();

  PacketBytes pkt = probe_packet(2, 1);
  raw->fail_next_sends(1);
  router.inject(pkt, local);
  EXPECT_EQ(router.ledger().transmitted, 1u);
  EXPECT_EQ(router.ledger().dropped, 1u);

  PacketBytes pkt2 = probe_packet(2, 1);
  router.inject(pkt2, local);
  EXPECT_EQ(router.ledger().transmitted, 2u);
  EXPECT_EQ(router.ledger().dropped, 1u);
  EXPECT_EQ(router.ledger().imbalance(), 1);  // one datagram in flight

  // The surviving frame reached the sink and parses; its seq shows the
  // dropped attempt consumed seq 0.
  ASSERT_TRUE(sink->poll_readable());
  std::vector<std::uint8_t> buf(512);
  const RecvOutcome out = sink->recv_from(buf);
  ASSERT_EQ(out.status, IoStatus::kOk);
  const auto frame = decode_frame(std::span(buf.data(), out.size));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->header.type, FrameType::kData);
  EXPECT_EQ(frame->header.seq, 1u);
}

TEST(MeshRouterLedger, UnknownSourcesAndDecodeErrorsAreCounted) {
  ManualClock clock;
  MeshEventLoop loop(&clock);
  MockFabric fabric;
  auto sock = fabric.create(1);
  auto peer = fabric.create(2);   // registered as a wire face below
  auto rogue = fabric.create(9);  // never registered

  MeshRouter::Config cfg;
  cfg.node_id = 1;
  std::shared_ptr<const core::OpRegistry> registry = netsim::make_default_registry();
  MeshRouter router(cfg, loop, std::move(sock), registry);
  (void)router.add_wire_face(peer->local_endpoint(), 0);

  // Garbage from a known face still counts `delivered` (the sender counted
  // it out) plus a decode error; from an unknown endpoint it is quarantined.
  const PacketBytes junk{1, 2, 3};
  ASSERT_EQ(peer->send_to({.port = 1}, junk), IoStatus::kOk);
  ASSERT_EQ(rogue->send_to({.port = 1}, junk), IoStatus::kOk);
  loop.run_until_idle();

  EXPECT_EQ(router.ledger().delivered, 1u);
  EXPECT_EQ(router.ledger().decode_errors, 1u);
  EXPECT_EQ(router.ledger().unknown_source, 1u);
}

// ---- impairment determinism ----------------------------------------------

TEST(MeshImpair, DecisionsAreDeterministicPerSeedAndOrdinal) {
  netsim::FaultPlan plan;
  plan.drop_rate = 0.3;
  plan.duplicate_rate = 0.2;
  plan.corrupt_rate = 0.1;
  plan.reorder_rate = 0.25;
  plan.reorder_window = 5 * kMillisecond;

  const auto trace = [&](std::uint64_t seed, std::uint32_t ordinal) {
    LinkImpairer imp(plan, seed, ordinal);
    std::vector<std::tuple<bool, bool, bool, std::uint32_t, std::uint64_t>> t;
    for (int i = 0; i < 256; ++i) {
      PacketBytes pkt(32, static_cast<std::uint8_t>(i));
      const ImpairDecision d = imp.next(/*now_ns=*/0, pkt);
      t.emplace_back(d.blackout, d.drop, d.duplicate, d.corrupt_bytes,
                     d.extra_delay_ns);
    }
    return t;
  };

  const auto a = trace(42, 7);
  const auto b = trace(42, 7);
  const auto c = trace(42, 8);
  const auto d = trace(43, 7);
  EXPECT_EQ(a, b);  // same seed + ordinal: bit-identical decision stream
  EXPECT_NE(a, c);  // sibling half-link draws an independent stream
  EXPECT_NE(a, d);  // different mesh seed
}

// ---- discovery, routing, forwarding ---------------------------------------

TEST(MeshNetForwarding, LineTopologyDeliversEndToEnd) {
  ManualClock clock;
  MeshConfig cfg;
  cfg.use_mock = true;
  cfg.clock = &clock;
  MeshNet net(cfg);
  net.build_line(3);

  ASSERT_TRUE(net.discover(kSecond));
  EXPECT_TRUE(net.all_discovered());
  // Every router publishes a route per node (self included): 3 x 3.
  EXPECT_EQ(net.recompute_routes(), 9u);
  // Gossip carried capabilities end to end.
  EXPECT_GT(net.router(0).lsdb().at(3).capabilities.size(), 0u);

  std::vector<std::size_t> delivered_at;
  net.set_delivery([&](std::size_t node, std::span<const std::uint8_t>,
                       std::uint64_t) { delivered_at.push_back(node); });

  PacketBytes pkt = probe_packet(/*dst_node=*/3, /*src_node=*/1);
  net.router(0).inject(pkt, net.local_face_of(0));
  net.loop().run_until_idle();

  ASSERT_EQ(delivered_at.size(), 1u);
  EXPECT_EQ(delivered_at[0], 2u);  // far end of the line

  const WireLedger total = net.aggregate_ledger();
  EXPECT_EQ(total.transmitted, 2u);  // two wire hops
  EXPECT_EQ(total.delivered, 2u);
  EXPECT_EQ(total.seq_gaps, 0u);
  EXPECT_EQ(total.imbalance(), 0);
  EXPECT_TRUE(net.ledger_balanced());
}

TEST(MeshNetForwarding, HundredNodeTorusDiscoversAndRoutes) {
  ManualClock clock;
  MeshConfig cfg;
  cfg.use_mock = true;
  cfg.clock = &clock;
  MeshNet net(cfg);
  net.build_torus(10, 10);

  ASSERT_TRUE(net.discover(10 * kSecond));
  EXPECT_EQ(net.recompute_routes(), 100u * 100u);

  std::size_t delivered_node = ~std::size_t{0};
  net.set_delivery([&](std::size_t node, std::span<const std::uint8_t>,
                       std::uint64_t) { delivered_node = node; });
  PacketBytes pkt = probe_packet(/*dst_node=*/100, /*src_node=*/1);
  net.router(0).inject(pkt, net.local_face_of(0));
  net.loop().run_until_idle();

  EXPECT_EQ(delivered_node, 99u);
  EXPECT_TRUE(net.ledger_balanced());
}

TEST(MeshNetConvergence, LinkFailureReroutesAfterGossip) {
  ManualClock clock;
  MeshConfig cfg;
  cfg.use_mock = true;
  cfg.clock = &clock;
  MeshNet net(cfg);
  net.build_torus(3, 3);
  ASSERT_TRUE(net.discover(kSecond));
  ASSERT_GT(net.recompute_routes(), 0u);

  std::size_t deliveries = 0;
  net.set_delivery([&](std::size_t node, std::span<const std::uint8_t>,
                       std::uint64_t) {
    EXPECT_EQ(node, 1u);
    ++deliveries;
  });

  // Baseline: 1 -> 2 over the direct link.
  PacketBytes pkt = probe_packet(2, 1);
  net.router(0).inject(pkt, net.local_face_of(0));
  net.loop().run_until_idle();
  EXPECT_EQ(deliveries, 1u);
  EXPECT_EQ(net.aggregate_ledger().transmitted, 1u);

  // Take the link down and flood the failure. Until routes are recomputed
  // the stale FIB still points at the dark face: blackholed, not delivered.
  net.fail_link(0, 1);
  net.loop().run_until_idle();
  PacketBytes stale = probe_packet(2, 1);
  net.router(0).inject(stale, net.local_face_of(0));
  net.loop().run_until_idle();
  EXPECT_EQ(deliveries, 1u);
  EXPECT_EQ(net.aggregate_ledger().blackholed, 1u);

  // SPF over the updated LSDBs finds the two-hop detour.
  ASSERT_GT(net.recompute_routes(), 0u);
  PacketBytes rerouted = probe_packet(2, 1);
  net.router(0).inject(rerouted, net.local_face_of(0));
  net.loop().run_until_idle();
  EXPECT_EQ(deliveries, 2u);

  const WireLedger total = net.aggregate_ledger();
  EXPECT_EQ(total.transmitted, 4u);  // 1 direct + 1 blackholed + 2 detour hops
  EXPECT_EQ(total.imbalance(), 0);
}

// ---- control helpers ------------------------------------------------------

TEST(MeshControl, AddressPlanAndSymmetricEdgeSpf) {
  EXPECT_EQ(fib::ipv4_to_u32(addr_of(1)), 0x0A000101u);    // 10.0.1.1
  EXPECT_EQ(fib::ipv4_to_u32(addr_of(256)), 0x0A010001u);  // 10.1.0.1
  EXPECT_EQ(prefix_of(1).length, 24);
  EXPECT_EQ(fib::ipv4_to_u32(prefix_of(1).addr), 0x0A000100u);

  // An edge only exists when both endpoints advertise it.
  LinkStateDb asym;
  asym[1] = Lsa{1, {2}, {}};
  asym[2] = Lsa{1, {}, {}};
  EXPECT_TRUE(compute_next_hops(asym, 1).empty());

  LinkStateDb sym;
  sym[1] = Lsa{1, {2}, {}};
  sym[2] = Lsa{1, {1, 3}, {}};
  sym[3] = Lsa{1, {2}, {}};
  const auto hops = compute_next_hops(sym, 1);
  ASSERT_EQ(hops.size(), 2u);
  EXPECT_EQ(hops.at(2), 2u);
  EXPECT_EQ(hops.at(3), 2u);  // first hop propagates through the BFS
}

// ---- soak: seeded impairments, conservation, replay ------------------------

struct SoakOutcome {
  WireLedger ledger;
  TrafficStats traffic;
};

[[nodiscard]] SoakOutcome run_soak(std::uint64_t seed) {
  ManualClock clock;
  MeshConfig cfg;
  cfg.use_mock = true;
  cfg.clock = &clock;
  cfg.fault_seed = seed;
  MeshNet net(cfg);

  netsim::FaultPlan plan;
  plan.drop_rate = 0.05;
  plan.duplicate_rate = 0.05;
  plan.corrupt_rate = 0.03;
  plan.reorder_rate = 0.10;
  plan.reorder_window = 2 * kMillisecond;
  net.build_torus(3, 3, plan);

  EXPECT_TRUE(net.discover(kSecond));  // gossip is exempt from impairment
  EXPECT_GT(net.recompute_routes(), 0u);

  TrafficConfig tcfg;
  tcfg.flows = 32;
  tcfg.seed = seed;
  tcfg.churn_flows = 4;
  MeshTrafficGen gen(net, tcfg);

  for (int round = 0; round < 15; ++round) {
    EXPECT_EQ(gen.tick(25), 25u);
    net.loop().run_until_idle();
    gen.churn();
    EXPECT_TRUE(net.drain(clock, 100 * kMillisecond));  // flush hold-backs
  }
  EXPECT_TRUE(net.drain(clock, kSecond));
  EXPECT_EQ(net.pending_holdbacks(), 0u);
  return {net.aggregate_ledger(), gen.stats()};
}

TEST(MeshSoak, ConservationLedgerHoldsExactlyUnderImpairments) {
  const SoakOutcome out = run_soak(/*seed=*/1234);

  // Every fault class actually fired.
  EXPECT_GT(out.ledger.lost, 0u);
  EXPECT_GT(out.ledger.duplicated, 0u);
  EXPECT_GT(out.ledger.corrupted, 0u);
  EXPECT_GT(out.ledger.seq_gaps, 0u);  // loss/dup/reorder visible on the wire

  // The equation is exact, not approximate: after the mesh quiesces,
  //   transmitted + duplicated == delivered + lost + blackholed + dropped.
  EXPECT_EQ(out.ledger.imbalance(), 0);

  EXPECT_EQ(out.traffic.sent, 15u * 25u);
  EXPECT_GT(out.traffic.received, 0u);
  EXPECT_GT(out.traffic.flows_churned, 0u);
  // Wire duplication can deliver one probe more than once, so `received`
  // may exceed `sent` — but never by more than the duplicated copies.
  EXPECT_LE(out.traffic.received, out.traffic.sent + out.ledger.duplicated);
}

TEST(MeshSoak, SameSeedReplaysBitIdentically) {
  const SoakOutcome a = run_soak(/*seed=*/77);
  const SoakOutcome b = run_soak(/*seed=*/77);

  EXPECT_EQ(a.ledger.transmitted, b.ledger.transmitted);
  EXPECT_EQ(a.ledger.duplicated, b.ledger.duplicated);
  EXPECT_EQ(a.ledger.delivered, b.ledger.delivered);
  EXPECT_EQ(a.ledger.lost, b.ledger.lost);
  EXPECT_EQ(a.ledger.blackholed, b.ledger.blackholed);
  EXPECT_EQ(a.ledger.dropped, b.ledger.dropped);
  EXPECT_EQ(a.ledger.corrupted, b.ledger.corrupted);
  EXPECT_EQ(a.ledger.seq_gaps, b.ledger.seq_gaps);
  EXPECT_EQ(a.traffic.sent, b.traffic.sent);
  EXPECT_EQ(a.traffic.received, b.traffic.received);
  EXPECT_EQ(a.traffic.latency_sum_ns, b.traffic.latency_sum_ns);
  EXPECT_EQ(a.traffic.latency_max_ns, b.traffic.latency_max_ns);
}

TEST(MeshSoak, StatsExpositionCoversMeshSeries) {
  ManualClock clock;
  MeshConfig cfg;
  cfg.use_mock = true;
  cfg.clock = &clock;
  MeshNet net(cfg);
  net.build_line(2);
  ASSERT_TRUE(net.discover(kSecond));
  ASSERT_GT(net.recompute_routes(), 0u);
  PacketBytes pkt = probe_packet(2, 1);
  net.router(0).inject(pkt, net.local_face_of(0));
  net.loop().run_until_idle();

  telemetry::StatsWriter w;
  net.write_stats(w);
  net.router(0).write_stats(w);
  const std::string& text = w.text();
  EXPECT_NE(text.find("dip_mesh_transmitted_total"), std::string::npos);
  EXPECT_NE(text.find("dip_mesh_delivered_total"), std::string::npos);
  EXPECT_NE(text.find("dip_mesh_loop_wakeups_total"), std::string::npos);
  EXPECT_NE(text.find("node=\"1\""), std::string::npos);
}

// ---- NDN recovery through loss --------------------------------------------

TEST(MeshNdn, InterestRetransmissionRecoversThroughSeededLoss) {
  ManualClock clock;
  MeshConfig cfg;
  cfg.use_mock = true;
  cfg.clock = &clock;
  cfg.fault_seed = 99;
  MeshNet net(cfg);

  netsim::FaultPlan plan;
  plan.drop_rate = 0.45;  // heavy seeded loss on both half-links
  net.build_line(2, plan);
  ASSERT_TRUE(net.discover(kSecond));
  ASSERT_GT(net.recompute_routes(), 0u);

  // Producer: node 2 caches the named payload; F_FIB answers interests from
  // the content store (paper footnote 2) back out the ingress face.
  const std::uint32_t name_code = fib::ipv4_to_u32(addr_of(2));
  const PacketBytes content{0xCA, 0xFE, 0xF0, 0x0D};
  net.router(1).env().content_store.emplace(16);
  net.router(1).env().content_store->insert(name_code, content);

  bool got_data = false;
  net.set_delivery([&](std::size_t node, std::span<const std::uint8_t> packet,
                       std::uint64_t) {
    if (node != 0 || packet.size() < content.size()) return;
    got_data = std::equal(content.begin(), content.end(),
                          packet.end() - static_cast<std::ptrdiff_t>(content.size()));
  });

  // Consumer: retransmit the interest until the data arrives. Each retry
  // advances past the PIT entry lifetime so the retransmission is a fresh
  // interest, not a same-face duplicate the PIT would aggregate away.
  int attempts = 0;
  for (; attempts < 20 && !got_data; ++attempts) {
    const auto header = ndn::make_interest_header32(name_code);
    ASSERT_TRUE(header.has_value());
    PacketBytes interest = header->serialize();
    net.router(0).inject(interest, net.local_face_of(0));
    net.loop().run_until_idle();
    if (got_data) break;
    clock.advance(5 * kSecond);  // > pit::PitTable entry_lifetime (4 s)
    net.loop().run_until_idle();
  }

  EXPECT_TRUE(got_data);
  const WireLedger total = net.aggregate_ledger();
  EXPECT_GT(total.lost, 0u);  // the loss leg was actually exercised
  EXPECT_EQ(total.imbalance(), 0);
}

// ---- thread-confined routers over real UDP (TSan probe) --------------------

TEST(MeshThreaded, RoutersExchangeOverRealUdpFromSeparateThreads) {
  std::shared_ptr<const core::OpRegistry> registry = netsim::make_default_registry();
  auto sock_a = std::make_unique<UdpSocket>();
  auto sock_b = std::make_unique<UdpSocket>();
  const Endpoint ep_a = sock_a->local_endpoint();
  const Endpoint ep_b = sock_b->local_endpoint();
  ASSERT_NE(ep_a.port, 0);
  ASSERT_NE(ep_b.port, 0);

  constexpr std::uint64_t kPackets = 50;
  std::atomic<std::uint64_t> delivered{0};

  // Receiver: its router, loop, and socket live entirely on this thread;
  // the only cross-thread channels are UDP datagrams and the atomic.
  std::thread receiver([&, sock = std::move(sock_b)]() mutable {
    MeshEventLoop loop;
    MeshRouter::Config cfg;
    cfg.node_id = 2;
    MeshRouter router(cfg, loop, std::move(sock), registry);
    (void)router.add_wire_face(ep_a, 1);
    const FaceId local = router.add_local_face(
        [&](std::span<const std::uint8_t>, std::uint64_t) {
          if (delivered.fetch_add(1) + 1 == kPackets) loop.stop();
        });
    router.journal().add_route32(fib::Prefix<32>{}, local);
    router.journal().flush();
    (void)loop.run(loop.now_ns() + 10 * kSecond);
  });

  std::thread sender([&, sock = std::move(sock_a)]() mutable {
    MeshEventLoop loop;
    MeshRouter::Config cfg;
    cfg.node_id = 1;
    MeshRouter router(cfg, loop, std::move(sock), registry);
    const FaceId wire = router.add_wire_face(ep_b, 0);
    const FaceId local = router.add_local_face({});
    router.journal().add_route32(fib::Prefix<32>{}, wire);
    router.journal().flush();
    for (std::uint64_t i = 0; i < kPackets; ++i) {
      PacketBytes pkt = probe_packet(2, 1);
      router.inject(pkt, local);
    }
    EXPECT_EQ(router.ledger().transmitted, kPackets);
    EXPECT_EQ(router.ledger().dropped, 0u);
  });

  sender.join();
  receiver.join();
  EXPECT_EQ(delivered.load(), kPackets);
}

}  // namespace
}  // namespace dip::mesh
