#include <gtest/gtest.h>

#include "dip/pit/content_store.hpp"
#include "dip/pit/pit.hpp"

namespace dip::pit {
namespace {

// ---------- PIT ----------

TEST(Pit, CreateAggregateDuplicate) {
  Pit pit;
  EXPECT_EQ(pit.record_interest(1, 10, 0).value(), InterestResult::kCreated);
  EXPECT_EQ(pit.record_interest(1, 11, 0).value(), InterestResult::kAggregated);
  EXPECT_EQ(pit.record_interest(1, 10, 0).value(), InterestResult::kDuplicate);
  EXPECT_EQ(pit.size(), 1u);
  EXPECT_TRUE(pit.has_entry(1, 0));
  EXPECT_FALSE(pit.has_entry(2, 0));
}

TEST(Pit, DataConsumesEntryAndReturnsAllFaces) {
  Pit pit;
  pit.record_interest(7, 1, 0);
  pit.record_interest(7, 2, 0);
  pit.record_interest(7, 3, 0);

  const auto faces = pit.match_data(7, 1);
  EXPECT_EQ(faces, (std::vector<FaceId>{1, 2, 3}));

  // Consumed: second data is unsolicited.
  EXPECT_TRUE(pit.match_data(7, 1).empty());
  EXPECT_EQ(pit.size(), 0u);
}

TEST(Pit, MissOnUnknownName) {
  Pit pit;
  EXPECT_TRUE(pit.match_data(123, 0).empty());
}

TEST(Pit, EntryExpires) {
  Pit::Config config;
  config.entry_lifetime = 100;
  Pit pit(config);

  pit.record_interest(5, 1, 0);
  EXPECT_TRUE(pit.has_entry(5, 99));
  EXPECT_FALSE(pit.has_entry(5, 100));
  EXPECT_TRUE(pit.match_data(5, 150).empty()) << "expired entry must not match";
}

TEST(Pit, AggregationRefreshesLifetime) {
  Pit::Config config;
  config.entry_lifetime = 100;
  Pit pit(config);

  pit.record_interest(5, 1, 0);
  pit.record_interest(5, 2, 80);  // refresh at t=80 -> expiry 180
  EXPECT_TRUE(pit.has_entry(5, 150));
  const auto faces = pit.match_data(5, 150);
  EXPECT_EQ(faces.size(), 2u);
}

TEST(Pit, ReRequestAfterExpiryCreatesFreshEntry) {
  Pit::Config config;
  config.entry_lifetime = 100;
  Pit pit(config);
  pit.record_interest(5, 1, 0);
  EXPECT_EQ(pit.record_interest(5, 1, 200).value(), InterestResult::kCreated);
}

TEST(Pit, ExpireSweepsOnlyDue) {
  Pit::Config config;
  config.entry_lifetime = 100;
  Pit pit(config);
  pit.record_interest(1, 1, 0);    // expiry 100
  pit.record_interest(2, 1, 50);   // expiry 150
  pit.record_interest(3, 1, 120);  // expiry 220

  EXPECT_EQ(pit.expire(100), 1u);
  EXPECT_EQ(pit.size(), 2u);
  EXPECT_EQ(pit.expire(300), 2u);
  EXPECT_EQ(pit.size(), 0u);
  EXPECT_EQ(pit.expire(400), 0u);
}

TEST(Pit, RefreshedEntryNotSweptByStaleHeapItem) {
  Pit::Config config;
  config.entry_lifetime = 100;
  Pit pit(config);
  pit.record_interest(9, 1, 0);   // heap item at 100
  pit.record_interest(9, 2, 60);  // refreshed to 160
  EXPECT_EQ(pit.expire(100), 0u) << "stale heap item must not kill live entry";
  EXPECT_TRUE(pit.has_entry(9, 120));
}

TEST(Pit, CapacityLimitEnforced) {
  Pit::Config config;
  config.max_entries = 3;
  Pit pit(config);
  EXPECT_TRUE(pit.record_interest(1, 1, 0));
  EXPECT_TRUE(pit.record_interest(2, 1, 0));
  EXPECT_TRUE(pit.record_interest(3, 1, 0));
  EXPECT_FALSE(pit.record_interest(4, 1, 0)) << "table full: must refuse (2.4)";
  // Aggregation into an existing entry is still allowed at capacity.
  EXPECT_EQ(pit.record_interest(2, 9, 0).value(), InterestResult::kAggregated);
}

TEST(Pit, CapacityRecoversViaExpiry) {
  Pit::Config config;
  config.max_entries = 2;
  config.entry_lifetime = 100;
  Pit pit(config);
  pit.record_interest(1, 1, 0);
  pit.record_interest(2, 1, 0);
  // At t=150 both are expired; the refused insert triggers a sweep.
  EXPECT_TRUE(pit.record_interest(3, 1, 150));
}

// ---------- ContentStore ----------

std::vector<std::uint8_t> payload(std::uint8_t tag) { return {tag, tag, tag}; }

TEST(ContentStore, InsertLookup) {
  ContentStore cs(4);
  cs.insert(1, payload(0xAA));
  const auto got = cs.lookup(1);
  ASSERT_TRUE(got);
  EXPECT_EQ(*got, payload(0xAA));
  EXPECT_FALSE(cs.lookup(2));
  EXPECT_EQ(cs.hits(), 1u);
  EXPECT_EQ(cs.misses(), 1u);
}

TEST(ContentStore, LruEviction) {
  ContentStore cs(2);
  cs.insert(1, payload(1));
  cs.insert(2, payload(2));
  // Touch 1 so 2 becomes the LRU victim.
  ASSERT_TRUE(cs.lookup(1));
  cs.insert(3, payload(3));

  EXPECT_TRUE(cs.contains(1));
  EXPECT_FALSE(cs.contains(2));
  EXPECT_TRUE(cs.contains(3));
  EXPECT_EQ(cs.size(), 2u);
}

TEST(ContentStore, ReinsertUpdatesPayloadAndRecency) {
  ContentStore cs(2);
  cs.insert(1, payload(1));
  cs.insert(2, payload(2));
  cs.insert(1, payload(9));  // update, 1 becomes MRU
  cs.insert(3, payload(3));  // evicts 2

  EXPECT_EQ(cs.lookup(1).value(), payload(9));
  EXPECT_FALSE(cs.contains(2));
}

TEST(ContentStore, EraseAndClear) {
  ContentStore cs(4);
  cs.insert(1, payload(1));
  cs.insert(2, payload(2));
  EXPECT_TRUE(cs.erase(1));
  EXPECT_FALSE(cs.erase(1));
  EXPECT_EQ(cs.size(), 1u);
  cs.clear();
  EXPECT_EQ(cs.size(), 0u);
  EXPECT_FALSE(cs.contains(2));
}

TEST(ContentStore, ZeroCapacityDisables) {
  ContentStore cs(0);
  cs.insert(1, payload(1));
  EXPECT_EQ(cs.size(), 0u);
  EXPECT_FALSE(cs.lookup(1));
}

}  // namespace
}  // namespace dip::pit
