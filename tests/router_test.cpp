// Algorithm-1 engine tests: dispatch, tag skipping, unsupported-FN policy,
// resource limits, and loop/unrolled equivalence.
#include <gtest/gtest.h>

#include "dip/core/ip.hpp"
#include "dip/core/router.hpp"
#include "dip/netsim/dip_node.hpp"
#include "dip/netsim/topology.hpp"
#include "dip/telemetry/telemetry.hpp"

namespace dip::core {
namespace {

std::shared_ptr<OpRegistry> registry() {
  static std::shared_ptr<OpRegistry> r = netsim::make_default_registry();
  return r;
}

RouterEnv env_with_route() {
  RouterEnv env = netsim::make_basic_env(1);
  env.fib32->insert({fib::ipv4_from_u32(0x0A000000), 8}, 7);
  env.fib128->insert({fib::parse_ipv6("2001:db8::").value(), 32}, 9);
  return env;
}

std::vector<std::uint8_t> dip32_packet(std::uint32_t dst = 0x0A000001,
                                       std::uint8_t hops = 64) {
  const auto h = make_dip32_header(fib::ipv4_from_u32(dst), fib::ipv4_from_u32(0x0B000001),
                                   NextHeader::kNone, hops);
  return h->serialize();
}

TEST(Router, ForwardsViaMatch32) {
  Router router(env_with_route(), registry().get());
  auto packet = dip32_packet();
  const auto result = router.process(packet, 0, 0);
  EXPECT_EQ(result.action, Action::kForward);
  EXPECT_EQ(result.egress, std::vector<FaceId>{7});
  EXPECT_EQ(router.env().counters.forwarded, 1u);
}

TEST(Router, ForwardsViaMatch128) {
  Router router(env_with_route(), registry().get());
  const auto h = make_dip128_header(fib::parse_ipv6("2001:db8::42").value(),
                                    fib::parse_ipv6("2001:db8::1").value());
  auto packet = h->serialize();
  const auto result = router.process(packet, 0, 0);
  EXPECT_EQ(result.action, Action::kForward);
  EXPECT_EQ(result.egress, std::vector<FaceId>{9});
}

TEST(Router, DropsOnNoRoute) {
  Router router(env_with_route(), registry().get());
  auto packet = dip32_packet(0x0B000001);  // outside 10/8
  const auto result = router.process(packet, 0, 0);
  EXPECT_EQ(result.action, Action::kDrop);
  EXPECT_EQ(result.reason, DropReason::kNoRoute);
}

TEST(Router, HopLimitDecrementsAcrossHopsAndExpires) {
  Router router(env_with_route(), registry().get());
  auto packet = dip32_packet(0x0A000001, 3);

  EXPECT_EQ(router.process(packet, 0, 0).action, Action::kForward);  // 3 -> 2
  EXPECT_EQ(router.process(packet, 0, 0).action, Action::kForward);  // 2 -> 1
  const auto result = router.process(packet, 0, 0);                  // 1 -> 0
  EXPECT_EQ(result.action, Action::kDrop);
  EXPECT_EQ(result.reason, DropReason::kHopLimitExceeded);
}

TEST(Router, MalformedPacketDropped) {
  Router router(env_with_route(), registry().get());
  std::vector<std::uint8_t> garbage = {1, 2, 3};
  const auto result = router.process(garbage, 0, 0);
  EXPECT_EQ(result.action, Action::kDrop);
  EXPECT_EQ(result.reason, DropReason::kMalformed);
}

TEST(Router, HostTaggedFnsSkipped) {
  // A packet whose only FN is host-tagged: the router must not execute it;
  // with a default egress configured it forwards blindly.
  RouterEnv env = env_with_route();
  env.default_egress = 4;
  Router router(std::move(env), registry().get());

  HeaderBuilder b;
  std::array<std::uint8_t, 4> field{};
  b.add_location(field);
  b.add_fn(FnTriple::host(0, 32, OpKey::kVer));
  auto packet = b.build()->serialize();

  const auto result = router.process(packet, 0, 0);
  EXPECT_EQ(result.action, Action::kForward);
  EXPECT_EQ(result.egress, std::vector<FaceId>{4});
  EXPECT_EQ(router.env().counters.fn_skipped_host, 1u);
  EXPECT_EQ(router.env().counters.fn_executed, 0u);
}

TEST(Router, NoMatchFnNoDefaultEgressDrops) {
  Router router(env_with_route(), registry().get());
  HeaderBuilder b;
  std::array<std::uint8_t, 4> field{};
  b.add_router_fn(OpKey::kSource, field);  // source decides nothing
  auto packet = b.build()->serialize();
  const auto result = router.process(packet, 0, 0);
  EXPECT_EQ(result.reason, DropReason::kNoRoute);
}

// ---------- §2.4 heterogeneous configuration ----------

TEST(Router, DisabledOptionalFnIsSkipped) {
  RouterEnv env = env_with_route();
  env.disabled_keys.insert(OpKey::kTelemetry);  // optional FN
  env.default_egress = 2;
  Router router(std::move(env), registry().get());

  HeaderBuilder b;
  std::array<std::uint8_t, 10> field{};
  b.add_router_fn(OpKey::kTelemetry, field);
  auto packet = b.build()->serialize();

  const auto result = router.process(packet, 0, 0);
  EXPECT_EQ(result.action, Action::kForward) << "optional FN: simply ignored";
  EXPECT_EQ(router.env().counters.fn_skipped_optional, 1u);
}

TEST(Router, DisabledPathCriticalFnRaisesError) {
  RouterEnv env = env_with_route();
  env.disabled_keys.insert(OpKey::kMac);
  env.default_egress = 2;
  Router router(std::move(env), registry().get());

  HeaderBuilder b;
  std::array<std::uint8_t, 68> block{};
  b.add_location(block);
  b.add_fn(FnTriple::router(128, 128, OpKey::kParm));
  b.add_fn(FnTriple::router(0, 416, OpKey::kMac));
  auto packet = b.build()->serialize();

  const auto result = router.process(packet, 0, 0);
  EXPECT_EQ(result.action, Action::kError);
  EXPECT_EQ(result.reason, DropReason::kUnsupportedFn);
  EXPECT_EQ(result.offending_key, OpKey::kMac);
}

TEST(Router, UnregisteredOptionalKeySkipped) {
  // A key nobody implements and that is not path-critical: ignore.
  RouterEnv env = env_with_route();
  env.default_egress = 2;
  Router router(std::move(env), registry().get());

  HeaderBuilder b;
  std::array<std::uint8_t, 4> field{};
  const std::uint16_t loc = b.add_location(field);
  b.add_fn(FnTriple{loc, 32, 500});  // unknown key 500, no fn_info
  auto packet = b.build()->serialize();

  const auto result = router.process(packet, 0, 0);
  EXPECT_EQ(result.action, Action::kForward);
}

// ---------- §2.4 resource limits ----------

TEST(Router, BudgetExhaustionDrops) {
  RouterEnv env = env_with_route();
  env.limits.per_packet_budget = 3;  // Match32 costs 2, Source costs 1 -> 2nd match fails
  Router router(std::move(env), registry().get());

  HeaderBuilder b;
  const auto dst = fib::ipv4_from_u32(0x0A000001);
  b.add_router_fn(OpKey::kMatch32, dst.bytes);
  b.add_router_fn(OpKey::kMatch32, dst.bytes);
  auto packet = b.build()->serialize();

  const auto result = router.process(packet, 0, 0);
  EXPECT_EQ(result.action, Action::kDrop);
  EXPECT_EQ(result.reason, DropReason::kBudgetExhausted);
}

TEST(Router, BudgetSufficientForNormalCompositions) {
  Router router(env_with_route(), registry().get());  // default budget 64
  auto packet = dip32_packet();
  EXPECT_EQ(router.process(packet, 0, 0).action, Action::kForward);
}

TEST(Router, MaxFnPerPacketEnforced) {
  RouterEnv env = env_with_route();
  env.limits.max_fn_per_packet = 2;
  env.default_egress = 1;
  Router router(std::move(env), registry().get());

  HeaderBuilder b;
  std::array<std::uint8_t, 4> field{};
  const std::uint16_t loc = b.add_location(field);
  for (int i = 0; i < 3; ++i) b.add_fn(FnTriple::router(loc, 32, OpKey::kSource));
  auto packet = b.build()->serialize();

  const auto result = router.process(packet, 0, 0);
  EXPECT_EQ(result.reason, DropReason::kBudgetExhausted);
}

// ---------- dispatch-strategy equivalence (ablation A1 correctness leg) ----------

class DispatchEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(DispatchEquivalence, LoopAndUnrolledAgree) {
  const int fn_count = GetParam();

  auto make_packet = [&] {
    HeaderBuilder b;
    const auto dst = fib::ipv4_from_u32(0x0A000001);
    for (int i = 0; i < fn_count; ++i) {
      if (i == 0) {
        b.add_router_fn(OpKey::kMatch32, dst.bytes);
      } else {
        b.add_router_fn(OpKey::kSource, dst.bytes);
      }
    }
    return b.build()->serialize();
  };

  Router loop_router(env_with_route(), registry().get(), DispatchStrategy::kLoop);
  Router unrolled_router(env_with_route(), registry().get(),
                         DispatchStrategy::kUnrolled);

  auto p1 = make_packet();
  auto p2 = make_packet();
  const auto r1 = loop_router.process(p1, 3, 100);
  const auto r2 = unrolled_router.process(p2, 3, 100);

  EXPECT_EQ(r1.action, r2.action);
  EXPECT_EQ(r1.reason, r2.reason);
  EXPECT_EQ(r1.egress, r2.egress);
  EXPECT_EQ(p1, p2) << "packet mutations must be identical";
}

INSTANTIATE_TEST_SUITE_P(FnCounts, DispatchEquivalence,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 12, 16));


TEST(Router, PerFnExecutionCountersTrack) {
  Router router(env_with_route(), registry().get());
  auto p1 = dip32_packet();
  auto p2 = dip32_packet();
  (void)router.process(p1, 0, 0);
  (void)router.process(p2, 0, 0);

  const RouterEnv& env = router.env();
  EXPECT_EQ(env.executions_of(OpKey::kMatch32), 2u);
  EXPECT_EQ(env.executions_of(OpKey::kSource), 2u);
  EXPECT_EQ(env.executions_of(OpKey::kMac), 0u);
  EXPECT_EQ(env.counters.fn_executed, 4u);
}

// ---------- §5 runtime FN upgrade ----------

TEST(RuntimeUpgrade, AddingAnFnActivatesItForLiveTraffic) {
  // Start with a registry lacking F_int: telemetry FNs are ignored
  // (optional-FN rule). Deploy the module at runtime; the very next packet
  // gets its record appended. "Support new services by only upgrading FNs."
  auto registry = std::make_shared<OpRegistry>();
  registry->add(std::make_unique<Match32Op>());
  registry->add(std::make_unique<SourceOp>());
  const std::uint64_t epoch_before = registry->epoch();

  RouterEnv env = env_with_route();
  env.node_id = 77;
  Router router(std::move(env), registry.get());

  auto make_packet = [] {
    HeaderBuilder b;
    b.add_router_fn(OpKey::kMatch32, fib::ipv4_from_u32(0x0A000001).bytes);
    std::array<std::uint8_t, 10> tfield{};
    b.add_router_fn(OpKey::kTelemetry, tfield);
    return b.build()->serialize();
  };

  auto before = make_packet();
  EXPECT_EQ(router.process(before, 0, 0).action, Action::kForward);
  {
    const auto h = DipHeader::parse(before);
    EXPECT_EQ(h->locations[4], 0) << "record count still zero: FN was skipped";
  }

  // Live upgrade.
  registry->add(std::make_unique<dip::telemetry::TelemetryOp>());
  EXPECT_GT(registry->epoch(), epoch_before);

  auto after = make_packet();
  EXPECT_EQ(router.process(after, 0, 123).action, Action::kForward);
  {
    const auto h = DipHeader::parse(after);
    EXPECT_EQ(h->locations[4], 1) << "one record appended after the upgrade";
  }

  // Rollback: remove the module; traffic keeps flowing, FN skipped again.
  auto removed = registry->remove(OpKey::kTelemetry);
  EXPECT_NE(removed, nullptr);
  EXPECT_EQ(registry->remove(OpKey::kTelemetry), nullptr);
  auto rolled_back = make_packet();
  EXPECT_EQ(router.process(rolled_back, 0, 0).action, Action::kForward);
  const auto h = DipHeader::parse(rolled_back);
  EXPECT_EQ(h->locations[4], 0);
}

}  // namespace
}  // namespace dip::core
