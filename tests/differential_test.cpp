// Differential chaos harness: the three execution engines of the DIP data
// plane — scalar Router::process, Router::process_batch, and a 4-worker
// RouterPool — must produce *identical* verdict sequences for identical
// inputs, for every protocol composition in the paper's table, under
// chaos-grade inputs (seeded byte corruption and truncation).
//
// This is the correctness oracle the ROADMAP asks for: any future batching,
// caching, or sharding optimization that changes a verdict anywhere in the
// composition matrix fails here, with the seed printed for replay.
//
// Engine equivalence holds because the pool's sharding is flow-affine (all
// packets of a flow — an NDN name, a destination address — land on one
// worker, so per-worker PIT/flow-cache state evolves exactly as the single
// scalar router's does) and Router phases are per-packet.
#include <gtest/gtest.h>

#include <map>
#include <mutex>

#include "dip/core/builder.hpp"
#include "dip/core/ip.hpp"
#include "dip/core/router.hpp"
#include "dip/core/router_pool.hpp"
#include "dip/crypto/random.hpp"
#include "dip/ndn/ndn.hpp"
#include "dip/netsim/topology.hpp"
#include "dip/opt/opt.hpp"
#include "dip/xia/xia.hpp"

namespace dip {
namespace {

constexpr std::array<std::uint64_t, 8> kSeeds = {11, 23, 37, 41, 53, 67, 79, 97};
constexpr std::size_t kPacketsPerRun = 384;
constexpr std::size_t kBatch = 32;
constexpr std::size_t kPoolWorkers = 4;

// ---------- comparable verdict image ----------

struct VerdictImage {
  core::Action action;
  core::DropReason reason;
  std::vector<core::FaceId> egress;
  core::OpKey offending_key;
  bool respond_from_cache;

  friend bool operator==(const VerdictImage&, const VerdictImage&) = default;
};

VerdictImage image_of(const core::ProcessResult& r) {
  return {r.action, r.reason, r.egress, r.offending_key, r.respond_from_cache};
}

std::string describe(const VerdictImage& v) {
  std::string out = "action=" + std::to_string(static_cast<int>(v.action)) +
                    " reason=" + std::string(core::to_string(v.reason)) + " egress=[";
  for (const auto e : v.egress) out += std::to_string(e) + ",";
  out += "]";
  return out;
}

// ---------- shared environment ----------

// Deterministic route set shared (as state, not pointers) by every engine.
// Engines must not share mutable tables: scalar processing interleaved with
// pool processing would cross-pollinate PIT/flow-cache state.
core::RouterEnv fresh_env(std::uint32_t node_id) {
  core::RouterEnv env = netsim::make_basic_env(node_id);
  env.fib32->insert({fib::ipv4_from_u32(0x0A000000), 8}, 1);
  env.fib32->insert({fib::ipv4_from_u32(0x0A400000), 10}, 2);
  env.fib128->insert({fib::parse_ipv6("2001:db8::").value(), 32}, 3);
  env.xid_table->insert(fib::XidType::kAd, xia::xid_from_label("diff-ad"), 4);
  env.xid_table->insert(fib::XidType::kHid, xia::xid_from_label("diff-hid"), 5);
  env.default_egress = 9;  // OPT packets carry no match FN
  // One secret for the whole fleet so every engine is byte-identical.
  env.node_secret = crypto::Xoshiro256(0xD1FF).block();
  return env;
}

// ---------- packet stream generation ----------

enum class Composition { kDip32, kDip128, kNdn, kOpt, kNdnOpt, kXia };

constexpr std::array<Composition, 6> kCompositions = {
    Composition::kDip32, Composition::kDip128, Composition::kNdn,
    Composition::kOpt,   Composition::kNdnOpt, Composition::kXia};

std::string_view name_of(Composition c) {
  switch (c) {
    case Composition::kDip32: return "DIP-32";
    case Composition::kDip128: return "DIP-128";
    case Composition::kNdn: return "NDN";
    case Composition::kOpt: return "OPT";
    case Composition::kNdnOpt: return "NDN+OPT";
    case Composition::kXia: return "XIA";
  }
  return "?";
}

std::vector<std::uint8_t> clean_packet(Composition c, crypto::Xoshiro256& rng) {
  switch (c) {
    case Composition::kDip32: {
      // Mostly routable (two distinct prefixes), some unroutable.
      const std::uint32_t dst =
          rng.below(8) == 0 ? 0xC0000000 + rng.u32() % 4096
                            : 0x0A000000 + rng.u32() % (1u << 23);
      return core::make_dip32_header(fib::ipv4_from_u32(dst),
                                     fib::ipv4_from_u32(0x7F000001))
          ->serialize();
    }
    case Composition::kDip128: {
      auto dst = fib::parse_ipv6("2001:db8::").value();
      dst.bytes[15] = static_cast<std::uint8_t>(rng.below(256));
      if (rng.below(8) == 0) dst.bytes[0] = 0xFE;  // off-prefix
      return core::make_dip128_header(dst, fib::parse_ipv6("::1").value())
          ->serialize();
    }
    case Composition::kNdn: {
      // Small code space so interests, duplicates, and data interact with
      // the PIT: roughly 2 interests per data packet.
      const std::uint32_t code = 0x0A000000 + rng.u32() % 24;
      if (rng.below(3) < 2) return ndn::make_interest_header32(code)->serialize();
      return ndn::make_data_header32(code)->serialize();
    }
    case Composition::kOpt: {
      static const auto session = [] {
        crypto::Xoshiro256 r(0x09'7A'6B);
        const std::vector<crypto::Block> secrets{r.block(), r.block()};
        return opt::negotiate_session(r.block(), secrets, r.block());
      }();
      const std::vector<std::uint8_t> payload = {'d', 'i', 'f', 'f'};
      auto wire =
          opt::make_opt_header(session, payload,
                               static_cast<std::uint32_t>(rng.below(1 << 20)))
              ->serialize();
      wire.insert(wire.end(), payload.begin(), payload.end());
      return wire;
    }
    case Composition::kNdnOpt: {
      static const auto session = [] {
        crypto::Xoshiro256 r(0x0D'0E'0F);
        const std::vector<crypto::Block> secrets{r.block()};
        return opt::negotiate_session(r.block(), secrets, r.block());
      }();
      const std::uint32_t code = 0x0A000000 + rng.u32() % 24;
      const std::vector<std::uint8_t> payload = {'n', 'o'};
      const bool interest = rng.below(3) < 2;
      auto wire = opt::make_ndn_opt_header(code, interest, session, payload,
                                           static_cast<std::uint32_t>(rng.below(100)))
                      ->serialize();
      wire.insert(wire.end(), payload.begin(), payload.end());
      return wire;
    }
    case Composition::kXia: {
      const auto ad = xia::xid_from_label("diff-ad");
      const auto hid = xia::xid_from_label(rng.below(6) == 0 ? "unknown-hid"
                                                             : "diff-hid");
      const auto dag = xia::make_service_dag(ad, hid, fib::XidType::kSid,
                                             xia::xid_from_label("diff-sid"));
      return xia::make_xia_header(dag)->serialize();
    }
  }
  return {};
}

/// The chaos mutator: a deterministic function of the seed. About a third
/// of the stream is damaged — byte flips, truncations — and half of the
/// damaged packets get their checksum patched back up so the damage reaches
/// FN validation instead of dying at bind.
std::vector<std::vector<std::uint8_t>> make_stream(Composition c,
                                                   std::uint64_t seed) {
  crypto::Xoshiro256 rng(seed ^ (static_cast<std::uint64_t>(c) << 32));
  std::vector<std::vector<std::uint8_t>> stream;
  stream.reserve(kPacketsPerRun);
  for (std::size_t i = 0; i < kPacketsPerRun; ++i) {
    auto packet = clean_packet(c, rng);
    if (rng.below(3) == 0 && !packet.empty()) {
      const std::size_t flips = 1 + rng.below(4);
      for (std::size_t k = 0; k < flips; ++k) {
        packet[rng.below(packet.size())] ^=
            static_cast<std::uint8_t>(1 + rng.below(255));
      }
      if (rng.below(4) == 0) packet.resize(1 + rng.below(packet.size()));
      if (rng.below(2) == 0 && packet.size() >= core::BasicHeader::kWireSize) {
        packet[5] = core::basic_header_checksum(
            std::span<const std::uint8_t>(packet).subspan(0, 5));
      }
    }
    stream.push_back(std::move(packet));
  }
  return stream;
}

SimTime now_of(std::size_t packet_index) {
  return static_cast<SimTime>(packet_index / kBatch) * kMicrosecond;
}

// ---------- the three engines ----------

std::vector<VerdictImage> run_scalar(Composition c, std::uint64_t seed) {
  auto registry = netsim::make_default_registry();
  core::Router router(fresh_env(0), registry.get());
  router.set_validation(core::ValidationMode::kLenient);
  auto stream = make_stream(c, seed);
  std::vector<VerdictImage> verdicts;
  verdicts.reserve(stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    verdicts.push_back(image_of(router.process(stream[i], 0, now_of(i))));
  }
  return verdicts;
}

std::vector<VerdictImage> run_batch(Composition c, std::uint64_t seed,
                                    std::vector<std::vector<std::uint8_t>>* bytes_out) {
  auto registry = netsim::make_default_registry();
  core::Router router(fresh_env(0), registry.get());
  router.set_validation(core::ValidationMode::kLenient);
  auto stream = make_stream(c, seed);
  std::vector<VerdictImage> verdicts(stream.size(),
                                     VerdictImage{core::Action::kDrop, {}, {}, {}, false});
  std::vector<core::PacketRef> refs(kBatch);
  std::vector<core::ProcessResult> results(kBatch);
  for (std::size_t base = 0; base < stream.size(); base += kBatch) {
    const std::size_t n = std::min(kBatch, stream.size() - base);
    for (std::size_t k = 0; k < n; ++k) refs[k] = core::PacketRef(stream[base + k]);
    router.process_batch({refs.data(), n}, 0, now_of(base), {results.data(), n});
    for (std::size_t k = 0; k < n; ++k) verdicts[base + k] = image_of(results[k]);
  }
  if (bytes_out != nullptr) *bytes_out = std::move(stream);
  return verdicts;
}

std::vector<VerdictImage> run_pool(Composition c, std::uint64_t seed) {
  auto registry = netsim::make_default_registry();
  auto stream = make_stream(c, seed);

  // Map each completion back to its global index: per-worker completions
  // arrive in per-worker submission order, so a FIFO of indices per worker
  // (built from the same shard function submit uses) is exact.
  std::array<std::vector<std::size_t>, kPoolWorkers> expect;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    expect[core::RouterPool::shard_of(stream[i], kPoolWorkers)].push_back(i);
  }
  std::array<std::size_t, kPoolWorkers> cursor{};

  std::vector<VerdictImage> verdicts(stream.size(),
                                     VerdictImage{core::Action::kDrop, {}, {}, {}, false});
  std::mutex m;
  core::RouterPoolConfig config;
  config.workers = kPoolWorkers;
  config.ring_capacity = 1024;
  core::RouterPool pool(
      registry.get(),
      [](std::size_t i) { return fresh_env(static_cast<std::uint32_t>(i)); },
      config,
      [&](std::size_t worker, core::RouterPool::Item&, core::ProcessResult& result) {
        std::lock_guard<std::mutex> lk(m);
        ASSERT_LT(cursor[worker], expect[worker].size());
        verdicts[expect[worker][cursor[worker]++]] = image_of(result);
      });
  for (std::size_t w = 0; w < kPoolWorkers; ++w) {
    pool.router(w).set_validation(core::ValidationMode::kLenient);
  }
  for (std::size_t i = 0; i < stream.size(); ++i) {
    pool.submit(stream[i], 0, now_of(i));
  }
  pool.stop();
  return verdicts;
}

// ---------- the harness ----------

TEST(Differential, StreamGenerationIsDeterministic) {
  for (const auto c : kCompositions) {
    for (const auto seed : kSeeds) {
      EXPECT_EQ(make_stream(c, seed), make_stream(c, seed))
          << name_of(c) << " seed " << seed;
    }
  }
}

TEST(Differential, ScalarBatchPoolVerdictsAgreeAcrossCompositionMatrix) {
  for (const auto c : kCompositions) {
    for (const auto seed : kSeeds) {
      SCOPED_TRACE(std::string(name_of(c)) + " seed " + std::to_string(seed));
      const auto scalar = run_scalar(c, seed);
      const auto batch = run_batch(c, seed, nullptr);
      const auto pool = run_pool(c, seed);
      ASSERT_EQ(scalar.size(), batch.size());
      ASSERT_EQ(scalar.size(), pool.size());
      for (std::size_t i = 0; i < scalar.size(); ++i) {
        ASSERT_EQ(scalar[i], batch[i])
            << "scalar/batch divergence at packet " << i << ": "
            << describe(scalar[i]) << " vs " << describe(batch[i]);
        ASSERT_EQ(scalar[i], pool[i])
            << "scalar/pool divergence at packet " << i << ": "
            << describe(scalar[i]) << " vs " << describe(pool[i]);
      }
    }
  }
}

TEST(Differential, ScalarAndBatchRewritePacketsIdentically) {
  // Verdict equality is necessary but not sufficient — in-place header
  // rewrites (hop limit, tag updates) must match byte for byte too.
  for (const auto c : kCompositions) {
    const std::uint64_t seed = kSeeds[0];
    SCOPED_TRACE(name_of(c));

    auto registry = netsim::make_default_registry();
    core::Router router(fresh_env(0), registry.get());
    router.set_validation(core::ValidationMode::kLenient);
    auto scalar_stream = make_stream(c, seed);
    for (std::size_t i = 0; i < scalar_stream.size(); ++i) {
      (void)router.process(scalar_stream[i], 0, now_of(i));
    }

    std::vector<std::vector<std::uint8_t>> batch_stream;
    (void)run_batch(c, seed, &batch_stream);
    ASSERT_EQ(scalar_stream.size(), batch_stream.size());
    for (std::size_t i = 0; i < scalar_stream.size(); ++i) {
      ASSERT_EQ(scalar_stream[i], batch_stream[i]) << "byte divergence at " << i;
    }
  }
}

TEST(Differential, VerdictSequencesAreSeedStable) {
  // Same seed, same engine, twice: byte-identical verdicts. Different
  // seeds: the harness actually varies its input (guards against a
  // generator that ignores the seed).
  const auto a = run_scalar(Composition::kDip32, kSeeds[0]);
  const auto b = run_scalar(Composition::kDip32, kSeeds[0]);
  EXPECT_EQ(a, b);
  const auto other = run_scalar(Composition::kDip32, kSeeds[1]);
  EXPECT_NE(a, other);
}

TEST(Differential, QuarantineLedgerMatchesAcrossEngines) {
  // The lenient-mode quarantine counter is part of the differential
  // contract: scalar and batch engines must quarantine the same packets.
  for (const auto seed : kSeeds) {
    auto registry = netsim::make_default_registry();
    core::Router scalar(fresh_env(0), registry.get());
    scalar.set_validation(core::ValidationMode::kLenient);
    auto stream = make_stream(Composition::kDip32, seed);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      (void)scalar.process(stream[i], 0, now_of(i));
    }

    core::Router batch(fresh_env(0), registry.get());
    batch.set_validation(core::ValidationMode::kLenient);
    auto stream2 = make_stream(Composition::kDip32, seed);
    std::vector<core::PacketRef> refs(kBatch);
    std::vector<core::ProcessResult> results(kBatch);
    for (std::size_t base = 0; base < stream2.size(); base += kBatch) {
      const std::size_t n = std::min(kBatch, stream2.size() - base);
      for (std::size_t k = 0; k < n; ++k) refs[k] = core::PacketRef(stream2[base + k]);
      batch.process_batch({refs.data(), n}, 0, now_of(base), {results.data(), n});
    }

    EXPECT_EQ(scalar.env().counters.quarantined.load(),
              batch.env().counters.quarantined.load())
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace dip
