// Minimal header-only property-testing support for the conformance harness:
// integrated shrinking of failing packets and a persisted failure corpus.
//
// Shrinking is predicate-driven and greedy: given a packet for which
// `fails(packet)` is true, repeatedly try smaller candidates (drop an FN,
// drop the payload, truncate the locations block, zero bytes; for packets
// that do not even parse, truncate and zero raw bytes) and keep any
// candidate that still fails, until a fixpoint. The result is the minimal
// reproducer committed to tests/corpus/.
#pragma once

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "dip/core/header.hpp"

namespace dip::proptest {

using Packet = std::vector<std::uint8_t>;
using FailPredicate = std::function<bool(const Packet&)>;

// ---------------------------------------------------------------------------
// Hex + corpus persistence
// ---------------------------------------------------------------------------

inline std::string hex_encode(const Packet& data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (const std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0f]);
  }
  return out;
}

inline std::optional<Packet> hex_decode(std::string_view hex) {
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  if (hex.size() % 2 != 0) return std::nullopt;
  Packet out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i + 1 < hex.size() || i + 1 == hex.size(); i += 2) {
    if (i + 1 >= hex.size()) break;
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

/// Load every *.hex file under `dir`, sorted by filename (determinism).
/// Lines starting with '#' and blank lines are ignored; every other line is
/// one hex-encoded packet.
inline std::vector<std::pair<std::string, Packet>> load_corpus(
    const std::filesystem::path& dir) {
  std::vector<std::pair<std::string, Packet>> out;
  if (!std::filesystem::exists(dir)) return out;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".hex") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& file : files) {
    std::ifstream in(file);
    std::string line;
    while (std::getline(in, line)) {
      while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
        line.pop_back();
      }
      if (line.empty() || line[0] == '#') continue;
      if (auto packet = hex_decode(line)) {
        out.emplace_back(file.filename().string(), std::move(*packet));
      }
    }
  }
  return out;
}

/// Persist a shrunk reproducer. Returns the written path.
inline std::filesystem::path save_corpus_entry(const std::filesystem::path& dir,
                                               const std::string& name,
                                               const Packet& packet,
                                               const std::string& comment = {}) {
  std::filesystem::create_directories(dir);
  const auto path = dir / (name + ".hex");
  std::ofstream out(path, std::ios::trunc);
  if (!comment.empty()) out << "# " << comment << "\n";
  out << hex_encode(packet) << "\n";
  return path;
}

/// Stable content-derived name for a corpus entry (FNV-1a over the bytes).
inline std::string corpus_name(const Packet& packet) {
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint8_t b : packet) {
    h ^= b;
    h *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return std::string("shrunk-") + buf;
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

/// Number of FN triples the packet declares (0 if it does not parse).
inline std::size_t fn_count(const Packet& packet) {
  const auto h = core::DipHeader::parse(packet);
  return h ? h->fns.size() : 0;
}

namespace detail {

inline Packet rebuild(const core::DipHeader& header, const Packet& payload) {
  Packet out = header.serialize();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

/// One pass of structural moves over a parsed packet. Returns true (and
/// updates `packet`) if any smaller candidate still fails.
inline bool shrink_structural_once(Packet& packet, const FailPredicate& fails) {
  const auto parsed = core::DipHeader::parse(packet);
  if (!parsed) return false;
  const core::DipHeader& h = *parsed;
  const Packet payload(packet.begin() + static_cast<std::ptrdiff_t>(h.wire_size()),
                       packet.end());

  // Drop the payload.
  if (!payload.empty()) {
    const Packet cand = rebuild(h, {});
    if (fails(cand)) {
      packet = cand;
      return true;
    }
  }
  // Drop one FN triple.
  for (std::size_t i = 0; i < h.fns.size(); ++i) {
    core::DipHeader smaller = h;
    smaller.fns.erase(smaller.fns.begin() + static_cast<std::ptrdiff_t>(i));
    const Packet cand = rebuild(smaller, payload);
    if (fails(cand)) {
      packet = cand;
      return true;
    }
  }
  // Truncate the locations block to the minimal cover of the remaining FNs.
  std::size_t need = 0;
  for (const core::FnTriple& fn : h.fns) {
    need = std::max(need, (static_cast<std::size_t>(fn.field_loc) + fn.field_len + 7) / 8);
  }
  if (need < h.locations.size()) {
    core::DipHeader smaller = h;
    smaller.locations.resize(need);
    const Packet cand = rebuild(smaller, payload);
    if (fails(cand)) {
      packet = cand;
      return true;
    }
  }
  // Zero a locations byte (canonicalize content without changing shape).
  for (std::size_t i = 0; i < h.locations.size(); ++i) {
    if (h.locations[i] == 0) continue;
    core::DipHeader smaller = h;
    smaller.locations[i] = 0;
    const Packet cand = rebuild(smaller, payload);
    if (fails(cand)) {
      packet = cand;
      return true;
    }
  }
  return false;
}

/// One pass of raw byte moves (for packets that do not parse at all).
inline bool shrink_raw_once(Packet& packet, const FailPredicate& fails) {
  // Truncate the tail, largest cut first.
  for (std::size_t cut = packet.size() / 2; cut >= 1; cut /= 2) {
    if (cut >= packet.size()) continue;
    Packet cand(packet.begin(),
                packet.end() - static_cast<std::ptrdiff_t>(cut));
    if (fails(cand)) {
      packet = std::move(cand);
      return true;
    }
  }
  // Zero single bytes.
  for (std::size_t i = 0; i < packet.size(); ++i) {
    if (packet[i] == 0) continue;
    Packet cand = packet;
    cand[i] = 0;
    if (fails(cand)) {
      packet = std::move(cand);
      return true;
    }
  }
  return false;
}

}  // namespace detail

/// Greedy fixpoint minimization: `fails(packet)` must be true on entry and
/// stays true for the returned reproducer. The predicate must be pure
/// (rebuild all state per call) or shrinking is meaningless.
inline Packet shrink_packet(Packet packet, const FailPredicate& fails) {
  if (!fails(packet)) return packet;
  for (bool progress = true; progress;) {
    progress = core::DipHeader::parse(packet).has_value()
                   ? detail::shrink_structural_once(packet, fails)
                   : detail::shrink_raw_once(packet, fails);
  }
  return packet;
}

}  // namespace dip::proptest
