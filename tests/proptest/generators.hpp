// Seeded packet-stream generators for the conformance harness.
//
// One fixed "world" (routes, XIDs, sessions, secrets) is shared by the
// production RouterEnv and the RefNode oracle — tests/support/conformance.hpp
// builds both sides from the constants below. The stream generator then emits
// a deterministic mix of every Table-1 composition plus adversarial,
// corrupted, and resource-limit packets, all derived from one seed.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "dip/core/builder.hpp"
#include "dip/core/fn.hpp"
#include "dip/crypto/random.hpp"
#include "dip/dtn/custody.hpp"
#include "dip/epic/epic.hpp"
#include "dip/fib/address.hpp"
#include "dip/ndn/ndn.hpp"
#include "dip/opt/opt.hpp"
#include "dip/opt/session.hpp"
#include "dip/qos/dps.hpp"
#include "dip/security/pass.hpp"
#include "dip/telemetry/telemetry.hpp"
#include "dip/xia/dag.hpp"
#include "dip/xia/xia.hpp"

namespace dip::proptest {

// ---------------------------------------------------------------------------
// The conformance world — every constant both sides are configured from.
// ---------------------------------------------------------------------------

namespace world {

inline constexpr std::uint32_t kNodeId = 7;
inline constexpr std::uint32_t kDefaultEgress = 9;

// Faces the schedule rotates through (block-constant; see ingress_of).
inline constexpr std::uint32_t kFaces = 3;

// F_32_match routes: 10.0.0.0/8 -> 1 with a more-specific 10.64.0.0/10 -> 2.
inline constexpr std::uint32_t kNet10 = 0x0A000000;
inline constexpr std::uint32_t kNet10_64 = 0x0A400000;
inline constexpr std::uint32_t kNh10 = 1;
inline constexpr std::uint32_t kNh10_64 = 2;

// F_128_match route: 2001:db8::/32 -> 3.
inline constexpr std::uint32_t kNh128 = 3;
inline const std::array<std::uint8_t, 16> kNet128 = {0x20, 0x01, 0x0d, 0xb8};

// NDN name-code space. Routable codes live inside 10/8 (F_FIB LPMs the code
// in fib32); kCachedName is pre-stored in the content store.
inline constexpr std::uint32_t kNdnRoutableBase = 0x0A010000;
inline constexpr std::uint32_t kNdnRoutableCount = 8;
inline constexpr std::uint32_t kNdnUnroutableBase = 0xCC000000;
inline constexpr std::uint32_t kNdnUnroutableCount = 4;
inline constexpr std::uint32_t kCachedName = 0x0AC0FFEE;

// Node state limits — small enough that a 10k-packet stream exercises the
// PIT-full and budget paths.
inline constexpr std::uint32_t kBudget = 64;
inline constexpr std::uint32_t kMaxFnPerPacket = 12;
inline constexpr std::size_t kPitMaxEntries = 8;
inline const SimDuration kPitLifetime = 50 * kMicrosecond;
inline constexpr std::size_t kContentStoreCapacity = 64;

// DPS (CSFQ) parameters for the dedicated rate-limiting stream.
inline constexpr std::uint64_t kDpsCapacity = 1'000'000;
inline const SimDuration kDpsWindow = 20 * kMillisecond;
inline constexpr std::uint64_t kDpsSeed = 0xD5EED;

inline const crypto::Block& node_secret() {
  static const crypto::Block b = crypto::Xoshiro256(0xC0FFEE).block();
  return b;
}

inline const crypto::Block& pass_key() {
  static const crypto::Block b = crypto::Xoshiro256(0xBA55).block();
  return b;
}

inline const crypto::Block& destination_secret() {
  static const crypto::Block b = crypto::Xoshiro256(0xD00D).block();
  return b;
}

/// Shared F_custody MAC key (DTN overlay; docs/DTN.md).
inline const crypto::Block& custody_key() {
  static const crypto::Block b = crypto::Xoshiro256(0xD7A).block();
  return b;
}

/// One OPT/EPIC session whose single on-path router is this node.
inline const opt::Session& session() {
  static const opt::Session s = [] {
    const std::array<crypto::Block, 1> router_secrets{node_secret()};
    return opt::negotiate_session(crypto::Xoshiro256(0x0B7).block(), router_secrets,
                                  destination_secret());
  }();
  return s;
}

// XIA principals. "Routed" XIDs have a table entry; "local" XIDs are owned
// by this node; "remote" XIDs are known to nobody.
inline const fib::Xid& ad_routed() {
  static const fib::Xid x = xia::xid_from_label("conf-ad-routed");
  return x;
}
inline constexpr std::uint32_t kNhAd = 4;
inline const fib::Xid& ad_local() {
  static const fib::Xid x = xia::xid_from_label("conf-ad-local");
  return x;
}
inline const fib::Xid& hid_local() {
  static const fib::Xid x = xia::xid_from_label("conf-hid-local");
  return x;
}
inline const fib::Xid& sid_local() {
  static const fib::Xid x = xia::xid_from_label("conf-sid-local");
  return x;
}
inline constexpr std::uint32_t kNhSid = 6;
inline const fib::Xid& cid_hit() {
  static const fib::Xid x = xia::xid_from_label("conf-cid-hit");
  return x;
}
inline const fib::Xid& cid_miss() {
  static const fib::Xid x = xia::xid_from_label("conf-cid-miss");
  return x;
}
inline const fib::Xid& hid_remote() {
  static const fib::Xid x = xia::xid_from_label("conf-hid-remote");
  return x;
}
inline const fib::Xid& sid_remote() {
  static const fib::Xid x = xia::xid_from_label("conf-sid-remote");
  return x;
}

/// Payload pre-stored for cid_hit() / kCachedName.
inline const std::vector<std::uint8_t>& cached_payload() {
  static const std::vector<std::uint8_t> p = {0xCA, 0xC4, 0xED, 0x01};
  return p;
}

// ---------------------------------------------------------------------------
// The stream schedule: timestamps and ingress faces are constant within each
// kBatch-aligned block (the batch engine's burst contract), and advance per
// block so PIT expiry / DPS windows actually tick.
// ---------------------------------------------------------------------------

inline constexpr std::size_t kBatch = 32;

inline SimTime now_of(std::size_t i) {
  return static_cast<SimTime>(i / kBatch + 1) * (10 * kMicrosecond);
}

inline std::uint32_t ingress_of(std::size_t i) {
  return 1 + static_cast<std::uint32_t>((i / kBatch) % kFaces);
}

}  // namespace world

// ---------------------------------------------------------------------------
// Packet construction
// ---------------------------------------------------------------------------

namespace gen {

using Packet = std::vector<std::uint8_t>;

inline Packet finish(const core::DipHeader& header, std::span<const std::uint8_t> payload) {
  Packet out = header.serialize();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

inline Packet finish(const bytes::Result<core::DipHeader>& header,
                     std::span<const std::uint8_t> payload) {
  return finish(header.value(), payload);
}

inline Packet random_payload(crypto::Xoshiro256& rng, std::size_t max_len) {
  Packet p(rng.below(max_len + 1));
  for (auto& b : p) b = static_cast<std::uint8_t>(rng.u32());
  return p;
}

inline std::uint8_t live_hops(crypto::Xoshiro256& rng) {
  return static_cast<std::uint8_t>(2 + rng.below(6));
}

/// A raw wire header: arbitrary triples, declared loc_len, random locations
/// bytes — the adversarial grammar (checksum kept valid so bind proceeds to
/// the structural checks).
inline Packet raw_wire(crypto::Xoshiro256& rng, std::size_t fn_count,
                       std::size_t loc_bytes) {
  Packet p;
  p.push_back(59);                                     // next_header
  p.push_back(static_cast<std::uint8_t>(fn_count));    // fn_num
  p.push_back(live_hops(rng));                         // hop_limit
  const auto param = static_cast<std::uint16_t>(((loc_bytes & 0x3ff) << 1) |
                                                (rng.below(2) ? 1 : 0));
  p.push_back(static_cast<std::uint8_t>(param >> 8));
  p.push_back(static_cast<std::uint8_t>(param));
  std::uint8_t check = 0xDB;
  for (std::size_t i = 0; i < 5; ++i) check ^= p[i];
  p.push_back(check);
  for (std::size_t i = 0; i < fn_count; ++i) {
    const auto loc = static_cast<std::uint16_t>(rng.below(loc_bytes * 8 + 16));
    const auto len = static_cast<std::uint16_t>(rng.below(360));
    auto op = static_cast<std::uint16_t>(rng.below(20));
    if (rng.below(8) == 0) op |= 0x8000;  // occasional host tag
    p.push_back(static_cast<std::uint8_t>(loc >> 8));
    p.push_back(static_cast<std::uint8_t>(loc));
    p.push_back(static_cast<std::uint8_t>(len >> 8));
    p.push_back(static_cast<std::uint8_t>(len));
    p.push_back(static_cast<std::uint8_t>(op >> 8));
    p.push_back(static_cast<std::uint8_t>(op));
  }
  for (std::size_t i = 0; i < loc_bytes; ++i) {
    p.push_back(static_cast<std::uint8_t>(rng.u32()));
  }
  return p;
}

inline std::uint32_t ndn_code(crypto::Xoshiro256& rng) {
  const auto pick = rng.below(10);
  if (pick == 0) return world::kCachedName;
  if (pick < 8) {
    return world::kNdnRoutableBase +
           static_cast<std::uint32_t>(rng.below(world::kNdnRoutableCount));
  }
  return world::kNdnUnroutableBase +
         static_cast<std::uint32_t>(rng.below(world::kNdnUnroutableCount));
}

inline std::array<std::uint8_t, 4> be32(std::uint32_t v) {
  return {static_cast<std::uint8_t>(v >> 24), static_cast<std::uint8_t>(v >> 16),
          static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)};
}

inline std::uint32_t routable32(crypto::Xoshiro256& rng) {
  // Half the draws land in the more-specific 10.64.0.0/10.
  return world::kNet10 | (rng.u32() & 0x00ffffff) |
         (rng.below(2) ? 0x00400000u : 0u);
}

inline Packet make_packet(crypto::Xoshiro256& rng) {
  const auto variant = rng.below(30);
  switch (variant) {
    // -- DIP-32 / DIP-128 (plain traffic gets the heaviest weight) ----------
    case 0:
    case 1: {
      core::HeaderBuilder b;
      b.hop_limit(live_hops(rng));
      b.add_router_fn(core::OpKey::kMatch32, be32(routable32(rng)));
      return finish(b.build(), random_payload(rng, 16));
    }
    case 2: {  // unroutable -> kNoRoute
      core::HeaderBuilder b;
      b.hop_limit(live_hops(rng));
      b.add_router_fn(core::OpKey::kMatch32, be32(0xC0A80000 | rng.u32() % 0xffff));
      return finish(b.build(), random_payload(rng, 16));
    }
    case 3: {
      std::array<std::uint8_t, 16> addr = world::kNet128;
      for (std::size_t i = 4; i < 16; ++i) addr[i] = static_cast<std::uint8_t>(rng.u32());
      core::HeaderBuilder b;
      b.hop_limit(live_hops(rng));
      b.add_router_fn(core::OpKey::kMatch128, addr);
      return finish(b.build(), random_payload(rng, 16));
    }
    case 4: {  // unroutable v6
      std::array<std::uint8_t, 16> addr{};
      for (auto& by : addr) by = static_cast<std::uint8_t>(rng.u32());
      addr[0] = 0xfd;
      core::HeaderBuilder b;
      b.hop_limit(live_hops(rng));
      b.add_router_fn(core::OpKey::kMatch128, addr);
      return finish(b.build(), random_payload(rng, 16));
    }

    // -- NDN ----------------------------------------------------------------
    case 5:
    case 6:
      return finish(ndn::make_interest_header32(ndn_code(rng), core::NextHeader::kNone,
                                                live_hops(rng)),
                    random_payload(rng, 8));
    case 7:
    case 8:
      return finish(ndn::make_data_header32(ndn_code(rng), core::NextHeader::kNone,
                                            live_hops(rng)),
                    random_payload(rng, 8));

    // -- OPT / NDN+OPT ------------------------------------------------------
    case 9: {
      const Packet payload = random_payload(rng, 12);
      return finish(opt::make_opt_header(world::session(), payload, rng.u32(),
                                         core::NextHeader::kNone, live_hops(rng)),
                    payload);
    }
    case 10: {
      const Packet payload = random_payload(rng, 12);
      return finish(
          opt::make_ndn_opt_header(ndn_code(rng), rng.below(2) == 0, world::session(),
                                   payload, rng.u32(), core::NextHeader::kNone,
                                   live_hops(rng)),
          payload);
    }

    // -- XIA ----------------------------------------------------------------
    case 11: {  // remote intent, routed AD: forwards toward the AD
      const xia::Dag dag =
          xia::make_service_dag(world::ad_routed(), world::hid_remote(),
                                fib::XidType::kSid, world::sid_remote());
      return finish(xia::make_xia_header(dag, core::NextHeader::kNone, live_hops(rng)),
                    random_payload(rng, 8));
    }
    case 12: {  // full local traversal to the SID intent (cursor writebacks)
      const xia::Dag dag =
          xia::make_service_dag(world::ad_local(), world::hid_local(),
                                fib::XidType::kSid, world::sid_local(),
                                /*direct_intent=*/false);
      return finish(xia::make_xia_header(dag, core::NextHeader::kNone, live_hops(rng)),
                    random_payload(rng, 8));
    }
    case 13: {  // CID intent in the content store
      const xia::Dag dag =
          xia::make_service_dag(world::ad_local(), world::hid_local(),
                                fib::XidType::kCid, world::cid_hit());
      return finish(xia::make_xia_header(dag, core::NextHeader::kNone, live_hops(rng)),
                    random_payload(rng, 8));
    }
    case 14: {  // CID intent absent from the store
      const xia::Dag dag =
          xia::make_service_dag(world::ad_local(), world::hid_local(),
                                fib::XidType::kCid, world::cid_miss());
      return finish(xia::make_xia_header(dag, core::NextHeader::kNone, live_hops(rng)),
                    random_payload(rng, 8));
    }
    case 15: {  // nobody on the DAG is routable
      const xia::Dag dag =
          xia::make_service_dag(xia::xid_from_label("conf-ad-nowhere"),
                                world::hid_remote(), fib::XidType::kSid,
                                world::sid_remote());
      return finish(xia::make_xia_header(dag, core::NextHeader::kNone, live_hops(rng)),
                    random_payload(rng, 8));
    }

    // -- EPIC ---------------------------------------------------------------
    case 16: {  // valid hop field: verified, stamped, forwarded
      const Packet payload = random_payload(rng, 12);
      return finish(epic::make_epic_header(world::session(), payload, rng.u32(),
                                           core::NextHeader::kNone, live_hops(rng)),
                    payload);
    }
    case 17: {  // forged HVF -> kAuthFailed at this hop
      const Packet payload = random_payload(rng, 12);
      Packet p = finish(epic::make_epic_header(world::session(), payload, rng.u32(),
                                               core::NextHeader::kNone, live_hops(rng)),
                        payload);
      // Locations start after basic header (6) + one FN triple (6); the HVF
      // array sits 40 bytes into the block.
      p[12 + 40 + rng.below(4)] ^= 0x5a;
      return p;
    }
    case 18: {  // hop_index already == hop_count -> kAuthFailed
      const Packet payload = random_payload(rng, 12);
      auto block = epic::make_source_block(world::session(), payload, rng.u32());
      block[36] = block[37];
      core::HeaderBuilder b;
      b.hop_limit(live_hops(rng));
      b.add_router_fn(core::OpKey::kHvf, block);
      return finish(b.build(), payload);
    }

    // -- F_pass -------------------------------------------------------------
    case 19: {  // valid label
      const Packet payload = random_payload(rng, 12);
      const crypto::Block label = security::issue_label(world::pass_key(), payload);
      core::HeaderBuilder b;
      b.hop_limit(live_hops(rng));
      b.add_router_fn(core::OpKey::kPass, label);
      if (rng.below(2) == 0) {
        b.add_router_fn(core::OpKey::kMatch32, be32(routable32(rng)));
      }
      return finish(b.build(), payload);
    }
    case 20: {  // forged label -> kPolicyDenied
      const Packet payload = random_payload(rng, 12);
      core::HeaderBuilder b;
      b.hop_limit(live_hops(rng));
      b.add_router_fn(core::OpKey::kPass, rng.block());
      return finish(b.build(), payload);
    }

    // -- Telemetry ----------------------------------------------------------
    case 21: {
      const std::size_t max_hops = 1 + rng.below(2);
      const bool overflow = rng.below(3) == 0;
      std::vector<std::uint8_t> field(telemetry::telemetry_field_bytes(max_hops), 0);
      if (overflow) field[0] = static_cast<std::uint8_t>(max_hops);  // already full
      core::HeaderBuilder b;
      b.hop_limit(live_hops(rng));
      const std::uint16_t loc = b.add_location(field);
      b.add_fn(core::FnTriple::router(
          loc, static_cast<std::uint16_t>(field.size() * 8), core::OpKey::kTelemetry));
      if (rng.below(2) == 0) {
        b.add_router_fn(core::OpKey::kMatch32, be32(routable32(rng)));
      }
      return finish(b.build(), random_payload(rng, 8));
    }

    // -- Resource limits ----------------------------------------------------
    case 22: {  // budget burner: F_parm + 8x F_MAC = 66 > 64 units
      std::array<std::uint8_t, 68> block{};
      for (auto& by : block) by = static_cast<std::uint8_t>(rng.u32());
      core::HeaderBuilder b;
      b.hop_limit(live_hops(rng));
      b.add_location(block);
      b.add_fn(core::FnTriple::router(128, 128, core::OpKey::kParm));
      for (int i = 0; i < 8; ++i) {
        b.add_fn(core::FnTriple::router(0, 416, core::OpKey::kMac));
      }
      return finish(b.build(), {});
    }
    case 23: {  // FN flood: 10..12 pass (and execute F_source), 13..16 exceed
      // the node's max_fn_per_packet and are policy-rejected after bind.
      core::HeaderBuilder b;
      b.hop_limit(live_hops(rng));
      const std::size_t n = 10 + rng.below(7);
      for (std::size_t i = 0; i < n; ++i) {
        b.add_router_fn(core::OpKey::kSource, be32(rng.u32()));
      }
      return finish(b.build(), {});
    }
    case 24: {  // hop-limit edge: arrives with 0 or 1
      core::HeaderBuilder b;
      b.hop_limit(static_cast<std::uint8_t>(rng.below(2)));
      b.add_router_fn(core::OpKey::kMatch32, be32(routable32(rng)));
      return finish(b.build(), random_payload(rng, 8));
    }

    // -- Heterogeneous support ---------------------------------------------
    case 25: {  // router-tagged F_ver: unsupported path-critical FN
      core::HeaderBuilder b;
      b.hop_limit(live_hops(rng));
      if (rng.below(2) == 0) {
        b.add_router_fn(core::OpKey::kMatch32, be32(routable32(rng)));
      }
      b.add_router_fn(core::OpKey::kVer, rng.block());
      return finish(b.build(), {});
    }
    case 26: {  // unknown + optional keys are skipped; zero-FN headers forward
      core::HeaderBuilder b;
      b.hop_limit(live_hops(rng));
      const auto pick = rng.below(3);
      if (pick == 0) {
        b.add_router_fn(core::OpKey::kCc, be32(rng.u32()));  // not registered
        b.add_router_fn(core::OpKey::kMatch32, be32(routable32(rng)));
      } else if (pick == 1) {
        const auto field = be32(rng.u32());
        const std::uint16_t loc = b.add_location(field);
        b.add_fn(core::FnTriple{loc, 32, 200});  // unknown op key
      }
      return finish(b.build(), random_payload(rng, 8));
    }

    // -- Modular parallelism ------------------------------------------------
    case 27: {  // eligible: disjoint match fields, relaxed order observable
      core::HeaderBuilder b;
      b.hop_limit(live_hops(rng)).parallel(true);
      b.add_router_fn(core::OpKey::kMatch32, be32(world::kNet10 | 0x1234));
      b.add_router_fn(core::OpKey::kMatch32, be32(world::kNet10_64 | 0x1234));
      return finish(b.build(), random_payload(rng, 8));
    }
    case 28: {  // ineligible: F_FIB is order-dependent -> sequential fallback
      core::HeaderBuilder b;
      b.hop_limit(live_hops(rng)).parallel(true);
      b.add_router_fn(core::OpKey::kFib, be32(ndn_code(rng)));
      return finish(b.build(), random_payload(rng, 8));
    }

    // -- Adversarial grammar + corruption ------------------------------------
    default: {
      const auto kind = rng.below(3);
      if (kind == 0) {
        return raw_wire(rng, rng.below(5), rng.below(48));
      }
      // Start from a simple well-formed packet, then damage it.
      core::HeaderBuilder b;
      b.hop_limit(live_hops(rng));
      b.add_router_fn(core::OpKey::kMatch32, be32(routable32(rng)));
      Packet p = finish(b.build(), random_payload(rng, 8));
      if (kind == 1) {
        p.resize(rng.below(p.size()));  // truncate
      } else {
        const std::size_t flips = 1 + rng.below(3);
        for (std::size_t i = 0; i < flips; ++i) {
          p[rng.below(p.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
        }
        if (rng.below(2) == 0 && p.size() >= 6) {
          // Re-patch the checksum so bind proceeds into the damaged triples.
          std::uint8_t check = 0xDB;
          for (std::size_t i = 0; i < 5; ++i) check ^= p[i];
          p[5] = check;
        }
      }
      return p;
    }
  }
}

/// The main conformance stream: `count` packets drawn from every family.
inline std::vector<Packet> make_conformance_stream(std::uint64_t seed,
                                                   std::size_t count) {
  crypto::Xoshiro256 rng(seed);
  std::vector<Packet> stream;
  stream.reserve(count);
  for (std::size_t i = 0; i < count; ++i) stream.push_back(make_packet(rng));
  return stream;
}

/// Dedicated F_dps stream: labeled packets around the fair-share capacity so
/// probabilistic drops (kRateExceeded) actually fire. Only meaningful for
/// engines that process in stream order (scalar/batch): DpsOp consumes RNG
/// draws in arrival order.
inline std::vector<Packet> make_dps_stream(std::uint64_t seed, std::size_t count) {
  crypto::Xoshiro256 rng(seed);
  std::vector<Packet> stream;
  stream.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Labels span [0, 3 * capacity): label <= alpha forwards, larger labels
    // drop with p = 1 - alpha/label. Zero labels skip policing entirely.
    const auto label = static_cast<std::uint32_t>(rng.below(3 * world::kDpsCapacity));
    core::HeaderBuilder b;
    b.hop_limit(live_hops(rng));
    qos::add_dps_fn(b, static_cast<std::uint32_t>(i % 17), label);
    if (rng.below(2) == 0) {
      b.add_router_fn(core::OpKey::kMatch32, be32(routable32(rng)));
    }
    stream.push_back(finish(b.build(), random_payload(rng, 32)));
  }
  return stream;
}

/// Dedicated dip32+custody stream: custody requests that this node accepts
/// (tag rewrite + re-MAC), carried tags (ACKs, non-requests), forged MACs
/// (kAuthFailed), short/degenerate fields (kMalformed), and plain fragment
/// metadata. F_custody is per-packet deterministic (all state lives in the
/// node wrapper's store, not the op), so the stream is pool-safe.
inline std::vector<Packet> make_custody_stream(std::uint64_t seed,
                                               std::size_t count) {
  crypto::Xoshiro256 rng(seed);
  std::vector<Packet> stream;
  stream.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto variant = rng.below(10);
    dtn::CustodyTag tag;
    tag.flags = dtn::kCustodyRequest;
    tag.chain_len = static_cast<std::uint8_t>(rng.below(4));
    tag.bundle_id = rng.u32();
    tag.custodian = 1 + rng.below(64);
    tag.prev_custodian = static_cast<std::uint16_t>(tag.custodian);
    tag.chain_digest = dtn::chain_mix(0, tag.custodian);
    dtn::FragInfo frag;
    frag.total = static_cast<std::uint16_t>(1 + rng.below(8));
    frag.index = static_cast<std::uint16_t>(rng.below(frag.total));
    frag.bundle_id = tag.bundle_id;
    const auto dst = fib::ipv4_from_u32(routable32(rng));
    const auto src = fib::ipv4_from_u32(world::kNet10 | 0x77);
    switch (variant) {
      case 0:  // carried: custody not requested
        tag.flags = 0;
        break;
      case 1:  // carried: an ACK in flight through a custody node
        tag.flags = dtn::kCustodyAck;
        break;
      case 2: {  // forged MAC -> kAuthFailed
        Packet p = finish(dtn::make_dip32_custody_header(dst, src, tag, frag,
                                                         world::custody_key()),
                          random_payload(rng, 16));
        // Locations: basic(6) + 4 triples(24), match32 4B, source 4B, then
        // the 32B tag; its MAC occupies bytes [16,32) of the field.
        p[30 + 8 + 16 + rng.below(16)] ^= static_cast<std::uint8_t>(1 + rng.below(255));
        stream.push_back(std::move(p));
        continue;
      }
      case 3: {  // short custody field -> kMalformed status error
        core::HeaderBuilder b;
        b.hop_limit(live_hops(rng));
        b.add_router_fn(core::OpKey::kMatch32, be32(routable32(rng)));
        b.add_router_fn(core::OpKey::kCustody, rng.block());  // 16 B < 32 B
        stream.push_back(finish(b.build(), random_payload(rng, 16)));
        continue;
      }
      case 4: {  // degenerate fragment geometry -> kMalformed
        std::array<std::uint8_t, dtn::kFragBytes> field{};
        dtn::FragInfo bad;
        bad.total = static_cast<std::uint16_t>(rng.below(2) ? 0 : 3);
        bad.index = static_cast<std::uint16_t>(bad.total == 0 ? rng.below(4) : 3 + rng.below(4));
        bad.bundle_id = rng.u32();
        bad.write(field);
        core::HeaderBuilder b;
        b.hop_limit(live_hops(rng));
        b.add_router_fn(core::OpKey::kMatch32, be32(routable32(rng)));
        b.add_router_fn(core::OpKey::kBundleFrag, field);
        stream.push_back(finish(b.build(), random_payload(rng, 16)));
        continue;
      }
      case 5: {  // fragment metadata alone (no custody tag)
        std::array<std::uint8_t, dtn::kFragBytes> field{};
        frag.write(field);
        core::HeaderBuilder b;
        b.hop_limit(live_hops(rng));
        b.add_router_fn(core::OpKey::kMatch32, be32(routable32(rng)));
        b.add_router_fn(core::OpKey::kBundleFrag, field);
        stream.push_back(finish(b.build(), random_payload(rng, 16)));
        continue;
      }
      case 6: {  // unroutable destination: dropped before F_custody runs
        stream.push_back(
            finish(dtn::make_dip32_custody_header(
                       fib::ipv4_from_u32(0xC0A80000 | (rng.u32() & 0xffff)), src,
                       tag, frag, world::custody_key()),
                   random_payload(rng, 16)));
        continue;
      }
      default:  // accepted request: custodian stamp + chain extend + re-MAC
        break;
    }
    stream.push_back(finish(
        dtn::make_dip32_custody_header(dst, src, tag, frag, world::custody_key(),
                                       crypto::MacKind::kEm2, live_hops(rng)),
        random_payload(rng, 16)));
  }
  return stream;
}

}  // namespace gen
}  // namespace dip::proptest
