// F_dps / CSFQ: edge rate labeling, core fair-share estimation, and
// proportional policing of an unresponsive heavy flow.
#include <gtest/gtest.h>

#include "dip/netsim/topology.hpp"
#include "dip/qos/dps.hpp"

namespace dip::qos {
namespace {

using core::Action;
using core::DropReason;

// ---------- edge labeler ----------

TEST(EdgeLabeler, EstimateConvergesToActualRate) {
  EdgeLabeler::Config config;
  config.k = 50 * kMillisecond;
  EdgeLabeler edge(config);

  // Flow 1 sends 1000-byte packets every 1 ms => 1 MB/s.
  std::uint32_t label = 0;
  SimTime now = 0;
  for (int i = 0; i < 500; ++i) {
    label = edge.label(1, 1000, now);
    now += 1 * kMillisecond;
  }
  EXPECT_NEAR(static_cast<double>(label), 1e6, 2e5);
  EXPECT_EQ(edge.tracked_flows(), 1u);
}

TEST(EdgeLabeler, SeparatesFlows) {
  EdgeLabeler edge;
  SimTime now = 0;
  std::uint32_t fast = 0;
  std::uint32_t slow = 0;
  for (int i = 0; i < 300; ++i) {
    fast = edge.label(1, 1000, now);          // every ms
    if (i % 10 == 0) slow = edge.label(2, 1000, now);  // every 10 ms
    now += 1 * kMillisecond;
  }
  EXPECT_GT(fast, slow * 3) << "10x rate gap must be visible in the labels";
  EXPECT_EQ(edge.tracked_flows(), 2u);
}

// ---------- fair share estimator ----------

TEST(FairShareEstimator, ShrinksUnderOverload) {
  FairShareEstimator::Config config;
  config.capacity_bytes_per_sec = 10'000;
  config.window = 1 * kMillisecond;
  FairShareEstimator est(config);
  const double initial = est.alpha();

  // Pour 10x capacity for several windows, accepting everything (as if no
  // policing happened yet): accepted > capacity, so alpha must shrink.
  SimTime now = 0;
  for (int w = 0; w < 10; ++w) {
    for (int i = 0; i < 10; ++i) {
      est.on_arrival(10, 100'000, now);
      est.on_accept(10);
    }
    now += config.window;
  }
  EXPECT_LT(est.alpha(), initial) << "alpha must shrink under overload";
}

TEST(FairShareEstimator, RecoversWhenLoadDrops) {
  FairShareEstimator::Config config;
  config.capacity_bytes_per_sec = 10'000;
  config.window = 1 * kMillisecond;
  FairShareEstimator est(config);

  SimTime now = 0;
  for (int w = 0; w < 10; ++w) {
    for (int i = 0; i < 10; ++i) {
      est.on_arrival(10, 100'000, now);
      est.on_accept(10);
    }
    now += config.window;
  }
  const double congested_alpha = est.alpha();

  // Light load with modest labels: alpha must rise back above them.
  for (int w = 0; w < 10; ++w) {
    est.on_arrival(1, 5'000, now);
    now += config.window;
  }
  EXPECT_GT(est.alpha(), congested_alpha);
  EXPECT_GE(est.alpha(), 5'000.0);
}

// ---------- router-level F_dps ----------

struct DpsFixture : ::testing::Test {
  DpsFixture() {
    registry = std::make_shared<core::OpRegistry>();
    FairShareEstimator::Config config;
    config.capacity_bytes_per_sec = 100'000;
    // Window must hold enough packets for stable rate statistics (1000-byte
    // packets against 100 kB/s capacity => 10 ms windows).
    config.window = 10 * kMillisecond;
    auto op = std::make_unique<DpsOp>(config, /*seed=*/7);
    dps = op.get();
    registry->add(std::move(op));

    auto env = netsim::make_basic_env(1);
    env.default_egress = 1;
    router.emplace(std::move(env), registry.get());
  }

  /// Send `packets` packets of `size` bytes labeled `label`, spread over
  /// simulated time; returns how many were forwarded.
  int blast(std::uint32_t flow, std::uint32_t label, int packets, std::size_t size,
            SimTime& now, SimDuration gap) {
    int forwarded = 0;
    for (int i = 0; i < packets; ++i) {
      core::HeaderBuilder b;
      add_dps_fn(b, flow, label);
      auto wire = b.build()->serialize();
      wire.insert(wire.end(), size - std::min(size, wire.size()), 0);
      if (router->process(wire, 0, now).action == Action::kForward) ++forwarded;
      now += gap;
    }
    return forwarded;
  }

  std::shared_ptr<core::OpRegistry> registry;
  DpsOp* dps = nullptr;
  std::optional<core::Router> router;
};

TEST_F(DpsFixture, UncongestedTrafficUntouched) {
  SimTime now = 0;
  // 100 packets of 100 B over 100 ms = 100 kB/s... keep well below: 10 ms gap.
  const int forwarded = blast(1, 10'000, 100, 100, now, 10 * kMillisecond);
  EXPECT_EQ(forwarded, 100);
  EXPECT_EQ(dps->dropped(), 0u);
}

TEST_F(DpsFixture, HeavyFlowPolicedProportionally) {
  SimTime now = 0;
  // Warm up the estimator with overload: 1000-byte packets every 100 us =
  // 10 MB/s against 100 kB/s capacity, labeled honestly at 10 MB/s.
  (void)blast(1, 10'000'000, 200, 1000, now, 100 * kMicrosecond);

  // Measure steady state.
  const int forwarded = blast(1, 10'000'000, 1000, 1000, now, 100 * kMicrosecond);
  const double accept_ratio = forwarded / 1000.0;
  // Fair share alpha ~= capacity / arrival * alpha ... accepted rate should
  // approach capacity/arrival = 1%. Allow generous slack: must be < 15%.
  EXPECT_LT(accept_ratio, 0.15) << "heavy flow must be policed hard";
  EXPECT_GT(dps->dropped(), 0u);
}

TEST_F(DpsFixture, LightFlowSurvivesNextToHeavyFlow) {
  SimTime now = 0;
  // Interleave: heavy flow at 10 MB/s label, light flow at 5 kB/s label.
  int light_forwarded = 0;
  int light_total = 0;
  for (int i = 0; i < 2000; ++i) {
    core::HeaderBuilder heavy;
    add_dps_fn(heavy, 1, 10'000'000);
    auto hw = heavy.build()->serialize();
    hw.insert(hw.end(), 1000 - hw.size(), 0);
    (void)router->process(hw, 0, now);
    now += 50 * kMicrosecond;

    if (i % 100 == 0) {
      core::HeaderBuilder light;
      add_dps_fn(light, 2, 5'000);
      auto lw = light.build()->serialize();
      ++light_total;
      if (router->process(lw, 0, now).action == Action::kForward) ++light_forwarded;
      now += 50 * kMicrosecond;
    }
  }
  // CSFQ promise: flows under the fair share are (almost) never dropped.
  EXPECT_GE(light_forwarded, light_total - 2)
      << light_forwarded << "/" << light_total << " light packets survived";
}

TEST_F(DpsFixture, DropsReportRateExceeded) {
  SimTime now = 0;
  (void)blast(1, 10'000'000, 200, 1000, now, 100 * kMicrosecond);
  core::HeaderBuilder b;
  add_dps_fn(b, 1, 10'000'000);
  auto wire = b.build()->serialize();
  wire.insert(wire.end(), 1000 - wire.size(), 0);

  // Try until one drops (probabilistic but overwhelmingly fast).
  for (int i = 0; i < 200; ++i) {
    auto packet = wire;
    const auto result = router->process(packet, 0, now);
    now += 100 * kMicrosecond;
    if (result.action == Action::kDrop) {
      EXPECT_EQ(result.reason, DropReason::kRateExceeded);
      return;
    }
  }
  FAIL() << "no drop observed in 200 overloaded packets";
}

TEST_F(DpsFixture, ShortFieldRejected) {
  core::HeaderBuilder b;
  std::array<std::uint8_t, 2> tiny{};
  b.add_router_fn(core::OpKey::kDps, tiny);
  auto packet = b.build()->serialize();
  const auto result = router->process(packet, 0, 0);
  EXPECT_EQ(result.reason, DropReason::kMalformed);
}


// End-to-end CSFQ over the simulator: a heavy unresponsive flow and a light
// flow share a policed router in front of a thin link. CSFQ's promise is
// isolation — the light flow's delivery ratio stays high while the heavy
// flow is cut down toward its fair share.
TEST(DpsEndToEnd, LightFlowIsolatedFromUnresponsiveHeavyFlow) {
  auto registry = std::make_shared<core::OpRegistry>();
  FairShareEstimator::Config fair;
  fair.capacity_bytes_per_sec = 100'000;
  fair.window = 10 * kMillisecond;
  auto op = std::make_unique<DpsOp>(fair, /*seed=*/5);
  registry->add(std::move(op));

  netsim::Network net(4);
  netsim::HostNode heavy_host;
  netsim::HostNode light_host;
  netsim::HostNode sink;
  auto env = netsim::make_basic_env(1);
  netsim::DipRouterNode router(std::move(env), registry);
  net.add_node(heavy_host);
  net.add_node(light_host);
  net.add_node(router);
  net.add_node(sink);
  net.connect(heavy_host, router);
  net.connect(light_host, router);
  netsim::LinkParams thin;
  thin.bandwidth_bps = 100'000 * 8;
  thin.max_queue_delay = 20 * kMillisecond;
  const auto [out_face, sink_face] = net.connect(router, sink);
  (void)sink_face;
  (void)thin;  // policing itself protects; queue params kept default here
  router.env().default_egress = out_face;

  std::uint64_t light_delivered = 0;
  std::uint64_t heavy_delivered = 0;
  sink.set_receiver([&](netsim::FaceId, netsim::PacketBytes packet, SimTime) {
    // Flow id rides in the F_dps field (bytes [4,8) of the locations).
    const auto h = core::DipHeader::parse(packet);
    if (!h || h->locations.size() < 8) return;
    const std::uint32_t flow = (h->locations[4] << 24) | (h->locations[5] << 16) |
                               (h->locations[6] << 8) | h->locations[7];
    (flow == 1 ? heavy_delivered : light_delivered) += 1;
  });

  EdgeLabeler edge;  // one edge labeler stamping both flows honestly
  auto labeled_packet = [&](std::uint32_t flow, std::size_t size, SimTime now) {
    core::HeaderBuilder b;
    add_dps_fn(b, flow, edge.label(flow, size, now));
    auto wire = b.build()->serialize();
    wire.resize(size, 0);
    return wire;
  };

  // Heavy: 1000 B every 100 us (10 MB/s). Light: 200 B every 10 ms (20 kB/s,
  // well under the 100 kB/s capacity).
  std::uint64_t light_sent = 0;
  std::uint64_t heavy_sent = 0;
  for (SimTime now = 0; now < 2 * kSecond; now += 100 * kMicrosecond) {
    net.loop().schedule_at(now, [&, now] {
      heavy_host.send(0, labeled_packet(1, 1000, now));
      ++heavy_sent;
    });
    if (now % (10 * kMillisecond) == 0) {
      net.loop().schedule_at(now, [&, now] {
        light_host.send(0, labeled_packet(2, 200, now));
        ++light_sent;
      });
    }
  }
  net.run();

  ASSERT_GT(light_sent, 0u);
  const double light_ratio =
      static_cast<double>(light_delivered) / static_cast<double>(light_sent);
  const double heavy_ratio =
      static_cast<double>(heavy_delivered) / static_cast<double>(heavy_sent);
  EXPECT_GT(light_ratio, 0.9) << "light flow must sail through";
  EXPECT_LT(heavy_ratio, 0.1) << "heavy flow policed toward its 1% fair share";
}

TEST(DpsField, LabelRoundTrip) {
  core::HeaderBuilder b;
  add_dps_fn(b, 42, 123456);
  const auto header = b.build();
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(read_dps_label(header->locations), 123456u);
  EXPECT_EQ(read_dps_label(std::vector<std::uint8_t>{1}), 0u);
}

}  // namespace
}  // namespace dip::qos
