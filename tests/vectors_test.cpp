// Golden wire vectors: one canonical packet per Table-1 composition,
// committed as hex under tests/vectors/. Each vector must (a) byte-match the
// current composer output, (b) survive parse -> serialize byte-identically,
// and (c) get the expected verdict from the executable-spec reference model.
//
// Regenerate after a deliberate wire-format change with:
//   DIP_REGEN_VECTORS=1 ./vectors_test
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dip/core/header.hpp"
#include "dip/core/ip.hpp"
#include "dip/dtn/custody.hpp"
#include "dip/epic/epic.hpp"
#include "dip/ndn/ndn.hpp"
#include "dip/opt/opt.hpp"
#include "dip/xia/xia.hpp"
#include "proptest/proptest.hpp"
#include "support/conformance.hpp"

namespace {

using namespace dip;               // NOLINT
using namespace dip::conformance;  // NOLINT
using proptest::Packet;

struct Vector {
  const char* file;        // under tests/vectors/
  Packet packet;           // composer output, payload included
  std::vector<std::uint32_t> egress;  // expected refmodel egress
  bool custody = false;    // verify against a custody-enabled refmodel node
};

const std::vector<std::uint8_t>& payload() {
  static const std::vector<std::uint8_t> p = {'d', 'i', 'p', '-', 'v', 'e', 'c'};
  return p;
}

Packet with_payload(const bytes::Result<core::DipHeader>& header) {
  Packet out = header.value().serialize();
  out.insert(out.end(), payload().begin(), payload().end());
  return out;
}

/// The six Table-1 compositions over the conformance world, all inputs fixed.
std::vector<Vector> make_vectors() {
  std::vector<Vector> v;
  // DIP-32: dst in 10.64/10 -> next hop 2.
  v.push_back({"dip32.hex",
               with_payload(core::make_dip32_header(
                   fib::ipv4_from_u32(w::kNet10_64 | 0x0101),
                   fib::ipv4_from_u32(0xC0000201))),
               {w::kNh10_64}});
  // DIP-128: dst in 2001:db8::/32 -> next hop 3.
  fib::Ipv6Addr dst{w::kNet128};
  dst.bytes[15] = 1;
  v.push_back({"dip128.hex",
               with_payload(core::make_dip128_header(dst, fib::Ipv6Addr{})),
               {w::kNh128}});
  // NDN interest: name code LPMs inside 10/8 -> next hop 1.
  v.push_back({"ndn.hex",
               with_payload(ndn::make_interest_header32(w::kNdnRoutableBase + 1)),
               {w::kNh10}});
  // OPT: chain runs, F_ver is host-tagged, default egress forwards.
  v.push_back({"opt.hex",
               with_payload(opt::make_opt_header(w::session(), payload(), 0x11223344)),
               {w::kDefaultEgress}});
  // NDN+OPT interest: the name FN decides the egress, OPT rides along.
  v.push_back({"ndn_opt.hex",
               with_payload(opt::make_ndn_opt_header(w::kNdnRoutableBase + 2,
                                                     /*interest=*/true, w::session(),
                                                     payload(), 0x11223344)),
               {w::kNh10}});
  // XIA: remote service intent behind a routed AD -> next hop 4.
  const xia::Dag dag =
      xia::make_service_dag(w::ad_routed(), w::hid_remote(), fib::XidType::kSid,
                            w::sid_remote());
  v.push_back({"xia.hex", with_payload(xia::make_xia_header(dag)), {w::kNhAd}});
  // dip32+custody (docs/DTN.md): a requested custody fragment — the
  // custody-enabled refmodel node rewrites the tag in place and forwards by
  // the match32 destination — and the matching custody ACK.
  {
    dtn::CustodyTag tag;
    tag.flags = dtn::kCustodyRequest;
    tag.bundle_id = 0xD7B00001;
    tag.custodian = 42;
    tag.chain_digest = dtn::chain_mix(0, 42);
    dtn::FragInfo frag;
    frag.index = 1;
    frag.total = 3;
    frag.bundle_id = 0xD7B00001;
    v.push_back({"dtn_custody.hex",
                 with_payload(dtn::make_dip32_custody_header(
                     fib::ipv4_from_u32(w::kNet10_64 | 0x0202),
                     fib::ipv4_from_u32(w::kNet10 | 0x6301), tag, frag,
                     w::custody_key())),
                 {w::kNh10_64},
                 /*custody=*/true});
    v.push_back({"dtn_custody_ack.hex",
                 with_payload(dtn::make_custody_ack_header(
                     fib::ipv4_from_u32(w::kNet10 | 0x2A01),
                     fib::ipv4_from_u32(w::kNet10_64 | 0x0202), tag, frag,
                     w::custody_key())),
                 {w::kNh10},
                 /*custody=*/true});
  }
  return v;
}

std::filesystem::path vector_path(const char* file) {
  return std::filesystem::path(DIP_VECTORS_DIR) / file;
}

TEST(Vectors, GoldenWireVectors) {
  const bool regen = std::getenv("DIP_REGEN_VECTORS") != nullptr;
  for (const Vector& vec : make_vectors()) {
    const auto path = vector_path(vec.file);
    if (regen) {
      std::filesystem::create_directories(path.parent_path());
      std::ofstream out(path, std::ios::trunc);
      out << "# golden wire vector (regenerate: DIP_REGEN_VECTORS=1 ./vectors_test)\n"
          << proptest::hex_encode(vec.packet) << "\n";
      continue;
    }

    // (a) The committed bytes match what the composers produce today.
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing golden vector " << path;
    std::string line;
    Packet golden;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      const auto decoded = proptest::hex_decode(line);
      ASSERT_TRUE(decoded.has_value()) << path;
      golden = *decoded;
      break;
    }
    EXPECT_EQ(golden, vec.packet) << vec.file << " drifted from composer output";

    // (b) parse -> serialize round-trips the header bytes exactly.
    const auto parsed = core::DipHeader::parse(golden);
    ASSERT_TRUE(parsed.has_value()) << vec.file;
    Packet rebuilt = parsed->serialize();
    rebuilt.insert(rebuilt.end(), golden.begin() + static_cast<std::ptrdiff_t>(
                                                       parsed->wire_size()),
                   golden.end());
    EXPECT_EQ(rebuilt, golden) << vec.file << " does not round-trip";

    // (c) The reference model forwards it where Table 1 says it goes.
    refmodel::RefNode node = make_ref_node(/*lenient=*/false, /*dps_enabled=*/false,
                                           refmodel::Mutation::kNone, vec.custody);
    Packet mutated = golden;
    const refmodel::RefVerdict rv = node.process(mutated, /*ingress=*/1, w::now_of(0));
    EXPECT_EQ(rv.action, refmodel::RefAction::kForward) << vec.file;
    EXPECT_EQ(rv.egress, vec.egress) << vec.file;
  }
}

}  // namespace
