// Edge cases across modules: paths the main suites do not reach — empty
// inputs, boundary sizes, structural collapses, and rollback paths.
#include <gtest/gtest.h>

#include "dip/bootstrap/capability.hpp"
#include "dip/bytes/hex.hpp"
#include "dip/bytes/packet.hpp"
#include "dip/core/registry.hpp"
#include "dip/core/ip.hpp"
#include "dip/fib/dir24.hpp"
#include "dip/fib/patricia.hpp"
#include "dip/netfence/netfence.hpp"
#include "dip/netsim/event_loop.hpp"
#include "dip/netsim/topology.hpp"
#include "dip/xia/dag.hpp"

namespace dip {
namespace {

// ---------- bytes ----------

TEST(Edge, PacketCloneIsDeepAndPopsBound) {
  const std::array<std::uint8_t, 3> content = {1, 2, 3};
  bytes::Packet a{std::span<const std::uint8_t>(content)};
  bytes::Packet b = a.clone();
  a.data()[0] = 9;
  EXPECT_EQ(b.data()[0], 1) << "clone must not alias";

  EXPECT_FALSE(a.pop_front(10));
  EXPECT_FALSE(a.pop_back(10));
  EXPECT_TRUE(a.pop_front(3));
  EXPECT_TRUE(a.empty());
}

TEST(Edge, HexEmptyInputs) {
  EXPECT_EQ(bytes::to_hex({}), "");
  EXPECT_EQ(bytes::hex_dump({}), "");
  const auto empty = bytes::from_hex("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

// ---------- event loop ----------

TEST(Edge, EmptyLoopWithFiniteDeadlineAdvancesClock) {
  netsim::EventLoop loop;
  EXPECT_EQ(loop.run(500), 0u);
  EXPECT_EQ(loop.now(), 500u) << "idle time passes up to the deadline";
  // Infinite deadline on an empty loop must NOT advance to infinity.
  netsim::EventLoop loop2;
  EXPECT_EQ(loop2.run(), 0u);
  EXPECT_EQ(loop2.now(), 0u);
}

// ---------- Patricia structural collapse ----------

TEST(Edge, PatriciaMiddleRemovalCollapsesJunctions) {
  fib::PatriciaTrie<32> trie;
  // Nested chain: /8 -> /16 -> /24, then remove the middle.
  trie.insert({fib::ipv4_from_u32(0x0A000000), 8}, 1);
  trie.insert({fib::ipv4_from_u32(0x0A010000), 16}, 2);
  trie.insert({fib::ipv4_from_u32(0x0A010100), 24}, 3);
  EXPECT_EQ(trie.remove({fib::ipv4_from_u32(0x0A010000), 16}).value(), 2u);
  EXPECT_EQ(trie.size(), 2u);
  // Both remaining routes still resolve through the collapsed structure.
  EXPECT_EQ(trie.lookup(fib::ipv4_from_u32(0x0A010105)).value(), 3u);
  EXPECT_EQ(trie.lookup(fib::ipv4_from_u32(0x0A020000)).value(), 1u);
  // Removing siblings down to empty must leave a usable trie.
  trie.remove({fib::ipv4_from_u32(0x0A010100), 24});
  trie.remove({fib::ipv4_from_u32(0x0A000000), 8});
  EXPECT_EQ(trie.size(), 0u);
  EXPECT_FALSE(trie.lookup(fib::ipv4_from_u32(0x0A010105)));
  trie.insert({fib::ipv4_from_u32(0x0A000000), 8}, 7);
  EXPECT_EQ(trie.lookup(fib::ipv4_from_u32(0x0A123456)).value(), 7u);
}

// ---------- DIR-24-8 extension recompute on removal ----------

TEST(Edge, Dir24RemoveInsideExtensionBlockRecomputes) {
  fib::Dir24 table;
  // /8 covers the block; /26 spills the block into an extension table.
  table.insert({fib::ipv4_from_u32(0x0A000000), 8}, 1);
  table.insert({fib::ipv4_from_u32(0x0A000040), 26}, 2);
  EXPECT_EQ(table.lookup(fib::ipv4_from_u32(0x0A000041)).value(), 2u);
  EXPECT_EQ(table.lookup(fib::ipv4_from_u32(0x0A000001)).value(), 1u);

  // Removing the /26 must re-derive every sub-entry from the shadow trie.
  EXPECT_EQ(table.remove({fib::ipv4_from_u32(0x0A000040), 26}).value(), 2u);
  EXPECT_EQ(table.lookup(fib::ipv4_from_u32(0x0A000041)).value(), 1u);

  // And removing the /8 empties the (still extended) block completely.
  table.remove({fib::ipv4_from_u32(0x0A000000), 8});
  EXPECT_FALSE(table.lookup(fib::ipv4_from_u32(0x0A000041)));
  EXPECT_EQ(table.size(), 0u);
}

// ---------- capability parsing rejects duplicates ----------

TEST(Edge, CapabilitySetParseRejectsDuplicateKeys) {
  // count=2, both keys = 0x0004: canonical form violated.
  const std::vector<std::uint8_t> dupes = {2, 0x00, 0x04, 0x00, 0x04};
  const auto out = bootstrap::CapabilitySet::parse(dupes);
  ASSERT_FALSE(out.has_value());
  EXPECT_EQ(out.error(), bytes::Error::kMalformed);
}

// ---------- registry enumeration ----------

TEST(Edge, RegistryKeysEnumerate) {
  core::OpRegistry registry;
  registry.add(std::make_unique<core::Match32Op>());
  registry.add(std::make_unique<core::SourceOp>());
  auto keys = registry.keys();
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(keys, (std::vector<core::OpKey>{core::OpKey::kMatch32,
                                            core::OpKey::kSource}));
  EXPECT_EQ(registry.size(), 2u);
}

// ---------- DAG serialization bounds ----------

TEST(Edge, DagSerializeRejectsShortBuffer) {
  const auto dag = xia::make_service_dag(xia::xid_from_label("a"),
                                         xia::xid_from_label("b"),
                                         fib::XidType::kSid,
                                         xia::xid_from_label("c"));
  std::vector<std::uint8_t> tiny(dag.wire_size() - 1);
  const auto st = dag.serialize(xia::Dag::kSourceCursor, tiny);
  ASSERT_FALSE(st);
  EXPECT_EQ(st.error(), bytes::Error::kOverflow);

  // edges_of with a bogus cursor is empty, not UB.
  EXPECT_TRUE(dag.edges_of(42).empty());
}

// ---------- fn_info completeness for the extension keys ----------

TEST(Edge, ExtensionFnInfoComplete) {
  using core::OpKey;
  EXPECT_TRUE(core::fn_info(OpKey::kHvf)->requires_full_path);
  EXPECT_FALSE(core::fn_info(OpKey::kCc)->requires_full_path);
  EXPECT_FALSE(core::fn_info(OpKey::kDps)->requires_full_path);
  EXPECT_EQ(core::op_key_name(OpKey::kHvf), "F_hvf");
  EXPECT_EQ(core::op_key_name(OpKey::kCc), "F_cc");
  EXPECT_EQ(core::op_key_name(OpKey::kDps), "F_dps");
}

// ---------- congestion monitor fair-share arithmetic ----------

TEST(Edge, AdvisedRateSplitsCapacityAcrossWindowPackets) {
  netfence::CongestionMonitor::Config config;
  config.capacity_bytes_per_sec = 1000;
  config.window = 1 * kMillisecond;
  netfence::CongestionMonitor monitor(config);
  // Four arrivals in the current window: advice = capacity / 4.
  for (int i = 0; i < 4; ++i) monitor.on_arrival(10, 0);
  EXPECT_EQ(monitor.advised_rate(), 250u);
}

// ---------- Zipf exponent 0 degenerates to uniform ----------

TEST(Edge, ZipfExponentZeroIsUniform) {
  netsim::ZipfSampler zipf(10, 0.0, 3);
  std::array<int, 10> counts{};
  for (int i = 0; i < 10000; ++i) ++counts[zipf.sample()];
  for (const int c : counts) {
    EXPECT_NEAR(c, 1000, 200) << "uniform within 5 sigma-ish";
  }
}

// ---------- builder/source edge: 128-bit source located correctly ----------

TEST(Edge, FindSourceFieldPrefersFirstSourceTriple) {
  core::HeaderBuilder b;
  std::array<std::uint8_t, 4> f{};
  b.add_router_fn(core::OpKey::kSource, f);
  b.add_router_fn(core::OpKey::kSource, f);
  const auto h = b.build();
  const auto range = core::find_source_field(h->fns);
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->bit_offset, 0u) << "first F_source wins";
}

}  // namespace
}  // namespace dip
