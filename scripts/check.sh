#!/usr/bin/env bash
# Full verification pipeline: release build + tests + benches, then an
# ASan/UBSan build + tests. This is what CI should run.
#
#   --fast   docs check + release build + the unit/property/ctrl/fib/mesh/
#            pisa/dtn test tiers only (see docs/TESTING.md): the inner-loop
#            lane, no benches, no sanitizer rebuilds. `ctest -L fib` alone
#            slices just the FIB-engine lane (docs/FIB.md); `ctest -L mesh`
#            the UDP mesh lane (docs/MESH.md); `ctest -L pisa` the
#            stage-budget compiler + switch-model lane (docs/PISA.md);
#            `ctest -L dtn` the custody/disruption-tolerance lane
#            (docs/DTN.md).
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[ "${1:-}" = "--fast" ] && FAST=1

echo "== docs link check =="
# Markdown link targets (relative ones must exist) and backtick-quoted
# repo paths with an extension (e.g. `tests/stats_test.cpp`) in the
# operator docs must resolve — stale references rot fastest.
fail=0
for doc in README.md DESIGN.md EXPERIMENTS.md docs/*.md; do
  dir=$(dirname "$doc")
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*|'') continue ;;
    esac
    target="${target%%#*}"
    if [ ! -e "$dir/$target" ]; then
      echo "  BROKEN $doc -> $target"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')
  while IFS= read -r target; do
    if [ ! -e "$target" ]; then
      echo "  BROKEN $doc -> $target"
      fail=1
    fi
  done < <(grep -oE '`(src|tests|bench|examples|docs|scripts)/[A-Za-z0-9_./-]*\.[A-Za-z0-9_]+`' "$doc" | tr -d '`')
done
if [ "$fail" -ne 0 ]; then
  echo "docs link check FAILED"
  exit 1
fi
echo "  all links resolve"

echo "== release build =="
# Bench lanes depend on this being a real Release tree (-O3, NDEBUG):
# bench_guard.hpp aborts the binaries otherwise. DIP_NATIVE=1 additionally
# tunes codegen for this machine (-march=native) — numbers then only
# compare against baselines measured on the same host.
cmake -B build -G Ninja -DCMAKE_BUILD_TYPE=Release \
  -DDIP_NATIVE=$([ "${DIP_NATIVE:-0}" = "1" ] && echo ON || echo OFF) >/dev/null
cmake --build build

if [ "$FAST" -eq 1 ]; then
  echo "== tests (--fast: unit + property + ctrl + fib + mesh + pisa + dtn tiers) =="
  ctest --test-dir build -L "unit|property|ctrl|fib|mesh|pisa|dtn" --output-on-failure
  echo "FAST CHECKS PASSED"
  exit 0
fi

echo "== tests =="
ctest --test-dir build -LE bench-smoke --output-on-failure

echo "== benches (smoke lane: ctest -L bench-smoke, ~1 iteration each) =="
ctest --test-dir build -L bench-smoke --output-on-failure

echo "== examples =="
for e in build/examples/*; do
  [ -f "$e" ] && [ -x "$e" ] || continue  # skip CMake metadata
  "$e" >/dev/null
  echo "  $(basename "$e") ok"
done

echo "== sanitizer build (ASan + UBSan) =="
cmake -B build-san -G Ninja -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -g" \
  >/dev/null
cmake --build build-san

echo "== tests under sanitizers =="
# -LE keeps the full unit/property tiers; the burst-arena and multi-block
# crypto coverage (allocation_test, crypto_test batch oracles, pipeline
# burst suites) runs here under ASan/UBSan in addition to the TSan pass,
# and so does the pisa lane (pisa_test's stage-budget property suite +
# ndn_switch_test) — the placement compiler's shrinker and report
# formatting are exactly the kind of index arithmetic ASan pays for.
ctest --test-dir build-san -LE bench-smoke --output-on-failure

echo "== bench smoke under sanitizers (arena + multi-block crypto) =="
ctest --test-dir build-san -L bench-smoke \
  -R "bench_smoke_bench_batch_pipeline|bench_smoke_bench_crypto|bench_smoke_bench_chaos" \
  --output-on-failure

echo "== TSan build (RouterPool / SpscRing concurrency + chaos harness) =="
cmake -B build-tsan -G Ninja -DCMAKE_BUILD_TYPE=Debug -DDIP_SANITIZE=thread \
  >/dev/null
cmake --build build-tsan --target pipeline_test stats_test chaos_test \
  differential_test conformance_test ctrl_test fib_test mesh_test dtn_test

echo "== pipeline + stats + chaos + differential + conformance + ctrl + fib-churn + mesh + dtn tests under TSan =="
# fib_churn_test runs only the TreeBitmapChurn pool-under-journal-flush
# suite (docs/FIB.md) — full fib_test under TSan would mostly re-run
# single-threaded engine oracles at 10x cost. mesh_test includes the
# real-UDP two-thread router exchange (docs/MESH.md) — the thread-
# confinement contract's race probe. dtn_test rides along for the custody
# conformance sweep over the pool engine (docs/DTN.md).
ctest --test-dir build-tsan \
  -R "pipeline_test|stats_test|chaos_test|differential_test|conformance_test|ctrl_test|fib_churn_test|mesh_test|dtn_test" \
  --output-on-failure

echo "== chaos clean-path overhead (BENCH_chaos.json refresh: run manually) =="
# The committed BENCH_chaos.json comes from:
#   build/bench/bench_chaos --benchmark_min_time=0.2 \
#     --benchmark_out=BENCH_chaos.json --benchmark_out_format=json
# The smoke loop above already executes bench_chaos once per run.
# BENCH_control_plane.json (snapshot read overhead vs static FIB) is
# refreshed the same way from bench_control_plane, and
# BENCH_fib_scale.json (Internet-scale FIB sweep + zero-blackhole churn
# leg, docs/FIB.md) from bench_fib_scale.

echo "ALL CHECKS PASSED"
