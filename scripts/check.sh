#!/usr/bin/env bash
# Full verification pipeline: release build + tests + benches, then an
# ASan/UBSan build + tests. This is what CI should run.
#
#   --fast   docs check + release build + the unit/property/ctrl test tiers
#            only (see docs/TESTING.md): the inner-loop lane, no benches, no
#            sanitizer rebuilds.
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[ "${1:-}" = "--fast" ] && FAST=1

echo "== docs link check =="
# Markdown link targets (relative ones must exist) and backtick-quoted
# repo paths with an extension (e.g. `tests/stats_test.cpp`) in the
# operator docs must resolve — stale references rot fastest.
fail=0
for doc in README.md DESIGN.md EXPERIMENTS.md docs/*.md; do
  dir=$(dirname "$doc")
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*|'') continue ;;
    esac
    target="${target%%#*}"
    if [ ! -e "$dir/$target" ]; then
      echo "  BROKEN $doc -> $target"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')
  while IFS= read -r target; do
    if [ ! -e "$target" ]; then
      echo "  BROKEN $doc -> $target"
      fail=1
    fi
  done < <(grep -oE '`(src|tests|bench|examples|docs|scripts)/[A-Za-z0-9_./-]*\.[A-Za-z0-9_]+`' "$doc" | tr -d '`')
done
if [ "$fail" -ne 0 ]; then
  echo "docs link check FAILED"
  exit 1
fi
echo "  all links resolve"

echo "== release build =="
cmake -B build -G Ninja >/dev/null
cmake --build build

if [ "$FAST" -eq 1 ]; then
  echo "== tests (--fast: unit + property + ctrl tiers) =="
  ctest --test-dir build -L "unit|property|ctrl" --output-on-failure
  echo "FAST CHECKS PASSED"
  exit 0
fi

echo "== tests =="
ctest --test-dir build --output-on-failure

echo "== benches (smoke: min_time lowered) =="
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue  # skip CMake metadata
  "$b" --benchmark_min_time=0.01 >/dev/null
  echo "  $(basename "$b") ok"
done

echo "== examples =="
for e in build/examples/*; do
  [ -f "$e" ] && [ -x "$e" ] || continue  # skip CMake metadata
  "$e" >/dev/null
  echo "  $(basename "$e") ok"
done

echo "== sanitizer build (ASan + UBSan) =="
cmake -B build-san -G Ninja -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -g" \
  >/dev/null
cmake --build build-san

echo "== tests under sanitizers =="
ctest --test-dir build-san --output-on-failure

echo "== TSan build (RouterPool / SpscRing concurrency + chaos harness) =="
cmake -B build-tsan -G Ninja -DCMAKE_BUILD_TYPE=Debug -DDIP_SANITIZE=thread \
  >/dev/null
cmake --build build-tsan --target pipeline_test stats_test chaos_test \
  differential_test conformance_test ctrl_test

echo "== pipeline + stats + chaos + differential + conformance + ctrl tests under TSan =="
ctest --test-dir build-tsan \
  -R "pipeline_test|stats_test|chaos_test|differential_test|conformance_test|ctrl_test" \
  --output-on-failure

echo "== chaos clean-path overhead (BENCH_chaos.json refresh: run manually) =="
# The committed BENCH_chaos.json comes from:
#   build/bench/bench_chaos --benchmark_min_time=0.2 \
#     --benchmark_out=BENCH_chaos.json --benchmark_out_format=json
# The smoke loop above already executes bench_chaos once per run.
# BENCH_control_plane.json (snapshot read overhead vs static FIB) is
# refreshed the same way from bench_control_plane.

echo "ALL CHECKS PASSED"
