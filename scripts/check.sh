#!/usr/bin/env bash
# Full verification pipeline: release build + tests + benches, then an
# ASan/UBSan build + tests. This is what CI should run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== release build =="
cmake -B build -G Ninja >/dev/null
cmake --build build

echo "== tests =="
ctest --test-dir build --output-on-failure

echo "== benches (smoke: min_time lowered) =="
for b in build/bench/*; do
  "$b" --benchmark_min_time=0.01 >/dev/null
  echo "  $(basename "$b") ok"
done

echo "== examples =="
for e in build/examples/*; do
  "$e" >/dev/null
  echo "  $(basename "$e") ok"
done

echo "== sanitizer build (ASan + UBSan) =="
cmake -B build-san -G Ninja -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -g" \
  >/dev/null
cmake --build build-san

echo "== tests under sanitizers =="
ctest --test-dir build-san --output-on-failure

echo "== TSan build (RouterPool / SpscRing concurrency) =="
cmake -B build-tsan -G Ninja -DCMAKE_BUILD_TYPE=Debug -DDIP_SANITIZE=thread \
  >/dev/null
cmake --build build-tsan --target pipeline_test

echo "== pipeline tests under TSan =="
ctest --test-dir build-tsan -R pipeline_test --output-on-failure

echo "ALL CHECKS PASSED"
