// bench_fib_scale — Internet-scale FIB sweep (ROADMAP item 1 / ISSUE 7).
//
// Where bench_fib (A3) compares engine *mechanics* at toy scale, this lane
// asks the deployment questions at DFZ scale, over synthesized tables with
// realistic length histograms and allocation clustering (dip/fib/synth.hpp):
//
//   * BM_ScaleLookup*/N    — lookup ns per engine at 10k/100k/1M routes,
//     with bytes/prefix and mean lookup depth as counters (the CRAM-lens
//     trade-off surface: Dir24 buys depth ~1 with a 64 MiB slab; the tree
//     bitmap holds ~tens of bytes/prefix at depth ~4-6).
//     The binary trie rides along at 10k/100k only — ~1 GiB of pointer
//     chasing at 1M is exactly the non-option the compressed engines exist
//     to replace.
//   * BM_ScaleLookup6*/N   — the IPv6 picture at 200k routes (/48-heavy).
//   * BM_ScaleBuild*/N     — full-table build rate (routes/sec): the cost
//     of standing up a snapshot from scratch, and the reason RouteJournal
//     clones instead of rebuilding.
//   * BM_ChurnPublish*/N   — journal flush latency vs table size: clone an
//     N-route table, apply a coalesced 32-update delta, publish, reclaim.
//     Clone cost dominates, which is the tree bitmap's arena-copy advantage.
//   * BM_ChurnForwardPool  — the acceptance leg: a 2-worker RouterPool
//     forwards flows covered by a stable /8 while the journal applies
//     tens of thousands of updates/sec against a 100k-route tree-bitmap
//     snapshot, publishing every 32 updates. Counters report achieved
//     updates_per_sec and publish latency; `blackholed` (pool drops +
//     errors) must be 0 — every packet is covered by the stable aggregate
//     throughout, so any drop is a lost-route window in the RCU swap.
//
// Tables are built once per (engine, size) and shared across legs; at 1M
// routes the builds (Dir24's block refreshes especially) dominate process
// startup, not the measured loops.
//
// JSON trajectory: BENCH_fib_scale.json, refreshed via
//   build/bench/bench_fib_scale --benchmark_min_time=0.2
//     --benchmark_out=BENCH_fib_scale.json --benchmark_out_format=json
#include <benchmark/benchmark.h>

#include <chrono>
#include <map>
#include <utility>

#include "bench_util.hpp"
#include "dip/core/router_pool.hpp"
#include "dip/ctrl/journal.hpp"
#include "dip/fib/synth.hpp"

namespace dip::bench {
namespace {

using fib::LpmEngine;

constexpr std::size_t kProbeCount = 4096;

const std::vector<fib::synth::SynthRoute<32>>& routes32(std::size_t count) {
  static std::map<std::size_t, std::vector<fib::synth::SynthRoute<32>>> cache;
  auto& slot = cache[count];
  if (slot.empty()) slot = fib::synth::ipv4_table(count, 42);
  return slot;
}

const std::vector<fib::synth::SynthRoute<128>>& routes128(std::size_t count) {
  static std::map<std::size_t, std::vector<fib::synth::SynthRoute<128>>> cache;
  auto& slot = cache[count];
  if (slot.empty()) slot = fib::synth::ipv6_table(count, 42);
  return slot;
}

const fib::Ipv4Lpm& table32(LpmEngine engine, std::size_t count) {
  static std::map<std::pair<int, std::size_t>, std::unique_ptr<fib::Ipv4Lpm>> cache;
  auto& slot = cache[{static_cast<int>(engine), count}];
  if (!slot) {
    slot = fib::make_lpm<32>(engine);
    for (const auto& r : routes32(count)) slot->insert(r.prefix, r.nh);
  }
  return *slot;
}

const fib::Ipv6Lpm& table128(LpmEngine engine, std::size_t count) {
  static std::map<std::pair<int, std::size_t>, std::unique_ptr<fib::Ipv6Lpm>> cache;
  auto& slot = cache[{static_cast<int>(engine), count}];
  if (!slot) {
    slot = fib::make_lpm<128>(engine);
    for (const auto& r : routes128(count)) slot->insert(r.prefix, r.nh);
  }
  return *slot;
}

template <std::size_t W>
void report_shape(benchmark::State& state, const fib::LpmTable<W>& table,
                  const std::vector<fib::Address<W>>& probes) {
  std::size_t depth = 0;
  for (const auto& a : probes) depth += table.lookup_depth(a);
  state.counters["routes"] = static_cast<double>(table.size());
  state.counters["table_bytes"] = static_cast<double>(table.memory_bytes());
  state.counters["bytes_per_prefix"] =
      static_cast<double>(table.memory_bytes()) / static_cast<double>(table.size());
  state.counters["avg_lookup_depth"] =
      static_cast<double>(depth) / static_cast<double>(probes.size());
}

// ---------------------------------------------------------------------------
// Lookup sweep
// ---------------------------------------------------------------------------

void run_scale_lookup(benchmark::State& state, LpmEngine engine) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const fib::Ipv4Lpm& table = table32(engine, count);
  const auto probes = fib::synth::probes(routes32(count), kProbeCount, 7);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(probes[i++ & (kProbeCount - 1)]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  report_shape(state, table, probes);
}

void BM_ScaleLookupBinaryTrie(benchmark::State& state) {
  run_scale_lookup(state, LpmEngine::kBinaryTrie);
}
void BM_ScaleLookupPatricia(benchmark::State& state) {
  run_scale_lookup(state, LpmEngine::kPatricia);
}
void BM_ScaleLookupDir24(benchmark::State& state) {
  run_scale_lookup(state, LpmEngine::kDir24);
}
void BM_ScaleLookupTreeBitmap(benchmark::State& state) {
  run_scale_lookup(state, LpmEngine::kTreeBitmap);
}

BENCHMARK(BM_ScaleLookupBinaryTrie)->Arg(10'000)->Arg(100'000);
BENCHMARK(BM_ScaleLookupPatricia)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);
BENCHMARK(BM_ScaleLookupDir24)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);
BENCHMARK(BM_ScaleLookupTreeBitmap)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void run_scale_lookup6(benchmark::State& state, LpmEngine engine) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const fib::Ipv6Lpm& table = table128(engine, count);
  const auto probes = fib::synth::probes(routes128(count), kProbeCount, 7);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(probes[i++ & (kProbeCount - 1)]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  report_shape(state, table, probes);
}

void BM_ScaleLookup6Patricia(benchmark::State& state) {
  run_scale_lookup6(state, LpmEngine::kPatricia);
}
void BM_ScaleLookup6TreeBitmap(benchmark::State& state) {
  run_scale_lookup6(state, LpmEngine::kTreeBitmap);
}

BENCHMARK(BM_ScaleLookup6Patricia)->Arg(200'000);
BENCHMARK(BM_ScaleLookup6TreeBitmap)->Arg(200'000);

// ---------------------------------------------------------------------------
// Build rate
// ---------------------------------------------------------------------------

void run_scale_build(benchmark::State& state, LpmEngine engine) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto& routes = routes32(count);
  for (auto _ : state) {
    auto table = fib::make_lpm<32>(engine);
    for (const auto& r : routes) table->insert(r.prefix, r.nh);
    benchmark::DoNotOptimize(table);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}

void BM_ScaleBuildPatricia(benchmark::State& state) {
  run_scale_build(state, LpmEngine::kPatricia);
}
void BM_ScaleBuildDir24(benchmark::State& state) {
  run_scale_build(state, LpmEngine::kDir24);
}
void BM_ScaleBuildTreeBitmap(benchmark::State& state) {
  run_scale_build(state, LpmEngine::kTreeBitmap);
}

BENCHMARK(BM_ScaleBuildPatricia)->Arg(100'000);
BENCHMARK(BM_ScaleBuildDir24)->Arg(100'000);
BENCHMARK(BM_ScaleBuildTreeBitmap)->Arg(100'000);

// ---------------------------------------------------------------------------
// Churn: journal publish latency vs table size
// ---------------------------------------------------------------------------

constexpr std::size_t kUpdatesPerFlush = 32;

void run_churn_publish(benchmark::State& state, LpmEngine engine) {
  const auto count = static_cast<std::size_t>(state.range(0));
  auto tables = std::make_shared<ctrl::ControlTables>();
  ctrl::RouteJournal journal(tables);
  journal.seed(&table32(engine, count));

  // Flap windows of existing routes: even iterations withdraw a fresh
  // window, odd iterations restore it — every delta is a real change.
  const auto& routes = routes32(count);
  std::size_t window = 0;
  bool removing = true;
  std::uint64_t updates = 0;
  for (auto _ : state) {
    const std::size_t base = (window * kUpdatesPerFlush) % routes.size();
    for (std::size_t j = 0; j < kUpdatesPerFlush; ++j) {
      const auto& r = routes[(base + j) % routes.size()];
      if (removing) {
        journal.remove_route32(r.prefix);
      } else {
        journal.add_route32(r.prefix, r.nh);
      }
      ++updates;
    }
    journal.flush();
    if (!removing) ++window;
    removing = !removing;
  }
  const auto& js = journal.stats();
  state.counters["updates"] = static_cast<double>(updates);
  state.counters["updates_per_sec"] =
      benchmark::Counter(static_cast<double>(updates), benchmark::Counter::kIsRate);
  if (js.flushes != 0) {
    state.counters["publish_latency_ns"] =
        static_cast<double>(js.total_flush_ns) / static_cast<double>(js.flushes);
    state.counters["publish_latency_max_ns"] = static_cast<double>(js.max_flush_ns);
  }
}

void BM_ChurnPublishPatricia(benchmark::State& state) {
  run_churn_publish(state, LpmEngine::kPatricia);
}
void BM_ChurnPublishTreeBitmap(benchmark::State& state) {
  run_churn_publish(state, LpmEngine::kTreeBitmap);
}

BENCHMARK(BM_ChurnPublishPatricia)->Arg(10'000)->Arg(100'000);
BENCHMARK(BM_ChurnPublishTreeBitmap)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

// ---------------------------------------------------------------------------
// Churn + forwarding: the zero-blackhole acceptance leg
// ---------------------------------------------------------------------------

void BM_ChurnForwardPool(benchmark::State& state) {
  constexpr std::size_t kTableRoutes = 100'000;
  auto tables = std::make_shared<ctrl::ControlTables>();
  ctrl::RouteJournal journal(tables);
  {
    auto seeded = fib::make_lpm<32>(LpmEngine::kTreeBitmap);
    // The stable covering aggregate: all bench traffic is 10.x.y.z, so no
    // flap below can ever legitimately blackhole a packet.
    seeded->insert({fib::ipv4_from_u32(0x0A000000u), 8}, 1);
    for (const auto& r : routes32(kTableRoutes)) seeded->insert(r.prefix, r.nh);
    journal.seed(seeded.get());
  }

  const auto registry = shared_registry();
  const auto envf = [&tables](std::size_t worker) {
    core::RouterEnv env;
    env.node_id = static_cast<std::uint32_t>(worker);
    env.control = tables;
    env.ctrl_reader = tables->register_reader();
    env.flow_cache = std::make_unique<core::FlowCache>();
    env.default_egress.reset();
    return env;
  };
  core::RouterPoolConfig cfg;
  cfg.workers = 2;
  core::RouterPool pool(registry.get(), envf, cfg);

  std::vector<std::vector<std::uint8_t>> templates(256);
  fib::synth::Splitmix64 rng(3);
  for (auto& t : templates) {
    t = core::make_dip32_header(
            fib::ipv4_from_u32(0x0A000000u |
                               (static_cast<std::uint32_t>(rng.next()) & 0x00ff'ffffu)),
            fib::ipv4_from_u32(0x7F000001u))
            ->serialize();
  }

  std::size_t pos = 0;
  SimTime now = 0;
  std::size_t window = 0;
  bool removing = false;  // first pass installs the flap /20s
  std::uint64_t updates = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    for (int i = 0; i < 256; ++i) {
      pool.submit(templates[pos++ & 255], 0, now += kMicrosecond);
    }
    // Flap /20 more-specifics under the stable /8.
    const std::uint32_t base = static_cast<std::uint32_t>(window) & 0x3ffu;
    for (std::size_t j = 0; j < kUpdatesPerFlush; ++j) {
      const fib::Prefix<32> p{
          fib::ipv4_from_u32(0x0A000000u |
                             (((base + static_cast<std::uint32_t>(j)) & 0xfffu) << 12)),
          20};
      if (removing) {
        journal.remove_route32(p);
      } else {
        journal.add_route32(p, 77);
      }
      ++updates;
    }
    journal.flush();
    if (removing) ++window;
    removing = !removing;
  }
  pool.drain();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  const auto snap = pool.counters();
  const auto& js = journal.stats();
  state.SetItemsProcessed(static_cast<std::int64_t>(snap.processed));
  state.counters["updates_per_sec"] =
      secs > 0 ? static_cast<double>(updates) / secs : 0.0;
  state.counters["forwarded"] = static_cast<double>(snap.forwarded);
  state.counters["blackholed"] = static_cast<double>(snap.dropped + snap.errors);
  if (js.flushes != 0) {
    state.counters["publish_latency_ns"] =
        static_cast<double>(js.total_flush_ns) / static_cast<double>(js.flushes);
    state.counters["publish_latency_max_ns"] = static_cast<double>(js.max_flush_ns);
  }
  pool.stop();
  if (snap.dropped + snap.errors != 0) {
    state.SkipWithError("blackholed packets under churn — RCU swap lost routes");
  }
}

BENCHMARK(BM_ChurnForwardPool)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace dip::bench

BENCHMARK_MAIN();
