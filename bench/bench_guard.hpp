// Release-build guard shared by every bench binary.
//
// Benches measure the Release fast path; numbers from a Debug/asserts build
// look plausible but are meaningless as baselines. The guard aborts at
// startup on non-Release builds unless the caller explicitly opts in (smoke
// lanes set DIP_BENCH_ALLOW_DEBUG=1).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dip::bench {

inline const bool release_build_guard = [] {
#ifndef NDEBUG
  if (std::getenv("DIP_BENCH_ALLOW_DEBUG") == nullptr) {
    std::fprintf(stderr,
                 "bench: refusing to run a non-Release build (assertions "
                 "enabled). Configure with -DCMAKE_BUILD_TYPE=Release, or set "
                 "DIP_BENCH_ALLOW_DEBUG=1 for a smoke run.\n");
    std::abort();
  }
  std::fprintf(stderr,
               "bench: WARNING non-Release build; numbers are not baselines "
               "(DIP_BENCH_ALLOW_DEBUG set).\n");
#endif
  return true;
}();

}  // namespace dip::bench
