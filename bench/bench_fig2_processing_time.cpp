// E1 — Figure 2: packet processing time per protocol and packet size.
//
// The paper forwards IPv4/IPv6 (native baselines), DIP-32, DIP-128, NDN,
// OPT, and NDN+OPT packets of 128/768/1500 bytes through a Tofino and plots
// per-packet processing time (1000 trials per point). Our substrate is the
// software router, so absolute numbers differ from switch hardware; the
// claim under test is the *shape*:
//
//   IPv4 ~ IPv6 ~ DIP-32 ~ DIP-128 ~ NDN   <<   OPT ~ NDN+OPT
//
// (DIP adds little over native IP; the MAC chain dominates OPT.) Processing
// time should be ~flat in packet size since no module touches the payload.
//
// Methodology: each iteration memcpy-restores the packet from a pristine
// template (identical overhead for every protocol/size) and processes it.
// NDN measures the interest+data pair in PIT steady state and reports
// per-packet time via items_processed.
//
// The deterministic switch-cycle estimates (pisa cost model) for the same
// compositions print before the timed runs — that is the "same experiment
// on the modeled Tofino".
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "bench_util.hpp"
#include "dip/legacy/ipv4.hpp"
#include "dip/legacy/ipv6.hpp"
#include "dip/pisa/dip_program.hpp"

namespace dip::bench {
namespace {

constexpr std::size_t kSizes[] = {128, 768, 1500};

// ---------- native baselines ----------

void BM_Ipv4Native(benchmark::State& state) {
  legacy::Ipv4Forwarder fwd(fib::make_lpm<32>(fib::LpmEngine::kPatricia));
  fwd.table().insert({fib::parse_ipv4("10.0.0.0").value(), 8}, 1);
  fwd.table().insert({fib::parse_ipv4("10.1.1.0").value(), 24}, 3);

  legacy::Ipv4Header h;
  h.ttl = 255;
  h.src = fib::parse_ipv4("172.16.0.1").value();
  h.dst = fib::parse_ipv4("10.1.1.9").value();
  std::vector<std::uint8_t> base(static_cast<std::size_t>(state.range(0)), 0xA5);
  (void)h.serialize(base);
  std::vector<std::uint8_t> packet = base;

  for (auto _ : state) {
    std::memcpy(packet.data(), base.data(), packet.size());
    const auto decision = fwd.forward(packet);
    benchmark::DoNotOptimize(decision);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_Ipv6Native(benchmark::State& state) {
  legacy::Ipv6Forwarder fwd(fib::make_lpm<128>(fib::LpmEngine::kPatricia));
  fwd.table().insert({fib::parse_ipv6("2001:db8::").value(), 32}, 1);
  fwd.table().insert({fib::parse_ipv6("2001:db8:1::").value(), 48}, 2);

  legacy::Ipv6Header h;
  h.hop_limit = 255;
  h.src = fib::parse_ipv6("2001:db8::1").value();
  h.dst = fib::parse_ipv6("2001:db8:1::9").value();
  std::vector<std::uint8_t> base(static_cast<std::size_t>(state.range(0)), 0xA5);
  (void)h.serialize(base);
  std::vector<std::uint8_t> packet = base;

  for (auto _ : state) {
    std::memcpy(packet.data(), base.data(), packet.size());
    const auto decision = fwd.forward(packet);
    benchmark::DoNotOptimize(decision);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// ---------- DIP compositions ----------

void run_dip(benchmark::State& state, const std::vector<std::uint8_t>& base,
             core::Router& router) {
  std::vector<std::uint8_t> packet = base;
  for (auto _ : state) {
    std::memcpy(packet.data(), base.data(), packet.size());
    const auto result = router.process(packet, 0, 0);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_Dip32(benchmark::State& state) {
  core::Router router(bench_env(), shared_registry().get());
  run_dip(state, dip32_packet(static_cast<std::size_t>(state.range(0))), router);
}

void BM_Dip128(benchmark::State& state) {
  core::Router router(bench_env(), shared_registry().get());
  run_dip(state, dip128_packet(static_cast<std::size_t>(state.range(0))), router);
}

void BM_Ndn(benchmark::State& state) {
  core::RouterEnv env = bench_env();
  ndn::install_name_route(*env.fib32, fib::Name::parse("/hotnets"), 1);
  core::Router router(std::move(env), shared_registry().get());

  const std::size_t size = static_cast<std::size_t>(state.range(0));
  const auto interest_base = ndn_interest_packet(size);
  const auto data_base = ndn_data_packet(size);
  std::vector<std::uint8_t> interest = interest_base;
  std::vector<std::uint8_t> data = data_base;

  // Steady state: every interest creates the PIT entry the following data
  // packet consumes. Two packets per iteration.
  for (auto _ : state) {
    std::memcpy(interest.data(), interest_base.data(), interest.size());
    benchmark::DoNotOptimize(router.process(interest, 0, 0));
    std::memcpy(data.data(), data_base.data(), data.size());
    benchmark::DoNotOptimize(router.process(data, 1, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}

void BM_Opt(benchmark::State& state) {
  core::Router router(bench_env(), shared_registry().get());
  run_dip(state, opt_packet(static_cast<std::size_t>(state.range(0))), router);
}

void BM_NdnOpt(benchmark::State& state) {
  core::RouterEnv env = bench_env();
  ndn::install_name_route(*env.fib32, fib::Name::parse("/hotnets"), 1);
  core::Router router(std::move(env), shared_registry().get());

  const std::size_t size = static_cast<std::size_t>(state.range(0));
  const auto interest_base = ndn_opt_packet(size, /*interest=*/true);
  const auto data_base = ndn_opt_packet(size, /*interest=*/false);
  std::vector<std::uint8_t> interest = interest_base;
  std::vector<std::uint8_t> data = data_base;

  for (auto _ : state) {
    std::memcpy(interest.data(), interest_base.data(), interest.size());
    benchmark::DoNotOptimize(router.process(interest, 0, 0));
    std::memcpy(data.data(), data_base.data(), data.size());
    benchmark::DoNotOptimize(router.process(data, 1, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}

void register_all() {
  for (const std::size_t size : kSizes) {
    const auto s = static_cast<std::int64_t>(size);
    benchmark::RegisterBenchmark("Fig2/IPv4_native", BM_Ipv4Native)->Arg(s);
    benchmark::RegisterBenchmark("Fig2/IPv6_native", BM_Ipv6Native)->Arg(s);
    benchmark::RegisterBenchmark("Fig2/DIP32", BM_Dip32)->Arg(s);
    benchmark::RegisterBenchmark("Fig2/DIP128", BM_Dip128)->Arg(s);
    benchmark::RegisterBenchmark("Fig2/NDN", BM_Ndn)->Arg(s);
    benchmark::RegisterBenchmark("Fig2/OPT", BM_Opt)->Arg(s);
    benchmark::RegisterBenchmark("Fig2/NDN_OPT", BM_NdnOpt)->Arg(s);
  }
}

// Deterministic switch-cycle estimates (the modeled Tofino leg of Fig. 2).
void print_switch_model() {
  using pisa::estimate_protocol_cycles;

  struct Row {
    const char* name;
    std::vector<core::FnTriple> fns;
    std::size_t loc_bytes;
  };

  const auto dip32 = core::make_dip32_header(fib::parse_ipv4("10.0.0.1").value(),
                                             fib::parse_ipv4("10.0.0.2").value());
  const auto dip128 = core::make_dip128_header(fib::parse_ipv6("::1").value(),
                                               fib::parse_ipv6("::2").value());
  const auto ndn = ndn::make_interest_header32(1);
  const auto opt_fns = opt::opt_fn_triples();
  std::vector<core::FnTriple> ndn_opt{core::FnTriple::router(544, 32, core::OpKey::kFib)};
  ndn_opt.insert(ndn_opt.end(), opt_fns.begin(), opt_fns.end());

  const Row rows[] = {
      {"DIP-32", dip32->fns, dip32->locations.size()},
      {"DIP-128", dip128->fns, dip128->locations.size()},
      {"NDN", ndn->fns, ndn->locations.size()},
      {"OPT", opt_fns, opt::kBlockBytes},
      {"NDN+OPT", ndn_opt, opt::kBlockBytes + 4},
  };

  std::printf("=== Figure 2 (modeled PISA switch, cycles/packet; size-independent) ===\n");
  std::printf("%-10s %8s %8s %8s %8s %9s\n", "protocol", "parse", "match", "crypto",
              "transit", "total");
  for (const Row& row : rows) {
    const auto c = estimate_protocol_cycles(row.fns, row.loc_bytes);
    std::printf("%-10s %8llu %8llu %8llu %8llu %9llu\n", row.name,
                static_cast<unsigned long long>(c.parse),
                static_cast<unsigned long long>(c.match),
                static_cast<unsigned long long>(c.crypto),
                static_cast<unsigned long long>(c.transit),
                static_cast<unsigned long long>(c.total()));
  }
  std::printf(
      "Expected Figure-2 shape: IP/DIP/NDN close together, OPT and NDN+OPT\n"
      "clearly above them (MAC-dominated), flat in packet size.\n\n");
}

}  // namespace
}  // namespace dip::bench

int main(int argc, char** argv) {
  dip::bench::print_switch_model();
  dip::bench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
