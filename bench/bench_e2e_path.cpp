// A7 — end-to-end simulated path: per-protocol delivery latency and
// simulator event throughput over a 5-hop DIP path.
//
// Unlike Fig. 2 (single-node processing time), this measures whole-path
// behavior in the event simulator: send a packet, run to quiescence,
// confirm delivery. The per-iteration cost covers 6 link transits and 5
// router invocations, plus simulator overhead.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace dip::bench {
namespace {

constexpr std::size_t kHops = 5;

struct PathHarness {
  netsim::Network net;
  std::unique_ptr<netsim::LinearPath> path;
  std::uint64_t delivered = 0;

  PathHarness() {
    path = netsim::make_linear_path(net, kHops, shared_registry(), [](std::size_t i) {
      return netsim::make_basic_env(static_cast<std::uint32_t>(i));
    });
    for (std::size_t i = 0; i < kHops; ++i) {
      auto& env = path->routers[i]->env();
      ndn::install_name_route(*env.fib32, fib::Name::parse("/hotnets"),
                              path->downstream_face[i]);
      env.fib32->insert({fib::parse_ipv4("10.0.0.0").value(), 8},
                        path->downstream_face[i]);
      env.fib128->insert({fib::parse_ipv6("2001:db8::").value(), 32},
                         path->downstream_face[i]);
      install_xia_routes(env, path->downstream_face[i]);
    }
    path->destination.set_receiver(
        [this](netsim::FaceId, netsim::PacketBytes, SimTime) { ++delivered; });
  }
};

void run_path(benchmark::State& state, const std::vector<std::uint8_t>& packet) {
  PathHarness harness;
  std::uint64_t sent = 0;
  for (auto _ : state) {
    harness.path->source.send(harness.path->source_face, packet);
    ++sent;
    harness.net.run();
    benchmark::DoNotOptimize(harness.delivered);
  }
  if (harness.delivered != sent) {
    state.SkipWithError("packets were not delivered end to end");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["hops"] = kHops;
}

void BM_Path_Dip32(benchmark::State& state) { run_path(state, dip32_packet(128)); }
void BM_Path_Dip128(benchmark::State& state) { run_path(state, dip128_packet(128)); }
void BM_Path_Opt(benchmark::State& state) {
  // OPT over 5 hops: session spans the actual path secrets; the bench only
  // measures transit, so the single-hop bench session is fine for cost.
  run_path(state, opt_packet(128));
}
void BM_Path_Xia(benchmark::State& state) { run_path(state, xia_packet(128)); }

BENCHMARK(BM_Path_Dip32);
BENCHMARK(BM_Path_Dip128);
BENCHMARK(BM_Path_Opt);
BENCHMARK(BM_Path_Xia);

// NDN needs the interest/data exchange: one iteration = full round trip.
void BM_Path_NdnRoundTrip(benchmark::State& state) {
  PathHarness harness;
  const std::uint32_t code = bench_name_code();
  std::uint64_t answered = 0;
  harness.path->destination.set_receiver(
      [&](netsim::FaceId face, netsim::PacketBytes, SimTime) {
        auto reply = ndn::make_data_header32(code)->serialize();
        reply.push_back('d');
        harness.path->destination.send(face, std::move(reply));
      });
  harness.path->source.set_receiver(
      [&](netsim::FaceId, netsim::PacketBytes, SimTime) { ++answered; });

  const auto interest = ndn_interest_packet(64);
  std::uint64_t sent = 0;
  for (auto _ : state) {
    harness.path->source.send(harness.path->source_face, interest);
    ++sent;
    harness.net.run();
  }
  if (answered != sent) state.SkipWithError("interest/data round trip broke");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_Path_NdnRoundTrip);

// Simulator scalability: many packets in flight at once.
void BM_Path_BurstOf1000(benchmark::State& state) {
  const auto packet = dip32_packet(128);
  for (auto _ : state) {
    state.PauseTiming();
    PathHarness harness;
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      harness.path->source.send(harness.path->source_face, packet);
    }
    harness.net.run();
    if (harness.delivered != 1000) state.SkipWithError("burst lost packets");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_Path_BurstOf1000);

}  // namespace
}  // namespace dip::bench

BENCHMARK_MAIN();
