// A6 — XIA costs: DAG parse and F_DAG fallback traversal vs DAG size and
// fallback depth.
#include <benchmark/benchmark.h>

#include <cstring>

#include "bench_util.hpp"

namespace dip::bench {
namespace {

using fib::XidType;
using xia::Dag;

/// A chain DAG of n nodes: 0 -> 1 -> ... -> n-1 (intent last), with the
/// source pointing at node 0 (and optionally directly at the intent).
Dag chain_dag(std::size_t nodes, bool direct_intent) {
  Dag dag;
  for (std::size_t i = 0; i < nodes; ++i) {
    (void)dag.add_node({i + 1 == nodes ? XidType::kSid : XidType::kAd,
                        xia::xid_from_label("chain" + std::to_string(i)),
                        {}});
  }
  if (direct_intent) (void)dag.add_edge(Dag::kSourceCursor, static_cast<std::uint8_t>(nodes - 1));
  (void)dag.add_edge(Dag::kSourceCursor, 0);
  for (std::size_t i = 0; i + 1 < nodes; ++i) {
    (void)dag.add_edge(static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(i + 1));
  }
  dag.set_intent(static_cast<std::uint8_t>(nodes - 1));
  return dag;
}

void BM_DagParse(benchmark::State& state) {
  const auto wire = chain_dag(static_cast<std::size_t>(state.range(0)), true)
                        .serialize(Dag::kSourceCursor);
  for (auto _ : state) {
    benchmark::DoNotOptimize(xia::parse_dag(wire));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DagParse)->Arg(2)->Arg(4)->Arg(8);

void BM_DagSerialize(benchmark::State& state) {
  const Dag dag = chain_dag(static_cast<std::size_t>(state.range(0)), true);
  std::vector<std::uint8_t> out(dag.wire_size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dag.serialize(Dag::kSourceCursor, out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DagSerialize)->Arg(2)->Arg(8);

/// Router-level traversal with the route installed at fallback position
/// `depth`: the first `depth` candidates miss before one hits. Measures how
/// fallback depth costs on the data plane.
void run_traversal(benchmark::State& state, bool direct_route) {
  core::RouterEnv env = bench_env();
  const std::size_t nodes = static_cast<std::size_t>(state.range(0));
  const Dag dag = chain_dag(nodes, /*direct_intent=*/true);
  if (direct_route) {
    env.xid_table->insert(XidType::kSid,
                          xia::xid_from_label("chain" + std::to_string(nodes - 1)), 1);
  } else {
    env.xid_table->insert(XidType::kAd, xia::xid_from_label("chain0"), 1);
  }
  core::Router router(std::move(env), shared_registry().get());

  const auto base = xia::make_xia_header(dag)->serialize();
  std::vector<std::uint8_t> packet = base;
  for (auto _ : state) {
    std::memcpy(packet.data(), base.data(), packet.size());
    benchmark::DoNotOptimize(router.process(packet, 0, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_TraverseDirectHit(benchmark::State& state) { run_traversal(state, true); }
void BM_TraverseFallback(benchmark::State& state) { run_traversal(state, false); }
BENCHMARK(BM_TraverseDirectHit)->Arg(3)->Arg(8);
BENCHMARK(BM_TraverseFallback)->Arg(3)->Arg(8);

}  // namespace
}  // namespace dip::bench

BENCHMARK_MAIN();
