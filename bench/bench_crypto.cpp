// A13 — crypto substrate primitives: the raw costs everything OPT/EPIC/
// F_pass/F_cc pay per invocation.
#include <benchmark/benchmark.h>

#include "bench_guard.hpp"

#include "dip/crypto/aes.hpp"
#include "dip/crypto/drkey.hpp"
#include "dip/crypto/even_mansour.hpp"
#include "dip/crypto/random.hpp"
#include "dip/crypto/siphash.hpp"

namespace dip::bench {
namespace {

using namespace dip::crypto;

void BM_Aes128Block(benchmark::State& state) {
  Xoshiro256 rng(1);
  const Aes128 aes(rng.block());
  Block block = rng.block();
  for (auto _ : state) {
    aes.encrypt(block);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_Aes128Block);

void BM_Aes128Decrypt(benchmark::State& state) {
  Xoshiro256 rng(2);
  const Aes128 aes(rng.block());
  Block block = rng.block();
  for (auto _ : state) {
    aes.decrypt(block);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_Aes128Decrypt);

void BM_Em2Block(benchmark::State& state) {
  Xoshiro256 rng(3);
  const EvenMansour2 em(rng.block());
  Block block = rng.block();
  for (auto _ : state) {
    em.encrypt(block);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_Em2Block);

void BM_Aes128KeySchedule(benchmark::State& state) {
  Xoshiro256 rng(4);
  Block key = rng.block();
  for (auto _ : state) {
    key[0] = static_cast<std::uint8_t>(key[0] + 1);  // defeat caching
    Aes128 aes(key);
    benchmark::DoNotOptimize(aes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Aes128KeySchedule);

void BM_DrKeyDerive(benchmark::State& state) {
  // The F_parm hot path: per-packet dynamic-key derivation.
  Xoshiro256 rng(5);
  const DrKey drkey(rng.block());
  SessionId session = rng.block();
  for (auto _ : state) {
    session[0] = static_cast<std::uint8_t>(session[0] + 1);
    benchmark::DoNotOptimize(drkey.derive(session));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DrKeyDerive);

void BM_SipHash(benchmark::State& state) {
  Xoshiro256 rng(6);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(siphash24(process_sip_key(), data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SipHash)->Arg(8)->Arg(32)->Arg(256);

void BM_Xoshiro(benchmark::State& state) {
  Xoshiro256 rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Xoshiro);

}  // namespace
}  // namespace dip::bench

BENCHMARK_MAIN();
