// A8 — the §2.4 security knob: cost of F_pass enforcement on and off.
//
// "Although enabling F_pass all the time is expensive, DIP allows the
// network operators to dynamically adjust security policies based on
// network conditions." This bench quantifies "expensive": per-packet cost
// of an NDN data packet with the F_pass FN present, with enforcement
// toggled, across payload sizes (the label MAC covers the payload).
#include <benchmark/benchmark.h>

#include <cstring>

#include "bench_util.hpp"
#include "dip/security/pass.hpp"

namespace dip::bench {
namespace {

std::vector<std::uint8_t> labeled_packet(const crypto::Block& pass_key,
                                         std::size_t payload_size) {
  std::vector<std::uint8_t> payload(payload_size, 0x77);
  core::HeaderBuilder b;
  const crypto::Block label = security::issue_label(pass_key, payload);
  b.add_router_fn(core::OpKey::kPass, label);
  b.add_router_fn(core::OpKey::kFib, fib::ipv4_from_u32(0x0A010109).bytes);
  auto wire = b.build()->serialize();
  wire.insert(wire.end(), payload.begin(), payload.end());
  return wire;
}

void run(benchmark::State& state, bool enforce) {
  core::RouterEnv env = bench_env();
  env.pass_key = crypto::Xoshiro256(77).block();
  env.enforce_pass = enforce;
  core::Router router(std::move(env), shared_registry().get());

  const auto base =
      labeled_packet(router.env().pass_key, static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint8_t> packet = base;
  for (auto _ : state) {
    std::memcpy(packet.data(), base.data(), packet.size());
    benchmark::DoNotOptimize(router.process(packet, 0, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_PassOff(benchmark::State& state) { run(state, false); }
void BM_PassOn(benchmark::State& state) { run(state, true); }

BENCHMARK(BM_PassOff)->Arg(64)->Arg(512)->Arg(1400);
BENCHMARK(BM_PassOn)->Arg(64)->Arg(512)->Arg(1400);

// The raw label computation, for reference.
void BM_IssueLabel(benchmark::State& state) {
  const crypto::Block key = crypto::Xoshiro256(1).block();
  std::vector<std::uint8_t> payload(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(security::issue_label(key, payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_IssueLabel)->Arg(64)->Arg(1400);

}  // namespace
}  // namespace dip::bench

BENCHMARK_MAIN();
