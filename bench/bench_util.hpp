// Shared workload builders for the benchmark harness.
//
// Every bench processes packets built here so protocol compositions are
// identical across binaries (and identical to the tests).
#pragma once

#include <memory>
#include <vector>

#include "bench_guard.hpp"
#include "dip/core/ip.hpp"
#include "dip/core/router.hpp"
#include "dip/ndn/ndn.hpp"
#include "dip/netsim/dip_node.hpp"
#include "dip/netsim/topology.hpp"
#include "dip/opt/opt.hpp"
#include "dip/xia/xia.hpp"

namespace dip::bench {

inline std::shared_ptr<core::OpRegistry> shared_registry() {
  static auto registry = netsim::make_default_registry();
  return registry;
}

/// Pad `packet` with payload bytes up to `total_size` (the paper's 128/768/
/// 1500-byte frames). Smaller totals leave the packet as-is.
inline std::vector<std::uint8_t> pad_to(std::vector<std::uint8_t> packet,
                                        std::size_t total_size) {
  if (packet.size() < total_size) packet.resize(total_size, 0xA5);
  return packet;
}

/// A router environment with routes installed for every protocol workload.
inline core::RouterEnv bench_env() {
  core::RouterEnv env = netsim::make_basic_env(1);
  env.default_egress = 1;
  // 10/8 (and a spread of longer prefixes for realism).
  env.fib32->insert({fib::parse_ipv4("10.0.0.0").value(), 8}, 1);
  env.fib32->insert({fib::parse_ipv4("10.1.0.0").value(), 16}, 2);
  env.fib32->insert({fib::parse_ipv4("10.1.1.0").value(), 24}, 3);
  env.fib128->insert({fib::parse_ipv6("2001:db8::").value(), 32}, 1);
  env.fib128->insert({fib::parse_ipv6("2001:db8:1::").value(), 48}, 2);
  return env;
}

inline std::vector<std::uint8_t> dip32_packet(std::size_t size) {
  const auto h = core::make_dip32_header(fib::parse_ipv4("10.1.1.9").value(),
                                         fib::parse_ipv4("172.16.0.1").value());
  return pad_to(h->serialize(), size);
}

inline std::vector<std::uint8_t> dip128_packet(std::size_t size) {
  const auto h = core::make_dip128_header(fib::parse_ipv6("2001:db8:1::9").value(),
                                          fib::parse_ipv6("2001:db8::1").value());
  return pad_to(h->serialize(), size);
}

inline std::uint32_t bench_name_code() {
  return ndn::encode_name32(fib::Name::parse("/hotnets/org"));
}

inline std::vector<std::uint8_t> ndn_interest_packet(std::size_t size) {
  return pad_to(ndn::make_interest_header32(bench_name_code())->serialize(), size);
}

inline std::vector<std::uint8_t> ndn_data_packet(std::size_t size) {
  return pad_to(ndn::make_data_header32(bench_name_code())->serialize(), size);
}

/// The OPT session all OPT benches share (single-hop, as in §4.1: "The
/// header length of OPT varies with the path length and we use one hop").
inline const opt::Session& bench_session() {
  static const opt::Session session = [] {
    crypto::Xoshiro256 rng(0xBE7C);
    const std::vector<crypto::Block> secrets{netsim::make_basic_env(1).node_secret};
    return opt::negotiate_session(rng.block(), secrets, rng.block());
  }();
  return session;
}

inline std::vector<std::uint8_t> opt_packet(std::size_t size) {
  const std::vector<std::uint8_t> payload = {'b', 'e', 'n', 'c', 'h'};
  const auto h = opt::make_opt_header(bench_session(), payload, 1000);
  auto wire = h->serialize();
  wire.insert(wire.end(), payload.begin(), payload.end());
  return pad_to(std::move(wire), size);
}

inline std::vector<std::uint8_t> ndn_opt_packet(std::size_t size, bool interest) {
  const std::vector<std::uint8_t> payload = {'b', 'e', 'n', 'c', 'h'};
  const auto h = opt::make_ndn_opt_header(bench_name_code(), interest, bench_session(),
                                          payload, 1000);
  auto wire = h->serialize();
  wire.insert(wire.end(), payload.begin(), payload.end());
  return pad_to(std::move(wire), size);
}

inline std::vector<std::uint8_t> xia_packet(std::size_t size) {
  const auto dag = xia::make_service_dag(
      xia::xid_from_label("bench-ad"), xia::xid_from_label("bench-hid"),
      fib::XidType::kSid, xia::xid_from_label("bench-sid"));
  return pad_to(xia::make_xia_header(dag)->serialize(), size);
}

/// Install the XIA routes the xia_packet() needs.
inline void install_xia_routes(core::RouterEnv& env, core::FaceId face) {
  env.xid_table->insert(fib::XidType::kSid, xia::xid_from_label("bench-sid"), face);
  env.xid_table->insert(fib::XidType::kAd, xia::xid_from_label("bench-ad"), face);
}

}  // namespace dip::bench
