// Control-plane benchmark (src/ctrl/): what the RCU snapshot layer costs.
//
// Legs:
//   * BM_Forward_StaticFib     — seed read path: env's static shared_ptr FIB.
//   * BM_Forward_SnapshotFib   — same workload through SnapshotTable::read()
//     at zero churn. The acceptance bound is <5% items_per_second regression
//     vs the static leg (one extra seq_cst load + branch per lookup).
//   * BM_Forward_UnderChurn/N  — forwarding while the journal flaps a route
//     and publishes every N packets: read-path cost including snapshot
//     swaps, grace-period reclamation, and generation-invalidated flow
//     cache entries. Counter `publishes` reports the publish volume.
//   * BM_Journal_Flush/R       — control-side cost of one delta cycle
//     (clone an R-route table, apply 2 deltas, publish, reclaim): the
//     copy-on-write build is O(table), which is why the journal coalesces
//     and publishes at a bounded rate instead of per-operation.
//
// Flow cache is OFF in the forwarding legs so every packet actually reaches
// the FIB lookup being measured (the cache would mask the indirection).
//
// JSON trajectory: BENCH_control_plane.json, refreshed via
//   build/bench/bench_control_plane --benchmark_min_time=0.2 \
//     --benchmark_out=BENCH_control_plane.json --benchmark_out_format=json
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "dip/ctrl/journal.hpp"

namespace dip::bench {
namespace {

constexpr std::size_t kRoutes = 512;  // /24s under 10.0.0.0/9, as bench_fib

void install_routes(fib::Ipv4Lpm& fib) {
  for (std::size_t i = 0; i < kRoutes; ++i) {
    fib.insert({fib::ipv4_from_u32(0x0A000000u | (static_cast<std::uint32_t>(i) << 8)), 24},
               static_cast<core::FaceId>(1 + i % 8));
  }
}

std::vector<std::uint8_t> probe_packet(std::size_t flow) {
  return core::make_dip32_header(
             fib::ipv4_from_u32(0x0A000000u |
                                (static_cast<std::uint32_t>(flow % kRoutes) << 8) | 1),
             fib::parse_ipv4("172.16.0.1").value())
      ->serialize();
}

const std::vector<std::vector<std::uint8_t>>& probe_templates() {
  static const std::vector<std::vector<std::uint8_t>> t = [] {
    std::vector<std::vector<std::uint8_t>> v(64);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = probe_packet(i * 7);
    return v;
  }();
  return t;
}

void run_forwarding(benchmark::State& state, bool snapshot, std::size_t churn_every) {
  core::RouterEnv env = netsim::make_basic_env(1);
  env.flow_cache = nullptr;  // measure the FIB read path, not the cache
  install_routes(*env.fib32);

  std::shared_ptr<ctrl::ControlTables> tables;
  std::unique_ptr<ctrl::RouteJournal> journal;
  if (snapshot) {
    tables = std::make_shared<ctrl::ControlTables>();
    journal = std::make_unique<ctrl::RouteJournal>(tables);
    journal->seed(env.fib32.get());
    env.control = tables;
    env.ctrl_reader = tables->register_reader();
    tables->domain.resume(env.ctrl_reader);
  }
  core::Router router(std::move(env), shared_registry().get());

  const auto& templates = probe_templates();
  std::vector<std::uint8_t> packet = templates[0];
  std::size_t pos = 0;
  std::size_t since_churn = 0;
  std::uint64_t publishes = 0;
  const fib::Prefix<32> flap{fib::ipv4_from_u32(0x0A008000), 25};
  bool flap_present = false;

  for (auto _ : state) {
    const auto& tmpl = templates[pos];
    if (++pos == templates.size()) pos = 0;
    packet.assign(tmpl.begin(), tmpl.end());
    benchmark::DoNotOptimize(router.process(packet, 0, 0));
    if (churn_every != 0 && ++since_churn >= churn_every) {
      since_churn = 0;
      if (flap_present) {
        journal->remove_route32(flap);
      } else {
        journal->add_route32(flap, 9);
      }
      flap_present = !flap_present;
      publishes += journal->flush();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  if (snapshot) {
    state.counters["publishes"] = static_cast<double>(publishes);
    state.counters["reclaim_backlog"] = static_cast<double>(tables->domain.backlog());
  }
}

void BM_Forward_StaticFib(benchmark::State& state) {
  run_forwarding(state, /*snapshot=*/false, /*churn_every=*/0);
}
BENCHMARK(BM_Forward_StaticFib);

void BM_Forward_SnapshotFib(benchmark::State& state) {
  run_forwarding(state, /*snapshot=*/true, /*churn_every=*/0);
}
BENCHMARK(BM_Forward_SnapshotFib);

void BM_Forward_UnderChurn(benchmark::State& state) {
  run_forwarding(state, /*snapshot=*/true,
                 static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_Forward_UnderChurn)->Arg(4096)->Arg(512)->Arg(64);

void BM_Journal_Flush(benchmark::State& state) {
  const auto routes = static_cast<std::size_t>(state.range(0));
  auto tables = std::make_shared<ctrl::ControlTables>();
  ctrl::RouteJournal journal(tables);
  const auto seed = fib::make_lpm<32>(fib::LpmEngine::kPatricia);
  for (std::size_t i = 0; i < routes; ++i) {
    seed->insert({fib::ipv4_from_u32(static_cast<std::uint32_t>(i) << 12), 24},
                 static_cast<core::FaceId>(1 + i % 8));
  }
  journal.seed(seed.get());

  // No registered readers: grace periods elapse immediately, so this
  // isolates clone + apply + publish + reclaim.
  bool flip = false;
  for (auto _ : state) {
    journal.add_route32({fib::ipv4_from_u32(0x0A000000), 8}, flip ? 1 : 2);
    journal.remove_route32({fib::ipv4_from_u32(flip ? 0x0B000000u : 0x0C000000u), 8});
    flip = !flip;
    benchmark::DoNotOptimize(journal.flush());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Journal_Flush)->Arg(64)->Arg(512)->Arg(4096);

}  // namespace
}  // namespace dip::bench

BENCHMARK_MAIN();
