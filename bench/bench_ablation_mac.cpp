// A2 — MAC-primitive ablation (§4.1 compromise #2).
//
// The paper chose 2EM over AES because AES requires packet resubmission on
// Tofino. Two legs here:
//  (a) software cost of the two primitives over the OPT coverage (52 B) and
//      other sizes — in software AES-CMAC and 2EM-CMAC are comparable, so
//      the hardware resubmission, not raw compute, drove the choice;
//  (b) modeled switch cycles with/without resubmission (printed first) —
//      the leg that reproduces the paper's reasoning.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "dip/crypto/mac.hpp"
#include "dip/pisa/dip_program.hpp"

namespace dip::bench {
namespace {

void run_mac(benchmark::State& state, crypto::MacKind kind) {
  crypto::Xoshiro256 rng(1);
  const crypto::Block key = rng.block();
  const auto mac = crypto::make_mac(kind, key);
  std::vector<std::uint8_t> message(static_cast<std::size_t>(state.range(0)));
  for (auto& b : message) b = static_cast<std::uint8_t>(rng.next());

  for (auto _ : state) {
    benchmark::DoNotOptimize(mac->compute(message));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_Em2Mac(benchmark::State& state) { run_mac(state, crypto::MacKind::kEm2); }
void BM_AesCmac(benchmark::State& state) { run_mac(state, crypto::MacKind::kAesCmac); }

// 16 B = one block, 52 B = the OPT F_MAC coverage, larger for scaling.
BENCHMARK(BM_Em2Mac)->Arg(16)->Arg(52)->Arg(256)->Arg(1500);
BENCHMARK(BM_AesCmac)->Arg(16)->Arg(52)->Arg(256)->Arg(1500);

// Full-packet leg: OPT processing with each primitive.
void run_opt_packet(benchmark::State& state, crypto::MacKind kind) {
  core::RouterEnv env = bench_env();
  env.mac_kind = kind;
  core::Router router(std::move(env), shared_registry().get());

  crypto::Xoshiro256 rng(2);
  const std::vector<crypto::Block> secrets{router.env().node_secret};
  const auto session = opt::negotiate_session(rng.block(), secrets, rng.block(), kind);
  const std::vector<std::uint8_t> payload = {'m'};
  auto base = opt::make_opt_header(session, payload, 0)->serialize();
  base.insert(base.end(), payload.begin(), payload.end());

  std::vector<std::uint8_t> packet = base;
  for (auto _ : state) {
    std::memcpy(packet.data(), base.data(), packet.size());
    benchmark::DoNotOptimize(router.process(packet, 0, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_OptPacket_Em2(benchmark::State& state) {
  run_opt_packet(state, crypto::MacKind::kEm2);
}
void BM_OptPacket_AesCmac(benchmark::State& state) {
  run_opt_packet(state, crypto::MacKind::kAesCmac);
}
BENCHMARK(BM_OptPacket_Em2);
BENCHMARK(BM_OptPacket_AesCmac);

void print_switch_model() {
  const auto fns = opt::opt_fn_triples();
  const auto em2 =
      pisa::estimate_protocol_cycles(fns, opt::kBlockBytes, pisa::default_cost_model(),
                                     false, /*aes_mac=*/false);
  const auto aes =
      pisa::estimate_protocol_cycles(fns, opt::kBlockBytes, pisa::default_cost_model(),
                                     false, /*aes_mac=*/true);
  std::printf("=== A2: modeled switch cycles for the OPT chain ===\n");
  std::printf("2EM      : total=%llu cycles, resubmissions=%u\n",
              static_cast<unsigned long long>(em2.total()), em2.resubmissions);
  std::printf("AES-CMAC : total=%llu cycles, resubmissions=%u\n",
              static_cast<unsigned long long>(aes.total()), aes.resubmissions);
  std::printf(
      "Paper 4.1: \"2EM ... can be completed without resubmitting the packet,\n"
      "while the AES needs to resubmit the packet\" -> the cycle gap above.\n\n");
}

}  // namespace
}  // namespace dip::bench

int main(int argc, char** argv) {
  dip::bench::print_switch_model();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
