// E2 — Table 2: packet header size overhead.
//
// Regenerates the table from the live codecs (not constants): each row is
// the serialized size of the actual composition. The paper's numbers are
// printed alongside for direct comparison — they must match exactly, since
// the wire format was derived from them (DESIGN.md §3).
//
// The timed benchmarks below measure serialization cost per composition so
// the binary also earns its keep as a benchmark.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "dip/legacy/ipv4.hpp"
#include "dip/legacy/ipv6.hpp"

namespace dip::bench {
namespace {

struct Row {
  const char* name;
  std::size_t measured;
  std::size_t paper;
};

std::vector<Row> build_rows() {
  const auto dip32 = core::make_dip32_header(fib::parse_ipv4("10.0.0.1").value(),
                                             fib::parse_ipv4("10.0.0.2").value());
  const auto dip128 = core::make_dip128_header(fib::parse_ipv6("::1").value(),
                                               fib::parse_ipv6("::2").value());
  const auto ndn = ndn::make_interest_header32(bench_name_code());
  const auto opt = opt::make_opt_header(bench_session(), std::vector<std::uint8_t>{1},
                                        1000);
  const auto ndn_opt = opt::make_ndn_opt_header(bench_name_code(), false,
                                                bench_session(),
                                                std::vector<std::uint8_t>{1}, 1000);

  return {
      {"IPv6 forwarding", legacy::Ipv6Header::kWireSize, 40},
      {"IPv4 forwarding", legacy::Ipv4Header::kWireSize, 20},
      {"DIP-128 forwarding", dip128->serialize().size(), 50},
      {"DIP-32 forwarding", dip32->serialize().size(), 26},
      {"NDN forwarding", ndn->serialize().size(), 16},
      {"OPT forwarding", opt->serialize().size(), 98},
      {"NDN+OPT forwarding", ndn_opt->serialize().size(), 108},
  };
}

void print_table() {
  std::printf("=== Table 2: packet header size overhead (bytes) ===\n");
  std::printf("%-22s %10s %8s %8s\n", "Network function", "measured", "paper", "match");
  bool all_match = true;
  for (const Row& row : build_rows()) {
    const bool match = row.measured == row.paper;
    all_match &= match;
    std::printf("%-22s %10zu %8zu %8s\n", row.name, row.measured, row.paper,
                match ? "yes" : "NO");
  }
  std::printf("%s\n\n", all_match ? "All rows match the paper exactly."
                                  : "MISMATCH against the paper!");
}

// Serialization cost per composition (bonus measurements).

void BM_SerializeDip32(benchmark::State& state) {
  const auto h = core::make_dip32_header(fib::parse_ipv4("10.0.0.1").value(),
                                         fib::parse_ipv4("10.0.0.2").value());
  std::vector<std::uint8_t> out(h->wire_size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(h->serialize(out));
  }
}
BENCHMARK(BM_SerializeDip32);

void BM_SerializeOpt(benchmark::State& state) {
  const auto h =
      opt::make_opt_header(bench_session(), std::vector<std::uint8_t>{1}, 1000);
  std::vector<std::uint8_t> out(h->wire_size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(h->serialize(out));
  }
}
BENCHMARK(BM_SerializeOpt);

void BM_SerializeNdnOpt(benchmark::State& state) {
  const auto h = opt::make_ndn_opt_header(1, false, bench_session(),
                                          std::vector<std::uint8_t>{1}, 1000);
  std::vector<std::uint8_t> out(h->wire_size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(h->serialize(out));
  }
}
BENCHMARK(BM_SerializeNdnOpt);

}  // namespace
}  // namespace dip::bench

int main(int argc, char** argv) {
  dip::bench::print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
