// A10 — OPT vs EPIC: per-hop processing cost and, more importantly, the
// in-network filtering property. Both realize "source validation and path
// authentication" (§1); the experiment shows what the per-hop verification
// buys and costs.
//
// The header prints the spoof-filtering distance experiment (how many hops
// forged traffic travels before being dropped); the timed benchmarks
// measure the per-hop router cost of each chain.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "bench_util.hpp"
#include "dip/epic/epic.hpp"

namespace dip::bench {
namespace {

std::shared_ptr<core::OpRegistry> epic_registry() {
  static auto r = [] {
    auto reg = netsim::make_default_registry();
    reg->add(std::make_unique<epic::HvfOp>());
    return reg;
  }();
  return r;
}

struct Path {
  std::vector<crypto::Block> secrets;
  std::vector<core::Router> routers;
  opt::Session session;
};

Path make_path(std::size_t hops) {
  Path path;
  crypto::Xoshiro256 rng(0xA10);
  for (std::size_t i = 0; i < hops; ++i) {
    auto env = netsim::make_basic_env(static_cast<std::uint32_t>(i));
    path.secrets.push_back(env.node_secret);
    env.default_egress = 1;
    path.routers.emplace_back(std::move(env), epic_registry().get());
  }
  path.session = opt::negotiate_session(rng.block(), path.secrets, rng.block());
  return path;
}

constexpr std::array<std::uint8_t, 8> kPayload = {'p', 'a', 'y', 'l',
                                                  'o', 'a', 'd', '!'};

// Per-hop processing cost: one router in the middle of the chain.
void BM_OptPerHop(benchmark::State& state) {
  Path path = make_path(1);
  auto base = opt::make_opt_header(path.session, kPayload, 1)->serialize();
  base.insert(base.end(), kPayload.begin(), kPayload.end());

  std::vector<std::uint8_t> packet = base;
  for (auto _ : state) {
    std::memcpy(packet.data(), base.data(), packet.size());
    benchmark::DoNotOptimize(path.routers[0].process(packet, 0, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OptPerHop);

void BM_EpicPerHop(benchmark::State& state) {
  Path path = make_path(1);
  auto base = epic::make_epic_header(path.session, kPayload, 1)->serialize();
  base.insert(base.end(), kPayload.begin(), kPayload.end());

  std::vector<std::uint8_t> packet = base;
  for (auto _ : state) {
    std::memcpy(packet.data(), base.data(), packet.size());
    benchmark::DoNotOptimize(path.routers[0].process(packet, 0, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EpicPerHop);

// Destination verification cost vs path length.
void BM_OptVerify(benchmark::State& state) {
  Path path = make_path(static_cast<std::size_t>(state.range(0)));
  auto packet = opt::make_opt_header(path.session, kPayload, 1)->serialize();
  packet.insert(packet.end(), kPayload.begin(), kPayload.end());
  for (auto& router : path.routers) (void)router.process(packet, 0, 0);
  const auto h = core::DipHeader::parse(packet);
  const auto payload = std::span<const std::uint8_t>(packet).subspan(h->wire_size());

  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::verify_packet(path.session, h->locations, payload));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OptVerify)->Arg(1)->Arg(4)->Arg(8);

void BM_EpicVerify(benchmark::State& state) {
  Path path = make_path(static_cast<std::size_t>(state.range(0)));
  auto packet = epic::make_epic_header(path.session, kPayload, 1)->serialize();
  packet.insert(packet.end(), kPayload.begin(), kPayload.end());
  for (auto& router : path.routers) (void)router.process(packet, 0, 0);
  const auto h = core::DipHeader::parse(packet);
  const auto payload = std::span<const std::uint8_t>(packet).subspan(h->wire_size());

  for (auto _ : state) {
    benchmark::DoNotOptimize(
        epic::verify_packet(path.session, h->locations, payload));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EpicVerify)->Arg(1)->Arg(4)->Arg(8);

// The filtering-distance experiment, printed before the timed runs.
void print_filtering_distance() {
  constexpr std::size_t kHops = 8;
  crypto::Xoshiro256 rng(0x5F00F);

  auto travel = [&](bool use_epic) {
    Path path = make_path(kHops);
    opt::Session spoofed = path.session;
    // Attacker without keys: forge everything secret.
    spoofed.destination_key = rng.block();
    for (auto& k : spoofed.router_keys) k = rng.block();

    std::vector<std::uint8_t> packet;
    if (use_epic) {
      packet = epic::make_epic_header(spoofed, kPayload, 1)->serialize();
    } else {
      packet = opt::make_opt_header(spoofed, kPayload, 1)->serialize();
    }
    packet.insert(packet.end(), kPayload.begin(), kPayload.end());

    std::size_t hops = 0;
    for (auto& router : path.routers) {
      if (router.process(packet, 0, 0).action != core::Action::kForward) break;
      ++hops;
    }
    return hops;
  };

  std::printf("=== A10: spoofed-packet travel distance over an %zu-hop path ===\n",
              kHops);
  std::printf("OPT  (verify at destination): %zu hops consumed, dropped by host\n",
              travel(false));
  std::printf("EPIC (verify at every hop)  : %zu hops consumed, dropped in-network\n",
              travel(true));
  std::printf("The per-hop verification EPIC pays for below buys this filtering.\n\n");
}

}  // namespace
}  // namespace dip::bench

int main(int argc, char** argv) {
  dip::bench::print_filtering_distance();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
