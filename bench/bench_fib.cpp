// A3 — LPM engine ablation: binary trie vs Patricia vs DIR-24-8 across
// table sizes (the cost inside F_32_match and F_FIB).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "dip/fib/lpm.hpp"

namespace dip::bench {
namespace {

using fib::Ipv4Addr;
using fib::LpmEngine;
using fib::Prefix;

/// Deterministic route table: clustered prefixes of mixed lengths, the way
/// real FIBs look (many /16..,/24s, few /8s, some host routes).
std::vector<Prefix<32>> make_routes(std::size_t count, std::uint64_t seed) {
  crypto::Xoshiro256 rng(seed);
  std::vector<Prefix<32>> routes;
  routes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    static constexpr std::uint8_t kLengths[] = {8, 16, 16, 20, 24, 24, 24, 32};
    Prefix<32> p{fib::ipv4_from_u32(rng.u32()), kLengths[rng.below(8)]};
    p.normalize();
    routes.push_back(p);
  }
  return routes;
}

std::unique_ptr<fib::Ipv4Lpm> loaded_table(LpmEngine engine, std::size_t routes) {
  auto table = fib::make_lpm<32>(engine);
  std::uint32_t nh = 0;
  for (const auto& p : make_routes(routes, 42)) {
    table->insert(p, nh++ % 256);
  }
  return table;
}

void run_lookup(benchmark::State& state, LpmEngine engine) {
  const auto routes = static_cast<std::size_t>(state.range(0));
  const auto table = loaded_table(engine, routes);

  // Probe addresses: half drawn from installed prefixes (hits), half random.
  crypto::Xoshiro256 rng(7);
  const auto installed = make_routes(routes, 42);
  std::vector<Ipv4Addr> probes;
  for (int i = 0; i < 4096; ++i) {
    if (i % 2 == 0) {
      Ipv4Addr a = installed[rng.below(installed.size())].addr;
      a.bytes[3] = static_cast<std::uint8_t>(rng.next());
      probes.push_back(a);
    } else {
      probes.push_back(fib::ipv4_from_u32(rng.u32()));
    }
  }

  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table->lookup(probes[i++ & 4095]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_LookupBinaryTrie(benchmark::State& state) {
  run_lookup(state, LpmEngine::kBinaryTrie);
}
void BM_LookupPatricia(benchmark::State& state) {
  run_lookup(state, LpmEngine::kPatricia);
}
void BM_LookupDir24(benchmark::State& state) { run_lookup(state, LpmEngine::kDir24); }

BENCHMARK(BM_LookupBinaryTrie)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_LookupPatricia)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_LookupDir24)->Arg(1000)->Arg(10000)->Arg(100000);

void run_insert(benchmark::State& state, LpmEngine engine) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto routes = make_routes(count, 99);
  for (auto _ : state) {
    state.PauseTiming();
    auto table = fib::make_lpm<32>(engine);
    state.ResumeTiming();
    std::uint32_t nh = 0;
    for (const auto& p : routes) table->insert(p, nh++ % 256);
    benchmark::DoNotOptimize(table);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}

void BM_InsertBinaryTrie(benchmark::State& state) {
  run_insert(state, LpmEngine::kBinaryTrie);
}
void BM_InsertPatricia(benchmark::State& state) {
  run_insert(state, LpmEngine::kPatricia);
}
void BM_InsertDir24(benchmark::State& state) { run_insert(state, LpmEngine::kDir24); }

BENCHMARK(BM_InsertBinaryTrie)->Arg(10000);
BENCHMARK(BM_InsertPatricia)->Arg(10000);
BENCHMARK(BM_InsertDir24)->Arg(10000);

// IPv6 lookup (F_128_match cost).
void run_lookup6(benchmark::State& state, LpmEngine engine) {
  auto table = fib::make_lpm<128>(engine);
  crypto::Xoshiro256 rng(11);
  std::vector<fib::Ipv6Addr> probes;
  for (int i = 0; i < 10000; ++i) {
    fib::Ipv6Addr a;
    a.bytes[0] = 0x20;
    a.bytes[1] = 0x01;
    for (std::size_t b = 2; b < 16; ++b) a.bytes[b] = static_cast<std::uint8_t>(rng.next());
    fib::Prefix<128> p{a, static_cast<std::uint8_t>(32 + rng.below(33))};
    p.normalize();
    table->insert(p, static_cast<std::uint32_t>(rng.below(256)));
    probes.push_back(a);
  }

  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table->lookup(probes[i++ % probes.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_Lookup6BinaryTrie(benchmark::State& state) {
  run_lookup6(state, LpmEngine::kBinaryTrie);
}
void BM_Lookup6Patricia(benchmark::State& state) {
  run_lookup6(state, LpmEngine::kPatricia);
}
BENCHMARK(BM_Lookup6BinaryTrie);
BENCHMARK(BM_Lookup6Patricia);

// Name FIB (control-plane F_FIB).
void BM_NameFibLookup(benchmark::State& state) {
  fib::NameFib name_fib;
  crypto::Xoshiro256 rng(5);
  std::vector<fib::Name> names;
  for (int i = 0; i < 10000; ++i) {
    fib::Name n;
    n.append("org" + std::to_string(rng.below(64)));
    n.append("site" + std::to_string(rng.below(256)));
    n.append("obj" + std::to_string(i));
    name_fib.insert(n.prefix(2), static_cast<std::uint32_t>(rng.below(16)));
    names.push_back(std::move(n));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(name_fib.lookup(names[i++ % names.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NameFibLookup);

}  // namespace
}  // namespace dip::bench

BENCHMARK_MAIN();
