// A12 — NDN on the switch model: per-packet cost of the register-PIT
// program (parser + LPM + stateful ALU) vs the software NDN router, in both
// wall time and modeled cycles.
#include <benchmark/benchmark.h>

#include <cstring>

#include "bench_util.hpp"
#include "dip/pisa/ndn_switch.hpp"

namespace dip::bench {
namespace {

void BM_SwitchNdnInterestData(benchmark::State& state) {
  pisa::NdnSwitchForwarder sw(1 << 16);
  const std::uint32_t code = bench_name_code();
  sw.add_name_route({fib::ipv4_from_u32(code), 8}, 1);
  const auto interest = ndn::make_interest_header32(code)->serialize();
  const auto data = ndn::make_data_header32(code)->serialize();

  pisa::Cycles cycles = 0;
  for (auto _ : state) {
    const auto up = sw.process(interest, 3);
    benchmark::DoNotOptimize(up);
    const auto down = sw.process(data, 1);
    benchmark::DoNotOptimize(down);
    cycles = up->cycles + down->cycles;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
  state.counters["model_cycles_per_pair"] = static_cast<double>(cycles);
}
BENCHMARK(BM_SwitchNdnInterestData);

void BM_SoftwareNdnInterestData(benchmark::State& state) {
  core::RouterEnv env = bench_env();
  ndn::install_name_route(*env.fib32, fib::Name::parse("/hotnets"), 1);
  core::Router router(std::move(env), shared_registry().get());
  const auto interest_base = ndn_interest_packet(0);
  const auto data_base = ndn_data_packet(0);
  std::vector<std::uint8_t> interest = interest_base;
  std::vector<std::uint8_t> data = data_base;

  for (auto _ : state) {
    std::memcpy(interest.data(), interest_base.data(), interest.size());
    benchmark::DoNotOptimize(router.process(interest, 0, 0));
    std::memcpy(data.data(), data_base.data(), data.size());
    benchmark::DoNotOptimize(router.process(data, 1, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_SoftwareNdnInterestData);

}  // namespace
}  // namespace dip::bench

BENCHMARK_MAIN();
