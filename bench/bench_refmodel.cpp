// How much does "obviously correct" cost? The executable-spec reference
// model (src/refmodel/) trades every production optimisation — flow cache,
// dense dispatch, Patricia tries — for linear scans and allocations. This
// bench puts a number on that gap per Table-1 composition: the refmodel is
// the conformance oracle, so its throughput bounds how big the property
// streams in tests/conformance_test.cpp can affordably get.
#include <benchmark/benchmark.h>

#include "bench_guard.hpp"

#include <cstring>
#include <vector>

#include "dip/core/ip.hpp"
#include "dip/core/router.hpp"
#include "dip/ndn/ndn.hpp"
#include "dip/netsim/dip_node.hpp"
#include "dip/netsim/topology.hpp"
#include "dip/opt/opt.hpp"
#include "dip/refmodel/refmodel.hpp"

namespace dip::bench {
namespace {

const opt::Session& session() {
  static const opt::Session s = [] {
    crypto::Xoshiro256 rng(0xC0FFEE);
    const std::vector<crypto::Block> secrets{rng.block()};
    return opt::negotiate_session(rng.block(), secrets, rng.block());
  }();
  return s;
}

std::vector<std::uint8_t> template_packet(int which) {
  switch (which) {
    case 0:  // DIP-32
      return core::make_dip32_header(fib::ipv4_from_u32(0x0A010203),
                                     fib::ipv4_from_u32(0xC0000201))
          ->serialize();
    case 1:  // NDN interest
      return ndn::make_interest_header32(0x0A0B0C0D)->serialize();
    default: {  // OPT
      const std::vector<std::uint8_t> payload = {'b'};
      auto wire = opt::make_opt_header(session(), payload, 7)->serialize();
      wire.push_back('b');
      return wire;
    }
  }
}

refmodel::RefNode make_ref_node() {
  refmodel::RefConfig cfg;
  cfg.node_id = 1;
  crypto::Xoshiro256 rng(0xC0FFEE);
  cfg.node_secret = rng.block();
  cfg.default_egress = 9;
  cfg.content_store_capacity = 64;
  refmodel::RefNode node(cfg);
  node.add_route32(0x0A000000, 8, 1);
  return node;
}

void BM_RefModel(benchmark::State& state) {
  refmodel::RefNode node = make_ref_node();
  const auto base = template_packet(static_cast<int>(state.range(0)));
  std::vector<std::uint8_t> packet = base;
  SimTime now = 0;
  for (auto _ : state) {
    std::memcpy(packet.data(), base.data(), base.size());
    const auto v = node.process(packet, 1, now += kMicrosecond);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_RefModel)->Arg(0)->Arg(1)->Arg(2);

void BM_Production(benchmark::State& state) {
  const auto registry = netsim::make_default_registry();
  auto env = netsim::make_basic_env(1);
  env.fib32->insert({fib::ipv4_from_u32(0x0A000000), 8}, 1);
  env.content_store.emplace(64);
  env.default_egress = 9;
  crypto::Xoshiro256 rng(0xC0FFEE);
  env.node_secret = rng.block();
  core::Router router(std::move(env), registry.get());

  const auto base = template_packet(static_cast<int>(state.range(0)));
  std::vector<std::uint8_t> packet = base;
  SimTime now = 0;
  for (auto _ : state) {
    std::memcpy(packet.data(), base.data(), base.size());
    const auto v = router.process(packet, 1, now += kMicrosecond);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_Production)->Arg(0)->Arg(1)->Arg(2);

}  // namespace
}  // namespace dip::bench

BENCHMARK_MAIN();
