// A5 — header codec throughput: parse/serialize/bind per §3 composition,
// plus the bit-slicing fast vs slow path inside FN field access.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "dip/bytes/bitfield.hpp"

namespace dip::bench {
namespace {

const std::vector<std::uint8_t>& wire_for(const std::string& protocol) {
  static const auto wires = [] {
    std::map<std::string, std::vector<std::uint8_t>> m;
    m["dip32"] = dip32_packet(0);
    m["dip128"] = dip128_packet(0);
    m["ndn"] = ndn_interest_packet(0);
    m["opt"] = opt_packet(0);
    m["ndn_opt"] = ndn_opt_packet(0, true);
    return m;
  }();
  return wires.at(protocol);
}

void run_parse(benchmark::State& state, const std::string& protocol) {
  const auto& wire = wire_for(protocol);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::DipHeader::parse(wire));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void run_bind(benchmark::State& state, const std::string& protocol) {
  auto wire = wire_for(protocol);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::HeaderView::bind(wire));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void run_serialize(benchmark::State& state, const std::string& protocol) {
  const auto header = core::DipHeader::parse(wire_for(protocol));
  std::vector<std::uint8_t> out(header->wire_size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(header->serialize(out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

#define DIP_CODEC_BENCH(proto)                                                  \
  void BM_Parse_##proto(benchmark::State& s) { run_parse(s, #proto); }          \
  void BM_Bind_##proto(benchmark::State& s) { run_bind(s, #proto); }            \
  void BM_Serialize_##proto(benchmark::State& s) { run_serialize(s, #proto); }  \
  BENCHMARK(BM_Parse_##proto);                                                  \
  BENCHMARK(BM_Bind_##proto);                                                   \
  BENCHMARK(BM_Serialize_##proto)

DIP_CODEC_BENCH(dip32);
DIP_CODEC_BENCH(dip128);
DIP_CODEC_BENCH(ndn);
DIP_CODEC_BENCH(opt);
DIP_CODEC_BENCH(ndn_opt);
#undef DIP_CODEC_BENCH

// Bit-slicing: byte-aligned memcpy fast path vs bit-shifting slow path.
void BM_ExtractAligned(benchmark::State& state) {
  std::vector<std::uint8_t> block(128, 0x5A);
  std::array<std::uint8_t, 16> out{};
  const bytes::BitRange range{128, 128};
  for (auto _ : state) {
    benchmark::DoNotOptimize(bytes::extract_bits(block, range, out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ExtractAligned);

void BM_ExtractUnaligned(benchmark::State& state) {
  std::vector<std::uint8_t> block(128, 0x5A);
  std::array<std::uint8_t, 17> out{};
  const bytes::BitRange range{131, 128};  // 3-bit skew
  for (auto _ : state) {
    benchmark::DoNotOptimize(bytes::extract_bits(block, range, out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ExtractUnaligned);

}  // namespace
}  // namespace dip::bench

BENCHMARK_MAIN();
