// A4 — PIT throughput: the stateful cost inside F_FIB (interest recording)
// and F_PIT (data matching), vs resident table size.
#include <benchmark/benchmark.h>

#include "bench_guard.hpp"

#include "dip/crypto/random.hpp"
#include "dip/pit/content_store.hpp"
#include "dip/pit/pit.hpp"

namespace dip::bench {
namespace {

using pit::Pit;

/// Steady state: each iteration records an interest and immediately
/// satisfies it, with `resident` other entries already in the table.
void BM_PitRecordSatisfy(benchmark::State& state) {
  Pit::Config config;
  config.max_entries = 1 << 22;
  Pit table(config);
  const auto resident = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < resident; ++i) {
    table.record_interest(0xF000'0000'0000'0000ULL + i, 1, 0);
  }

  std::uint64_t code = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.record_interest(code, 1, 0));
    benchmark::DoNotOptimize(table.match_data(code, 0));
    ++code;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_PitRecordSatisfy)->Arg(0)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_PitAggregation(benchmark::State& state) {
  Pit table;
  table.record_interest(7, 0, 0);
  std::uint32_t face = 1;
  for (auto _ : state) {
    // Alternate two faces: every record is an aggregation or duplicate.
    benchmark::DoNotOptimize(table.record_interest(7, face ^= 1, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PitAggregation);

void BM_PitMiss(benchmark::State& state) {
  Pit table;
  for (std::uint64_t i = 0; i < 4096; ++i) table.record_interest(i, 1, 0);
  std::uint64_t code = 1 << 20;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.match_data(code++, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PitMiss);

void BM_PitExpirySweep(benchmark::State& state) {
  const auto entries = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Pit::Config config;
    config.entry_lifetime = 100;
    config.max_entries = 1 << 22;
    Pit table(config);
    for (std::uint64_t i = 0; i < entries; ++i) table.record_interest(i, 1, 0);
    state.ResumeTiming();
    benchmark::DoNotOptimize(table.expire(1000));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(entries));
}
BENCHMARK(BM_PitExpirySweep)->Arg(1 << 10)->Arg(1 << 16);

// Content-store legs (footnote-2 extension).
void BM_ContentStoreHit(benchmark::State& state) {
  pit::ContentStore cs(1 << 16);
  crypto::Xoshiro256 rng(3);
  std::vector<std::uint8_t> payload(1024);
  for (std::uint64_t i = 0; i < (1 << 14); ++i) cs.insert(i, payload);

  std::uint64_t code = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cs.lookup(code++ & ((1 << 14) - 1)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ContentStoreHit);

void BM_ContentStoreInsertEvict(benchmark::State& state) {
  pit::ContentStore cs(1 << 10);  // small: every insert evicts
  std::vector<std::uint8_t> payload(1024);
  for (std::uint64_t i = 0; i < (1 << 10); ++i) cs.insert(i, payload);

  std::uint64_t code = 1 << 20;
  for (auto _ : state) {
    cs.insert(code++, payload);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ContentStoreInsertEvict);

}  // namespace
}  // namespace dip::bench

BENCHMARK_MAIN();
