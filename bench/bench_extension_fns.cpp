// A9 — extension FN costs: F_cc (NetFence congestion tag) and F_dps (CSFQ
// dynamic packet state), per packet, against the plain-forwarding baseline.
//
// These are the §5-flavored "new services by upgrading FNs": the bench
// quantifies what each service costs the data plane when composed onto a
// DIP-32 forwarding program.
#include <benchmark/benchmark.h>

#include <cstring>

#include "bench_util.hpp"
#include "dip/netfence/netfence.hpp"
#include "dip/qos/dps.hpp"

namespace dip::bench {
namespace {

crypto::Block cc_key() { return crypto::Xoshiro256(0xCC).block(); }

std::shared_ptr<core::OpRegistry> extension_registry() {
  // Per-node: CcOp/DpsOp are stateful. The bench uses a single router.
  auto registry = netsim::make_default_registry();
  netfence::CongestionMonitor::Config monitor;
  monitor.capacity_bytes_per_sec = 1'000'000'000;  // never congested: pure cost
  registry->add(std::make_unique<netfence::CcOp>(cc_key(), monitor));
  qos::FairShareEstimator::Config fair;
  fair.capacity_bytes_per_sec = 1'000'000'000;
  registry->add(std::make_unique<qos::DpsOp>(fair));
  return registry;
}

std::vector<std::uint8_t> base_packet(bool with_cc, bool with_dps) {
  core::HeaderBuilder b;
  b.add_router_fn(core::OpKey::kMatch32, fib::parse_ipv4("10.1.1.9").value().bytes);
  b.add_router_fn(core::OpKey::kSource, fib::parse_ipv4("172.16.0.1").value().bytes);
  if (with_cc) netfence::add_cc_fn(b, cc_key());
  if (with_dps) qos::add_dps_fn(b, /*flow=*/1, /*label=*/1000);
  auto wire = b.build()->serialize();
  wire.resize(256, 0xA5);
  return wire;
}

void run(benchmark::State& state, bool with_cc, bool with_dps) {
  auto registry = extension_registry();
  core::Router router(bench_env(), registry.get());
  const auto base = base_packet(with_cc, with_dps);
  std::vector<std::uint8_t> packet = base;
  SimTime now = 0;
  for (auto _ : state) {
    std::memcpy(packet.data(), base.data(), packet.size());
    benchmark::DoNotOptimize(router.process(packet, 0, now));
    now += 1000;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_ForwardOnly(benchmark::State& state) { run(state, false, false); }
void BM_WithCc(benchmark::State& state) { run(state, true, false); }
void BM_WithDps(benchmark::State& state) { run(state, false, true); }
void BM_WithBoth(benchmark::State& state) { run(state, true, true); }

BENCHMARK(BM_ForwardOnly);
BENCHMARK(BM_WithCc);
BENCHMARK(BM_WithDps);
BENCHMARK(BM_WithBoth);

// Raw primitive legs.

void BM_EdgeLabeling(benchmark::State& state) {
  qos::EdgeLabeler edge;
  SimTime now = 0;
  std::uint32_t flow = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(edge.label(flow++ & 0xFF, 1000, now));
    now += 1000;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EdgeLabeling);

void BM_CcTagVerify(benchmark::State& state) {
  std::array<std::uint8_t, netfence::kTagBytes> field{};
  netfence::CcTag tag;
  tag.write(field);
  tag.mac = netfence::CcTag::compute_mac(field, cc_key(), crypto::MacKind::kEm2);
  tag.write(field);
  for (auto _ : state) {
    benchmark::DoNotOptimize(netfence::verify_cc_tag(field, cc_key()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CcTagVerify);

}  // namespace
}  // namespace dip::bench

BENCHMARK_MAIN();
