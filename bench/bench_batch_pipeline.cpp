// Fast-path benchmark: process_batch + flow cache + RouterPool sharding.
//
// Sweeps batch size {1,8,32,128} and pool workers {1,2,4} over a Zipf(0.99)
// flow mix (heavy-tailed destinations, the traffic shape the flow cache is
// built for) on two workloads:
//   * DIP-32  — 512-prefix /24 FIB, 4096 distinct destinations;
//   * NDN     — interest forwarding over the name-code FIB (the flow cache
//               does not apply to F_FIB; this isolates the batching gain).
//
// The baseline legs are the seed path: flow cache off, one process() call
// per packet. Every leg copies each packet from a template before
// processing (packets are mutated in place), so the copy cost is identical
// across variants and the deltas are pipeline effects only.
//
// JSON output (--benchmark_format=json) carries items_per_second and a
// cache_hit_rate counter per leg for BENCH_* trajectory tracking.
#include <benchmark/benchmark.h>

#include <cstring>
#include <mutex>

#include "bench_util.hpp"
#include "dip/core/flow_cache.hpp"
#include "dip/core/router_pool.hpp"

namespace dip::bench {
namespace {

constexpr std::size_t kFibPrefixes = 512;    // /24s under 10.0.0.0/9
constexpr std::size_t kFlowUniverse = 4096;  // distinct destinations
constexpr std::size_t kTraceLen = 16384;
constexpr std::size_t kCacheSlots = 16384;   // >= universe: capacity misses gone
constexpr double kZipfExponent = 0.99;

std::uint32_t flow_addr(std::size_t flow) {
  // Spread the universe across every prefix: 8 hosts per /24.
  return 0x0A000000u | (static_cast<std::uint32_t>(flow % kFibPrefixes) << 8) |
         static_cast<std::uint32_t>(flow / kFibPrefixes + 1);
}

void install_prefixes(fib::Ipv4Lpm& fib) {
  for (std::size_t i = 0; i < kFibPrefixes; ++i) {
    fib.insert({fib::ipv4_from_u32(0x0A000000u | (static_cast<std::uint32_t>(i) << 8)), 24},
               static_cast<core::FaceId>(1 + i % 8));
  }
}

core::RouterEnv pipeline_env(bool with_cache) {
  core::RouterEnv env = netsim::make_basic_env(1);
  env.flow_cache = with_cache ? std::make_unique<core::FlowCache>(kCacheSlots) : nullptr;
  install_prefixes(*env.fib32);
  return env;
}

/// Zipf(0.99) index trace, sampled once and replayed by every leg.
const std::vector<std::size_t>& zipf_trace() {
  static const std::vector<std::size_t> trace = [] {
    netsim::ZipfSampler zipf(kFlowUniverse, kZipfExponent, 0x21F);
    std::vector<std::size_t> t(kTraceLen);
    for (auto& idx : t) idx = zipf.sample();
    return t;
  }();
  return trace;
}

const std::vector<std::vector<std::uint8_t>>& dip32_templates() {
  static const std::vector<std::vector<std::uint8_t>> templates = [] {
    std::vector<std::vector<std::uint8_t>> t(kFlowUniverse);
    for (std::size_t f = 0; f < kFlowUniverse; ++f) {
      t[f] = core::make_dip32_header(fib::ipv4_from_u32(flow_addr(f)),
                                     fib::parse_ipv4("172.16.0.1").value())
                 ->serialize();
    }
    return t;
  }();
  return templates;
}

const std::vector<std::vector<std::uint8_t>>& ndn_templates() {
  static const std::vector<std::vector<std::uint8_t>> templates = [] {
    std::vector<std::vector<std::uint8_t>> t(kFlowUniverse);
    for (std::size_t f = 0; f < kFlowUniverse; ++f) {
      t[f] = ndn::make_interest_header32(flow_addr(f))->serialize();
    }
    return t;
  }();
  return templates;
}

void report_cache_rate(benchmark::State& state,
                       const telemetry::CounterSnapshot& before,
                       const telemetry::CounterSnapshot& after) {
  const double hits = static_cast<double>(after.flow_cache_hits - before.flow_cache_hits);
  const double misses =
      static_cast<double>(after.flow_cache_misses - before.flow_cache_misses);
  state.counters["cache_hit_rate"] =
      hits + misses > 0 ? hits / (hits + misses) : 0.0;
}

// ---- seed baseline: cache off, one process() per packet -------------------

void run_baseline(benchmark::State& state,
                  const std::vector<std::vector<std::uint8_t>>& templates) {
  core::Router router(pipeline_env(/*with_cache=*/false), shared_registry().get());
  const auto& trace = zipf_trace();

  std::vector<std::uint8_t> packet = templates[0];
  std::size_t pos = 0;
  const auto before = router.env().counters.snapshot();
  for (auto _ : state) {
    const auto& tmpl = templates[trace[pos]];
    if (++pos == trace.size()) pos = 0;
    packet.assign(tmpl.begin(), tmpl.end());
    benchmark::DoNotOptimize(router.process(packet, 0, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  report_cache_rate(state, before, router.env().counters.snapshot());
}

void BM_DIP32_Baseline(benchmark::State& state) { run_baseline(state, dip32_templates()); }
void BM_NDN_Baseline(benchmark::State& state) { run_baseline(state, ndn_templates()); }

// ---- batched path: cache on, process_batch over a reused burst ------------

void run_batch(benchmark::State& state,
               const std::vector<std::vector<std::uint8_t>>& templates,
               bool with_stats = false) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  core::RouterEnv env = pipeline_env(/*with_cache=*/true);
  // Default sampling periods — the exact configuration the <3% enabled-
  // overhead budget of DESIGN.md §9 is stated for.
  if (with_stats) env.stats = telemetry::make_router_stats();
  core::Router router(std::move(env), shared_registry().get());
  const auto& trace = zipf_trace();

  std::vector<std::vector<std::uint8_t>> bufs(batch, templates[0]);
  std::vector<core::PacketRef> refs(batch);
  std::vector<core::ProcessResult> results(batch);
  std::size_t pos = 0;
  const auto before = router.env().counters.snapshot();
  for (auto _ : state) {
    for (std::size_t b = 0; b < batch; ++b) {
      const auto& tmpl = templates[trace[pos]];
      if (++pos == trace.size()) pos = 0;
      bufs[b].assign(tmpl.begin(), tmpl.end());
      refs[b] = core::PacketRef(bufs[b]);
    }
    router.process_batch(refs, 0, 0, results);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
  report_cache_rate(state, before, router.env().counters.snapshot());
}

void BM_DIP32_Batch(benchmark::State& state) { run_batch(state, dip32_templates()); }
void BM_NDN_Batch(benchmark::State& state) { run_batch(state, ndn_templates()); }

/// Same leg with RouterEnv::stats installed (histograms + trace ring at the
/// default sampling periods): the enabled-overhead measurement.
void BM_DIP32_Batch_Stats(benchmark::State& state) {
  run_batch(state, dip32_templates(), /*with_stats=*/true);
}

// ---- sharded pool: N workers, 32-packet bursts, recycled buffers ----------

void BM_DIP32_Pool(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kChunk = 4096;  // packets submitted per drain cycle

  // All workers share one route table; caches are per worker.
  core::RouterEnv base = pipeline_env(/*with_cache=*/true);
  const auto fib32 = base.fib32;

  // Completed packets return their buffers through per-worker SPSC rings
  // (worker = producer, bench thread = consumer), so the steady-state
  // submit path allocates nothing and takes no lock.
  std::vector<std::unique_ptr<core::SpscRing<std::vector<std::uint8_t>>>> returns;
  for (std::size_t i = 0; i < std::max<std::size_t>(workers, 1); ++i) {
    returns.push_back(
        std::make_unique<core::SpscRing<std::vector<std::uint8_t>>>(2 * kChunk));
  }

  core::RouterPoolConfig config;
  config.workers = workers;
  config.ring_capacity = 2 * kChunk;
  config.max_batch = 32;
  // Chunk-and-drain dispatch: let the whole chunk queue up, then one wake
  // per worker per drain (park/wake churn would otherwise dominate).
  config.wake_batch = kChunk;
  core::RouterPool pool(
      shared_registry().get(),
      [&fib32](std::size_t i) {
        core::RouterEnv env = netsim::make_basic_env(static_cast<std::uint32_t>(i));
        env.fib32 = fib32;
        env.flow_cache = std::make_unique<core::FlowCache>(kCacheSlots);
        return env;
      },
      config,
      [&](std::size_t worker, core::RouterPool::Item& item, core::ProcessResult&) {
        (void)returns[worker]->try_push(std::move(item.packet));
      });

  const auto& templates = dip32_templates();
  const auto& trace = zipf_trace();
  std::size_t pos = 0;
  std::size_t next_return = 0;
  const auto before = pool.counters();
  for (auto _ : state) {
    for (std::size_t i = 0; i < kChunk; ++i) {
      std::vector<std::uint8_t> buf;
      for (std::size_t r = 0; r < returns.size(); ++r) {
        next_return = (next_return + 1) % returns.size();
        if (returns[next_return]->try_pop(buf)) break;
      }
      const auto& tmpl = templates[trace[pos]];
      if (++pos == trace.size()) pos = 0;
      buf.assign(tmpl.begin(), tmpl.end());
      pool.submit(std::move(buf), 0, 0);
    }
    pool.drain();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kChunk));
  report_cache_rate(state, before, pool.counters());
  pool.stop();
}

BENCHMARK(BM_DIP32_Baseline);
BENCHMARK(BM_NDN_Baseline);
BENCHMARK(BM_DIP32_Batch)->Arg(1)->Arg(8)->Arg(32)->Arg(128);
BENCHMARK(BM_DIP32_Batch_Stats)->Arg(32);
BENCHMARK(BM_NDN_Batch)->Arg(1)->Arg(8)->Arg(32)->Arg(128);
BENCHMARK(BM_DIP32_Pool)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace
}  // namespace dip::bench

BENCHMARK_MAIN();
