// Chaos-layer clean-path overhead (PR 3 acceptance: < 2% at batch 32).
//
// Two cost centres were added for fault injection and graceful degradation,
// and both must be ~free when nothing is failing:
//   * netsim::Network::send now consults LinkParams::faults — measured with
//     no plan, an all-zero (inactive) plan, and a live low-rate plan;
//   * Router lenient validation adds an fns_fit pass in phase 1b — measured
//     as strict vs lenient process_batch over 32 clean DIP-32 packets.
//
// JSON output (--benchmark_out) is committed as BENCH_chaos.json; the
// lenient/strict items_per_second ratio is the <2% check.
#include <benchmark/benchmark.h>

#include <cstring>

#include "bench_util.hpp"
#include "dip/netsim/topology.hpp"

namespace dip::bench {
namespace {

constexpr std::size_t kBatch = 32;

std::vector<std::uint8_t> clean_packet(std::uint32_t i) {
  return core::make_dip32_header(fib::ipv4_from_u32(0x0A000000u + (i % 64)),
                                 fib::parse_ipv4("172.16.0.1").value())
      ->serialize();
}

// ---- Network::send with and without a fault plan --------------------------

void run_network_send(benchmark::State& state, const netsim::FaultPlan& plan) {
  netsim::Network net(42);
  netsim::HostNode sender;
  netsim::HostNode receiver;
  net.add_node(sender);
  net.add_node(receiver);
  netsim::LinkParams link;
  link.faults = plan;
  const auto face = net.connect(sender, receiver, link).first;
  const auto packet = clean_packet(7);

  for (auto _ : state) {
    for (std::size_t i = 0; i < kBatch; ++i) sender.send(face, packet);
    net.run();  // drain deliveries so the event queue stays small
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kBatch));
  state.counters["delivered"] = static_cast<double>(net.stats().delivered);
  state.counters["faults"] = static_cast<double>(net.fault_events());
}

void BM_NetworkSend_NoPlan(benchmark::State& state) {
  run_network_send(state, netsim::FaultPlan{});
}

void BM_NetworkSend_InactivePlan(benchmark::State& state) {
  // All rates zero: plan.active() is false, so this must match NoPlan.
  netsim::FaultPlan plan;
  plan.corrupt_max_bytes = 8;  // knobs without rates do not activate the plan
  run_network_send(state, plan);
}

void BM_NetworkSend_LowRatePlan(benchmark::State& state) {
  // A live plan at realistic chaos-test rates: the per-packet cost is the
  // PRNG draws, not the (rare) fault handling.
  netsim::FaultPlan plan;
  plan.drop_rate = 0.01;
  plan.duplicate_rate = 0.01;
  plan.corrupt_rate = 0.01;
  plan.reorder_rate = 0.01;
  run_network_send(state, plan);
}

BENCHMARK(BM_NetworkSend_NoPlan);
BENCHMARK(BM_NetworkSend_InactivePlan);
BENCHMARK(BM_NetworkSend_LowRatePlan);

// ---- Router validation modes on the clean batch path ----------------------

void run_router_batch(benchmark::State& state, core::ValidationMode mode) {
  core::RouterEnv env = bench_env();
  core::Router router(std::move(env), shared_registry().get());
  router.set_validation(mode);

  std::vector<std::vector<std::uint8_t>> templates(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    templates[i] = clean_packet(static_cast<std::uint32_t>(i));
  }
  std::vector<std::vector<std::uint8_t>> bufs = templates;
  std::vector<core::PacketRef> refs(kBatch);
  std::vector<core::ProcessResult> results(kBatch);

  for (auto _ : state) {
    for (std::size_t b = 0; b < kBatch; ++b) {
      std::memcpy(bufs[b].data(), templates[b].data(), templates[b].size());
      refs[b] = core::PacketRef(bufs[b]);
    }
    router.process_batch(refs, 0, 0, results);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kBatch));
}

void BM_RouterBatch32_Strict(benchmark::State& state) {
  run_router_batch(state, core::ValidationMode::kStrict);
}

void BM_RouterBatch32_Lenient(benchmark::State& state) {
  run_router_batch(state, core::ValidationMode::kLenient);
}

BENCHMARK(BM_RouterBatch32_Strict);
BENCHMARK(BM_RouterBatch32_Lenient);

}  // namespace
}  // namespace dip::bench

BENCHMARK_MAIN();
