// A1 — dispatch-style ablation (§4.1 compromise #1).
//
// Tofino could not loop over FN[], so the paper unrolled dispatch into an
// if-else ladder on FN_Num. In software we have both: measure loop vs
// unrolled across FN counts. (The interesting result is that in software
// the two are nearly identical — the hardware constraint, not performance,
// forced the ladder.)
#include <benchmark/benchmark.h>

#include <cstring>

#include "bench_util.hpp"

namespace dip::bench {
namespace {

std::vector<std::uint8_t> packet_with_n_fns(std::size_t fn_count) {
  core::HeaderBuilder b;
  const auto dst = fib::parse_ipv4("10.1.1.9").value();
  for (std::size_t i = 0; i < fn_count; ++i) {
    // First FN forwards; the rest are cheap F_source no-ops.
    b.add_router_fn(i == 0 ? core::OpKey::kMatch32 : core::OpKey::kSource, dst.bytes);
  }
  return b.build()->serialize();
}

void run(benchmark::State& state, core::DispatchStrategy strategy) {
  core::RouterEnv env = bench_env();
  env.limits.per_packet_budget = 1000;  // don't let the budget interfere
  core::Router router(std::move(env), shared_registry().get(), strategy);

  const auto base = packet_with_n_fns(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint8_t> packet = base;
  for (auto _ : state) {
    std::memcpy(packet.data(), base.data(), packet.size());
    benchmark::DoNotOptimize(router.process(packet, 0, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_Loop(benchmark::State& state) { run(state, core::DispatchStrategy::kLoop); }
void BM_Unrolled(benchmark::State& state) {
  run(state, core::DispatchStrategy::kUnrolled);
}

BENCHMARK(BM_Loop)->DenseRange(1, 16, 3);
BENCHMARK(BM_Unrolled)->DenseRange(1, 16, 3);

}  // namespace
}  // namespace dip::bench

BENCHMARK_MAIN();
