// NetFence-style in-network congestion policing as a Field Operation.
//
// §2.1 names "the MAC-protected congestion control tag in NetFence" as a
// canonical FN target field; §1 describes NetFence as inserting "a slim
// customized header between L3 and L4 to emulate congestion control (i.e.,
// additive increase and multiplicative decrease, AIMD) inside the network
// to mitigate DDoS attacks". This module realizes that design as F_cc:
//
//   tag layout (24 bytes, byte-aligned in the FN-locations block):
//     [0]      action    : kNop / kDown (bottleneck asks for decrease)
//     [1,4)    reserved
//     [4,8)    rate      : the bottleneck's advised rate, bytes/sec
//     [8,24)   MAC       : 2EM-CMAC over bytes [0,8) under the bottleneck
//                          AS key — receivers reject forged "no congestion"
//                          feedback, the core NetFence property
//
// Router side (CcOp): a token-bucket congestion monitor; when the arrival
// rate exceeds capacity, stamp kDown + the fair rate and re-MAC the tag.
// Receiver side: verify the MAC, echo the feedback to the sender.
// Sender side (AimdSender): additive increase per feedback round,
// multiplicative decrease on kDown.
#pragma once

#include <cstdint>
#include <optional>

#include "dip/bytes/time.hpp"
#include "dip/core/builder.hpp"
#include "dip/core/op_module.hpp"
#include "dip/crypto/mac.hpp"

namespace dip::netfence {

inline constexpr std::size_t kTagBytes = 24;

enum class CcAction : std::uint8_t {
  kNop = 0,   ///< no congestion observed
  kDown = 1,  ///< multiplicative decrease requested
};

struct CcTag {
  CcAction action = CcAction::kNop;
  std::uint32_t rate_bps = 0;  ///< advised rate (bytes/sec) when kDown
  crypto::Block mac{};

  [[nodiscard]] static CcTag read(std::span<const std::uint8_t> field) noexcept;
  void write(std::span<std::uint8_t> field) const noexcept;

  /// MAC over the action/rate bytes under `key`.
  [[nodiscard]] static crypto::Block compute_mac(std::span<const std::uint8_t> field,
                                                 const crypto::Block& key,
                                                 crypto::MacKind kind);
};

/// Sliding-window arrival-rate monitor (the bottleneck detector).
class CongestionMonitor {
 public:
  struct Config {
    std::uint64_t capacity_bytes_per_sec = 1'000'000;
    SimDuration window = 10 * kMillisecond;
  };

  CongestionMonitor() : CongestionMonitor(Config{}) {}
  explicit CongestionMonitor(const Config& config) : config_(config) {}

  /// Record an arrival; returns true when the window rate exceeds capacity.
  bool on_arrival(std::size_t packet_bytes, SimTime now);

  /// Max-min fair share advice: capacity split over active senders seen in
  /// the current window (coarse, as NetFence's per-sender policing is).
  [[nodiscard]] std::uint32_t advised_rate() const noexcept;

  [[nodiscard]] bool congested() const noexcept { return congested_; }

 private:
  Config config_;
  SimTime window_start_ = 0;
  std::uint64_t window_bytes_ = 0;
  std::uint64_t window_packets_ = 0;
  bool congested_ = false;
};

/// F_cc (key 14). Stateful: one instance per router (per-node registries).
class CcOp final : public core::OpModule {
 public:
  CcOp(crypto::Block as_key, CongestionMonitor::Config monitor_config)
      : as_key_(as_key), monitor_(monitor_config) {}

  [[nodiscard]] core::OpKey key() const noexcept override { return core::OpKey::kCc; }
  [[nodiscard]] std::uint32_t cost() const noexcept override { return 4; }
  [[nodiscard]] bytes::Status execute(core::OpContext& ctx) override;

  [[nodiscard]] CongestionMonitor& monitor() noexcept { return monitor_; }
  [[nodiscard]] std::uint64_t downgrades() const noexcept { return downgrades_; }

 private:
  crypto::Block as_key_;
  CongestionMonitor monitor_;
  std::uint64_t downgrades_ = 0;
};

/// Append a zeroed, validly-MACed F_cc tag to a header under construction.
void add_cc_fn(core::HeaderBuilder& builder, const crypto::Block& as_key,
               crypto::MacKind kind = crypto::MacKind::kEm2);

/// Receiver side: verify and read the tag; nullopt if the MAC is bad.
[[nodiscard]] std::optional<CcTag> verify_cc_tag(std::span<const std::uint8_t> field,
                                                 const crypto::Block& as_key,
                                                 crypto::MacKind kind =
                                                     crypto::MacKind::kEm2);

/// AIMD rate controller (the sender's reaction to echoed feedback).
class AimdSender {
 public:
  struct Config {
    std::uint32_t initial_rate = 100'000;   ///< bytes/sec
    std::uint32_t additive_step = 10'000;   ///< per feedback round
    double multiplicative_factor = 0.5;
    std::uint32_t min_rate = 1'000;
    std::uint32_t max_rate = 100'000'000;
  };

  AimdSender() : AimdSender(Config{}) {}
  explicit AimdSender(const Config& config)
      : config_(config), rate_(config.initial_rate) {}

  /// Apply one round of feedback.
  void on_feedback(const CcTag& tag);

  [[nodiscard]] std::uint32_t rate() const noexcept { return rate_; }
  [[nodiscard]] std::uint64_t decreases() const noexcept { return decreases_; }

 private:
  Config config_;
  std::uint32_t rate_;
  std::uint64_t decreases_ = 0;
};

}  // namespace dip::netfence
