#include "dip/netfence/netfence.hpp"

#include <algorithm>
#include <cstring>

namespace dip::netfence {

CcTag CcTag::read(std::span<const std::uint8_t> field) noexcept {
  CcTag tag;
  if (field.size() < kTagBytes) return tag;
  tag.action = field[0] == 1 ? CcAction::kDown : CcAction::kNop;
  for (int i = 0; i < 4; ++i) tag.rate_bps = (tag.rate_bps << 8) | field[4 + i];
  tag.mac = crypto::block_from(field.subspan(8, 16));
  return tag;
}

void CcTag::write(std::span<std::uint8_t> field) const noexcept {
  if (field.size() < kTagBytes) return;
  field[0] = static_cast<std::uint8_t>(action);
  field[1] = field[2] = field[3] = 0;
  for (int i = 0; i < 4; ++i) {
    field[4 + i] = static_cast<std::uint8_t>(rate_bps >> (8 * (3 - i)));
  }
  crypto::block_to(mac, field.subspan(8, 16));
}

crypto::Block CcTag::compute_mac(std::span<const std::uint8_t> field,
                                 const crypto::Block& key, crypto::MacKind kind) {
  return crypto::make_mac(kind, key)->compute(field.subspan(0, 8));
}

bool CongestionMonitor::on_arrival(std::size_t packet_bytes, SimTime now) {
  if (now - window_start_ >= config_.window) {
    // Close the window: decide congestion from what it accumulated.
    const std::uint64_t window_ns = std::max<std::uint64_t>(config_.window, 1);
    const std::uint64_t rate = window_bytes_ * kSecond / window_ns;
    congested_ = rate > config_.capacity_bytes_per_sec;
    window_start_ = now;
    window_bytes_ = 0;
    window_packets_ = 0;
  }
  window_bytes_ += packet_bytes;
  ++window_packets_;
  return congested_;
}

std::uint32_t CongestionMonitor::advised_rate() const noexcept {
  const std::uint64_t senders = std::max<std::uint64_t>(window_packets_, 1);
  return static_cast<std::uint32_t>(
      std::max<std::uint64_t>(config_.capacity_bytes_per_sec / senders, 1));
}

bytes::Status CcOp::execute(core::OpContext& ctx) {
  auto field = ctx.target_bytes();
  if (field.size() < kTagBytes) return bytes::Unexpected{bytes::Error::kMalformed};

  const bool congested =
      monitor_.on_arrival(ctx.locations.size() + ctx.payload.size(), ctx.now);

  CcTag tag = CcTag::read(field);
  if (congested) {
    // NetFence: the bottleneck downgrades the tag; an already-downgraded
    // tag keeps the lowest advised rate (the tightest bottleneck wins).
    const std::uint32_t advised = monitor_.advised_rate();
    if (tag.action != CcAction::kDown || advised < tag.rate_bps) {
      tag.action = CcAction::kDown;
      tag.rate_bps = advised;
      ++downgrades_;
    }
  }
  tag.write(field);
  // Re-MAC so the receiver can trust the (possibly updated) feedback. The
  // MAC also re-covers untouched tags, preventing on-path downgrade erasure.
  tag.mac = CcTag::compute_mac(field, as_key_, ctx.env->mac_kind);
  tag.write(field);
  return {};
}

void add_cc_fn(core::HeaderBuilder& builder, const crypto::Block& as_key,
               crypto::MacKind kind) {
  std::array<std::uint8_t, kTagBytes> field{};
  CcTag tag;  // kNop
  tag.write(field);
  tag.mac = CcTag::compute_mac(field, as_key, kind);
  tag.write(field);
  builder.add_router_fn(core::OpKey::kCc, field);
}

std::optional<CcTag> verify_cc_tag(std::span<const std::uint8_t> field,
                                   const crypto::Block& as_key, crypto::MacKind kind) {
  if (field.size() < kTagBytes) return std::nullopt;
  const CcTag tag = CcTag::read(field);
  const crypto::Block expected = CcTag::compute_mac(field, as_key, kind);
  if (!crypto::block_equal_ct(expected, tag.mac)) return std::nullopt;
  return tag;
}

void AimdSender::on_feedback(const CcTag& tag) {
  if (tag.action == CcAction::kDown) {
    ++decreases_;
    const auto scaled = static_cast<std::uint32_t>(
        static_cast<double>(rate_) * config_.multiplicative_factor);
    // Honor the bottleneck's advice when it is tighter than plain MD.
    rate_ = std::clamp(std::min(scaled, tag.rate_bps == 0 ? scaled : tag.rate_bps),
                       config_.min_rate, config_.max_rate);
  } else {
    rate_ = std::clamp(rate_ + config_.additive_step, config_.min_rate,
                       config_.max_rate);
  }
}

}  // namespace dip::netfence
