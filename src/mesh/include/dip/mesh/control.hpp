// Mesh control plane: LSDB → shortest-path routes → per-node RouteJournal.
//
// Each MeshRouter runs the PR-5 control machinery (ControlTables + a
// coalescing RouteJournal); this header is the glue that turns the gossiped
// link-state database into published FIB snapshots. Route computation is a
// deterministic BFS (hop-count SPF, ties broken toward the smallest
// next-hop node id), and an edge only exists when *both* endpoints
// advertise it — an asymmetric view during link failure kills the edge
// mesh-wide as soon as either side's new LSA lands.
//
// Address plan: node n owns 10.(n>>8).(n&255).0/24 and answers at host .1,
// so a /24 route per node covers Internet-style longest-prefix matching
// without per-host routes.
#pragma once

#include <cstdint>
#include <map>

#include "dip/bootstrap/propagation.hpp"
#include "dip/fib/address.hpp"
#include "dip/mesh/node.hpp"

namespace dip::mesh {

/// Host address of node `n` (10.x.y.1).
[[nodiscard]] fib::Ipv4Addr addr_of(std::uint32_t node) noexcept;

/// The /24 prefix node `n` originates (10.x.y.0/24).
[[nodiscard]] fib::Prefix<32> prefix_of(std::uint32_t node) noexcept;

/// BFS next hops from `self` over the LSDB: destination node -> neighbor
/// node id of the first hop. Unreachable destinations (and `self`) are
/// absent. Deterministic for a given LSDB.
[[nodiscard]] std::map<std::uint32_t, std::uint32_t> compute_next_hops(
    const LinkStateDb& lsdb, std::uint32_t self);

/// Recompute and publish `router`'s FIB from its own LSDB: every reachable
/// node's /24 toward the face of its next hop, the router's own /24 toward
/// `local_face`, and a route *removal* for every known-but-unreachable
/// node (convergence under link failure). Flushes the journal (one RCU
/// publish). Returns the number of destinations now routed.
std::size_t publish_routes(MeshRouter& router, FaceId local_face);

/// The gossiped view as a bootstrap::AsGraph (node id = AS number), for
/// end-to-end capability queries over the discovered topology.
[[nodiscard]] bootstrap::AsGraph as_graph_of(const LinkStateDb& lsdb);

}  // namespace dip::mesh
