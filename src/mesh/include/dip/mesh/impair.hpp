// LinkImpairer — netem for the UDP mesh, reusing netsim's FaultPlan.
//
// The mesh sends real datagrams, so faults are injected at the socket send
// path instead of inside a simulated link. The *decisions* keep netsim's
// exact determinism contract: a private xoshiro256** stream seeded
// `fault_seed ^ (0x9E3779B97F4A7C15 * (ordinal + 1))` per half-link, drawn
// in the same fixed order per packet (blackout check first — pure function
// of time, no PRNG — then drop, duplicate, corrupt, reorder). Two runs with
// the same seed, topology, and traffic make identical per-packet decisions
// regardless of wall-clock jitter; only reorder *placement* (an extra
// hold-back delay served by loop timers) is timing-dependent.
//
// Ledger semantics match netsim::Network (docs/FAULTS.md): drop and
// blackout consume the packet before the wire; duplicate sends a second
// copy back to back; corrupt flips bytes but still delivers (informational
// bucket); reorder delays but still delivers.
#pragma once

#include <cstdint>
#include <span>

#include "dip/crypto/random.hpp"
#include "dip/netsim/faults.hpp"

namespace dip::mesh {

/// What the impairer decided for one packet. At most one of
/// `blackout`/`drop` is set (the packet then never reaches the socket);
/// the rest may combine.
struct ImpairDecision {
  bool blackout = false;
  bool drop = false;
  bool duplicate = false;
  std::uint32_t corrupt_bytes = 0;   ///< flipped byte count (0 = untouched)
  std::uint64_t extra_delay_ns = 0;  ///< reorder hold-back (0 = send now)
};

/// Per-half-link fault injector for one mesh face. Stateless apart from the
/// PRNG stream and packet index, so it is trivially thread-confined along
/// with its owning router.
class LinkImpairer {
 public:
  LinkImpairer() = default;
  LinkImpairer(const netsim::FaultPlan& plan, std::uint64_t fault_seed,
               std::uint32_t ordinal) noexcept
      : plan_(plan),
        rng_(fault_seed ^ (0x9E3779B97F4A7C15ull * (ordinal + 1))) {}

  [[nodiscard]] bool active() const noexcept { return plan_.active(); }
  [[nodiscard]] const netsim::FaultPlan& plan() const noexcept { return plan_; }
  /// Packets decided so far on this half-link (the FaultEvent index).
  [[nodiscard]] std::uint64_t packet_index() const noexcept { return packets_; }

  /// Decide the fate of the next packet on this half-link. `packet` is
  /// mutated in place when the corrupt draw hits (matching netsim: flips
  /// happen before the wire, and the checksum catches them at the far end).
  ImpairDecision next(std::uint64_t now_ns, std::span<std::uint8_t> packet);

 private:
  netsim::FaultPlan plan_{};
  crypto::Xoshiro256 rng_{0};
  std::uint64_t packets_ = 0;
};

}  // namespace dip::mesh
