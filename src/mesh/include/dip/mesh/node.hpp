// MeshRouter — one DIP router as a socket-attached mesh participant.
//
// The scale-out counterpart of netsim::DipRouterNode: the same core::Router
// and verdict handling (forward/replicate, drop ledger, §2.4 error
// notifications, footnote-2 cache responses), but faces are UDP endpoints
// on loopback instead of simulated links. Each router is thread-confined
// together with its event loop; routers in different threads or processes
// share nothing but datagrams.
//
// Wire path:
//   egress — serialize → per-face LinkImpairer decides fate (netsim seed
//   contract) → frame (kData, per-half-link seq) → nonblocking send;
//   EAGAIN is the `dropped` ledger bucket (transmit queue full), reorder
//   hold-backs ride event-loop timers.
//   ingress — drain the socket to EAGAIN, decode frames, bucket kData
//   payloads per ingress face, run each bucket through
//   Router::process_batch, apply verdicts, announce ctrl quiescence.
//
// Conservation ledger (aggregated by MeshNet, same equation as netsim):
//   transmitted + duplicated == delivered + lost + blackholed + dropped
// `corrupted` stays informational — flipped payloads are still delivered
// and surface as router-level drop reasons at the far end.
//
// Discovery is in-band: kHello frames carry link-state announcements
// (origin, version, TTL, neighbor list, bootstrap::CapabilitySet). A router
// learns which node sits behind each face from the frame src_node, floods
// fresh LSAs on, and exposes its LinkStateDb for route computation
// (mesh/control.hpp) and AS-graph capability queries.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "dip/bootstrap/capability.hpp"
#include "dip/core/registry.hpp"
#include "dip/core/router.hpp"
#include "dip/ctrl/journal.hpp"
#include "dip/mesh/event_loop.hpp"
#include "dip/mesh/frame.hpp"
#include "dip/mesh/impair.hpp"
#include "dip/mesh/socket.hpp"
#include "dip/telemetry/exposition.hpp"

namespace dip::mesh {

using PacketBytes = std::vector<std::uint8_t>;
using FaceId = std::uint32_t;

/// One node's wire-path conservation counters (catalogue above).
struct WireLedger {
  std::uint64_t transmitted = 0;  ///< data frames entering the send path
  std::uint64_t duplicated = 0;   ///< extra copies injected by the impairer
  std::uint64_t delivered = 0;    ///< data frames arriving at this node
  std::uint64_t lost = 0;         ///< impairer drop decisions
  std::uint64_t blackholed = 0;   ///< blackout windows + failed links
  std::uint64_t dropped = 0;      ///< send-side EAGAIN (transmit queue full)
  std::uint64_t corrupted = 0;    ///< informational: delivered with flips
  std::uint64_t decode_errors = 0;   ///< frames that failed decode_frame
  std::uint64_t seq_gaps = 0;        ///< per-face receive sequence breaks
  std::uint64_t unknown_source = 0;  ///< datagrams from unmapped endpoints
  std::uint64_t hello_tx = 0;
  std::uint64_t hello_rx = 0;

  WireLedger& operator+=(const WireLedger& o) noexcept;
  /// transmitted + duplicated - delivered - lost - blackholed - dropped.
  /// Zero over a quiesced aggregate; per-node it is the in-flight skew.
  [[nodiscard]] std::int64_t imbalance() const noexcept;
};

/// One origin's link-state announcement as stored in the LSDB.
struct Lsa {
  std::uint16_t version = 0;
  std::vector<std::uint32_t> neighbors;  ///< sorted node ids
  bootstrap::CapabilitySet capabilities;
};

/// origin node id -> latest accepted announcement (ordered: deterministic
/// iteration for SPF and AS-graph construction).
using LinkStateDb = std::map<std::uint32_t, Lsa>;

class MeshRouter {
 public:
  /// Delivery callback for local (host-facing) faces: full DIP packet bytes
  /// plus the loop-clock receive time.
  using LocalDelivery = std::function<void(std::span<const std::uint8_t>, std::uint64_t)>;

  struct Config {
    std::uint32_t node_id = 0;
    core::ValidationMode validation = core::ValidationMode::kStrict;
    /// Mesh-wide fault seed; per-face streams mix in the link ordinal.
    std::uint64_t fault_seed = 0;
    bootstrap::CapabilitySet capabilities;
    core::DispatchStrategy strategy = core::DispatchStrategy::kLoop;
  };

  /// `loop` and `registry` must outlive the router; the socket is owned.
  /// The router registers itself with the loop and installs a control
  /// plane (ControlTables + RouteJournal) in its RouterEnv.
  MeshRouter(Config config, MeshEventLoop& loop,
             std::unique_ptr<DatagramSocket> socket,
             std::shared_ptr<const core::OpRegistry> registry);
  ~MeshRouter();

  MeshRouter(const MeshRouter&) = delete;
  MeshRouter& operator=(const MeshRouter&) = delete;

  [[nodiscard]] std::uint32_t node_id() const noexcept { return config_.node_id; }
  [[nodiscard]] Endpoint endpoint() const noexcept { return socket_->local_endpoint(); }
  [[nodiscard]] core::Router& router() noexcept { return router_; }
  [[nodiscard]] core::RouterEnv& env() noexcept { return router_.env(); }
  [[nodiscard]] ctrl::RouteJournal& journal() noexcept { return journal_; }

  /// Attach a wire face toward `peer`. `ordinal` is the mesh-wide
  /// half-link ordinal (the impairer PRNG stream selector); `faults`
  /// defaults inactive.
  FaceId add_wire_face(Endpoint peer, std::uint32_t ordinal,
                       const netsim::FaultPlan& faults = {});
  /// Attach a host-facing face; forwarding to it delivers locally.
  FaceId add_local_face(LocalDelivery delivery);

  /// Mark a wire face dark: subsequent sends are `blackholed` (the failed-
  /// link bucket) until re-enabled. In-flight datagrams still arrive.
  void set_face_up(FaceId face, bool up);

  [[nodiscard]] std::size_t face_count() const noexcept { return faces_.size(); }
  /// Peer node id learned for a wire face (0 until a frame arrived from it).
  [[nodiscard]] std::uint32_t peer_of(FaceId face) const;
  /// Wire face toward `peer_node`, or nullopt if not (yet) learned.
  [[nodiscard]] std::optional<FaceId> face_toward(std::uint32_t peer_node) const;

  /// Originate/refresh this node's LSA (neighbors = peers learned so far)
  /// and flood it with `ttl`. ttl=1 is the initial who-is-there probe that
  /// teaches direct neighbors our node id.
  void originate_lsa(std::uint8_t ttl);

  [[nodiscard]] const LinkStateDb& lsdb() const noexcept { return lsdb_; }

  /// Locally originate a DIP packet (traffic generator ingress): runs the
  /// router with `ingress` (a local face) and applies the verdict.
  void inject(std::span<std::uint8_t> packet, FaceId ingress);

  /// Observer of every forwarded data packet (after FN rewrites, before the
  /// wire): (ingress, egress, packet bytes). The DTN overlay uses this to
  /// commit custody copies of forwarded bundles (dtn/mesh_dtn.hpp).
  using ForwardTap =
      std::function<void(FaceId ingress, FaceId egress, std::span<const std::uint8_t>)>;
  void set_forward_tap(ForwardTap tap) { forward_tap_ = std::move(tap); }

  /// Transmit raw packet bytes out `face` through the ledgered egress path
  /// (impair → frame → send). Local faces deliver locally. Overlay use:
  /// custody retransmissions replay stored bytes without re-processing.
  void transmit(FaceId face, std::span<const std::uint8_t> packet) {
    send_data(face, packet);
  }

  /// Data frames sent on hold-back timers that have not hit the socket yet
  /// (the quiesce condition before a ledger check).
  [[nodiscard]] std::size_t pending_holdbacks() const noexcept { return holdbacks_; }

  [[nodiscard]] const WireLedger& ledger() const noexcept { return ledger_; }
  [[nodiscard]] std::uint64_t local_delivered() const noexcept { return local_delivered_; }
  [[nodiscard]] std::uint64_t drops(core::DropReason reason) const {
    return drop_counts_[static_cast<std::size_t>(reason) % drop_counts_.size()];
  }

  /// `dip_mesh_*` per-node series plus the router's own counters, all
  /// labelled node="<id>" (catalogue in docs/OBSERVABILITY.md).
  void write_stats(telemetry::StatsWriter& w) const;

 private:
  enum class FaceKind : std::uint8_t { kWire, kLocal };
  struct Face {
    FaceKind kind = FaceKind::kWire;
    Endpoint peer;
    std::uint32_t peer_node = 0;  ///< learned from frame src_node
    bool up = true;
    LinkImpairer impairer;
    std::uint64_t tx_seq = 0;       ///< next kData seq on this half-link
    std::uint64_t rx_next_seq = 0;  ///< expected next inbound kData seq
    bool rx_seen = false;
    LocalDelivery delivery;  ///< kLocal only
  };

  void on_readable();
  void handle_datagram(std::span<const std::uint8_t> datagram, Endpoint from);
  void handle_hello(const Frame& frame, FaceId ingress);
  void flush_ingress_bursts(std::uint64_t now);

  void apply_verdict(FaceId ingress, std::span<std::uint8_t> packet,
                     const core::ProcessResult& result);
  void emit_error(std::span<const std::uint8_t> original, core::OpKey offending,
                  FaceId ingress);
  void respond_from_cache(std::span<const std::uint8_t> interest, FaceId ingress);

  /// The ledgered egress path: impair, frame, send (or hold back on a
  /// reorder timer). Entry point for every data transmission on a face.
  void send_data(FaceId face, std::span<const std::uint8_t> packet);
  /// Frame + socket write + EAGAIN accounting for one (possibly delayed,
  /// possibly duplicate) copy.
  void emit_frame(FaceId face, PacketBytes frame_bytes, bool duplicate);
  void send_hello_on(FaceId face, const PacketBytes& payload);

  Config config_;
  MeshEventLoop& loop_;
  std::unique_ptr<DatagramSocket> socket_;
  MeshEventLoop::SocketId socket_id_ = 0;
  std::shared_ptr<const core::OpRegistry> registry_;
  std::shared_ptr<ctrl::ControlTables> tables_;
  core::Router router_;
  ctrl::RouteJournal journal_;

  std::vector<Face> faces_;
  std::map<Endpoint, FaceId> ingress_of_;  ///< wire endpoint -> face

  LinkStateDb lsdb_;
  std::uint16_t lsa_version_ = 0;

  WireLedger ledger_;
  ForwardTap forward_tap_;
  std::uint64_t local_delivered_ = 0;
  std::size_t holdbacks_ = 0;
  std::array<std::uint64_t, 16> drop_counts_{};

  // Ingress burst buckets: per-face packet payloads collected during a
  // drain, then run through process_batch. Kept across drains so the
  // steady path reuses capacity.
  struct Bucket {
    FaceId face = 0;
    std::vector<PacketBytes> packets;
  };
  std::vector<Bucket> buckets_;
  std::vector<core::PacketRef> burst_refs_;
  std::vector<core::ProcessResult> burst_results_;
  std::vector<std::uint8_t> recv_buf_;
};

}  // namespace dip::mesh
