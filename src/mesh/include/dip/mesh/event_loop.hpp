// MeshEventLoop — the reactor under every mesh process: poll(2) over
// nonblocking UDP sockets plus a deterministic timer queue.
//
// netsim's EventLoop advances a simulated clock; here time is real, so the
// loop's only promise is *ordering* determinism: timers fire strictly by
// (deadline, schedule sequence), socket handlers run in registration order
// within a wakeup, and fd churn (add/remove from inside a callback) takes
// effect at the next dispatch round — a handler can retire its own socket
// without invalidating the round in progress.
//
// Tests run the loop against a ManualClock and MockFabric sockets: no real
// sleeps, no kernel, bit-for-bit reproducible. run_ready()/run_until_idle()
// are the non-blocking stepping API those tests (and in-process drivers)
// use; run() is the blocking production entry that parks in poll(2) until
// the next timer or readable fd.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <set>
#include <vector>

#include "dip/mesh/socket.hpp"
#include "dip/telemetry/exposition.hpp"

namespace dip::mesh {

/// Nanosecond clock seam. SteadyClock is the production monotonic clock;
/// ManualClock is test-advanced (never moves on its own).
class MeshClock {
 public:
  virtual ~MeshClock() = default;
  [[nodiscard]] virtual std::uint64_t now_ns() const = 0;
};

class SteadyClock final : public MeshClock {
 public:
  SteadyClock();
  [[nodiscard]] std::uint64_t now_ns() const override;

 private:
  std::uint64_t epoch_ns_ = 0;  ///< construction instant → t=0
};

class ManualClock final : public MeshClock {
 public:
  [[nodiscard]] std::uint64_t now_ns() const override { return now_; }
  void set(std::uint64_t ns) noexcept { now_ = ns; }
  void advance(std::uint64_t ns) noexcept { now_ += ns; }

 private:
  std::uint64_t now_ = 0;
};

struct LoopStats {
  std::uint64_t wakeups = 0;        ///< poll()/run_ready rounds executed
  std::uint64_t timers_fired = 0;
  std::uint64_t reads_dispatched = 0;  ///< socket handler invocations
};

class MeshEventLoop {
 public:
  using Callback = std::function<void()>;
  using SocketId = std::uint32_t;
  using TimerId = std::uint64_t;

  /// `clock` must outlive the loop; nullptr installs an owned SteadyClock.
  explicit MeshEventLoop(MeshClock* clock = nullptr);

  [[nodiscard]] std::uint64_t now_ns() const { return clock_->now_ns(); }
  [[nodiscard]] MeshClock& clock() noexcept { return *clock_; }

  /// Register `socket` with a readability handler. The handler is expected
  /// to drain the socket (recv until kAgain) — level semantics: it is
  /// re-invoked on the next round while the socket stays readable.
  SocketId add_socket(DatagramSocket& socket, Callback on_readable);
  /// Safe from inside any callback (including the socket's own handler).
  void remove_socket(SocketId id);

  TimerId schedule_at(std::uint64_t at_ns, Callback fn);
  TimerId schedule_in(std::uint64_t delay_ns, Callback fn) {
    return schedule_at(now_ns() + delay_ns, fn);
  }
  /// True if the timer was still pending.
  bool cancel_timer(TimerId id);

  /// One non-blocking round: fire timers due at now, then dispatch every
  /// currently-readable socket once. Returns timers fired + handlers run.
  std::size_t run_ready();

  /// run_ready() until a round does nothing (all timers beyond now, no
  /// socket readable). `max_rounds` bounds pathological feedback loops.
  std::size_t run_until_idle(std::size_t max_rounds = 1u << 20);

  /// Blocking loop: dispatch until stop() or `deadline_ns` (absolute clock
  /// time; ~0 = run until stopped or nothing left to wait for). Parks in
  /// poll(2) between rounds; in-memory sockets cap the park at zero while
  /// readable. Returns total dispatches.
  std::size_t run(std::uint64_t deadline_ns = ~std::uint64_t{0});
  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] std::size_t pending_timers() const noexcept {
    return live_timers_.size();
  }
  /// Delay from now to the earliest pending timer (nullopt = none). Lets a
  /// manual-clock driver advance time straight to the next event.
  [[nodiscard]] std::optional<std::uint64_t> next_timer_delay() const {
    if (live_timers_.empty()) return std::nullopt;
    return ns_to_next_timer();
  }
  [[nodiscard]] std::size_t socket_count() const noexcept;
  [[nodiscard]] const LoopStats& stats() const noexcept { return stats_; }

  /// `dip_mesh_loop_*` series (catalogue in docs/OBSERVABILITY.md).
  void write_stats(telemetry::StatsWriter& w) const;

 private:
  struct Timer {
    std::uint64_t at;
    TimerId id;
    Callback fn;
  };
  struct TimerLater {
    bool operator()(const Timer& a, const Timer& b) const noexcept {
      return a.at != b.at ? a.at > b.at : a.id > b.id;
    }
  };
  struct Source {
    SocketId id;
    DatagramSocket* socket;
    Callback on_readable;
    bool alive = true;
  };

  std::size_t fire_due_timers();
  std::size_t dispatch_readable();
  void compact_sources();
  /// Nanoseconds until the next pending timer (~0 = none).
  [[nodiscard]] std::uint64_t ns_to_next_timer() const;

  std::unique_ptr<MeshClock> owned_clock_;
  MeshClock* clock_;
  std::vector<Source> sources_;
  bool dispatching_ = false;  ///< defer compaction while iterating sources_
  SocketId next_socket_id_ = 1;
  TimerId next_timer_id_ = 1;
  std::priority_queue<Timer, std::vector<Timer>, TimerLater> timers_;
  /// Ids scheduled but not yet fired or cancelled (cancel = erase here; the
  /// queue entry is skipped when popped).
  std::set<TimerId> live_timers_;
  bool stopped_ = false;
  LoopStats stats_;
};

}  // namespace dip::mesh
