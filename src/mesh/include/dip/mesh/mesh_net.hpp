// MeshNet — a whole loopback mesh under one event loop.
//
// Owns the routers, their sockets (real UDP or MockFabric), the clock, and
// the wiring: connect() hands each endpoint a wire face toward the other
// with a fresh mesh-wide half-link ordinal (the impairer PRNG stream
// selector, netsim's contract). Discovery is in-band: a TTL-1 hello round
// teaches every router who sits behind each face, then a flooded LSA round
// fills every LSDB; convergence is observed, not assumed (all_discovered()).
//
// The aggregate conservation ledger holds because both ends of every link
// are counted in this process:
//   Σ transmitted + Σ duplicated == Σ delivered + Σ lost + Σ blackholed + Σ dropped
// once the mesh is quiescent (no reorder hold-backs pending, sockets
// drained). quiesce() gets a real-clock mesh there; drain() does the same
// for a manual-clock mesh by stepping time to each next timer.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "dip/mesh/control.hpp"
#include "dip/mesh/event_loop.hpp"
#include "dip/mesh/node.hpp"
#include "dip/netsim/faults.hpp"

namespace dip::mesh {

struct MeshConfig {
  /// In-memory MockFabric sockets instead of real UDP (deterministic unit
  /// tests; pairs with an external ManualClock).
  bool use_mock = false;
  /// External clock (must outlive the mesh); nullptr = owned SteadyClock.
  MeshClock* clock = nullptr;
  std::uint64_t fault_seed = 1;
  core::ValidationMode validation = core::ValidationMode::kStrict;
  core::DispatchStrategy strategy = core::DispatchStrategy::kLoop;
  bootstrap::CapabilitySet capabilities;  ///< advertised by every router
  /// Module registry shared by every router; nullptr = the default stack
  /// (netsim::make_default_registry()). Overlays extend it — the DTN soak
  /// adds the custody modules here (dtn/mesh_dtn.hpp).
  std::shared_ptr<const core::OpRegistry> registry;
};

class MeshNet {
 public:
  /// node index (0-based), full packet bytes, loop receive time.
  using DeliveryHandler =
      std::function<void(std::size_t, std::span<const std::uint8_t>, std::uint64_t)>;

  explicit MeshNet(MeshConfig config = {});
  ~MeshNet();

  MeshNet(const MeshNet&) = delete;
  MeshNet& operator=(const MeshNet&) = delete;

  [[nodiscard]] MeshEventLoop& loop() noexcept { return loop_; }

  /// Add one router (node id = index + 1; 0 stays the unknown sentinel)
  /// with a host-facing local face delivering to the DeliveryHandler.
  MeshRouter& add_router();
  [[nodiscard]] std::size_t size() const noexcept { return routers_.size(); }
  [[nodiscard]] MeshRouter& router(std::size_t i) { return *routers_.at(i); }
  [[nodiscard]] FaceId local_face_of(std::size_t i) const { return local_faces_.at(i); }

  void set_delivery(DeliveryHandler handler) { delivery_ = std::move(handler); }

  /// Bidirectional link between routers `a` and `b` (indices) with the
  /// same FaultPlan on both half-links (each gets its own PRNG stream).
  void connect(std::size_t a, std::size_t b, const netsim::FaultPlan& faults = {});

  // Topology builders (indices are created on demand via add_router).
  void build_line(std::size_t n, const netsim::FaultPlan& faults = {});
  /// rows x cols torus: 4-regular, diameter (rows+cols)/2 — the 100+-node
  /// soak topology.
  void build_torus(std::size_t rows, std::size_t cols,
                   const netsim::FaultPlan& faults = {});

  /// In-band discovery: TTL-1 hello round (learn peers), then an LSA flood.
  /// Drives the loop until every router's LSDB covers the mesh or
  /// `budget_ns` of loop-clock time passes. Returns all_discovered().
  bool discover(std::uint64_t budget_ns);
  [[nodiscard]] bool all_discovered() const;

  /// publish_routes() on every router (each from its own LSDB). Returns
  /// total destinations routed.
  std::size_t recompute_routes();

  /// Take the a<->b link down (both faces dark: in-flight + future sends
  /// count as blackholed) and re-originate both endpoints' LSAs so the
  /// failure floods. Call recompute_routes() once discover()-level gossip
  /// settles to converge.
  void fail_link(std::size_t a, std::size_t b, std::uint8_t lsa_ttl = 32);

  // ---- quiescence & conservation ---------------------------------------
  [[nodiscard]] std::size_t pending_holdbacks() const;
  /// Real-clock settle: drive the loop until no hold-backs remain and
  /// `idle_polls` consecutive rounds see nothing, or `budget_ns` passes.
  bool quiesce(std::uint64_t budget_ns, int idle_polls = 3);
  /// Manual-clock settle: run until idle, then advance `clock` to each next
  /// timer until nothing is pending. Bounded by `max_advance_ns`.
  bool drain(ManualClock& clock, std::uint64_t max_advance_ns);

  [[nodiscard]] WireLedger aggregate_ledger() const;
  /// Zero aggregate imbalance (call only when quiescent).
  [[nodiscard]] bool ledger_balanced() const {
    return aggregate_ledger().imbalance() == 0;
  }

  [[nodiscard]] bootstrap::AsGraph as_graph() const {
    return routers_.empty() ? bootstrap::AsGraph{} : as_graph_of(routers_.front()->lsdb());
  }

  /// Mesh-aggregate dip_mesh_* series plus the loop's own counters.
  void write_stats(telemetry::StatsWriter& w) const;

 private:
  [[nodiscard]] std::unique_ptr<DatagramSocket> make_socket();

  MeshConfig config_;
  std::unique_ptr<MockFabric> fabric_;  ///< when use_mock
  MeshEventLoop loop_;
  std::shared_ptr<const core::OpRegistry> registry_;
  std::vector<std::unique_ptr<MeshRouter>> routers_;
  std::vector<FaceId> local_faces_;
  DeliveryHandler delivery_;
  std::uint32_t next_ordinal_ = 0;
  std::uint16_t next_mock_port_ = 20000;
};

}  // namespace dip::mesh
