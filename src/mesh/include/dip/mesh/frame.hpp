// Mesh wire framing: one DIP packet (or control message) per UDP datagram.
//
// netsim moves PacketBytes between nodes by function call; the mesh moves
// them between processes, so every datagram carries a 20-byte frame header
// in front of the DipHeader::serialize() bytes:
//
//   +----------------------------- frame header (20 B) -------------------+
//   | magic:16 | version:8 | type:8 | src_node:32 | seq:64 | len:16 |     |
//   | check:8 | reserved:8                                                |
//   +----------------------------------------------------------------------
//   | payload (len bytes): a serialized DIP packet, a gossip HELLO, ...   |
//   +----------------------------------------------------------------------
//
// `seq` counts frames per transmitting half-link, so receivers can detect
// wire loss/duplication independently of the impairment layer's own
// accounting, and the conformance harness can run exactly-once stop-and-wait
// over a lossy transport. `check` is the same XOR style the DIP basic header
// uses (domain-separated, over the first 18 bytes).
//
// Decode distinguishes the two ways a datagram can be damaged in flight:
//   * kTruncated — fewer bytes than the header, or than header+len, arrived
//     (a short read, or recvfrom() clipped the datagram into our buffer);
//   * kMalformed — bad magic/version/checksum, or MORE bytes than
//     header+len (an oversized datagram cannot be reframed safely).
//
// Deployment model and impairment semantics: docs/MESH.md.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dip/bytes/expected.hpp"

namespace dip::mesh {

/// What the payload is.
enum class FrameType : std::uint8_t {
  kData = 1,     ///< a serialized DIP packet for the forwarding path
  kHello = 2,    ///< gossip: node id + UDP port + bootstrap capability set
  kVerdict = 3,  ///< conformance harness: verdict image + rewritten bytes
  kBye = 4,      ///< conformance harness: orderly shutdown
};

struct FrameHeader {
  static constexpr std::size_t kWireSize = 20;
  static constexpr std::uint16_t kMagic = 0xD1FA;
  static constexpr std::uint8_t kVersion = 1;
  /// Generous bound for one datagram: DIP headers are ≤ ~1.1 kB and mesh
  /// payloads stay well under loopback MTU; anything larger is hostile.
  static constexpr std::size_t kMaxPayload = 8 * 1024;

  FrameType type = FrameType::kData;
  std::uint32_t src_node = 0;  ///< transmitting node id
  std::uint64_t seq = 0;       ///< per-half-link frame counter
  std::uint16_t payload_len = 0;
};

/// A decoded frame; `payload` aliases the datagram buffer passed to decode.
struct Frame {
  FrameHeader header;
  std::span<const std::uint8_t> payload;
};

/// Serialize header + payload into one datagram buffer.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    FrameType type, std::uint32_t src_node, std::uint64_t seq,
    std::span<const std::uint8_t> payload);

/// Parse the front of `datagram`. Errors: kTruncated (short), kMalformed
/// (bad magic/version/checksum, oversized payload_len, or trailing bytes).
[[nodiscard]] bytes::Result<Frame> decode_frame(
    std::span<const std::uint8_t> datagram);

}  // namespace dip::mesh
