// Zipf flow-churn traffic for the mesh (the soak workload).
//
// A fixed-size flow table: each flow is (src router, dst router, flow id),
// destinations drawn from a Zipf popularity distribution over the mesh
// (netsim::ZipfSampler — the same skew the caching work uses), sources
// uniform. churn() retires the oldest flows and admits fresh Zipf-sampled
// ones, so the working set drifts the way real traffic mixes do while the
// whole schedule stays a pure function of the seed.
//
// Packets are DIP-32 (F_32_match + F_source) addressed by the mesh address
// plan, with a 16-byte probe payload carrying the flow id and the send
// timestamp; on local delivery the generator computes end-to-end latency
// against the loop clock (exact under ManualClock, wall-clock under
// SteadyClock).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "dip/mesh/mesh_net.hpp"
#include "dip/netsim/topology.hpp"

namespace dip::mesh {

struct TrafficConfig {
  std::size_t flows = 64;       ///< concurrent flow-table size
  double zipf_exponent = 1.0;   ///< destination popularity skew
  std::uint64_t seed = 1;
  std::size_t churn_flows = 4;  ///< flows replaced per churn() call
};

struct TrafficStats {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;     ///< probe payloads that came back intact
  std::uint64_t mismatched = 0;   ///< delivered locally but not a probe
  std::uint64_t flows_churned = 0;
  std::uint64_t latency_sum_ns = 0;
  std::uint64_t latency_max_ns = 0;

  [[nodiscard]] double mean_latency_ns() const noexcept {
    return received ? static_cast<double>(latency_sum_ns) / static_cast<double>(received) : 0.0;
  }
};

class MeshTrafficGen {
 public:
  /// Installs itself as the mesh's delivery handler.
  MeshTrafficGen(MeshNet& net, TrafficConfig config);

  /// Inject `packets` probes, round-robin over the flow table. Returns the
  /// number injected.
  std::size_t tick(std::size_t packets);

  /// Replace the `churn_flows` oldest flows with fresh Zipf picks.
  void churn();

  [[nodiscard]] const TrafficStats& stats() const noexcept { return stats_; }

  /// `dip_mesh_traffic_*` series.
  void write_stats(telemetry::StatsWriter& w) const;

 private:
  struct Flow {
    std::size_t src = 0;
    std::size_t dst = 0;
    std::uint32_t id = 0;
  };

  [[nodiscard]] Flow make_flow();
  void on_delivered(std::size_t node, std::span<const std::uint8_t> packet,
                    std::uint64_t now);

  MeshNet& net_;
  TrafficConfig config_;
  netsim::ZipfSampler zipf_;
  crypto::Xoshiro256 rng_;
  std::deque<Flow> flows_;  ///< oldest at front (churn order)
  std::uint32_t next_flow_id_ = 1;
  std::size_t cursor_ = 0;
  TrafficStats stats_;
  std::vector<std::uint8_t> scratch_;
};

}  // namespace dip::mesh
