// Datagram socket seam: real nonblocking UDP on loopback, and an in-memory
// fabric for deterministic unit tests.
//
// The mesh never blocks in socket calls: sends that would block are
// surfaced as kAgain (the caller accounts them — a full transmit queue is a
// ledger bucket, not a silent stall), and receives drain until kAgain.
// Truncation is reported, never hidden: UdpSocket reads with MSG_TRUNC so a
// datagram bigger than the caller's buffer still reports its true size, the
// exact contract MockSocket mirrors — event-loop tests script EAGAIN and
// truncated deliveries without touching a real socket or sleeping.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <vector>

namespace dip::mesh {

/// A UDP endpoint on the loopback mesh (host order).
struct Endpoint {
  std::uint32_t ip = 0x7F000001;  ///< 127.0.0.1
  std::uint16_t port = 0;

  friend auto operator<=>(const Endpoint&, const Endpoint&) = default;
};

enum class IoStatus : std::uint8_t {
  kOk,
  kAgain,  ///< would block (EAGAIN/ENOBUFS); caller decides the bucket
  kError,  ///< unrecoverable socket error
};

struct RecvOutcome {
  IoStatus status = IoStatus::kAgain;
  /// True datagram size (may exceed the buffer: then `truncated` is set and
  /// only buffer-many bytes were written).
  std::size_t size = 0;
  bool truncated = false;
  Endpoint from;
};

class DatagramSocket {
 public:
  virtual ~DatagramSocket() = default;

  /// Poll handle; < 0 for in-memory sockets (the event loop then asks
  /// poll_readable() instead of poll(2)).
  [[nodiscard]] virtual int fd() const noexcept = 0;
  [[nodiscard]] virtual bool poll_readable() const noexcept = 0;
  [[nodiscard]] virtual Endpoint local_endpoint() const noexcept = 0;

  [[nodiscard]] virtual IoStatus send_to(const Endpoint& to,
                                         std::span<const std::uint8_t> bytes) = 0;
  [[nodiscard]] virtual RecvOutcome recv_from(std::span<std::uint8_t> buf) = 0;
};

/// Nonblocking AF_INET UDP socket bound to 127.0.0.1 (port 0 = ephemeral).
/// Buffers are raised toward the rmem/wmem ceiling at construction so burst
/// fan-in on a 100+-node single-host mesh does not shed in the kernel.
class UdpSocket final : public DatagramSocket {
 public:
  /// Throws std::system_error if socket/bind fails (deployment error, not a
  /// data-path condition).
  explicit UdpSocket(std::uint16_t port = 0);
  ~UdpSocket() override;

  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  [[nodiscard]] int fd() const noexcept override { return fd_; }
  [[nodiscard]] bool poll_readable() const noexcept override;
  [[nodiscard]] Endpoint local_endpoint() const noexcept override { return local_; }

  [[nodiscard]] IoStatus send_to(const Endpoint& to,
                                 std::span<const std::uint8_t> bytes) override;
  [[nodiscard]] RecvOutcome recv_from(std::span<std::uint8_t> buf) override;

 private:
  int fd_ = -1;
  Endpoint local_;
};

class MockSocket;

/// Switchboard for in-memory sockets: routes send_to() by destination
/// endpoint to the socket bound there. Single-threaded, fully deterministic
/// (FIFO per inbox), no kernel involvement.
class MockFabric {
 public:
  /// Bind a new socket at `port` (must be unused on this fabric).
  [[nodiscard]] std::unique_ptr<MockSocket> create(std::uint16_t port);

  /// Datagrams sent to endpoints nobody is bound to (dropped on the floor,
  /// like real UDP).
  [[nodiscard]] std::uint64_t unrouted() const noexcept { return unrouted_; }

 private:
  friend class MockSocket;
  struct Datagram {
    Endpoint from;
    std::vector<std::uint8_t> bytes;
  };
  struct Inbox {
    std::deque<Datagram> queue;
  };

  std::map<Endpoint, std::shared_ptr<Inbox>> inboxes_;
  std::uint64_t unrouted_ = 0;
};

/// In-memory DatagramSocket on a MockFabric, with scripted failure modes
/// for the event-loop unit tests.
class MockSocket final : public DatagramSocket {
 public:
  [[nodiscard]] int fd() const noexcept override { return -1; }
  [[nodiscard]] bool poll_readable() const noexcept override {
    return !inbox_->queue.empty();
  }
  [[nodiscard]] Endpoint local_endpoint() const noexcept override { return local_; }

  [[nodiscard]] IoStatus send_to(const Endpoint& to,
                                 std::span<const std::uint8_t> bytes) override;
  [[nodiscard]] RecvOutcome recv_from(std::span<std::uint8_t> buf) override;

  /// The next `n` send_to() calls return kAgain (a full transmit queue).
  void fail_next_sends(std::uint32_t n) noexcept { fail_sends_ = n; }
  /// The next recv_from() reports kAgain once even if the inbox is
  /// nonempty (a spurious wakeup).
  void spurious_wakeup_once() noexcept { spurious_ = true; }

 private:
  friend class MockFabric;
  MockSocket(MockFabric* fabric, Endpoint local,
             std::shared_ptr<MockFabric::Inbox> inbox)
      : fabric_(fabric), local_(local), inbox_(std::move(inbox)) {}

  MockFabric* fabric_;
  Endpoint local_;
  std::shared_ptr<MockFabric::Inbox> inbox_;
  std::uint32_t fail_sends_ = 0;
  bool spurious_ = false;
};

}  // namespace dip::mesh
