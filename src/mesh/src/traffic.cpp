#include "dip/mesh/traffic.hpp"

#include <algorithm>

#include "dip/core/ip.hpp"

namespace dip::mesh {

namespace {

constexpr std::uint32_t kProbeMagic = 0x4D505231u;  // "MPR1"
constexpr std::size_t kProbeBytes = 16;             // magic:4 flow:4 send_ns:8

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 3; i >= 0; --i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 7; i >= 0; --i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

[[nodiscard]] std::uint32_t get32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | p[i];
  return v;
}

[[nodiscard]] std::uint64_t get64(const std::uint8_t* p) {
  return (static_cast<std::uint64_t>(get32(p)) << 32) | get32(p + 4);
}

}  // namespace

MeshTrafficGen::MeshTrafficGen(MeshNet& net, TrafficConfig config)
    : net_(net),
      config_(config),
      zipf_(std::max<std::size_t>(net.size(), 1), config.zipf_exponent, config.seed),
      rng_(config.seed ^ 0xA5A5'5A5A'DEAD'BEEFull) {
  for (std::size_t i = 0; i < config_.flows; ++i) flows_.push_back(make_flow());
  net_.set_delivery([this](std::size_t node, std::span<const std::uint8_t> packet,
                           std::uint64_t now) { on_delivered(node, packet, now); });
}

MeshTrafficGen::Flow MeshTrafficGen::make_flow() {
  Flow f;
  f.src = static_cast<std::size_t>(rng_.below(net_.size()));
  f.dst = zipf_.sample();
  if (f.dst == f.src) f.dst = (f.dst + 1) % net_.size();  // no self-traffic
  f.id = next_flow_id_++;
  return f;
}

std::size_t MeshTrafficGen::tick(std::size_t packets) {
  if (flows_.empty() || net_.size() < 2) return 0;
  std::size_t injected = 0;
  for (std::size_t i = 0; i < packets; ++i) {
    const Flow& flow = flows_[cursor_ % flows_.size()];
    ++cursor_;

    const auto header = core::make_dip32_header(
        addr_of(net_.router(flow.dst).node_id()),
        addr_of(net_.router(flow.src).node_id()));
    if (!header) continue;
    scratch_ = header->serialize();
    put32(scratch_, kProbeMagic);
    put32(scratch_, flow.id);
    put64(scratch_, net_.loop().now_ns());

    net_.router(flow.src).inject(scratch_, net_.local_face_of(flow.src));
    ++stats_.sent;
    ++injected;
  }
  return injected;
}

void MeshTrafficGen::churn() {
  for (std::size_t i = 0; i < config_.churn_flows && !flows_.empty(); ++i) {
    flows_.pop_front();
    flows_.push_back(make_flow());
    ++stats_.flows_churned;
  }
}

void MeshTrafficGen::on_delivered(std::size_t /*node*/,
                                  std::span<const std::uint8_t> packet,
                                  std::uint64_t now) {
  if (packet.size() < kProbeBytes) {
    ++stats_.mismatched;
    return;
  }
  const std::uint8_t* probe = packet.data() + packet.size() - kProbeBytes;
  if (get32(probe) != kProbeMagic) {
    ++stats_.mismatched;
    return;
  }
  ++stats_.received;
  const std::uint64_t sent_at = get64(probe + 8);
  const std::uint64_t latency = now >= sent_at ? now - sent_at : 0;
  stats_.latency_sum_ns += latency;
  stats_.latency_max_ns = std::max(stats_.latency_max_ns, latency);
}

void MeshTrafficGen::write_stats(telemetry::StatsWriter& w) const {
  w.counter("dip_mesh_traffic_sent_total", {}, stats_.sent);
  w.counter("dip_mesh_traffic_received_total", {}, stats_.received);
  w.counter("dip_mesh_traffic_mismatched_total", {}, stats_.mismatched);
  w.counter("dip_mesh_traffic_flows_churned_total", {}, stats_.flows_churned);
  w.gauge("dip_mesh_traffic_mean_latency_ns", {}, stats_.mean_latency_ns());
  w.gauge("dip_mesh_traffic_max_latency_ns", {},
          static_cast<double>(stats_.latency_max_ns));
}

}  // namespace dip::mesh
