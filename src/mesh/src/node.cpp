#include "dip/mesh/node.hpp"

#include <algorithm>
#include <cstring>

#include "dip/core/header.hpp"
#include "dip/ndn/ndn.hpp"
#include "dip/security/error_message.hpp"

namespace dip::mesh {

namespace {

void put16(PacketBytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put32(PacketBytes& out, std::uint32_t v) {
  put16(out, static_cast<std::uint16_t>(v >> 16));
  put16(out, static_cast<std::uint16_t>(v));
}

[[nodiscard]] std::uint16_t get16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

[[nodiscard]] std::uint32_t get32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(get16(p)) << 16) | get16(p + 2);
}

// kHello payload: origin:32 version:16 ttl:8 nnbr:16 neighbor:32 each,
// then the CapabilitySet wire form. Compact, fixed-order, self-framing.
struct HelloImage {
  std::uint32_t origin = 0;
  std::uint16_t version = 0;
  std::uint8_t ttl = 0;
  std::vector<std::uint32_t> neighbors;
  bootstrap::CapabilitySet capabilities;
};

[[nodiscard]] PacketBytes encode_hello(const HelloImage& h) {
  PacketBytes out;
  put32(out, h.origin);
  put16(out, h.version);
  out.push_back(h.ttl);
  put16(out, static_cast<std::uint16_t>(h.neighbors.size()));
  for (const std::uint32_t n : h.neighbors) put32(out, n);
  const PacketBytes caps = h.capabilities.serialize();
  out.insert(out.end(), caps.begin(), caps.end());
  return out;
}

[[nodiscard]] std::optional<HelloImage> decode_hello(
    std::span<const std::uint8_t> payload) {
  if (payload.size() < 9) return std::nullopt;
  HelloImage h;
  h.origin = get32(payload.data());
  h.version = get16(payload.data() + 4);
  h.ttl = payload[6];
  const std::size_t nnbr = get16(payload.data() + 7);
  if (payload.size() < 9 + nnbr * 4) return std::nullopt;
  h.neighbors.reserve(nnbr);
  for (std::size_t i = 0; i < nnbr; ++i) {
    h.neighbors.push_back(get32(payload.data() + 9 + i * 4));
  }
  auto caps = bootstrap::CapabilitySet::parse(payload.subspan(9 + nnbr * 4));
  if (!caps) return std::nullopt;
  h.capabilities = std::move(*caps);
  return h;
}

[[nodiscard]] core::RouterEnv make_env(std::uint32_t node_id,
                                       std::shared_ptr<ctrl::ControlTables> tables) {
  core::RouterEnv env;
  env.node_id = node_id;
  env.control = std::move(tables);
  env.ctrl_reader = env.control->register_reader();
  return env;
}

}  // namespace

WireLedger& WireLedger::operator+=(const WireLedger& o) noexcept {
  transmitted += o.transmitted;
  duplicated += o.duplicated;
  delivered += o.delivered;
  lost += o.lost;
  blackholed += o.blackholed;
  dropped += o.dropped;
  corrupted += o.corrupted;
  decode_errors += o.decode_errors;
  seq_gaps += o.seq_gaps;
  unknown_source += o.unknown_source;
  hello_tx += o.hello_tx;
  hello_rx += o.hello_rx;
  return *this;
}

std::int64_t WireLedger::imbalance() const noexcept {
  return static_cast<std::int64_t>(transmitted + duplicated) -
         static_cast<std::int64_t>(delivered + lost + blackholed + dropped);
}

MeshRouter::MeshRouter(Config config, MeshEventLoop& loop,
                       std::unique_ptr<DatagramSocket> socket,
                       std::shared_ptr<const core::OpRegistry> registry)
    : config_(std::move(config)),
      loop_(loop),
      socket_(std::move(socket)),
      registry_(std::move(registry)),
      tables_(std::make_shared<ctrl::ControlTables>()),
      router_(make_env(config_.node_id, tables_), registry_.get(), config_.strategy),
      journal_(tables_) {
  router_.set_validation(config_.validation);
  recv_buf_.resize(FrameHeader::kWireSize + FrameHeader::kMaxPayload + 64);
  socket_id_ = loop_.add_socket(*socket_, [this] { on_readable(); });
}

MeshRouter::~MeshRouter() { loop_.remove_socket(socket_id_); }

FaceId MeshRouter::add_wire_face(Endpoint peer, std::uint32_t ordinal,
                                 const netsim::FaultPlan& faults) {
  Face f;
  f.kind = FaceKind::kWire;
  f.peer = peer;
  f.impairer = LinkImpairer(faults, config_.fault_seed, ordinal);
  const FaceId id = static_cast<FaceId>(faces_.size());
  faces_.push_back(std::move(f));
  ingress_of_[peer] = id;
  return id;
}

FaceId MeshRouter::add_local_face(LocalDelivery delivery) {
  Face f;
  f.kind = FaceKind::kLocal;
  f.delivery = std::move(delivery);
  const FaceId id = static_cast<FaceId>(faces_.size());
  faces_.push_back(std::move(f));
  return id;
}

void MeshRouter::set_face_up(FaceId face, bool up) {
  if (face < faces_.size()) faces_[face].up = up;
}

std::uint32_t MeshRouter::peer_of(FaceId face) const {
  return face < faces_.size() ? faces_[face].peer_node : 0;
}

std::optional<FaceId> MeshRouter::face_toward(std::uint32_t peer_node) const {
  for (std::size_t i = 0; i < faces_.size(); ++i) {
    if (faces_[i].kind == FaceKind::kWire && faces_[i].peer_node == peer_node) {
      return static_cast<FaceId>(i);
    }
  }
  return std::nullopt;
}

void MeshRouter::originate_lsa(std::uint8_t ttl) {
  HelloImage h;
  h.origin = config_.node_id;
  h.version = ++lsa_version_;
  h.ttl = ttl;
  for (const Face& f : faces_) {
    if (f.kind == FaceKind::kWire && f.up && f.peer_node != 0) {
      h.neighbors.push_back(f.peer_node);
    }
  }
  std::sort(h.neighbors.begin(), h.neighbors.end());
  h.capabilities = config_.capabilities;

  // Our own LSDB entry first (SPF and AS-graph queries see self).
  lsdb_[h.origin] = Lsa{h.version, h.neighbors, h.capabilities};

  const PacketBytes payload = encode_hello(h);
  for (std::size_t i = 0; i < faces_.size(); ++i) {
    if (faces_[i].kind == FaceKind::kWire && faces_[i].up) {
      send_hello_on(static_cast<FaceId>(i), payload);
    }
  }
}

void MeshRouter::send_hello_on(FaceId face, const PacketBytes& payload) {
  // Gossip is control traffic: exempt from impairment and outside the data
  // ledger (netsim's faults only apply to forwarded packets, same here).
  // Hellos do not consume data seq numbers (receivers only sequence-check
  // kData); the version inside the payload is their ordering.
  Face& f = faces_[face];
  const PacketBytes frame =
      encode_frame(FrameType::kHello, config_.node_id, 0, payload);
  (void)socket_->send_to(f.peer, frame);
  ++ledger_.hello_tx;
}

void MeshRouter::on_readable() {
  // Drain to EAGAIN: with raised rcvbuf this bounds kernel-side shedding,
  // and bucketing per ingress face lets process_batch amortize the burst.
  while (true) {
    const RecvOutcome out = socket_->recv_from(recv_buf_);
    if (out.status != IoStatus::kOk) break;
    const std::size_t have = std::min(out.size, recv_buf_.size());
    handle_datagram(std::span(recv_buf_.data(), have), out.from);
  }
  flush_ingress_bursts(loop_.now_ns());
}

void MeshRouter::handle_datagram(std::span<const std::uint8_t> datagram,
                                 Endpoint from) {
  const auto it = ingress_of_.find(from);
  const bool known = it != ingress_of_.end();
  auto decoded = decode_frame(datagram);
  if (!decoded) {
    if (known) {
      // Arrived, but unusable — still `delivered` for conservation (the
      // sender counted it out); the decode error is its own series.
      ++ledger_.delivered;
      ++ledger_.decode_errors;
    } else {
      ++ledger_.unknown_source;
    }
    return;
  }
  const Frame& frame = *decoded;
  if (!known) {
    ++ledger_.unknown_source;
    return;
  }
  const FaceId face_id = it->second;
  Face& face = faces_[face_id];
  if (face.peer_node == 0) face.peer_node = frame.header.src_node;

  switch (frame.header.type) {
    case FrameType::kData: {
      ++ledger_.delivered;
      if (face.rx_seen && frame.header.seq != face.rx_next_seq) {
        ++ledger_.seq_gaps;
      }
      face.rx_seen = true;
      face.rx_next_seq = frame.header.seq + 1;
      Bucket* bucket = nullptr;
      for (Bucket& b : buckets_) {
        if (b.face == face_id) bucket = &b;
      }
      if (bucket == nullptr) {
        buckets_.push_back({face_id, {}});
        bucket = &buckets_.back();
      }
      bucket->packets.emplace_back(frame.payload.begin(), frame.payload.end());
      return;
    }
    case FrameType::kHello: {
      ++ledger_.hello_rx;
      handle_hello(frame, face_id);
      return;
    }
    case FrameType::kVerdict:
    case FrameType::kBye:
      return;  // conformance-harness frames; a mesh router ignores them
  }
}

void MeshRouter::handle_hello(const Frame& frame, FaceId ingress) {
  const auto hello = decode_hello(frame.payload);
  if (!hello) return;
  if (hello->origin == config_.node_id) return;  // our own flood, looped back

  const auto it = lsdb_.find(hello->origin);
  const bool fresh = it == lsdb_.end() || hello->version > it->second.version;
  if (!fresh) return;
  lsdb_[hello->origin] = Lsa{hello->version, hello->neighbors, hello->capabilities};

  if (hello->ttl <= 1) return;
  // Re-flood with decremented TTL on every other live wire face.
  HelloImage fwd = *hello;
  fwd.ttl = static_cast<std::uint8_t>(hello->ttl - 1);
  const PacketBytes payload = encode_hello(fwd);
  for (std::size_t i = 0; i < faces_.size(); ++i) {
    if (i == ingress) continue;
    if (faces_[i].kind == FaceKind::kWire && faces_[i].up) {
      send_hello_on(static_cast<FaceId>(i), payload);
    }
  }
}

void MeshRouter::flush_ingress_bursts(std::uint64_t now) {
  for (Bucket& bucket : buckets_) {
    if (bucket.packets.empty()) continue;
    burst_refs_.assign(bucket.packets.begin(), bucket.packets.end());
    burst_results_.resize(bucket.packets.size());
    router_.process_batch(burst_refs_, bucket.face, now, burst_results_);
    for (std::size_t i = 0; i < bucket.packets.size(); ++i) {
      apply_verdict(bucket.face, bucket.packets[i], burst_results_[i]);
    }
    bucket.packets.clear();
  }
}

void MeshRouter::inject(std::span<std::uint8_t> packet, FaceId ingress) {
  const core::ProcessResult result =
      router_.process(packet, ingress, loop_.now_ns());
  apply_verdict(ingress, packet, result);
}

void MeshRouter::apply_verdict(FaceId ingress, std::span<std::uint8_t> packet,
                               const core::ProcessResult& result) {
  switch (result.action) {
    case core::Action::kForward: {
      if (result.respond_from_cache) {
        respond_from_cache(packet, ingress);
        return;
      }
      for (std::size_t i = 0; i < result.egress.size(); ++i) {
        if (forward_tap_) forward_tap_(ingress, result.egress[i], packet);
        send_data(result.egress[i], packet);
      }
      return;
    }
    case core::Action::kDrop: {
      ++drop_counts_[static_cast<std::size_t>(result.reason) % drop_counts_.size()];
      return;
    }
    case core::Action::kError: {
      ++drop_counts_[static_cast<std::size_t>(result.reason) % drop_counts_.size()];
      emit_error(packet, result.offending_key, ingress);
      return;
    }
  }
}

void MeshRouter::emit_error(std::span<const std::uint8_t> original,
                            core::OpKey offending, FaceId ingress) {
  // §2.4: notify the source out the face the offending packet arrived on.
  const auto header = core::DipHeader::parse(original);
  if (!header) return;
  const auto notification =
      security::make_fn_unsupported_packet(*header, offending, config_.node_id);
  if (!notification) return;  // no F_source: nobody to notify
  send_data(ingress, *notification);
}

void MeshRouter::respond_from_cache(std::span<const std::uint8_t> interest,
                                    FaceId ingress) {
  // Footnote 2: answer the interest from the content store, back out the
  // ingress face (mirrors netsim::DipRouterNode).
  auto& store = env().content_store;
  if (!store) return;
  const auto header = core::DipHeader::parse(interest);
  if (!header) return;
  const auto name_code = ndn::extract_name_code(*header);
  if (!name_code) return;
  const auto payload = store->lookup(*name_code);
  if (!payload) return;
  const auto data_header = ndn::make_data_header32(*name_code, core::NextHeader::kNone);
  if (!data_header) return;
  PacketBytes data = data_header->serialize();
  data.insert(data.end(), payload->begin(), payload->end());
  send_data(ingress, data);
}

void MeshRouter::send_data(FaceId face_id, std::span<const std::uint8_t> packet) {
  if (face_id >= faces_.size()) return;
  Face& face = faces_[face_id];
  if (face.kind == FaceKind::kLocal) {
    ++local_delivered_;
    if (face.delivery) face.delivery(packet, loop_.now_ns());
    return;
  }

  ++ledger_.transmitted;
  if (!face.up) {
    ++ledger_.blackholed;  // failed link: dark until re-enabled
    return;
  }

  PacketBytes bytes(packet.begin(), packet.end());
  const ImpairDecision d = face.impairer.next(loop_.now_ns(), bytes);
  if (d.blackout) {
    ++ledger_.blackholed;
    return;
  }
  if (d.drop) {
    ++ledger_.lost;
    return;
  }
  if (d.corrupt_bytes != 0) ++ledger_.corrupted;

  PacketBytes frame =
      encode_frame(FrameType::kData, config_.node_id, face.tx_seq++, bytes);
  if (d.extra_delay_ns != 0) {
    // Reorder hold-back: the copy leaves later, off a loop timer. Later
    // sends on this face overtake it — exactly netsim's reorder fault.
    ++holdbacks_;
    loop_.schedule_in(d.extra_delay_ns,
                      [this, face_id, f = std::move(frame), dup = d.duplicate] {
                        --holdbacks_;
                        emit_frame(face_id, f, false);
                        if (dup) emit_frame(face_id, f, true);
                      });
    return;
  }
  emit_frame(face_id, frame, false);
  if (d.duplicate) emit_frame(face_id, std::move(frame), true);
}

void MeshRouter::emit_frame(FaceId face_id, PacketBytes frame_bytes, bool duplicate) {
  Face& face = faces_[face_id];
  if (duplicate) ++ledger_.duplicated;
  const IoStatus st = socket_->send_to(face.peer, frame_bytes);
  if (st != IoStatus::kOk) {
    ++ledger_.dropped;  // transmit queue full (EAGAIN/ENOBUFS): tail drop
  }
}

void MeshRouter::write_stats(telemetry::StatsWriter& w) const {
  const std::string node_id = std::to_string(config_.node_id);
  const telemetry::Label labels[] = {{"node", node_id}};
  w.counter("dip_mesh_transmitted_total", labels, ledger_.transmitted);
  w.counter("dip_mesh_duplicated_total", labels, ledger_.duplicated);
  w.counter("dip_mesh_delivered_total", labels, ledger_.delivered);
  w.counter("dip_mesh_lost_total", labels, ledger_.lost);
  w.counter("dip_mesh_blackholed_total", labels, ledger_.blackholed);
  w.counter("dip_mesh_dropped_total", labels, ledger_.dropped);
  w.counter("dip_mesh_corrupted_total", labels, ledger_.corrupted);
  w.counter("dip_mesh_decode_errors_total", labels, ledger_.decode_errors);
  w.counter("dip_mesh_seq_gaps_total", labels, ledger_.seq_gaps);
  w.counter("dip_mesh_hello_tx_total", labels, ledger_.hello_tx);
  w.counter("dip_mesh_hello_rx_total", labels, ledger_.hello_rx);
  w.counter("dip_mesh_local_delivered_total", labels, local_delivered_);
  for (std::size_t r = 0; r < drop_counts_.size(); ++r) {
    if (drop_counts_[r] == 0) continue;
    const telemetry::Label drop_labels[] = {
        {"node", node_id},
        {"reason", core::to_string(static_cast<core::DropReason>(r))}};
    w.counter("dip_mesh_verdict_drops_total", drop_labels, drop_counts_[r]);
  }
}

}  // namespace dip::mesh
