#include "dip/mesh/impair.hpp"

#include <algorithm>

namespace dip::mesh {

ImpairDecision LinkImpairer::next(std::uint64_t now_ns,
                                  std::span<std::uint8_t> packet) {
  ImpairDecision d;
  ++packets_;
  if (!plan_.active()) return d;

  // Same draw order as netsim::Network::transmit: blackout (no PRNG),
  // drop, duplicate, corrupt, reorder — early returns still keep streams
  // aligned because skipped draws are gated on the same plan fields.
  if (plan_.in_blackout(now_ns)) {
    d.blackout = true;
    return d;
  }
  if (plan_.drop_rate > 0 && rng_.uniform() < plan_.drop_rate) {
    d.drop = true;
    return d;
  }
  if (plan_.duplicate_rate > 0 && rng_.uniform() < plan_.duplicate_rate) {
    d.duplicate = true;
  }
  if (plan_.corrupt_rate > 0 && rng_.uniform() < plan_.corrupt_rate &&
      !packet.empty()) {
    d.corrupt_bytes = static_cast<std::uint32_t>(
        1 + rng_.below(std::max<std::uint32_t>(plan_.corrupt_max_bytes, 1)));
  }
  if (plan_.reorder_rate > 0 && rng_.uniform() < plan_.reorder_rate &&
      plan_.reorder_window > 0) {
    d.extra_delay_ns = 1 + rng_.below(plan_.reorder_window);
  }
  if (d.corrupt_bytes != 0) {
    for (std::uint32_t k = 0; k < d.corrupt_bytes; ++k) {
      packet[rng_.below(packet.size())] ^=
          static_cast<std::uint8_t>(1 + rng_.below(255));
    }
  }
  return d;
}

}  // namespace dip::mesh
