#include "dip/mesh/event_loop.hpp"

#include <poll.h>

#include <algorithm>
#include <chrono>

namespace dip::mesh {

SteadyClock::SteadyClock() {
  epoch_ns_ = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t SteadyClock::now_ns() const {
  const auto now = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return now - epoch_ns_;
}

MeshEventLoop::MeshEventLoop(MeshClock* clock) : clock_(clock) {
  if (clock_ == nullptr) {
    owned_clock_ = std::make_unique<SteadyClock>();
    clock_ = owned_clock_.get();
  }
}

MeshEventLoop::SocketId MeshEventLoop::add_socket(DatagramSocket& socket,
                                                  Callback on_readable) {
  const SocketId id = next_socket_id_++;
  sources_.push_back({id, &socket, std::move(on_readable), true});
  return id;
}

void MeshEventLoop::remove_socket(SocketId id) {
  for (Source& s : sources_) {
    if (s.id == id) s.alive = false;
  }
  if (!dispatching_) compact_sources();
}

void MeshEventLoop::compact_sources() {
  std::erase_if(sources_, [](const Source& s) { return !s.alive; });
}

std::size_t MeshEventLoop::socket_count() const noexcept {
  std::size_t n = 0;
  for (const Source& s : sources_) n += s.alive ? 1 : 0;
  return n;
}

MeshEventLoop::TimerId MeshEventLoop::schedule_at(std::uint64_t at_ns,
                                                  Callback fn) {
  const TimerId id = next_timer_id_++;
  timers_.push({at_ns, id, std::move(fn)});
  live_timers_.insert(id);
  return id;
}

bool MeshEventLoop::cancel_timer(TimerId id) {
  return live_timers_.erase(id) > 0;
}

std::uint64_t MeshEventLoop::ns_to_next_timer() const {
  // Cancelled entries may head the queue; they are popped lazily by
  // fire_due_timers, so peek conservatively (an early wakeup is harmless).
  if (live_timers_.empty()) return ~std::uint64_t{0};
  const std::uint64_t now = clock_->now_ns();
  const std::uint64_t at = timers_.top().at;
  return at > now ? at - now : 0;
}

std::size_t MeshEventLoop::fire_due_timers() {
  // Collect everything due *now* first, then run: a callback that schedules
  // a new already-due timer waits for the next round (no starvation).
  const std::uint64_t now = clock_->now_ns();
  std::vector<Timer> due;
  while (!timers_.empty() && timers_.top().at <= now) {
    Timer t = std::move(const_cast<Timer&>(timers_.top()));
    timers_.pop();
    if (live_timers_.erase(t.id) > 0) due.push_back(std::move(t));
  }
  for (Timer& t : due) {
    ++stats_.timers_fired;
    t.fn();
  }
  return due.size();
}

std::size_t MeshEventLoop::dispatch_readable() {
  std::size_t ran = 0;
  dispatching_ = true;
  // Index loop: handlers may add_socket (append) — new sources join the
  // next round, and the vector may reallocate under us otherwise.
  const std::size_t count = sources_.size();
  for (std::size_t i = 0; i < count; ++i) {
    if (!sources_[i].alive) continue;
    if (!sources_[i].socket->poll_readable()) continue;
    ++stats_.reads_dispatched;
    ++ran;
    sources_[i].on_readable();
  }
  dispatching_ = false;
  compact_sources();
  return ran;
}

std::size_t MeshEventLoop::run_ready() {
  ++stats_.wakeups;
  std::size_t n = fire_due_timers();
  n += dispatch_readable();
  return n;
}

std::size_t MeshEventLoop::run_until_idle(std::size_t max_rounds) {
  std::size_t total = 0;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    const std::size_t n = run_ready();
    if (n == 0) break;
    total += n;
  }
  return total;
}

std::size_t MeshEventLoop::run(std::uint64_t deadline_ns) {
  stopped_ = false;
  std::size_t total = 0;
  while (!stopped_) {
    const std::uint64_t now = clock_->now_ns();
    if (now >= deadline_ns) break;

    total += run_ready();
    if (stopped_) break;

    // Anything in-memory still readable? Then don't park at all.
    bool mock_ready = false;
    std::vector<pollfd> fds;
    fds.reserve(sources_.size());
    for (const Source& s : sources_) {
      if (!s.alive) continue;
      if (s.socket->fd() >= 0) {
        fds.push_back({s.socket->fd(), POLLIN, 0});
      } else if (s.socket->poll_readable()) {
        mock_ready = true;
      }
    }

    const std::uint64_t to_timer = ns_to_next_timer();
    const std::uint64_t to_deadline = deadline_ns - clock_->now_ns();
    const std::uint64_t wait_ns = std::min(to_timer, to_deadline);
    if (wait_ns == ~std::uint64_t{0} && fds.empty() && !mock_ready) {
      break;  // nothing to wait for: quiescent
    }
    int timeout_ms = 0;
    if (!mock_ready && wait_ns > 0) {
      timeout_ms = static_cast<int>(
          std::min<std::uint64_t>(wait_ns / 1'000'000 + 1, 1000));
    }
    if (fds.empty()) {
      if (timeout_ms > 0 && !mock_ready) {
        // Manual-clock loops never reach here (tests use run_ready); with a
        // real clock an empty poll() is just a bounded sleep to the timer.
        ::poll(nullptr, 0, timeout_ms);
      }
    } else {
      ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
    }
  }
  return total;
}

void MeshEventLoop::write_stats(telemetry::StatsWriter& w) const {
  w.counter("dip_mesh_loop_wakeups_total", {}, stats_.wakeups);
  w.counter("dip_mesh_loop_timers_fired_total", {}, stats_.timers_fired);
  w.counter("dip_mesh_loop_reads_dispatched_total", {}, stats_.reads_dispatched);
  w.gauge("dip_mesh_loop_sockets", {}, static_cast<double>(socket_count()));
  w.gauge("dip_mesh_loop_pending_timers", {},
          static_cast<double>(pending_timers()));
}

}  // namespace dip::mesh
