#include "dip/mesh/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

namespace dip::mesh {

namespace {

[[nodiscard]] sockaddr_in to_sockaddr(const Endpoint& e) noexcept {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(e.ip);
  sa.sin_port = htons(e.port);
  return sa;
}

[[nodiscard]] Endpoint from_sockaddr(const sockaddr_in& sa) noexcept {
  return {ntohl(sa.sin_addr.s_addr), ntohs(sa.sin_port)};
}

void raise_buffer(int fd, int option) noexcept {
  // Best effort toward the unprivileged rmem_max/wmem_max ceiling; the
  // default ~208 kB holds ~1.4k mesh datagrams, the ceiling ~4x that.
  for (const int bytes : {8 << 20, 4 << 20, 1 << 20}) {
    if (::setsockopt(fd, SOL_SOCKET, option, &bytes, sizeof bytes) == 0) return;
  }
}

}  // namespace

UdpSocket::UdpSocket(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (fd_ < 0) {
    throw std::system_error(errno, std::generic_category(), "mesh socket()");
  }
  raise_buffer(fd_, SO_RCVBUF);
  raise_buffer(fd_, SO_SNDBUF);
  sockaddr_in sa = to_sockaddr({0x7F000001, port});
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
    const int err = errno;
    ::close(fd_);
    throw std::system_error(err, std::generic_category(), "mesh bind()");
  }
  socklen_t len = sizeof sa;
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len);
  local_ = from_sockaddr(sa);
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

bool UdpSocket::poll_readable() const noexcept {
  pollfd p{fd_, POLLIN, 0};
  return ::poll(&p, 1, 0) > 0 && (p.revents & POLLIN) != 0;
}

IoStatus UdpSocket::send_to(const Endpoint& to,
                            std::span<const std::uint8_t> bytes) {
  const sockaddr_in sa = to_sockaddr(to);
  const ssize_t n =
      ::sendto(fd_, bytes.data(), bytes.size(), 0,
               reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
  if (n == static_cast<ssize_t>(bytes.size())) return IoStatus::kOk;
  if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS)) {
    return IoStatus::kAgain;
  }
  // ECONNREFUSED from a previous send's ICMP error is transient on
  // loopback (the peer socket raced away); report kAgain so the caller
  // buckets it rather than tearing the face down.
  if (n < 0 && errno == ECONNREFUSED) return IoStatus::kAgain;
  return IoStatus::kError;
}

RecvOutcome UdpSocket::recv_from(std::span<std::uint8_t> buf) {
  sockaddr_in sa{};
  socklen_t slen = sizeof sa;
  const ssize_t n =
      ::recvfrom(fd_, buf.data(), buf.size(), MSG_TRUNC,
                 reinterpret_cast<sockaddr*>(&sa), &slen);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return {.status = IoStatus::kAgain};
    if (errno == ECONNREFUSED) return {.status = IoStatus::kAgain};  // stale ICMP error
    return {.status = IoStatus::kError};
  }
  RecvOutcome out;
  out.status = IoStatus::kOk;
  out.size = static_cast<std::size_t>(n);  // MSG_TRUNC: true datagram size
  out.truncated = out.size > buf.size();
  out.from = from_sockaddr(sa);
  return out;
}

std::unique_ptr<MockSocket> MockFabric::create(std::uint16_t port) {
  const Endpoint local{0x7F000001, port};
  auto inbox = std::make_shared<Inbox>();
  inboxes_[local] = inbox;
  return std::unique_ptr<MockSocket>(new MockSocket(this, local, std::move(inbox)));
}

IoStatus MockSocket::send_to(const Endpoint& to,
                             std::span<const std::uint8_t> bytes) {
  if (fail_sends_ > 0) {
    --fail_sends_;
    return IoStatus::kAgain;
  }
  const auto it = fabric_->inboxes_.find(to);
  if (it == fabric_->inboxes_.end()) {
    ++fabric_->unrouted_;  // real UDP: sent into the void, no local error
    return IoStatus::kOk;
  }
  it->second->queue.push_back(
      {local_, std::vector<std::uint8_t>(bytes.begin(), bytes.end())});
  return IoStatus::kOk;
}

RecvOutcome MockSocket::recv_from(std::span<std::uint8_t> buf) {
  if (spurious_) {
    spurious_ = false;
    return {.status = IoStatus::kAgain};
  }
  if (inbox_->queue.empty()) return {.status = IoStatus::kAgain};
  MockFabric::Datagram d = std::move(inbox_->queue.front());
  inbox_->queue.pop_front();
  RecvOutcome out;
  out.status = IoStatus::kOk;
  out.size = d.bytes.size();
  out.truncated = d.bytes.size() > buf.size();
  out.from = d.from;
  std::memcpy(buf.data(), d.bytes.data(), std::min(buf.size(), d.bytes.size()));
  return out;
}

}  // namespace dip::mesh
