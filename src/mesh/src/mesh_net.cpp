#include "dip/mesh/mesh_net.hpp"

#include <algorithm>

#include "dip/netsim/dip_node.hpp"

namespace dip::mesh {

MeshNet::MeshNet(MeshConfig config)
    : config_(std::move(config)),
      fabric_(config_.use_mock ? std::make_unique<MockFabric>() : nullptr),
      loop_(config_.clock),
      registry_(config_.registry ? config_.registry : netsim::make_default_registry()) {
  if (config_.capabilities.size() == 0) {
    config_.capabilities = bootstrap::full_capability_set();
  }
}

MeshNet::~MeshNet() = default;

std::unique_ptr<DatagramSocket> MeshNet::make_socket() {
  if (fabric_) return fabric_->create(next_mock_port_++);
  return std::make_unique<UdpSocket>();
}

MeshRouter& MeshNet::add_router() {
  MeshRouter::Config cfg;
  cfg.node_id = static_cast<std::uint32_t>(routers_.size() + 1);
  cfg.validation = config_.validation;
  cfg.fault_seed = config_.fault_seed;
  cfg.capabilities = config_.capabilities;
  cfg.strategy = config_.strategy;
  auto router = std::make_unique<MeshRouter>(cfg, loop_, make_socket(), registry_);
  const std::size_t index = routers_.size();
  const FaceId local = router->add_local_face(
      [this, index](std::span<const std::uint8_t> packet, std::uint64_t now) {
        if (delivery_) delivery_(index, packet, now);
      });
  routers_.push_back(std::move(router));
  local_faces_.push_back(local);
  return *routers_.back();
}

void MeshNet::connect(std::size_t a, std::size_t b, const netsim::FaultPlan& faults) {
  MeshRouter& ra = router(a);
  MeshRouter& rb = router(b);
  (void)ra.add_wire_face(rb.endpoint(), next_ordinal_++, faults);
  (void)rb.add_wire_face(ra.endpoint(), next_ordinal_++, faults);
}

void MeshNet::build_line(std::size_t n, const netsim::FaultPlan& faults) {
  while (routers_.size() < n) add_router();
  for (std::size_t i = 0; i + 1 < n; ++i) connect(i, i + 1, faults);
}

void MeshNet::build_torus(std::size_t rows, std::size_t cols,
                          const netsim::FaultPlan& faults) {
  const std::size_t n = rows * cols;
  while (routers_.size() < n) add_router();
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t here = r * cols + c;
      const std::size_t right = r * cols + (c + 1) % cols;
      const std::size_t down = ((r + 1) % rows) * cols + c;
      if (cols > 1) connect(here, right, faults);
      if (rows > 1) connect(here, down, faults);
    }
  }
}

bool MeshNet::all_discovered() const {
  return std::all_of(routers_.begin(), routers_.end(), [this](const auto& r) {
    return r->lsdb().size() == routers_.size();
  });
}

bool MeshNet::discover(std::uint64_t budget_ns) {
  const std::uint64_t deadline = loop_.now_ns() + budget_ns;

  // Round 1: TTL-1 probes teach direct neighbors our node id.
  for (auto& r : routers_) r->originate_lsa(1);
  loop_.run_until_idle();
  while (!fabric_ && loop_.now_ns() < deadline) {
    // Real UDP: probes may still be in the kernel; park in short slices.
    if (loop_.run(loop_.now_ns() + kMillisecond) == 0) break;
  }

  // Round 2: full LSAs flood mesh-wide (TTL 64 covers any sane diameter).
  for (auto& r : routers_) r->originate_lsa(64);
  loop_.run_until_idle();
  while (!all_discovered() && loop_.now_ns() < deadline) {
    if (fabric_) {
      if (loop_.run_until_idle() == 0) break;  // mock: nothing left to move
    } else {
      (void)loop_.run(loop_.now_ns() + kMillisecond);
    }
  }
  return all_discovered();
}

std::size_t MeshNet::recompute_routes() {
  std::size_t routed = 0;
  for (std::size_t i = 0; i < routers_.size(); ++i) {
    routed += publish_routes(*routers_[i], local_faces_[i]);
  }
  return routed;
}

void MeshNet::fail_link(std::size_t a, std::size_t b, std::uint8_t lsa_ttl) {
  MeshRouter& ra = router(a);
  MeshRouter& rb = router(b);
  if (const auto f = ra.face_toward(rb.node_id())) ra.set_face_up(*f, false);
  if (const auto f = rb.face_toward(ra.node_id())) rb.set_face_up(*f, false);
  ra.originate_lsa(lsa_ttl);
  rb.originate_lsa(lsa_ttl);
}

std::size_t MeshNet::pending_holdbacks() const {
  std::size_t n = 0;
  for (const auto& r : routers_) n += r->pending_holdbacks();
  return n;
}

bool MeshNet::quiesce(std::uint64_t budget_ns, int idle_polls) {
  const std::uint64_t deadline = loop_.now_ns() + budget_ns;
  int idle = 0;
  while (loop_.now_ns() < deadline) {
    const std::size_t n = loop_.run_ready();
    if (n == 0 && pending_holdbacks() == 0) {
      if (++idle >= idle_polls) return true;
      // Let in-kernel datagrams (or a pending timer) surface before the
      // next idle check.
      (void)loop_.run(loop_.now_ns() + kMillisecond);
    } else {
      idle = 0;
    }
  }
  return pending_holdbacks() == 0;
}

bool MeshNet::drain(ManualClock& clock, std::uint64_t max_advance_ns) {
  const std::uint64_t horizon = clock.now_ns() + max_advance_ns;
  while (true) {
    loop_.run_until_idle();
    const auto next = loop_.next_timer_delay();
    if (!next) return pending_holdbacks() == 0;
    if (clock.now_ns() + *next > horizon) return false;
    clock.advance(*next);
  }
}

WireLedger MeshNet::aggregate_ledger() const {
  WireLedger total;
  for (const auto& r : routers_) total += r->ledger();
  return total;
}

void MeshNet::write_stats(telemetry::StatsWriter& w) const {
  const WireLedger total = aggregate_ledger();
  w.counter("dip_mesh_transmitted_total", {}, total.transmitted);
  w.counter("dip_mesh_duplicated_total", {}, total.duplicated);
  w.counter("dip_mesh_delivered_total", {}, total.delivered);
  w.counter("dip_mesh_lost_total", {}, total.lost);
  w.counter("dip_mesh_blackholed_total", {}, total.blackholed);
  w.counter("dip_mesh_dropped_total", {}, total.dropped);
  w.counter("dip_mesh_corrupted_total", {}, total.corrupted);
  w.counter("dip_mesh_decode_errors_total", {}, total.decode_errors);
  w.counter("dip_mesh_seq_gaps_total", {}, total.seq_gaps);
  w.counter("dip_mesh_hello_tx_total", {}, total.hello_tx);
  w.counter("dip_mesh_hello_rx_total", {}, total.hello_rx);
  w.gauge("dip_mesh_routers", {}, static_cast<double>(routers_.size()));
  loop_.write_stats(w);
}

}  // namespace dip::mesh
