#include "dip/mesh/frame.hpp"

namespace dip::mesh {

namespace {

/// XOR check over the first 18 header bytes, domain-separated from the DIP
/// basic-header checksum so a frame header never verifies as a DIP header.
[[nodiscard]] std::uint8_t frame_checksum(
    std::span<const std::uint8_t> first18) noexcept {
  std::uint8_t x = 0x5C;
  for (std::size_t i = 0; i < 18 && i < first18.size(); ++i) x ^= first18[i];
  return x;
}

void put16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put16(out, static_cast<std::uint16_t>(v >> 16));
  put16(out, static_cast<std::uint16_t>(v));
}

void put64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put32(out, static_cast<std::uint32_t>(v >> 32));
  put32(out, static_cast<std::uint32_t>(v));
}

[[nodiscard]] std::uint16_t get16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

[[nodiscard]] std::uint32_t get32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(get16(p)) << 16) | get16(p + 2);
}

[[nodiscard]] std::uint64_t get64(const std::uint8_t* p) {
  return (static_cast<std::uint64_t>(get32(p)) << 32) | get32(p + 4);
}

}  // namespace

std::vector<std::uint8_t> encode_frame(FrameType type, std::uint32_t src_node,
                                       std::uint64_t seq,
                                       std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  out.reserve(FrameHeader::kWireSize + payload.size());
  put16(out, FrameHeader::kMagic);
  out.push_back(FrameHeader::kVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  put32(out, src_node);
  put64(out, seq);
  put16(out, static_cast<std::uint16_t>(payload.size()));
  out.push_back(frame_checksum(out));
  out.push_back(0);  // reserved
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

bytes::Result<Frame> decode_frame(std::span<const std::uint8_t> datagram) {
  if (datagram.size() < FrameHeader::kWireSize) {
    return bytes::Err(bytes::Error::kTruncated);
  }
  if (get16(datagram.data()) != FrameHeader::kMagic ||
      datagram[2] != FrameHeader::kVersion || datagram[19] != 0) {
    return bytes::Err(bytes::Error::kMalformed);
  }
  if (datagram[18] != frame_checksum(datagram.subspan(0, 18))) {
    return bytes::Err(bytes::Error::kChecksum);
  }
  Frame f;
  f.header.type = static_cast<FrameType>(datagram[3]);
  switch (f.header.type) {
    case FrameType::kData:
    case FrameType::kHello:
    case FrameType::kVerdict:
    case FrameType::kBye:
      break;
    default:
      return bytes::Err(bytes::Error::kMalformed);
  }
  f.header.src_node = get32(datagram.data() + 4);
  f.header.seq = get64(datagram.data() + 8);
  f.header.payload_len = get16(datagram.data() + 16);
  if (f.header.payload_len > FrameHeader::kMaxPayload) {
    return bytes::Err(bytes::Error::kMalformed);
  }
  const std::size_t want = FrameHeader::kWireSize + f.header.payload_len;
  if (datagram.size() < want) return bytes::Err(bytes::Error::kTruncated);
  if (datagram.size() > want) return bytes::Err(bytes::Error::kMalformed);
  f.payload = datagram.subspan(FrameHeader::kWireSize, f.header.payload_len);
  return f;
}

}  // namespace dip::mesh
