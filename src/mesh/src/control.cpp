#include "dip/mesh/control.hpp"

#include <algorithm>
#include <deque>

namespace dip::mesh {

fib::Ipv4Addr addr_of(std::uint32_t node) noexcept {
  return fib::ipv4_from_u32((10u << 24) | ((node & 0xFFFFu) << 8) | 1u);
}

fib::Prefix<32> prefix_of(std::uint32_t node) noexcept {
  fib::Prefix<32> p{fib::ipv4_from_u32((10u << 24) | ((node & 0xFFFFu) << 8)), 24};
  p.normalize();
  return p;
}

namespace {

/// Both endpoints must advertise the edge (see header comment).
[[nodiscard]] bool symmetric_edge(const LinkStateDb& lsdb, std::uint32_t a,
                                  std::uint32_t b) {
  const auto ia = lsdb.find(a);
  const auto ib = lsdb.find(b);
  if (ia == lsdb.end() || ib == lsdb.end()) return false;
  const auto& na = ia->second.neighbors;
  const auto& nb = ib->second.neighbors;
  return std::binary_search(na.begin(), na.end(), b) &&
         std::binary_search(nb.begin(), nb.end(), a);
}

}  // namespace

std::map<std::uint32_t, std::uint32_t> compute_next_hops(const LinkStateDb& lsdb,
                                                         std::uint32_t self) {
  std::map<std::uint32_t, std::uint32_t> first_hop;  // dest -> neighbor of self
  if (!lsdb.contains(self)) return first_hop;

  // BFS layer by layer; neighbors are stored sorted, so the first parent to
  // claim a node is the one with the smallest first-hop id at minimal depth.
  std::map<std::uint32_t, std::uint32_t> via;  // node -> first hop used
  std::deque<std::uint32_t> frontier{self};
  via[self] = self;
  while (!frontier.empty()) {
    const std::uint32_t u = frontier.front();
    frontier.pop_front();
    const auto it = lsdb.find(u);
    if (it == lsdb.end()) continue;
    for (const std::uint32_t v : it->second.neighbors) {
      if (via.contains(v) || !symmetric_edge(lsdb, u, v)) continue;
      via[v] = u == self ? v : via[u];
      first_hop[v] = via[v];
      frontier.push_back(v);
    }
  }
  return first_hop;
}

std::size_t publish_routes(MeshRouter& router, FaceId local_face) {
  const std::uint32_t self = router.node_id();
  const auto hops = compute_next_hops(router.lsdb(), self);
  ctrl::RouteJournal& journal = router.journal();

  std::size_t routed = 0;
  journal.add_route32(prefix_of(self), local_face);
  ++routed;
  for (const auto& [origin, lsa] : router.lsdb()) {
    if (origin == self) continue;
    const auto hop = hops.find(origin);
    const auto face = hop != hops.end()
                          ? router.face_toward(hop->second)
                          : std::nullopt;
    if (face) {
      journal.add_route32(prefix_of(origin), *face);
      ++routed;
    } else {
      journal.remove_route32(prefix_of(origin));  // unreachable: withdraw
    }
  }
  journal.flush();
  return routed;
}

bootstrap::AsGraph as_graph_of(const LinkStateDb& lsdb) {
  bootstrap::AsGraph graph;
  for (const auto& [origin, lsa] : lsdb) {
    graph.add_as(origin, lsa.capabilities);
  }
  for (const auto& [origin, lsa] : lsdb) {
    for (const std::uint32_t n : lsa.neighbors) {
      if (origin < n && symmetric_edge(lsdb, origin, n)) {
        (void)graph.add_link(origin, n);
      }
    }
  }
  return graph;
}

}  // namespace dip::mesh
