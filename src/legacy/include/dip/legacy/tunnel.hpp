// DIP-over-IPv6 tunneling — incremental deployment (§2.4).
//
// "In the early stage of deployment, two DIP domains may not be directly
// connected. One could use tunneling technology to build end-to-end path
// across DIP-agnostic domains."
//
// The tunnel is a plain IPv6 encapsulation: the inner DIP packet rides as
// the IPv6 payload with next_header = kNextHeaderDip. Legacy routers in the
// middle forward on the outer IPv6 header only.
#pragma once

#include <vector>

#include "dip/bytes/expected.hpp"
#include "dip/legacy/ipv6.hpp"

namespace dip::legacy {

class Ipv6Tunnel {
 public:
  Ipv6Tunnel(const fib::Ipv6Addr& local, const fib::Ipv6Addr& remote)
      : local_(local), remote_(remote) {}

  /// Encapsulate a DIP packet for transit to the remote tunnel endpoint.
  [[nodiscard]] std::vector<std::uint8_t> encapsulate(
      std::span<const std::uint8_t> dip_packet) const;

  /// Decapsulate at the tunnel endpoint. Verifies the outer header is
  /// addressed to us and carries DIP.
  [[nodiscard]] bytes::Result<std::vector<std::uint8_t>> decapsulate(
      std::span<const std::uint8_t> ipv6_packet) const;

  [[nodiscard]] const fib::Ipv6Addr& local() const noexcept { return local_; }
  [[nodiscard]] const fib::Ipv6Addr& remote() const noexcept { return remote_; }

 private:
  fib::Ipv6Addr local_;
  fib::Ipv6Addr remote_;
};

}  // namespace dip::legacy
