// Native IPv6 header codec and forwarding — the second Figure-2 baseline
// (Table 2 row "IPv6 forwarding", 40 bytes).
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "dip/bytes/expected.hpp"
#include "dip/fib/address.hpp"
#include "dip/fib/lpm.hpp"
#include "dip/legacy/ipv4.hpp"  // ForwardDecision/ForwardStatus

namespace dip::legacy {

struct Ipv6Header {
  static constexpr std::size_t kWireSize = 40;
  static constexpr std::uint8_t kNextHeaderDip = 0xfd;  // experimental: DIP-in-IPv6

  std::uint8_t traffic_class = 0;
  std::uint32_t flow_label = 0;  // 20 bits
  std::uint16_t payload_length = 0;
  std::uint8_t next_header = 59;  // No Next Header
  std::uint8_t hop_limit = 64;
  fib::Ipv6Addr src;
  fib::Ipv6Addr dst;

  [[nodiscard]] bytes::Status serialize(std::span<std::uint8_t> out) const;
  [[nodiscard]] static bytes::Result<Ipv6Header> parse(
      std::span<const std::uint8_t> data);
};

/// Software IPv6 forwarder: hop-limit handling + 128-bit LPM.
class Ipv6Forwarder {
 public:
  explicit Ipv6Forwarder(std::unique_ptr<fib::Ipv6Lpm> table)
      : table_(std::move(table)) {}

  [[nodiscard]] fib::Ipv6Lpm& table() noexcept { return *table_; }

  [[nodiscard]] ForwardDecision forward(std::span<std::uint8_t> packet) const;

 private:
  std::unique_ptr<fib::Ipv6Lpm> table_;
};

}  // namespace dip::legacy
