// Native IPv4 header codec and forwarding — the Figure-2/Table-2 baseline.
//
// The paper measures IPv4/IPv6 forwarding as its baselines; this module is
// that comparator: a real RFC-791 header (20 bytes, Table 2 row "IPv4
// forwarding") with Internet checksum, TTL handling, and LPM next-hop
// selection.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "dip/bytes/expected.hpp"
#include "dip/fib/address.hpp"
#include "dip/fib/lpm.hpp"

namespace dip::legacy {

struct Ipv4Header {
  static constexpr std::size_t kWireSize = 20;  // no options
  static constexpr std::uint8_t kProtocolDip = 0xfd;  // experimental: DIP-in-IPv4

  std::uint8_t dscp_ecn = 0;
  std::uint16_t total_length = kWireSize;
  std::uint16_t identification = 0;
  std::uint16_t flags_fragment = 0x4000;  // DF
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  fib::Ipv4Addr src;
  fib::Ipv4Addr dst;

  [[nodiscard]] bytes::Status serialize(std::span<std::uint8_t> out) const;
  [[nodiscard]] static bytes::Result<Ipv4Header> parse(
      std::span<const std::uint8_t> data);
};

/// RFC 1071 Internet checksum over `data`.
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept;

enum class ForwardStatus : std::uint8_t { kForwarded, kNoRoute, kTtlExpired, kBadPacket };

struct ForwardDecision {
  ForwardStatus status = ForwardStatus::kBadPacket;
  fib::NextHop next_hop = fib::kNoRoute;
};

/// Software IPv4 forwarder: validate checksum, decrement TTL in place
/// (recomputing the checksum incrementally), look up the next hop.
class Ipv4Forwarder {
 public:
  explicit Ipv4Forwarder(std::unique_ptr<fib::Ipv4Lpm> table)
      : table_(std::move(table)) {}

  [[nodiscard]] fib::Ipv4Lpm& table() noexcept { return *table_; }

  /// `packet` = header + payload (header mutated: TTL/checksum).
  [[nodiscard]] ForwardDecision forward(std::span<std::uint8_t> packet) const;

 private:
  std::unique_ptr<fib::Ipv4Lpm> table_;
};

}  // namespace dip::legacy
