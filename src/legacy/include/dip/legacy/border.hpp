// Border-router backward compatibility (§2.4).
//
// "The existing network protocol header can be viewed as an FN location in
// the DIP. ... the border router can remove the basic header and FN
// definitions, so that the packet is routed only based on the FN operations
// that are recognized by the legacy devices. Similarly, to process packets
// from a legacy domain, the inbound border router needs to add back the DIP
// basic header and FN definitions."
//
// Concretely: a DIP packet carrying a *complete native IPv6/IPv4 header* as
// its FN-locations block can be down-converted to a plain legacy packet by
// stripping the first 6 + 6*fn_num bytes, and up-converted by prepending
// them again. The FN program for such carrier packets describes the legacy
// forwarding semantics (match + source triples over the address fields at
// their native offsets).
#pragma once

#include <vector>

#include "dip/bytes/expected.hpp"
#include "dip/core/header.hpp"
#include "dip/legacy/ipv4.hpp"
#include "dip/legacy/ipv6.hpp"

namespace dip::legacy {

/// Wrap a native IPv6 packet (header+payload) into a DIP carrier header:
/// the whole IPv6 header becomes the locations block, with F_128_match over
/// the destination field (native offset 24B=192b) and F_source over the
/// source field (offset 8B=64b).
[[nodiscard]] bytes::Result<core::DipHeader> wrap_ipv6(
    std::span<const std::uint8_t> ipv6_header);

/// Same for IPv4: F_32_match over offset 16B=128b, F_source over 12B=96b.
[[nodiscard]] bytes::Result<core::DipHeader> wrap_ipv4(
    std::span<const std::uint8_t> ipv4_header);

/// Outbound border router: strip basic header + FN definitions, leaving the
/// raw locations block (the legacy header) followed by the payload.
/// Returns the legacy packet bytes.
[[nodiscard]] bytes::Result<std::vector<std::uint8_t>> strip_to_legacy(
    std::span<const std::uint8_t> dip_packet);

/// Inbound border router: classify a legacy packet by its version nibble
/// and add back the DIP basic header and FN definitions.
[[nodiscard]] bytes::Result<std::vector<std::uint8_t>> add_from_legacy(
    std::span<const std::uint8_t> legacy_packet);

}  // namespace dip::legacy
