#include "dip/legacy/ipv6.hpp"

#include <algorithm>

#include "dip/bytes/cursor.hpp"

namespace dip::legacy {

bytes::Status Ipv6Header::serialize(std::span<std::uint8_t> out) const {
  if (out.size() < kWireSize) return bytes::Unexpected{bytes::Error::kOverflow};
  bytes::Writer w(out);
  const std::uint32_t vtf = (6u << 28) | (static_cast<std::uint32_t>(traffic_class) << 20) |
                            (flow_label & 0xfffff);
  (void)w.u32(vtf);
  (void)w.u16(payload_length);
  (void)w.u8(next_header);
  (void)w.u8(hop_limit);
  (void)w.bytes(src.bytes);
  (void)w.bytes(dst.bytes);
  return {};
}

bytes::Result<Ipv6Header> Ipv6Header::parse(std::span<const std::uint8_t> data) {
  if (data.size() < kWireSize) return bytes::Err(bytes::Error::kTruncated);
  if ((data[0] >> 4) != 6) return bytes::Err(bytes::Error::kMalformed);

  Ipv6Header h;
  h.traffic_class = static_cast<std::uint8_t>(((data[0] & 0x0f) << 4) | (data[1] >> 4));
  h.flow_label = (static_cast<std::uint32_t>(data[1] & 0x0f) << 16) |
                 (static_cast<std::uint32_t>(data[2]) << 8) | data[3];
  h.payload_length = static_cast<std::uint16_t>((data[4] << 8) | data[5]);
  h.next_header = data[6];
  h.hop_limit = data[7];
  std::copy(data.begin() + 8, data.begin() + 24, h.src.bytes.begin());
  std::copy(data.begin() + 24, data.begin() + 40, h.dst.bytes.begin());
  return h;
}

ForwardDecision Ipv6Forwarder::forward(std::span<std::uint8_t> packet) const {
  if (packet.size() < Ipv6Header::kWireSize || (packet[0] >> 4) != 6) {
    return {ForwardStatus::kBadPacket, {}};
  }
  if (packet[7] <= 1) return {ForwardStatus::kTtlExpired, {}};
  packet[7] -= 1;

  fib::Ipv6Addr dst;
  std::copy(packet.begin() + 24, packet.begin() + 40, dst.bytes.begin());
  const auto nh = table_->lookup(dst);
  if (!nh) return {ForwardStatus::kNoRoute, {}};
  return {ForwardStatus::kForwarded, *nh};
}

}  // namespace dip::legacy
