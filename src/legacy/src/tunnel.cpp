#include "dip/legacy/tunnel.hpp"

namespace dip::legacy {

std::vector<std::uint8_t> Ipv6Tunnel::encapsulate(
    std::span<const std::uint8_t> dip_packet) const {
  Ipv6Header outer;
  outer.next_header = Ipv6Header::kNextHeaderDip;
  outer.payload_length = static_cast<std::uint16_t>(dip_packet.size());
  outer.src = local_;
  outer.dst = remote_;

  std::vector<std::uint8_t> out(Ipv6Header::kWireSize + dip_packet.size());
  (void)outer.serialize(out);
  std::copy(dip_packet.begin(), dip_packet.end(),
            out.begin() + Ipv6Header::kWireSize);
  return out;
}

bytes::Result<std::vector<std::uint8_t>> Ipv6Tunnel::decapsulate(
    std::span<const std::uint8_t> ipv6_packet) const {
  const auto outer = Ipv6Header::parse(ipv6_packet);
  if (!outer) return bytes::Err(outer.error());
  if (outer->next_header != Ipv6Header::kNextHeaderDip) {
    return bytes::Err(bytes::Error::kUnsupported);
  }
  if (outer->dst != local_) return bytes::Err(bytes::Error::kMalformed);

  const auto inner_size = static_cast<std::size_t>(outer->payload_length);
  if (ipv6_packet.size() < Ipv6Header::kWireSize + inner_size) {
    return bytes::Err(bytes::Error::kTruncated);
  }
  return std::vector<std::uint8_t>(
      ipv6_packet.begin() + Ipv6Header::kWireSize,
      ipv6_packet.begin() + static_cast<std::ptrdiff_t>(Ipv6Header::kWireSize + inner_size));
}

}  // namespace dip::legacy
