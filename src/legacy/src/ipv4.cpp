#include "dip/legacy/ipv4.hpp"

#include "dip/bytes/cursor.hpp"

namespace dip::legacy {

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i] << 8);
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

bytes::Status Ipv4Header::serialize(std::span<std::uint8_t> out) const {
  if (out.size() < kWireSize) return bytes::Unexpected{bytes::Error::kOverflow};
  bytes::Writer w(out);
  (void)w.u8(0x45);  // version 4, IHL 5
  (void)w.u8(dscp_ecn);
  (void)w.u16(total_length);
  (void)w.u16(identification);
  (void)w.u16(flags_fragment);
  (void)w.u8(ttl);
  (void)w.u8(protocol);
  (void)w.u16(0);  // checksum placeholder
  (void)w.bytes(src.bytes);
  (void)w.bytes(dst.bytes);
  const std::uint16_t check = internet_checksum(out.subspan(0, kWireSize));
  out[10] = static_cast<std::uint8_t>(check >> 8);
  out[11] = static_cast<std::uint8_t>(check);
  return {};
}

bytes::Result<Ipv4Header> Ipv4Header::parse(std::span<const std::uint8_t> data) {
  if (data.size() < kWireSize) return bytes::Err(bytes::Error::kTruncated);
  if ((data[0] >> 4) != 4) return bytes::Err(bytes::Error::kMalformed);
  if ((data[0] & 0x0f) != 5) return bytes::Err(bytes::Error::kUnsupported);  // options
  if (internet_checksum(data.subspan(0, kWireSize)) != 0) {
    return bytes::Err(bytes::Error::kChecksum);
  }

  Ipv4Header h;
  h.dscp_ecn = data[1];
  h.total_length = static_cast<std::uint16_t>((data[2] << 8) | data[3]);
  h.identification = static_cast<std::uint16_t>((data[4] << 8) | data[5]);
  h.flags_fragment = static_cast<std::uint16_t>((data[6] << 8) | data[7]);
  h.ttl = data[8];
  h.protocol = data[9];
  std::copy(data.begin() + 12, data.begin() + 16, h.src.bytes.begin());
  std::copy(data.begin() + 16, data.begin() + 20, h.dst.bytes.begin());
  return h;
}

ForwardDecision Ipv4Forwarder::forward(std::span<std::uint8_t> packet) const {
  if (packet.size() < Ipv4Header::kWireSize) return {ForwardStatus::kBadPacket, {}};
  if ((packet[0] >> 4) != 4 || (packet[0] & 0x0f) != 5) {
    return {ForwardStatus::kBadPacket, {}};
  }
  if (internet_checksum(packet.subspan(0, Ipv4Header::kWireSize)) != 0) {
    return {ForwardStatus::kBadPacket, {}};
  }
  if (packet[8] <= 1) return {ForwardStatus::kTtlExpired, {}};

  // Decrement TTL with the RFC 1624 incremental checksum update.
  packet[8] -= 1;
  std::uint16_t check = static_cast<std::uint16_t>((packet[10] << 8) | packet[11]);
  // HC' = HC + 0x0100 (one's complement arithmetic), since the TTL byte
  // dropped by one in the high byte of its 16-bit word.
  std::uint32_t sum = static_cast<std::uint32_t>(check) + 0x0100;
  sum = (sum & 0xffff) + (sum >> 16);
  check = static_cast<std::uint16_t>(sum);
  packet[10] = static_cast<std::uint8_t>(check >> 8);
  packet[11] = static_cast<std::uint8_t>(check);

  fib::Ipv4Addr dst;
  std::copy(packet.begin() + 16, packet.begin() + 20, dst.bytes.begin());
  const auto nh = table_->lookup(dst);
  if (!nh) return {ForwardStatus::kNoRoute, {}};
  return {ForwardStatus::kForwarded, *nh};
}

}  // namespace dip::legacy
