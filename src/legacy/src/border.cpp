#include "dip/legacy/border.hpp"

#include "dip/core/builder.hpp"

namespace dip::legacy {

using core::DipHeader;
using core::FnTriple;
using core::OpKey;

bytes::Result<DipHeader> wrap_ipv6(std::span<const std::uint8_t> ipv6_header) {
  if (ipv6_header.size() < Ipv6Header::kWireSize) {
    return bytes::Err(bytes::Error::kTruncated);
  }
  core::HeaderBuilder b;
  b.next_header(core::NextHeader::kNone);
  b.add_location(ipv6_header.subspan(0, Ipv6Header::kWireSize));
  // Native IPv6 offsets: dst at byte 24, src at byte 8.
  b.add_fn(FnTriple::router(24 * 8, 128, OpKey::kMatch128));
  b.add_fn(FnTriple::router(8 * 8, 128, OpKey::kSource));
  return b.build();
}

bytes::Result<DipHeader> wrap_ipv4(std::span<const std::uint8_t> ipv4_header) {
  if (ipv4_header.size() < Ipv4Header::kWireSize) {
    return bytes::Err(bytes::Error::kTruncated);
  }
  core::HeaderBuilder b;
  b.next_header(core::NextHeader::kNone);
  b.add_location(ipv4_header.subspan(0, Ipv4Header::kWireSize));
  // Native IPv4 offsets: dst at byte 16, src at byte 12.
  b.add_fn(FnTriple::router(16 * 8, 32, OpKey::kMatch32));
  b.add_fn(FnTriple::router(12 * 8, 32, OpKey::kSource));
  return b.build();
}

bytes::Result<std::vector<std::uint8_t>> strip_to_legacy(
    std::span<const std::uint8_t> dip_packet) {
  const auto header = DipHeader::parse(dip_packet);
  if (!header) return bytes::Err(header.error());

  // Sanity: the locations block must start with a legacy version nibble,
  // otherwise stripping would emit garbage into the legacy domain.
  if (header->locations.empty()) return bytes::Err(bytes::Error::kMalformed);
  const std::uint8_t version = header->locations[0] >> 4;
  if (version != 4 && version != 6) return bytes::Err(bytes::Error::kUnsupported);

  const std::size_t strip =
      core::BasicHeader::kWireSize + header->fns.size() * FnTriple::kWireSize;
  return std::vector<std::uint8_t>(dip_packet.begin() + static_cast<std::ptrdiff_t>(strip),
                                   dip_packet.end());
}

bytes::Result<std::vector<std::uint8_t>> add_from_legacy(
    std::span<const std::uint8_t> legacy_packet) {
  if (legacy_packet.empty()) return bytes::Err(bytes::Error::kTruncated);

  const std::uint8_t version = legacy_packet[0] >> 4;
  bytes::Result<DipHeader> header = bytes::Err(bytes::Error::kUnsupported);
  std::size_t header_size = 0;
  if (version == 6) {
    header = wrap_ipv6(legacy_packet);
    header_size = Ipv6Header::kWireSize;
  } else if (version == 4) {
    header = wrap_ipv4(legacy_packet);
    header_size = Ipv4Header::kWireSize;
  } else {
    return bytes::Err(bytes::Error::kUnsupported);
  }
  if (!header) return bytes::Err(header.error());
  if (legacy_packet.size() < header_size) return bytes::Err(bytes::Error::kTruncated);

  std::vector<std::uint8_t> out = header->serialize();
  out.insert(out.end(), legacy_packet.begin() + static_cast<std::ptrdiff_t>(header_size),
             legacy_packet.end());
  return out;
}

}  // namespace dip::legacy
