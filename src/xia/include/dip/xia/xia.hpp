// XIA realized with DIP (§3 "XIA").
//
// "We use the F_DAG and F_intent FN modules to realize the complex packet
// processing logic in XIA. We set the header of XIA in the FN locations and
// use these two operation modules to parse the directed acyclic graph and
// handle the intent."
//
// F_DAG performs fallback traversal: from the cursor node, try each
// out-edge in priority order; the first edge whose target XID has a route
// (or is local) is taken, the cursor advances (written back into the
// packet), and the packet forwards. F_intent handles arrival at the intent:
// CID intents probe the content store, SID/HID intents deliver locally.
#pragma once

#include "dip/core/builder.hpp"
#include "dip/core/op_module.hpp"
#include "dip/xia/dag.hpp"

namespace dip::xia {

/// F_DAG (key 10).
class DagOp final : public core::OpModule {
 public:
  [[nodiscard]] core::OpKey key() const noexcept override { return core::OpKey::kDag; }
  [[nodiscard]] std::uint32_t cost() const noexcept override { return 4; }
  [[nodiscard]] bytes::Status execute(core::OpContext& ctx) override;
};

/// F_intent (key 11).
class IntentOp final : public core::OpModule {
 public:
  [[nodiscard]] core::OpKey key() const noexcept override {
    return core::OpKey::kIntent;
  }
  [[nodiscard]] std::uint32_t cost() const noexcept override { return 2; }
  [[nodiscard]] bytes::Status execute(core::OpContext& ctx) override;
};

/// Compose an XIA-over-DIP header: the serialized DAG in the FN locations,
/// F_DAG + F_intent triples covering it.
[[nodiscard]] bytes::Result<core::DipHeader> make_xia_header(
    const Dag& dag, core::NextHeader next = core::NextHeader::kNone,
    std::uint8_t hop_limit = 64);

/// Read back the DAG (with its current cursor) from a parsed DIP header.
[[nodiscard]] bytes::Result<ParsedDag> extract_dag(const core::DipHeader& header);

}  // namespace dip::xia
