// XIA DAG addresses (§3 "XIA").
//
// An XIA address is a directed acyclic graph of XID nodes. The *intent* is
// the sink; other nodes provide fallback routing context ("if you cannot
// route on the intent, try the next out-edge"). The packet carries a cursor
// (last visited node) that routers advance as edges are taken.
//
// Wire encoding inside the DIP FN-locations block:
//
//   node_count:8 | last_visited:8 | intent_index:8 | src_degree:8 |
//   src_edge[4]:8 each (unused = 0xff)
//   then node_count records of:
//     xid_type:8 | xid:160 | out_degree:8 | edge[4]:8 each (unused = 0xff)
//
// Header = 8 bytes, node record = 26 bytes; max 8 nodes. Edges are listed
// highest priority first, as in XIA's fallback semantics. The virtual
// source node's out-edges live in the header (src_edges).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dip/bytes/expected.hpp"
#include "dip/fib/xid_table.hpp"

namespace dip::xia {

inline constexpr std::size_t kMaxNodes = 8;
inline constexpr std::size_t kMaxEdges = 4;
inline constexpr std::uint8_t kNoEdge = 0xff;
inline constexpr std::size_t kHeaderBytes = 8;
inline constexpr std::size_t kNodeBytes = 1 + 20 + 1 + kMaxEdges;  // 26

struct DagNode {
  fib::XidType type = fib::XidType::kHid;
  fib::Xid xid;
  /// Out-edges by node index, priority order (fallback = later entries).
  std::vector<std::uint8_t> edges;
};

class Dag {
 public:
  /// Index of the virtual source "node": the cursor position before any
  /// real node has been visited.
  static constexpr std::uint8_t kSourceCursor = 0xfe;

  Dag() = default;

  /// Add a node; returns its index. Fails (nullopt) past kMaxNodes.
  std::optional<std::uint8_t> add_node(DagNode node);

  /// Add a prioritized edge from -> to (appended = lower priority).
  [[nodiscard]] bool add_edge(std::uint8_t from, std::uint8_t to);

  void set_intent(std::uint8_t index) { intent_ = index; }
  [[nodiscard]] std::uint8_t intent() const noexcept { return intent_; }

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] const DagNode& node(std::size_t i) const { return nodes_[i]; }

  /// Out-edges of the cursor position: the source's edges are the intent
  /// chain entry points. We model the source's out-edges as those of a
  /// virtual node whose edge list is `source_edges`.
  void set_source_edges(std::vector<std::uint8_t> edges) {
    source_edges_ = std::move(edges);
  }
  [[nodiscard]] std::span<const std::uint8_t> source_edges() const noexcept {
    return source_edges_;
  }

  [[nodiscard]] std::span<const std::uint8_t> edges_of(std::uint8_t cursor) const;

  /// True iff the graph is acyclic and every edge index is in range.
  [[nodiscard]] bool validate() const;

  /// Serialized size in bytes.
  [[nodiscard]] std::size_t wire_size() const noexcept {
    return kHeaderBytes + nodes_.size() * kNodeBytes;
  }

  /// Serialize with the given cursor value into `out`.
  [[nodiscard]] bytes::Status serialize(std::uint8_t cursor,
                                        std::span<std::uint8_t> out) const;
  [[nodiscard]] std::vector<std::uint8_t> serialize(std::uint8_t cursor) const;

 private:
  friend struct ParsedDag;
  friend bytes::Result<struct ParsedDag> parse_dag(std::span<const std::uint8_t> data);

  std::vector<DagNode> nodes_;
  std::vector<std::uint8_t> source_edges_;
  std::uint8_t intent_ = 0;
};

/// A DAG parsed off the wire together with its traversal cursor.
struct ParsedDag {
  Dag dag;
  std::uint8_t cursor = Dag::kSourceCursor;
};

/// Parse a serialized DAG (validates structure, types, and acyclicity).
[[nodiscard]] bytes::Result<ParsedDag> parse_dag(std::span<const std::uint8_t> data);

/// Canonical XIA service address: AD -> HID -> intent, with direct fallback
/// edges from the source and AD to the intent where given.
///
///   source ──► intent (priority 0 when direct_intent)
///   source ──► AD ──► HID ──► intent
[[nodiscard]] Dag make_service_dag(const fib::Xid& ad, const fib::Xid& hid,
                                   fib::XidType intent_type, const fib::Xid& intent,
                                   bool direct_intent = true);

/// Deterministic XID from a label (tests/examples): SipHash-stretched.
[[nodiscard]] fib::Xid xid_from_label(std::string_view label);

/// 64-bit code of an XID (content-store key for CID intents).
[[nodiscard]] constexpr std::uint64_t xid_code(const fib::Xid& xid) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | xid.bytes[i];
  return v;
}

}  // namespace dip::xia
