#include "dip/xia/xia.hpp"

namespace dip::xia {

using core::DipHeader;
using core::DropReason;
using core::FnTriple;
using core::OpContext;
using core::OpKey;

bytes::Status DagOp::execute(OpContext& ctx) {
  auto target = ctx.target_bytes();
  if (target.empty()) return bytes::Unexpected{bytes::Error::kMalformed};

  auto parsed = parse_dag(target);
  if (!parsed) {
    ctx.result->drop(DropReason::kMalformed);
    return {};
  }
  const Dag& dag = parsed->dag;
  std::uint8_t cursor = parsed->cursor;

  const fib::XidTable* xids = ctx.env->xid_view();
  if (xids == nullptr) {
    ctx.result->drop(DropReason::kNoRoute);
    return {};
  }
  const fib::XidTable& table = *xids;

  // Traversal loop. Locally owned nodes are entered without forwarding
  // (cursor advances and their edges are tried next); the DAG is validated
  // acyclic, so at most node_count advances happen.
  for (std::size_t hops = 0; hops <= dag.node_count(); ++hops) {
    // Arrived? If the cursor sits on a locally owned intent, leave the
    // verdict to F_intent (which follows in the FN list).
    if (cursor != Dag::kSourceCursor) {
      const DagNode& at = dag.node(cursor);
      if (cursor == dag.intent() && table.is_local(at.type, at.xid)) return {};
    }

    bool advanced = false;
    // Fallback: first out-edge (priority order) with a usable route.
    for (const std::uint8_t next_index : dag.edges_of(cursor)) {
      const DagNode& candidate = dag.node(next_index);

      if (table.is_local(candidate.type, candidate.xid)) {
        // The packet has *arrived* at this DAG node (we own it): only now
        // does last_visited advance (XIA semantics — intermediate routers
        // forward toward a node without touching the cursor).
        cursor = next_index;
        target[1] = next_index;  // write back last_visited
        advanced = true;
        break;
      }
      if (const auto nh = table.lookup(candidate.type, candidate.xid)) {
        // Route toward the candidate; the cursor is untouched until the
        // packet reaches a router that owns it.
        ctx.result->egress.assign(1, *nh);
        return {};
      }
    }
    if (!advanced) break;
  }

  // No edge routable: XIA drops (no fallback left).
  ctx.result->drop(DropReason::kNoRoute);
  return {};
}

bytes::Status IntentOp::execute(OpContext& ctx) {
  auto target = ctx.target_bytes();
  if (target.empty()) return bytes::Unexpected{bytes::Error::kMalformed};

  auto parsed = parse_dag(target);
  if (!parsed) {
    ctx.result->drop(DropReason::kMalformed);
    return {};
  }
  const Dag& dag = parsed->dag;
  if (parsed->cursor != dag.intent()) return {};  // not at the intent yet

  const DagNode& intent = dag.node(dag.intent());
  const fib::XidTable* xids = ctx.env->xid_view();
  if (xids == nullptr || !xids->is_local(intent.type, intent.xid)) {
    return {};  // somebody else's intent; F_DAG already set the egress
  }

  switch (intent.type) {
    case fib::XidType::kCid: {
      // Content intent: serve from the content store when possible.
      if (ctx.env->content_store) {
        const std::uint64_t code = xid_code(intent.xid);
        if (ctx.env->content_store->contains(code)) {
          ctx.result->respond_from_cache = true;
          ctx.result->egress.assign(1, ctx.ingress);
          return {};
        }
      }
      ctx.result->drop(DropReason::kNoRoute);  // content not present
      return {};
    }
    case fib::XidType::kSid:
    case fib::XidType::kHid:
    case fib::XidType::kAd: {
      // Local delivery: hand to the host face registered for the XID.
      const auto nh = xids->lookup(intent.type, intent.xid);
      if (nh) {
        ctx.result->egress.assign(1, *nh);
      } else {
        // Locally owned but no delivery face: treat as local sink.
        ctx.result->egress.assign(1, ctx.ingress);
      }
      return {};
    }
  }
  return {};
}

bytes::Result<DipHeader> make_xia_header(const Dag& dag, core::NextHeader next,
                                         std::uint8_t hop_limit) {
  const std::vector<std::uint8_t> wire = dag.serialize(Dag::kSourceCursor);
  core::HeaderBuilder b;
  b.next_header(next).hop_limit(hop_limit);
  const std::uint16_t loc = b.add_location(wire);
  const auto len_bits = static_cast<std::uint16_t>(wire.size() * 8);
  b.add_fn(FnTriple::router(loc, len_bits, OpKey::kDag));
  b.add_fn(FnTriple::router(loc, len_bits, OpKey::kIntent));
  return b.build();
}

bytes::Result<ParsedDag> extract_dag(const DipHeader& header) {
  for (const FnTriple& fn : header.fns) {
    if (fn.key() == OpKey::kDag) {
      const auto range = fn.range();
      if (!bytes::fits(range, header.locations.size()) || !range.byte_aligned()) {
        return bytes::Err(bytes::Error::kMalformed);
      }
      return parse_dag(std::span<const std::uint8_t>(header.locations)
                            .subspan(range.bit_offset / 8, range.byte_length()));
    }
  }
  return bytes::Err(bytes::Error::kMalformed);
}

}  // namespace dip::xia
