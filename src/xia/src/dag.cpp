#include "dip/xia/dag.hpp"

#include <cstring>

#include "dip/crypto/siphash.hpp"

namespace dip::xia {

std::optional<std::uint8_t> Dag::add_node(DagNode node) {
  if (nodes_.size() >= kMaxNodes || node.edges.size() > kMaxEdges) return std::nullopt;
  nodes_.push_back(std::move(node));
  return static_cast<std::uint8_t>(nodes_.size() - 1);
}

bool Dag::add_edge(std::uint8_t from, std::uint8_t to) {
  if (to >= nodes_.size()) return false;
  if (from == kSourceCursor) {
    if (source_edges_.size() >= kMaxEdges) return false;
    source_edges_.push_back(to);
    return true;
  }
  if (from >= nodes_.size() || nodes_[from].edges.size() >= kMaxEdges) return false;
  nodes_[from].edges.push_back(to);
  return true;
}

std::span<const std::uint8_t> Dag::edges_of(std::uint8_t cursor) const {
  if (cursor == kSourceCursor) return source_edges_;
  if (cursor >= nodes_.size()) return {};
  return nodes_[cursor].edges;
}

bool Dag::validate() const {
  if (nodes_.size() > kMaxNodes) return false;
  if (intent_ >= nodes_.size()) return false;

  auto edges_ok = [&](std::span<const std::uint8_t> edges) {
    if (edges.size() > kMaxEdges) return false;
    for (std::uint8_t e : edges) {
      if (e >= nodes_.size()) return false;
    }
    return true;
  };
  if (!edges_ok(source_edges_)) return false;
  for (const DagNode& n : nodes_) {
    if (!edges_ok(n.edges)) return false;
  }

  // Acyclicity: DFS with colors over node indices.
  enum class Color : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<Color> color(nodes_.size(), Color::kWhite);
  // Iterative DFS.
  struct Frame {
    std::uint8_t node;
    std::size_t edge = 0;
  };
  for (std::uint8_t start = 0; start < nodes_.size(); ++start) {
    if (color[start] != Color::kWhite) continue;
    std::vector<Frame> stack{{start}};
    color[start] = Color::kGray;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto& edges = nodes_[f.node].edges;
      if (f.edge < edges.size()) {
        const std::uint8_t next = edges[f.edge++];
        if (color[next] == Color::kGray) return false;  // back edge: cycle
        if (color[next] == Color::kWhite) {
          color[next] = Color::kGray;
          stack.push_back({next});
        }
      } else {
        color[f.node] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
  return true;
}

bytes::Status Dag::serialize(std::uint8_t cursor, std::span<std::uint8_t> out) const {
  if (out.size() < wire_size()) return bytes::Unexpected{bytes::Error::kOverflow};

  out[0] = static_cast<std::uint8_t>(nodes_.size());
  out[1] = cursor;
  out[2] = intent_;
  out[3] = static_cast<std::uint8_t>(source_edges_.size());
  for (std::size_t i = 0; i < kMaxEdges; ++i) {
    out[4 + i] = i < source_edges_.size() ? source_edges_[i] : kNoEdge;
  }

  std::size_t off = kHeaderBytes;
  for (const DagNode& n : nodes_) {
    out[off] = static_cast<std::uint8_t>(n.type);
    std::memcpy(out.data() + off + 1, n.xid.bytes.data(), 20);
    out[off + 21] = static_cast<std::uint8_t>(n.edges.size());
    for (std::size_t i = 0; i < kMaxEdges; ++i) {
      out[off + 22 + i] = i < n.edges.size() ? n.edges[i] : kNoEdge;
    }
    off += kNodeBytes;
  }
  return {};
}

std::vector<std::uint8_t> Dag::serialize(std::uint8_t cursor) const {
  std::vector<std::uint8_t> out(wire_size());
  const auto st = serialize(cursor, out);
  (void)st;
  return out;
}

bytes::Result<ParsedDag> parse_dag(std::span<const std::uint8_t> data) {
  if (data.size() < kHeaderBytes) return bytes::Err(bytes::Error::kTruncated);

  ParsedDag out;
  const std::uint8_t node_count = data[0];
  out.cursor = data[1];
  out.dag.intent_ = data[2];
  const std::uint8_t src_degree = data[3];

  if (node_count > kMaxNodes || src_degree > kMaxEdges) {
    return bytes::Err(bytes::Error::kMalformed);
  }
  if (data.size() < kHeaderBytes + node_count * kNodeBytes) {
    return bytes::Err(bytes::Error::kTruncated);
  }

  for (std::uint8_t i = 0; i < src_degree; ++i) {
    out.dag.source_edges_.push_back(data[4 + i]);
  }

  std::size_t off = kHeaderBytes;
  for (std::uint8_t n = 0; n < node_count; ++n) {
    DagNode node;
    if (!fib::is_valid_xid_type(data[off])) return bytes::Err(bytes::Error::kMalformed);
    node.type = static_cast<fib::XidType>(data[off]);
    std::memcpy(node.xid.bytes.data(), data.data() + off + 1, 20);
    const std::uint8_t degree = data[off + 21];
    if (degree > kMaxEdges) return bytes::Err(bytes::Error::kMalformed);
    for (std::uint8_t i = 0; i < degree; ++i) {
      node.edges.push_back(data[off + 22 + i]);
    }
    out.dag.nodes_.push_back(std::move(node));
    off += kNodeBytes;
  }

  if (!out.dag.validate()) return bytes::Err(bytes::Error::kMalformed);
  if (out.cursor != Dag::kSourceCursor && out.cursor >= node_count) {
    return bytes::Err(bytes::Error::kMalformed);
  }
  return out;
}

Dag make_service_dag(const fib::Xid& ad, const fib::Xid& hid, fib::XidType intent_type,
                     const fib::Xid& intent, bool direct_intent) {
  Dag dag;
  const auto ad_index = dag.add_node({fib::XidType::kAd, ad, {}});
  const auto hid_index = dag.add_node({fib::XidType::kHid, hid, {}});
  const auto intent_index = dag.add_node({intent_type, intent, {}});
  // Priority order: direct intent first (routers that know the intent XID
  // shortcut the DAG), then the AD -> HID -> intent chain as fallback.
  if (direct_intent) (void)dag.add_edge(Dag::kSourceCursor, *intent_index);
  (void)dag.add_edge(Dag::kSourceCursor, *ad_index);
  if (direct_intent) (void)dag.add_edge(*ad_index, *intent_index);
  (void)dag.add_edge(*ad_index, *hid_index);
  (void)dag.add_edge(*hid_index, *intent_index);
  dag.set_intent(*intent_index);
  return dag;
}

fib::Xid xid_from_label(std::string_view label) {
  fib::Xid xid;
  const std::span<const std::uint8_t> view{
      reinterpret_cast<const std::uint8_t*>(label.data()), label.size()};
  // Stretch a 64-bit SipHash into 160 bits with counter inputs.
  for (int i = 0; i < 3; ++i) {
    std::vector<std::uint8_t> salted(view.begin(), view.end());
    salted.push_back(static_cast<std::uint8_t>(i));
    const std::uint64_t h = crypto::siphash24(crypto::process_sip_key(), salted);
    for (int b = 0; b < 8; ++b) {
      const std::size_t at = static_cast<std::size_t>(i) * 8 + b;
      if (at < 20) xid.bytes[at] = static_cast<std::uint8_t>(h >> (8 * b));
    }
  }
  return xid;
}

}  // namespace dip::xia
