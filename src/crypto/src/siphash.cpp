#include "dip/crypto/siphash.hpp"

namespace dip::crypto {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int b) noexcept {
  return (x << b) | (x >> (64 - b));
}

inline std::uint64_t read_le64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

inline void sipround(std::uint64_t& v0, std::uint64_t& v1, std::uint64_t& v2,
                     std::uint64_t& v3) noexcept {
  v0 += v1;
  v1 = rotl(v1, 13);
  v1 ^= v0;
  v0 = rotl(v0, 32);
  v2 += v3;
  v3 = rotl(v3, 16);
  v3 ^= v2;
  v0 += v3;
  v3 = rotl(v3, 21);
  v3 ^= v0;
  v2 += v1;
  v1 = rotl(v1, 17);
  v1 ^= v2;
  v2 = rotl(v2, 32);
}

}  // namespace

std::uint64_t siphash24(const SipKey& key, std::span<const std::uint8_t> data) noexcept {
  const std::uint64_t k0 = read_le64(key.data());
  const std::uint64_t k1 = read_le64(key.data() + 8);

  std::uint64_t v0 = 0x736f6d6570736575ULL ^ k0;
  std::uint64_t v1 = 0x646f72616e646f6dULL ^ k1;
  std::uint64_t v2 = 0x6c7967656e657261ULL ^ k0;
  std::uint64_t v3 = 0x7465646279746573ULL ^ k1;

  const std::size_t n = data.size();
  const std::size_t end = n - (n % 8);
  for (std::size_t i = 0; i < end; i += 8) {
    const std::uint64_t m = read_le64(data.data() + i);
    v3 ^= m;
    sipround(v0, v1, v2, v3);
    sipround(v0, v1, v2, v3);
    v0 ^= m;
  }

  std::uint64_t b = static_cast<std::uint64_t>(n) << 56;
  for (std::size_t i = end; i < n; ++i) {
    b |= static_cast<std::uint64_t>(data[i]) << (8 * (i - end));
  }
  v3 ^= b;
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  v0 ^= b;

  v2 ^= 0xff;
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  return v0 ^ v1 ^ v2 ^ v3;
}

const SipKey& process_sip_key() noexcept {
  static const SipKey key = {0x0d, 0x1f, 0x2e, 0x3d, 0x4c, 0x5b, 0x6a, 0x79,
                             0x88, 0x97, 0xa6, 0xb5, 0xc4, 0xd3, 0xe2, 0xf1};
  return key;
}

}  // namespace dip::crypto
