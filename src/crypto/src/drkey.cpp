#include "dip/crypto/drkey.hpp"

namespace dip::crypto {

std::vector<Block> derive_path_keys(std::span<const Block> node_secrets,
                                    const SessionId& session) {
  std::vector<Block> keys;
  keys.reserve(node_secrets.size());
  for (const Block& secret : node_secrets) {
    keys.push_back(DrKey(secret).derive(session));
  }
  return keys;
}

}  // namespace dip::crypto
