#include "dip/crypto/mac.hpp"

#include <optional>

namespace dip::crypto {

namespace detail {

Block gf128_double(const Block& in) noexcept {
  Block out{};
  std::uint8_t carry = 0;
  for (int i = 15; i >= 0; --i) {
    out[i] = static_cast<std::uint8_t>((in[i] << 1) | carry);
    carry = static_cast<std::uint8_t>(in[i] >> 7);
  }
  if (carry) out[15] ^= 0x87;  // CMAC reduction constant
  return out;
}

}  // namespace detail

void two_em_mac_blocks(std::span<const MacBatchItem> items) {
  constexpr std::size_t kLanes = Aes128::kMaxLanes;
  std::size_t i = 0;
  while (i < items.size()) {
    // A strip: up to kLanes consecutive messages of equal length (lockstep
    // chaining needs a uniform block count across the strip).
    const std::size_t len = items[i].data.size();
    std::size_t lanes = 1;
    while (lanes < kLanes && i + lanes < items.size() &&
           items[i + lanes].data.size() == len) {
      ++lanes;
    }

    // Per-lane ciphers; a lane whose key matches the previous lane's reuses
    // its neighbour's key schedule (one session -> one schedule per strip).
    std::optional<EvenMansour2> built[kLanes];
    const EvenMansour2* cipher[kLanes];
    for (std::size_t l = 0; l < lanes; ++l) {
      if (l > 0 && items[i + l].key == items[i + l - 1].key) {
        cipher[l] = cipher[l - 1];
      } else {
        built[l].emplace(items[i + l].key);
        cipher[l] = &*built[l];
      }
    }

    // Subkeys K1/K2 from E(0), one multi-key pass for the whole strip.
    Block sub1[kLanes] = {};
    Block sub2[kLanes];
    EvenMansour2::encrypt_blocks_multi(sub1, cipher, lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
      sub1[l] = detail::gf128_double(sub1[l]);
      sub2[l] = detail::gf128_double(sub1[l]);
    }

    // The RFC 4493 chain, every block index across all lanes at once.
    const std::size_t full_blocks = len == 0 ? 0 : (len - 1) / 16;
    Block x[kLanes] = {};
    for (std::size_t b = 0; b < full_blocks; ++b) {
      for (std::size_t l = 0; l < lanes; ++l) {
        const Block m = block_from(items[i + l].data.subspan(b * 16, 16));
        block_xor(x[l], m);
      }
      EvenMansour2::encrypt_blocks_multi(x, cipher, lanes);
    }
    const std::size_t tail = len - full_blocks * 16;
    for (std::size_t l = 0; l < lanes; ++l) {
      Block last{};
      if (len > 0 && tail == 16) {
        last = block_from(items[i + l].data.subspan(full_blocks * 16, 16));
        block_xor(last, sub1[l]);
      } else {
        for (std::size_t t = 0; t < tail; ++t) {
          last[t] = items[i + l].data[full_blocks * 16 + t];
        }
        last[tail] = 0x80;
        block_xor(last, sub2[l]);
      }
      block_xor(x[l], last);
    }
    EvenMansour2::encrypt_blocks_multi(x, cipher, lanes);

    for (std::size_t l = 0; l < lanes; ++l) *items[i + l].out = x[l];
    i += lanes;
  }
}

std::unique_ptr<Mac> make_mac(MacKind kind, const Block& key) {
  switch (kind) {
    case MacKind::kEm2: return std::make_unique<Em2Mac>(key);
    case MacKind::kAesCmac: return std::make_unique<AesCmac>(key);
  }
  return nullptr;
}

}  // namespace dip::crypto
