#include "dip/crypto/mac.hpp"

namespace dip::crypto {

namespace detail {

Block gf128_double(const Block& in) noexcept {
  Block out{};
  std::uint8_t carry = 0;
  for (int i = 15; i >= 0; --i) {
    out[i] = static_cast<std::uint8_t>((in[i] << 1) | carry);
    carry = static_cast<std::uint8_t>(in[i] >> 7);
  }
  if (carry) out[15] ^= 0x87;  // CMAC reduction constant
  return out;
}

}  // namespace detail

std::unique_ptr<Mac> make_mac(MacKind kind, const Block& key) {
  switch (kind) {
    case MacKind::kEm2: return std::make_unique<Em2Mac>(key);
    case MacKind::kAesCmac: return std::make_unique<AesCmac>(key);
  }
  return nullptr;
}

}  // namespace dip::crypto
