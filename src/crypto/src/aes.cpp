#include "dip/crypto/aes.hpp"

#include <algorithm>
#include <cstring>

// DIP_SIMD_CRYPTO (cmake option, default OFF): hardware AES rounds for the
// encrypt paths. The portable byte-oriented code below stays compiled and
// remains the oracle — the known-answer vectors in tests/crypto_test pin
// both builds to the same outputs.
#if defined(DIP_SIMD_CRYPTO) && defined(__AES__) && \
    (defined(__x86_64__) || defined(__i386__))
#define DIP_AESNI 1
#include <wmmintrin.h>
#else
#define DIP_AESNI 0
#endif

namespace dip::crypto {

namespace {

// FIPS-197 S-box and inverse.
constexpr std::array<std::uint8_t, 256> kSbox = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab,
    0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4,
    0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71,
    0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6,
    0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb,
    0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45,
    0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44,
    0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a,
    0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
    0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25,
    0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e,
    0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1,
    0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb,
    0x16};

constexpr std::array<std::uint8_t, 256> make_inv_sbox() {
  std::array<std::uint8_t, 256> inv{};
  for (std::size_t i = 0; i < 256; ++i) inv[kSbox[i]] = static_cast<std::uint8_t>(i);
  return inv;
}
constexpr std::array<std::uint8_t, 256> kInvSbox = make_inv_sbox();

constexpr std::array<std::uint8_t, 11> kRcon = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
                                                0x20, 0x40, 0x80, 0x1b, 0x36};

inline std::uint8_t xtime(std::uint8_t x) noexcept {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

inline std::uint8_t gmul(std::uint8_t a, std::uint8_t b) noexcept {
  std::uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return p;
}

// One-block round primitives shared by the single- and multi-block encrypt
// paths (state is column-major, s[col*4 + row]).
inline void add_round_key(Block& s, const std::uint8_t* rk) noexcept {
  for (int i = 0; i < 16; ++i) s[i] ^= rk[i];
}

inline void sub_shift(Block& s) noexcept {
  // SubBytes + ShiftRows fused: row r rotates left by r.
  Block t = s;
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) s[c * 4 + r] = kSbox[t[((c + r) % 4) * 4 + r]];
  }
}

inline void mix_columns(Block& s) noexcept {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = &s[c * 4];
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
    col[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
    col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
    col[3] = static_cast<std::uint8_t>((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
  }
}

}  // namespace

void Aes128::expand_key(const Block& key) noexcept {
  std::memcpy(round_keys_.data(), key.data(), kKeySize);
  for (int i = 4; i < 4 * (kRounds + 1); ++i) {
    std::uint8_t t[4];
    std::memcpy(t, round_keys_.data() + 4 * (i - 1), 4);
    if (i % 4 == 0) {
      // RotWord + SubWord + Rcon.
      const std::uint8_t tmp = t[0];
      t[0] = static_cast<std::uint8_t>(kSbox[t[1]] ^ kRcon[i / 4]);
      t[1] = kSbox[t[2]];
      t[2] = kSbox[t[3]];
      t[3] = kSbox[tmp];
    }
    for (int j = 0; j < 4; ++j) {
      round_keys_[4 * i + j] = round_keys_[4 * (i - 4) + j] ^ t[j];
    }
  }
}

void Aes128::encrypt(Block& s) const noexcept {
#if DIP_AESNI
  encrypt_blocks(&s, 1);
#else
  add_round_key(s, round_keys_.data());
  for (int round = 1; round < kRounds; ++round) {
    sub_shift(s);
    mix_columns(s);
    add_round_key(s, round_keys_.data() + 16 * round);
  }
  sub_shift(s);
  add_round_key(s, round_keys_.data() + 16 * kRounds);
#endif
}

void Aes128::encrypt_blocks(Block* blocks, std::size_t n) const noexcept {
#if DIP_AESNI
  __m128i rk[kRounds + 1];
  for (int r = 0; r <= kRounds; ++r) {
    rk[r] = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(round_keys_.data() + 16 * r));
  }
  for (std::size_t base = 0; base < n; base += kMaxLanes) {
    const std::size_t lanes = std::min(kMaxLanes, n - base);
    __m128i s[kMaxLanes];
    for (std::size_t l = 0; l < lanes; ++l) {
      s[l] = _mm_xor_si128(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks[base + l].data())),
          rk[0]);
    }
    for (int r = 1; r < kRounds; ++r) {
      for (std::size_t l = 0; l < lanes; ++l) s[l] = _mm_aesenc_si128(s[l], rk[r]);
    }
    for (std::size_t l = 0; l < lanes; ++l) {
      s[l] = _mm_aesenclast_si128(s[l], rk[kRounds]);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(blocks[base + l].data()), s[l]);
    }
  }
#else
  // Round-major over a strip of lanes: the per-lane chains are independent
  // inside each round, so the out-of-order engine overlaps them — the
  // "straight-line interleaved rounds" structure without hardware AES.
  for (std::size_t base = 0; base < n; base += kMaxLanes) {
    const std::size_t lanes = std::min(kMaxLanes, n - base);
    Block* s = blocks + base;
    for (std::size_t l = 0; l < lanes; ++l) add_round_key(s[l], round_keys_.data());
    for (int round = 1; round < kRounds; ++round) {
      const std::uint8_t* rk = round_keys_.data() + 16 * round;
      for (std::size_t l = 0; l < lanes; ++l) {
        sub_shift(s[l]);
        mix_columns(s[l]);
        add_round_key(s[l], rk);
      }
    }
    const std::uint8_t* rk_last = round_keys_.data() + 16 * kRounds;
    for (std::size_t l = 0; l < lanes; ++l) {
      sub_shift(s[l]);
      add_round_key(s[l], rk_last);
    }
  }
#endif
}

void Aes128::decrypt(Block& s) const noexcept {
  auto add_round_key = [&](int round) {
    for (int i = 0; i < 16; ++i) s[i] ^= round_keys_[16 * round + i];
  };
  auto inv_sub_bytes = [&] {
    for (auto& b : s) b = kInvSbox[b];
  };
  auto inv_shift_rows = [&] {
    Block t = s;
    for (int r = 1; r < 4; ++r) {
      for (int c = 0; c < 4; ++c) s[((c + r) % 4) * 4 + r] = t[c * 4 + r];
    }
  };
  auto inv_mix_columns = [&] {
    for (int c = 0; c < 4; ++c) {
      std::uint8_t* col = &s[c * 4];
      const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
      col[0] = static_cast<std::uint8_t>(gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9));
      col[1] = static_cast<std::uint8_t>(gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13));
      col[2] = static_cast<std::uint8_t>(gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11));
      col[3] = static_cast<std::uint8_t>(gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14));
    }
  };

  add_round_key(kRounds);
  for (int round = kRounds - 1; round > 0; --round) {
    inv_shift_rows();
    inv_sub_bytes();
    add_round_key(round);
    inv_mix_columns();
  }
  inv_shift_rows();
  inv_sub_bytes();
  add_round_key(0);
}

bool block_equal_ct(const Block& a, const Block& b) noexcept {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  return diff == 0;
}

Block block_from(std::span<const std::uint8_t> data) noexcept {
  Block b{};
  const std::size_t n = std::min(data.size(), b.size());
  std::memcpy(b.data(), data.data(), n);
  return b;
}

void block_to(const Block& b, std::span<std::uint8_t> out) noexcept {
  const std::size_t n = std::min(out.size(), b.size());
  std::memcpy(out.data(), b.data(), n);
}

}  // namespace dip::crypto
