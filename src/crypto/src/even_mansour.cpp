#include "dip/crypto/even_mansour.hpp"

namespace dip::crypto {

namespace {

// Fixed public constants keying the two public permutations. These are not
// secrets: Even–Mansour security rests solely on the whitening keys.
constexpr Block kPerm1Key = {'D', 'I', 'P', '-', '2', 'E', 'M', '-',
                             'P', 'E', 'R', 'M', '-', 'O', 'N', 'E'};
constexpr Block kPerm2Key = {'D', 'I', 'P', '-', '2', 'E', 'M', '-',
                             'P', 'E', 'R', 'M', '-', 'T', 'W', 'O'};

}  // namespace

const Aes128& EvenMansour2::perm1() noexcept {
  static const Aes128 p(kPerm1Key);
  return p;
}

const Aes128& EvenMansour2::perm2() noexcept {
  static const Aes128 p(kPerm2Key);
  return p;
}

EvenMansour2::EvenMansour2(const Block& master_key) noexcept {
  // k_i = AES_masterkey(i) — a PRF keyed by the master key on distinct inputs.
  const Aes128 prf(master_key);
  for (int i = 0; i < 3; ++i) {
    Block in{};
    in[15] = static_cast<std::uint8_t>(i + 1);
    prf.encrypt(in);
    (i == 0 ? k0_ : i == 1 ? k1_ : k2_) = in;
  }
}

void EvenMansour2::encrypt(Block& block) const noexcept {
  block_xor(block, k0_);
  perm1().encrypt(block);
  block_xor(block, k1_);
  perm2().encrypt(block);
  block_xor(block, k2_);
}

void EvenMansour2::encrypt_blocks(Block* blocks, std::size_t n) const noexcept {
  for (std::size_t i = 0; i < n; ++i) block_xor(blocks[i], k0_);
  perm1().encrypt_blocks(blocks, n);
  for (std::size_t i = 0; i < n; ++i) block_xor(blocks[i], k1_);
  perm2().encrypt_blocks(blocks, n);
  for (std::size_t i = 0; i < n; ++i) block_xor(blocks[i], k2_);
}

void EvenMansour2::encrypt_blocks_multi(Block* blocks,
                                        const EvenMansour2* const* ciphers,
                                        std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) block_xor(blocks[i], ciphers[i]->k0_);
  perm1().encrypt_blocks(blocks, n);
  for (std::size_t i = 0; i < n; ++i) block_xor(blocks[i], ciphers[i]->k1_);
  perm2().encrypt_blocks(blocks, n);
  for (std::size_t i = 0; i < n; ++i) block_xor(blocks[i], ciphers[i]->k2_);
}

void EvenMansour2::decrypt(Block& block) const noexcept {
  block_xor(block, k2_);
  perm2().decrypt(block);
  block_xor(block, k1_);
  perm1().decrypt(block);
  block_xor(block, k0_);
}

}  // namespace dip::crypto
