// Message authentication codes over variable-length data.
//
// Two interchangeable MACs back F_MAC (Table 1, key 7):
//  * Em2Mac  — CMAC-style chaining over the 2EM cipher (the paper's choice,
//              hardware-friendly on Tofino);
//  * AesCmac — RFC 4493 AES-CMAC (the alternative the paper rejected because
//              it needs packet resubmission on Tofino; our software ablation
//              baseline, bench A2).
//
// Both produce 128-bit tags and share the Mac interface so OPT can be
// parameterized over the primitive.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "dip/crypto/aes.hpp"
#include "dip/crypto/even_mansour.hpp"

namespace dip::crypto {

/// Abstract 128-bit-tag MAC.
class Mac {
 public:
  virtual ~Mac() = default;

  /// Compute the tag over `data`.
  [[nodiscard]] virtual Block compute(std::span<const std::uint8_t> data) const = 0;

  /// Constant-time verification.
  [[nodiscard]] bool verify(std::span<const std::uint8_t> data, const Block& tag) const {
    return block_equal_ct(compute(data), tag);
  }
};

namespace detail {

/// Doubling in GF(2^128) with the CMAC polynomial (x^128 + x^7 + x^2 + x + 1).
[[nodiscard]] Block gf128_double(const Block& in) noexcept;

/// Generic CMAC over any 16-byte block cipher E (RFC 4493 structure).
template <typename Cipher>
[[nodiscard]] Block cmac_compute(const Cipher& cipher, std::span<const std::uint8_t> data) {
  // Subkeys K1, K2 from E(0).
  Block l{};
  cipher.encrypt(l);
  const Block k1 = gf128_double(l);
  const Block k2 = gf128_double(k1);

  const std::size_t n = data.size();
  const std::size_t full_blocks = n == 0 ? 0 : (n - 1) / 16;  // blocks before the last
  Block x{};
  for (std::size_t i = 0; i < full_blocks; ++i) {
    Block m = block_from(data.subspan(i * 16, 16));
    block_xor(x, m);
    cipher.encrypt(x);
  }

  // Last block: complete -> XOR K1; partial/empty -> pad 10..0, XOR K2.
  Block last{};
  const std::size_t tail = n - full_blocks * 16;
  if (n > 0 && tail == 16) {
    last = block_from(data.subspan(full_blocks * 16, 16));
    block_xor(last, k1);
  } else {
    for (std::size_t i = 0; i < tail; ++i) last[i] = data[full_blocks * 16 + i];
    last[tail] = 0x80;
    block_xor(last, k2);
  }
  block_xor(x, last);
  cipher.encrypt(x);
  return x;
}

}  // namespace detail

/// RFC 4493 AES-CMAC.
class AesCmac final : public Mac {
 public:
  explicit AesCmac(const Block& key) noexcept : cipher_(key) {}
  [[nodiscard]] Block compute(std::span<const std::uint8_t> data) const override {
    return detail::cmac_compute(cipher_, data);
  }

 private:
  Aes128 cipher_;
};

/// CMAC chaining over the 2EM cipher (the paper's F_MAC primitive).
class Em2Mac final : public Mac {
 public:
  explicit Em2Mac(const Block& key) noexcept : cipher_(key) {}
  [[nodiscard]] Block compute(std::span<const std::uint8_t> data) const override {
    return detail::cmac_compute(cipher_, data);
  }

 private:
  EvenMansour2 cipher_;
};

/// One message of a two_em_mac_blocks batch.
struct MacBatchItem {
  Block key;                           ///< 2EM master (whitening) key
  std::span<const std::uint8_t> data;  ///< covered bytes
  Block* out;                          ///< where the 128-bit tag lands
};

/// Batch CMAC-over-2EM: computes Em2Mac(items[i].key).compute(items[i].data)
/// for every item, bit-identical, but runs the chaining in lockstep across
/// up to Aes128::kMaxLanes messages at a time. P1/P2 are shared public
/// permutations, so lanes whitened under *different* derived keys still
/// share each multi-block AES pass; consecutive items with the same key
/// also share the key-schedule work. Lanes are cut at message-length
/// boundaries (a lockstep strip needs a uniform block count).
void two_em_mac_blocks(std::span<const MacBatchItem> items);

/// Which MAC primitive a node uses for F_MAC.
enum class MacKind : std::uint8_t { kEm2, kAesCmac };

/// Factory shared by OPT and the benches.
[[nodiscard]] std::unique_ptr<Mac> make_mac(MacKind kind, const Block& key);

}  // namespace dip::crypto
