// Deterministic PRNG for workload generation and the simulator.
//
// xoshiro256** — fast, high quality, and (unlike std::mt19937) cheap to seed
// and copy. Determinism matters: every bench/test run regenerates identical
// workloads, so paper-shape comparisons are stable run to run.
#pragma once

#include <array>
#include <cstdint>

#include "dip/crypto/aes.hpp"

namespace dip::crypto {

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) noexcept {
    // SplitMix64 seeding, the reference recommendation.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound).
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Rejection-free multiply-shift; bias negligible for simulator use.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform 32-bit value.
  std::uint32_t u32() noexcept { return static_cast<std::uint32_t>(next() >> 32); }

  /// Random 128-bit block (keys, session IDs in tests/benches).
  Block block() noexcept {
    Block b{};
    for (int i = 0; i < 16; i += 8) {
      const std::uint64_t v = next();
      for (int j = 0; j < 8; ++j) b[i + j] = static_cast<std::uint8_t>(v >> (8 * j));
    }
    return b;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace dip::crypto
