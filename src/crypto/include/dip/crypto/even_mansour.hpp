// 2EM: two-round key-alternating (iterated Even–Mansour) cipher.
//
// The paper's prototype computes F_MAC with 2EM [Bogdanov et al., EUROCRYPT
// 2012] instead of AES because on Tofino 2EM completes without resubmitting
// the packet (§4.1). Construction:
//
//   E_k(x) = k2 ^ P2( k1 ^ P1( k0 ^ x ) )
//
// with P1, P2 fixed *public* permutations. We instantiate P1/P2 as AES-128
// under two distinct fixed all-public constants — a standard way to get
// independent public permutations out of one primitive. The three whitening
// keys k0,k1,k2 are derived from a single 128-bit master key via AES as PRF.
#pragma once

#include <cstdint>
#include <span>

#include "dip/crypto/aes.hpp"

namespace dip::crypto {

class EvenMansour2 {
 public:
  static constexpr std::size_t kBlockSize = 16;

  /// Derive whitening keys from a 128-bit master key.
  explicit EvenMansour2(const Block& master_key) noexcept;

  /// Encrypt one block in place.
  void encrypt(Block& block) const noexcept;

  /// Encrypt `n` blocks in place under this instance's whitening keys,
  /// with the shared P1/P2 permutations run multi-block (Aes128::
  /// encrypt_blocks). Bitwise identical to n encrypt() calls.
  void encrypt_blocks(Block* blocks, std::size_t n) const noexcept;

  /// Encrypt block i under ciphers[i]'s whitening keys, all lanes in
  /// lockstep. Because P1/P2 are fixed *public* permutations shared by
  /// every 2EM instance, blocks whitened under different keys still ride
  /// the same two multi-block AES passes — this is what lets the burst
  /// pipeline MAC many packets (each with its own derived key) at once.
  static void encrypt_blocks_multi(Block* blocks,
                                   const EvenMansour2* const* ciphers,
                                   std::size_t n) noexcept;

  /// Decrypt one block in place (P1/P2 inverted via AES decryption).
  void decrypt(Block& block) const noexcept;

  [[nodiscard]] Block encrypt_copy(Block b) const noexcept {
    encrypt(b);
    return b;
  }

 private:
  // Public permutations shared by every instance (fixed public constants).
  static const Aes128& perm1() noexcept;
  static const Aes128& perm2() noexcept;

  Block k0_{};
  Block k1_{};
  Block k2_{};
};

}  // namespace dip::crypto
