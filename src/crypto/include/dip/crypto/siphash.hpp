// SipHash-2-4: keyed 64-bit hash for hash-table keying.
//
// Used by the name-FIB and PIT hash tables so adversarially chosen content
// names cannot degenerate the tables (relevant to the §2.4 security
// discussion about state-exhaustion attacks).
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace dip::crypto {

using SipKey = std::array<std::uint8_t, 16>;

/// SipHash-2-4 of `data` under `key`.
[[nodiscard]] std::uint64_t siphash24(const SipKey& key,
                                      std::span<const std::uint8_t> data) noexcept;

/// Process-wide random-ish key (fixed seed; the simulator is deterministic).
[[nodiscard]] const SipKey& process_sip_key() noexcept;

}  // namespace dip::crypto
