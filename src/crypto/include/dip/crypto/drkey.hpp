// DRKey-style per-session key derivation for OPT.
//
// OPT (§3) has each on-path router derive a *dynamic key* from the packet's
// session ID and the router's local secret; the same key is shared with the
// source host during session setup (paper footnote 3). We reproduce the
// data-plane derivation:
//
//   K_i = PRF_{K_router_i}(session_id)        (router side, per packet)
//
// and the control-plane collection the host performs during key negotiation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dip/crypto/aes.hpp"

namespace dip::crypto {

/// A 128-bit session identifier (the OPT flow tag).
using SessionId = Block;

/// Router-local secret with PRF-based session-key derivation.
class DrKey {
 public:
  explicit DrKey(const Block& node_secret) noexcept : prf_(node_secret) {}

  /// Dynamic key for one session: K = AES_{secret}(session_id).
  [[nodiscard]] Block derive(const SessionId& session) const noexcept {
    return prf_.encrypt_copy(session);
  }

  /// Derive many sessions' keys under the one node secret, multi-block
  /// (the burst pipeline's F_parm wave: one key schedule, lockstep rounds).
  /// `out[i] = derive(sessions[i])`.
  void derive_blocks(const SessionId* sessions, Block* out,
                     std::size_t n) const noexcept {
    for (std::size_t i = 0; i < n; ++i) out[i] = sessions[i];
    prf_.encrypt_blocks(out, n);
  }

 private:
  Aes128 prf_;
};

/// Derive the session keys of an ordered router path, as the OPT key
/// negotiation would hand them to the source host.
[[nodiscard]] std::vector<Block> derive_path_keys(std::span<const Block> node_secrets,
                                                  const SessionId& session);

}  // namespace dip::crypto
