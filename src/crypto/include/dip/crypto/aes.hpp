// AES-128 block cipher (FIPS-197), portable table-free implementation.
//
// Used three ways in this repo:
//  * as the public permutation inside the 2EM Even–Mansour construction the
//    paper uses for F_MAC (§4.1, [2]);
//  * as the PRF for DRKey-style per-router key derivation in OPT;
//  * as the block cipher under AES-CMAC, the ablation baseline the paper
//    rejected for Tofino (it would need packet resubmission).
//
// This is a straightforward byte-oriented implementation: constant code size,
// no large T-tables, adequate for a software prototype. It is NOT hardened
// against cache-timing side channels; do not reuse outside the simulator.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace dip::crypto {

/// 128-bit block used throughout the crypto substrate.
using Block = std::array<std::uint8_t, 16>;

/// AES-128: 10 rounds, 16-byte key, 16-byte block.
class Aes128 {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;
  static constexpr int kRounds = 10;

  explicit Aes128(const Block& key) noexcept { expand_key(key); }

  /// Encrypt one block in place.
  void encrypt(Block& block) const noexcept;

  /// Encrypt `n` blocks in place under this key, up to kMaxLanes in flight:
  /// every round is applied across the whole strip before the next round
  /// starts, so the per-block work interleaves (straight-line ILP on the
  /// portable path, one hardware AES round per lane under DIP_SIMD_CRYPTO).
  /// Bitwise identical to calling encrypt() n times.
  void encrypt_blocks(Block* blocks, std::size_t n) const noexcept;

  /// Decrypt one block in place.
  void decrypt(Block& block) const noexcept;

  /// Convenience: encrypt a copy.
  [[nodiscard]] Block encrypt_copy(Block block) const noexcept {
    encrypt(block);
    return block;
  }

  /// Multi-block strip width: how many blocks encrypt_blocks keeps in
  /// flight per pass (8 covers the burst MAC batch and the AES-NI pipeline
  /// depth without spilling the portable path's working set).
  static constexpr std::size_t kMaxLanes = 8;

 private:
  void expand_key(const Block& key) noexcept;

  // Round keys: (kRounds + 1) * 16 bytes.
  std::array<std::uint8_t, (kRounds + 1) * kBlockSize> round_keys_{};
};

/// Free-function spelling of Aes128::encrypt_blocks (the burst-pipeline
/// entry point; see DESIGN.md §10).
inline void aes128_encrypt_blocks(const Aes128& cipher, Block* blocks,
                                  std::size_t n) noexcept {
  cipher.encrypt_blocks(blocks, n);
}

/// XOR two blocks: a ^= b.
inline void block_xor(Block& a, const Block& b) noexcept {
  for (std::size_t i = 0; i < a.size(); ++i) a[i] ^= b[i];
}

/// Constant-time block comparison (for tag verification).
[[nodiscard]] bool block_equal_ct(const Block& a, const Block& b) noexcept;

/// Load/store helpers between spans and Blocks.
[[nodiscard]] Block block_from(std::span<const std::uint8_t> data) noexcept;
void block_to(const Block& b, std::span<std::uint8_t> out) noexcept;

}  // namespace dip::crypto
