#include "dip/telemetry/telemetry.hpp"

namespace dip::telemetry {

bytes::Status TelemetryOp::execute(core::OpContext& ctx) {
  auto field = ctx.target_bytes();
  if (field.size() < kTelemetryHeaderBytes) {
    return bytes::Unexpected{bytes::Error::kMalformed};
  }

  const std::uint8_t count = field[0];
  const std::size_t offset = kTelemetryHeaderBytes + count * HopRecord::kWireSize;
  if (offset + HopRecord::kWireSize > field.size()) {
    field[1] |= 0x80;  // overflow: record dropped, packet unharmed
    return {};
  }

  const auto node = static_cast<std::uint16_t>(ctx.env->node_id);
  const auto face = static_cast<std::uint16_t>(ctx.ingress);
  const auto ts = static_cast<std::uint32_t>(ctx.now);
  field[offset + 0] = static_cast<std::uint8_t>(node >> 8);
  field[offset + 1] = static_cast<std::uint8_t>(node);
  field[offset + 2] = static_cast<std::uint8_t>(face >> 8);
  field[offset + 3] = static_cast<std::uint8_t>(face);
  for (int i = 0; i < 4; ++i) {
    field[offset + 4 + i] = static_cast<std::uint8_t>(ts >> (8 * (3 - i)));
  }
  field[0] = static_cast<std::uint8_t>(count + 1);
  return {};
}

bytes::Result<TelemetryReport> read_telemetry(std::span<const std::uint8_t> field) {
  if (field.size() < kTelemetryHeaderBytes) return bytes::Err(bytes::Error::kTruncated);

  TelemetryReport report;
  const std::uint8_t count = field[0];
  report.overflowed = (field[1] & 0x80) != 0;
  if (field.size() < kTelemetryHeaderBytes + count * HopRecord::kWireSize) {
    return bytes::Err(bytes::Error::kTruncated);
  }

  for (std::uint8_t i = 0; i < count; ++i) {
    const std::size_t at = kTelemetryHeaderBytes + i * HopRecord::kWireSize;
    HopRecord r;
    r.node_id = static_cast<std::uint16_t>((field[at] << 8) | field[at + 1]);
    r.ingress_face = static_cast<std::uint16_t>((field[at + 2] << 8) | field[at + 3]);
    r.timestamp_lo = 0;
    for (int b = 0; b < 4; ++b) r.timestamp_lo = (r.timestamp_lo << 8) | field[at + 4 + b];
    report.hops.push_back(r);
  }
  return report;
}

void add_telemetry_fn(core::HeaderBuilder& builder, std::size_t max_hops) {
  const std::size_t bytes = telemetry_field_bytes(max_hops);
  const std::uint16_t loc = builder.add_zero_location(bytes);
  builder.add_fn(core::FnTriple::router(loc, static_cast<std::uint16_t>(bytes * 8),
                                        core::OpKey::kTelemetry));
}

}  // namespace dip::telemetry
