// Lock-free latency histogram with power-of-two buckets.
//
// The router-internal half of the observability story (the in-band half is
// F_int, telemetry.hpp): per-worker routers record nanosecond durations
// into relaxed-atomic buckets, and a control thread snapshots them without
// stopping the data path — the same contract as RouterCounters.
//
// Bucket scheme: bucket i counts values whose bit width is i, i.e.
//   bucket 0 = {0}, bucket 1 = {1}, bucket i = [2^(i-1), 2^i - 1].
// 40 buckets cover [0, 2^39) ns ≈ 9 minutes; larger values clamp into the
// last bucket. Power-of-two boundaries make record() one bit_width plus one
// fetch_add, and merging is element-wise addition — snapshots from N
// workers fold into one fleet view exactly like CounterSnapshot.
//
// This header is dependency-free on purpose (see counters.hpp): dip::core
// embeds these types inside RouterEnv via stats.hpp.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>

namespace dip::telemetry {

/// Monotonic nanosecond wall clock for latency measurement. Never feeds
/// protocol logic (SimTime does that); this is observability only.
[[nodiscard]] inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline constexpr std::size_t kHistogramBuckets = 40;

/// Bucket index for a recorded value (see the scheme above).
[[nodiscard]] constexpr std::size_t histogram_bucket(std::uint64_t value) noexcept {
  const std::size_t w = static_cast<std::size_t>(std::bit_width(value));
  return w < kHistogramBuckets ? w : kHistogramBuckets - 1;
}

/// Inclusive upper bound of bucket i (the Prometheus `le` label value).
[[nodiscard]] constexpr std::uint64_t histogram_bucket_upper(std::size_t i) noexcept {
  return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
}

/// Plain-integer image of one LatencyHistogram (or a sum of several).
struct HistogramSnapshot {
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  HistogramSnapshot& operator+=(const HistogramSnapshot& o) noexcept {
    for (std::size_t i = 0; i < buckets.size(); ++i) buckets[i] += o.buckets[i];
    count += o.count;
    sum += o.sum;
    return *this;
  }
  friend HistogramSnapshot operator+(HistogramSnapshot a,
                                     const HistogramSnapshot& b) noexcept {
    a += b;
    return a;
  }

  /// Value at quantile q in [0,1], linearly interpolated inside the bucket
  /// the quantile lands in. 0 when the histogram is empty.
  [[nodiscard]] double quantile(double q) const noexcept {
    if (count == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const double target = q * static_cast<double>(count);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      if (buckets[i] == 0) continue;
      const std::uint64_t prev = cum;
      cum += buckets[i];
      if (static_cast<double>(cum) >= target) {
        const double lower =
            i == 0 ? 0.0 : static_cast<double>(std::uint64_t{1} << (i - 1));
        const double upper = static_cast<double>(histogram_bucket_upper(i));
        const double frac = (target - static_cast<double>(prev)) /
                            static_cast<double>(buckets[i]);
        return lower + (upper - lower) * frac;
      }
    }
    return static_cast<double>(histogram_bucket_upper(kHistogramBuckets - 1));
  }

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// The recordable histogram. Copy/move snapshot the source values (copies
/// happen only at setup/snapshot time, like RelaxedCounter), keeping the
/// containing structs movable.
class LatencyHistogram {
 public:
  LatencyHistogram() noexcept = default;
  LatencyHistogram(const LatencyHistogram& other) noexcept { *this = other; }
  LatencyHistogram& operator=(const LatencyHistogram& other) noexcept {
    const HistogramSnapshot s = other.snapshot();
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      buckets_[i].store(s.buckets[i], std::memory_order_relaxed);
    }
    count_.store(s.count, std::memory_order_relaxed);
    sum_.store(s.sum, std::memory_order_relaxed);
    return *this;
  }

  void record(std::uint64_t value) noexcept {
    buckets_[histogram_bucket(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  [[nodiscard]] HistogramSnapshot snapshot() const noexcept {
    HistogramSnapshot s;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

}  // namespace dip::telemetry
