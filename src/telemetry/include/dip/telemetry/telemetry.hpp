// F_int — in-band network telemetry as a Field Operation (§5 "Opportunities
// with DIP": "efficient network telemetry").
//
// INT-style: the FN's target field is a record array the packet carries;
// each on-path node appends one record. Layout of the target field:
//
//   count:8 | overflow:1 reserved:7 | record[count]:
//     node_id:16 | ingress_face:16 | timestamp_lo:32 (ns, truncated)
//
// Record = 8 bytes. When the field is full the overflow bit is set and the
// packet keeps forwarding — telemetry must never break delivery.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dip/core/builder.hpp"
#include "dip/core/op_module.hpp"

namespace dip::telemetry {

struct HopRecord {
  static constexpr std::size_t kWireSize = 8;

  std::uint16_t node_id = 0;
  std::uint16_t ingress_face = 0;
  std::uint32_t timestamp_lo = 0;

  friend bool operator==(const HopRecord&, const HopRecord&) = default;
};

inline constexpr std::size_t kTelemetryHeaderBytes = 2;

/// Bytes needed for a capacity of `max_hops` records.
[[nodiscard]] constexpr std::size_t telemetry_field_bytes(std::size_t max_hops) noexcept {
  return kTelemetryHeaderBytes + max_hops * HopRecord::kWireSize;
}

/// F_int (key 13).
class TelemetryOp final : public core::OpModule {
 public:
  [[nodiscard]] core::OpKey key() const noexcept override {
    return core::OpKey::kTelemetry;
  }
  [[nodiscard]] std::uint32_t cost() const noexcept override { return 2; }
  [[nodiscard]] bytes::Status execute(core::OpContext& ctx) override;
};

struct TelemetryReport {
  std::vector<HopRecord> hops;
  bool overflowed = false;
};

/// Host side: decode the records out of the (received) telemetry field.
[[nodiscard]] bytes::Result<TelemetryReport> read_telemetry(
    std::span<const std::uint8_t> field);

/// Append a telemetry field (capacity `max_hops`) and its F_int triple to a
/// header under construction.
void add_telemetry_fn(core::HeaderBuilder& builder, std::size_t max_hops);

}  // namespace dip::telemetry
