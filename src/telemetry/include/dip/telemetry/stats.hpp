// RouterStats — the per-router observability block behind RouterEnv::stats.
//
// A RouterEnv with stats == nullptr (the default) pays exactly one pointer
// test per burst plus one per FN; nothing is allocated and no clock is
// read. Installing a RouterStats turns on:
//
//   * phase latency histograms — bind / validate / dispatch wall time per
//     burst, recorded for 1-in-burst_period bursts;
//   * per-OpKey latency histograms — module execution wall time, recorded
//     for the packets the 1-in-sample_period Sampler picks;
//   * the trace ring — one TraceRecord per sampled packet.
//
// Both samplers are deterministic counters, so a replayed packet stream
// yields the identical sample set (the property stats_test pins down).
// Histograms are relaxed-atomic and the trace ring is drain-safe, so a
// control thread can read a live worker's block — same ownership story as
// RouterCounters.
//
// Dependency-free on purpose (see counters.hpp): dip::core embeds this
// struct inside RouterEnv.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "dip/telemetry/counters.hpp"
#include "dip/telemetry/histogram.hpp"
#include "dip/telemetry/trace_ring.hpp"

namespace dip::telemetry {

struct RouterStatsConfig {
  /// Per-packet sampling period for per-FN timing + trace records
  /// (0 = off, 1 = every packet). Defaults keep the enabled-overhead on the
  /// batch-32 fast path under the 3% budget (DESIGN.md §9): a sampled packet
  /// costs ~6 clock reads plus a trace push, so at 1-in-256 the amortized
  /// per-packet cost stays below one clock read.
  std::uint32_t sample_period = 256;
  /// Per-burst sampling period for the phase histograms.
  std::uint32_t burst_period = 8;
  /// Trace ring capacity (records; rounded up to a power of two).
  std::size_t trace_capacity = 1024;
};

struct RouterStats {
  /// Slot count for the per-OpKey series; keys index modulo this, matching
  /// RouterCounters::fn_by_key.
  static constexpr std::size_t kOpKeySlots = 32;

  explicit RouterStats(RouterStatsConfig cfg = {})
      : trace(cfg.trace_capacity),
        packet_sampler(cfg.sample_period),
        burst_sampler(cfg.burst_period),
        config(cfg) {}

  // ---- recorded series (control-thread readable) ------------------------
  LatencyHistogram phase_bind;      ///< burst HeaderView::bind wall ns
  LatencyHistogram phase_validate;  ///< burst structural-check wall ns
  LatencyHistogram phase_dispatch;  ///< burst FN-dispatch wall ns
  /// Module execution wall ns per operation key (sampled packets only).
  std::array<LatencyHistogram, kOpKeySlots> fn_ns{};
  TraceRing trace;

  // ---- burst-pipeline gauges (dip_burst_* / dip_arena_*) -----------------
  // Per-phase burst occupancy: how many packets entered phase 1a, survived
  // bind+validate into phase 2, and which dispatch path phase 2 took.
  RelaxedCounter burst_packets;  ///< packets entering phase 1a (bind)
  RelaxedCounter burst_bound;    ///< packets entering phase 2 (dispatch)
  RelaxedCounter burst_wave;     ///< phase-2 packets on the wave path
  RelaxedCounter burst_legacy;   ///< phase-2 packets on the per-packet path
  /// Burst-arena footprint (bytes): peak demand of any one burst, and the
  /// retained chunk-chain reserve (monotone; the arena never shrinks).
  MaxGauge arena_high_water;
  MaxGauge arena_capacity;

  // ---- samplers (worker-thread only) ------------------------------------
  Sampler packet_sampler;
  Sampler burst_sampler;

  RouterStatsConfig config;
};

/// Convenience factory for RouterEnv::stats.
[[nodiscard]] inline std::unique_ptr<RouterStats> make_router_stats(
    RouterStatsConfig config = {}) {
  return std::make_unique<RouterStats>(config);
}

}  // namespace dip::telemetry
