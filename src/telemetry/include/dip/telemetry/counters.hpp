// Thread-safe data-plane counters.
//
// Per-worker routers in a RouterPool each own a RouterCounters block and
// bump it with relaxed atomics, so a shared sink (or a sampling thread
// reading another worker's block) is race-free. Snapshots are plain
// integers; aggregate() folds the per-worker blocks into one fleet view.
//
// This header is dependency-free on purpose: dip::core embeds
// RouterCounters inside RouterEnv, so it must not pull core headers in.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <span>

namespace dip::telemetry {

/// A monotonically increasing event counter with relaxed-atomic updates.
///
/// Copy/move load the source value (counters are copied only at setup or
/// snapshot time, never on the hot path), which keeps the containing
/// structs movable — std::atomic alone would delete those operations.
class RelaxedCounter {
 public:
  constexpr RelaxedCounter() noexcept = default;
  constexpr RelaxedCounter(std::uint64_t v) noexcept : value_(v) {}
  RelaxedCounter(const RelaxedCounter& other) noexcept : value_(other.load()) {}
  RelaxedCounter& operator=(const RelaxedCounter& other) noexcept {
    value_.store(other.load(), std::memory_order_relaxed);
    return *this;
  }

  [[nodiscard]] std::uint64_t load() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  operator std::uint64_t() const noexcept { return load(); }

  std::uint64_t operator++() noexcept {
    return value_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  RelaxedCounter& operator+=(std::uint64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A monotone high-water gauge: record() keeps the maximum ever seen.
/// Relaxed-atomic with the same copy semantics as RelaxedCounter.
class MaxGauge {
 public:
  constexpr MaxGauge() noexcept = default;
  MaxGauge(const MaxGauge& other) noexcept : value_(other.load()) {}
  MaxGauge& operator=(const MaxGauge& other) noexcept {
    value_.store(other.load(), std::memory_order_relaxed);
    return *this;
  }

  [[nodiscard]] std::uint64_t load() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  operator std::uint64_t() const noexcept { return load(); }

  void record(std::uint64_t v) noexcept {
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Plain-integer image of one RouterCounters block (or a sum of several).
struct CounterSnapshot {
  std::uint64_t processed = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t dropped = 0;
  std::uint64_t errors = 0;
  std::uint64_t quarantined = 0;  ///< lenient-mode corrupt-FN-list drops
  std::uint64_t fn_executed = 0;
  std::uint64_t fn_skipped_host = 0;
  std::uint64_t fn_skipped_optional = 0;
  std::uint64_t flow_cache_hits = 0;
  std::uint64_t flow_cache_misses = 0;
  std::uint64_t parallel_relaxed = 0;
  std::uint64_t parallel_fallback = 0;
  std::uint64_t batches = 0;
  std::array<std::uint64_t, 32> fn_by_key{};

  CounterSnapshot& operator+=(const CounterSnapshot& o) noexcept {
    processed += o.processed;
    forwarded += o.forwarded;
    dropped += o.dropped;
    errors += o.errors;
    quarantined += o.quarantined;
    fn_executed += o.fn_executed;
    fn_skipped_host += o.fn_skipped_host;
    fn_skipped_optional += o.fn_skipped_optional;
    flow_cache_hits += o.flow_cache_hits;
    flow_cache_misses += o.flow_cache_misses;
    parallel_relaxed += o.parallel_relaxed;
    parallel_fallback += o.parallel_fallback;
    batches += o.batches;
    for (std::size_t i = 0; i < fn_by_key.size(); ++i) fn_by_key[i] += o.fn_by_key[i];
    return *this;
  }

  /// Flow-cache hit rate in [0,1]; 0 when the cache saw no traffic.
  [[nodiscard]] double flow_cache_hit_rate() const noexcept {
    const std::uint64_t total = flow_cache_hits + flow_cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(flow_cache_hits) /
                                  static_cast<double>(total);
  }
};

/// The per-router counter block (embedded in core::RouterEnv).
struct RouterCounters {
  RelaxedCounter processed;
  RelaxedCounter forwarded;
  RelaxedCounter dropped;
  RelaxedCounter errors;
  RelaxedCounter quarantined;  ///< lenient-mode corrupt-FN-list drops
  RelaxedCounter fn_executed;
  RelaxedCounter fn_skipped_host;
  RelaxedCounter fn_skipped_optional;
  RelaxedCounter flow_cache_hits;
  RelaxedCounter flow_cache_misses;
  RelaxedCounter parallel_relaxed;   ///< batches that used relaxed FN order
  RelaxedCounter parallel_fallback;  ///< parallel bit set but slices overlap
  RelaxedCounter batches;            ///< process_batch invocations
  /// Executions per operation key (indexed by the low key bits).
  std::array<RelaxedCounter, 32> fn_by_key{};

  [[nodiscard]] CounterSnapshot snapshot() const noexcept {
    CounterSnapshot s;
    s.processed = processed;
    s.forwarded = forwarded;
    s.dropped = dropped;
    s.errors = errors;
    s.quarantined = quarantined;
    s.fn_executed = fn_executed;
    s.fn_skipped_host = fn_skipped_host;
    s.fn_skipped_optional = fn_skipped_optional;
    s.flow_cache_hits = flow_cache_hits;
    s.flow_cache_misses = flow_cache_misses;
    s.parallel_relaxed = parallel_relaxed;
    s.parallel_fallback = parallel_fallback;
    s.batches = batches;
    for (std::size_t i = 0; i < fn_by_key.size(); ++i) s.fn_by_key[i] = fn_by_key[i];
    return s;
  }
};

/// Fold the per-worker counter blocks into one snapshot (the RouterPool
/// aggregation helper).
[[nodiscard]] inline CounterSnapshot aggregate(
    std::span<const RouterCounters* const> workers) noexcept {
  CounterSnapshot total;
  for (const RouterCounters* w : workers) {
    if (w != nullptr) total += w->snapshot();
  }
  return total;
}

}  // namespace dip::telemetry
