// Per-worker trace ring: sampled per-packet FN execution records.
//
// Histograms answer "how long"; the trace ring answers "what exactly ran".
// A 1-in-N Sampler picks packets on the dispatch path; for each sampled
// packet the router pushes one TraceRecord (the FN triple list, the
// verdict, and ns timestamps) into a fixed-size ring. A control thread
// drains the ring while the worker keeps routing.
//
// The ring reuses the SpscRing storage pattern (power-of-two slot array,
// monotonic head/tail counters) but with *overwrite-when-full* semantics:
// tracing must never block or backpressure the data path, so when the
// reader falls behind, the oldest unread records are overwritten and
// counted in dropped(). Pushes are rare by construction (one per N
// packets), so push/drain serialize on a mutex — at the default period the
// amortized cost is well under a nanosecond per packet, and the control
// thread gets torn-record-free drains without a seqlock.
//
// Dependency-free on purpose (see counters.hpp): core embeds a TraceRing
// inside RouterEnv via stats.hpp, so FN fields are mirrored as plain
// integers rather than core types (op includes the host-tag bit, exactly
// as carried on the wire).
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <vector>

namespace dip::telemetry {

/// One FN triple as executed (mirror of core::FnTriple's wire fields).
struct TraceFn {
  std::uint16_t field_loc = 0;  ///< bit offset into the locations block
  std::uint16_t field_len = 0;  ///< field length in bits
  std::uint16_t op = 0;         ///< tag(1) | key(15)

  friend bool operator==(const TraceFn&, const TraceFn&) = default;
};

/// One sampled packet's execution record.
struct TraceRecord {
  static constexpr std::size_t kMaxFns = 16;  ///< == HeaderView::kMaxFns

  std::uint64_t seq = 0;         ///< sample sequence number (per ring)
  std::uint64_t start_ns = 0;    ///< now_ns() at dispatch start
  std::uint64_t sim_now = 0;     ///< the packet's SimTime
  std::uint32_t duration_ns = 0; ///< dispatch wall time
  std::uint32_t ingress = 0;     ///< ingress face
  std::uint8_t fn_count = 0;
  std::uint8_t action = 0;       ///< core::Action numeric value
  std::uint8_t reason = 0;       ///< core::DropReason numeric value
  std::uint8_t egress_count = 0; ///< verdict fan-out (faces forwarded to)
  std::array<TraceFn, kMaxFns> fns{};
};

/// Deterministic 1-in-N sampler: with period P, packets 0, P, 2P, ... of
/// the stream tick true. period 0 disables sampling entirely; period 1
/// samples every packet. Single-threaded (one per worker).
class Sampler {
 public:
  explicit Sampler(std::uint32_t period = 0) noexcept : period_(period) {}

  [[nodiscard]] std::uint32_t period() const noexcept { return period_; }

  bool tick() noexcept {
    if (period_ == 0) return false;
    if (countdown_ == 0) {
      countdown_ = period_ - 1;
      return true;
    }
    --countdown_;
    return false;
  }

 private:
  std::uint32_t period_;
  std::uint32_t countdown_ = 0;
};

class TraceRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2 slots).
  explicit TraceRing(std::size_t capacity = 1024) {
    std::size_t p = 2;
    while (p < capacity) p <<= 1;
    slots_.resize(p);
    mask_ = p - 1;
  }

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  /// Producer (worker) side: append a record, overwriting the oldest unread
  /// one when the ring is full. Stamps record.seq.
  void push(TraceRecord record) {
    std::lock_guard<std::mutex> lk(m_);
    record.seq = tail_;
    slots_[tail_ & mask_] = record;
    ++tail_;
    if (tail_ - head_ > slots_.size()) {
      ++head_;  // oldest record overwritten before it was read
      ++dropped_;
    }
  }

  /// Consumer (control thread) side: move every unread record into `out`
  /// (appended, oldest first). Returns the number drained.
  std::size_t drain(std::vector<TraceRecord>& out) {
    std::lock_guard<std::mutex> lk(m_);
    const std::size_t n = static_cast<std::size_t>(tail_ - head_);
    out.reserve(out.size() + n);
    for (; head_ != tail_; ++head_) out.push_back(slots_[head_ & mask_]);
    return n;
  }

  /// Total records pushed since construction.
  [[nodiscard]] std::uint64_t pushed() const {
    std::lock_guard<std::mutex> lk(m_);
    return tail_;
  }

  /// Records overwritten before a drain could read them.
  [[nodiscard]] std::uint64_t dropped() const {
    std::lock_guard<std::mutex> lk(m_);
    return dropped_;
  }

 private:
  std::vector<TraceRecord> slots_;
  std::size_t mask_ = 0;
  mutable std::mutex m_;
  std::uint64_t head_ = 0;     ///< next unread record
  std::uint64_t tail_ = 0;     ///< next write position == records pushed
  std::uint64_t dropped_ = 0;
};

}  // namespace dip::telemetry
