// Text exposition: Prometheus-style `name{label="v"} value` rendering.
//
// StatsWriter formats individual series lines; the write_* helpers render
// whole snapshots (counters, histograms, a RouterStats block); and
// StatsRegistry collects named render callbacks so a process can compose
// one exposition page from many sources (a RouterPool, simulator nodes,
// app-level gauges) — the shape dump_stats() builds on.
//
// Header-only on purpose: dip::core's RouterPool::dump_stats() uses these
// helpers, and dip_telemetry (the static lib) links dip_core — an
// out-of-line implementation would cycle the link graph.
//
// The metric name catalogue and label conventions are documented in
// docs/OBSERVABILITY.md; the format itself is pinned by the golden test in
// tests/stats_test.cpp.
#pragma once

#include <cstdio>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "dip/telemetry/counters.hpp"
#include "dip/telemetry/stats.hpp"

namespace dip::telemetry {

struct Label {
  std::string_view key;
  std::string_view value;
};

/// Maps a fn_by_key slot index to its Table-1 notation ("F_32_match").
/// Provided by the caller (core::op_key_name lives above this layer);
/// nullptr falls back to "key<i>".
using KeyNamer = std::string_view (*)(std::size_t);

class StatsWriter {
 public:
  /// Emit one series line: name{k1="v1",k2="v2"} value
  void line(std::string_view name, std::span<const Label> labels,
            std::string_view value) {
    out_.append(name);
    if (!labels.empty()) {
      out_.push_back('{');
      for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i != 0) out_.push_back(',');
        out_.append(labels[i].key);
        out_.append("=\"");
        out_.append(labels[i].value);
        out_.push_back('"');
      }
      out_.push_back('}');
    }
    out_.push_back(' ');
    out_.append(value);
    out_.push_back('\n');
  }

  void counter(std::string_view name, std::span<const Label> labels,
               std::uint64_t value) {
    line(name, labels, std::to_string(value));
  }

  void gauge(std::string_view name, std::span<const Label> labels, double value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    line(name, labels, buf);
  }

  /// Emit a `# ...` comment line (section headers in composed pages).
  void comment(std::string_view text) {
    out_.append("# ");
    out_.append(text);
    out_.push_back('\n');
  }

  void append_raw(std::string_view text) { out_.append(text); }

  [[nodiscard]] const std::string& text() const noexcept { return out_; }
  [[nodiscard]] std::string take() noexcept { return std::move(out_); }

 private:
  std::string out_;
};

namespace detail {
/// base labels + one extra, preserving order (base first).
inline std::vector<Label> with_label(std::span<const Label> base, Label extra) {
  std::vector<Label> l(base.begin(), base.end());
  l.push_back(extra);
  return l;
}
}  // namespace detail

/// Render one counter block. With a `worker` (or `node`) label in `base`
/// these are the per-worker series; without labels, the fleet view.
inline void write_counter_snapshot(StatsWriter& w, const CounterSnapshot& s,
                                   std::span<const Label> base,
                                   KeyNamer namer = nullptr) {
  w.counter("dip_packets_processed_total", base, s.processed);
  w.counter("dip_packets_forwarded_total", base, s.forwarded);
  w.counter("dip_packets_dropped_total", base, s.dropped);
  w.counter("dip_packet_errors_total", base, s.errors);
  w.counter("dip_packets_quarantined_total", base, s.quarantined);
  w.counter("dip_batches_total", base, s.batches);
  w.counter("dip_fn_executed_total", base, s.fn_executed);
  w.counter("dip_fn_skipped_host_total", base, s.fn_skipped_host);
  w.counter("dip_fn_skipped_optional_total", base, s.fn_skipped_optional);
  w.counter("dip_parallel_relaxed_total", base, s.parallel_relaxed);
  w.counter("dip_parallel_fallback_total", base, s.parallel_fallback);
  w.counter("dip_flow_cache_hits_total", base, s.flow_cache_hits);
  w.counter("dip_flow_cache_misses_total", base, s.flow_cache_misses);
  w.gauge("dip_flow_cache_hit_rate", base, s.flow_cache_hit_rate());
  for (std::size_t i = 0; i < s.fn_by_key.size(); ++i) {
    if (s.fn_by_key[i] == 0) continue;
    const std::string fallback = "key" + std::to_string(i);
    const std::string_view name = namer != nullptr ? namer(i) : fallback;
    const auto labels = detail::with_label(base, {"fn", name});
    w.counter("dip_fn_executions_total", labels, s.fn_by_key[i]);
  }
}

/// Render one histogram: p50/p90/p99 quantile gauges, cumulative non-empty
/// buckets (`le` = inclusive upper bound in ns, then "+Inf"), count, sum.
/// Empty histograms emit nothing.
inline void write_histogram(StatsWriter& w, std::string_view name,
                            std::span<const Label> base,
                            const HistogramSnapshot& h) {
  if (h.count == 0) return;
  for (const double q : {0.5, 0.9, 0.99}) {
    char qbuf[16];
    std::snprintf(qbuf, sizeof(qbuf), "%g", q);
    const auto labels = detail::with_label(base, {"quantile", qbuf});
    w.gauge(name, labels, h.quantile(q));
  }
  const std::string bucket_name = std::string(name) + "_bucket";
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    if (h.buckets[i] == 0) continue;
    cum += h.buckets[i];
    const std::string le = std::to_string(histogram_bucket_upper(i));
    const auto labels = detail::with_label(base, {"le", le});
    w.counter(bucket_name, labels, cum);
  }
  w.counter(bucket_name, detail::with_label(base, {"le", "+Inf"}), h.count);
  w.counter(std::string(name) + "_count", base, h.count);
  w.counter(std::string(name) + "_sum", base, h.sum);
}

/// Render a RouterStats block: phase + per-OpKey latency histograms and the
/// trace ring's sampling meters.
inline void write_router_stats(StatsWriter& w, const RouterStats& stats,
                               std::span<const Label> base,
                               KeyNamer namer = nullptr) {
  struct Phase {
    std::string_view name;
    const LatencyHistogram& hist;
  };
  const Phase phases[] = {{"bind", stats.phase_bind},
                          {"validate", stats.phase_validate},
                          {"dispatch", stats.phase_dispatch}};
  for (const auto& p : phases) {
    const auto labels = detail::with_label(base, {"phase", p.name});
    write_histogram(w, "dip_phase_latency_ns", labels, p.hist.snapshot());
  }
  for (std::size_t i = 0; i < stats.fn_ns.size(); ++i) {
    const HistogramSnapshot h = stats.fn_ns[i].snapshot();
    if (h.count == 0) continue;
    const std::string fallback = "key" + std::to_string(i);
    const std::string_view name = namer != nullptr ? namer(i) : fallback;
    const auto labels = detail::with_label(base, {"fn", name});
    write_histogram(w, "dip_fn_latency_ns", labels, h);
  }
  w.counter("dip_trace_sampled_total", base, stats.trace.pushed());
  w.counter("dip_trace_dropped_total", base, stats.trace.dropped());
  w.counter("dip_burst_packets_total", base, stats.burst_packets.load());
  w.counter("dip_burst_bound_total", base, stats.burst_bound.load());
  w.counter("dip_burst_wave_total", base, stats.burst_wave.load());
  w.counter("dip_burst_legacy_total", base, stats.burst_legacy.load());
  w.gauge("dip_arena_high_water_bytes", base,
          static_cast<double>(stats.arena_high_water.load()));
  w.gauge("dip_arena_capacity_bytes", base,
          static_cast<double>(stats.arena_capacity.load()));
}

/// Named render callbacks composing one exposition page. Registration is
/// mutex-guarded; render() runs the collectors in registration order, each
/// under a `# == <name> ==` comment line.
class StatsRegistry {
 public:
  using Collector = std::function<void(StatsWriter&)>;

  void add(std::string name, Collector collector) {
    std::lock_guard<std::mutex> lk(m_);
    collectors_.emplace_back(std::move(name), std::move(collector));
  }

  [[nodiscard]] std::string render() const {
    std::lock_guard<std::mutex> lk(m_);
    StatsWriter w;
    for (const auto& [name, collector] : collectors_) {
      StatsWriter section;
      collector(section);
      const std::string body = section.take();
      if (body.empty()) continue;
      w.comment("== " + name + " ==");
      w.append_raw(body);
    }
    return w.take();
  }

 private:
  mutable std::mutex m_;
  std::vector<std::pair<std::string, Collector>> collectors_;
};

}  // namespace dip::telemetry
