#include "dip/opt/session.hpp"

namespace dip::opt {

Session negotiate_session(const crypto::SessionId& id,
                          std::span<const crypto::Block> router_secrets,
                          const crypto::Block& destination_secret,
                          crypto::MacKind mac_kind) {
  Session s;
  s.id = id;
  s.router_keys = crypto::derive_path_keys(router_secrets, id);
  s.destination_key = crypto::DrKey(destination_secret).derive(id);
  s.mac_kind = mac_kind;
  return s;
}

crypto::Block data_hash(const crypto::SessionId& id,
                        std::span<const std::uint8_t> payload,
                        crypto::MacKind mac_kind) {
  return crypto::make_mac(mac_kind, id)->compute(payload);
}

}  // namespace dip::opt
