#include "dip/opt/opt.hpp"

#include <cstring>

#include "dip/crypto/drkey.hpp"

namespace dip::opt {

using core::DipHeader;
using core::FnTriple;
using core::NextHeader;
using core::OpContext;
using core::OpKey;

bytes::Status ParmOp::execute(OpContext& ctx) {
  if (ctx.field.bit_length != 128) return bytes::Unexpected{bytes::Error::kMalformed};
  const auto sid_bytes = ctx.target_bytes();
  if (sid_bytes.empty()) return bytes::Unexpected{bytes::Error::kMalformed};

  const crypto::SessionId sid = crypto::block_from(sid_bytes);
  // "the router will derive a dynamic key from session ID in the packet
  // header with its local key" (§3).
  ctx.scratch->dynamic_key = crypto::DrKey(ctx.env->node_secret).derive(sid);
  return {};
}

bytes::Status MacOp::execute(OpContext& ctx) {
  if (!ctx.scratch->dynamic_key) {
    // F_MAC without a preceding F_parm: the host composed the chain wrong.
    return bytes::Unexpected{bytes::Error::kState};
  }
  const auto covered = ctx.target_bytes();
  if (covered.empty()) return bytes::Unexpected{bytes::Error::kMalformed};

  // Stack-constructed primitive: F_MAC sits on the per-packet fast path and
  // must not allocate (make_mac news a Mac per call).
  if (ctx.env->mac_kind == crypto::MacKind::kEm2) {
    ctx.scratch->mac = crypto::Em2Mac(*ctx.scratch->dynamic_key).compute(covered);
  } else {
    ctx.scratch->mac = crypto::AesCmac(*ctx.scratch->dynamic_key).compute(covered);
  }
  return {};
}

bytes::Status MarkOp::execute(OpContext& ctx) {
  if (!ctx.scratch->mac) return bytes::Unexpected{bytes::Error::kState};
  if (ctx.field.bit_length != 128) return bytes::Unexpected{bytes::Error::kMalformed};
  auto pvf = ctx.target_bytes();
  if (pvf.empty()) return bytes::Unexpected{bytes::Error::kMalformed};

  // PVF_i = m_i (the tag chains because F_MAC covered PVF_{i-1}).
  crypto::block_to(*ctx.scratch->mac, pvf);

  // OPV accumulates every hop's tag. The OPV field sits right after the PVF
  // in the same block; address it relative to the PVF's own offset so the
  // triple stays exactly the paper's (loc 288, len 128) even when the OPT
  // block is embedded at a nonzero offset (NDN+OPT).
  const std::size_t pvf_byte = ctx.field.bit_offset / 8;
  const std::size_t opv_byte = pvf_byte + (kOpvOffset - kPvfOffset);
  if (opv_byte + 16 > ctx.locations.size()) {
    return bytes::Unexpected{bytes::Error::kOutOfRange};
  }
  auto opv = ctx.locations.subspan(opv_byte, 16);
  for (std::size_t i = 0; i < 16; ++i) opv[i] ^= (*ctx.scratch->mac)[i];
  return {};
}

std::array<std::uint8_t, kBlockBytes> make_source_block(
    const Session& session, std::span<const std::uint8_t> payload,
    std::uint32_t timestamp) {
  std::array<std::uint8_t, kBlockBytes> block{};

  const crypto::Block dh = data_hash(session.id, payload, session.mac_kind);
  std::memcpy(block.data() + kDataHashOffset, dh.data(), 16);
  std::memcpy(block.data() + kSessionIdOffset, session.id.data(), 16);
  for (int i = 0; i < 4; ++i) {
    block[kTimestampOffset + i] = static_cast<std::uint8_t>(timestamp >> (8 * (3 - i)));
  }
  // PVF_0 = MAC_{K_D}(DataHash|SessionID|Timestamp): only someone holding
  // the destination's session key can seed a valid chain — the source-
  // authentication anchor. Covering the session id and timestamp binds them
  // to the source too; otherwise a pre-path attacker could rewrite the
  // timestamp undetected (found by tests/adversary_test).
  const auto mac = crypto::make_mac(session.mac_kind, session.destination_key);
  const crypto::Block pvf0 =
      mac->compute(std::span<const std::uint8_t>(block).subspan(0, kPvfOffset));
  std::memcpy(block.data() + kPvfOffset, pvf0.data(), 16);
  // OPV_0 = 0 (already zeroed).
  return block;
}

std::vector<FnTriple> opt_fn_triples() {
  return {
      FnTriple::router(128, 128, OpKey::kParm),  // (loc 128, len 128, key 6)
      FnTriple::router(0, 416, OpKey::kMac),     // (loc 0,   len 416, key 7)
      FnTriple::router(288, 128, OpKey::kMark),  // (loc 288, len 128, key 8)
      FnTriple::host(0, 544, OpKey::kVer),       // (loc 0,   len 544, key 9)
  };
}

bytes::Result<DipHeader> make_opt_header(const Session& session,
                                         std::span<const std::uint8_t> payload,
                                         std::uint32_t timestamp, NextHeader next,
                                         std::uint8_t hop_limit) {
  const auto block = make_source_block(session, payload, timestamp);
  core::HeaderBuilder b;
  b.next_header(next).hop_limit(hop_limit);
  b.add_location(block);
  for (const FnTriple& fn : opt_fn_triples()) b.add_fn(fn);
  return b.build();
}

bytes::Result<DipHeader> make_ndn_opt_header(std::uint32_t name_code, bool interest,
                                             const Session& session,
                                             std::span<const std::uint8_t> payload,
                                             std::uint32_t timestamp, NextHeader next,
                                             std::uint8_t hop_limit) {
  const auto block = make_source_block(session, payload, timestamp);
  core::HeaderBuilder b;
  b.next_header(next).hop_limit(hop_limit);
  // OPT block first so the paper's OPT triples keep their offsets; the name
  // code rides behind it at bit 544.
  b.add_location(block);
  const std::array<std::uint8_t, 4> name_bytes = fib::ipv4_from_u32(name_code).bytes;
  const std::uint16_t name_loc = b.add_location(name_bytes);
  b.add_fn(FnTriple::router(name_loc, 32, interest ? OpKey::kFib : OpKey::kPit));
  for (const FnTriple& fn : opt_fn_triples()) b.add_fn(fn);
  return b.build();
}

std::string_view to_string(VerifyResult r) noexcept {
  switch (r) {
    case VerifyResult::kOk: return "ok";
    case VerifyResult::kBadDataHash: return "bad-data-hash";
    case VerifyResult::kBadSession: return "bad-session";
    case VerifyResult::kBadPvf: return "bad-pvf";
    case VerifyResult::kBadOpv: return "bad-opv";
    case VerifyResult::kStale: return "stale";
    case VerifyResult::kMalformed: return "malformed";
  }
  return "unknown";
}

VerifyResult verify_packet(const Session& session,
                           std::span<const std::uint8_t> locations,
                           std::span<const std::uint8_t> payload,
                           std::uint32_t now_seconds, std::uint32_t freshness_window,
                           std::size_t block_offset) {
  if (locations.size() < block_offset + kBlockBytes) return VerifyResult::kMalformed;
  const auto block = locations.subspan(block_offset, kBlockBytes);

  // Session binding.
  if (std::memcmp(block.data() + kSessionIdOffset, session.id.data(), 16) != 0) {
    return VerifyResult::kBadSession;
  }

  // Freshness.
  if (freshness_window != 0) {
    std::uint32_t ts = 0;
    for (int i = 0; i < 4; ++i) ts = (ts << 8) | block[kTimestampOffset + i];
    if (now_seconds > ts && now_seconds - ts > freshness_window) {
      return VerifyResult::kStale;
    }
  }

  // Content integrity.
  const crypto::Block dh = data_hash(session.id, payload, session.mac_kind);
  if (!crypto::block_equal_ct(dh, crypto::block_from(block.subspan(kDataHashOffset, 16)))) {
    return VerifyResult::kBadDataHash;
  }

  // Replay the chain: PVF_0 from K_D, then every router's tag in order.
  std::array<std::uint8_t, 52> coverage{};  // DataHash|SessionID|Timestamp|PVF
  std::memcpy(coverage.data(), block.data(), 52);

  const auto kd_mac = crypto::make_mac(session.mac_kind, session.destination_key);
  crypto::Block pvf = kd_mac->compute(
      std::span<const std::uint8_t>(coverage).subspan(0, kPvfOffset));
  crypto::Block opv{};
  for (const crypto::Block& key : session.router_keys) {
    std::memcpy(coverage.data() + kPvfOffset, pvf.data(), 16);
    const auto hop_mac = crypto::make_mac(session.mac_kind, key);
    pvf = hop_mac->compute(coverage);
    crypto::block_xor(opv, pvf);
  }

  if (!crypto::block_equal_ct(pvf, crypto::block_from(block.subspan(kPvfOffset, 16)))) {
    return VerifyResult::kBadPvf;
  }
  if (!crypto::block_equal_ct(opv, crypto::block_from(block.subspan(kOpvOffset, 16)))) {
    return VerifyResult::kBadOpv;
  }
  return VerifyResult::kOk;
}

}  // namespace dip::opt
