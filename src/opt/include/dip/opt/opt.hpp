// OPT realized with DIP (§3 "OPT"): lightweight source authentication and
// path validation in the style of Kim et al., SIGCOMM 2014.
//
// Per-packet chain:
//   source:   DataHash = CMAC_sid(payload)
//             PVF_0    = MAC_{K_D}(DataHash)
//             OPV_0    = 0
//   router i: F_parm — K_i = PRF_{secret_i}(SessionID)        (key 6)
//             F_MAC  — m_i = MAC_{K_i}(block[0..52))          (key 7)
//                      (covers DataHash|SessionID|Timestamp|PVF_{i-1})
//             F_mark — PVF_i = m_i;  OPV_i = OPV_{i-1} ^ m_i  (key 8)
//   dest:     F_ver  — recompute the whole chain from the negotiated keys
//             and compare PVF_n and OPV_n                      (key 9, host)
//
// A forged source fails at PVF_0 (needs K_D); a path deviation fails at the
// first router whose key the verifier reconstruction disagrees with.
#pragma once

#include <span>

#include "dip/core/builder.hpp"
#include "dip/core/op_module.hpp"
#include "dip/opt/layout.hpp"
#include "dip/opt/session.hpp"

namespace dip::opt {

/// F_parm (key 6): derive the dynamic key from the SessionID target field
/// and the node secret; stash it in the packet scratch for F_MAC.
class ParmOp final : public core::OpModule {
 public:
  [[nodiscard]] core::OpKey key() const noexcept override { return core::OpKey::kParm; }
  [[nodiscard]] std::uint32_t cost() const noexcept override { return 2; }
  [[nodiscard]] bytes::Status execute(core::OpContext& ctx) override;
};

/// F_MAC (key 7): MAC the target field (the 416-bit coverage) under the
/// dynamic key from scratch; leave the tag in scratch for F_mark.
class MacOp final : public core::OpModule {
 public:
  [[nodiscard]] core::OpKey key() const noexcept override { return core::OpKey::kMac; }
  [[nodiscard]] std::uint32_t cost() const noexcept override { return 8; }
  [[nodiscard]] bytes::Status execute(core::OpContext& ctx) override;
};

/// F_mark (key 8): write the tag into the PVF target field and fold it into
/// the OPV accumulator.
class MarkOp final : public core::OpModule {
 public:
  [[nodiscard]] core::OpKey key() const noexcept override { return core::OpKey::kMark; }
  [[nodiscard]] std::uint32_t cost() const noexcept override { return 2; }
  [[nodiscard]] bytes::Status execute(core::OpContext& ctx) override;
};

/// Build the 68-byte OPT locations block a source emits.
[[nodiscard]] std::array<std::uint8_t, kBlockBytes> make_source_block(
    const Session& session, std::span<const std::uint8_t> payload,
    std::uint32_t timestamp);

/// The four OPT FN triples exactly as the paper writes them (§3).
[[nodiscard]] std::vector<core::FnTriple> opt_fn_triples();

/// Compose a standalone OPT header. Wire size: 6 + 4*6 + 68 = 98 bytes.
[[nodiscard]] bytes::Result<core::DipHeader> make_opt_header(
    const Session& session, std::span<const std::uint8_t> payload,
    std::uint32_t timestamp, core::NextHeader next = core::NextHeader::kNone,
    std::uint8_t hop_limit = 64);

/// Compose an NDN+OPT header (§3 "NDN+OPT"): the NDN name FN (F_FIB on
/// interests, F_PIT on data) plus the OPT chain over a trailing OPT block.
/// Wire size: 6 + 5*6 + 4 + 68 = 108 bytes.
[[nodiscard]] bytes::Result<core::DipHeader> make_ndn_opt_header(
    std::uint32_t name_code, bool interest, const Session& session,
    std::span<const std::uint8_t> payload, std::uint32_t timestamp,
    core::NextHeader next = core::NextHeader::kNone, std::uint8_t hop_limit = 64);

/// Destination-side verification outcomes.
enum class VerifyResult : std::uint8_t {
  kOk,
  kBadDataHash,   ///< payload does not match DataHash (content tampered)
  kBadSession,    ///< block's session ID is not this session
  kBadPvf,        ///< PVF chain mismatch (path deviated or tags forged)
  kBadOpv,        ///< OPV accumulator mismatch (a hop was skipped/replayed)
  kStale,         ///< timestamp outside the freshness window
  kMalformed,
};

[[nodiscard]] std::string_view to_string(VerifyResult r) noexcept;

/// F_ver, executed by the destination host: recompute the chain from the
/// negotiated session keys and the received payload.
/// `now_seconds`/`freshness_window` gate the timestamp; a window of 0
/// disables the check.
[[nodiscard]] VerifyResult verify_packet(const Session& session,
                                         std::span<const std::uint8_t> locations,
                                         std::span<const std::uint8_t> payload,
                                         std::uint32_t now_seconds = 0,
                                         std::uint32_t freshness_window = 0,
                                         std::size_t block_offset = 0);

}  // namespace dip::opt
