// OPT session setup (control plane).
//
// OPT's key negotiation (paper footnote 3) gives the source the dynamic
// keys of every on-path router and the destination, all derived from the
// session ID. We reproduce the derivation exactly as the data plane performs
// it per packet: K_i = PRF_{secret_i}(session_id) — see crypto::DrKey.
#pragma once

#include <cstdint>
#include <vector>

#include "dip/bytes/time.hpp"
#include "dip/crypto/drkey.hpp"
#include "dip/crypto/mac.hpp"

namespace dip::opt {

/// Everything the source/destination learn during session negotiation.
struct Session {
  crypto::SessionId id{};
  /// Dynamic keys of the on-path routers, in path order.
  std::vector<crypto::Block> router_keys;
  /// The destination's dynamic key (keys PVF_0).
  crypto::Block destination_key{};
  /// MAC primitive negotiated for this session (2EM in the paper).
  crypto::MacKind mac_kind = crypto::MacKind::kEm2;
};

/// Simulate key negotiation over a concrete path: derive every node's
/// dynamic key from its local secret and the session ID.
[[nodiscard]] Session negotiate_session(const crypto::SessionId& id,
                                        std::span<const crypto::Block> router_secrets,
                                        const crypto::Block& destination_secret,
                                        crypto::MacKind mac_kind = crypto::MacKind::kEm2);

/// CMAC over `payload` keyed by the session ID — the DataHash both ends can
/// compute independently.
[[nodiscard]] crypto::Block data_hash(const crypto::SessionId& id,
                                      std::span<const std::uint8_t> payload,
                                      crypto::MacKind mac_kind = crypto::MacKind::kEm2);

}  // namespace dip::opt
